// Command thriftysim runs one (application, configuration) pair on the
// simulated CC-NUMA machine and prints the energy/time breakdown and the
// mechanism statistics — the single-experiment companion to thriftybench.
//
// Usage:
//
//	thriftysim -app FMM -config Thrifty
//	thriftysim -app Ocean -config Thrifty -cutoff 0 -wakeup internal
//	thriftysim -trace mytrace.csv -config Thrifty
//	thriftysim -scaling 1024 -alg tree -radix 8 -j 8
//	thriftysim -list
//
// -scaling N leaves the 64-CPU shared-memory machine behind and runs the
// message-passing cluster at N nodes on the conservative parallel event
// engine (-j shards; the result is shard-count-invariant), printing the
// thrifty-vs-baseline comparison for one collective.
//
// A trace file replays measured per-thread barrier-phase durations (CSV:
// "pc,dur0us,dur1us,..."; see internal/workload.ParseTrace) through the
// simulator, estimating what the thrifty barrier would save on a real
// application
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/energy"
	"thriftybarrier/internal/fault"
	"thriftybarrier/internal/harness"
	"thriftybarrier/internal/mp"
	"thriftybarrier/internal/sim"
	"thriftybarrier/internal/trace"
	"thriftybarrier/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "FMM", "application name (see -list)")
		config   = flag.String("config", "Thrifty", "Baseline|Thrifty-Halt|Oracle-Halt|Thrifty|Ideal")
		nodes    = flag.Int("nodes", 64, "machine size (power of two <= 64)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		cutoff   = flag.Float64("cutoff", -1, "override overprediction cut-off (fraction of BIT; 0 disables)")
		wakeup   = flag.String("wakeup", "", "override wake-up mechanism: hybrid|external|internal")
		faultStr = flag.String("fault", "", "inject faults, e.g. drop=0.2,timerfail=0.1,drift=200us,driftrate=0.5 (see internal/fault)")
		traceCSV = flag.String("trace", "", "replay a measured barrier trace (CSV) instead of a synthetic app")
		chrome   = flag.String("chrometrace", "", "write a Chrome Trace Event JSON timeline of the run to this file")
		jsonOut  = flag.String("json", "", "write the run's machine-readable result (JSON) to this file, or - for stdout")
		list     = flag.Bool("list", false, "list applications and exit")
		verbose  = flag.Bool("v", false, "also print per-static-barrier episode summary")

		scaling = flag.Int("scaling", 0, "run the message-passing cluster at this node count on the parallel engine and exit")
		alg     = flag.String("alg", "tree", "barrier collective for -scaling: tree|dissemination")
		radix   = flag.Int("radix", 0, "combining-tree radix for -scaling (0 = config default)")
		jobs    = flag.Int("j", 0, "shard count for -scaling/-core-scaling (0 = GOMAXPROCS; 1 = the sequential reference engine)")

		coreScaling = flag.Int("core-scaling", 0, "run the sharded CC-NUMA core machine at this CPU count and exit")
		topology    = flag.String("topology", "flat", "check-in fabric highlighted by -core-scaling: flat|tree|noctree")
	)
	flag.Parse()

	if *list {
		for _, s := range workload.All() {
			fmt.Printf("%-10s imbalance(paper)=%5.2f%%  phases=%d  %s\n",
				s.Name, s.TargetImbalance*100, s.Phases(), s.ProblemSize)
		}
		return
	}

	if *scaling > 0 && *coreScaling > 0 {
		usage("-scaling and -core-scaling are mutually exclusive")
	}
	if *scaling > 0 {
		runScaling(*scaling, *alg, *radix, *jobs, *seed)
		return
	}
	if *coreScaling > 0 {
		runCoreScaling(*coreScaling, *topology, *jobs, *seed)
		return
	}

	// Validate enumerated flags up front: a typo exits immediately with a
	// usage diagnostic instead of silently misconfiguring a long run.
	var opts core.Options
	var names []string
	found := false
	for _, o := range core.Configurations() {
		names = append(names, o.Name)
		if o.Name == *config {
			opts, found = o, true
		}
	}
	if !found {
		usage("unknown -config %q (want %s)", *config, strings.Join(names, "|"))
	}
	if *traceCSV == "" && (*nodes < 1 || *nodes > 64 || *nodes&(*nodes-1) != 0) {
		usage("bad -nodes %d (want a power of two <= 64)", *nodes)
	}
	if *cutoff >= 0 {
		opts.Cutoff = *cutoff
	}
	switch *wakeup {
	case "":
	case "hybrid":
		opts.Wakeup = core.WakeupHybrid
	case "external":
		opts.Wakeup = core.WakeupExternal
	case "internal":
		opts.Wakeup = core.WakeupInternal
	default:
		usage("unknown -wakeup %q (want hybrid|external|internal)", *wakeup)
	}
	plan, err := fault.Parse(*faultStr)
	if err != nil {
		usage("bad -fault spec: %v", err)
	}
	if plan != nil {
		if plan.Seed == 0 {
			plan.Seed = *seed
		}
		opts.Faults = plan
	}

	var prog core.SliceProgram
	var name string
	if *traceCSV != "" {
		f, err := os.Open(*traceCSV)
		if err != nil {
			fatal(err)
		}
		phases, err := workload.ParseTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		th := workload.TraceThreads(phases)
		if th&(th-1) != 0 || th > 64 {
			fatal(fmt.Errorf("trace has %d threads; the machine needs a power of two <= 64", th))
		}
		*nodes = th
		arch := core.DefaultArch().WithNodes(th)
		prog, err = workload.BuildTrace(phases, arch.CPU.IPC)
		if err != nil {
			fatal(err)
		}
		name = *traceCSV
	} else {
		spec, ok := workload.ByName(*app)
		if !ok {
			usage("unknown -app %q (use -list)", *app)
		}
		prog = spec.Build(*nodes, *seed)
		name = spec.Name
	}
	arch := core.DefaultArch().WithNodes(*nodes)

	base := core.NewMachine(arch, core.Baseline()).Run(prog)
	m := core.NewMachine(arch, opts)
	m.SetRecording(*verbose || *chrome != "")
	res := m.Run(prog)
	if *chrome != "" {
		data, err := trace.ChromeTrace(res.Episodes, opts.Name)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*chrome, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", *chrome)
	}
	n := res.Breakdown.Normalize(base.Breakdown)

	if *jsonOut != "" {
		// Episode records can run to megabytes when recording is on; the
		// result JSON carries the aggregates only.
		baseCopy, resCopy := base, res
		baseCopy.Episodes, resCopy.Episodes = nil, nil
		out := struct {
			App        string            `json:"app"`
			Config     string            `json:"config"`
			Nodes      int               `json:"nodes"`
			Seed       uint64            `json:"seed"`
			Baseline   core.Result       `json:"baseline"`
			Run        core.Result       `json:"run"`
			Normalized energy.Normalized `json:"normalized"`
		}{name, opts.Name, arch.Nodes, *seed, baseCopy, resCopy, n}
		b, err := harness.MarshalArtifact(out)
		if err != nil {
			fatal(err)
		}
		if *jsonOut == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("%s on %d nodes, %s (seed %d)\n", name, arch.Nodes, opts.Name, *seed)
	fmt.Printf("  baseline: span=%v energy=%.4fJ imbalance=%.2f%%\n",
		base.Span, base.Breakdown.TotalEnergy(), base.Breakdown.SpinFraction()*100)
	fmt.Printf("  this run: span=%v energy=%.4fJ\n", res.Span, res.Breakdown.TotalEnergy())
	fmt.Printf("  normalized energy: %6.2f%%  [Compute %.2f%% Spin %.2f%% Transition %.2f%% Sleep %.2f%%]\n",
		n.TotalEnergy()*100,
		n.Energy[sim.StateCompute]*100, n.Energy[sim.StateSpin]*100,
		n.Energy[sim.StateTransition]*100, n.Energy[sim.StateSleep]*100)
	fmt.Printf("  normalized time:   %6.2f%%  (span ratio %.4f)\n", n.TotalTime()*100, n.SpanRatio)
	fmt.Printf("  episodes=%d spins=%d sleeps=%v\n", res.Stats.Episodes, res.Stats.Spins, res.Stats.Sleeps)
	fmt.Printf("  wakes: early=%d external=%d late=%d false=%d; disables=%d flushedLines=%d\n",
		res.Stats.EarlyWakes, res.Stats.ExternalWakes, res.Stats.LateWakes,
		res.Stats.FalseWakeups, res.Stats.Disables, res.Stats.FlushLines)
	fmt.Printf("  predictor: hits=%d misses=%d skippedUpdates=%d\n",
		res.Stats.PredictorHits, res.Stats.PredictorMisses, res.Stats.SkippedUpdates)
	if opts.Faults.Active() {
		fmt.Printf("  faults (%s): dropped=%d timerFail=%d drifted=%d recoveries=%d preempts=%d stalls=%d\n",
			opts.Faults, res.Stats.DroppedWakeups, res.Stats.TimerFailures,
			res.Stats.DriftedTimers, res.Stats.Recoveries,
			res.Stats.InjectedPreempts, res.Stats.InjectedStalls)
	}

	if *verbose {
		type agg struct {
			pc    uint64
			n     int
			sum   sim.Cycles
			min   sim.Cycles
			max   sim.Cycles
			stall sim.Cycles
		}
		perPC := map[uint64]*agg{}
		for _, ep := range res.Episodes {
			a := perPC[ep.PC]
			if a == nil {
				a = &agg{pc: ep.PC, min: sim.MaxCycles}
				perPC[ep.PC] = a
			}
			a.n++
			a.sum += ep.BIT
			if ep.BIT < a.min {
				a.min = ep.BIT
			}
			if ep.BIT > a.max {
				a.max = ep.BIT
			}
			for t := range ep.Arrive {
				a.stall += ep.Depart[t] - ep.Arrive[t]
			}
		}
		var keys []uint64
		for pc := range perPC {
			keys = append(keys, pc)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		fmt.Println("  per-static-barrier BIT [instances, mean, min, max, mean per-thread stall]:")
		for _, pc := range keys {
			a := perPC[pc]
			fmt.Printf("    pc=%#x n=%3d mean=%v min=%v max=%v stall=%v\n",
				a.pc, a.n, a.sum/sim.Cycles(a.n), a.min, a.max,
				a.stall/sim.Cycles(a.n*len(res.Episodes[0].Arrive)))
		}
	}
}

// runScaling runs one collective of the many-core scaling study — the
// message-passing machine on the conservative parallel event engine —
// and prints the thrifty-vs-baseline comparison. Impossible flag
// combinations (a non-power-of-two size, a radix of 1) surface as
// mp.NewMachine errors and exit 2 through the usage path, the same
// contract as every other flag here.
func runScaling(nodes int, alg string, radix, jobs int, seed uint64) {
	cfg := mp.DefaultConfig()
	cfg.Nodes = nodes
	cfg.NoC.Nodes = nodes
	switch alg {
	case "tree":
		cfg.Algorithm = mp.TreeBarrier
	case "dissemination":
		cfg.Algorithm = mp.DisseminationBarrier
	default:
		usage("unknown -alg %q (want tree|dissemination)", alg)
	}
	if radix != 0 {
		cfg.Fanout = radix
	}
	shards := jobs
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}

	// NewMachine validates the whole configuration; this is the one place
	// a user can assemble an impossible mp.Config from the command line.
	baseM, err := mp.NewMachine(cfg, mp.Baseline())
	if err != nil {
		usage("bad -scaling configuration: %v", err)
	}
	thriftyM, err := mp.NewMachine(cfg, mp.Thrifty())
	if err != nil {
		usage("bad -scaling configuration: %v", err)
	}

	const phases = 24
	prog := harness.ScalingProgram(seed, nodes, phases)
	base := baseM.RunParallel(prog, shards)
	res := thriftyM.RunParallel(prog, shards)
	n := res.Breakdown.Normalize(base.Breakdown)

	label := alg
	if cfg.Algorithm == mp.TreeBarrier {
		label = fmt.Sprintf("tree r=%d", cfg.Fanout)
	}
	fmt.Printf("scaling: %d nodes, %s, %d phases, %d shards (seed %d)\n",
		nodes, label, phases, shards, seed)
	fmt.Printf("  baseline: span=%v energy=%.4fJ round=%v\n",
		base.Span, base.Breakdown.TotalEnergy(), base.MeanRoundLatency())
	fmt.Printf("  thrifty:  span=%v energy=%.4fJ round=%v\n",
		res.Span, res.Breakdown.TotalEnergy(), res.MeanRoundLatency())
	fmt.Printf("  normalized energy: %6.2f%%  [Compute %.2f%% Spin %.2f%% Transition %.2f%% Sleep %.2f%%]\n",
		n.TotalEnergy()*100,
		n.Energy[sim.StateCompute]*100, n.Energy[sim.StateSpin]*100,
		n.Energy[sim.StateTransition]*100, n.Energy[sim.StateSleep]*100)
	fmt.Printf("  normalized time:   %6.2f%%  (span ratio %.4f)\n", n.TotalTime()*100, n.SpanRatio)
	total := 0
	for _, c := range res.Stats.Sleeps {
		total += c
	}
	fmt.Printf("  episodes=%d sleeps=%d wakes: early=%d external=%d late=%d; disables=%d\n",
		res.Stats.Episodes, total,
		res.Stats.EarlyWakes, res.Stats.ExternalWakes, res.Stats.LateWakes,
		res.Stats.Disables)
}

// runCoreScaling runs the core-machine scaling study — the full CC-NUMA
// machine (caches, directories, predictor) home-node-partitioned onto
// the conservative parallel engine — at one CPU count and prints the
// topology × policy sweep. -j picks the shard count; 1 selects the plain
// sequential engine, the golden reference the sharded runs must match
// bit for bit, so a -j 1 vs -j 8 diff of the output (minus the header
// line) is the determinism check. -topology picks which fabric gets the
// detailed breakdown; every fabric appears in the table.
func runCoreScaling(nodes int, topology string, jobs int, seed uint64) {
	topo, err := core.ParseTopology(topology)
	if err != nil {
		usage("bad -topology: %v", err)
	}
	if nodes < 8 || nodes > 1024 || nodes&(nodes-1) != 0 {
		usage("bad -core-scaling %d (want a power of two in [8,1024])", nodes)
	}
	if jobs < 0 {
		usage("bad -j %d (want >= 0)", jobs)
	}
	shards := jobs
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	engineShards := shards
	if shards == 1 {
		engineShards = 0 // the plain sequential engine: the reference
	}

	rows := harness.CoreScalingExperiment(seed, nodes, engineShards)
	fmt.Printf("core scaling: %d CPUs, %d shards (seed %d)\n", nodes, shards, seed)
	detail := map[core.Topology]string{
		core.TopologyFlat:    "flat",
		core.TopologyTree:    "tree r=8",
		core.TopologyNoCTree: "noc tree",
	}[topo]
	for _, r := range rows {
		if r.Topology == detail && r.Variant == "Thrifty" {
			fmt.Printf("  %s thrifty: span=%v energy=%.3fx time=%.4fx sleeps=%d events=%d\n",
				r.Topology, r.Span, r.Energy, r.Time, r.Sleeps, r.Events)
		}
	}
	fmt.Print(harness.RenderCoreScaling(nodes, rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thriftysim:", err)
	os.Exit(1)
}

// usage reports a flag-validation failure and exits 2, the conventional
// bad-invocation status (fatal's exit 1 is kept for runtime errors).
func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "thriftysim: "+format+"\n", args...)
	os.Exit(2)
}
