package main_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles this command into t.TempDir and returns the binary path.
func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "thriftysim")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// Flag-validation failures must exit 2 with the diagnostic on stderr and
// nothing on stdout, so `thriftysim ... > results.txt` never captures an
// error message as data.
func TestBadFlagsExitTwoStdoutClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildCmd(t)
	cases := [][]string{
		{"-config", "Bogus"},
		{"-app", "NoSuchApp"},
		{"-wakeup", "psychic"},
		{"-fault", "drop=banana"},
		{"-nodes", "3"},
		// -scaling assembles an mp.Config from the command line; NewMachine's
		// returned error must surface through the same exit-2 path rather
		// than the panic it used to be.
		{"-scaling", "96"},
		{"-scaling", "64", "-radix", "1"},
		{"-scaling", "64", "-alg", "butterfly"},
		// -core-scaling validates the sharded core machine's knobs up
		// front through the same exit-2 contract.
		{"-core-scaling", "63"},
		{"-core-scaling", "2048"},
		{"-core-scaling", "64", "-topology", "torus"},
		{"-core-scaling", "64", "-j", "-1"},
		{"-core-scaling", "64", "-scaling", "64"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%v: expected exit error, got %v", args, err)
		}
		if code := ee.ExitCode(); code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
		if stdout.Len() != 0 {
			t.Errorf("%v: stdout not clean: %q", args, stdout.String())
		}
		if stderr.Len() == 0 {
			t.Errorf("%v: no diagnostic on stderr", args)
		}
	}
}

// TestScalingModeRuns smoke-tests the parallel-engine scaling mode end to
// end through the CLI, including that -j only changes the shard count, not
// the printed physics.
func TestScalingModeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildCmd(t)
	run := func(args ...string) string {
		t.Helper()
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v: %v\n%s", args, err, stderr.String())
		}
		return stdout.String()
	}
	one := run("-scaling", "64", "-alg", "dissemination", "-j", "1")
	if !strings.Contains(one, "64 nodes, dissemination") {
		t.Fatalf("unexpected scaling header:\n%s", one)
	}
	// Shard-count invariance, observed at the user-facing surface: the
	// output lines carry spans, joules, and wake counts, so any physics
	// divergence across -j shows up here.
	if four := run("-scaling", "64", "-alg", "dissemination", "-j", "4"); stripShards(four) != stripShards(one) {
		t.Fatalf("-j 4 output diverged from -j 1:\n%s\nvs\n%s", four, one)
	}
}

// TestCoreScalingModeRuns smoke-tests the sharded core machine end to
// end through the CLI: -j 1 selects the plain sequential engine and
// -j 4 the parallel one, and everything below the header line — spans,
// joules, per-CPU digests — must be byte-identical between them.
func TestCoreScalingModeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildCmd(t)
	run := func(args ...string) string {
		t.Helper()
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v: %v\n%s", args, err, stderr.String())
		}
		return stdout.String()
	}
	one := run("-core-scaling", "64", "-topology", "noctree", "-j", "1")
	if !strings.Contains(one, "64 CPUs") || !strings.Contains(one, "noc tree") {
		t.Fatalf("unexpected core-scaling output:\n%s", one)
	}
	if four := run("-core-scaling", "64", "-topology", "noctree", "-j", "4"); stripShards(four) != stripShards(one) {
		t.Fatalf("-j 4 output diverged from -j 1:\n%s\nvs\n%s", four, one)
	}
}

// stripShards removes the header line, the only place the shard count
// legitimately appears in -scaling output.
func stripShards(out string) string {
	_, rest, _ := strings.Cut(out, "\n")
	return rest
}
