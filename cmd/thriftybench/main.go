// Command thriftybench regenerates every table and figure of the paper's
// evaluation, plus the four ablations, on the simulated 64-node CC-NUMA
// machine.
//
// The (application × configuration) matrix and the independent
// ablation/sweep/extension experiments are fanned across a worker pool
// (-j). Every simulation derives its randomness from the seed alone, so
// the text artifacts are byte-identical regardless of -j; a run that
// panics or wedges is skipped with a diagnostic instead of aborting the
// bench. With -out, every text artifact gains a machine-readable .json
// twin and the invocation writes a BENCH_manifest.json recording the
// seed, architecture and per-run wall-clock.
//
// Usage:
//
//	thriftybench -all                 # everything (default)
//	thriftybench -table2 -fig5        # selected experiments
//	thriftybench -ablation cutoff     # one ablation (cutoff|wakeup|predictor|preempt|…|faults)
//	thriftybench -scaling             # 64/256/1024-node study on the parallel engine
//	                                  # (-j also sets the engine's shard count)
//	thriftybench -core-scaling        # 64/128/256-CPU sharded core-machine study
//	                                  # (-j 1 = sequential reference engine)
//	thriftybench -nodes 16 -seed 7    # smaller machine, different seed
//	thriftybench -all -out results    # also write text + CSV + JSON files
//	thriftybench -all -j 1            # sequential (identical output)
//	thriftybench -bench-json -out results  # record the Go microbenchmark
//	                                  # suite as BENCH_runtime.json + BENCH_wheel.json + BENCH_sim.json
//	thriftybench -bench-diff out/BENCH_runtime.json  # compare a recorded run
//	                                  # against the numbers in README.md (informational)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/harness"
	"thriftybarrier/internal/harness/microbench"
	"thriftybarrier/internal/power"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every table, figure and ablation")
		table1    = flag.Bool("table1", false, "print Table 1 (architecture)")
		table2    = flag.Bool("table2", false, "run and print Table 2 (barrier imbalance)")
		table3    = flag.Bool("table3", false, "print Table 3 (sleep states)")
		fig3      = flag.Bool("fig3", false, "run and print Figure 3 (BIT/BST variability)")
		fig5      = flag.Bool("fig5", false, "run and print Figure 5 (normalized energy)")
		fig6      = flag.Bool("fig6", false, "run and print Figure 6 (normalized execution time)")
		summary   = flag.Bool("summary", false, "print the headline numbers of section 5.1")
		ablation  = flag.String("ablation", "", "run one ablation: cutoff|wakeup|predictor|preempt|conventional|topology|confidence|dvfs|straggler|faults")
		sens      = flag.String("sensitivity", "", "run one sweep: nodes|transition|lockcontention|barrierlatency")
		ext       = flag.String("extension", "", "run one extension experiment: locks|mp")
		scaling   = flag.Bool("scaling", false, "run the 64/256/1024-node barrier scaling study on the parallel engine")
		coreScale = flag.Bool("core-scaling", false, "run the 64/128/256-CPU sharded core-machine study (full CC-NUMA simulation)")
		nodes     = flag.Int("nodes", 64, "machine size (power of two <= 64)")
		seed      = flag.Uint64("seed", 1, "workload seed")
		observer  = flag.Int("observer", 11, "Figure 3 observer thread")
		outDir    = flag.String("out", "", "also write results into this directory")
		markdown  = flag.String("markdown", "", "run everything and write a self-contained Markdown report here")
		jobs      = flag.Int("j", runtime.NumCPU(), "worker-pool width for independent simulations (1 = sequential)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-run wall-clock limit; a wedged run is skipped with a diagnostic (0 = no limit)")
		jsonOut   = flag.Bool("json", true, "with -out, write a machine-readable .json twin next to every text artifact")
		progress  = flag.Bool("progress", true, "report per-run completion on stderr")
		benchNow  = flag.Bool("bench-json", false, "run the Go microbenchmark suite and write BENCH_runtime.json + BENCH_wheel.json + BENCH_sim.json (into -out, or the current directory)")
		benchDiff = flag.String("bench-diff", "", "compare a recorded BENCH_runtime.json (and the BENCH_wheel.json/BENCH_sim.json next to it) against the wake-up fabric and event-engine numbers in README.md; informational — deltas go to stderr and never fail the run")
	)
	flag.Parse()

	if !*table1 && !*table2 && !*table3 && !*fig3 && !*fig5 && !*fig6 && !*summary && !*scaling && !*coreScale &&
		*ablation == "" && *sens == "" && *ext == "" && *markdown == "" && !*benchNow && *benchDiff == "" {
		*all = true
	}
	if *all {
		*table1, *table2, *table3, *fig3, *fig5, *fig6, *summary = true, true, true, true, true, true, true
	}

	if *nodes < 1 || *nodes > 64 || *nodes&(*nodes-1) != 0 {
		usage("bad -nodes %d (want a power of two <= 64)", *nodes)
	}
	if *jobs < 1 {
		usage("bad -j %d (want >= 1)", *jobs)
	}

	arch := core.DefaultArch().WithNodes(*nodes)
	if *observer >= *nodes {
		*observer = *nodes - 1
	}

	if *benchNow {
		if err := writeBenchJSON(*outDir, *progress); err != nil {
			fatal(err)
		}
	}
	if *benchDiff != "" {
		// File errors are fatal (a broken CI wiring should be visible);
		// the comparison itself only informs.
		if err := diffBenchReadme(*benchDiff, "README.md", os.Stderr); err != nil {
			fatal(err)
		}
	}
	if (*benchNow || *benchDiff != "") &&
		!*all && !*table1 && !*table2 && !*table3 && !*fig3 && !*fig5 && !*fig6 && !*summary &&
		!*scaling && !*coreScale && *ablation == "" && *sens == "" && *ext == "" && *markdown == "" {
		return
	}

	runner := &harness.Runner{Jobs: *jobs, Timeout: *timeout}
	if *progress {
		runner.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "thriftybench: "+format+"\n", args...)
		}
	}
	manifest := harness.NewManifest(*seed, *nodes, runner)
	benchStart := time.Now()

	if *markdown != "" {
		report := runner.MarkdownReport(arch, *seed)
		if err := os.WriteFile(*markdown, []byte(report), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *markdown)
		if !*all && !*scaling && !*coreScale && *ablation == "" && *sens == "" && *ext == "" &&
			!*table1 && !*table2 && !*table3 && !*fig3 && !*fig5 && !*fig6 && !*summary {
			return
		}
	}

	writeFile := func(name string, data []byte) {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*outDir, name), data, 0o644); err != nil {
			fatal(err)
		}
	}
	// emit prints an artifact and, with -out, writes it plus its JSON twin.
	emit := func(name, text string, data any) {
		fmt.Println(text)
		if *outDir == "" {
			return
		}
		writeFile(name, []byte(text))
		if *jsonOut && data != nil {
			b, err := harness.MarshalArtifact(data)
			if err != nil {
				fatal(err)
			}
			writeFile(strings.TrimSuffix(name, filepath.Ext(name))+".json", b)
		}
	}

	// Experiment catalogue: each entry computes its rows once and renders
	// both the text table and the JSON twin from them.
	ablations := map[string]func() (string, any){
		"cutoff": func() (string, any) {
			rows := harness.AblationCutoff(arch, *seed)
			return harness.RenderAblation("Ablation A: overprediction cut-off on Ocean (section 5.2)", rows), rows
		},
		"wakeup": func() (string, any) {
			rows := harness.AblationWakeup(arch, *seed)
			return harness.RenderAblation("Ablation B: wake-up mechanisms (section 3.3)", rows), rows
		},
		"predictor": func() (string, any) {
			rows := harness.AblationPredictor(arch, *seed)
			return harness.RenderAblation("Ablation C: BIT predictor policies (section 3.2)", rows), rows
		},
		"preempt": func() (string, any) {
			rows := harness.AblationPreempt(arch, *seed)
			return harness.RenderAblation("Ablation D: preemption and the underprediction filter (section 3.4.2)", rows), rows
		},
		"conventional": func() (string, any) {
			rows := harness.AblationConventional(arch, *seed)
			return harness.RenderAblation("Ablation G: conventional low-power techniques vs Thrifty (section 5.1)", rows), rows
		},
		"dvfs": func() (string, any) {
			rows := harness.AblationDVFS(arch, *seed)
			return harness.RenderAblation("Ablation H: barrier sleeping vs slack-reclamation DVFS (section 1)", rows), rows
		},
		"straggler": func() (string, any) {
			rows := harness.AblationStraggler(arch, *seed)
			return harness.RenderAblation("Ablation I: pinned vs rotating straggler (why BIT beats direct BST, section 3.2)", rows), rows
		},
		"topology": func() (string, any) {
			rows := harness.AblationTopology(arch, *seed)
			return harness.RenderAblation("Ablation E: flat vs combining-tree check-in", rows), rows
		},
		"confidence": func() (string, any) {
			rows := harness.AblationConfidence(arch, *seed)
			return harness.RenderAblation("Ablation F: cut-off vs confidence estimator (section 3.3.3 future work)", rows), rows
		},
		"faults": func() (string, any) {
			rows := harness.AblationFaults(arch, *seed)
			return harness.RenderFaults(rows), rows
		},
	}
	sweeps := map[string]func() (string, any){
		"lockcontention": func() (string, any) {
			rows := harness.LockContentionSweep(*seed)
			return harness.RenderSensitivity("Sensitivity: lock contention (thrifty MCS lock, 16 threads)", rows), rows
		},
		"barrierlatency": func() (string, any) {
			rows := harness.BarrierLatency(*seed)
			return harness.RenderBarrierLatency(rows), rows
		},
		"nodes": func() (string, any) {
			rows := harness.SensitivityNodes(*seed)
			return harness.RenderSensitivity("Sensitivity: machine size (FMM)", rows), rows
		},
		"transition": func() (string, any) {
			rows := harness.SensitivityTransition(*seed)
			return harness.RenderSensitivity("Sensitivity: sleep transition latency scaling (FMM)", rows), rows
		},
	}
	extensions := map[string]func() (string, any){
		"locks": func() (string, any) {
			sat, mod := harness.LockExperiment(*seed)
			return harness.RenderLocks(sat, mod), struct {
				Saturated []harness.LockRow `json:"saturated"`
				Moderate  []harness.LockRow `json:"moderate"`
			}{sat, mod}
		},
		"mp": func() (string, any) {
			rows := harness.MPExperiment(*seed)
			return harness.RenderMP(rows), rows
		},
	}

	// Compute phase: queue every selected simulation as a named job, fan
	// the lot across the pool, then emit in the canonical artifact order.
	// preJobs hold the artifacts printed before the Figure 5/6 matrix,
	// postJobs the ones printed after it.
	type artifact struct {
		file string
		job  harness.Job
	}
	var preArts, postArts []artifact
	addPre := func(file, name string, fn func() (string, any)) {
		preArts = append(preArts, artifact{file, harness.Job{Name: name, Run: fn}})
	}
	addPost := func(file, name string, fn func() (string, any)) {
		postArts = append(postArts, artifact{file, harness.Job{Name: name, Run: fn}})
	}

	if *table2 {
		addPre("table2.txt", "table2", func() (string, any) {
			rows := harness.Table2(arch, *seed)
			return harness.RenderTable2(rows), rows
		})
	}
	if *fig3 {
		addPre("figure3.txt", "figure3", func() (string, any) {
			d := harness.Figure3(arch, *seed, *observer, 4, 4)
			return harness.RenderFigure3(d), d
		})
	}

	lookup := func(kind string, m map[string]func() (string, any), key, want string) func() (string, any) {
		fn, ok := m[key]
		if !ok {
			usage("unknown -%s %q (want %s)", kind, key, want)
		}
		return fn
	}
	if *ablation != "" {
		fn := lookup("ablation", ablations, *ablation, "cutoff|wakeup|predictor|preempt|conventional|topology|confidence|dvfs|straggler|faults")
		addPost("ablation_"+*ablation+".txt", "ablation "+*ablation, fn)
	}
	if *sens != "" {
		fn := lookup("sensitivity", sweeps, *sens, "nodes|transition|lockcontention|barrierlatency")
		addPost("sensitivity_"+*sens+".txt", "sensitivity "+*sens, fn)
	}
	if *ext != "" {
		fn := lookup("extension", extensions, *ext, "locks|mp")
		addPost("extension_"+*ext+".txt", "extension "+*ext, fn)
	}
	if *all {
		for _, name := range []string{"cutoff", "wakeup", "predictor", "preempt", "conventional", "topology", "confidence", "dvfs", "straggler", "faults"} {
			addPost("ablation_"+name+".txt", "ablation "+name, ablations[name])
		}
		for _, name := range []string{"nodes", "transition", "lockcontention", "barrierlatency"} {
			addPost("sensitivity_"+name+".txt", "sensitivity "+name, sweeps[name])
		}
		for _, name := range []string{"locks", "mp"} {
			addPost("extension_"+name+".txt", "extension "+name, extensions[name])
		}
	}
	if *all || *scaling {
		// -j doubles as the parallel engine's shard count here; the scaling
		// rows are shard-count-invariant by the RunParallel contract, so the
		// artifacts stay byte-identical across -j like everything else.
		for _, n := range harness.ScalingPoints {
			n := n
			addPost(fmt.Sprintf("scaling_%d.txt", n), fmt.Sprintf("scaling %d", n), func() (string, any) {
				rows := harness.ScalingExperiment(*seed, n, *jobs)
				return harness.RenderScaling(n, rows), rows
			})
		}
	}
	if *all || *coreScale {
		// Same contract for the sharded core machine: -j sets the engine
		// shard count (-j 1 selects the plain sequential engine, the golden
		// reference), and the ParallelMachine's bit-identity guarantee keeps
		// every artifact — per-CPU digests included — byte-identical across
		// shard counts.
		engineShards := *jobs
		if engineShards == 1 {
			engineShards = 0
		}
		for _, n := range harness.CoreScalingPoints {
			n := n
			addPost(fmt.Sprintf("core_scaling_%d.txt", n), fmt.Sprintf("core scaling %d", n), func() (string, any) {
				rows := harness.CoreScalingExperiment(*seed, n, engineShards)
				return harness.RenderCoreScaling(n, rows), rows
			})
		}
	}

	// Run the matrix first (it is its own fan-out), then the queued jobs.
	var apps []harness.AppRun
	if *fig5 || *fig6 || *summary {
		apps = runner.RunAll(arch, *seed)
		manifest.RecordApps(apps)
	}
	arts := append(append([]artifact{}, preArts...), postArts...)
	jobList := make([]harness.Job, len(arts))
	for i, a := range arts {
		jobList[i] = a.job
	}
	results := runner.Do(jobList)

	// Emit phase, sequential and in canonical order so stdout and the -out
	// directory are byte-identical across -j widths.
	emitResult := func(a artifact, jr harness.JobResult) {
		manifest.Record(jr.Name, jr.Wall, jr.Err)
		if jr.Err != "" {
			fmt.Fprintf(os.Stderr, "thriftybench: %s failed: %s (skipped; other runs unaffected)\n", jr.Name, jr.Err)
			return
		}
		emit(a.file, jr.Text, jr.Data)
	}

	if *table1 {
		emit("table1.txt", harness.RenderTable1(arch), arch)
	}
	if *table3 {
		model := power.DefaultModel()
		emit("table3.txt", harness.RenderTable3(model), struct {
			States   []power.SleepState `json:"states"`
			TDPMaxW  float64            `json:"tdp_max_w"`
			ComputeW float64            `json:"compute_w"`
			SpinW    float64            `json:"spin_w"`
		}{model.States(), model.TDPMax(), model.ComputePower(), model.SpinPower()})
	}
	for i, a := range preArts {
		emitResult(a, results[i])
	}
	if *fig5 {
		emit("figure5.txt", harness.RenderFigure(apps, true), apps)
		if *outDir != "" {
			emit("figure5.csv", harness.RenderFigureCSV(apps, true), nil)
		}
	}
	if *fig6 {
		emit("figure6.txt", harness.RenderFigure(apps, false), apps)
		if *outDir != "" {
			emit("figure6.csv", harness.RenderFigureCSV(apps, false), nil)
		}
	}
	if *summary {
		sums := harness.Summarize(apps)
		emit("summary.txt", harness.RenderSummary(sums), sums)
	}
	for i, a := range postArts {
		emitResult(a, results[len(preArts)+i])
	}

	if *outDir != "" && *jsonOut {
		manifest.ElapsedMS = float64(time.Since(benchStart).Microseconds()) / 1000
		b, err := harness.MarshalArtifact(manifest)
		if err != nil {
			fatal(err)
		}
		writeFile("BENCH_manifest.json", b)
	}
}

// writeBenchJSON records the perf trajectory: it runs the in-process Go
// microbenchmark suites (internal/harness/microbench) and writes
// BENCH_runtime.json (goroutine-barrier arrival and rendezvous),
// BENCH_wheel.json (the wake-up fabric's many-barrier sweep to 1M with
// p99/p999 wake lateness) and BENCH_sim.json (event-engine
// schedule/fire/cancel) so future changes can diff ns/op, allocs/op and
// the custom metrics against a baseline.
func writeBenchJSON(dir string, progress bool) error {
	if dir == "" {
		dir = "."
	}
	type suite struct {
		Go         string              `json:"go"`
		GOMAXPROCS int                 `json:"gomaxprocs"`
		Results    []microbench.Result `json:"results"`
	}
	var report func(microbench.Result)
	if progress {
		report = func(r microbench.Result) {
			fmt.Fprintf(os.Stderr, "thriftybench: bench %s: %.1f ns/op, %d allocs/op\n",
				r.Name, r.NsPerOp, r.AllocsPerOp)
		}
	}
	write := func(name string, specs []microbench.Spec) error {
		s := suite{Go: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0), Results: microbench.Run(specs, report)}
		b, err := harness.MarshalArtifact(s)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", filepath.Join(dir, name))
		return nil
	}
	if err := write("BENCH_runtime.json", microbench.RuntimeSpecs()); err != nil {
		return err
	}
	if err := write("BENCH_wheel.json", microbench.WheelSpecs()); err != nil {
		return err
	}
	return write("BENCH_sim.json", microbench.SimSpecs())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thriftybench:", err)
	os.Exit(1)
}

// usage reports a flag-validation failure and exits 2, the conventional
// bad-invocation status (fatal's exit 1 is kept for runtime errors).
func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "thriftybench: "+format+"\n", args...)
	os.Exit(2)
}
