// Command thriftybench regenerates every table and figure of the paper's
// evaluation, plus the four ablations, on the simulated 64-node CC-NUMA
// machine.
//
// Usage:
//
//	thriftybench -all                 # everything (default)
//	thriftybench -table2 -fig5        # selected experiments
//	thriftybench -ablation cutoff     # one ablation (cutoff|wakeup|predictor|preempt)
//	thriftybench -nodes 16 -seed 7    # smaller machine, different seed
//	thriftybench -all -out results    # also write text + CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/harness"
	"thriftybarrier/internal/power"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every table, figure and ablation")
		table1   = flag.Bool("table1", false, "print Table 1 (architecture)")
		table2   = flag.Bool("table2", false, "run and print Table 2 (barrier imbalance)")
		table3   = flag.Bool("table3", false, "print Table 3 (sleep states)")
		fig3     = flag.Bool("fig3", false, "run and print Figure 3 (BIT/BST variability)")
		fig5     = flag.Bool("fig5", false, "run and print Figure 5 (normalized energy)")
		fig6     = flag.Bool("fig6", false, "run and print Figure 6 (normalized execution time)")
		summary  = flag.Bool("summary", false, "print the headline numbers of section 5.1")
		ablation = flag.String("ablation", "", "run one ablation: cutoff|wakeup|predictor|preempt|conventional|topology|confidence|dvfs|straggler")
		sens     = flag.String("sensitivity", "", "run one sweep: nodes|transition|lockcontention|barrierlatency")
		ext      = flag.String("extension", "", "run one extension experiment: locks|mp")
		nodes    = flag.Int("nodes", 64, "machine size (power of two <= 64)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		observer = flag.Int("observer", 11, "Figure 3 observer thread")
		outDir   = flag.String("out", "", "also write results into this directory")
		markdown = flag.String("markdown", "", "run everything and write a self-contained Markdown report here")
	)
	flag.Parse()

	if !*table1 && !*table2 && !*table3 && !*fig3 && !*fig5 && !*fig6 &&
		!*summary && *ablation == "" && *sens == "" && *ext == "" && *markdown == "" {
		*all = true
	}
	if *all {
		*table1, *table2, *table3, *fig3, *fig5, *fig6, *summary = true, true, true, true, true, true, true
	}

	arch := core.DefaultArch().WithNodes(*nodes)
	if *observer >= *nodes {
		*observer = *nodes - 1
	}
	if *markdown != "" {
		report := harness.MarkdownReport(arch, *seed)
		if err := os.WriteFile(*markdown, []byte(report), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *markdown)
		if !*all && *ablation == "" && *sens == "" && *ext == "" &&
			!*table1 && !*table2 && !*table3 && !*fig3 && !*fig5 && !*fig6 && !*summary {
			return
		}
	}
	emit := func(name, text string) {
		fmt.Println(text)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*outDir, name)
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	if *table1 {
		emit("table1.txt", harness.RenderTable1(arch))
	}
	if *table3 {
		emit("table3.txt", harness.RenderTable3(power.DefaultModel()))
	}
	if *table2 {
		emit("table2.txt", harness.RenderTable2(harness.Table2(arch, *seed)))
	}
	if *fig3 {
		d := harness.Figure3(arch, *seed, *observer, 4, 4)
		emit("figure3.txt", harness.RenderFigure3(d))
	}

	var apps []harness.AppRun
	needMatrix := *fig5 || *fig6 || *summary
	if needMatrix {
		apps = harness.RunAll(arch, *seed)
	}
	if *fig5 {
		emit("figure5.txt", harness.RenderFigure(apps, true))
		if *outDir != "" {
			emit("figure5.csv", harness.RenderFigureCSV(apps, true))
		}
	}
	if *fig6 {
		emit("figure6.txt", harness.RenderFigure(apps, false))
		if *outDir != "" {
			emit("figure6.csv", harness.RenderFigureCSV(apps, false))
		}
	}
	if *summary {
		emit("summary.txt", harness.RenderSummary(harness.Summarize(apps)))
	}

	ablations := map[string]func() string{
		"cutoff": func() string {
			return harness.RenderAblation("Ablation A: overprediction cut-off on Ocean (section 5.2)",
				harness.AblationCutoff(arch, *seed))
		},
		"wakeup": func() string {
			return harness.RenderAblation("Ablation B: wake-up mechanisms (section 3.3)",
				harness.AblationWakeup(arch, *seed))
		},
		"predictor": func() string {
			return harness.RenderAblation("Ablation C: BIT predictor policies (section 3.2)",
				harness.AblationPredictor(arch, *seed))
		},
		"preempt": func() string {
			return harness.RenderAblation("Ablation D: preemption and the underprediction filter (section 3.4.2)",
				harness.AblationPreempt(arch, *seed))
		},
		"conventional": func() string {
			return harness.RenderAblation("Ablation G: conventional low-power techniques vs Thrifty (section 5.1)",
				harness.AblationConventional(arch, *seed))
		},
		"dvfs": func() string {
			return harness.RenderAblation("Ablation H: barrier sleeping vs slack-reclamation DVFS (section 1)",
				harness.AblationDVFS(arch, *seed))
		},
		"straggler": func() string {
			return harness.RenderAblation("Ablation I: pinned vs rotating straggler (why BIT beats direct BST, section 3.2)",
				harness.AblationStraggler(arch, *seed))
		},
		"topology": func() string {
			return harness.RenderAblation("Ablation E: flat vs combining-tree check-in",
				harness.AblationTopology(arch, *seed))
		},
		"confidence": func() string {
			return harness.RenderAblation("Ablation F: cut-off vs confidence estimator (section 3.3.3 future work)",
				harness.AblationConfidence(arch, *seed))
		},
	}
	sweeps := map[string]func() string{
		"lockcontention": func() string {
			return harness.RenderSensitivity("Sensitivity: lock contention (thrifty MCS lock, 16 threads)",
				harness.LockContentionSweep(*seed))
		},
		"barrierlatency": func() string {
			return harness.RenderBarrierLatency(harness.BarrierLatency(*seed))
		},
		"nodes": func() string {
			return harness.RenderSensitivity("Sensitivity: machine size (FMM)", harness.SensitivityNodes(*seed))
		},
		"transition": func() string {
			return harness.RenderSensitivity("Sensitivity: sleep transition latency scaling (FMM)",
				harness.SensitivityTransition(*seed))
		},
	}
	extensions := map[string]func() string{
		"locks": func() string {
			sat, mod := harness.LockExperiment(*seed)
			return harness.RenderLocks(sat, mod)
		},
		"mp": func() string {
			return harness.RenderMP(harness.MPExperiment(*seed))
		},
	}
	if *ablation != "" {
		fn, ok := ablations[*ablation]
		if !ok {
			fatal(fmt.Errorf("unknown ablation %q (want cutoff|wakeup|predictor|preempt|conventional|topology|confidence|dvfs|straggler)", *ablation))
		}
		emit("ablation_"+*ablation+".txt", fn())
	}
	if *sens != "" {
		fn, ok := sweeps[*sens]
		if !ok {
			fatal(fmt.Errorf("unknown sensitivity %q (want nodes|transition)", *sens))
		}
		emit("sensitivity_"+*sens+".txt", fn())
	}
	if *ext != "" {
		fn, ok := extensions[*ext]
		if !ok {
			fatal(fmt.Errorf("unknown extension %q (want locks|mp)", *ext))
		}
		emit("extension_"+*ext+".txt", fn())
	}
	if *all {
		for _, name := range []string{"cutoff", "wakeup", "predictor", "preempt", "conventional", "topology", "confidence", "dvfs", "straggler"} {
			emit("ablation_"+name+".txt", ablations[name]())
		}
		for _, name := range []string{"nodes", "transition", "lockcontention", "barrierlatency"} {
			emit("sensitivity_"+name+".txt", sweeps[name]())
		}
		for _, name := range []string{"locks", "mp"} {
			emit("extension_"+name+".txt", extensions[name]())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thriftybench:", err)
	os.Exit(1)
}
