package main_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildCmd compiles this command into t.TempDir and returns the binary path.
func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "thriftybench")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// Flag-validation failures must exit 2 with the diagnostic on stderr and
// nothing on stdout: the bench's stdout is a reproducible artifact that
// downstream tooling diffs, so an error message leaking into it corrupts
// the artifact instead of failing the pipeline.
func TestBadFlagsExitTwoStdoutClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildCmd(t)
	cases := [][]string{
		{"-ablation", "bogus"},
		{"-sensitivity", "bogus"},
		{"-extension", "bogus"},
		{"-nodes", "5"},
		{"-j", "0"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%v: expected exit error, got %v", args, err)
		}
		if code := ee.ExitCode(); code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
		if stdout.Len() != 0 {
			t.Errorf("%v: stdout not clean: %q", args, stdout.String())
		}
		if stderr.Len() == 0 {
			t.Errorf("%v: no diagnostic on stderr", args)
		}
	}
}
