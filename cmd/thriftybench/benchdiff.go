package main

// -bench-diff: compare a freshly recorded BENCH_runtime.json (and its
// BENCH_wheel.json / BENCH_sim.json siblings) against the numbers
// committed in README.md — the wake-up fabric's ManyBarriers table
// (including the wheel-only 100k/1M rows and the p999 lateness anchor)
// and the event-engine ns/op anchors. The comparison is informational by
// design — benchmark numbers from shared CI runners are noise, so a
// drift here should show up in the job log without gating anything (the
// README rows are medians of repeated runs; see the Performance
// section).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"thriftybarrier/internal/harness/microbench"
)

// readmeBenchRow is one recorded row of the README ManyBarriers table:
//
//	| 10000 resident barriers | 70 | 140 | 2.0× |
//	| 1000000 resident barriers | 74 | — | — |
//
// Past 10k resident the timer baseline drops out of the sweep, so those
// rows record the wheel alone (hasTimer false).
type readmeBenchRow struct {
	barriers     int
	wheel, timer float64 // recorded ns per arm/cancel pair
	hasTimer     bool
}

// parseReadmeBench extracts the ManyBarriers rows from README markdown.
func parseReadmeBench(readme string) []readmeBenchRow {
	var rows []readmeBenchRow
	for _, line := range strings.Split(readme, "\n") {
		cells := strings.Split(line, "|")
		// "| N resident barriers | wheel | timer | speedup |" splits into
		// 6 cells with empty ends.
		if len(cells) < 5 || !strings.HasSuffix(strings.TrimSpace(cells[1]), " resident barriers") {
			continue
		}
		n, err1 := strconv.Atoi(strings.TrimSuffix(strings.TrimSpace(cells[1]), " resident barriers"))
		w, err2 := strconv.ParseFloat(strings.TrimSpace(cells[2]), 64)
		if err1 != nil || err2 != nil {
			continue
		}
		row := readmeBenchRow{barriers: n, wheel: w}
		if t, err := strconv.ParseFloat(strings.TrimSpace(cells[3]), 64); err == nil {
			row.timer, row.hasTimer = t, true
		}
		rows = append(rows, row)
	}
	return rows
}

// readmeP999Anchor extracts the million-barrier tail-lateness prose
// anchor ("… p999 wake lateness is N µs …"), compared against the
// p999-wake-us metric of ManyBarriers/wheel-1000000x16.
var readmeP999Anchor = regexp.MustCompile(`p999 wake lateness is ([0-9.]+)\s*µs`)

// readmeEngineAnchors extracts the event-engine ns/op numbers committed
// in README.md's "Simulator event engine" section, keyed by the
// BENCH_sim.json result name each one is recorded under. Anchors that
// the README no longer states are simply absent.
var readmeEngineAnchors = []struct {
	result string
	re     *regexp.Regexp
}{
	// "| after (arena + index heap) | 10.9 | 0 | 0 |"
	{"EngineScheduleFire/empty", regexp.MustCompile(`\|\s*after \(arena \+ index heap\)\s*\|\s*([0-9.]+)\s*\|`)},
	// "148.5 ns/op with 1024 pending\nevents" (prose may wrap mid-phrase)
	{"EngineScheduleFire/pending-1k", regexp.MustCompile(`([0-9.]+) ns/op with 1024 pending\s+events`)},
	// "24.0 ns/op for a schedule+cancel+fire round"
	{"EngineScheduleCancelFire", regexp.MustCompile(`([0-9.]+) ns/op for a schedule\+cancel\+fire\s+round`)},
	// "| parallel engine, 1 shard (64-rank ring) | 21.5 |" — compared in
	// ns/event, the metric those results report.
	{"ParallelEngine/shards-1", regexp.MustCompile(`\|\s*parallel engine, 1 shard[^|]*\|\s*([0-9.]+)\s*\|`)},
	{"ParallelEngine/shards-4", regexp.MustCompile(`\|\s*parallel engine, 4 shards[^|]*\|\s*([0-9.]+)\s*\|`)},
	{"ParallelEngine/shards-8", regexp.MustCompile(`\|\s*parallel engine, 8 shards[^|]*\|\s*([0-9.]+)\s*\|`)},
	// "| core machine, sequential reference (64 CPUs) | 1516 |" — the full
	// sharded CC-NUMA machine on the core-scaling workload, in ns/event.
	{"ParallelCore/seq", regexp.MustCompile(`\|\s*core machine, sequential reference[^|]*\|\s*([0-9.]+)\s*\|`)},
	{"ParallelCore/shards-1", regexp.MustCompile(`\|\s*core machine, 1 shard[^|]*\|\s*([0-9.]+)\s*\|`)},
	{"ParallelCore/shards-4", regexp.MustCompile(`\|\s*core machine, 4 shards[^|]*\|\s*([0-9.]+)\s*\|`)},
	{"ParallelCore/shards-8", regexp.MustCompile(`\|\s*core machine, 8 shards[^|]*\|\s*([0-9.]+)\s*\|`)},
}

// loadSuite reads one BENCH_*.json and returns a lookup by result name.
func loadSuite(path string) (func(string) (microbench.Result, bool), error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var suite struct {
		Results []microbench.Result `json:"results"`
	}
	if err := json.Unmarshal(raw, &suite); err != nil {
		return nil, fmt.Errorf("bench-diff: %s: %v", path, err)
	}
	return func(name string) (microbench.Result, bool) {
		for _, r := range suite.Results {
			if r.Name == name {
				return r, true
			}
		}
		return microbench.Result{}, false
	}, nil
}

// diffBenchReadme reports how a recorded BENCH_runtime.json (plus the
// BENCH_sim.json written next to it) compares to the README's committed
// wake-up engine and event-engine numbers. It returns an error only for
// broken inputs (missing files, no table, no matching results): the
// numeric comparison itself never fails the run.
func diffBenchReadme(jsonPath, readmePath string, w io.Writer) error {
	readme, err := os.ReadFile(readmePath)
	if err != nil {
		return err
	}
	rows := parseReadmeBench(string(readme))
	if len(rows) == 0 {
		return fmt.Errorf("bench-diff: no ManyBarriers table found in %s", readmePath)
	}
	// ManyBarriers lives in BENCH_wheel.json, written next to
	// BENCH_runtime.json by -bench-json (same sibling convention as
	// BENCH_sim.json below).
	wheelPath := filepath.Join(filepath.Dir(jsonPath), "BENCH_wheel.json")
	lookup, err := loadSuite(wheelPath)
	if err != nil {
		return err
	}
	pair := func(name string) (float64, bool) {
		r, ok := lookup(name)
		if !ok {
			return 0, false
		}
		v, ok := r.Metrics["ns/armcancel"]
		return v, ok
	}
	fmt.Fprintf(w, "bench-diff: %s vs %s (informational; README rows are medians of repeated runs)\n", jsonPath, readmePath)
	matched := 0
	for _, row := range rows {
		wheel, okw := pair(fmt.Sprintf("ManyBarriers/wheel-%dx16", row.barriers))
		if !okw {
			fmt.Fprintf(w, "  %d resident: no recorded result in %s\n", row.barriers, wheelPath)
			continue
		}
		matched++
		if !row.hasTimer {
			// Past 10k resident the timer baseline drops out of the sweep
			// (README records the wheel alone).
			fmt.Fprintf(w, "  %d resident: wheel %.1f ns/pair (recorded %.0f, %+.0f%%), no timer baseline at this size\n",
				row.barriers, wheel, row.wheel, 100*(wheel-row.wheel)/row.wheel)
			continue
		}
		timer, okt := pair(fmt.Sprintf("ManyBarriers/timer-%dx16", row.barriers))
		if !okt {
			fmt.Fprintf(w, "  %d resident: no recorded timer result in %s\n", row.barriers, wheelPath)
			continue
		}
		fmt.Fprintf(w, "  %d resident: wheel %.1f ns/pair (recorded %.0f, %+.0f%%), timer %.1f (recorded %.0f, %+.0f%%), speedup %.2fx (recorded %.1fx)\n",
			row.barriers,
			wheel, row.wheel, 100*(wheel-row.wheel)/row.wheel,
			timer, row.timer, 100*(timer-row.timer)/row.timer,
			timer/wheel, row.timer/row.wheel)
	}
	if matched == 0 {
		return fmt.Errorf("bench-diff: %s has no ManyBarriers results matching the README table", wheelPath)
	}
	// Tail-lateness anchor: the README prose states the million-barrier
	// p999 wake lateness; compare it to the recorded quantile.
	if m := readmeP999Anchor.FindStringSubmatch(string(readme)); m != nil {
		if want, err := strconv.ParseFloat(m[1], 64); err == nil {
			if r, ok := lookup("ManyBarriers/wheel-1000000x16"); ok {
				if got, ok := r.Metrics["p999-wake-us"]; ok {
					fmt.Fprintf(w, "  1000000 resident: p999 wake lateness %.0f µs (recorded %.0f, %+.0f%%)\n",
						got, want, 100*(got-want)/want)
				}
			}
		}
	}

	// Event-engine side: BENCH_sim.json is written next to
	// BENCH_runtime.json by -bench-json, and the README states three
	// ns/op anchors for it.
	simPath := filepath.Join(filepath.Dir(jsonPath), "BENCH_sim.json")
	simLookup, err := loadSuite(simPath)
	if err != nil {
		return err
	}
	matched = 0
	for _, a := range readmeEngineAnchors {
		m := a.re.FindStringSubmatch(string(readme))
		if m == nil {
			continue
		}
		want, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			continue
		}
		r, ok := simLookup(a.result)
		if !ok {
			fmt.Fprintf(w, "  %s: no recorded result in %s\n", a.result, simPath)
			continue
		}
		matched++
		// Results that report ns/event (the parallel engine) are compared
		// in that metric; plain engine results compare ns/op.
		val, unit := r.NsPerOp, "ns/op"
		if v, ok := r.Metrics["ns/event"]; ok {
			val, unit = v, "ns/event"
		}
		fmt.Fprintf(w, "  %s: %.1f %s (recorded %.1f, %+.0f%%)\n",
			a.result, val, unit, want, 100*(val-want)/want)
	}
	if matched == 0 {
		return fmt.Errorf("bench-diff: %s has no engine results matching the README anchors", simPath)
	}
	return nil
}
