package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"thriftybarrier/internal/analysis"
	"thriftybarrier/internal/analysis/load"
	"thriftybarrier/internal/analysis/suite"
)

// vetConfig is the JSON configuration the go command writes for each
// package unit when driving a vet tool. Field names and semantics follow
// cmd/go/internal/work's vetConfig.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string // import path -> canonical path
	PackageFile map[string]string // canonical path -> export data file
	Standard    map[string]bool

	PackageVetx map[string]string // canonical path -> vet facts file
	VetxOnly    bool              // only write facts, no diagnostics wanted
	VetxOutput  string            // where to write this unit's facts

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package unit described by cfgFile and returns
// the process exit code: 0 clean, 1 operational error, 2 diagnostics
// (matching x/tools' unitchecker, whose nonzero codes go vet surfaces).
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "thriftyvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "thriftyvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The suite keeps no cross-package facts, so the facts file is always
	// empty — but it must exist for the go command's caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "thriftyvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "thriftyvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the export data the go command already
	// built: ImportMap canonicalizes the path, PackageFile locates the
	// compiled package, and the gc importer reads it.
	compiled := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compiled.Import(path)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tconf := types.Config{Importer: imp, Sizes: types.SizesFor(cfg.Compiler, "amd64")}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "thriftyvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &load.Package{
		Path:  cfg.ImportPath,
		Name:  tpkg.Name(),
		Dir:   cfg.Dir,
		Files: files,
		Fset:  fset,
		Types: tpkg,
		Info:  info,
	}
	findings, err := analysis.Run([]*load.Package{pkg}, suite.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "thriftyvet: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
