// Command thriftyvet runs the thrifty-barrier analyzer suite.
//
// It works in two modes:
//
//   - Standalone, over package patterns resolved against the enclosing
//     module:
//
//     thriftyvet ./...
//     thriftyvet -lockedwait=false ./examples/... ./cmd/...
//
//   - As a go vet tool, speaking the vet unit-checker protocol:
//
//     go vet -vettool=$(which thriftyvet) ./...
//
// Standalone exit codes: 0 no findings, 1 findings (or analysis failure),
// 2 usage error. Diagnostics go to stdout; operational errors to stderr.
//
// The -github flag re-renders findings as GitHub Actions workflow
// annotations (::error file=...) and, when GITHUB_STEP_SUMMARY is set,
// appends a markdown summary for the job page.
//
// The -json flag prints the run as a single JSON object on stdout —
// every finding (suppressed ones included, with their suppression state
// and directive reason) plus every directive with its use count — for
// CI tooling and diff scripts. Stdout carries nothing but the JSON.
//
// Findings are suppressed with a directive comment on, or on the line
// before, the flagged line:
//
//	//lint:ignore barriercopy reason for the exception
//	//lint:file-ignore sleeptable reason the whole file is exempt
//
// The -ignores flag audits those directives instead of reporting
// findings: every analyzer is forced on, each directive is listed with
// its reason and the number of diagnostics it suppressed, and the exit
// code is 1 if any directive is stale (suppresses nothing) or malformed
// (missing the mandatory reason).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"thriftybarrier/internal/analysis"
	"thriftybarrier/internal/analysis/load"
	"thriftybarrier/internal/analysis/suite"
)

func main() {
	progname := filepath.Base(os.Args[0])

	// go vet probes its tool with -V=full before anything else, and with
	// -flags for a JSON description of the flags it may forward. The suite
	// exposes none through vet, so the answer is the empty list.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		printVersion(progname)
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// In unit-checker mode the go command passes a single *.cfg argument.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitcheck(os.Args[1]))
	}
	os.Exit(standalone(progname))
}

// printVersion implements the go vet -V=full handshake: the reported
// buildID must change whenever the tool binary changes, so vet can cache
// results keyed on it. Hashing the executable is the x/tools convention.
func printVersion(progname string) {
	f, err := os.Open(os.Args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

func standalone(progname string) int {
	fs := flag.NewFlagSet(progname, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [packages]\n\n", progname)
		fmt.Fprintf(os.Stderr, "Runs the thrifty-barrier analyzers over the packages (default ./...).\n")
		fmt.Fprintf(os.Stderr, "Also usable as go vet -vettool=$(which %s) ./...\n\nFlags:\n", progname)
		fs.PrintDefaults()
	}
	github := fs.Bool("github", false, "emit findings as GitHub Actions annotations and a step summary")
	jsonOut := fs.Bool("json", false, "emit the run as one JSON object on stdout (findings, suppression state, directives)")
	ignores := fs.Bool("ignores", false, "audit //lint:ignore directives instead of reporting findings; exit 1 on stale or malformed directives")
	enabled := map[string]*bool{}
	for _, a := range suite.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if *ignores && (*jsonOut || *github) {
		fmt.Fprintf(os.Stderr, "%s: -ignores cannot be combined with -json or -github\n", progname)
		return 2
	}
	var analyzers []*analysis.Analyzer
	for _, a := range suite.All() {
		// The ignores audit forces every analyzer on: a directive is only
		// provably stale if the analyzer it silences actually ran.
		if *ignores || *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 {
		fmt.Fprintf(os.Stderr, "%s: all analyzers disabled\n", progname)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	root, modPath, err := load.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	loader, err := load.NewLoader(load.Config{
		ModulePath:   modPath,
		ModuleDir:    root,
		IncludeTests: true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 2
	}
	detail, err := analysis.RunDetailed(pkgs, analyzers)
	code := 0
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		code = 1
	}
	for i := range detail.Findings {
		detail.Findings[i].Pos.Filename = relPath(cwd, detail.Findings[i].Pos.Filename)
	}
	for i := range detail.Suppressed {
		detail.Suppressed[i].Pos.Filename = relPath(cwd, detail.Suppressed[i].Pos.Filename)
	}
	for _, d := range detail.Directives {
		d.Pos.Filename = relPath(cwd, d.Pos.Filename)
	}

	if *ignores {
		return max(code, reportIgnores(detail))
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, detail); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 1
		}
		if len(detail.Findings) > 0 {
			code = 1
		}
		return code
	}

	for _, f := range detail.Findings {
		if *github {
			// Workflow-command annotation: renders on the PR diff.
			fmt.Printf("::error file=%s,line=%d,col=%d::[%s] %s\n",
				f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		} else {
			fmt.Println(f.String())
		}
	}
	if *github {
		writeStepSummary(detail.Findings)
	}
	if len(detail.Findings) > 0 {
		code = 1
	}
	return code
}

// jsonFinding is one finding row of the -json document.
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// jsonDirective is one //lint:ignore row of the -json document.
type jsonDirective struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
	FileWide  bool     `json:"fileWide,omitempty"`
	Uses      int      `json:"uses"`
	Malformed bool     `json:"malformed,omitempty"`
}

// writeJSON renders the whole run as one JSON object. Findings and
// suppressed findings share a flat list distinguished by the suppressed
// field, so a consumer filtering on it needs no schema knowledge beyond
// one row shape.
func writeJSON(w io.Writer, detail *analysis.Detail) error {
	rows := make([]jsonFinding, 0, len(detail.Findings)+len(detail.Suppressed))
	add := func(fs []analysis.Finding) {
		for _, f := range fs {
			rows = append(rows, jsonFinding{
				Analyzer:   f.Analyzer,
				File:       f.Pos.Filename,
				Line:       f.Pos.Line,
				Column:     f.Pos.Column,
				Message:    f.Message,
				Suppressed: f.Suppressed,
				Reason:     f.Reason,
			})
		}
	}
	add(detail.Findings)
	add(detail.Suppressed)
	directives := make([]jsonDirective, 0, len(detail.Directives))
	for _, d := range detail.Directives {
		directives = append(directives, jsonDirective{
			File:      d.Pos.Filename,
			Line:      d.Pos.Line,
			Analyzers: d.Analyzers,
			Reason:    d.Reason,
			FileWide:  d.FileWide,
			Uses:      d.Uses,
			Malformed: d.Malformed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Findings   []jsonFinding   `json:"findings"`
		Directives []jsonDirective `json:"directives"`
	}{rows, directives})
}

// reportIgnores prints the directive audit and returns 1 when any
// directive is stale or malformed.
func reportIgnores(detail *analysis.Detail) int {
	code := 0
	for _, d := range detail.Directives {
		kind := "ignore"
		if d.FileWide {
			kind = "file-ignore"
		}
		switch {
		case d.Malformed:
			fmt.Printf("%s:%d: MALFORMED %s %s: missing the mandatory reason (directive suppresses nothing)\n",
				d.Pos.Filename, d.Pos.Line, kind, strings.Join(d.Analyzers, ","))
			code = 1
		case d.Uses == 0:
			fmt.Printf("%s:%d: STALE %s %s: suppresses no diagnostic (%s)\n",
				d.Pos.Filename, d.Pos.Line, kind, strings.Join(d.Analyzers, ","), d.Reason)
			code = 1
		default:
			fmt.Printf("%s:%d: %s %s: used %d time(s) (%s)\n",
				d.Pos.Filename, d.Pos.Line, kind, strings.Join(d.Analyzers, ","), d.Uses, d.Reason)
		}
	}
	if code == 0 {
		fmt.Printf("%d directive(s), none stale\n", len(detail.Directives))
	}
	return code
}

func relPath(base, name string) string {
	if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

// writeStepSummary appends a markdown digest of the findings to the file
// named by GITHUB_STEP_SUMMARY, when running under GitHub Actions.
func writeStepSummary(findings []analysis.Finding) {
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "thriftyvet: step summary: %v\n", err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "## thriftyvet\n\n")
	if len(findings) == 0 {
		fmt.Fprintf(f, "No findings. :white_check_mark:\n")
		return
	}
	fmt.Fprintf(f, "%d finding(s):\n\n", len(findings))
	fmt.Fprintf(f, "| Location | Analyzer | Message |\n|---|---|---|\n")
	for _, fd := range findings {
		fmt.Fprintf(f, "| `%s:%d:%d` | %s | %s |\n",
			fd.Pos.Filename, fd.Pos.Line, fd.Pos.Column, fd.Analyzer, strings.ReplaceAll(fd.Message, "|", "\\|"))
	}
}
