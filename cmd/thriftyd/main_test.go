package main_test

import (
	"bytes"
	"net"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildCmd compiles this command into t.TempDir and returns the binary path.
func buildCmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "thriftyd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// Flag-validation failures must exit 2 with the diagnostic on stderr and
// nothing on stdout — the same contract as thriftysim, so scripted
// deployments can tell a typo (exit 2) from a runtime failure (exit 1)
// and never capture an error message as data.
func TestBadFlagsExitTwoStdoutClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildCmd(t)
	cases := [][]string{
		{"-listen", "not-an-address"},
		{"-listen", "127.0.0.1"}, // missing port
		{"-lease", "0s"},
		{"-lease", "-1s"},
		{"-max-epochs", "-1"},
		{"-radix", "0"},
		{"-stall-floor", "0s"},
		{"positional-arg"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%v: expected exit error, got %v", args, err)
		}
		if code := ee.ExitCode(); code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
		if stdout.Len() != 0 {
			t.Errorf("%v: stdout not clean: %q", args, stdout.String())
		}
		if stderr.Len() == 0 {
			t.Errorf("%v: no diagnostic on stderr", args)
		}
	}
}

// A bad runtime condition — a port that cannot be bound — must exit 1,
// not 2, and also keep stdout clean.
func TestBindFailureExitOne(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildCmd(t)
	// Occupy a port so the daemon's bind fails deterministically —
	// privileged-port tricks are not reliable under root or in CI.
	taken, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer taken.Close()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, "-listen", taken.Addr().String())
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err = cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("binding an occupied port succeeded or failed oddly: %v", err)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Errorf("exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout not clean: %q", stdout.String())
	}
}
