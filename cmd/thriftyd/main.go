// Command thriftyd serves thrifty barriers over the network: clients
// register arrivals at named barrier epochs, the server runs the paper's
// BIT prediction per (client, barrier) and answers each with a sleep
// directive (the Table 3 tier decision, made centrally), and release
// fan-out, lease-based failure detection and broken-epoch recovery keep
// the rendezvous both thrifty and live when clients crash, partition or
// reconnect.
//
// Usage:
//
//	thriftyd -listen :7474
//	thriftyd -listen 127.0.0.1:7474 -lease 2s -max-epochs 256
//
// Runtime diagnostics go to stderr; stdout stays clean (it is reserved
// for machine-readable output, matching the other commands in this
// repo).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"thriftybarrier/internal/remote"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7474", "TCP address to serve on")
		lease     = flag.Duration("lease", 5*time.Second, "client lease: silence past this breaks the client's in-flight epochs")
		maxEpochs = flag.Int("max-epochs", 0, "open-epoch watermark before directives are widened to shed load (0 = never)")
		radix     = flag.Int("radix", 8, "release fan-out leaf width")
		stall     = flag.Duration("stall-floor", 2*time.Second, "minimum stall-watchdog deadline")
		verbose   = flag.Bool("v", false, "log per-connection and per-epoch diagnostics")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		usage("unexpected arguments: %v", flag.Args())
	}
	if *lease <= 0 {
		usage("-lease must be positive, got %v", *lease)
	}
	if *maxEpochs < 0 {
		usage("-max-epochs must be >= 0, got %d", *maxEpochs)
	}
	if *radix < 1 {
		usage("-radix must be >= 1, got %d", *radix)
	}
	if *stall <= 0 {
		usage("-stall-floor must be positive, got %v", *stall)
	}
	if _, _, err := net.SplitHostPort(*listen); err != nil {
		usage("-listen %q is not a host:port address: %v", *listen, err)
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	srv := remote.NewServer(remote.Options{
		Lease:       *lease,
		MaxEpochs:   *maxEpochs,
		FanoutRadix: *radix,
		StallFloor:  *stall,
		Logf:        logf,
		OnStall: func(ev remote.StallEvent) {
			fmt.Fprintf(os.Stderr,
				"thriftyd: stall: barrier %q epoch %d has %d/%d arrived after %v (predicted %v)\n",
				ev.Barrier, ev.Epoch, ev.Arrived, ev.Parties, ev.Waited, ev.PredictedBIT)
		},
	})

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "thriftyd: serving on %v (lease %v)\n", l.Addr(), *lease)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "thriftyd: shutting down")
		srv.Close()
	}()

	if err := srv.Serve(l); err != nil {
		fatal(err)
	}
}

// fatal reports a runtime failure (exit 1); flag validation uses usage
// (exit 2) instead.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "thriftyd: %v\n", err)
	os.Exit(1)
}

func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "thriftyd: "+format+"\n", args...)
	os.Exit(2)
}
