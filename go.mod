module thriftybarrier

go 1.23
