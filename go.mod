module thriftybarrier

go 1.22
