package thrifty

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// The tree must reduce to the same rendezvous semantics as the central
// counter for any shape: every generation releases exactly when all
// parties arrive, across radices that exercise single-level, multi-level,
// and unbalanced (quota-remainder) trees.
func TestTreeBarrierReleasesAllShapes(t *testing.T) {
	shapes := []struct{ parties, radix int }{
		{4, 2},   // 2 leaves, 1 root level
		{5, 2},   // unbalanced leaf quotas (3+2... ceil(5/2)=3 leaves: 2+2+1)
		{16, 4},  // 4 leaves
		{27, 3},  // 9 leaves, 3 internal, root: 3 levels
		{64, 8},  // 8 leaves
		{7, 3},   // 3 leaves with remainder quotas
		{33, 16}, // 3 leaves, wide radix
	}
	for _, sh := range shapes {
		sh := sh
		t.Run("", func(t *testing.T) {
			t.Parallel()
			b := New(sh.parties, Options{TreeRadix: sh.radix})
			if b.tree == nil {
				t.Fatalf("parties=%d radix=%d: tree not selected", sh.parties, sh.radix)
			}
			const rounds = 50
			var wg sync.WaitGroup
			for p := 0; p < sh.parties; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						b.WaitSite(0xbeef)
					}
				}()
			}
			wg.Wait()
			st := b.Stats()
			if st.Generation != rounds {
				t.Fatalf("parties=%d radix=%d: generation=%d, want %d",
					sh.parties, sh.radix, st.Generation, rounds)
			}
			if w := st.Sites[0].Waits; w != uint64(sh.parties*rounds) {
				t.Fatalf("parties=%d radix=%d: waits=%d, want %d",
					sh.parties, sh.radix, w, sh.parties*rounds)
			}
		})
	}
}

// Degenerate shapes fall back to the central counter: a tree with a single
// leaf would serialize through one line anyway.
func TestTreeDegeneratesToFlat(t *testing.T) {
	for _, o := range []Options{
		{TreeRadix: 0},
		{TreeRadix: 1},
		{TreeRadix: -3},
		{TreeRadix: 8}, // parties 4 < radix: one leaf
		{TreeRadix: 4},
	} {
		b := New(4, o)
		if b.tree != nil {
			t.Fatalf("TreeRadix=%d with 4 parties built a tree", o.TreeRadix)
		}
	}
	if b := New(4, Options{TreeRadix: 2}); b.tree == nil {
		t.Fatal("TreeRadix=2 with 4 parties did not build a tree")
	}
}

// Leaf quotas must sum to the party count (the pigeonhole invariant that
// guarantees every arrival finds a leaf slot), and internal quotas to the
// child counts.
func TestTreeQuotaInvariant(t *testing.T) {
	for parties := 2; parties <= 130; parties++ {
		for _, radix := range []int{2, 3, 4, 7, 16} {
			tr := newArrivalTree(parties, radix)
			if tr == nil {
				continue
			}
			leafSum := 0
			for i := tr.leafBase; i < len(tr.nodes); i++ {
				q := int(tr.nodes[i].quota)
				if q < 1 {
					t.Fatalf("p=%d r=%d: leaf %d has zero quota", parties, radix, i)
				}
				if q > radix {
					t.Fatalf("p=%d r=%d: leaf %d quota %d > radix", parties, radix, i, q)
				}
				leafSum += q
			}
			if leafSum != parties {
				t.Fatalf("p=%d r=%d: leaf quotas sum to %d", parties, radix, leafSum)
			}
			// Count each node's children via parent links; roots aside,
			// every internal quota must equal its child count.
			children := make(map[int32]uint32)
			roots := 0
			for i := range tr.nodes {
				if p := tr.nodes[i].parent; p >= 0 {
					children[p]++
				} else {
					roots++
				}
			}
			if roots != 1 {
				t.Fatalf("p=%d r=%d: %d roots", parties, radix, roots)
			}
			for p, c := range children {
				if q := tr.nodes[p].quota; q != c {
					t.Fatalf("p=%d r=%d: node %d quota %d != %d children",
						parties, radix, p, q, c)
				}
			}
		}
	}
}

// Broken-barrier semantics are preserved verbatim under the tree: a
// cancelled participant breaks the generation, parked tree waiters wake
// with ErrBroken, and Reset re-arms.
func TestTreeBrokenAndReset(t *testing.T) {
	const parties = 12
	b := New(parties, Options{TreeRadix: 3})
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, parties-1)
	for i := 0; i < parties-2; i++ {
		//lint:ignore waitparties deliberate under-fill: the break must rescue the parked waiters
		go func() { errs <- b.WaitContext(context.Background()) }()
	}
	time.Sleep(20 * time.Millisecond)
	go func() { errs <- b.WaitContext(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	var gotCtx, gotBroken int
	for i := 0; i < parties-1; i++ {
		select {
		case err := <-errs:
			switch {
			case errors.Is(err, context.Canceled):
				gotCtx++
			case errors.Is(err, ErrBroken):
				gotBroken++
			default:
				t.Fatalf("waiter returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d waiters returned", i, parties-1)
		}
	}
	if gotCtx != 1 || gotBroken != parties-2 {
		t.Fatalf("outcomes: %d ctx, %d broken; want 1 and %d", gotCtx, gotBroken, parties-2)
	}
	if !b.Broken() {
		t.Fatal("barrier not broken after cancellation")
	}
	if err := b.WaitSiteContext(context.Background(), 0x9); !errors.Is(err, ErrBroken) {
		t.Fatalf("arrival on broken tree barrier returned %v, want ErrBroken", err)
	}

	b.Reset()
	if b.Broken() {
		t.Fatal("barrier still broken after Reset")
	}
	// The lazily-reset tree must complete generations normally again.
	var wg sync.WaitGroup
	for r := 0; r < 10; r++ {
		for i := 0; i < parties; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := b.WaitSiteContext(context.Background(), 0x9); err != nil {
					t.Errorf("post-Reset wait returned %v", err)
				}
			}()
		}
		wg.Wait()
	}
}

// Reset on a tree barrier with partially checked-in waiters must wake them
// (the always-close rule: a snapshot of leaf counts can miss an in-flight
// check-in, so tree Reset never strands one).
func TestTreeResetWakesPartialCheckIns(t *testing.T) {
	const parties = 9
	b := New(parties, Options{TreeRadix: 3})
	errs := make(chan error, parties-1)
	for i := 0; i < parties-1; i++ {
		//lint:ignore waitparties deliberate under-fill: Reset must wake the stranded waiters
		go func() { errs <- b.WaitSiteContext(context.Background(), 0x5) }()
	}
	time.Sleep(20 * time.Millisecond)
	b.Reset()
	for i := 0; i < parties-1; i++ {
		if err := <-errs; !errors.Is(err, ErrBroken) {
			t.Fatalf("reset waiter returned %v, want ErrBroken", err)
		}
	}
	if b.Stats().Breaks != 1 {
		t.Fatalf("breaks = %d, want 1", b.Stats().Breaks)
	}
}

// The stall watchdog sees tree arrivals: its head count comes from the
// leaf counters.
func TestTreeWatchdogHeadCount(t *testing.T) {
	const parties = 8
	stalled := make(chan StallInfo, 1)
	b := New(parties, Options{
		TreeRadix:  2,
		OnStall:    func(si StallInfo) { stalled <- si },
		StallFloor: 30 * time.Millisecond,
	})
	errs := make(chan error, parties)
	for i := 0; i < parties-1; i++ {
		//lint:ignore waitparties deliberate under-fill: the watchdog must report the deserter
		go func() { errs <- b.WaitSiteContext(context.Background(), 0x2) }()
	}
	select {
	case si := <-stalled:
		if si.Arrived != parties-1 || si.Parties != parties {
			t.Errorf("stall report %d/%d arrived, want %d/%d",
				si.Arrived, si.Parties, parties-1, parties)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired on a deserted tree generation")
	}
	// The deserter completes the generation.
	go func() { errs <- b.WaitSiteContext(context.Background(), 0x2) }()
	for i := 0; i < parties; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("waiter returned %v after the deserter arrived", err)
		}
	}
}

// The sharded release broadcast: a tree-mode round carries one broadcast
// channel per arrival leaf (wake fan-out follows the combining tree, like
// the invalidation fan-out to sharers), every shard closes at release,
// and the round channel still closes last as the global round-over
// signal.
func TestTreeShardedBroadcast(t *testing.T) {
	b := New(16, Options{TreeRadix: 4})
	if b.tree == nil {
		t.Fatal("tree not selected")
	}
	rd := b.cur.Load()
	if got, want := len(rd.leafCh), b.tree.leaves(); got != want {
		t.Fatalf("round has %d leaf channels, want %d (one per leaf)", got, want)
	}
	for leaf := 0; leaf < b.tree.leaves(); leaf++ {
		if rd.parkChan(leaf) != rd.leafCh[leaf] {
			t.Fatalf("leaf %d parks on the wrong shard", leaf)
		}
	}
	if rd.parkChan(-1) != rd.ch {
		t.Fatal("central arrival (leaf -1) must park on the round channel")
	}

	// Release by running a full generation; every shard and the round
	// channel must be closed afterwards.
	var wg sync.WaitGroup
	for p := 0; p < 16; p++ {
		wg.Add(1)
		go func() { defer wg.Done(); b.WaitSite(0xfa0) }()
	}
	wg.Wait()
	select {
	case <-rd.ch:
	default:
		t.Fatal("round channel not closed by release")
	}
	for leaf, ch := range rd.leafCh {
		select {
		case <-ch:
		default:
			t.Fatalf("leaf shard %d not closed by release", leaf)
		}
	}

	// Central topology carries no shards.
	if c := New(4, Options{}); c.cur.Load().leafCh != nil {
		t.Fatal("central round allocated leaf channels")
	}
}
