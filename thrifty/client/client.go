// Package client is the thin client half of the thriftyd protocol: it
// turns a remote thrifty-barrier service into a blocking Wait call with
// the same contract as the in-process thrifty.Barrier — nil on release,
// thrifty.ErrBroken when the rendezvous breaks, ctx.Err() for the caller
// that cancelled — while obeying the server's sleep directive (the
// paper's Table 3 tier decision, made server-side from the predicted
// stall) for how it waits locally.
//
// The client is built for a faulty transport. Every wait attempt carries
// a nonce the server keys its double-count guard on, so registers can be
// retransmitted freely: across silent frame drops (the register is
// re-sent until its directive arrives), across reconnects (a background
// redial re-registers every pending waiter with its original nonce), and
// across the release itself (a duplicate register is answered with the
// recorded outcome, never counted again). Reconnect backoff is
// exponential with deterministic jitter drawn from internal/fault.Source
// keyed by the client ID, so a chaos run's retry schedule replays
// exactly. A client that stays partitioned past the server's lease finds
// its epoch broken for everyone — the liveness half of the contract —
// and its own Wait surfaces thrifty.ErrBroken as soon as it reconnects
// and is handed the broken release.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"thriftybarrier/internal/fault"
	"thriftybarrier/internal/registry"
	"thriftybarrier/internal/remote"
	"thriftybarrier/thrifty"
)

// retryKind is this package's decision kind in its fault.Source space.
const retryKind uint64 = 1

// Options configures a Client. Dial and ClientID are required; every
// other zero field selects the default.
type Options struct {
	// Dial opens a connection to the server. It is called for the initial
	// connection and for every reconnect.
	Dial func(ctx context.Context) (net.Conn, error)
	// ClientID identifies this client to the server's lease table and
	// prediction machinery. It must be unique among live clients and
	// stable across reconnects.
	ClientID string

	// Lease should match the server's lease interval; heartbeats are sent
	// every Lease/3 (or HeartbeatEvery when set) and frame writes carry a
	// Lease-wide deadline. Default 5s.
	Lease          time.Duration
	HeartbeatEvery time.Duration

	// RetryBase/RetryMax bound the exponential reconnect-and-retransmit
	// backoff. Defaults 5ms and 500ms.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed feeds the deterministic backoff jitter. Default 1.
	Seed uint64

	// OnAdvisory, when non-nil, receives the server's stall advisories.
	OnAdvisory func(remote.Advisory)
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
	// Logf, when non-nil, receives diagnostic logs.
	Logf func(format string, args ...any)
}

func (o *Options) fill() error {
	if o.Dial == nil {
		return errors.New("client: Options.Dial is required")
	}
	if o.ClientID == "" {
		return errors.New("client: Options.ClientID is required")
	}
	if o.Lease == 0 {
		o.Lease = 5 * time.Second
	}
	if o.HeartbeatEvery == 0 {
		o.HeartbeatEvery = o.Lease / 3
	}
	if o.RetryBase == 0 {
		o.RetryBase = 5 * time.Millisecond
	}
	if o.RetryMax == 0 {
		o.RetryMax = 500 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// ErrClosed is returned by waits interrupted by Close.
var ErrClosed = errors.New("client: closed")

// Client is a connection to a thriftyd server. One Client serves any
// number of concurrent Wait calls on distinct barriers; it is safe for
// concurrent use.
type Client struct {
	opts Options
	src  *fault.Source // deterministic backoff jitter

	mu     sync.Mutex
	conn   net.Conn
	status chan []remote.BarrierStatus
	closed bool

	// waiters maps barrier → in-flight wait. Lookups on the frame
	// dispatch path (one per received frame) are lock-free; inserts
	// happen under mu so the closed check in addWaiter and the
	// collect-and-finish in Close cannot race.
	waiters *registry.Registry[*waiter]

	wmu sync.Mutex // frame writes

	dialMu    sync.Mutex // single-flight dialing
	redialing bool

	closedCh   chan struct{}
	baseCtx    context.Context // done when the client closes
	baseCancel context.CancelFunc
	hbOnce     sync.Once
	nonce      atomic.Uint64
	hbSeq      atomic.Uint64
	wg         sync.WaitGroup
}

// waiter is one in-flight Wait call.
type waiter struct {
	barrier string
	parties uint32
	nonce   uint64

	mu        sync.Mutex
	directive *remote.Directive
	err       error

	dirCh chan struct{} // closed when the directive lands
	done  chan struct{} // closed when the outcome lands
}

func (w *waiter) setDirective(d remote.Directive) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.directive == nil {
		w.directive = &d
		close(w.dirCh)
	}
}

func (w *waiter) finish(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	select {
	case <-w.done:
		return
	default:
	}
	w.err = err
	close(w.done)
}

func (w *waiter) finished() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// New builds a client. It does not dial; the first Wait (or Status)
// does.
func New(opts Options) (*Client, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Client{
		opts:       opts,
		src:        fault.NewSource(opts.Seed, "client/"+opts.ClientID),
		waiters:    registry.New[*waiter](4),
		closedCh:   make(chan struct{}),
		baseCtx:    ctx,
		baseCancel: cancel,
	}, nil
}

// dialContext derives a dial context from parent that also ends when the
// client closes, so no goroutine can stay wedged in Dial past Close.
func (c *Client) dialContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	stop := context.AfterFunc(c.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// Close tears the client down: the connection closes, every in-flight
// Wait returns ErrClosed, and background goroutines are joined.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	// Inserts happen under mu, so after closed is set the snapshot below
	// cannot miss a waiter that will never be finished.
	var waiters []*waiter
	c.waiters.Range(func(_ string, _ uint64, w *waiter) bool {
		waiters = append(waiters, w)
		return true
	})
	close(c.closedCh)
	c.baseCancel()
	if conn != nil {
		conn.Close()
	}
	for _, w := range waiters {
		w.finish(ErrClosed)
	}
	c.wg.Wait()
	return nil
}

// Wait arrives at the named barrier and blocks until the epoch releases
// (nil), breaks (thrifty.ErrBroken, wrapped with the server's reason),
// the ctx ends (ctx.Err(), after telling the server to break the epoch
// for the peers — the WaitContext contract), or the client closes
// (ErrClosed). How it blocks is the server's call: the registration's
// directive picks the spin/yield/timed-park/park tier from the predicted
// stall, and the client honors it locally.
func (c *Client) Wait(ctx context.Context, barrier string, parties int) error {
	w, err := c.addWaiter(barrier, parties)
	if err != nil {
		return err
	}
	defer c.removeWaiter(w)
	if err := c.register(ctx, w); err != nil {
		return err
	}
	return c.await(ctx, w)
}

// WaitTimeout is Wait with a hard deadline: past it, the wait gives up,
// the epoch is broken for the peers, and the call returns
// thrifty.ErrBroken (wrapped with the deadline) — the remote analog of a
// timed-out WaitContext.
func (c *Client) WaitTimeout(barrier string, parties int, d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	err := c.Wait(ctx, barrier, parties)
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: wait deadline %v exceeded", thrifty.ErrBroken, d)
	}
	return err
}

func (c *Client) addWaiter(barrier string, parties int) (*waiter, error) {
	if barrier == "" {
		return nil, errors.New("client: empty barrier name")
	}
	if parties < 1 {
		return nil, fmt.Errorf("client: parties %d < 1", parties)
	}
	w := &waiter{
		barrier: barrier,
		parties: uint32(parties),
		nonce:   c.nonce.Add(1),
		dirCh:   make(chan struct{}),
		done:    make(chan struct{}),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if _, ok := c.waiters.Insert(barrier, w); !ok {
		return nil, fmt.Errorf("client: wait already in flight on barrier %q", barrier)
	}
	return w, nil
}

func (c *Client) removeWaiter(w *waiter) {
	c.waiters.Delete(w.barrier, func(got *waiter) bool { return got == w })
}

func (c *Client) registerFrame(w *waiter) []byte {
	f := remote.Register{
		ClientID: c.opts.ClientID,
		Barrier:  w.barrier,
		Parties:  w.parties,
		Nonce:    w.nonce,
	}
	w.mu.Lock()
	if w.directive != nil {
		f.Epoch, f.Gen = w.directive.Epoch, w.directive.Gen
	}
	w.mu.Unlock()
	return f.Encode()
}

// register re-sends the registration until its directive (or outcome)
// arrives. The transport may silently drop any frame, so "sent" proves
// nothing — only the directive does; the nonce makes the retransmits
// harmless. Between sends it polls briefly at yield cadence (the
// fault-free directive arrives in microseconds) and then backs off
// exponentially with deterministic jitter.
func (c *Client) register(ctx context.Context, w *waiter) error {
	for attempt := 0; ; attempt++ {
		if w.finished() {
			return nil // outcome replayed before the directive: await reads it
		}
		select {
		case <-w.dirCh:
			return nil
		case <-ctx.Done():
			c.sendCancel(w, ctx.Err().Error())
			return ctx.Err()
		case <-c.closedCh:
			return ErrClosed
		default:
		}
		if conn, err := c.ensureConn(ctx); err == nil {
			c.write(conn, c.registerFrame(w))
		}
		// Fast path: yield-poll for the round trip before sleeping.
		for i := 0; i < 256; i++ {
			if w.finished() {
				return nil
			}
			select {
			case <-w.dirCh:
				return nil
			default:
				runtime.Gosched()
			}
		}
		if done := c.sleep(c.backoff(attempt), w.dirCh, w.done); done {
			continue
		}
		select {
		case <-ctx.Done():
			c.sendCancel(w, ctx.Err().Error())
			return ctx.Err()
		case <-c.closedCh:
			return ErrClosed
		default:
		}
	}
}

// await blocks until the waiter's outcome, honoring the directive's
// tier. Because the release frame itself may be dropped, the wait
// doubles as a pull loop: past the expected stall it re-sends the
// registration at a backed-off cadence, and the server replays either
// the still-open directive or the recorded release.
func (c *Client) await(ctx context.Context, w *waiter) error {
	w.mu.Lock()
	dir := w.directive
	w.mu.Unlock()

	// Directive-driven first phase.
	if dir != nil && !w.finished() {
		switch dir.Tier {
		case remote.TierSpin:
			// Busy-poll, bounded by twice the predicted stall: past that
			// the prediction was wrong and burning cycles stops paying.
			limit := 2 * time.Duration(dir.PredictedStallNanos)
			start := c.opts.Now()
			for !w.finished() && ctx.Err() == nil && c.opts.Now().Sub(start) < limit {
				runtime.Gosched()
			}
		case remote.TierTimedPark:
			// Sleep through the predicted stall (minus the server's
			// margin), then fall through to the poll loop for the rest.
			if d := time.Duration(dir.ParkNanos); d > 0 {
				c.sleep(d, w.done, ctx.Done())
			}
		}
	}

	// Poll-and-refresh phase: yield/park tiers start here immediately.
	poll := 2 * time.Millisecond
	if dir != nil && dir.PollNanos > 0 {
		poll = time.Duration(dir.PollNanos)
	}
	refresh := 8 * poll
	if refresh < 20*time.Millisecond {
		refresh = 20 * time.Millisecond
	}
	nextRefresh := c.opts.Now().Add(refresh)
	for {
		if w.finished() {
			w.mu.Lock()
			err := w.err
			w.mu.Unlock()
			return err
		}
		select {
		case <-ctx.Done():
			c.sendCancel(w, ctx.Err().Error())
			return ctx.Err()
		case <-c.closedCh:
			return ErrClosed
		default:
		}
		c.sleep(poll, w.done, ctx.Done())
		if now := c.opts.Now(); now.After(nextRefresh) {
			if conn, err := c.ensureConn(ctx); err == nil {
				c.write(conn, c.registerFrame(w))
			}
			if refresh < c.opts.RetryMax {
				refresh *= 2
			}
			nextRefresh = now.Add(refresh)
		}
	}
}

// sendCancel tells the server this attempt is abandoned, breaking the
// epoch for the peers. Best-effort: if it is lost, the lease breaks the
// epoch instead.
func (c *Client) sendCancel(w *waiter, reason string) {
	f := remote.Cancel{
		ClientID: c.opts.ClientID,
		Barrier:  w.barrier,
		Nonce:    w.nonce,
		Reason:   reason,
	}
	w.mu.Lock()
	if w.directive != nil {
		f.Epoch, f.Gen = w.directive.Epoch, w.directive.Gen
	}
	w.mu.Unlock()
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		c.write(conn, f.Encode())
	}
}

// sleep sleeps for d in small quanta, returning early (true) if either
// wake channel closes. Built on time.Sleep alone: the client library is
// inside the waketimer analyzer's scope, and a per-poll runtime timer
// heap entry is exactly the cost it polices.
func (c *Client) sleep(d time.Duration, wake1, wake2 <-chan struct{}) bool {
	const quantum = time.Millisecond
	deadline := c.opts.Now().Add(d)
	for {
		select {
		case <-wake1:
			return true
		case <-wake2:
			return true
		case <-c.closedCh:
			return true
		default:
		}
		remaining := deadline.Sub(c.opts.Now())
		if remaining <= 0 {
			return false
		}
		if remaining > quantum {
			remaining = quantum
		}
		time.Sleep(remaining)
	}
}

// backoff is exponential with deterministic jitter in [d/2, d]: the
// attempt schedule is a pure function of (Seed, ClientID, attempt), so a
// chaos run replays byte for byte.
func (c *Client) backoff(attempt int) time.Duration {
	shift := attempt
	if shift > 16 {
		shift = 16
	}
	d := c.opts.RetryBase << shift
	if d > c.opts.RetryMax || d <= 0 {
		d = c.opts.RetryMax
	}
	j := c.src.Roll(retryKind, uint64(attempt))
	return d/2 + time.Duration(float64(d/2)*j)
}

// ensureConn returns the live connection, dialing (single-flight) when
// there is none.
func (c *Client) ensureConn(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if conn := c.conn; conn != nil {
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()

	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if conn := c.conn; conn != nil {
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()

	dctx, done := c.dialContext(ctx)
	conn, err := c.opts.Dial(dctx)
	done()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	c.conn = conn
	c.wg.Add(1) // under mu: Close sets closed before it waits
	startHB := false
	c.hbOnce.Do(func() {
		c.wg.Add(1)
		startHB = true
	})
	c.mu.Unlock()
	go func() {
		defer c.wg.Done()
		c.readLoop(conn)
	}()
	if startHB {
		go func() {
			defer c.wg.Done()
			c.heartbeatLoop()
		}()
	}
	return conn, nil
}

// write sends one frame under the write lock with a lease-wide deadline.
// A failed write declares the connection lost.
func (c *Client) write(conn net.Conn, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	conn.SetWriteDeadline(c.opts.Now().Add(c.opts.Lease))
	if err := remote.WriteFrame(conn, payload); err != nil {
		c.connLost(conn, err)
		return err
	}
	return nil
}

// readLoop dispatches inbound frames until the connection dies.
func (c *Client) readLoop(conn net.Conn) {
	for {
		payload, err := remote.ReadFrame(conn)
		if err != nil {
			c.connLost(conn, err)
			return
		}
		switch payload[0] {
		case remote.FrameDirective:
			f, err := remote.DecodeDirective(payload)
			if err != nil {
				continue
			}
			if w := c.waiterFor(f.Barrier); w != nil && w.nonce == f.Nonce {
				w.setDirective(f)
			}
		case remote.FrameRelease:
			f, err := remote.DecodeRelease(payload)
			if err != nil {
				continue
			}
			w := c.waiterFor(f.Barrier)
			if w == nil {
				continue
			}
			// Accept when the epoch matches ours, or when we never
			// learned ours — a replayed outcome answering our register.
			w.mu.Lock()
			known := w.directive
			w.mu.Unlock()
			if known != nil && known.Epoch != f.Epoch {
				continue
			}
			if f.Broken {
				w.finish(fmt.Errorf("%w: %s", thrifty.ErrBroken, f.Reason))
			} else {
				w.finish(nil)
			}
		case remote.FrameAdvisory:
			f, err := remote.DecodeAdvisory(payload)
			if err != nil {
				continue
			}
			c.opts.Logf("client %s: stall advisory: barrier %q epoch %d %d/%d arrived",
				c.opts.ClientID, f.Barrier, f.Epoch, f.Arrived, f.Parties)
			if c.opts.OnAdvisory != nil {
				c.opts.OnAdvisory(f)
			}
		case remote.FrameError:
			f, err := remote.DecodeError(payload)
			if err != nil {
				continue
			}
			c.opts.Logf("client %s: server error %d: %s", c.opts.ClientID, f.Code, f.Msg)
			if f.Code == remote.ErrCodeParties && f.Barrier != "" {
				// Permanent for this wait: retrying cannot fix a width
				// disagreement.
				if w := c.waiterFor(f.Barrier); w != nil {
					w.finish(fmt.Errorf("client: %s", f.Msg))
				}
			}
		case remote.FrameStatus:
			rows, err := remote.DecodeStatus(payload)
			if err != nil {
				continue
			}
			c.mu.Lock()
			ch := c.status
			c.status = nil
			c.mu.Unlock()
			if ch != nil {
				ch <- rows
			}
		}
	}
}

// waiterFor resolves the in-flight wait on barrier (nil if none). This
// is the per-received-frame hot path, and the registry makes it
// lock-free: frame dispatch never queues behind Wait setup/teardown or
// the connection bookkeeping under c.mu.
func (c *Client) waiterFor(barrier string) *waiter {
	w, _, _ := c.waiters.Get(barrier)
	return w
}

// connLost drops a dead connection and, when waits are pending, kicks
// the background redial so reconnect does not wait for the next poll.
func (c *Client) connLost(conn net.Conn, err error) {
	conn.Close()
	c.mu.Lock()
	if c.conn != conn {
		c.mu.Unlock()
		return
	}
	c.conn = nil
	pending := c.waiters.Len() > 0
	kick := pending && !c.redialing && !c.closed
	if kick {
		c.redialing = true
		c.wg.Add(1) // under mu: Close sets closed before it waits
	}
	c.mu.Unlock()
	c.opts.Logf("client %s: connection lost: %v", c.opts.ClientID, err)
	if kick {
		go func() {
			defer c.wg.Done()
			c.redialLoop()
		}()
	}
}

// redialLoop re-dials after a lost connection and re-registers every
// pending waiter with its original nonce — the reconnect path of the
// idempotency contract. The waiters' own retransmit loops would get
// there eventually; this just gets there first.
func (c *Client) redialLoop() {
	defer func() {
		c.mu.Lock()
		c.redialing = false
		c.mu.Unlock()
	}()
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		var pending []*waiter
		c.waiters.Range(func(_ string, _ uint64, w *waiter) bool {
			pending = append(pending, w)
			return true
		})
		if closed || len(pending) == 0 {
			return
		}
		conn, err := c.ensureConn(c.baseCtx)
		if err != nil {
			if c.sleep(c.backoff(attempt), nil, nil) {
				return // closed
			}
			continue
		}
		for _, w := range pending {
			if !w.finished() {
				c.write(conn, c.registerFrame(w))
			}
		}
		return
	}
}

// heartbeatLoop renews the lease for as long as the client lives. A
// ticker, not a per-beat timer: one timer-heap entry total.
func (c *Client) heartbeatLoop() {
	t := time.NewTicker(c.opts.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-c.closedCh:
			return
		case <-t.C:
		}
		c.mu.Lock()
		conn := c.conn
		c.mu.Unlock()
		pending := c.waiters.Len() > 0
		if conn == nil && pending {
			// Keep the lease alive across a dropped connection too.
			var err error
			if conn, err = c.ensureConn(c.baseCtx); err != nil {
				continue
			}
		}
		if conn != nil {
			hb := remote.Heartbeat{ClientID: c.opts.ClientID, Seq: c.hbSeq.Add(1)}
			c.write(conn, hb.Encode())
		}
	}
}

// Status asks the server for its barrier table. One outstanding request
// at a time.
func (c *Client) Status(ctx context.Context) ([]remote.BarrierStatus, error) {
	ch := make(chan []remote.BarrierStatus, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.status != nil {
		c.mu.Unlock()
		return nil, errors.New("client: status request already in flight")
	}
	c.status = ch
	c.mu.Unlock()
	clear := func() {
		c.mu.Lock()
		if c.status == ch {
			c.status = nil
		}
		c.mu.Unlock()
	}
	conn, err := c.ensureConn(ctx)
	if err != nil {
		clear()
		return nil, err
	}
	if err := c.write(conn, remote.EncodeStatusReq()); err != nil {
		clear()
		return nil, err
	}
	select {
	case rows := <-ch:
		return rows, nil
	case <-ctx.Done():
		clear()
		return nil, ctx.Err()
	case <-c.closedCh:
		clear()
		return nil, ErrClosed
	}
}
