package thrifty

import (
	"sync"
	"testing"
	"time"

	"thriftybarrier/internal/wheel"
)

// TestJoinCoalescedSharesTick pins the coalescing rule with an hour-tick
// wheel (deadlines minutes apart quantize to the same tick, the wheel
// never fires during the test): same-tick joiners share one armed entry,
// a different-tick joiner falls back to a private entry (nil), and the
// last leaver cancels and unpublishes.
func TestJoinCoalescedSharesTick(t *testing.T) {
	w := wheel.New(wheel.Config{Tick: time.Hour})
	defer w.Stop()
	rd := &round{ch: make(chan struct{})}

	cw1 := joinCoalesced(w, rd, 10*time.Minute)
	if cw1 == nil {
		t.Fatal("first join did not create the shared entry")
	}
	if got := w.Stats().Armed; got != 1 {
		t.Fatalf("after first join: %d armed, want 1", got)
	}
	cw2 := joinCoalesced(w, rd, 20*time.Minute)
	if cw2 != cw1 {
		t.Fatal("same-tick join did not share the published entry")
	}
	if got := w.Stats().Armed; got != 1 {
		t.Fatalf("same-tick join armed a second entry (%d armed)", got)
	}
	if got := cw1.refs.Load(); got != 2 {
		t.Fatalf("refs = %d, want 2", got)
	}

	// 90 minutes is the next tick: must not join, must not disturb the
	// published entry.
	if other := joinCoalesced(w, rd, 90*time.Minute); other != nil {
		t.Fatal("different-tick join shared the entry instead of falling back")
	}
	if rd.coalesced.Load() != cw1 {
		t.Fatal("different-tick join displaced the published entry")
	}

	leaveCoalesced(w, rd, cw1)
	if rd.coalesced.Load() != cw1 {
		t.Fatal("non-final leave unpublished the entry")
	}
	if got := w.Stats().Armed; got != 1 {
		t.Fatalf("non-final leave cancelled the entry (%d armed)", got)
	}
	leaveCoalesced(w, rd, cw1)
	if rd.coalesced.Load() != nil {
		t.Fatal("final leave left the entry published")
	}
	s := w.Stats()
	if s.Armed != 0 || s.Cancelled != 1 {
		t.Fatalf("final leave: %d armed, %d cancelled, want 0/1", s.Armed, s.Cancelled)
	}

	// A fresh join after teardown creates a new entry.
	cw3 := joinCoalesced(w, rd, 10*time.Minute)
	if cw3 == nil || cw3 == cw1 {
		t.Fatalf("post-teardown join = %p, want fresh entry", cw3)
	}
	leaveCoalesced(w, rd, cw3)
}

// TestJoinCoalescedHelpsTeardown: a joiner that catches the entry with
// refs already at 0 (the last leaver has decremented but not yet
// unpublished) must not resurrect it — it helps clear the pointer and
// creates a fresh entry.
func TestJoinCoalescedHelpsTeardown(t *testing.T) {
	w := wheel.New(wheel.Config{Tick: time.Hour})
	defer w.Stop()
	rd := &round{ch: make(chan struct{})}

	cw := joinCoalesced(w, rd, 10*time.Minute)
	cw.refs.Store(0) // simulate the leaver's decrement landing first
	fresh := joinCoalesced(w, rd, 10*time.Minute)
	if fresh == cw {
		t.Fatal("join resurrected a zero-ref entry")
	}
	if fresh == nil || rd.coalesced.Load() != fresh {
		t.Fatal("join did not publish a fresh entry after helping teardown")
	}
	w.Cancel(cw.h) // the simulated leaver's half
	leaveCoalesced(w, rd, fresh)
}

// TestCoalescedFireWakesAllSharers drives the fire path end to end on a
// live millisecond wheel: every sharer of the coalesced entry observes
// the broadcast close, and the post-fire leaves (whose Cancel fails
// because the entry fired) tear down cleanly.
func TestCoalescedFireWakesAllSharers(t *testing.T) {
	w := wheel.New(wheel.Config{Tick: time.Millisecond})
	defer w.Stop()
	rd := &round{ch: make(chan struct{})}

	const sharers = 3
	var wg sync.WaitGroup
	for i := 0; i < sharers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cw := joinCoalesced(w, rd, 5*time.Millisecond)
			if cw == nil {
				// Tick-boundary straddle can split the group; a private
				// fallback is legal, just not shared — nothing to check.
				return
			}
			select {
			case <-cw.ch:
			case <-time.After(5 * time.Second):
				t.Error("coalesced wake-up never delivered")
			}
			leaveCoalesced(w, rd, cw)
		}()
	}
	wg.Wait()
	if got := w.Stats().Armed; got != 0 {
		t.Fatalf("%d entries still armed after fire and teardown", got)
	}
	if rd.coalesced.Load() != nil {
		t.Fatal("fired entry still published after all sharers left")
	}
}

// TestCoalescedJoinLeaveRace hammers join/leave from many goroutines
// under the race detector, mixing same-tick and different-tick deadlines
// so publishes, shared joins, private fallbacks, and teardowns all
// interleave.
func TestCoalescedJoinLeaveRace(t *testing.T) {
	w := wheel.New(wheel.Config{Tick: time.Hour})
	defer w.Stop()
	rd := &round{ch: make(chan struct{})}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := 10 * time.Minute
				if (g+i)%3 == 0 {
					d = 90 * time.Minute // next tick: forces the nil fallback
				}
				if cw := joinCoalesced(w, rd, d); cw != nil {
					leaveCoalesced(w, rd, cw)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := w.Stats().Armed; got != 0 {
		t.Fatalf("%d entries leaked after churn", got)
	}
}
