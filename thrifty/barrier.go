// Package thrifty provides an adaptive barrier for goroutines that applies
// the thrifty-barrier algorithm (Li, Martínez, Huang — HPCA 2004) at the
// runtime level. Goroutines arriving early at a barrier choose a wait
// strategy — spin, yield, timed park, or park — based on a per-call-site
// last-value prediction of the barrier interval time, the software
// analogue of the paper's selection among processor sleep states.
//
// The mapping from the paper's hardware mechanisms:
//
//   - Barrier interval time (BIT) prediction (§3.2): measured
//     release-to-release per call site (the "PC index"), last-value
//     predicted.
//   - sleep() best-fit scan (§3.1): the predicted stall is compared with
//     each wait tier's entry+exit cost; the cheapest-to-hold tier whose
//     costs are covered is chosen. Short stalls spin (lowest exit
//     latency), long stalls park (lowest hold cost — the "deep sleep").
//   - Hybrid wake-up (§3.3): parked waiters arm a timer at the predicted
//     release minus a margin (internal wake-up) and simultaneously wait on
//     the round's broadcast channel, which the releasing goroutine closes
//     (external wake-up, the analogue of the flag-flip invalidation). The
//     first to fire wins; a timer-woken waiter residual-spins.
//   - Overprediction cut-off (§3.3.3): a call site whose predictions
//     repeatedly miss by more than the cut-off fraction of the interval is
//     disabled and falls back to the default spin-then-park policy.
//
// Arrival itself is lock-free: the generation and arrival count live in a
// single atomic word (a sense-reversing counter — the release flips the
// generation, which is the "sense"), the current round is published through
// an atomic pointer, and per-site predictor state is updated with atomics,
// so the rendezvous hot path takes no mutex. The barrier's mutex serves
// only the slow paths: breaking a generation, Reset, and the stall
// watchdog. For large party counts, Options.TreeRadix arranges arrival as
// an MCS-style static combining tree of cache-line-padded counters, so
// arrival traffic is O(log N) per line instead of N CASes on one word;
// prediction, tier selection, cut-off and release semantics are identical
// in both topologies.
//
// The barrier is always correct regardless of prediction: every waiter
// ultimately blocks on the round channel, so a wildly wrong prediction can
// only cost efficiency, never correctness — mirroring the paper's
// "respects the original barrier semantics".
//
// Misbehaving participants are handled with CyclicBarrier-style
// broken-barrier semantics: WaitContext lets a waiter abandon the
// rendezvous, which breaks the current generation — every other waiter is
// woken with ErrBroken instead of hanging on a barrier that can no longer
// complete — and Reset re-arms the barrier. An optional stall watchdog
// (Options.OnStall) reports generations that exceed a multiple of their
// predicted interval, so deserted or wedged barriers surface as telemetry
// rather than silent hangs.
package thrifty

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBroken reports that the barrier's current generation was broken — a
// participant's context was cancelled or expired mid-wait, or Reset was
// called while waiters were blocked. Once broken, every blocked waiter
// (including already-parked ones) is woken and receives ErrBroken, and
// every new arrival fails fast with ErrBroken until Reset re-arms the
// barrier. This is the CyclicBarrier-style all-or-none contract: a broken
// generation never releases, so no caller can mistake a partial rendezvous
// for a completed one.
var ErrBroken = errors.New("thrifty: barrier is broken")

// noCopy triggers go vet's copylocks check on values embedding it,
// enforcing the "must not be copied after first use" doc contract.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// Tier identifies a wait strategy, ordered from lowest exit latency /
// highest hold cost (Spin) to highest exit latency / lowest hold cost
// (Park) — the software image of Table 3's sleep states.
type Tier int

const (
	// TierSpin busy-waits, checking the round channel; cheapest to leave,
	// most expensive to hold.
	TierSpin Tier = iota
	// TierYield loops over runtime.Gosched, sharing the processor.
	TierYield
	// TierTimedPark blocks with a timer armed at the predicted release
	// minus a margin, then residual-spins: the hybrid wake-up.
	TierTimedPark
	// TierPark blocks on the round channel until release: the deepest
	// state, woken externally only.
	TierPark
	numTiers
)

func (t Tier) String() string {
	switch t {
	case TierSpin:
		return "spin"
	case TierYield:
		return "yield"
	case TierTimedPark:
		return "timed-park"
	case TierPark:
		return "park"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Options configures a Barrier. The zero value of each field selects the
// default.
type Options struct {
	// SpinThreshold is the largest predicted stall that spins.
	// Default 20µs.
	SpinThreshold time.Duration
	// YieldThreshold is the largest predicted stall that yields.
	// Default 100µs.
	YieldThreshold time.Duration
	// ParkMargin is how long before the predicted release a timed-parked
	// waiter wakes to residual-spin (the internal wake-up anticipation).
	// Default 50µs.
	ParkMargin time.Duration
	// TimedParkThreshold is the largest predicted stall that uses a timed
	// park; beyond it the waiter parks outright. Default 5ms.
	TimedParkThreshold time.Duration
	// Cutoff is the overprediction threshold as a fraction of the interval
	// (paper: 10%). A site whose prediction misses by more than this,
	// MaxStrikes times, is disabled. Default 0.10.
	Cutoff float64
	// MaxStrikes is how many cut-off violations disable a site. Default 2.
	MaxStrikes int
	// SpinBudget bounds a spin/residual-spin loop before the waiter gives
	// up and parks (the external bound on a wrong "short" prediction).
	// Default 30µs worth of spinning.
	SpinBudget time.Duration
	// TreeRadix, when >= 2, checks arrivals in through an MCS-style static
	// combining tree instead of one central counter: waiters increment a
	// cache-line-padded leaf counter (at most TreeRadix parties share a
	// leaf), a leaf's last arriver propagates one token to its parent, and
	// the waiter that fills the root releases the barrier. Contention per
	// cache line is bounded by the radix, so arrival scales to large party
	// counts where the central counter's CAS retries collapse. Prediction,
	// tier selection, cut-off and broken-barrier semantics are unchanged.
	// Values below 2, or trees that would collapse to a single leaf, use
	// the central counter. Default 0 (central counter).
	TreeRadix int
	// OnStall, when non-nil, arms a stall watchdog: if a generation stays
	// open longer than StallMultiple times the site's predicted interval
	// (floored at StallFloor), OnStall is invoked once for that generation
	// with a snapshot of who arrived. The callback runs on the watchdog
	// timer's goroutine, must not call back into the barrier, and is
	// diagnostic only — it does not break the generation (a deserted
	// participant may still arrive; call Reset to give up on it).
	OnStall func(StallInfo)
	// StallMultiple scales the predicted interval into the watchdog
	// deadline. Default 8.
	StallMultiple float64
	// StallFloor is the minimum watchdog deadline, covering warm-up
	// generations with no prediction yet. Default 1s.
	StallFloor time.Duration
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

// StallInfo is the watchdog's report of a generation that exceeded its
// deadline: which call site the generation belongs to, how many of the
// parties made it, and how long the generation has been open.
type StallInfo struct {
	// Generation is the stalled generation's index (the barrier's release
	// count when it opened).
	Generation uint64
	// Site is the prediction key of the generation's first arriver — the
	// call site that is stalled.
	Site uintptr
	// Arrived and Parties report the head count: Parties-Arrived
	// participants are missing.
	Arrived, Parties int
	// Waited is how long the generation has been open (since the first
	// arrival).
	Waited time.Duration
	// PredictedBIT is the interval prediction the deadline was derived
	// from (zero during warm-up, when only StallFloor applies).
	PredictedBIT time.Duration
}

func (o *Options) fill() {
	if o.SpinThreshold == 0 {
		o.SpinThreshold = 20 * time.Microsecond
	}
	if o.YieldThreshold == 0 {
		o.YieldThreshold = 100 * time.Microsecond
	}
	if o.ParkMargin == 0 {
		o.ParkMargin = 50 * time.Microsecond
	}
	if o.TimedParkThreshold == 0 {
		o.TimedParkThreshold = 5 * time.Millisecond
	}
	if o.Cutoff == 0 {
		o.Cutoff = 0.10
	}
	if o.MaxStrikes == 0 {
		o.MaxStrikes = 2
	}
	if o.SpinBudget == 0 {
		o.SpinBudget = 30 * time.Microsecond
	}
	if o.StallMultiple == 0 {
		o.StallMultiple = 8
	}
	if o.StallFloor == 0 {
		o.StallFloor = time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// site is the prediction state of one barrier call site (the PC index).
// Every field is an atomic: sites are read and written on the lock-free
// arrival path, and Stats snapshots them concurrently.
type site struct {
	// bit is the last measured barrier interval in nanoseconds; values
	// <= 0 mean no valid prediction yet (the old valid flag, folded into
	// the sign).
	bit atomic.Int64
	// lastStall is the most recently observed wait duration at this site
	// in nanoseconds (0 = none yet, sub-nanosecond stalls round up to 1).
	// Tier selection clamps the interval-derived prediction with it: when
	// compute time is tiny, stall == BIT by construction, and without the
	// clamp the wait tier's own latency inflates BIT, which selects slower
	// tiers, which inflates BIT further (a positive feedback loop).
	lastStall atomic.Int64
	strikes   atomic.Int64
	disabled  atomic.Bool

	// Stats.
	waits      atomic.Uint64
	tiers      [numTiers]atomic.Uint64
	earlyWakes atomic.Uint64 // timer fired before release (residual spin)
	lateWakes  atomic.Uint64 // release beat the timer
	cutoffHits atomic.Uint64
	// parked accumulates wall time this site's waiters spent blocked in a
	// parking tier — CPU time freed for other work that a spin barrier
	// would have burned.
	parked atomic.Int64
}

// round is one barrier generation; its channel is closed at release or
// break (the external wake-up broadcast) and its done flag is the cheap
// spin target (a single atomic load per spin iteration instead of a
// channel select). A waiter woken through either must consult broken to
// tell a release from a break: the break path stores broken before done,
// so a waiter that observes done and then reads broken sees the truth.
type round struct {
	gen uint32 // must match the state word's generation field
	ch  chan struct{}
	// leafCh shards the external wake-up broadcast in tree topology: each
	// arrival leaf has its own channel, waiters park on the channel of the
	// leaf they checked in at, and the releaser closes the leaves one by
	// one before ch. This models the paper's invalidation fan-out to
	// sharers — the wake-up invalidations follow the same tree the
	// arrivals combined up — instead of one global close thundering every
	// party onto the releaser's processor at once. nil in central
	// topology; ch always closes last, so "<-rd.ch has returned" remains
	// the round-over signal for code that does not hold a leaf.
	leafCh []chan struct{}
	done   atomic.Bool
	broken atomic.Bool
	// coalesced publishes the round's shared internal wake-up (see
	// joinCoalesced in wake.go): waiters whose predicted releases
	// quantize to the same wheel tick share one broadcast-close entry
	// instead of arming one wheel entry each.
	coalesced atomic.Pointer[coalescedWake]
	// armed is the watchdog-arming claim: the first early arriver to win
	// the CAS arms the watchdog, so arming stays off the arrival word.
	armed atomic.Bool

	// Watchdog state, guarded by the barrier mutex. firstSite/openedAt
	// identify the generation for the OnStall report.
	watchdog  *time.Timer
	firstSite uintptr
	openedAt  time.Time
}

// The barrier's hot word packs the broken flag, the generation and the
// arrival count:
//
//	bit  63..32  generation (the sense: flipped by each release or Reset)
//	bit  31      broken flag
//	bits 30..0   arrival count (always 0 in tree topology)
//
// Packing all three makes every transition a single CAS whose failure
// modes are exact: an arrival cannot be counted into a generation that has
// released, broken, or been Reset, because any of those changes the word.
const brokenBit = uint64(1) << 31

func packState(gen uint32, count int) uint64 {
	return uint64(gen)<<32 | uint64(uint32(count))
}

func stateGen(st uint64) uint32 { return uint32(st >> 32) }
func stateCount(st uint64) int  { return int(uint32(st) &^ uint32(brokenBit)) }

// Barrier is a reusable barrier for a fixed number of goroutines with an
// adaptive, prediction-driven wait policy. It must not be copied after
// first use (go vet's copylocks check enforces this).
type Barrier struct {
	noCopy noCopy //nolint:unused // vet copylocks marker

	parties int
	opts    Options
	tree    *arrivalTree // non-nil when Options.TreeRadix selects the tree

	// state is the arrival word (see packState); cur publishes the round
	// whose gen matches it. An arriver loads cur first, then state: a
	// successful arrival CAS with rd.gen == stateGen pins rd to the
	// generation it joined.
	state       atomic.Uint64
	cur         atomic.Pointer[round]
	lastRelease atomic.Pointer[time.Time] // nil = discard the next interval
	generation  atomic.Uint64             // releases completed
	breaks      atomic.Uint64
	stalls      atomic.Uint64

	sites sync.Map // uintptr -> *site

	// mu serializes the slow paths only — breaking a generation, Reset,
	// and watchdog arm/stop. The arrival fast path never takes it.
	mu sync.Mutex

	// spinnable records whether busy-waiting can ever make progress:
	// with GOMAXPROCS=1 a spinner just blocks the releaser until the
	// scheduler preempts it (the same condition sync.Mutex's spin guard
	// checks), so the spin tier degrades to yielding.
	spinnable bool
}

// New creates a barrier for parties goroutines. It panics if parties < 1.
func New(parties int, opts Options) *Barrier {
	if parties < 1 {
		panic(fmt.Sprintf("thrifty: parties %d < 1", parties))
	}
	opts.fill()
	// lastRelease stays nil until the first release: the interval between
	// construction and the first episode absorbs arbitrary setup time and
	// must not seed the predictor, so the first measured BIT is discarded.
	b := &Barrier{
		parties:   parties,
		opts:      opts,
		spinnable: runtime.GOMAXPROCS(0) > 1,
	}
	// The tree must exist before the first round: newRound sizes the
	// sharded broadcast channels off the leaf count.
	if opts.TreeRadix >= 2 {
		if t := newArrivalTree(parties, opts.TreeRadix); t != nil {
			b.tree = t
		}
	}
	b.cur.Store(b.newRound(0))
	return b
}

// newRound builds the round for generation gen, with one broadcast
// channel per arrival leaf in tree topology (see round.leafCh).
func (b *Barrier) newRound(gen uint32) *round {
	rd := &round{gen: gen, ch: make(chan struct{})}
	if b.tree != nil {
		rd.leafCh = make([]chan struct{}, b.tree.leaves())
		for i := range rd.leafCh {
			rd.leafCh[i] = make(chan struct{})
		}
	}
	return rd
}

// parkChan is the channel a waiter that arrived at leaf parks on: the
// leaf's shard of the broadcast, or the round channel in central topology
// (leaf < 0).
func (rd *round) parkChan(leaf int) chan struct{} {
	if leaf >= 0 && rd.leafCh != nil {
		return rd.leafCh[leaf]
	}
	return rd.ch
}

// closeRound broadcasts the external wake-up: the leaf shards first (each
// close wakes only that leaf's sharers), then the round channel, which
// always closes last so its closure means "every waiter has been
// signalled".
func closeRound(rd *round) {
	for _, ch := range rd.leafCh {
		close(ch)
	}
	close(rd.ch)
}

// Parties reports the number of participating goroutines.
func (b *Barrier) Parties() int { return b.parties }

// Generation reports how many times the barrier has been released.
func (b *Barrier) Generation() uint64 { return b.generation.Load() }

// Wait blocks until all parties have called Wait for the current
// generation. The prediction index is the caller's program counter, the
// direct analogue of the paper's PC-indexed table; SPMD-style code gets
// per-static-barrier prediction automatically.
//
// If the barrier is broken while waiting (another participant's context
// was cancelled, or Reset was called), Wait panics with ErrBroken: the
// error-free signature has no way to report a failed rendezvous, and
// proceeding silently would forfeit the barrier guarantee. Code that mixes
// in cancellable participants should use WaitContext throughout.
func (b *Barrier) Wait() {
	pc, _, _, _ := runtime.Caller(1)
	if err := b.waitSite(nil, uintptr(pc)); err != nil {
		panic(err)
	}
}

// WaitSite is Wait with an explicit prediction index, for callers that
// wrap the barrier (where runtime.Caller would smear distinct phases into
// one site) — the paper's §3.2 alternative of indexing by barrier
// structure address. Like Wait, it panics with ErrBroken if the barrier is
// broken.
func (b *Barrier) WaitSite(key uintptr) {
	if err := b.waitSite(nil, key); err != nil {
		panic(err)
	}
}

// WaitContext is Wait with cancellation. It blocks until all parties have
// arrived (returning nil), the barrier breaks (returning ErrBroken), or
// ctx is cancelled.
//
// Cancellation breaks the current generation: the cancelled waiter returns
// ctx.Err(), and every other participant — including ones already parked
// deep in a wait tier, which are woken through the round's broadcast
// channel — returns ErrBroken instead of hanging forever on a rendezvous
// that can no longer complete. The barrier stays broken (all Wait variants
// fail fast with ErrBroken) until Reset re-arms it. A ctx that is already
// cancelled on entry returns ctx.Err() without joining or breaking the
// generation.
func (b *Barrier) WaitContext(ctx context.Context) error {
	pc, _, _, _ := runtime.Caller(1)
	return b.waitSite(ctx, uintptr(pc))
}

// WaitSiteContext is WaitContext with an explicit prediction index.
func (b *Barrier) WaitSiteContext(ctx context.Context, key uintptr) error {
	return b.waitSite(ctx, key)
}

// site returns the prediction state for key, creating it on first use.
// The double lookup keeps the steady state (site exists) allocation-free:
// sync.Map.Load is a lock-free read, and LoadOrStore's &site{} allocation
// happens at most once per key per losing racer.
func (b *Barrier) site(key uintptr) *site {
	if v, ok := b.sites.Load(key); ok {
		return v.(*site)
	}
	v, _ := b.sites.LoadOrStore(key, &site{})
	return v.(*site)
}

// arrive joins the current generation without taking any lock. It returns
// the round joined, the arrival leaf (-1 in central topology — park on the
// round channel), and whether this caller was the last arriver (the
// releaser). It fails fast with ErrBroken when the generation is broken.
//
// The ordering argument: rd is loaded from cur BEFORE the arrival CAS, and
// the CAS only succeeds while stateGen still equals rd.gen — so a
// successful CAS proves rd is the round of the generation the arrival was
// counted into. Any concurrent release, break, or Reset changes the state
// word (generation bump or broken bit) and forces the CAS to fail and the
// loop to re-observe.
func (b *Barrier) arrive() (rd *round, leaf int, last bool, err error) {
	spins := 0
	for {
		rd = b.cur.Load()
		st := b.state.Load()
		if st&brokenBit != 0 {
			return nil, -1, false, ErrBroken
		}
		g := stateGen(st)
		if rd.gen != g {
			// A release or Reset has claimed the generation but not yet
			// published its round: wait out the publication window.
			if spins++; spins%64 == 0 {
				runtime.Gosched()
			}
			continue
		}
		if b.tree != nil {
			lf, root, ok := b.tree.checkIn(g)
			if !ok {
				// The tree observed a newer generation than g: our view is
				// stale; re-observe.
				if spins++; spins%64 == 0 {
					runtime.Gosched()
				}
				continue
			}
			if !root {
				return rd, lf, false, nil
			}
			// Filling the root makes this waiter the releaser: claim the
			// generation. The only competing transition is a break or
			// Reset (the root fills once per generation).
			for {
				st = b.state.Load()
				if st&brokenBit != 0 || stateGen(st) != g {
					return nil, -1, false, ErrBroken
				}
				if b.state.CompareAndSwap(st, packState(g+1, 0)) {
					return rd, lf, true, nil
				}
			}
		}
		if cnt := stateCount(st); cnt+1 == b.parties {
			// Last arriver: flip the sense. Success atomically ends the
			// generation; failure means a racing arrival, break, or Reset.
			if b.state.CompareAndSwap(st, packState(g+1, 0)) {
				return rd, -1, true, nil
			}
		} else if b.state.CompareAndSwap(st, st+1) {
			return rd, -1, false, nil
		}
	}
}

// finishRelease completes a release claimed in arrive: measure the
// interval, feed the predictor, publish the next round, and broadcast the
// external wake-up. The claim CAS already ended the generation, so
// everything here races only with observers.
func (b *Barrier) finishRelease(rd *round, s *site, now time.Time) {
	// Measure the release-to-release interval. A nil lastRelease marks an
	// interval that must be discarded: the construction-to-first-release
	// one, and any interval spanning a break or Reset.
	if prev := b.lastRelease.Load(); prev != nil && !s.disabled.Load() {
		s.bit.Store(int64(now.Sub(*prev)))
	}
	release := now
	b.lastRelease.Store(&release)
	b.generation.Add(1)
	// Publish the next round before waking the old one's waiters, so a
	// woken waiter that immediately re-arrives finds cur already in sync
	// with the state word.
	b.cur.Store(b.newRound(rd.gen + 1))
	rd.done.Store(true)
	closeRound(rd) // external wake-up broadcast (sharded per leaf in tree mode)
	b.stopWatchdog(rd)
}

// arrivalPlan is everything a waiter computes before it starts waiting:
// the round it joined, its site, and — for early arrivers — the stall
// prediction and the wait tier it implies.
type arrivalPlan struct {
	rd *round
	s  *site
	// parkCh is the external wake-up channel for this waiter: its arrival
	// leaf's shard of the broadcast, or rd.ch in central topology.
	parkCh           chan struct{}
	last             bool
	tier             Tier
	predictedStall   time.Duration
	predictedRelease time.Time
	havePred         bool
	bit              time.Duration
}

// beginWait is the arrival fast path: join the generation lock-free, sign
// in at the call site, and either complete the release (last arriver) or
// predict the stall and pick the sleep tier. It is the segment the
// tentpole optimisation replaced — BenchmarkBarrierArrival measures
// exactly this call — and it takes no lock on any path.
func (b *Barrier) beginWait(key uintptr) (arrivalPlan, error) {
	now := b.opts.Now()
	rd, leaf, last, err := b.arrive()
	if err != nil {
		return arrivalPlan{}, err
	}
	s := b.site(key)
	s.waits.Add(1)
	plan := arrivalPlan{rd: rd, s: s, parkCh: rd.parkChan(leaf), last: last}
	if last {
		b.finishRelease(rd, s, now)
		return plan, nil
	}
	if b.opts.OnStall != nil && rd.armed.CompareAndSwap(false, true) {
		b.armWatchdog(rd, s, key, now)
	}

	// Early arriver: predict the stall, clamp it, and pick a tier. All
	// inputs are atomics, so the prediction needs no lock; a release
	// racing these reads can at worst misplace one tier choice, never
	// correctness.
	if v := s.bit.Load(); v > 0 && !s.disabled.Load() {
		if prev := b.lastRelease.Load(); prev != nil {
			plan.bit = time.Duration(v)
			plan.predictedRelease = prev.Add(plan.bit)
			plan.predictedStall = plan.predictedRelease.Sub(now)
			plan.havePred = plan.predictedStall > 0
		}
	}
	if ls := s.lastStall.Load(); ls > 0 && plan.havePred {
		if clamp := 2 * time.Duration(ls); clamp < plan.predictedStall {
			plan.predictedStall = clamp
		}
	}
	plan.tier = b.selectTier(plan.predictedStall, plan.havePred)
	s.tiers[plan.tier].Add(1)
	return plan, nil
}

// waitSite is the shared wait path. A nil ctx never cancels (its done
// channel is nil, which no select case ever fires on), so the plain Wait
// forms pay no extra cost beyond a nil check per spin batch.
func (b *Barrier) waitSite(ctx context.Context, key uintptr) error {
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			// Cancelled before arrival: the caller never joined this
			// generation, so there is nothing to break.
			return err
		}
		done = ctx.Done()
	}

	plan, err := b.beginWait(key)
	if err != nil {
		return err
	}
	if plan.last {
		return nil
	}
	rd, s, parkCh := plan.rd, plan.s, plan.parkCh
	tier := plan.tier
	predictedRelease, bit := plan.predictedRelease, plan.bit

	waitStart := b.opts.Now()
	var out waitOutcome
	cancelled := false
	switch tier {
	case TierSpin:
		cancelled = b.spinThenPark(rd, parkCh, done)
	case TierYield:
		cancelled = b.yieldThenPark(rd, parkCh, done)
	case TierTimedPark:
		out, cancelled = b.timedPark(rd, parkCh, predictedRelease, done)
		out.parking, out.judge = true, true
	case TierPark:
		select {
		case <-parkCh:
		case <-done:
			cancelled = true
		}
		out.parking, out.judge = true, true
	}
	end := b.opts.Now()
	stall := end.Sub(waitStart)

	if cancelled {
		if released := b.breakRound(rd); !released {
			return ctx.Err()
		}
		// The release won the race against the cancellation: this waiter
		// completed the rendezvous, so it reports success and its sample
		// feeds the predictor like any other wait.
	} else if rd.broken.Load() {
		// Woken by a break, not a release: no stall sample, no cut-off
		// verdict — a broken generation measures nothing.
		return ErrBroken
	}

	// Post-wait bookkeeping: the stall sample, parked-time accounting,
	// wake counters and the cut-off verdict, all on site atomics.
	if v := int64(stall); v > 0 {
		s.lastStall.Store(v)
	} else {
		s.lastStall.Store(1) // a measured-zero stall still counts as a sample
	}
	if out.parking && stall > 0 {
		s.parked.Add(int64(stall))
	}
	if out.earlyWake {
		s.earlyWakes.Add(1)
	}
	if out.lateWake {
		s.lateWakes.Add(1)
	}
	if out.judge {
		b.applyCutoff(s, predictedRelease, end, bit)
	}
	return nil
}

// breakRound breaks rd's generation on behalf of a cancelled waiter. It
// reports true if rd had in fact already been released (the cancellation
// lost the race and the waiter completed normally). Otherwise the
// generation is marked broken — waking every parked waiter through the
// round channel — unless another waiter broke it first.
func (b *Barrier) breakRound(rd *round) (released bool) {
	b.mu.Lock()
	if rd.broken.Load() {
		b.mu.Unlock()
		return false
	}
	if rd.done.Load() {
		b.mu.Unlock()
		return true
	}
	for {
		st := b.state.Load()
		if stateGen(st) != rd.gen {
			// Only a release moves the generation on from an unbroken
			// round (Reset marks it broken first, and we hold b.mu).
			b.mu.Unlock()
			return true
		}
		// Setting the broken bit in the state word is what makes the
		// break atomic against the lock-free paths: a release claim or an
		// arrival CAS racing us either beat this CAS (we retry and
		// re-check the generation) or fail on the changed word and
		// observe the broken bit.
		if b.state.CompareAndSwap(st, st|brokenBit) {
			break
		}
	}
	rd.broken.Store(true)
	rd.done.Store(true) // after broken: spin-woken waiters re-check broken
	b.breaks.Add(1)
	// Clear the stale release timestamp so the first interval measured
	// after Reset is discarded (it would span the broken period, poisoning
	// the predictor exactly like the construction-to-first-release one).
	b.lastRelease.Store(nil)
	b.stopWatchdogLocked(rd)
	b.mu.Unlock()
	closeRound(rd)
	return false
}

// Reset re-arms the barrier: if the current generation has blocked waiters
// (or is already broken), they are woken with ErrBroken, and a fresh
// generation is installed. Use it to recover after a break, or to abandon
// a generation whose missing participant will never arrive (e.g. after the
// stall watchdog fired).
func (b *Barrier) Reset() {
	b.mu.Lock()
	rd := b.cur.Load()
	for {
		st := b.state.Load()
		if stateGen(st) != rd.gen {
			// A release claimed the generation and is publishing the next
			// round: the barrier is already freshly armed, so there is
			// nothing to tear down. Still discard the interval spanning
			// the Reset, like the construction interval.
			b.lastRelease.Store(nil)
			b.mu.Unlock()
			return
		}
		wasBroken := st&brokenBit != 0
		arrived := stateCount(st)
		if b.tree != nil {
			arrived = b.tree.arrived(rd.gen)
		}
		if !b.state.CompareAndSwap(st, packState(rd.gen+1, 0)) {
			continue
		}
		b.cur.Store(b.newRound(rd.gen + 1))
		// In tree topology an arrival may have checked in between the
		// count snapshot and the CAS, so the round is always closed out;
		// with the central counter the CAS makes the count exact.
		needClose := !wasBroken && (arrived > 0 || b.tree != nil)
		if needClose {
			rd.broken.Store(true)
			rd.done.Store(true)
			if arrived > 0 {
				b.breaks.Add(1)
			}
		}
		b.lastRelease.Store(nil)
		b.stopWatchdogLocked(rd)
		b.mu.Unlock()
		if needClose {
			closeRound(rd)
		}
		return
	}
}

// Broken reports whether the current generation is broken (and Reset has
// not yet re-armed the barrier).
func (b *Barrier) Broken() bool {
	return b.cur.Load().broken.Load()
}

// armWatchdog schedules the stall check for a newly opened generation:
// the deadline is StallMultiple x the site's predicted interval, floored
// at StallFloor. Called by the early arriver that won the round's arming
// CAS.
func (b *Barrier) armWatchdog(rd *round, s *site, key uintptr, now time.Time) {
	d := b.opts.StallFloor
	var bit time.Duration
	if v := s.bit.Load(); v > 0 && !s.disabled.Load() {
		bit = time.Duration(v)
		if m := time.Duration(b.opts.StallMultiple * float64(bit)); m > d {
			d = m
		}
	}
	gen := b.generation.Load()
	b.mu.Lock()
	defer b.mu.Unlock()
	if rd.done.Load() || rd.broken.Load() {
		// The generation ended between arrival and arming: the releaser
		// or breaker already ran its watchdog stop, so arming now would
		// leak a timer for a closed round.
		return
	}
	rd.firstSite, rd.openedAt = key, now
	rd.watchdog = time.AfterFunc(d, func() { b.stallCheck(rd, gen, bit) })
}

// stopWatchdog cancels rd's watchdog at release. The armed fast check
// keeps the common unarmed case (OnStall unset, or this round's arming CAS
// not yet won) off the mutex.
func (b *Barrier) stopWatchdog(rd *round) {
	if b.opts.OnStall == nil || !rd.armed.Load() {
		return
	}
	b.mu.Lock()
	b.stopWatchdogLocked(rd)
	b.mu.Unlock()
}

func (b *Barrier) stopWatchdogLocked(rd *round) {
	if rd.watchdog != nil {
		rd.watchdog.Stop()
		rd.watchdog = nil
	}
}

// stallCheck runs when a generation's watchdog deadline expires: if the
// generation is still open (neither released nor broken), it reports the
// stall. The callback is invoked without holding the barrier lock.
func (b *Barrier) stallCheck(rd *round, gen uint64, bit time.Duration) {
	st := b.state.Load()
	if st&brokenBit != 0 || stateGen(st) != rd.gen {
		return
	}
	arrived := stateCount(st)
	if b.tree != nil {
		arrived = b.tree.arrived(rd.gen)
	}
	b.mu.Lock()
	if rd.done.Load() || rd.broken.Load() {
		b.mu.Unlock()
		return
	}
	info := StallInfo{
		Generation:   gen,
		Site:         rd.firstSite,
		Arrived:      arrived,
		Parties:      b.parties,
		Waited:       b.opts.Now().Sub(rd.openedAt),
		PredictedBIT: bit,
	}
	b.stalls.Add(1)
	b.mu.Unlock()
	b.opts.OnStall(info)
}

// waitOutcome is what the wait path reports back so that all post-wait
// bookkeeping folds into one place.
type waitOutcome struct {
	// parking marks a parking tier: the stall counts as freed CPU time.
	parking bool
	// earlyWake/lateWake record how a timed park resolved.
	earlyWake bool
	lateWake  bool
	// judge marks waits whose prediction drove a park and must face the
	// §3.3.3 cut-off.
	judge bool
}

// selectTier is the sleep() best-fit scan (§3.1) over the wait tiers.
func (b *Barrier) selectTier(stall time.Duration, havePred bool) Tier {
	if !havePred {
		// Warm-up / disabled: conventional behaviour — a bounded spin then
		// park, the usual adaptive-mutex policy.
		if !b.spinnable {
			return TierYield
		}
		return TierSpin
	}
	switch {
	case stall <= b.opts.SpinThreshold:
		if !b.spinnable {
			return TierYield
		}
		return TierSpin
	case stall <= b.opts.YieldThreshold:
		return TierYield
	case stall <= b.opts.TimedParkThreshold:
		return TierTimedPark
	default:
		return TierPark
	}
}

// spinThenPark busy-waits within the spin budget, then parks — a wrong
// "short" prediction costs at most the budget. The hot loop is a single
// atomic load; the clock and the cancellation channel are consulted only
// every batch (done is nil for plain Wait callers and never fires). It
// reports whether the wait ended by cancellation.
func (b *Barrier) spinThenPark(rd *round, parkCh chan struct{}, done <-chan struct{}) (cancelled bool) {
	if !b.spinnable {
		return b.yieldThenPark(rd, parkCh, done)
	}
	deadline := b.opts.Now().Add(b.opts.SpinBudget)
	for {
		for i := 0; i < 1024; i++ {
			if rd.done.Load() {
				return false
			}
		}
		if done != nil {
			select {
			case <-done:
				return true
			default:
			}
		}
		if b.opts.Now().After(deadline) {
			select {
			case <-parkCh:
				return false
			case <-done:
				return true
			}
		}
	}
}

// yieldThenPark shares the processor while polling, then parks.
func (b *Barrier) yieldThenPark(rd *round, parkCh chan struct{}, done <-chan struct{}) (cancelled bool) {
	deadline := b.opts.Now().Add(b.opts.SpinBudget)
	for {
		if rd.done.Load() {
			return false
		}
		if done != nil {
			select {
			case <-done:
				return true
			default:
			}
		}
		runtime.Gosched()
		if b.opts.Now().After(deadline) {
			select {
			case <-parkCh:
				return false
			case <-done:
				return true
			}
		}
	}
}

// applyCutoff applies the §3.3.3 overprediction threshold: if the predicted
// release is later than the actual one by more than Cutoff x BIT, strike
// the site; MaxStrikes strikes disable prediction there. Only
// OVERprediction may strike — an oversleeping waiter lands its wake latency
// on the critical path, which is the failure mode the cut-off exists to
// bound. Underprediction (actual release later than predicted) costs at
// most a bounded residual spin under the hybrid wake-up and must never
// disable a site.
func (b *Barrier) applyCutoff(s *site, predictedRelease, actual time.Time, bit time.Duration) {
	if bit <= 0 || predictedRelease.IsZero() {
		return
	}
	over := predictedRelease.Sub(actual)
	if over <= 0 {
		return // underprediction: never a strike
	}
	if float64(over) <= b.opts.Cutoff*float64(bit) {
		return
	}
	s.cutoffHits.Add(1)
	if s.strikes.Add(1) >= int64(b.opts.MaxStrikes) {
		s.disabled.Store(true)
	}
}

// SiteStats is a snapshot of one call site's behaviour.
type SiteStats struct {
	Key        uintptr
	Waits      uint64
	Tiers      [4]uint64 // indexed by Tier
	EarlyWakes uint64
	LateWakes  uint64
	CutoffHits uint64
	Disabled   bool
	LastBIT    time.Duration
	// Parked is the wall time waiters spent blocked instead of spinning —
	// the CPU time this barrier freed at this site.
	Parked time.Duration
}

// Stats is a snapshot of the barrier's behaviour.
type Stats struct {
	Generation uint64
	// Breaks counts generations that ended broken — by a cancelled
	// participant or by Reset — instead of releasing.
	Breaks uint64
	// Stalls counts stall-watchdog firings (OnStall invocations).
	Stalls uint64
	Sites  []SiteStats
}

// Stats returns a snapshot of predictor and tier statistics. Each counter
// is read atomically; the snapshot as a whole is not a cross-counter
// linearization (a concurrent wait may land between two reads), which is
// fine for the telemetry it feeds.
func (b *Barrier) Stats() Stats {
	out := Stats{
		Generation: b.generation.Load(),
		Breaks:     b.breaks.Load(),
		Stalls:     b.stalls.Load(),
	}
	b.sites.Range(func(k, v any) bool {
		s := v.(*site)
		bit := s.bit.Load()
		if bit < 0 {
			bit = 0
		}
		ss := SiteStats{
			Key:        k.(uintptr),
			Waits:      s.waits.Load(),
			EarlyWakes: s.earlyWakes.Load(),
			LateWakes:  s.lateWakes.Load(),
			CutoffHits: s.cutoffHits.Load(),
			Disabled:   s.disabled.Load(),
			LastBIT:    time.Duration(bit),
			Parked:     time.Duration(s.parked.Load()),
		}
		for i := range s.tiers {
			ss.Tiers[i] = s.tiers[i].Load()
		}
		out.Sites = append(out.Sites, ss)
		return true
	})
	return out
}
