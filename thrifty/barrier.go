// Package thrifty provides an adaptive barrier for goroutines that applies
// the thrifty-barrier algorithm (Li, Martínez, Huang — HPCA 2004) at the
// runtime level. Goroutines arriving early at a barrier choose a wait
// strategy — spin, yield, timed park, or park — based on a per-call-site
// last-value prediction of the barrier interval time, the software
// analogue of the paper's selection among processor sleep states.
//
// The mapping from the paper's hardware mechanisms:
//
//   - Barrier interval time (BIT) prediction (§3.2): measured
//     release-to-release per call site (the "PC index"), last-value
//     predicted.
//   - sleep() best-fit scan (§3.1): the predicted stall is compared with
//     each wait tier's entry+exit cost; the cheapest-to-hold tier whose
//     costs are covered is chosen. Short stalls spin (lowest exit
//     latency), long stalls park (lowest hold cost — the "deep sleep").
//   - Hybrid wake-up (§3.3): parked waiters arm a timer at the predicted
//     release minus a margin (internal wake-up) and simultaneously wait on
//     the round's broadcast channel, which the releasing goroutine closes
//     (external wake-up, the analogue of the flag-flip invalidation). The
//     first to fire wins; a timer-woken waiter residual-spins.
//   - Overprediction cut-off (§3.3.3): a call site whose predictions
//     repeatedly miss by more than the cut-off fraction of the interval is
//     disabled and falls back to the default spin-then-park policy.
//
// The barrier is always correct regardless of prediction: every waiter
// ultimately blocks on the round channel, so a wildly wrong prediction can
// only cost efficiency, never correctness — mirroring the paper's
// "respects the original barrier semantics".
//
// Misbehaving participants are handled with CyclicBarrier-style
// broken-barrier semantics: WaitContext lets a waiter abandon the
// rendezvous, which breaks the current generation — every other waiter is
// woken with ErrBroken instead of hanging on a barrier that can no longer
// complete — and Reset re-arms the barrier. An optional stall watchdog
// (Options.OnStall) reports generations that exceed a multiple of their
// predicted interval, so deserted or wedged barriers surface as telemetry
// rather than silent hangs.
package thrifty

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBroken reports that the barrier's current generation was broken — a
// participant's context was cancelled or expired mid-wait, or Reset was
// called while waiters were blocked. Once broken, every blocked waiter
// (including already-parked ones) is woken and receives ErrBroken, and
// every new arrival fails fast with ErrBroken until Reset re-arms the
// barrier. This is the CyclicBarrier-style all-or-none contract: a broken
// generation never releases, so no caller can mistake a partial rendezvous
// for a completed one.
var ErrBroken = errors.New("thrifty: barrier is broken")

// noCopy triggers go vet's copylocks check on values embedding it,
// enforcing the "must not be copied after first use" doc contract.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// Tier identifies a wait strategy, ordered from lowest exit latency /
// highest hold cost (Spin) to highest exit latency / lowest hold cost
// (Park) — the software image of Table 3's sleep states.
type Tier int

const (
	// TierSpin busy-waits, checking the round channel; cheapest to leave,
	// most expensive to hold.
	TierSpin Tier = iota
	// TierYield loops over runtime.Gosched, sharing the processor.
	TierYield
	// TierTimedPark blocks with a timer armed at the predicted release
	// minus a margin, then residual-spins: the hybrid wake-up.
	TierTimedPark
	// TierPark blocks on the round channel until release: the deepest
	// state, woken externally only.
	TierPark
	numTiers
)

func (t Tier) String() string {
	switch t {
	case TierSpin:
		return "spin"
	case TierYield:
		return "yield"
	case TierTimedPark:
		return "timed-park"
	case TierPark:
		return "park"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Options configures a Barrier. The zero value of each field selects the
// default.
type Options struct {
	// SpinThreshold is the largest predicted stall that spins.
	// Default 20µs.
	SpinThreshold time.Duration
	// YieldThreshold is the largest predicted stall that yields.
	// Default 100µs.
	YieldThreshold time.Duration
	// ParkMargin is how long before the predicted release a timed-parked
	// waiter wakes to residual-spin (the internal wake-up anticipation).
	// Default 50µs.
	ParkMargin time.Duration
	// TimedParkThreshold is the largest predicted stall that uses a timed
	// park; beyond it the waiter parks outright. Default 5ms.
	TimedParkThreshold time.Duration
	// Cutoff is the overprediction threshold as a fraction of the interval
	// (paper: 10%). A site whose prediction misses by more than this,
	// MaxStrikes times, is disabled. Default 0.10.
	Cutoff float64
	// MaxStrikes is how many cut-off violations disable a site. Default 2.
	MaxStrikes int
	// SpinBudget bounds a spin/residual-spin loop before the waiter gives
	// up and parks (the external bound on a wrong "short" prediction).
	// Default 30µs worth of spinning.
	SpinBudget time.Duration
	// OnStall, when non-nil, arms a stall watchdog: if a generation stays
	// open longer than StallMultiple times the site's predicted interval
	// (floored at StallFloor), OnStall is invoked once for that generation
	// with a snapshot of who arrived. The callback runs on the watchdog
	// timer's goroutine, must not call back into the barrier, and is
	// diagnostic only — it does not break the generation (a deserted
	// participant may still arrive; call Reset to give up on it).
	OnStall func(StallInfo)
	// StallMultiple scales the predicted interval into the watchdog
	// deadline. Default 8.
	StallMultiple float64
	// StallFloor is the minimum watchdog deadline, covering warm-up
	// generations with no prediction yet. Default 1s.
	StallFloor time.Duration
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

// StallInfo is the watchdog's report of a generation that exceeded its
// deadline: which call site the generation belongs to, how many of the
// parties made it, and how long the generation has been open.
type StallInfo struct {
	// Generation is the stalled generation's index (the barrier's release
	// count when it opened).
	Generation uint64
	// Site is the prediction key of the generation's first arriver — the
	// call site that is stalled.
	Site uintptr
	// Arrived and Parties report the head count: Parties-Arrived
	// participants are missing.
	Arrived, Parties int
	// Waited is how long the generation has been open (since the first
	// arrival).
	Waited time.Duration
	// PredictedBIT is the interval prediction the deadline was derived
	// from (zero during warm-up, when only StallFloor applies).
	PredictedBIT time.Duration
}

func (o *Options) fill() {
	if o.SpinThreshold == 0 {
		o.SpinThreshold = 20 * time.Microsecond
	}
	if o.YieldThreshold == 0 {
		o.YieldThreshold = 100 * time.Microsecond
	}
	if o.ParkMargin == 0 {
		o.ParkMargin = 50 * time.Microsecond
	}
	if o.TimedParkThreshold == 0 {
		o.TimedParkThreshold = 5 * time.Millisecond
	}
	if o.Cutoff == 0 {
		o.Cutoff = 0.10
	}
	if o.MaxStrikes == 0 {
		o.MaxStrikes = 2
	}
	if o.SpinBudget == 0 {
		o.SpinBudget = 30 * time.Microsecond
	}
	if o.StallMultiple == 0 {
		o.StallMultiple = 8
	}
	if o.StallFloor == 0 {
		o.StallFloor = time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// site is the prediction state of one barrier call site (the PC index).
type site struct {
	lastBIT  time.Duration
	valid    bool
	strikes  int
	disabled bool
	// lastStall is the most recently observed wait duration at this site.
	// Tier selection clamps the interval-derived prediction with it: when
	// compute time is tiny, stall == BIT by construction, and without the
	// clamp the wait tier's own latency inflates BIT, which selects slower
	// tiers, which inflates BIT further (a positive feedback loop).
	lastStall      time.Duration
	lastStallValid bool

	// Stats.
	waits      uint64
	tiers      [numTiers]uint64
	earlyWakes uint64 // timer fired before release (residual spin)
	lateWakes  uint64 // release beat the timer
	cutoffHits uint64
	// parked accumulates wall time this site's waiters spent blocked in a
	// parking tier — CPU time freed for other work that a spin barrier
	// would have burned.
	parked time.Duration
}

// round is one barrier generation; its channel is closed at release or
// break (the external wake-up broadcast) and its done flag is the cheap
// spin target (a single atomic load per spin iteration instead of a
// channel select). A waiter woken through either must consult broken to
// tell a release from a break: the break path stores broken before done,
// so a waiter that observes done and then reads broken sees the truth.
type round struct {
	ch     chan struct{}
	done   atomic.Bool
	broken atomic.Bool

	// Watchdog state, guarded by the barrier mutex. firstSite/openedAt
	// identify the generation for the OnStall report.
	watchdog  *time.Timer
	firstSite uintptr
	openedAt  time.Time
}

// Barrier is a reusable barrier for a fixed number of goroutines with an
// adaptive, prediction-driven wait policy. It must not be copied after
// first use (go vet's copylocks check enforces this).
type Barrier struct {
	noCopy noCopy //nolint:unused // vet copylocks marker

	parties int
	opts    Options

	mu          sync.Mutex
	count       int
	generation  uint64
	cur         *round
	lastRelease time.Time
	sites       map[uintptr]*site
	breaks      uint64
	stalls      uint64

	// spinnable records whether busy-waiting can ever make progress:
	// with GOMAXPROCS=1 a spinner just blocks the releaser until the
	// scheduler preempts it (the same condition sync.Mutex's spin guard
	// checks), so the spin tier degrades to yielding.
	spinnable bool
}

// New creates a barrier for parties goroutines. It panics if parties < 1.
func New(parties int, opts Options) *Barrier {
	if parties < 1 {
		panic(fmt.Sprintf("thrifty: parties %d < 1", parties))
	}
	opts.fill()
	// lastRelease stays zero until the first release: the interval between
	// construction and the first episode absorbs arbitrary setup time and
	// must not seed the predictor, so the first measured BIT is discarded.
	return &Barrier{
		parties:   parties,
		opts:      opts,
		cur:       &round{ch: make(chan struct{})},
		sites:     make(map[uintptr]*site),
		spinnable: runtime.GOMAXPROCS(0) > 1,
	}
}

// Parties reports the number of participating goroutines.
func (b *Barrier) Parties() int { return b.parties }

// Generation reports how many times the barrier has been released.
func (b *Barrier) Generation() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.generation
}

// Wait blocks until all parties have called Wait for the current
// generation. The prediction index is the caller's program counter, the
// direct analogue of the paper's PC-indexed table; SPMD-style code gets
// per-static-barrier prediction automatically.
//
// If the barrier is broken while waiting (another participant's context
// was cancelled, or Reset was called), Wait panics with ErrBroken: the
// error-free signature has no way to report a failed rendezvous, and
// proceeding silently would forfeit the barrier guarantee. Code that mixes
// in cancellable participants should use WaitContext throughout.
func (b *Barrier) Wait() {
	pc, _, _, _ := runtime.Caller(1)
	if err := b.waitSite(nil, uintptr(pc)); err != nil {
		panic(err)
	}
}

// WaitSite is Wait with an explicit prediction index, for callers that
// wrap the barrier (where runtime.Caller would smear distinct phases into
// one site) — the paper's §3.2 alternative of indexing by barrier
// structure address. Like Wait, it panics with ErrBroken if the barrier is
// broken.
func (b *Barrier) WaitSite(key uintptr) {
	if err := b.waitSite(nil, key); err != nil {
		panic(err)
	}
}

// WaitContext is Wait with cancellation. It blocks until all parties have
// arrived (returning nil), the barrier breaks (returning ErrBroken), or
// ctx is cancelled.
//
// Cancellation breaks the current generation: the cancelled waiter returns
// ctx.Err(), and every other participant — including ones already parked
// deep in a wait tier, which are woken through the round's broadcast
// channel — returns ErrBroken instead of hanging forever on a rendezvous
// that can no longer complete. The barrier stays broken (all Wait variants
// fail fast with ErrBroken) until Reset re-arms it. A ctx that is already
// cancelled on entry returns ctx.Err() without joining or breaking the
// generation.
func (b *Barrier) WaitContext(ctx context.Context) error {
	pc, _, _, _ := runtime.Caller(1)
	return b.waitSite(ctx, uintptr(pc))
}

// WaitSiteContext is WaitContext with an explicit prediction index.
func (b *Barrier) WaitSiteContext(ctx context.Context, key uintptr) error {
	return b.waitSite(ctx, key)
}

// waitSite is the shared wait path. A nil ctx never cancels (its done
// channel is nil, which no select case ever fires on), so the plain Wait
// forms pay no extra cost beyond a nil check per spin batch.
func (b *Barrier) waitSite(ctx context.Context, key uintptr) error {
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			// Cancelled before arrival: the caller never joined this
			// generation, so there is nothing to break.
			return err
		}
		done = ctx.Done()
	}
	now := b.opts.Now()

	b.mu.Lock()
	rd := b.cur
	if rd.broken.Load() {
		b.mu.Unlock()
		return ErrBroken
	}
	s := b.sites[key]
	if s == nil {
		s = &site{}
		b.sites[key] = s
	}
	s.waits++
	b.count++
	if b.count == 1 && b.opts.OnStall != nil {
		b.armWatchdog(rd, s, key, now)
	}
	if b.count == b.parties {
		// Last arriver: measure the interval, update the predictor, and
		// release (flip the flag). The first interval is discarded — with
		// lastRelease still zero it would measure construction-to-release,
		// i.e. whatever setup time elapsed between New and the first episode.
		if !b.lastRelease.IsZero() && !s.disabled {
			s.lastBIT = now.Sub(b.lastRelease)
			s.valid = true
		}
		b.lastRelease = now
		b.count = 0
		b.generation++
		old := b.cur
		b.cur = &round{ch: make(chan struct{})}
		if old.watchdog != nil {
			old.watchdog.Stop()
			old.watchdog = nil
		}
		b.mu.Unlock()
		old.done.Store(true)
		close(old.ch) // external wake-up broadcast
		return nil
	}
	// Early arriver: predict the stall, clamp it, and pick a tier — all in
	// the arrival critical section, so the prediction and the lastStall
	// clamp see one consistent site snapshot and the hot path pays no extra
	// lock round-trips.
	predictedStall, havePred := time.Duration(0), false
	var predictedRelease time.Time
	if s.valid && !s.disabled {
		predictedRelease = b.lastRelease.Add(s.lastBIT)
		predictedStall = predictedRelease.Sub(now)
		havePred = predictedStall > 0
	}
	if s.lastStallValid && havePred {
		if clamp := 2 * s.lastStall; clamp < predictedStall {
			predictedStall = clamp
		}
	}
	bit := s.lastBIT
	tier := b.selectTier(predictedStall, havePred)
	s.tiers[tier]++
	b.mu.Unlock()

	waitStart := b.opts.Now()
	var out waitOutcome
	cancelled := false
	switch tier {
	case TierSpin:
		cancelled = b.spinThenPark(rd, done)
	case TierYield:
		cancelled = b.yieldThenPark(rd, done)
	case TierTimedPark:
		out, cancelled = b.timedPark(rd, predictedRelease, done)
		out.parking, out.judge = true, true
	case TierPark:
		select {
		case <-rd.ch:
		case <-done:
			cancelled = true
		}
		out.parking, out.judge = true, true
	}
	end := b.opts.Now()
	stall := end.Sub(waitStart)

	if cancelled {
		if released := b.breakRound(rd); !released {
			return ctx.Err()
		}
		// The release won the race against the cancellation: this waiter
		// completed the rendezvous, so it reports success and its sample
		// feeds the predictor like any other wait.
	} else if rd.broken.Load() {
		// Woken by a break, not a release: no stall sample, no cut-off
		// verdict — a broken generation measures nothing.
		return ErrBroken
	}

	// Single post-wait acquisition: the stall sample, parked-time
	// accounting, wake counters and the cut-off verdict in one shot.
	b.mu.Lock()
	s.lastStall = stall
	s.lastStallValid = true
	if out.parking && stall > 0 {
		s.parked += stall
	}
	if out.earlyWake {
		s.earlyWakes++
	}
	if out.lateWake {
		s.lateWakes++
	}
	if out.judge {
		b.applyCutoff(s, predictedRelease, end, bit)
	}
	b.mu.Unlock()
	return nil
}

// breakRound breaks rd's generation on behalf of a cancelled waiter. It
// reports true if rd had in fact already been released (the cancellation
// lost the race and the waiter completed normally). Otherwise the
// generation is marked broken — waking every parked waiter through the
// round channel — unless another waiter broke it first.
func (b *Barrier) breakRound(rd *round) (released bool) {
	b.mu.Lock()
	if rd.broken.Load() {
		b.mu.Unlock()
		return false
	}
	if b.cur != rd {
		// Only a release swaps b.cur away from an unbroken round.
		b.mu.Unlock()
		return true
	}
	b.breakLocked(rd)
	b.mu.Unlock()
	close(rd.ch)
	return false
}

// breakLocked marks the current generation broken: waiters counted so far
// are about to leave with ErrBroken, and the stale release timestamp is
// cleared so the first interval measured after Reset is discarded (it
// would span the broken period, poisoning the predictor exactly like the
// construction-to-first-release interval). Called with b.mu held; the
// caller must close(rd.ch) after unlocking.
func (b *Barrier) breakLocked(rd *round) {
	rd.broken.Store(true)
	rd.done.Store(true) // after broken: spin-woken waiters re-check broken
	b.count = 0
	b.breaks++
	b.lastRelease = time.Time{}
	if rd.watchdog != nil {
		rd.watchdog.Stop()
		rd.watchdog = nil
	}
}

// Reset re-arms the barrier: if the current generation has blocked waiters
// (or is already broken), they are woken with ErrBroken, and a fresh
// generation is installed. Use it to recover after a break, or to abandon
// a generation whose missing participant will never arrive (e.g. after the
// stall watchdog fired).
func (b *Barrier) Reset() {
	b.mu.Lock()
	rd := b.cur
	needClose := false
	if !rd.broken.Load() && b.count > 0 {
		b.breakLocked(rd)
		needClose = true
	}
	b.cur = &round{ch: make(chan struct{})}
	b.count = 0
	// The interval spanning a Reset measures recovery time, not the
	// application's phase: discard it like the construction interval.
	b.lastRelease = time.Time{}
	if rd.watchdog != nil {
		rd.watchdog.Stop()
		rd.watchdog = nil
	}
	b.mu.Unlock()
	if needClose {
		close(rd.ch)
	}
}

// Broken reports whether the current generation is broken (and Reset has
// not yet re-armed the barrier).
func (b *Barrier) Broken() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cur.broken.Load()
}

// armWatchdog schedules the stall check for a newly opened generation:
// the deadline is StallMultiple x the site's predicted interval, floored
// at StallFloor. Called with b.mu held, on the generation's first arrival.
func (b *Barrier) armWatchdog(rd *round, s *site, key uintptr, now time.Time) {
	d := b.opts.StallFloor
	var bit time.Duration
	if s.valid && !s.disabled {
		bit = s.lastBIT
		if m := time.Duration(b.opts.StallMultiple * float64(bit)); m > d {
			d = m
		}
	}
	rd.firstSite, rd.openedAt = key, now
	gen := b.generation
	rd.watchdog = time.AfterFunc(d, func() { b.stallCheck(rd, gen, bit) })
}

// stallCheck runs when a generation's watchdog deadline expires: if the
// generation is still open (neither released nor broken), it reports the
// stall. The callback is invoked without holding the barrier lock.
func (b *Barrier) stallCheck(rd *round, gen uint64, bit time.Duration) {
	b.mu.Lock()
	if b.cur != rd || rd.broken.Load() {
		b.mu.Unlock()
		return
	}
	info := StallInfo{
		Generation:   gen,
		Site:         rd.firstSite,
		Arrived:      b.count,
		Parties:      b.parties,
		Waited:       b.opts.Now().Sub(rd.openedAt),
		PredictedBIT: bit,
	}
	b.stalls++
	b.mu.Unlock()
	b.opts.OnStall(info)
}

// waitOutcome is what the wait path reports back so that all post-wait
// bookkeeping folds into one critical section.
type waitOutcome struct {
	// parking marks a parking tier: the stall counts as freed CPU time.
	parking bool
	// earlyWake/lateWake record how a timed park resolved.
	earlyWake bool
	lateWake  bool
	// judge marks waits whose prediction drove a park and must face the
	// §3.3.3 cut-off.
	judge bool
}

// selectTier is the sleep() best-fit scan (§3.1) over the wait tiers.
func (b *Barrier) selectTier(stall time.Duration, havePred bool) Tier {
	if !havePred {
		// Warm-up / disabled: conventional behaviour — a bounded spin then
		// park, the usual adaptive-mutex policy.
		if !b.spinnable {
			return TierYield
		}
		return TierSpin
	}
	switch {
	case stall <= b.opts.SpinThreshold:
		if !b.spinnable {
			return TierYield
		}
		return TierSpin
	case stall <= b.opts.YieldThreshold:
		return TierYield
	case stall <= b.opts.TimedParkThreshold:
		return TierTimedPark
	default:
		return TierPark
	}
}

// spinThenPark busy-waits within the spin budget, then parks — a wrong
// "short" prediction costs at most the budget. The hot loop is a single
// atomic load; the clock and the cancellation channel are consulted only
// every batch (done is nil for plain Wait callers and never fires). It
// reports whether the wait ended by cancellation.
func (b *Barrier) spinThenPark(rd *round, done <-chan struct{}) (cancelled bool) {
	if !b.spinnable {
		return b.yieldThenPark(rd, done)
	}
	deadline := b.opts.Now().Add(b.opts.SpinBudget)
	for {
		for i := 0; i < 1024; i++ {
			if rd.done.Load() {
				return false
			}
		}
		if done != nil {
			select {
			case <-done:
				return true
			default:
			}
		}
		if b.opts.Now().After(deadline) {
			select {
			case <-rd.ch:
				return false
			case <-done:
				return true
			}
		}
	}
}

// yieldThenPark shares the processor while polling, then parks.
func (b *Barrier) yieldThenPark(rd *round, done <-chan struct{}) (cancelled bool) {
	deadline := b.opts.Now().Add(b.opts.SpinBudget)
	for {
		if rd.done.Load() {
			return false
		}
		if done != nil {
			select {
			case <-done:
				return true
			default:
			}
		}
		runtime.Gosched()
		if b.opts.Now().After(deadline) {
			select {
			case <-rd.ch:
				return false
			case <-done:
				return true
			}
		}
	}
}

// timedPark is the hybrid wake-up: block on both the broadcast channel
// (external) and a timer armed at the predicted release minus the margin
// (internal); a timer wake residual-spins until the release. The outcome is
// reported back rather than recorded here so the caller can fold all
// post-wait bookkeeping into one critical section.
func (b *Barrier) timedPark(rd *round, predictedRelease time.Time, done <-chan struct{}) (out waitOutcome, cancelled bool) {
	wake := predictedRelease.Add(-b.opts.ParkMargin)
	d := wake.Sub(b.opts.Now())
	if d <= 0 {
		select {
		case <-rd.ch:
		case <-done:
			cancelled = true
		}
		return out, cancelled
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-rd.ch:
		// External wake-up won: the release beat the timer.
		out.lateWake = true
	case <-timer.C:
		// Internal wake-up: residual spin for the release (§2's Residual
		// Spin), bounded by the spin budget, then park.
		out.earlyWake = true
		cancelled = b.spinThenPark(rd, done)
	case <-done:
		cancelled = true
	}
	return out, cancelled
}

// applyCutoff applies the §3.3.3 overprediction threshold: if the predicted
// release is later than the actual one by more than Cutoff x BIT, strike
// the site; MaxStrikes strikes disable prediction there. Only
// OVERprediction may strike — an oversleeping waiter lands its wake latency
// on the critical path, which is the failure mode the cut-off exists to
// bound. Underprediction (actual release later than predicted) costs at
// most a bounded residual spin under the hybrid wake-up and must never
// disable a site. Called with b.mu held.
func (b *Barrier) applyCutoff(s *site, predictedRelease, actual time.Time, bit time.Duration) {
	if bit <= 0 || predictedRelease.IsZero() {
		return
	}
	over := predictedRelease.Sub(actual)
	if over <= 0 {
		return // underprediction: never a strike
	}
	if float64(over) <= b.opts.Cutoff*float64(bit) {
		return
	}
	s.cutoffHits++
	s.strikes++
	if s.strikes >= b.opts.MaxStrikes && !s.disabled {
		s.disabled = true
	}
}

// SiteStats is a snapshot of one call site's behaviour.
type SiteStats struct {
	Key        uintptr
	Waits      uint64
	Tiers      [4]uint64 // indexed by Tier
	EarlyWakes uint64
	LateWakes  uint64
	CutoffHits uint64
	Disabled   bool
	LastBIT    time.Duration
	// Parked is the wall time waiters spent blocked instead of spinning —
	// the CPU time this barrier freed at this site.
	Parked time.Duration
}

// Stats is a snapshot of the barrier's behaviour.
type Stats struct {
	Generation uint64
	// Breaks counts generations that ended broken — by a cancelled
	// participant or by Reset — instead of releasing.
	Breaks uint64
	// Stalls counts stall-watchdog firings (OnStall invocations).
	Stalls uint64
	Sites  []SiteStats
}

// Stats returns a consistent snapshot of predictor and tier statistics.
func (b *Barrier) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := Stats{Generation: b.generation, Breaks: b.breaks, Stalls: b.stalls}
	for key, s := range b.sites {
		out.Sites = append(out.Sites, SiteStats{
			Key:        key,
			Waits:      s.waits,
			Tiers:      s.tiers,
			EarlyWakes: s.earlyWakes,
			LateWakes:  s.lateWakes,
			CutoffHits: s.cutoffHits,
			Disabled:   s.disabled,
			LastBIT:    s.lastBIT,
			Parked:     s.parked,
		})
	}
	return out
}
