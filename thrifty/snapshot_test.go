package thrifty

import (
	"context"
	"sync"
	"testing"
	"time"
)

// The packed-word layout is wire format for anyone decoding snapshots:
// generation in bits 63..32, broken at bit 31, count in bits 30..0. Pin
// it so a refactor cannot silently shuffle the fields.
func TestStateWordBitLayoutPinned(t *testing.T) {
	if brokenBit != uint64(1)<<31 {
		t.Fatalf("brokenBit = %#x, want bit 31", brokenBit)
	}
	if got := packState(5, 3); got != 5<<32|3 {
		t.Fatalf("packState(5,3) = %#x, want %#x", got, uint64(5<<32|3))
	}
	// Round-trip at the field extremes.
	for _, tc := range []struct {
		gen   uint32
		count int
	}{
		{0, 0}, {1, 1}, {5, 3}, {1<<32 - 1, 0}, {7, 1<<31 - 1},
	} {
		st := packState(tc.gen, tc.count)
		if stateGen(st) != tc.gen {
			t.Fatalf("stateGen(packState(%d,%d)) = %d", tc.gen, tc.count, stateGen(st))
		}
		// The count accessor must mask the broken bit out, whether or not
		// it is set.
		if stateCount(st) != tc.count&^(1<<31) {
			t.Fatalf("stateCount(packState(%d,%d)) = %d", tc.gen, tc.count, stateCount(st))
		}
		if stateCount(st|brokenBit) != tc.count&^(1<<31) {
			t.Fatalf("broken bit leaked into count for (%d,%d)", tc.gen, tc.count)
		}
		if stateGen(st|brokenBit) != tc.gen {
			t.Fatalf("broken bit leaked into generation for (%d,%d)", tc.gen, tc.count)
		}
	}
}

// Snapshot must decode exactly what the packed word encodes, for any
// word we plant.
func TestSnapshotDecodesPlantedWords(t *testing.T) {
	b := New(4, Options{})
	for _, tc := range []struct {
		st   uint64
		want Snapshot
	}{
		{packState(0, 0), Snapshot{Generation: 0, Arrived: 0}},
		{packState(2, 3), Snapshot{Generation: 2, Arrived: 3}},
		{packState(7, 1) | brokenBit, Snapshot{Generation: 7, Arrived: 1, Broken: true}},
	} {
		b.state.Store(tc.st)
		got := b.Snapshot()
		if got.Generation != tc.want.Generation || got.Arrived != tc.want.Arrived ||
			got.Broken != tc.want.Broken || got.Parties != 4 {
			t.Fatalf("word %#x decoded to %+v, want %+v", tc.st, got, tc.want)
		}
	}
}

// Live behavior: arrivals show up in the count, a release bumps the
// generation and zeroes the count, a break sets the bit until Reset.
func TestSnapshotTracksLifecycle(t *testing.T) {
	b := New(2, Options{})
	if s := b.Snapshot(); s.Arrived != 0 || s.Generation != 0 || s.Broken || s.Parties != 2 {
		t.Fatalf("fresh barrier snapshot %+v", s)
	}

	// One arrival in flight.
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- b.WaitContext(ctx) }()
	waitFor(t, func() bool { return b.Snapshot().Arrived == 1 })

	// Cancel it: the barrier breaks and the bit shows.
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("cancelled waiter: %v", err)
	}
	waitFor(t, func() bool { return b.Snapshot().Broken })
	if s := b.Snapshot(); s.Breaks != 1 {
		t.Fatalf("snapshot after break: %+v", s)
	}
	b.Reset()
	if s := b.Snapshot(); s.Broken {
		t.Fatalf("snapshot after Reset still broken: %+v", s)
	}

	// A full rendezvous: generation moves, count returns to zero.
	before := b.Snapshot().Generation
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); b.Wait() }()
	}
	wg.Wait()
	s := b.Snapshot()
	if s.Generation != before+1 || s.Arrived != 0 || s.Releases != 1 {
		t.Fatalf("snapshot after release: %+v (gen before %d)", s, before)
	}
}

// In tree topology the central word's count field stays zero and the
// snapshot must read the combining tree instead.
func TestSnapshotReadsTreeArrivals(t *testing.T) {
	b := New(4, Options{TreeRadix: 2})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		//lint:ignore waitparties deliberate staged fill: the snapshot must observe 3 of 4 arrivals before the last waiter joins
		go func() { defer wg.Done(); b.Wait() }()
	}
	waitFor(t, func() bool { return b.Snapshot().Arrived == 3 })
	wg.Add(1)
	go func() { defer wg.Done(); b.Wait() }()
	wg.Wait()
	if s := b.Snapshot(); s.Arrived != 0 || s.Releases != 1 {
		t.Fatalf("tree snapshot after release: %+v", s)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
