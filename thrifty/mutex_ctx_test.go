package thrifty

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// lockAndHold acquires m and returns a release func, failing the test if
// acquisition does not complete promptly.
func lockAndHold(t *testing.T, m *Mutex) (release func()) {
	t.Helper()
	m.Lock()
	return m.Unlock
}

// Cancelled head-of-queue waiter: the next waiter in line must still get
// the lock, in order.
func TestLockContextCancelledHeadOfQueue(t *testing.T) {
	var m Mutex
	release := lockAndHold(t, &m)

	ctx, cancel := context.WithCancel(context.Background())
	headErr := make(chan error, 1)
	go func() { headErr <- m.LockContext(ctx) }()
	time.Sleep(10 * time.Millisecond) // head is queued

	acquired := make(chan struct{})
	go func() {
		m.Lock()
		close(acquired)
	}()
	time.Sleep(10 * time.Millisecond) // second waiter queued behind head

	cancel()
	if err := <-headErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled head returned %v", err)
	}
	select {
	case <-acquired:
		t.Fatal("second waiter acquired while the lock was held")
	default:
	}
	release()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("second waiter never acquired after the cancelled head was unlinked")
	}
	m.Unlock()
	if st := m.Stats(); st.Cancels != 1 {
		t.Errorf("cancels = %d, want 1", st.Cancels)
	}
}

// Cancelled mid-queue waiter: neighbours keep their FIFO positions.
func TestLockContextCancelledMidQueue(t *testing.T) {
	var m Mutex
	release := lockAndHold(t, &m)

	var order []int
	var orderMu sync.Mutex
	record := func(id int) {
		orderMu.Lock()
		order = append(order, id)
		orderMu.Unlock()
	}

	var wg sync.WaitGroup
	enqueue := func(id int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			record(id)
			time.Sleep(time.Millisecond)
			m.Unlock()
		}()
		time.Sleep(10 * time.Millisecond) // force FIFO arrival order
	}

	enqueue(1)
	ctx, cancel := context.WithCancel(context.Background())
	midErr := make(chan error, 1)
	go func() { midErr <- m.LockContext(ctx) }()
	time.Sleep(10 * time.Millisecond)
	enqueue(3)

	cancel()
	if err := <-midErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled mid-queue waiter returned %v", err)
	}
	release()
	wg.Wait()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("acquisition order %v, want [1 3]", order)
	}
}

// Cancellation racing the grant: hammer the exact window where the
// releaser has dequeued the waiter and the token is in flight. The
// cancelled grantee must forward ownership, never leak it — proven by the
// mutex staying acquirable after every race.
func TestLockContextCancelRacingGrant(t *testing.T) {
	var m Mutex
	for i := 0; i < 400; i++ {
		m.Lock()
		ctx, cancel := context.WithCancel(context.Background())
		got := make(chan error, 1)
		go func() { got <- m.LockContext(ctx) }()
		// Let the waiter queue, then release and cancel as close to
		// simultaneously as possible. Each iteration performs 3 lock
		// acquisitions (holder, waiter, health check); the waiter has
		// entered lock() once Locks reaches 3i+2.
		for st := m.Stats(); st.Locks < uint64(3*i+2); st = m.Stats() {
			time.Sleep(10 * time.Microsecond)
		}
		go m.Unlock()
		cancel()
		err := <-got
		if err == nil {
			m.Unlock() // waiter won the race and owns the lock
		} else if !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: %v", i, err)
		}
		// Whoever won, the lock must be free and functional now.
		done := make(chan struct{})
		go func() {
			m.Lock()
			m.Unlock()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(time.Second):
			t.Fatalf("iteration %d: mutex leaked by the cancel/grant race", i)
		}
	}
}

// Mixed chaos under -race: Lock and LockContext callers with random short
// deadlines hammer one mutex; the critical-section counter proves mutual
// exclusion, and completion proves no lost grants.
func TestMutexMixedChaos(t *testing.T) {
	var m Mutex
	var inside atomic.Int32
	var acquired atomic.Int64
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 150; i++ {
				useCtx := rng.Intn(2) == 0
				if useCtx {
					ctx, cancel := context.WithTimeout(context.Background(),
						time.Duration(rng.Intn(300))*time.Microsecond)
					err := m.LockContext(ctx)
					cancel()
					if err != nil {
						continue
					}
				} else {
					m.Lock()
				}
				if n := inside.Add(1); n != 1 {
					t.Errorf("%d goroutines inside the critical section", n)
				}
				acquired.Add(1)
				inside.Add(-1)
				m.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if acquired.Load() == 0 {
		t.Fatal("no worker ever acquired the lock")
	}
	// The mutex is still healthy.
	m.Lock()
	m.Unlock()
	st := m.Stats()
	if st.Cancels == 0 {
		t.Log("note: chaos run saw no cancellations (timing-dependent)")
	}
}
