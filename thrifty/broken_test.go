package thrifty

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The acceptance demo: one participant's context is cancelled while the
// others are parked deep in their wait tiers; every other waiter returns
// ErrBroken promptly — far inside the watchdog bound — instead of hanging.
func TestCancelBreaksParkedWaiters(t *testing.T) {
	const parties = 8
	stalled := make(chan StallInfo, 1)
	b := New(parties, Options{
		OnStall:    func(si StallInfo) { stalled <- si },
		StallFloor: 2 * time.Second, // the watchdog bound the break must beat
	})

	// parties-2 healthy waiters plus the victim join; one participant never
	// arrives, so the generation can only end by breaking.
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, parties-1)
	for i := 0; i < parties-2; i++ {
		//lint:ignore waitparties deliberate under-fill: the break must rescue the parked waiters
		go func() { errs <- b.WaitContext(context.Background()) }()
	}
	// Give the healthy waiters time to park, then join with a cancellable
	// context and pull the plug.
	time.Sleep(20 * time.Millisecond)
	go func() { errs <- b.WaitContext(ctx) }()
	time.Sleep(20 * time.Millisecond)

	start := time.Now()
	cancel()
	var gotCtx, gotBroken int
	for i := 0; i < parties-1; i++ {
		select {
		case err := <-errs:
			switch {
			case errors.Is(err, context.Canceled):
				gotCtx++
			case errors.Is(err, ErrBroken):
				gotBroken++
			default:
				t.Fatalf("waiter returned %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d/%d waiters returned within the watchdog bound", i, parties-1)
		}
	}
	elapsed := time.Since(start)
	if gotCtx != 1 || gotBroken != parties-2 {
		t.Fatalf("outcomes: %d ctx errors, %d ErrBroken; want 1 and %d", gotCtx, gotBroken, parties-2)
	}
	if elapsed > time.Second {
		t.Errorf("break took %v to propagate; want well under the %v watchdog bound", elapsed, 2*time.Second)
	}
	select {
	case si := <-stalled:
		t.Errorf("watchdog fired (%+v); the break should have beaten it", si)
	default:
	}
	if !b.Broken() {
		t.Error("barrier not marked broken after a cancelled participant")
	}
	if st := b.Stats(); st.Breaks != 1 {
		t.Errorf("breaks = %d, want 1", st.Breaks)
	}
}

// A broken barrier fails fast for every Wait variant until Reset re-arms
// it, after which it completes normally again.
func TestBrokenFailsFastUntilReset(t *testing.T) {
	//lint:ignore waitparties sequential phases exercise every Wait variant against one barrier
	b := New(2, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.WaitContext(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", err)
	}

	if err := b.WaitContext(context.Background()); !errors.Is(err, ErrBroken) {
		t.Fatalf("WaitContext on broken barrier returned %v, want ErrBroken", err)
	}
	func() {
		defer func() {
			if r := recover(); r != ErrBroken { //nolint:errorlint // panics with the exact sentinel
				t.Errorf("Wait on broken barrier panicked with %v, want ErrBroken", r)
			}
		}()
		b.Wait()
	}()

	b.Reset()
	if b.Broken() {
		t.Fatal("barrier still broken after Reset")
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.WaitContext(context.Background()); err != nil {
				t.Errorf("post-Reset wait returned %v", err)
			}
		}()
	}
	wg.Wait()
}

// A context cancelled before arrival never joins the generation: the
// waiter gets its ctx error, and the barrier is NOT broken for the others.
func TestPreCancelledDoesNotBreak(t *testing.T) {
	b := New(2, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.WaitContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled wait returned %v", err)
	}
	if b.Broken() {
		t.Fatal("pre-arrival cancellation broke the barrier")
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.WaitContext(context.Background()); err != nil {
				t.Errorf("wait returned %v", err)
			}
		}()
	}
	wg.Wait()
}

// Reset with live waiters wakes them all with ErrBroken.
func TestResetWakesWaiters(t *testing.T) {
	const parties = 4
	b := New(parties, Options{})
	errs := make(chan error, parties-1)
	for i := 0; i < parties-1; i++ {
		//lint:ignore waitparties deliberate under-fill: Reset must wake the stranded waiters
		go func() { errs <- b.WaitContext(context.Background()) }()
	}
	time.Sleep(20 * time.Millisecond)
	b.Reset()
	for i := 0; i < parties-1; i++ {
		if err := <-errs; !errors.Is(err, ErrBroken) {
			t.Fatalf("reset waiter returned %v, want ErrBroken", err)
		}
	}
}

// The stall watchdog reports a deserted generation: parties-1 arrivals,
// one missing, deadline floored at StallFloor.
func TestWatchdogReportsDesertedGeneration(t *testing.T) {
	const parties = 4
	stalled := make(chan StallInfo, 1)
	b := New(parties, Options{
		OnStall:    func(si StallInfo) { stalled <- si },
		StallFloor: 30 * time.Millisecond,
	})
	errs := make(chan error, parties-1)
	for i := 0; i < parties-1; i++ {
		//lint:ignore waitparties deliberate under-fill: the watchdog must report the deserter
		go func() { errs <- b.WaitContext(context.Background()) }()
	}
	select {
	case si := <-stalled:
		if si.Arrived != parties-1 || si.Parties != parties {
			t.Errorf("stall report %d/%d arrived, want %d/%d", si.Arrived, si.Parties, parties-1, parties)
		}
		if si.Waited < 30*time.Millisecond {
			t.Errorf("stall reported after %v, below the %v floor", si.Waited, 30*time.Millisecond)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired for a deserted generation")
	}
	if st := b.Stats(); st.Stalls != 1 {
		t.Errorf("stalls = %d, want 1", st.Stalls)
	}
	// The deserter is still welcome: its arrival completes the generation.
	go func() { errs <- b.WaitContext(context.Background()) }()
	for i := 0; i < parties; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("waiter returned %v after the deserter arrived", err)
		}
	}
}

// A completed generation must not fire the watchdog.
func TestWatchdogQuietOnHealthyBarrier(t *testing.T) {
	const parties = 4
	var stalls atomic.Int64
	b := New(parties, Options{
		OnStall:    func(StallInfo) { stalls.Add(1) },
		StallFloor: 20 * time.Millisecond,
	})
	var wg sync.WaitGroup
	for r := 0; r < 5; r++ {
		for i := 0; i < parties; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				b.WaitSite(0x1)
			}()
		}
		wg.Wait()
	}
	time.Sleep(50 * time.Millisecond) // past any stale deadline
	if n := stalls.Load(); n != 0 {
		t.Errorf("watchdog fired %d times on a healthy barrier", n)
	}
}

// Chaos property test (run under -race): randomized cancellations racing
// releases across many generations. Two invariants, per generation:
//
//  1. No early return: a waiter that returns nil saw a real release, so
//     within one generation outcomes are all-nil or none-nil.
//  2. No lost break: if any joined waiter was cancelled and the round did
//     not release, every other joined waiter got ErrBroken (nobody hung —
//     the test completing is the proof).
func TestChaosCancellationsVsReleases(t *testing.T) {
	const (
		parties = 6
		rounds  = 120
	)
	b := New(parties, Options{})
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < rounds; round++ {
		// Pick a victim with a random cancellation deadline, and a
		// straggler whose late arrival stretches the round so that the
		// deadline genuinely races the release (sometimes firing mid-wait,
		// sometimes losing to the release, occasionally pre-arrival).
		victim := rng.Intn(parties * 2) // >= parties: nobody cancelled
		deadline := time.Duration(rng.Intn(400)) * time.Microsecond
		straggler := rng.Intn(parties)
		lag := time.Duration(rng.Intn(600)) * time.Microsecond

		outcomes := make([]error, parties)
		var wg sync.WaitGroup
		for i := 0; i < parties; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx := context.Background()
				if i == victim {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, deadline)
					defer cancel()
				}
				if i == straggler {
					time.Sleep(lag)
				}
				outcomes[i] = b.WaitSiteContext(ctx, 0x42)
				if i == victim && outcomes[i] != nil && !b.Broken() {
					// The context expired before the victim joined, so (by
					// design) nothing broke — the supervisor gives up on the
					// generation so the remaining waiters are not stranded.
					b.Reset()
				}
			}(i)
		}
		waitOrRescue(&wg, b)

		var nils, breaks, ctxErrs int
		for i, err := range outcomes {
			switch {
			case err == nil:
				nils++
			case errors.Is(err, ErrBroken):
				breaks++
			case errors.Is(err, context.DeadlineExceeded):
				ctxErrs++
				if i != victim {
					t.Fatalf("round %d: non-victim %d got a ctx error", round, i)
				}
			default:
				t.Fatalf("round %d: waiter %d returned %v", round, i, err)
			}
		}
		if nils != parties && nils != 0 {
			t.Fatalf("round %d: %d nil returns out of %d — a waiter returned before release",
				round, nils, parties)
		}
		if nils == 0 && ctxErrs == 0 {
			t.Fatalf("round %d: broke with no cancelled participant", round)
		}
		if b.Broken() {
			b.Reset()
		}
	}
	st := b.Stats()
	if st.Generation == 0 {
		t.Error("chaos run never completed a generation")
	}
	if st.Breaks == 0 {
		t.Error("chaos run never broke a generation; cancellation path untested")
	}
}
