package thrifty

import (
	"fmt"

	"thriftybarrier/internal/registry"
)

// Group is a named collection of barriers backed by a sharded registry
// with lock-free lookup: resolving a barrier by name or by ID takes no
// lock and allocates nothing, so a million-barrier workload (the remote
// server's register path, the client's waiter table) never serializes on
// a global map mutex. Writers — creation and removal — are serialized
// per shard only.
//
// A Group must not be copied after first use.
type Group struct {
	noCopy noCopy //nolint:unused // vet copylocks marker
	reg    *registry.Registry[*Barrier]
}

// NewGroup builds a group sharded for the given expected parallelism
// (shards is rounded up to a power of two; values < 1 select a single
// shard).
func NewGroup(shards int) *Group {
	return &Group{reg: registry.New[*Barrier](shards)}
}

// GetOrCreate returns the barrier bound to name, creating one with New
// (parties, opts) if absent. The returned ID resolves the same barrier
// through LookupID without hashing the name again. It returns an error
// if parties < 1, or if the name already holds a barrier with a
// different party count — silently handing back a mismatched barrier
// would deadlock the caller's rendezvous.
func (g *Group) GetOrCreate(name string, parties int, opts Options) (*Barrier, uint64, error) {
	if parties < 1 {
		return nil, 0, fmt.Errorf("thrifty: group barrier %q: parties %d < 1", name, parties)
	}
	b, id, _ := g.reg.GetOrCreate(name, func() *Barrier { return New(parties, opts) })
	if b.Parties() != parties {
		return nil, 0, fmt.Errorf("thrifty: group barrier %q has %d parties, requested %d",
			name, b.Parties(), parties)
	}
	return b, id, nil
}

// Lookup returns the barrier bound to name and its ID. Lock-free and
// allocation-free.
func (g *Group) Lookup(name string) (*Barrier, uint64, bool) {
	return g.reg.Get(name)
}

// LookupID returns the barrier with the given ID (as handed out by
// GetOrCreate). Lock-free: the ID's low bits route straight to the
// owning shard.
func (g *Group) LookupID(id uint64) (*Barrier, bool) {
	return g.reg.GetByID(id)
}

// Remove unbinds name and returns the removed barrier. The barrier
// itself is not torn down: waiters already parked on it finish their
// rendezvous; only new lookups miss.
func (g *Group) Remove(name string) (*Barrier, bool) {
	return g.reg.Delete(name, nil)
}

// Len reports the number of live bindings.
func (g *Group) Len() int { return g.reg.Len() }

// Range calls f for every live binding until it returns false, iterating
// a lock-free snapshot: bindings created or removed concurrently may or
// may not be observed.
func (g *Group) Range(f func(name string, id uint64, b *Barrier) bool) {
	g.reg.Range(f)
}
