package thrifty

import (
	"testing"
	"time"
)

// The timed-park acceptance check: the steady state of the hybrid wake-up
// allocates nothing. The round is pre-released so timedPark arms its
// wheel entry and immediately takes the external wake-up — the full
// arm/cancel round trip on the timing wheel plus the wake-channel pool
// cycle, with no blocking.
func TestTimedParkZeroAllocSteadyState(t *testing.T) {
	b := New(2, Options{})
	rd := &round{ch: make(chan struct{})}
	rd.done.Store(true)
	close(rd.ch)
	predicted := time.Now().Add(time.Hour) // wheel entry would fire far in the future
	avg := testing.AllocsPerRun(1000, func() {
		out, cancelled := b.timedPark(rd, rd.ch, predicted, nil)
		if !out.lateWake || cancelled {
			t.Fatal("timed park did not resolve through the external wake-up")
		}
	})
	if avg != 0 {
		t.Fatalf("timed park allocated %v allocs/op in steady state (arm/cancel path miss)", avg)
	}
}

// BenchmarkTimedPark measures the non-blocking timed-park round trip (arm
// the wheel entry, win the external wake-up, cancel in O(1)).
func BenchmarkTimedPark(b *testing.B) {
	bar := New(2, Options{})
	rd := &round{ch: make(chan struct{})}
	rd.done.Store(true)
	close(rd.ch)
	predicted := time.Now().Add(time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bar.timedPark(rd, rd.ch, predicted, nil)
	}
}

// BenchmarkArrive measures the pure arrival word cost with a single
// party (every call is the releaser: one claim CAS plus round swap).
func BenchmarkArrive(b *testing.B) {
	bar := New(1, Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bar.WaitSite(0x1)
	}
}
