package thrifty

import (
	"testing"
	"time"
)

// The timed-park satellite acceptance check: with the timer pool, the
// steady state of the hybrid wake-up allocates nothing. The round is
// pre-released so timedPark arms its timer and immediately takes the
// external wake-up — the full pool Get/Reset/Stop/Put cycle with no
// blocking.
func TestTimedParkZeroAllocSteadyState(t *testing.T) {
	b := New(2, Options{})
	rd := &round{ch: make(chan struct{})}
	rd.done.Store(true)
	close(rd.ch)
	predicted := time.Now().Add(time.Hour) // timer would fire far in the future
	avg := testing.AllocsPerRun(1000, func() {
		out, cancelled := b.timedPark(rd, predicted, nil)
		if !out.lateWake || cancelled {
			t.Fatal("timed park did not resolve through the external wake-up")
		}
	})
	if avg != 0 {
		t.Fatalf("timed park allocated %v allocs/op in steady state (timer pool miss)", avg)
	}
}

// BenchmarkTimedPark measures the non-blocking timed-park round trip (arm
// the pooled timer, win the external wake-up, return the timer).
func BenchmarkTimedPark(b *testing.B) {
	bar := New(2, Options{})
	rd := &round{ch: make(chan struct{})}
	rd.done.Store(true)
	close(rd.ch)
	predicted := time.Now().Add(time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bar.timedPark(rd, predicted, nil)
	}
}

// BenchmarkArrive measures the pure arrival word cost with a single
// party (every call is the releaser: one claim CAS plus round swap).
func BenchmarkArrive(b *testing.B) {
	bar := New(1, Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bar.WaitSite(0x1)
	}
}
