package thrifty

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Lock-free arrival stress (run under -race): party counts from 2 to 256,
// flat and tree topologies, a spin/park tier mix forced by aggressive
// thresholds, with WaitContext cancellations and Reset interleaved across
// generations. The invariants are the broken-barrier contract: within one
// generation outcomes are all-nil or none-nil, and the run terminating at
// all proves no waiter was stranded by a lost wake-up.
func TestStressArrivalTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	configs := []struct {
		parties int
		radix   int
	}{
		{2, 0}, {3, 0}, {8, 0}, {64, 0}, {256, 0},
		{8, 2}, {64, 4}, {256, 8}, {37, 3},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run("", func(t *testing.T) {
			t.Parallel()
			stressBarrier(t, cfg.parties, cfg.radix)
		})
	}
}

// waitOrRescue waits for a round's waiters, breaking the barrier if they
// fail to return promptly. The chaos/stress rounds recover from a
// pre-arrival cancellation by calling Reset, which re-arms the barrier —
// but a peer that arrives AFTER that Reset joins the fresh generation,
// where the others (all already returned through the Reset's break) will
// never show up. That waiter is exactly the stranded participant the
// stall-watchdog+Reset recovery is documented for, so the test
// supervises the same way production would: break the stranded
// generation and let the waiter report ErrBroken into the round's
// outcome tally (the per-round invariants still hold — a rescued round
// can never have released, so returns stay none-nil). A rescue of a
// round with no cancelled participant still fails the round's checks,
// so genuine lost-wake bugs surface as failures, not hangs.
func waitOrRescue(wg *sync.WaitGroup, b *Barrier) {
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			return
		case <-time.After(2 * time.Second):
			b.Reset()
		}
	}
}

func stressBarrier(t *testing.T, parties, radix int) {
	rounds := 40
	if parties >= 64 {
		rounds = 12
	}
	b := New(parties, Options{
		TreeRadix: radix,
		// Aggressive thresholds push waiters across all four tiers.
		SpinThreshold:      2 * time.Microsecond,
		YieldThreshold:     10 * time.Microsecond,
		TimedParkThreshold: 300 * time.Microsecond,
		ParkMargin:         20 * time.Microsecond,
		SpinBudget:         5 * time.Microsecond,
	})
	rng := rand.New(rand.NewSource(int64(parties*1000 + radix)))
	for round := 0; round < rounds; round++ {
		victim := rng.Intn(parties * 3) // usually nobody cancelled
		deadline := time.Duration(rng.Intn(500)) * time.Microsecond
		straggler := rng.Intn(parties)
		lag := time.Duration(rng.Intn(400)) * time.Microsecond

		outcomes := make([]error, parties)
		var wg sync.WaitGroup
		for i := 0; i < parties; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx := context.Background()
				if i == victim {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, deadline)
					defer cancel()
				}
				if i == straggler {
					time.Sleep(lag)
				}
				outcomes[i] = b.WaitSiteContext(ctx, uintptr(0x1000+round%4))
				if i == victim && outcomes[i] != nil && !b.Broken() {
					// Pre-arrival expiry: nothing broke; give up on the
					// generation so the others are not stranded.
					b.Reset()
				}
			}(i)
		}
		waitOrRescue(&wg, b)

		var nils, breaks, ctxErrs int
		for i, err := range outcomes {
			switch {
			case err == nil:
				nils++
			case errors.Is(err, ErrBroken):
				breaks++
			case errors.Is(err, context.DeadlineExceeded):
				ctxErrs++
				if i != victim {
					t.Fatalf("round %d: non-victim %d got a ctx error", round, i)
				}
			default:
				t.Fatalf("round %d: waiter %d returned %v", round, i, err)
			}
		}
		if nils != parties && nils != 0 {
			t.Fatalf("round %d: %d/%d nil returns — release was not all-or-none",
				round, nils, parties)
		}
		if nils == 0 && ctxErrs == 0 {
			t.Fatalf("round %d: generation broke with no cancelled participant", round)
		}
		if b.Broken() {
			b.Reset()
		}
	}
	st := b.Stats()
	if st.Generation == 0 {
		t.Error("stress run never completed a generation")
	}
	var waits uint64
	for _, s := range st.Sites {
		waits += s.Waits
	}
	// Every outcome was either a completed wait, a break, or a ctx error
	// after joining — all of which count exactly one wait — except
	// pre-arrival expiries, which count none. So waits never exceeds the
	// total participant-rounds and reaches it when nothing was cancelled.
	if waits > uint64(parties*rounds) {
		t.Errorf("waits = %d > %d participant-rounds", waits, parties*rounds)
	}
}

// Reset hammering: concurrent waiters against a supervisor calling Reset
// at random, in both topologies. Nothing may hang or double-release.
func TestStressResetVsWaiters(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, radix := range []int{0, 4} {
		radix := radix
		t.Run("", func(t *testing.T) {
			t.Parallel()
			const parties = 16
			b := New(parties, Options{TreeRadix: radix})
			stop := make(chan struct{})
			var supervisor sync.WaitGroup
			supervisor.Add(1)
			go func() {
				defer supervisor.Done()
				rng := rand.New(rand.NewSource(7))
				for {
					select {
					case <-stop:
						return
					default:
						time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
						b.Reset()
					}
				}
			}()
			var wg sync.WaitGroup
			for i := 0; i < parties; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := 0; r < 30; r++ {
						// Nil and ErrBroken are both legitimate here; any
						// other error (or a hang) is the failure.
						if err := b.WaitSiteContext(context.Background(), 0x3); err != nil && !errors.Is(err, ErrBroken) {
							t.Errorf("wait returned %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(stop)
			supervisor.Wait()
		})
	}
}
