package thrifty_test

import (
	"fmt"
	"sync"
	"time"

	"thriftybarrier/thrifty"
)

// ExampleBarrier shows the basic SPMD pattern: a fixed set of goroutines
// iterating phases separated by barriers. The barrier learns each call
// site's interval and routes long waits to the parking tiers.
func ExampleBarrier() {
	const workers = 4
	b := thrifty.New(workers, thrifty.Options{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 3; it++ {
				if w == 0 {
					time.Sleep(2 * time.Millisecond) // the straggler
				}
				b.Wait()
			}
		}()
	}
	wg.Wait()
	fmt.Println("generations:", b.Generation())
	// Output: generations: 3
}

// ExampleBarrier_waitSite shows explicit prediction keys for wrappers
// where runtime caller PCs would smear distinct phases together.
func ExampleBarrier_waitSite() {
	const workers = 2
	b := thrifty.New(workers, thrifty.Options{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 2; it++ {
				b.WaitSite(1) // phase A
				b.WaitSite(2) // phase B
			}
		}()
	}
	wg.Wait()
	fmt.Println("sites:", len(b.Stats().Sites))
	// Output: sites: 2
}
