package thrifty

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMutexZeroValue(t *testing.T) {
	var m Mutex
	m.Lock()
	m.Unlock()
	if s := m.Stats(); s.Locks != 1 {
		t.Fatalf("locks = %d", s.Locks)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	var m Mutex
	counter := 0
	var wg sync.WaitGroup
	const workers, iters = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, workers*iters)
	}
}

func TestMutexUnlockOfUnlockedPanics(t *testing.T) {
	var m Mutex
	defer func() {
		if recover() == nil {
			t.Error("Unlock of unlocked mutex did not panic")
		}
	}()
	m.Unlock()
}

func TestMutexFIFOHandoff(t *testing.T) {
	var m Mutex
	m.Lock()
	const waiters = 5
	order := make(chan int, waiters)
	var ready, wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		ready.Add(1)
		wg.Add(1)
		go func() {
			// Serialize enqueue order: waiter i enqueues after i-1.
			for {
				m.mu.Lock()
				n := len(m.queue)
				m.mu.Unlock()
				if n == i {
					break
				}
				time.Sleep(50 * time.Microsecond)
			}
			ready.Done()
			m.Lock()
			order <- i
			m.Unlock()
			wg.Done()
		}()
	}
	ready.Wait()
	m.Unlock()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("handoff order violated: got %d, want %d", got, want)
		}
		want++
	}
}

func TestMutexLearnsServiceTime(t *testing.T) {
	var m Mutex
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				m.Lock()
				time.Sleep(time.Millisecond)
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	s := m.Stats()
	if s.ServiceTime < 500*time.Microsecond {
		t.Fatalf("learned service time %v implausibly small for 1ms holds", s.ServiceTime)
	}
	// Long service times must route contended waiters to parking.
	if s.Parks == 0 {
		t.Fatalf("no parks despite 1ms critical sections: %+v", s)
	}
	if s.Parked == 0 {
		t.Fatal("no parked time accounted")
	}
}

func TestMutexStressRace(t *testing.T) {
	var m Mutex
	var wg sync.WaitGroup
	shared := map[int]int{}
	for w := 0; w < 16; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Lock()
				shared[w] = shared[w] + 1
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	for w := 0; w < 16; w++ {
		if shared[w] != 200 {
			t.Fatalf("worker %d count = %d", w, shared[w])
		}
	}
}

// TestMutexSpinFallbackAccountsParkedTime pins the measurement fix: a
// waiter that predicted a short wait, spun out its budget, and then parked
// must still tally the blocked time into Parked (previously it went
// untallied, understating the freed CPU time the stats report).
func TestMutexSpinFallbackAccountsParkedTime(t *testing.T) {
	var m Mutex
	// Prime the service-time predictor with a fast uncontended acquisition
	// so the next contended waiter predicts a short wait and spins.
	m.Lock()
	m.Unlock()
	if s := m.Stats(); s.ServiceTime > mutexSpinCutoff {
		t.Skipf("uncontended service time %v too slow to prime a spin prediction", s.ServiceTime)
	}

	m.Lock()
	entered := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(entered)
		m.Lock() // predicts short, spins out the budget, then parks ~5ms
		m.Unlock()
		close(done)
	}()
	<-entered
	time.Sleep(5 * time.Millisecond) // hold far beyond the spin budget
	m.Unlock()
	<-done

	s := m.Stats()
	if s.Spins == 0 {
		t.Skipf("waiter did not take the spin path: %+v", s)
	}
	if s.Parked < time.Millisecond {
		t.Fatalf("spin-then-park blocked ~5ms but Parked=%v: fallback park not accounted", s.Parked)
	}
}

// Property: arbitrary lock/unlock interleavings never deadlock and never
// lose a count.
func TestMutexLivenessProperty(t *testing.T) {
	f := func(workersRaw, itersRaw uint8) bool {
		workers := int(workersRaw%6) + 1
		iters := int(itersRaw%50) + 1
		var m Mutex
		count := 0
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					m.Lock()
					count++
					m.Unlock()
				}
			}()
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
			return count == workers*iters
		case <-time.After(20 * time.Second):
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
