package thrifty

import (
	"sync"
	"testing"
	"time"
)

// TestCutoffStrikesOnlyOnOverprediction drives the §3.3.3 verdict with a
// deterministic clock: underprediction (actual release later than
// predicted) must never strike a site, while overprediction beyond 10% of
// the interval disables it after MaxStrikes.
func TestCutoffStrikesOnlyOnOverprediction(t *testing.T) {
	base := time.Unix(1000, 0)
	b := New(2, Options{Now: func() time.Time { return base }})
	s := &site{}
	const bit = 10 * time.Millisecond
	pred := base.Add(100 * time.Millisecond)

	// Gross underprediction: actual release 50% of BIT after the predicted
	// one, many times over. No strikes, ever.
	for i := 0; i < 10*b.opts.MaxStrikes; i++ {
		b.applyCutoff(s, pred, pred.Add(bit/2), bit)
	}
	if s.strikes.Load() != 0 || s.cutoffHits.Load() != 0 || s.disabled.Load() {
		t.Fatalf("underprediction struck the site: strikes=%d hits=%d disabled=%v",
			s.strikes.Load(), s.cutoffHits.Load(), s.disabled.Load())
	}

	// Overprediction at exactly the threshold (10% of BIT): still no strike.
	b.applyCutoff(s, pred, pred.Add(-bit/10), bit)
	if s.strikes.Load() != 0 {
		t.Fatalf("at-threshold overprediction struck the site: strikes=%d", s.strikes.Load())
	}

	// Overprediction beyond the threshold: strikes, and MaxStrikes (default
	// 2) of them disable the site.
	b.applyCutoff(s, pred, pred.Add(-bit/5), bit)
	if s.strikes.Load() != 1 || s.disabled.Load() {
		t.Fatalf("first violation: strikes=%d disabled=%v, want 1/false", s.strikes.Load(), s.disabled.Load())
	}
	b.applyCutoff(s, pred, pred.Add(-bit/5), bit)
	if s.strikes.Load() != 2 || !s.disabled.Load() {
		t.Fatalf("second violation: strikes=%d disabled=%v, want 2/true", s.strikes.Load(), s.disabled.Load())
	}

	// A zero interval or zero prediction never judges.
	fresh := &site{}
	b.applyCutoff(fresh, pred, pred.Add(-bit), 0)
	b.applyCutoff(fresh, time.Time{}, pred, bit)
	if fresh.strikes.Load() != 0 {
		t.Fatalf("degenerate inputs struck the site: strikes=%d", fresh.strikes.Load())
	}
}

// TestUnderpredictionNeverDisables runs a real barrier whose intervals keep
// doubling: every last-value prediction grossly UNDERpredicts the stall, so
// the site must never be struck or disabled (the pre-fix absolute-value
// comparison disabled it after two rounds).
func TestUnderpredictionNeverDisables(t *testing.T) {
	const parties = 2
	b := New(parties, Options{TimedParkThreshold: time.Second, MaxStrikes: 1})
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := 2 * time.Millisecond
			for r := 0; r < 7; r++ {
				if p == 1 {
					time.Sleep(d)
					d *= 2 // every interval dwarfs its prediction
				}
				b.WaitSite(0x77)
			}
		}()
	}
	wg.Wait()
	s := b.Stats().Sites[0]
	if s.CutoffHits != 0 || s.Disabled {
		t.Fatalf("pure underprediction struck the site: %+v", s)
	}
	if parked := s.Tiers[TierTimedPark] + s.Tiers[TierPark]; parked == 0 {
		t.Skipf("scheduler produced no parking waits to judge: %+v", s)
	}
}

// TestFirstIntervalDiscarded pins the New fix: setup time between
// construction and the first episode must not become the site's first BIT.
func TestFirstIntervalDiscarded(t *testing.T) {
	now := time.Unix(2000, 0)
	b := New(1, Options{Now: func() time.Time { return now }})
	now = now.Add(time.Hour) // arbitrary setup delay before the first episode
	b.WaitSite(0x1)
	if s := b.Stats().Sites[0]; s.LastBIT != 0 {
		t.Fatalf("first interval absorbed setup time: BIT=%v, want 0 (discarded)", s.LastBIT)
	}
	// The second interval is a true release-to-release measurement.
	now = now.Add(3 * time.Millisecond)
	b.WaitSite(0x1)
	if s := b.Stats().Sites[0]; s.LastBIT != 3*time.Millisecond {
		t.Fatalf("second interval BIT=%v, want 3ms", s.LastBIT)
	}
}

// TestWaitSiteStatsStress hammers WaitSite from many goroutines across
// several sites while Stats and Generation poll concurrently — the -race
// regression test for the folded critical sections.
func TestWaitSiteStatsStress(t *testing.T) {
	const parties = 8
	const rounds = 60
	b := New(parties, Options{})
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for i := 0; i < 2; i++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = b.Stats()
					_ = b.Generation()
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if p == r%parties {
					time.Sleep(time.Duration(r%3) * 100 * time.Microsecond)
				}
				b.WaitSite(uintptr(0x100 + r%3)) // rotate across three sites
			}
		}()
	}
	wg.Wait()
	close(stop)
	pollers.Wait()
	st := b.Stats()
	if st.Generation != rounds {
		t.Fatalf("generation = %d, want %d", st.Generation, rounds)
	}
	var waits uint64
	for _, s := range st.Sites {
		waits += s.Waits
	}
	if waits != parties*rounds {
		t.Fatalf("total waits = %d, want %d", waits, parties*rounds)
	}
}
