package thrifty

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Mutex is a queue-fair mutex whose waiters choose between spinning and
// parking from a prediction of their wait — the runtime counterpart of the
// simulated thrifty MCS lock in internal/locks, and the paper's second
// future-work direction (§7, "other synchronization constructs, such as
// locks") applied to goroutines.
//
// Each waiter predicts its wait as
//
//	queue position × learned lock service time
//
// (last-value predicted, the lock-analogue of the barrier interval time).
// Short predicted waits spin briefly for the lowest handoff latency; long
// ones park immediately, freeing the processor. Handoff is strict FIFO:
// the releaser grants ownership directly to the head waiter, so a parked
// waiter's wake latency is automatically folded into the measured service
// time and future predictions account for it.
//
// The zero value is an unlocked mutex ready for use. A Mutex must not be
// copied after first use (go vet's copylocks check enforces this).
type Mutex struct {
	noCopy noCopy //nolint:unused // vet copylocks marker

	mu       sync.Mutex
	locked   bool
	queue    []*mutexWaiter
	svc      time.Duration // last-value service time (hold + handoff)
	svcValid bool
	grantAt  time.Time

	spinnable     bool
	spinnableInit bool

	// Stats.
	locks   uint64
	spins   uint64
	parks   uint64
	cancels uint64
	parked  time.Duration
}

type mutexWaiter struct {
	ch  chan struct{} // buffered(1): the grant token
	enq time.Time
}

// mutexSpinCutoff is the largest predicted wait that spins; beyond it the
// waiter parks (the round trip of a park is on the order of a few
// microseconds, the same role the sleep-state transition plays in the
// paper's table scan).
const mutexSpinCutoff = 20 * time.Microsecond

// Lock acquires m, blocking until it is available.
func (m *Mutex) Lock() {
	m.lock(nil) //nolint:errcheck // nil ctx never cancels, so lock cannot fail
}

// LockContext acquires m like Lock, but gives up if ctx is cancelled or
// expires first, returning ctx.Err(). A cancelled waiter is unlinked from
// the FIFO queue without disturbing its neighbours' positions; if the
// cancellation races the grant — the releaser has already dequeued the
// waiter and the ownership token is in flight — the cancelled goroutine
// accepts the grant and immediately passes ownership to the next waiter,
// so the lock is never leaked and FIFO order is preserved. A nil ctx
// behaves exactly like Lock.
func (m *Mutex) LockContext(ctx context.Context) error {
	if ctx == nil {
		m.lock(nil) //nolint:errcheck
		return nil
	}
	return m.lock(ctx)
}

// lock is the shared acquisition path; ctx may be nil (never cancels).
func (m *Mutex) lock(ctx context.Context) error {
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		done = ctx.Done()
	}
	m.mu.Lock()
	if !m.spinnableInit {
		m.spinnable = runtime.GOMAXPROCS(0) > 1
		m.spinnableInit = true
	}
	m.locks++
	if !m.locked && len(m.queue) == 0 {
		m.locked = true
		m.grantAt = time.Now()
		m.mu.Unlock()
		return nil
	}
	w := &mutexWaiter{ch: make(chan struct{}, 1), enq: time.Now()}
	m.queue = append(m.queue, w)
	position := len(m.queue)
	predWait := time.Duration(0)
	if m.svcValid {
		predWait = time.Duration(position) * m.svc
	}
	spin := m.spinnable && m.svcValid && predWait <= mutexSpinCutoff
	if spin {
		m.spins++
	} else {
		m.parks++
	}
	m.mu.Unlock()

	if spin {
		// Bounded spin for the grant, then park: a wrong "short"
		// prediction costs at most the budget. done is nil for plain Lock
		// callers and its case never fires.
		deadline := time.Now().Add(2 * mutexSpinCutoff)
		for {
			select {
			case <-w.ch:
				return nil
			case <-done:
				return m.cancelWait(ctx, w)
			default:
			}
			if time.Now().After(deadline) {
				break
			}
		}
	}
	// Park. Whichever path led here — a predicted-long wait or a spin whose
	// prediction ran out — the time blocked on the grant channel is CPU time
	// freed for other work, and is accounted as such (an underpredicting
	// spin must not corrupt the parked measurement by going untallied).
	// This is the only post-wait lock acquisition on the path.
	start := time.Now()
	select {
	case <-w.ch:
	case <-done:
		return m.cancelWait(ctx, w)
	}
	blocked := time.Since(start)
	m.mu.Lock()
	m.parked += blocked
	m.mu.Unlock()
	return nil
}

// cancelWait withdraws a cancelled waiter. If w is still queued it is
// unlinked in place (later waiters keep their relative order). If it is
// gone, the releaser has already dequeued it and the grant token is in
// flight: the only safe move is to accept the grant — it is guaranteed to
// arrive, the send is buffered — and hand ownership straight onward,
// because dropping the token would leave the mutex locked forever.
func (m *Mutex) cancelWait(ctx context.Context, w *mutexWaiter) error {
	m.mu.Lock()
	m.cancels++
	for i, q := range m.queue {
		if q == w {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			m.mu.Unlock()
			return ctx.Err()
		}
	}
	m.mu.Unlock()
	<-w.ch
	// We briefly own the lock. Pass it on without learning a service time:
	// grant-to-regrant here measures the cancellation race, not a real
	// hold, and would corrupt the wait predictor.
	m.release(false)
	return ctx.Err()
}

// Unlock releases m, handing it directly to the longest-waiting goroutine
// if any. It panics if m is not locked.
func (m *Mutex) Unlock() {
	m.release(true)
}

// release is the shared hand-off path. learn controls whether the
// grant-to-release interval updates the service-time predictor (true for
// real Unlocks, false when a cancelled grantee forwards ownership).
func (m *Mutex) release(learn bool) {
	m.mu.Lock()
	if !m.locked {
		m.mu.Unlock()
		panic("thrifty: Unlock of unlocked Mutex")
	}
	now := time.Now()
	if learn {
		// Learn the service time (grant-to-release, which includes any wake
		// latency the grantee paid) — the lock's last-value predictor.
		m.svc = now.Sub(m.grantAt)
		m.svcValid = true
	}
	if len(m.queue) == 0 {
		m.locked = false
		m.mu.Unlock()
		return
	}
	next := m.queue[0]
	m.queue = m.queue[1:]
	m.grantAt = now // ownership transfers immediately
	m.mu.Unlock()
	next.ch <- struct{}{}
}

// MutexStats is a snapshot of a Mutex's behaviour.
type MutexStats struct {
	Locks uint64
	// Spins and Parks count contended acquisitions by wait strategy.
	Spins uint64
	Parks uint64
	// Cancels counts LockContext acquisitions abandoned by cancellation.
	Cancels uint64
	// Parked is the wall time waiters spent blocked instead of spinning.
	Parked time.Duration
	// ServiceTime is the last learned lock service time.
	ServiceTime time.Duration
}

// Stats returns a snapshot of the mutex's counters.
func (m *Mutex) Stats() MutexStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MutexStats{
		Locks:       m.locks,
		Spins:       m.spins,
		Parks:       m.parks,
		Cancels:     m.cancels,
		Parked:      m.parked,
		ServiceTime: m.svc,
	}
}
