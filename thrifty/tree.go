package thrifty

import (
	"math/rand/v2"
	"sync/atomic"
)

// arrivalTree is the opt-in combining-tree arrival topology
// (Options.TreeRadix): an MCS-style static tree of counters in which at
// most radix check-ins land on any one cache line. Waiters deposit one
// token in a leaf; the check-in that fills a node's quota propagates a
// single token to the parent, and the check-in that fills the root is the
// generation's releaser. Unlike the classic MCS tree, parties are not
// statically assigned to leaves — any goroutine may call Wait — so leaves
// carry quotas summing to the party count and a waiter probes from a
// random leaf until one admits it (total quota == parties guarantees a
// free slot for every legitimate arrival, by pigeonhole).
//
// Generations are handled lazily: each node tags its count with the
// generation it belongs to, and the first check-in of a newer generation
// resets the node in the same CAS. Nothing is cleared at release time, so
// the release path stays O(1).
type arrivalTree struct {
	nodes    []treeNode
	leafBase int // index of the first leaf; leaves occupy the tail of nodes
}

// treeNode is one counter in the tree, padded to a cache line so sibling
// counters never false-share — the whole point of the topology is that
// concurrent arrivals touch different lines.
type treeNode struct {
	// state packs the node's generation (high 32 bits) and check-in count
	// (low 32 bits): a single CAS both joins the node and detects a stale
	// generation.
	state  atomic.Uint64
	quota  uint32 // check-ins that fill this node for one generation
	parent int32  // index of the parent node; -1 at the root
	_      [48]byte
}

const (
	joinOK    = iota // token deposited
	joinFull         // leaf already at quota for this generation: probe on
	joinStale        // node is at a NEWER generation: caller must re-observe
)

// newArrivalTree builds the static tree for parties check-ins with the
// given radix. It returns nil when the shape collapses to a single leaf,
// where the central counter is strictly better.
func newArrivalTree(parties, radix int) *arrivalTree {
	leaves := (parties + radix - 1) / radix
	if leaves < 2 {
		return nil
	}
	// Level sizes bottom-up: leaves first, then each parent level, up to
	// the single root.
	sizes := []int{leaves}
	for n := leaves; n > 1; {
		n = (n + radix - 1) / radix
		sizes = append(sizes, n)
	}
	total := 0
	for _, n := range sizes {
		total += n
	}
	t := &arrivalTree{nodes: make([]treeNode, total)}
	// Lay levels out root-first so offsets[level] locates each level in
	// the flat slice (level is the bottom-up index: 0 = leaves).
	offsets := make([]int, len(sizes))
	off := 0
	for level := len(sizes) - 1; level >= 0; level-- {
		offsets[level] = off
		off += sizes[level]
	}
	t.leafBase = offsets[0]
	base, rem := parties/leaves, parties%leaves
	for level, size := range sizes {
		for j := 0; j < size; j++ {
			n := &t.nodes[offsets[level]+j]
			if level == len(sizes)-1 {
				n.parent = -1
			} else {
				n.parent = int32(offsets[level+1] + j/radix)
			}
			if level == 0 {
				// Leaf quotas sum to the party count, balanced to within
				// one: the first rem leaves take the remainder.
				q := base
				if j < rem {
					q++
				}
				n.quota = uint32(q)
			} else {
				// An internal node receives exactly one token per child.
				children := min(radix*j+radix, sizes[level-1]) - radix*j
				n.quota = uint32(children)
			}
		}
	}
	return t
}

// join deposits one token in node idx for generation g.
func (t *arrivalTree) join(idx int, g uint32) (status int, filled bool) {
	n := &t.nodes[idx]
	for {
		st := n.state.Load()
		if ng := uint32(st >> 32); ng != g {
			if int32(g-ng) > 0 {
				// The node still holds a completed older generation:
				// reset and deposit in one CAS (the lazy reset).
				if n.state.CompareAndSwap(st, uint64(g)<<32|1) {
					return joinOK, n.quota == 1
				}
				continue
			}
			return joinStale, false
		}
		cnt := uint32(st)
		if cnt >= n.quota {
			return joinFull, false
		}
		if n.state.CompareAndSwap(st, st+1) {
			return joinOK, cnt+1 == n.quota
		}
	}
}

// checkIn deposits one arrival for generation g and propagates any node
// fills toward the root. It returns the leaf index (0-based among the
// leaves) the arrival landed on — the waiter parks on that leaf's channel,
// so the release broadcast fans out along the same tree the arrival
// climbed. It reports root=true when this check-in filled the root — the
// caller is the generation's releaser — and ok=false when the tree has
// already moved past g (the caller's generation view is stale; it must
// re-observe the barrier state and retry).
func (t *arrivalTree) checkIn(g uint32) (leaf int, root, ok bool) {
	nLeaves := len(t.nodes) - t.leafBase
	start := int(rand.Uint64N(uint64(nLeaves)))
	idx := -1
	var filled bool
	for i := 0; i < nLeaves; i++ {
		li := t.leafBase + (start+i)%nLeaves
		switch status, f := t.join(li, g); status {
		case joinStale:
			return 0, false, false
		case joinOK:
			idx, filled = li, f
		}
		if idx >= 0 {
			break
		}
	}
	if idx < 0 {
		// Every leaf is at quota: more than parties concurrent arrivals,
		// which the Barrier contract (like sync.WaitGroup misuse) forbids.
		panic("thrifty: more concurrent arrivals than parties")
	}
	leaf = idx - t.leafBase
	for filled {
		p := t.nodes[idx].parent
		if p < 0 {
			return leaf, true, true
		}
		status, f := t.join(int(p), g)
		if status == joinStale {
			// The generation died under us (Reset): the fill token is
			// moot, the round's waiters are woken through its channel.
			return 0, false, false
		}
		idx, filled = int(p), f
	}
	return leaf, false, true
}

// leaves reports the number of leaf counters — the width of the sharded
// release broadcast (one wake channel per leaf).
func (t *arrivalTree) leaves() int { return len(t.nodes) - t.leafBase }

// arrived counts generation g's check-ins currently recorded in the
// leaves (for the stall watchdog's head count). The sum is racy against
// in-flight check-ins, like the central counter's count it replaces.
func (t *arrivalTree) arrived(g uint32) int {
	n := 0
	for i := t.leafBase; i < len(t.nodes); i++ {
		if st := t.nodes[i].state.Load(); uint32(st>>32) == g {
			n += int(uint32(st))
		}
	}
	return n
}
