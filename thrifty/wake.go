package thrifty

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"thriftybarrier/internal/wheel"
)

// The internal wake-up (§3.3.2's programmable timer) is delivered through
// the process-wide timing wheel (internal/wheel) instead of a per-waiter
// time.Timer. The change is invisible to the algorithm — late/early wake
// accounting, the residual spin and the cut-off verdict are fed exactly
// as before — but it moves the cost off the Go runtime's per-P timer
// heaps: arming is an O(1) bucket append, and the overwhelmingly common
// cancel (the external wake-up usually wins the race) is an O(1) unlink
// that never touches a heap. In the many-barrier regime this is the
// difference between every park/release pair paying two O(log n) heap
// operations and paying two short critical sections on a sharded lock.
//
// The predecessor of this file pooled time.Timer values and stopped them
// with a non-blocking drain before Put. That protocol had a real race
// (confirmed by TestTimedParkWakeRace before the rewrite): when the
// timer fired at the same instant the external wake-up won the select,
// Stop returned false while the runtime was still between "timer removed
// from heap" and "tick delivered to the channel" — the non-blocking drain
// found the channel empty, the timer was pooled, and the late tick
// poisoned the next waiter's Get, waking it immediately and feeding a
// bogus early-wake sample to the predictor. The wake-channel protocol
// below closes that window by construction: a failed Cancel means the
// fire owns the channel's single token, so the waiter BLOCKS for it —
// the wheel's post-unlock send makes that receive bounded — and only a
// proven-empty channel is ever pooled.

// wakeChPool recycles the capacity-1 channels the wheel delivers internal
// wake-ups through. A channel is pooled only when provably empty: after
// its token was consumed, or after a successful Cancel (no token was or
// will ever be sent).
var wakeChPool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// timedParked counts waiters currently inside timedPark across every
// Barrier in the process — the load signal for the spin-then-wheel
// policy below.
var timedParked atomic.Int64

// disarmWake resolves the §3.3.2 race on the waiter's side after the
// external wake-up (or a cancellation) won the select: the internal
// wake-up is cancelled in O(1), and if the cancel reports that the fire
// already claimed the entry, the in-flight token is consumed so the
// channel goes back to the pool empty.
func disarmWake(h wheel.Handle, ch chan struct{}) {
	if !wheel.Default().Cancel(h) {
		// The fire won: its token is in the channel or about to be sent
		// (the wheel sends right after releasing the shard lock), so this
		// receive is bounded. Blocking here — rather than a non-blocking
		// drain — is what makes pooled channels impossible to poison.
		<-ch
	}
	wakeChPool.Put(ch)
}

// coalescedWake is one shared internal wake-up: a broadcast-close wheel
// entry that every waiter of the round whose predicted release quantizes
// to the same tick parks on. refs counts the sharers; the last one out
// cancels the entry and unpublishes the pointer.
type coalescedWake struct {
	due  uint64 // absolute wheel tick the entry fires at
	ch   chan struct{}
	h    wheel.Handle
	refs atomic.Int32
}

// joinCoalesced returns the round's shared wake-up for a deadline d from
// now, joining the published entry when its tick matches, creating and
// publishing one when none exists, and returning nil — caller falls back
// to a private entry — when the published entry fires at a different
// tick. Tick quantization is what makes sharing sound: two deadlines on
// the same tick are indistinguishable to the wheel, so one broadcast
// close serves both without changing either waiter's wake time.
func joinCoalesced(w *wheel.Wheel, rd *round, d time.Duration) *coalescedWake {
	due := w.DueTick(d)
	for {
		cw := rd.coalesced.Load()
		if cw == nil {
			nw := &coalescedWake{ch: make(chan struct{})}
			nw.refs.Store(1)
			nw.h, nw.due = w.ArmClose(d, nw.ch)
			if nw.due != due {
				// Time advanced across a tick boundary between DueTick
				// and ArmClose; the armed tick is the truth.
				due = nw.due
			}
			if rd.coalesced.CompareAndSwap(nil, nw) {
				return nw
			}
			// Lost the publish race: retire the private entry (a failed
			// Cancel means it already closed — ours alone, no one saw it)
			// and retry against the winner.
			w.Cancel(nw.h)
			continue
		}
		if cw.due != due {
			return nil
		}
		r := cw.refs.Load()
		if r <= 0 {
			// Mid-teardown: the last leaver is about to unpublish. Help
			// clear so the retry can create a fresh entry.
			rd.coalesced.CompareAndSwap(cw, nil)
			continue
		}
		if cw.refs.CompareAndSwap(r, r+1) {
			return cw
		}
	}
}

// leaveCoalesced drops one reference on the shared wake-up; the last
// leaver cancels the wheel entry (a failed Cancel means it fired — a
// closed broadcast channel needs no drain) and unpublishes it.
func leaveCoalesced(w *wheel.Wheel, rd *round, cw *coalescedWake) {
	if cw.refs.Add(-1) == 0 {
		w.Cancel(cw.h)
		rd.coalesced.CompareAndSwap(cw, nil)
	}
}

// timedPark is the hybrid wake-up (§3.3.2): block on the round's
// broadcast channel (external wake-up, the flag-flip invalidation) and a
// timing-wheel entry armed at the predicted release minus the margin
// (internal wake-up); the first to trigger cancels the other. A
// timer-woken waiter residual-spins until the release (§2's Residual
// Spin). The outcome is reported back rather than recorded here so the
// caller can fold all post-wait bookkeeping in one place.
func (b *Barrier) timedPark(rd *round, parkCh chan struct{}, predictedRelease time.Time, done <-chan struct{}) (out waitOutcome, cancelled bool) {
	wake := predictedRelease.Add(-b.opts.ParkMargin)
	d := wake.Sub(b.opts.Now())
	if d <= 0 {
		select {
		case <-parkCh:
		case <-done:
			cancelled = true
		}
		return out, cancelled
	}
	timedParked.Add(1)
	defer timedParked.Add(-1)

	// Waiter-count-aware spin-then-wheel: when the anticipation gap fits
	// in the spin budget AND the process is not already saturated with
	// timed-parked waiters, skip the wheel and go straight to the
	// residual spin — for a gap this short, two shard-lock sections plus
	// a channel wake cost more than the spin they would save, but only
	// while there are processors to spin on. Past one waiter per
	// processor the wheel is strictly better, so the many-barrier regime
	// always takes the wheel path. This is the internal wake-up firing at
	// arm time, hence earlyWake: the cut-off still judges the prediction.
	if d <= b.opts.SpinBudget && b.spinnable && timedParked.Load() <= int64(runtime.GOMAXPROCS(0)) {
		out.earlyWake = true
		cancelled = b.spinThenPark(rd, parkCh, done)
		return out, cancelled
	}

	// Coalesced path: with more than two parties, sibling waiters of the
	// same round predict (nearly) the same release, so their wheel
	// deadlines usually quantize to the same tick — one broadcast-close
	// entry serves them all, collapsing k arm/cancel pairs into one. At
	// parties ≤ 2 there is at most one timed parker per round, so the
	// shared entry would only add CAS traffic over the pooled private
	// path below.
	if b.parties > 2 {
		if cw := joinCoalesced(wheel.Default(), rd, d); cw != nil {
			select {
			case <-parkCh:
				out.lateWake = true
			case <-cw.ch:
				out.earlyWake = true
				leaveCoalesced(wheel.Default(), rd, cw)
				cancelled = b.spinThenPark(rd, parkCh, done)
				return out, cancelled
			case <-done:
				cancelled = true
			}
			leaveCoalesced(wheel.Default(), rd, cw)
			return out, cancelled
		}
	}

	wch := wakeChPool.Get().(chan struct{})
	h := wheel.Default().Arm(d, wch)
	select {
	case <-parkCh:
		// External wake-up won: the release beat the timer.
		out.lateWake = true
		disarmWake(h, wch)
	case <-wch:
		// Internal wake-up: the token is consumed, so the channel is
		// clean for the pool; residual-spin for the release, bounded by
		// the spin budget, then park.
		out.earlyWake = true
		wakeChPool.Put(wch)
		cancelled = b.spinThenPark(rd, parkCh, done)
	case <-done:
		cancelled = true
		disarmWake(h, wch)
	}
	return out, cancelled
}
