package thrifty

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"thriftybarrier/internal/wheel"
)

// The internal wake-up (§3.3.2's programmable timer) is delivered through
// the process-wide timing wheel (internal/wheel) instead of a per-waiter
// time.Timer. The change is invisible to the algorithm — late/early wake
// accounting, the residual spin and the cut-off verdict are fed exactly
// as before — but it moves the cost off the Go runtime's per-P timer
// heaps: arming is an O(1) bucket append, and the overwhelmingly common
// cancel (the external wake-up usually wins the race) is an O(1) unlink
// that never touches a heap. In the many-barrier regime this is the
// difference between every park/release pair paying two O(log n) heap
// operations and paying two short critical sections on a sharded lock.
//
// The predecessor of this file pooled time.Timer values and stopped them
// with a non-blocking drain before Put. That protocol had a real race
// (confirmed by TestTimedParkWakeRace before the rewrite): when the
// timer fired at the same instant the external wake-up won the select,
// Stop returned false while the runtime was still between "timer removed
// from heap" and "tick delivered to the channel" — the non-blocking drain
// found the channel empty, the timer was pooled, and the late tick
// poisoned the next waiter's Get, waking it immediately and feeding a
// bogus early-wake sample to the predictor. The wake-channel protocol
// below closes that window by construction: a failed Cancel means the
// fire owns the channel's single token, so the waiter BLOCKS for it —
// the wheel's post-unlock send makes that receive bounded — and only a
// proven-empty channel is ever pooled.

// wakeChPool recycles the capacity-1 channels the wheel delivers internal
// wake-ups through. A channel is pooled only when provably empty: after
// its token was consumed, or after a successful Cancel (no token was or
// will ever be sent).
var wakeChPool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// timedParked counts waiters currently inside timedPark across every
// Barrier in the process — the load signal for the spin-then-wheel
// policy below.
var timedParked atomic.Int64

// disarmWake resolves the §3.3.2 race on the waiter's side after the
// external wake-up (or a cancellation) won the select: the internal
// wake-up is cancelled in O(1), and if the cancel reports that the fire
// already claimed the entry, the in-flight token is consumed so the
// channel goes back to the pool empty.
func disarmWake(h wheel.Handle, ch chan struct{}) {
	if !wheel.Default().Cancel(h) {
		// The fire won: its token is in the channel or about to be sent
		// (the wheel sends right after releasing the shard lock), so this
		// receive is bounded. Blocking here — rather than a non-blocking
		// drain — is what makes pooled channels impossible to poison.
		<-ch
	}
	wakeChPool.Put(ch)
}

// timedPark is the hybrid wake-up (§3.3.2): block on the round's
// broadcast channel (external wake-up, the flag-flip invalidation) and a
// timing-wheel entry armed at the predicted release minus the margin
// (internal wake-up); the first to trigger cancels the other. A
// timer-woken waiter residual-spins until the release (§2's Residual
// Spin). The outcome is reported back rather than recorded here so the
// caller can fold all post-wait bookkeeping in one place.
func (b *Barrier) timedPark(rd *round, parkCh chan struct{}, predictedRelease time.Time, done <-chan struct{}) (out waitOutcome, cancelled bool) {
	wake := predictedRelease.Add(-b.opts.ParkMargin)
	d := wake.Sub(b.opts.Now())
	if d <= 0 {
		select {
		case <-parkCh:
		case <-done:
			cancelled = true
		}
		return out, cancelled
	}
	timedParked.Add(1)
	defer timedParked.Add(-1)

	// Waiter-count-aware spin-then-wheel: when the anticipation gap fits
	// in the spin budget AND the process is not already saturated with
	// timed-parked waiters, skip the wheel and go straight to the
	// residual spin — for a gap this short, two shard-lock sections plus
	// a channel wake cost more than the spin they would save, but only
	// while there are processors to spin on. Past one waiter per
	// processor the wheel is strictly better, so the many-barrier regime
	// always takes the wheel path. This is the internal wake-up firing at
	// arm time, hence earlyWake: the cut-off still judges the prediction.
	if d <= b.opts.SpinBudget && b.spinnable && timedParked.Load() <= int64(runtime.GOMAXPROCS(0)) {
		out.earlyWake = true
		cancelled = b.spinThenPark(rd, parkCh, done)
		return out, cancelled
	}

	wch := wakeChPool.Get().(chan struct{})
	h := wheel.Default().Arm(d, wch)
	select {
	case <-parkCh:
		// External wake-up won: the release beat the timer.
		out.lateWake = true
		disarmWake(h, wch)
	case <-wch:
		// Internal wake-up: the token is consumed, so the channel is
		// clean for the pool; residual-spin for the release, bounded by
		// the spin budget, then park.
		out.earlyWake = true
		wakeChPool.Put(wch)
		cancelled = b.spinThenPark(rd, parkCh, done)
	case <-done:
		cancelled = true
		disarmWake(h, wch)
	}
	return out, cancelled
}
