package thrifty

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTimedParkWakeRaceExternalVsTimerFire is the regression test for the
// pooled-timer reuse race (the timerPool satellite audit): the external
// wake-up winning the select at the same instant the internal wake-up
// fires. Under the old time.Timer pool, Stop raced the in-flight tick and
// the non-blocking drain could pool a timer with a late tick still
// undelivered, poisoning the next Get. The wheel's cancel-or-drain
// protocol must survive the same hammering with no race reports, no
// deadlock, and exactly one wake outcome per park.
//
// SpinBudget is floored at 1ns so the spin-then-wheel shortcut never
// bypasses the wheel: every iteration really arms and resolves a wheel
// entry.
func TestTimedParkWakeRaceExternalVsTimerFire(t *testing.T) {
	b := New(2, Options{SpinBudget: time.Nanosecond})
	const (
		workers = 4
		iters   = 400
	)
	var armed atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rd := &round{ch: make(chan struct{})}
				// The release lands right around the internal wake-up
				// instant: the wheel entry is armed for ~d (predicted
				// minus margin) and the closer sleeps ~d too, sweeping
				// the fire/cancel window across iterations.
				d := time.Duration(1+(i%8)*25) * time.Microsecond
				predicted := time.Now().Add(b.opts.ParkMargin + d)
				go func() {
					time.Sleep(d)
					rd.done.Store(true)
					closeRound(rd)
				}()
				out, cancelled := b.timedPark(rd, rd.ch, predicted, nil)
				if cancelled {
					t.Errorf("worker %d iter %d: spuriously cancelled with nil done channel", w, i)
					return
				}
				// Exactly one wake path may claim the outcome. (Neither is
				// legal: a scheduling delay can push the anticipation
				// instant into the past before timedPark reads the clock,
				// degenerating to a plain park.)
				if out.earlyWake && out.lateWake {
					t.Errorf("worker %d iter %d: both wake paths claimed the outcome %+v", w, i, out)
					return
				}
				if out.earlyWake || out.lateWake {
					armed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if armed.Load() == 0 {
		t.Fatal("no iteration ever armed the wheel: the race window was not exercised")
	}

	// Poisoning detector: after the hammer every pooled wake channel must
	// be empty. A leftover token from a mis-drained park would surface
	// here as a bogus immediate internal wake-up (earlyWake) on a park
	// whose wheel entry cannot fire for an hour.
	rd := &round{ch: make(chan struct{})}
	rd.done.Store(true)
	close(rd.ch)
	far := time.Now().Add(time.Hour)
	for i := 0; i < 2*workers+16; i++ {
		out, cancelled := b.timedPark(rd, rd.ch, far, nil)
		if cancelled || out.earlyWake || !out.lateWake {
			t.Fatalf("iteration %d: pooled wake channel poisoned (outcome %+v)", i, out)
		}
	}
}
