package thrifty

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestNewPanicsOnZeroParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0, Options{})
}

func TestSingleParty(t *testing.T) {
	b := New(1, Options{})
	for i := 0; i < 100; i++ {
		b.Wait() // must never block
	}
	if g := b.Generation(); g != 100 {
		t.Fatalf("generation = %d, want 100", g)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const parties = 8
	const rounds = 50
	b := New(parties, Options{})
	var phase atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan string, parties*rounds)
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// All goroutines must observe the same phase while between
				// barriers.
				if got := phase.Load(); got != int64(r) {
					errs <- "phase skew"
					return
				}
				b.Wait()
				// Exactly one bumps the phase.
				phase.CompareAndSwap(int64(r), int64(r+1))
				b.Wait()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if phase.Load() != rounds {
		t.Fatalf("completed %d phases, want %d", phase.Load(), rounds)
	}
}

func TestNoThreadPassesBeforeAllArrive(t *testing.T) {
	const parties = 6
	b := New(parties, Options{})
	var arrived atomic.Int32
	var maxSeen atomic.Int32
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(p) * 2 * time.Millisecond) // staggered arrivals
			arrived.Add(1)
			b.Wait()
			// After the barrier, every party must have arrived.
			if n := arrived.Load(); n > maxSeen.Load() {
				maxSeen.Store(n)
			}
			if arrived.Load() != parties {
				t.Errorf("passed barrier with only %d arrivals", arrived.Load())
			}
		}()
	}
	wg.Wait()
}

func TestReusableAcrossGenerations(t *testing.T) {
	const parties = 4
	b := New(parties, Options{})
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 200; r++ {
				b.Wait()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("barrier deadlocked across generations")
	}
	if g := b.Generation(); g != 200 {
		t.Fatalf("generation = %d, want 200", g)
	}
}

func TestPredictionWarmsUpAndSelectsPark(t *testing.T) {
	// Long, stable intervals: after warm-up the early arrivers should pick
	// TimedPark or Park rather than spinning.
	const parties = 3
	b := New(parties, Options{
		SpinThreshold:      50 * time.Microsecond,
		YieldThreshold:     200 * time.Microsecond,
		TimedParkThreshold: 100 * time.Millisecond,
	})
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 12; r++ {
				if p == parties-1 {
					time.Sleep(4 * time.Millisecond) // straggler
				}
				b.WaitSite(0x42)
			}
		}()
	}
	wg.Wait()
	st := b.Stats()
	if len(st.Sites) != 1 {
		t.Fatalf("sites = %d, want 1", len(st.Sites))
	}
	s := st.Sites[0]
	parked := s.Tiers[TierTimedPark] + s.Tiers[TierPark]
	if parked == 0 {
		t.Fatalf("no waits chose a parking tier despite ~4ms stalls: %+v", s)
	}
	if s.LastBIT < 3*time.Millisecond {
		t.Fatalf("learned BIT %v implausibly small", s.LastBIT)
	}
}

func TestShortStallsSpin(t *testing.T) {
	const parties = 4
	b := New(parties, Options{})
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				b.WaitSite(0x99) // near-simultaneous arrivals: tiny stalls
			}
		}()
	}
	wg.Wait()
	s := b.Stats().Sites[0]
	if s.Tiers[TierPark] > s.Waits/2 {
		t.Fatalf("balanced barrier parked too much: %+v", s)
	}
}

func TestDistinctSitesLearnIndependently(t *testing.T) {
	const parties = 2
	b := New(parties, Options{})
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 6; r++ {
				if p == 1 {
					time.Sleep(2 * time.Millisecond)
				}
				b.WaitSite(0xA)
				if p == 1 {
					time.Sleep(8 * time.Millisecond)
				}
				b.WaitSite(0xB)
			}
		}()
	}
	wg.Wait()
	st := b.Stats()
	if len(st.Sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(st.Sites))
	}
	var bitA, bitB time.Duration
	for _, s := range st.Sites {
		switch s.Key {
		case 0xA:
			bitA = s.LastBIT
		case 0xB:
			bitB = s.LastBIT
		}
	}
	if bitB <= bitA {
		t.Fatalf("site B BIT (%v) not above site A (%v)", bitB, bitA)
	}
}

func TestCallerPCIndexing(t *testing.T) {
	const parties = 2
	b := New(parties, Options{})
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				b.Wait() // site 1
				b.Wait() // site 2
			}
		}()
	}
	wg.Wait()
	if n := len(b.Stats().Sites); n != 2 {
		t.Fatalf("caller-PC indexing found %d sites, want 2", n)
	}
}

func TestCutoffDisablesErraticSite(t *testing.T) {
	// Swinging intervals (the Ocean pathology): predictions keep missing,
	// the cut-off must eventually disable the site.
	const parties = 2
	b := New(parties, Options{MaxStrikes: 2})
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 16; r++ {
				if p == 1 {
					d := 200 * time.Microsecond
					if r%2 == 0 {
						d = 4 * time.Millisecond
					}
					time.Sleep(d)
				}
				b.WaitSite(0xC)
			}
		}()
	}
	wg.Wait()
	s := b.Stats().Sites[0]
	if s.CutoffHits == 0 {
		t.Fatalf("no cut-off hits on swinging intervals: %+v", s)
	}
	if !s.Disabled {
		t.Fatalf("erratic site not disabled after %d hits", s.CutoffHits)
	}
}

func TestHybridWakeupCounters(t *testing.T) {
	const parties = 2
	b := New(parties, Options{
		TimedParkThreshold: time.Second,
		ParkMargin:         200 * time.Microsecond,
	})
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				if p == 1 {
					time.Sleep(3 * time.Millisecond)
				}
				b.WaitSite(0xD)
			}
		}()
	}
	wg.Wait()
	s := b.Stats().Sites[0]
	if s.Tiers[TierTimedPark] == 0 {
		t.Skipf("scheduler timing did not produce timed parks: %+v", s)
	}
	if s.EarlyWakes+s.LateWakes == 0 {
		t.Fatalf("timed parks resolved neither early nor late: %+v", s)
	}
}

func TestManyPartiesStress(t *testing.T) {
	const parties = 32
	b := New(parties, Options{})
	var wg sync.WaitGroup
	var sum atomic.Int64
	for p := 0; p < parties; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 30; r++ {
				sum.Add(int64(p))
				b.Wait()
			}
		}()
	}
	wg.Wait()
	want := int64(30 * parties * (parties - 1) / 2)
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

// Property: for arbitrary (small) party counts and round counts, the
// barrier neither deadlocks nor loses a generation.
func TestBarrierLivenessProperty(t *testing.T) {
	f := func(pRaw, rRaw uint8) bool {
		parties := int(pRaw%6) + 1
		rounds := int(rRaw%20) + 1
		b := New(parties, Options{})
		var wg sync.WaitGroup
		for p := 0; p < parties; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					b.Wait()
				}
			}()
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
			return b.Generation() == uint64(rounds)
		case <-time.After(20 * time.Second):
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTierString(t *testing.T) {
	want := map[Tier]string{TierSpin: "spin", TierYield: "yield", TierTimedPark: "timed-park", TierPark: "park"}
	for tier, w := range want {
		if tier.String() != w {
			t.Errorf("%d.String() = %q, want %q", tier, tier.String(), w)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.fill()
	if o.SpinThreshold == 0 || o.Cutoff == 0 || o.Now == nil || o.MaxStrikes == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}

func TestParkedTimeAccounting(t *testing.T) {
	const parties = 2
	b := New(parties, Options{TimedParkThreshold: time.Second})
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 8; r++ {
				if p == 1 {
					time.Sleep(3 * time.Millisecond)
				}
				b.WaitSite(0xE)
			}
		}()
	}
	wg.Wait()
	s := b.Stats().Sites[0]
	parkedWaits := s.Tiers[TierTimedPark] + s.Tiers[TierPark]
	if parkedWaits == 0 {
		t.Skip("scheduler produced no parking waits")
	}
	// Each parked wait blocked ~3ms; allow generous slack.
	if s.Parked < time.Duration(parkedWaits)*time.Millisecond {
		t.Fatalf("parked time %v implausibly small for %d parked waits", s.Parked, parkedWaits)
	}
}

func TestSinglePDegradesSpinToYield(t *testing.T) {
	// With GOMAXPROCS=1 a spinner blocks the releaser until preemption
	// (~25us quantum), so the spin tier must degrade to yielding — the
	// same condition sync.Mutex's spin guard checks.
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	b := New(2, Options{})
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 40; r++ {
				b.WaitSite(0xF)
			}
		}()
	}
	wg.Wait()
	s := b.Stats().Sites[0]
	if s.Tiers[TierSpin] != 0 {
		t.Fatalf("single-P barrier used the spin tier %d times", s.Tiers[TierSpin])
	}
	if s.Tiers[TierYield] == 0 {
		t.Fatalf("single-P barrier never yielded: %+v", s)
	}
}
