package thrifty

import (
	"fmt"
	"sync"
	"testing"
)

func TestGroupGetOrCreate(t *testing.T) {
	g := NewGroup(4)
	b1, id1, err := g.GetOrCreate("phase", 2, Options{})
	if err != nil || b1 == nil || id1 == 0 {
		t.Fatalf("GetOrCreate = (%v, %d, %v)", b1, id1, err)
	}
	b2, id2, err := g.GetOrCreate("phase", 2, Options{})
	if err != nil || b2 != b1 || id2 != id1 {
		t.Fatalf("second GetOrCreate = (%p, %d, %v), want (%p, %d, nil)", b2, id2, err, b1, id1)
	}
	if _, _, err := g.GetOrCreate("phase", 3, Options{}); err == nil {
		t.Fatal("party-count mismatch not rejected")
	}
	if _, _, err := g.GetOrCreate("bad", 0, Options{}); err == nil {
		t.Fatal("parties 0 not rejected")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestGroupLookupAndRemove(t *testing.T) {
	g := NewGroup(1)
	b, id, _ := g.GetOrCreate("x", 1, Options{})
	if got, gid, ok := g.Lookup("x"); !ok || got != b || gid != id {
		t.Fatalf("Lookup = (%p, %d, %v)", got, gid, ok)
	}
	if got, ok := g.LookupID(id); !ok || got != b {
		t.Fatalf("LookupID = (%p, %v)", got, ok)
	}
	if removed, ok := g.Remove("x"); !ok || removed != b {
		t.Fatalf("Remove = (%p, %v)", removed, ok)
	}
	if _, _, ok := g.Lookup("x"); ok {
		t.Fatal("Lookup after Remove succeeded")
	}
	if _, ok := g.LookupID(id); ok {
		t.Fatal("LookupID after Remove succeeded")
	}
	if _, ok := g.Remove("x"); ok {
		t.Fatal("double Remove succeeded")
	}
}

// TestGroupConcurrentResolveAndWait races many goroutines resolving the
// same names through the lock-free path and actually synchronizing on
// the barriers they get back — everyone resolving a given name must land
// on the same Barrier or the Wait below deadlocks.
func TestGroupConcurrentResolveAndWait(t *testing.T) {
	g := NewGroup(4)
	const (
		names   = 4
		parties = 4
	)
	var wg sync.WaitGroup
	for n := 0; n < names; n++ {
		name := fmt.Sprintf("phase-%d", n)
		for p := 0; p < parties; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				b, _, err := g.GetOrCreate(name, parties, Options{})
				if err != nil {
					t.Errorf("GetOrCreate(%s): %v", name, err)
					return
				}
				b.Wait()
			}()
		}
	}
	wg.Wait()
	if g.Len() != names {
		t.Fatalf("Len = %d, want %d", g.Len(), names)
	}
	seen := 0
	g.Range(func(name string, id uint64, b *Barrier) bool {
		if b.Parties() != parties {
			t.Errorf("Range: %s has %d parties", name, b.Parties())
		}
		seen++
		return true
	})
	if seen != names {
		t.Fatalf("Range visited %d, want %d", seen, names)
	}
}
