package thrifty

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkArrivalPath measures the cost of the arrival operation itself —
// beginWait, i.e. joining the generation, signing in at the site, and
// either releasing or picking a sleep tier — with the rendezvous wait
// factored out: arrivals are issued storm-style, no goroutine parks, so
// ns/op is arrival-path cost rather than scheduler wake-up cost.
//
// The mutex baseline replicates the pre-rewrite hot path verbatim: one
// critical section covering the count, the site table, the stats, and the
// prediction. Interpretation depends on host parallelism: with real cores
// the mutex serializes arrivals and collapses while the lock-free word
// scales, but on a single-CPU host a never-contended mutex amortizes all
// its plain-field updates behind one lock round-trip and can come out
// ahead of the per-field atomics. The contention-modeled comparison that
// is meaningful on any host is BenchmarkBarrierArrival at the repo root,
// which runs on the simulated 64-CPU machine.
func BenchmarkArrivalPath(b *testing.B) {
	b.Run("mutex-baseline-64", func(b *testing.B) {
		m := newMutexArrivalBarrier(64)
		benchArrivalStorm(b, m.beginWait)
	})
	b.Run("lockfree-flat-64", func(b *testing.B) {
		bar := New(64, Options{})
		benchArrivalStorm(b, func() {
			if _, err := bar.beginWait(0x1); err != nil {
				panic(err)
			}
		})
	})
}

func benchArrivalStorm(b *testing.B, op func()) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			op()
		}
	})
}

// mutexArrivalBarrier is the pre-rewrite arrival path, kept as the
// benchmark baseline: arrival count, site table, stats, BIT update, and
// stall prediction all live under one mutex, exactly as the original
// implementation had them (prediction "in the arrival critical section,
// so it sees one consistent site snapshot").
type mutexArrivalBarrier struct {
	mu          sync.Mutex
	parties     int
	count       int
	generation  uint64
	lastRelease time.Time
	sites       map[uintptr]*mutexSite
	cur         *mutexArrivalRound
	ref         *Barrier // for selectTier: identical thresholds on both sides
}

type mutexSite struct {
	waits          uint64
	lastBIT        time.Duration
	valid          bool
	disabled       bool
	lastStall      time.Duration
	lastStallValid bool
	tiers          [numTiers]uint64
}

type mutexArrivalRound struct {
	ch   chan struct{}
	done atomic.Bool
}

func newMutexArrivalBarrier(parties int) *mutexArrivalBarrier {
	return &mutexArrivalBarrier{
		parties: parties,
		sites:   make(map[uintptr]*mutexSite),
		cur:     &mutexArrivalRound{ch: make(chan struct{})},
		ref:     New(parties, Options{}),
	}
}

func (m *mutexArrivalBarrier) beginWait() {
	now := time.Now()
	m.mu.Lock()
	s := m.sites[0x1]
	if s == nil {
		s = &mutexSite{}
		m.sites[0x1] = s
	}
	s.waits++
	m.count++
	if m.count == m.parties {
		if !m.lastRelease.IsZero() && !s.disabled {
			s.lastBIT = now.Sub(m.lastRelease)
			s.valid = true
		}
		m.lastRelease = now
		m.count = 0
		m.generation++
		old := m.cur
		m.cur = &mutexArrivalRound{ch: make(chan struct{})}
		m.mu.Unlock()
		old.done.Store(true)
		close(old.ch)
		return
	}
	var predictedStall time.Duration
	havePred := false
	if s.valid && !s.disabled {
		predictedRelease := m.lastRelease.Add(s.lastBIT)
		predictedStall = predictedRelease.Sub(now)
		havePred = predictedStall > 0
	}
	if s.lastStallValid && havePred {
		if clamp := 2 * s.lastStall; clamp < predictedStall {
			predictedStall = clamp
		}
	}
	tier := m.ref.selectTier(predictedStall, havePred)
	s.tiers[tier]++
	m.mu.Unlock()
}
