package thrifty

// Snapshot is a point-in-time view of a barrier's rendezvous state,
// decoded from the packed state word: generation in bits 63..32, the
// broken bit at bit 31, and the arrival count in bits 30..0 (taken from
// the combining tree in tree topology, where the central word's count
// field stays zero by design). It is what an external observer — a
// status endpoint, a debugger, thriftyd's barrier table — needs to
// render the barrier without touching its fast path.
type Snapshot struct {
	// Generation is the state word's generation field: the number of
	// rendezvous (releases and breaks) the barrier has cycled through,
	// truncated to 32 bits as stored in the word.
	Generation uint32
	// Arrived is how many of Parties have arrived at the open generation.
	Arrived int
	Parties int
	// Broken reports the broken bit: the window between breakRound and
	// Reset, when every arrival fails fast with ErrBroken.
	Broken bool
	// Releases and Breaks are the lifetime completion and break counters
	// (Releases mirrors Generation() before any wraparound).
	Releases uint64
	Breaks   uint64
}

// Snapshot decodes the current barrier state. It is a single atomic load
// of the state word plus (in tree topology) a read of the tree's arrival
// counters: safe to call at any time from any goroutine, and it never
// perturbs waiters. The count is a consistent snapshot only in the weak
// sense any concurrent observer gets — arrivals may land between the
// load and the return.
func (b *Barrier) Snapshot() Snapshot {
	st := b.state.Load()
	s := Snapshot{
		Generation: stateGen(st),
		Broken:     st&brokenBit != 0,
		Parties:    b.parties,
		Releases:   b.generation.Load(),
		Breaks:     b.breaks.Load(),
	}
	if b.tree != nil {
		s.Arrived = b.tree.arrived(stateGen(st))
	} else {
		s.Arrived = stateCount(st)
	}
	return s
}
