package workload

import (
	"strings"
	"testing"
)

// FuzzParseTrace checks that arbitrary input never panics the parser and
// that anything it accepts is internally consistent (uniform thread count,
// positive durations) and buildable.
func FuzzParseTrace(f *testing.F) {
	f.Add("0x100, 10, 20, 30\n0x200, 1, 2, 3\n")
	f.Add("# comment\n\n1,5.5,6.5\n")
	f.Add("garbage")
	f.Add("1,-1,2")
	f.Add("1,1e300,2\n1,2,3")
	f.Add("0x100,10\n0x100,10,20")
	f.Fuzz(func(t *testing.T, input string) {
		phases, err := ParseTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		threads := TraceThreads(phases)
		if threads <= 0 {
			t.Fatalf("accepted trace with %d threads", threads)
		}
		for i, ph := range phases {
			if len(ph.DurationsUS) != threads {
				t.Fatalf("phase %d has %d durations, want %d", i, len(ph.DurationsUS), threads)
			}
			for _, d := range ph.DurationsUS {
				if d <= 0 {
					t.Fatalf("accepted non-positive duration %v", d)
				}
			}
		}
		if _, err := BuildTrace(phases, 2.0); err != nil {
			t.Fatalf("accepted trace failed to build: %v", err)
		}
	})
}
