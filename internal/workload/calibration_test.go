package workload

import (
	"testing"

	"thriftybarrier/internal/core"
)

// TestTable2Calibration verifies that the Baseline barrier imbalance
// measured on the full 64-node machine reproduces Table 2 of the paper
// within a small tolerance, for every application. This is the anchor of
// the whole reproduction: Figures 5 and 6 are functions of this quantity.
func TestTable2Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node calibration in -short mode")
	}
	arch := core.DefaultArch()
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			prog := s.Build(64, 1)
			m := core.NewMachine(arch, core.Baseline())
			res := m.Run(prog)
			got := res.Breakdown.SpinFraction()
			want := s.TargetImbalance
			tol := 0.15 * want
			if tol < 0.01 {
				tol = 0.01
			}
			if got < want-tol || got > want+tol {
				t.Errorf("imbalance = %.4f, want %.4f +/- %.4f (Table 2)", got, want, tol)
			}
		})
	}
}

// TestTable2OrderingPreserved verifies the measured imbalances sort in the
// same order as the paper's Table 2 (the property its figures rely on),
// allowing near-ties to swap.
func TestTable2OrderingPreserved(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node runs in -short mode")
	}
	arch := core.DefaultArch()
	var measured []float64
	for _, s := range All() {
		res := core.NewMachine(arch, core.Baseline()).Run(s.Build(64, 1))
		measured = append(measured, res.Breakdown.SpinFraction())
	}
	for i := 1; i < len(measured); i++ {
		// Allow 1.5pp of slack for adjacent near-ties (FMM/Barnes are 0.6pp
		// apart in the paper itself).
		if measured[i] > measured[i-1]+0.015 {
			t.Errorf("measured imbalance out of Table 2 order at %s: %.4f > %.4f",
				All()[i].Name, measured[i], measured[i-1])
		}
	}
}
