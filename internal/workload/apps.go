package workload

// The ten SPLASH-2 stand-ins of Table 2, in the paper's order of
// decreasing Baseline barrier imbalance. Parameters were calibrated
// against the measured imbalance of the simulated 64-node Baseline (see
// TestTable2Calibration): the straggler factor sets the imbalance
// (≈ Straggler/(1+Straggler)), BaseInstr sets the interval length (100k
// instructions ≈ 50 µs at IPC 2 and 1 GHz), Swing produces Ocean's
// interval swings, and OneShot prologues produce FFT/Cholesky's
// non-repeating barriers.

// Volrend: ray-casting volume renderer. The paper's ideal case — very
// large intervals and the largest imbalance (48.2%), so deep sleep states
// fit with room to spare and Thrifty matches Ideal.
func Volrend() Spec {
	return Spec{
		Name:            "Volrend",
		ProblemSize:     "head",
		TargetImbalance: 0.4820,
		Iterations:      20,
		Seed:            1,
		Loop: []BarrierSpec{
			{Label: "render", BaseInstr: 2_400_000, Straggler: 1.05, Rotate: true, Noise: 0.05, DirtyLines: 32, SharedReads: 32},
			{Label: "composite", BaseInstr: 1_100_000, Straggler: 0.85, Rotate: true, Noise: 0.05, DirtyLines: 16, SharedReads: 16},
		},
	}
}

// Radix: parallel radix sort; moderate imbalance from the per-digit
// histogram and permutation phases.
func Radix() Spec {
	return Spec{
		Name:            "Radix",
		ProblemSize:     "1M integers, radix 1,024",
		TargetImbalance: 0.1950,
		Iterations:      12,
		Seed:            2,
		Loop: []BarrierSpec{
			{Label: "histogram", BaseInstr: 1_900_000, Straggler: 0.26, Rotate: true, Noise: 0.05, DirtyLines: 32, SharedReads: 16},
			{Label: "scan", BaseInstr: 950_000, Straggler: 0.24, Rotate: true, Noise: 0.05, SharedReads: 24},
			{Label: "permute", BaseInstr: 3_100_000, Straggler: 0.26, Rotate: true, Noise: 0.05, DirtyLines: 64, SharedReads: 16},
		},
	}
}

// FMM: fast multipole n-body. Its three main-loop barriers are the
// Figure 3 example: per-barrier intervals differ (≈0.75x, 1.5x, 0.8x of
// the mean) but each is stable across instances, while per-thread stall
// shifts around (rotating stragglers).
func FMM() Spec {
	return Spec{
		Name:            "FMM",
		ProblemSize:     "16k particles, 8 time steps",
		TargetImbalance: 0.1656,
		Iterations:      16,
		Seed:            3,
		Loop: []BarrierSpec{
			{Label: "1", BaseInstr: 1_800_000, Straggler: 0.22, Rotate: true, Noise: 0.06, DirtyLines: 64, SharedReads: 32},
			{Label: "2", BaseInstr: 3_600_000, Straggler: 0.20, Rotate: true, Noise: 0.06, DirtyLines: 64, SharedReads: 32},
			{Label: "3", BaseInstr: 1_900_000, Straggler: 0.20, Rotate: true, Noise: 0.06, DirtyLines: 48, SharedReads: 16},
		},
	}
}

// Barnes: Barnes-Hut n-body; tree build plus force computation.
func Barnes() Spec {
	return Spec{
		Name:            "Barnes",
		ProblemSize:     "16k particles, 8 time steps",
		TargetImbalance: 0.1593,
		Iterations:      14,
		Seed:            4,
		Loop: []BarrierSpec{
			{Label: "treebuild", BaseInstr: 1_500_000, Straggler: 0.17, Rotate: true, Noise: 0.05, DirtyLines: 48, SharedReads: 32},
			{Label: "force", BaseInstr: 4_500_000, Straggler: 0.19, Rotate: true, Noise: 0.05, DirtyLines: 32, SharedReads: 48},
		},
	}
}

// WaterNsq: O(n^2) molecular dynamics; dirty per-thread force arrays make
// the deep-sleep flush visible (§5.2 names it among the flush-affected).
func WaterNsq() Spec {
	return Spec{
		Name:            "Water-Nsq",
		ProblemSize:     "512 molecules, 12 time steps",
		TargetImbalance: 0.1290,
		Iterations:      12,
		Seed:            5,
		Loop: []BarrierSpec{
			{Label: "intraf", BaseInstr: 1_300_000, Straggler: 0.165, Rotate: true, Noise: 0.05, DirtyLines: 72, SharedReads: 16},
			{Label: "interf", BaseInstr: 3_200_000, Straggler: 0.165, Rotate: true, Noise: 0.05, DirtyLines: 72, SharedReads: 32},
			{Label: "update", BaseInstr: 1_000_000, Straggler: 0.14, Rotate: true, Noise: 0.05, DirtyLines: 48, SharedReads: 8},
		},
	}
}

// WaterSp: spatial-decomposition water; smaller imbalance than Nsq.
func WaterSp() Spec {
	return Spec{
		Name:            "Water-Sp",
		ProblemSize:     "512 molecules, 12 time steps",
		TargetImbalance: 0.0979,
		Iterations:      12,
		Seed:            6,
		Loop: []BarrierSpec{
			{Label: "intraf", BaseInstr: 1_200_000, Straggler: 0.11, Rotate: true, Noise: 0.04, DirtyLines: 32, SharedReads: 16},
			{Label: "interf", BaseInstr: 2_800_000, Straggler: 0.11, Rotate: true, Noise: 0.04, DirtyLines: 32, SharedReads: 24},
			{Label: "update", BaseInstr: 900_000, Straggler: 0.09, Rotate: true, Noise: 0.04, DirtyLines: 24, SharedReads: 8},
		},
	}
}

// Ocean: regular-grid ocean simulation. Frequently invoked barriers whose
// interval times swing sharply across instances (§5.2): last-value
// prediction overkills after a long instance, the external wake-up exposes
// the exit transition and the flush of its large dirty set, and the
// overprediction cut-off is what contains the damage.
func Ocean() Spec {
	return Spec{
		Name:            "Ocean",
		ProblemSize:     "514 by 514 ocean",
		TargetImbalance: 0.0760,
		Iterations:      24,
		Seed:            7,
		Loop: []BarrierSpec{
			{Label: "relaxA", BaseInstr: 1_000_000, Straggler: 0.085, Rotate: true, Noise: 0.04, Swing: []float64{1, 0.2, 1.05, 0.22}, DirtyLines: 96, SharedReads: 24},
			{Label: "relaxB", BaseInstr: 840_000, Straggler: 0.085, Rotate: true, Noise: 0.04, Swing: []float64{0.21, 1, 0.23, 0.95}, DirtyLines: 96, SharedReads: 24},
			{Label: "multigrid", BaseInstr: 400_000, Straggler: 0.06, Rotate: true, Noise: 0.04, DirtyLines: 48, SharedReads: 16},
			{Label: "error", BaseInstr: 300_000, Straggler: 0.05, Rotate: true, Noise: 0.04, SharedReads: 8},
			{Label: "copy", BaseInstr: 400_000, Straggler: 0.05, Rotate: true, Noise: 0.04, DirtyLines: 64, SharedReads: 8},
		},
	}
}

// FFT: six-step FFT — a handful of one-shot barriers with distinct PCs,
// which leaves the PC-indexed predictor cold; Thrifty behaves exactly like
// Baseline (§5.1).
func FFT() Spec {
	mk := func(label string, base int64, lam float64) BarrierSpec {
		return BarrierSpec{Label: label, BaseInstr: base, Straggler: lam, Rotate: true, Noise: 0.03, DirtyLines: 64, SharedReads: 32}
	}
	return Spec{
		Name:            "FFT",
		ProblemSize:     "64k points",
		TargetImbalance: 0.0382,
		OneShot:         true,
		Seed:            8,
		Prologue: []BarrierSpec{
			mk("init", 1_600_000, 0.035),
			mk("transpose1", 3_200_000, 0.045),
			mk("fft1", 2_800_000, 0.035),
			mk("transpose2", 3_200_000, 0.045),
			mk("fft2", 2_800_000, 0.035),
			mk("transpose3", 3_200_000, 0.045),
			mk("check", 1_200_000, 0.025),
		},
	}
}

// Cholesky: sparse Cholesky factorization — also a few non-repeating
// barriers, with very low imbalance.
func Cholesky() Spec {
	mk := func(label string, base int64, lam float64) BarrierSpec {
		return BarrierSpec{Label: label, BaseInstr: base, Straggler: lam, Rotate: true, Noise: 0.02, DirtyLines: 48, SharedReads: 24}
	}
	return Spec{
		Name:            "Cholesky",
		ProblemSize:     "tk15",
		TargetImbalance: 0.0164,
		OneShot:         true,
		Seed:            9,
		Prologue: []BarrierSpec{
			mk("load", 1_400_000, 0.008),
			mk("reorder", 2_400_000, 0.008),
			mk("symbolic", 1_900_000, 0.008),
			mk("numeric1", 4_300_000, 0.008),
			mk("numeric2", 4_300_000, 0.008),
			mk("solve", 1_900_000, 0.006),
		},
	}
}

// Radiosity: hierarchical radiosity with task stealing — nearly balanced,
// so prediction finds no stall worth sleeping for.
func Radiosity() Spec {
	return Spec{
		Name:            "Radiosity",
		ProblemSize:     "room -ae 5000.0 -en 0.05 -bf 0.1",
		TargetImbalance: 0.0104,
		Iterations:      10,
		Seed:            10,
		Loop: []BarrierSpec{
			{Label: "refine", BaseInstr: 2_000_000, Straggler: 0.006, Rotate: true, Noise: 0.008, DirtyLines: 32, SharedReads: 32},
			{Label: "radiosity", BaseInstr: 3_000_000, Straggler: 0.006, Rotate: true, Noise: 0.008, DirtyLines: 32, SharedReads: 32},
		},
	}
}

// All returns the ten applications in Table 2 order (decreasing
// imbalance).
func All() []Spec {
	return []Spec{
		Volrend(), Radix(), FMM(), Barnes(), WaterNsq(),
		WaterSp(), Ocean(), FFT(), Cholesky(), Radiosity(),
	}
}

// ByName looks an application up by its Table 2 name.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// TargetApps returns the applications with >= 10% barrier imbalance — the
// paper's "target applications" over which the headline averages are
// computed (§4.2).
func TargetApps() []Spec {
	var out []Spec
	for _, s := range All() {
		if s.TargetImbalance >= 0.10 {
			out = append(out, s)
		}
	}
	return out
}
