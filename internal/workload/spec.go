// Package workload provides the synthetic SPLASH-2-style applications the
// evaluation runs. Since the real SPLASH-2 binaries cannot execute on this
// substrate, each application is modeled as a barrier-phase program
// parameterized along the four axes that determine every result in the
// paper: barrier imbalance (Table 2), per-static-barrier interval stability
// (Figure 3), interval length relative to the sleep-state transition
// latencies, and dirty working-set size (the deep-sleep flush cost). The
// parameters of the ten applications are calibrated so that the measured
// Baseline imbalance reproduces Table 2.
package workload

import (
	"fmt"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/cpu"
	"thriftybarrier/internal/sim"
)

// BarrierSpec describes one static barrier in an application's main loop
// and the compute phase that precedes it.
type BarrierSpec struct {
	// Label names the barrier for Figure-3-style reports.
	Label string
	// BaseInstr is the mean per-thread dynamic instruction count of the
	// phase (at IPC 2 and 1 GHz, 100k instructions ≈ 50 µs).
	BaseInstr int64
	// Straggler is the extra work factor of the slowest thread: that
	// thread executes BaseInstr*(1+Straggler). Barrier imbalance is
	// approximately Straggler/(1+Straggler) for one straggler.
	Straggler float64
	// Stragglers is how many threads straggle per instance (default 1).
	Stragglers int
	// Rotate makes the straggler identity rotate across instances — the
	// paper's observation that computation costs shift among threads while
	// the interval stays stable (§3.2).
	Rotate bool
	// Noise is the per-thread multiplicative jitter (uniform ±Noise).
	Noise float64
	// Swing, when non-empty, multiplies BaseInstr by Swing[i % len] at
	// instance i: the Ocean pathology of interval times that drop sharply
	// between instances (§5.2).
	Swing []float64
	// DirtyLines is the number of distinct cache lines each thread dirties
	// during the phase (deep-sleep flush cost and post-flush compulsory
	// misses).
	DirtyLines int
	// SharedReads is the number of shared-data lines each thread reads.
	SharedReads int
}

// Validate reports an error for impossible barrier parameters.
func (b BarrierSpec) Validate() error {
	if b.BaseInstr <= 0 {
		return fmt.Errorf("workload: barrier %q non-positive base %d", b.Label, b.BaseInstr)
	}
	if b.Straggler < 0 || b.Noise < 0 || b.DirtyLines < 0 || b.SharedReads < 0 {
		return fmt.Errorf("workload: barrier %q negative parameter", b.Label)
	}
	if b.Stragglers < 0 {
		return fmt.Errorf("workload: barrier %q negative straggler count", b.Label)
	}
	for _, s := range b.Swing {
		if s <= 0 {
			return fmt.Errorf("workload: barrier %q non-positive swing factor", b.Label)
		}
	}
	return nil
}

// Spec is one synthetic application.
type Spec struct {
	// Name is the SPLASH-2 application this program stands in for.
	Name string
	// ProblemSize documents the paper's input (Table 2), for reports.
	ProblemSize string
	// TargetImbalance is the paper's measured Baseline barrier imbalance
	// (Table 2), which the calibration reproduces.
	TargetImbalance float64
	// Iterations is the number of main-loop iterations.
	Iterations int
	// Loop is the sequence of static barriers executed per iteration.
	Loop []BarrierSpec
	// Prologue is a sequence of one-shot static barriers executed once at
	// program start, each with a distinct PC (the FFT/Cholesky structure
	// that defeats PC-indexed prediction).
	Prologue []BarrierSpec
	// OneShot marks applications consisting only of non-repeating barriers
	// (Iterations/Loop unused).
	OneShot bool
	// Seed decorrelates this application's random streams.
	Seed uint64
}

// Validate reports an error for inconsistent specs.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: unnamed spec")
	}
	if !s.OneShot {
		if s.Iterations <= 0 {
			return fmt.Errorf("workload: %s non-positive iterations", s.Name)
		}
		if len(s.Loop) == 0 {
			return fmt.Errorf("workload: %s has no loop barriers", s.Name)
		}
	}
	if s.OneShot && len(s.Prologue) == 0 {
		return fmt.Errorf("workload: %s one-shot with empty prologue", s.Name)
	}
	for _, b := range s.Loop {
		if err := b.Validate(); err != nil {
			return err
		}
	}
	for _, b := range s.Prologue {
		if err := b.Validate(); err != nil {
			return err
		}
	}
	if s.TargetImbalance < 0 || s.TargetImbalance >= 1 {
		return fmt.Errorf("workload: %s target imbalance %v out of [0,1)", s.Name, s.TargetImbalance)
	}
	return nil
}

// Phases reports the number of dynamic barrier instances the program has.
func (s Spec) Phases() int {
	if s.OneShot {
		return len(s.Prologue)
	}
	return len(s.Prologue) + s.Iterations*len(s.Loop)
}

// pcBase assigns static-barrier PCs: prologue barriers use one PC each,
// loop barriers reuse theirs every iteration.
const (
	prologuePCBase = uint64(0x400000)
	loopPCBase     = uint64(0x500000)
	pcStride       = 8
)

// Build converts the spec into a runnable program for a machine of the
// given size. All randomness derives from (seed, spec.Seed); builds are
// deterministic and independent of call order.
func (s Spec) Build(nodes int, seed uint64) core.SliceProgram {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	root := sim.NewRNG(seed).Split(s.Seed)
	prog := make(core.SliceProgram, 0, s.Phases())

	addPhase := func(b BarrierSpec, pc uint64, instance int) {
		gen := newPhaseGen(b, nodes, instance, root.Split(pc).Split(uint64(instance)))
		prog = append(prog, core.PhaseSpec{
			PC:            pc,
			Segment:       gen.segment,
			PreemptThread: -1,
		})
	}

	for i, b := range s.Prologue {
		addPhase(b, prologuePCBase+uint64(i)*pcStride, 0)
	}
	if !s.OneShot {
		for it := 0; it < s.Iterations; it++ {
			for j, b := range s.Loop {
				addPhase(b, loopPCBase+uint64(j)*pcStride, it)
			}
		}
	}
	return prog
}

// phaseGen produces deterministic per-thread segments for one dynamic
// barrier instance.
type phaseGen struct {
	spec      BarrierSpec
	nodes     int
	instance  int
	straggler int
	swing     float64
	rng       *sim.RNG
}

func newPhaseGen(b BarrierSpec, nodes, instance int, rng *sim.RNG) *phaseGen {
	g := &phaseGen{spec: b, nodes: nodes, instance: instance, rng: rng, swing: 1}
	if len(b.Swing) > 0 {
		g.swing = b.Swing[instance%len(b.Swing)]
	}
	if b.Rotate {
		g.straggler = rng.Intn(nodes)
	}
	return g
}

// segment builds thread t's compute work for this instance.
func (g *phaseGen) segment(t int) cpu.Segment {
	b := g.spec
	// Per-thread jitter derived from a thread-specific stream so that
	// calling order does not matter.
	tr := g.rng.Split(uint64(t) + 1)
	mult := g.swing * (1 + b.Noise*(2*tr.Float64()-1))
	insns := float64(b.BaseInstr) * mult
	stragglers := b.Stragglers
	if stragglers == 0 {
		stragglers = 1
	}
	for k := 0; k < stragglers; k++ {
		idx := (g.straggler + k) % g.nodes
		if t == idx {
			insns += float64(b.BaseInstr) * g.swing * b.Straggler
		}
	}

	seg := cpu.Segment{Instructions: int64(insns)}
	nRefs := b.DirtyLines + b.SharedReads
	if nRefs > 0 {
		seg.Refs = make([]cpu.Ref, 0, nRefs)
		// Each thread's dirty working set: a fixed per-thread region, so
		// lines are re-dirtied every phase. After a gated sleep's flush
		// they come back as compulsory misses (§5.2).
		for i := 0; i < b.DirtyLines; i++ {
			addr := uint64(1)<<45 | uint64(t)<<24 | uint64(i*64)
			seg.Refs = append(seg.Refs, cpu.Ref{Addr: addr, Write: true})
		}
		// Shared reads spread over a region touched by all threads.
		for i := 0; i < b.SharedReads; i++ {
			addr := uint64(1)<<46 | uint64((g.instance*131+i*7+t)%4096)<<6
			seg.Refs = append(seg.Refs, cpu.Ref{Addr: addr})
		}
	}
	return seg
}

// BarrierProfile summarizes one static barrier's dynamic behaviour in a
// built program — the per-barrier view behind Figure 3 and Table 2.
type BarrierProfile struct {
	PC        uint64
	Instances int
	// MeanInstr is the mean per-thread instruction count over instances.
	MeanInstr float64
}

// Profile enumerates the static barriers of a built program with their
// instance counts and mean work — a quick structural fingerprint used by
// diagnostics and tests.
func Profile(prog core.SliceProgram, threads int) []BarrierProfile {
	order := []uint64{}
	agg := map[uint64]*BarrierProfile{}
	for i := 0; i < prog.Phases(); i++ {
		spec := prog.Phase(i)
		p := agg[spec.PC]
		if p == nil {
			p = &BarrierProfile{PC: spec.PC}
			agg[spec.PC] = p
			order = append(order, spec.PC)
		}
		p.Instances++
		var sum int64
		for t := 0; t < threads; t++ {
			sum += spec.Segment(t).Instructions
		}
		p.MeanInstr += float64(sum) / float64(threads)
	}
	out := make([]BarrierProfile, 0, len(order))
	for _, pc := range order {
		p := agg[pc]
		p.MeanInstr /= float64(p.Instances)
		out = append(out, *p)
	}
	return out
}
