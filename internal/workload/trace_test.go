package workload

import (
	"strings"
	"testing"

	"thriftybarrier/internal/core"
)

const sampleTrace = `
# pc, then per-thread compute durations in microseconds
0x100, 100, 110, 105, 380
0x200, 50.5, 52, 49, 51
0x100, 102, 108, 104, 375
0x200, 51, 50, 52.5, 49
`

func TestParseTrace(t *testing.T) {
	phases, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(phases))
	}
	if TraceThreads(phases) != 4 {
		t.Fatalf("threads = %d, want 4", TraceThreads(phases))
	}
	if phases[0].PC != 0x100 || phases[1].PC != 0x200 {
		t.Fatalf("PCs = %#x,%#x", phases[0].PC, phases[1].PC)
	}
	if phases[1].DurationsUS[0] != 50.5 {
		t.Fatalf("fractional duration lost: %v", phases[1].DurationsUS[0])
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"",                      // empty
		"0x100",                 // no durations
		"zzz, 10, 10",           // bad pc
		"0x100, ten, 10",        // bad duration
		"0x100, -5, 10",         // non-positive
		"0x100, 10, 10\n0x2, 5", // inconsistent width
	}
	for i, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBuildTraceRuns(t *testing.T) {
	phases, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := BuildTrace(phases, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	arch := core.DefaultArch().WithNodes(4)
	res := core.NewMachine(arch, core.Baseline())
	out := res.Run(prog)
	if out.Stats.Episodes != 4 {
		t.Fatalf("episodes = %d, want 4", out.Stats.Episodes)
	}
	// Thread 3 lags barrier 0x100 by ~270us: measurable imbalance.
	if out.Breakdown.SpinFraction() < 0.10 {
		t.Fatalf("trace imbalance = %v, want the 0x100 straggler visible", out.Breakdown.SpinFraction())
	}
}

func TestBuildTraceDurationFidelity(t *testing.T) {
	// A single-phase trace: the simulated compute duration must match the
	// traced microseconds at the configured IPC.
	phases, _ := ParseTrace(strings.NewReader("1, 100, 100"))
	prog, _ := BuildTrace(phases, 2.0)
	seg := prog.Phase(0).Segment(0)
	// 100us at 1GHz = 100_000 cycles; at IPC 2 that is 200_000 insns.
	if seg.Instructions != 200_000 {
		t.Fatalf("instructions = %d, want 200000", seg.Instructions)
	}
}

func TestBuildTraceBadIPC(t *testing.T) {
	phases, _ := ParseTrace(strings.NewReader("1, 10, 10"))
	if _, err := BuildTrace(phases, 0); err == nil {
		t.Fatal("IPC 0 accepted")
	}
}
