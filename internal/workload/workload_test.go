package workload

import (
	"testing"

	"thriftybarrier/internal/core"
)

func TestAllSpecsValidate(t *testing.T) {
	apps := All()
	if len(apps) != 10 {
		t.Fatalf("applications = %d, want 10 (Table 2)", len(apps))
	}
	for _, s := range apps {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestTable2Order(t *testing.T) {
	apps := All()
	for i := 1; i < len(apps); i++ {
		if apps[i].TargetImbalance > apps[i-1].TargetImbalance {
			t.Fatalf("apps not in decreasing imbalance order at %s", apps[i].Name)
		}
	}
	want := []string{"Volrend", "Radix", "FMM", "Barnes", "Water-Nsq",
		"Water-Sp", "Ocean", "FFT", "Cholesky", "Radiosity"}
	for i, w := range want {
		if apps[i].Name != w {
			t.Fatalf("app %d = %s, want %s", i, apps[i].Name, w)
		}
	}
}

func TestTargetApps(t *testing.T) {
	targets := TargetApps()
	if len(targets) != 5 {
		t.Fatalf("target apps = %d, want 5 (imbalance >= 10%%)", len(targets))
	}
	for _, s := range targets {
		if s.TargetImbalance < 0.10 {
			t.Errorf("%s imbalance %v below 10%%", s.Name, s.TargetImbalance)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("Ocean"); !ok {
		t.Fatal("Ocean not found")
	}
	if _, ok := ByName("Raytrace"); ok {
		t.Fatal("Raytrace found (excluded by the paper: no barriers)")
	}
}

func TestBuildPhaseCount(t *testing.T) {
	for _, s := range All() {
		prog := s.Build(8, 1)
		if prog.Phases() != s.Phases() {
			t.Errorf("%s: built %d phases, want %d", s.Name, prog.Phases(), s.Phases())
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	s := FMM()
	a := s.Build(8, 42)
	b := s.Build(8, 42)
	for i := 0; i < a.Phases(); i++ {
		for th := 0; th < 8; th++ {
			sa := a.Phase(i).Segment(th)
			sb := b.Phase(i).Segment(th)
			if sa.Instructions != sb.Instructions {
				t.Fatalf("phase %d thread %d: %d vs %d insns", i, th, sa.Instructions, sb.Instructions)
			}
			if len(sa.Refs) != len(sb.Refs) {
				t.Fatalf("phase %d thread %d ref counts differ", i, th)
			}
		}
	}
	// Segment generation is idempotent (core may call it once, but the
	// contract is pure).
	p := a.Phase(3)
	if p.Segment(2).Instructions != p.Segment(2).Instructions {
		t.Fatal("segment not idempotent")
	}
}

func TestBuildSeedSensitivity(t *testing.T) {
	s := Barnes()
	a := s.Build(8, 1)
	b := s.Build(8, 2)
	same := true
	for i := 0; i < a.Phases() && same; i++ {
		for th := 0; th < 8; th++ {
			if a.Phase(i).Segment(th).Instructions != b.Phase(i).Segment(th).Instructions {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestLoopBarriersSharePCs(t *testing.T) {
	s := FMM()
	prog := s.Build(8, 1)
	perIter := len(s.Loop)
	for it := 1; it < s.Iterations; it++ {
		for j := 0; j < perIter; j++ {
			if prog.Phase(it*perIter+j).PC != prog.Phase(j).PC {
				t.Fatalf("iteration %d barrier %d has a different PC", it, j)
			}
		}
	}
}

func TestOneShotBarriersHaveDistinctPCs(t *testing.T) {
	s := FFT()
	prog := s.Build(8, 1)
	seen := map[uint64]bool{}
	for i := 0; i < prog.Phases(); i++ {
		pc := prog.Phase(i).PC
		if seen[pc] {
			t.Fatalf("FFT phase %d reuses PC %#x", i, pc)
		}
		seen[pc] = true
	}
}

func TestStragglerRotates(t *testing.T) {
	s := FMM()
	prog := s.Build(8, 1)
	perIter := len(s.Loop)
	// Find the straggler (max-instruction thread) of barrier 0 in each
	// iteration; it must not always be the same thread.
	first := -1
	varies := false
	for it := 0; it < s.Iterations; it++ {
		spec := prog.Phase(it * perIter)
		maxI, maxV := 0, int64(0)
		for th := 0; th < 8; th++ {
			if v := spec.Segment(th).Instructions; v > maxV {
				maxV, maxI = v, th
			}
		}
		if first == -1 {
			first = maxI
		} else if maxI != first {
			varies = true
		}
	}
	if !varies {
		t.Fatal("straggler never rotated")
	}
}

func TestSwingChangesPhaseLength(t *testing.T) {
	s := Ocean()
	prog := s.Build(8, 1)
	perIter := len(s.Loop)
	// relaxA swings [1, 0.14, ...]: instance 0 long, instance 1 short.
	long := prog.Phase(0 * perIter).Segment(1).Instructions
	short := prog.Phase(1 * perIter).Segment(1).Instructions
	if short >= long/3 {
		t.Fatalf("swing ineffective: long %d, short %d", long, short)
	}
}

func TestDirtyLinesProduceWriteRefs(t *testing.T) {
	s := WaterNsq()
	prog := s.Build(8, 1)
	seg := prog.Phase(0).Segment(3)
	writes := 0
	for _, r := range seg.Refs {
		if r.Write {
			writes++
		}
	}
	if writes != s.Loop[0].DirtyLines {
		t.Fatalf("writes = %d, want %d", writes, s.Loop[0].DirtyLines)
	}
}

func TestDirtyRegionsPerThreadAreDisjoint(t *testing.T) {
	s := WaterNsq()
	prog := s.Build(8, 1)
	a := prog.Phase(0).Segment(0)
	b := prog.Phase(0).Segment(1)
	addrs := map[uint64]bool{}
	for _, r := range a.Refs {
		if r.Write {
			addrs[r.Addr] = true
		}
	}
	for _, r := range b.Refs {
		if r.Write && addrs[r.Addr] {
			t.Fatalf("threads share dirty line %#x", r.Addr)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "", Iterations: 1, Loop: []BarrierSpec{{Label: "x", BaseInstr: 1}}},
		{Name: "x", Iterations: 0, Loop: []BarrierSpec{{Label: "x", BaseInstr: 1}}},
		{Name: "x", Iterations: 1, Loop: nil},
		{Name: "x", OneShot: true},
		{Name: "x", Iterations: 1, Loop: []BarrierSpec{{Label: "x", BaseInstr: 0}}},
		{Name: "x", Iterations: 1, Loop: []BarrierSpec{{Label: "x", BaseInstr: 1, Swing: []float64{0}}}},
		{Name: "x", Iterations: 1, Loop: []BarrierSpec{{Label: "x", BaseInstr: 1}}, TargetImbalance: 1.5},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// Smoke: every application runs end to end on a small machine under
// Baseline and Thrifty without violating barrier semantics.
func TestAllAppsRunEndToEnd(t *testing.T) {
	arch := core.DefaultArch().WithNodes(8)
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			prog := s.Build(8, 1)
			for _, opts := range []core.Options{core.Baseline(), core.Thrifty()} {
				m := core.NewMachine(arch, opts)
				res := m.Run(prog)
				if res.Stats.Episodes != s.Phases() {
					t.Fatalf("%s/%s: %d episodes, want %d", s.Name, opts.Name, res.Stats.Episodes, s.Phases())
				}
				if res.Span <= 0 {
					t.Fatalf("%s/%s: zero span", s.Name, opts.Name)
				}
			}
		})
	}
}

func TestProfile(t *testing.T) {
	s := FMM()
	prog := s.Build(8, 1)
	prof := Profile(prog, 8)
	if len(prof) != 3 {
		t.Fatalf("profiles = %d, want 3 static barriers", len(prof))
	}
	for _, p := range prof {
		if p.Instances != s.Iterations {
			t.Errorf("pc %#x instances = %d, want %d", p.PC, p.Instances, s.Iterations)
		}
		if p.MeanInstr <= 0 {
			t.Errorf("pc %#x mean instructions %v", p.PC, p.MeanInstr)
		}
	}
	// Barrier 2 is the long one (FMM's Figure 3 pattern).
	if prof[1].MeanInstr <= prof[0].MeanInstr {
		t.Errorf("barrier 2 (%v) not longer than barrier 1 (%v)", prof[1].MeanInstr, prof[0].MeanInstr)
	}
}
