package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/cpu"
)

// Trace-driven programs: instead of the synthetic SPLASH-2 stand-ins, a
// user can measure the per-thread compute times of their own application's
// barrier phases (e.g. with per-thread timestamps around each barrier) and
// replay them through the simulator to estimate what the thrifty barrier
// would save on their workload.
//
// The trace format is CSV, one line per dynamic barrier instance:
//
//	pc,dur0,dur1,...,durN-1
//
// where pc identifies the static barrier (any integer; instances of the
// same loop barrier share it) and durT is thread T's compute time for the
// phase in microseconds (fractional values allowed). Lines starting with
// '#' and blank lines are ignored.

// TracePhase is one parsed dynamic barrier instance.
type TracePhase struct {
	PC          uint64
	DurationsUS []float64
}

// ParseTrace reads the CSV trace format. Every line must carry the same
// number of per-thread durations.
func ParseTrace(r io.Reader) ([]TracePhase, error) {
	var phases []TracePhase
	sc := bufio.NewScanner(r)
	threads := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			return nil, fmt.Errorf("workload: trace line %d: need pc plus at least one duration", lineNo)
		}
		pc, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad pc %q: %v", lineNo, fields[0], err)
		}
		durs := make([]float64, len(fields)-1)
		for i, f := range fields[1:] {
			d, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace line %d: bad duration %q: %v", lineNo, f, err)
			}
			if d <= 0 {
				return nil, fmt.Errorf("workload: trace line %d: non-positive duration %v", lineNo, d)
			}
			durs[i] = d
		}
		if threads == -1 {
			threads = len(durs)
		} else if len(durs) != threads {
			return nil, fmt.Errorf("workload: trace line %d: %d durations, want %d", lineNo, len(durs), threads)
		}
		phases = append(phases, TracePhase{PC: pc, DurationsUS: durs})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %v", err)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return phases, nil
}

// TraceThreads reports the thread count of a parsed trace.
func TraceThreads(phases []TracePhase) int {
	if len(phases) == 0 {
		return 0
	}
	return len(phases[0].DurationsUS)
}

// BuildTrace converts a parsed trace into a runnable program for a machine
// of exactly the trace's thread count. Durations are converted to
// instruction counts at the given sustained IPC (use the machine's
// cpu.Config IPC so the simulated compute time matches the measured one).
func BuildTrace(phases []TracePhase, ipc float64) (core.SliceProgram, error) {
	if ipc <= 0 {
		return nil, fmt.Errorf("workload: non-positive IPC %v", ipc)
	}
	threads := TraceThreads(phases)
	prog := make(core.SliceProgram, len(phases))
	for i, ph := range phases {
		ph := ph
		if len(ph.DurationsUS) != threads {
			return nil, fmt.Errorf("workload: phase %d thread count mismatch", i)
		}
		prog[i] = core.PhaseSpec{
			PC: ph.PC,
			Segment: func(t int) cpu.Segment {
				// µs -> cycles at 1 GHz -> instructions at the given IPC.
				insns := int64(ph.DurationsUS[t] * 1000 * ipc)
				if insns < 1 {
					insns = 1
				}
				return cpu.Segment{Instructions: insns}
			},
			PreemptThread: -1,
		}
	}
	return prog, nil
}
