// Package energy aggregates the per-CPU state timelines into the
// energy/time breakdowns that the paper's evaluation reports (Figures 5
// and 6): per-configuration totals split into Compute, Spin, Transition
// and Sleep segments, normalized against a baseline.
package energy

import (
	"fmt"
	"strings"

	"thriftybarrier/internal/sim"
)

// Breakdown is an energy and time split by processor state, aggregated over
// all CPUs of one run.
type Breakdown struct {
	// Energy per state, joules.
	Energy [sim.NumStates]float64
	// Time per state, summed over CPUs.
	Time [sim.NumStates]sim.Cycles
	// Span is the end-to-end execution time of the run (wall clock of the
	// simulated machine, not summed over CPUs).
	Span sim.Cycles
}

// Collect sums a set of per-CPU timelines into a Breakdown with the given
// span.
func Collect(timelines []*sim.Timeline, span sim.Cycles) Breakdown {
	var b Breakdown
	b.Span = span
	for _, tl := range timelines {
		for s := sim.State(0); int(s) < sim.NumStates; s++ {
			b.Energy[s] += tl.Energy(s)
			b.Time[s] += tl.Time(s)
		}
	}
	return b
}

// TotalEnergy is the sum over states, joules.
func (b Breakdown) TotalEnergy() float64 {
	var sum float64
	for _, e := range b.Energy {
		sum += e
	}
	return sum
}

// TotalTime is the CPU-time sum over states (≈ CPUs × Span for a run where
// every CPU is always in some state).
func (b Breakdown) TotalTime() sim.Cycles {
	var sum sim.Cycles
	for _, t := range b.Time {
		sum += t
	}
	return sum
}

// SpinFraction reports the fraction of total CPU time spent spinning —
// the paper's barrier-imbalance metric (Table 2) measured on Baseline,
// where all barrier stall time is spin time.
func (b Breakdown) SpinFraction() float64 {
	total := b.TotalTime()
	if total == 0 {
		return 0
	}
	return float64(b.Time[sim.StateSpin]) / float64(total)
}

// Normalized expresses this breakdown relative to a baseline: each state's
// energy as a fraction of the baseline's total energy, and each state's
// time as a fraction of the baseline's total CPU time. This mirrors the
// stacked bars of Figures 5 and 6, which normalize every configuration to
// Baseline = 100%.
type Normalized struct {
	Energy [sim.NumStates]float64
	Time   [sim.NumStates]float64
	// SpanRatio is this run's wall-clock execution time over baseline's —
	// the performance-degradation number quoted in the text.
	SpanRatio float64
}

// Normalize computes the Figure 5/6 representation of b against base.
func (b Breakdown) Normalize(base Breakdown) Normalized {
	var n Normalized
	te, tt := base.TotalEnergy(), float64(base.TotalTime())
	for s := 0; s < sim.NumStates; s++ {
		if te > 0 {
			n.Energy[s] = b.Energy[s] / te
		}
		if tt > 0 {
			n.Time[s] = float64(b.Time[s]) / tt
		}
	}
	if base.Span > 0 {
		n.SpanRatio = float64(b.Span) / float64(base.Span)
	}
	return n
}

// TotalEnergy of the normalized breakdown (1.0 = baseline).
func (n Normalized) TotalEnergy() float64 {
	var sum float64
	for _, e := range n.Energy {
		sum += e
	}
	return sum
}

// TotalTime of the normalized breakdown (1.0 = baseline).
func (n Normalized) TotalTime() float64 {
	var sum float64
	for _, t := range n.Time {
		sum += t
	}
	return sum
}

// String renders the normalized stacked bar as a compact percentage line.
func (n Normalized) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "E=%5.1f%% [", n.TotalEnergy()*100)
	for s := sim.State(0); int(s) < sim.NumStates; s++ {
		if s > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s %.1f%%", s, n.Energy[s]*100)
	}
	fmt.Fprintf(&sb, "] T=%5.1f%%", n.TotalTime()*100)
	return sb.String()
}
