package energy

import (
	"math"
	"testing"

	"thriftybarrier/internal/sim"
)

func mkTimeline(compute, spin sim.Cycles) *sim.Timeline {
	var tl sim.Timeline
	tl.AddInterval(sim.StateCompute, compute, 40)
	tl.AddInterval(sim.StateSpin, spin, 34)
	return &tl
}

func TestCollect(t *testing.T) {
	tls := []*sim.Timeline{mkTimeline(1000, 500), mkTimeline(1200, 300)}
	b := Collect(tls, 1500)
	if b.Time[sim.StateCompute] != 2200 {
		t.Errorf("compute time = %d, want 2200", b.Time[sim.StateCompute])
	}
	if b.Time[sim.StateSpin] != 800 {
		t.Errorf("spin time = %d, want 800", b.Time[sim.StateSpin])
	}
	if b.Span != 1500 {
		t.Errorf("span = %d, want 1500", b.Span)
	}
	wantE := 40*2200e-9 + 34*800e-9
	if got := b.TotalEnergy(); math.Abs(got-wantE) > 1e-12 {
		t.Errorf("total energy = %v, want %v", got, wantE)
	}
}

func TestSpinFraction(t *testing.T) {
	b := Collect([]*sim.Timeline{mkTimeline(900, 100)}, 1000)
	if got := b.SpinFraction(); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("spin fraction = %v, want 0.1", got)
	}
	var empty Breakdown
	if empty.SpinFraction() != 0 {
		t.Error("empty breakdown spin fraction != 0")
	}
}

func TestNormalizeAgainstSelfIsUnity(t *testing.T) {
	b := Collect([]*sim.Timeline{mkTimeline(1000, 500)}, 1500)
	n := b.Normalize(b)
	if math.Abs(n.TotalEnergy()-1) > 1e-12 {
		t.Errorf("self-normalized energy = %v, want 1", n.TotalEnergy())
	}
	if math.Abs(n.TotalTime()-1) > 1e-12 {
		t.Errorf("self-normalized time = %v, want 1", n.TotalTime())
	}
	if math.Abs(n.SpanRatio-1) > 1e-12 {
		t.Errorf("self span ratio = %v, want 1", n.SpanRatio)
	}
}

func TestNormalizeSavings(t *testing.T) {
	base := Collect([]*sim.Timeline{mkTimeline(1000, 1000)}, 2000)
	// Improved run: spin replaced by low-power sleep.
	var tl sim.Timeline
	tl.AddInterval(sim.StateCompute, 1000, 40)
	tl.AddInterval(sim.StateSleep, 1000, 5)
	better := Collect([]*sim.Timeline{&tl}, 2000)
	n := better.Normalize(base)
	if n.TotalEnergy() >= 1 {
		t.Fatalf("sleeping run normalized energy = %v, want < 1", n.TotalEnergy())
	}
	if math.Abs(n.TotalTime()-1) > 1e-12 {
		t.Fatalf("same-duration run normalized time = %v, want 1", n.TotalTime())
	}
	if n.Energy[sim.StateSleep] <= 0 || n.Energy[sim.StateSpin] != 0 {
		t.Fatal("breakdown segments wrong")
	}
}

func TestNormalizedString(t *testing.T) {
	b := Collect([]*sim.Timeline{mkTimeline(1000, 0)}, 1000)
	s := b.Normalize(b).String()
	if s == "" {
		t.Fatal("empty string")
	}
}

func TestNormalizeEmptyBaseline(t *testing.T) {
	var base Breakdown
	b := Collect([]*sim.Timeline{mkTimeline(10, 10)}, 20)
	n := b.Normalize(base) // must not divide by zero
	if n.TotalEnergy() != 0 || n.SpanRatio != 0 {
		t.Fatal("empty baseline produced nonzero normalization")
	}
}
