package core

import (
	"thriftybarrier/internal/power"
	"thriftybarrier/internal/sim"
)

// wait decides what an early-arriving thread does (Figure 1(b) of the
// paper): spin conventionally, or pick a sleep state based on the predicted
// stall and go dormant.
func (m *Machine) wait(t int, ep *episode, ready sim.Cycles) {
	w := &waiter{thread: t, kind: waitSpin, readyAt: ready}
	ep.waiters = append(ep.waiters, w)

	if m.opts.YieldReschedule > 0 {
		// §3.4.1 time-sharing: hand the CPU to other work. The processor
		// keeps computing (someone else's instructions — charged as
		// Compute at compute power, since the machine is multiprogrammed),
		// and this thread resumes a scheduling delay after the release.
		w.kind = waitYield
		m.stats.Yields++
		return
	}
	if len(m.opts.States) == 0 {
		// Conventional barrier: spin on the flag. Bring a shared copy into
		// the cache (first spin iteration misses, §3.3.1) so the release
		// write's invalidation reaches this node.
		res := m.proto.Read(t, ep.flagAddr, ready)
		m.cpus[t].ChargeSpin(res.Latency)
		w.readyAt = ready + res.Latency
		m.stats.Spins++
		return
	}

	if m.opts.Oracle {
		// Oracle configurations are resolved at release time, where the
		// true stall is known; a perfectly timed wake-up never perturbs
		// arrival times, so deferring the decision is exact.
		w.kind = waitOracle
		w.readyAt = ready
		return
	}

	if m.opts.Unconditional {
		// §3.1's simplest form: sleep in the shallowest state on every
		// early arrival, woken externally by the flag invalidation.
		m.goToSleep(t, ep, w, m.opts.States[0], ready, sim.MaxCycles)
		return
	}
	if m.opts.SpinThenSleep > 0 {
		// Conventional spin-then-halt: spin a fixed window, then sleep
		// with external wake-up only.
		m.spinInstead(t, ep, w)
		threshold := w.readyAt + m.opts.SpinThenSleep
		m.engine.At(threshold, func() {
			if w.departed || ep.released {
				return
			}
			// Convert the spinner into an externally-woken sleeper.
			m.cpus[t].ChargeSpin(threshold - w.readyAt)
			w.readyAt = threshold
			m.stats.Spins--
			m.goToSleep(t, ep, w, m.opts.States[0], threshold, sim.MaxCycles)
		})
		return
	}

	// The sleep() library call: predict the stall and scan for a state.
	ready += m.opts.DecisionCost
	m.cpus[t].ChargeCompute(m.opts.DecisionCost)
	w.readyAt = ready

	predStall, ok := m.predictStall(t, ep, ready)
	if !ok {
		m.spinInstead(t, ep, w)
		return
	}
	flushEst := sim.Cycles(0)
	if !m.opts.NoFlush {
		flushEst = m.flushEstimate(t)
	}
	fit := m.model.BestFit(predStall, flushEst)
	if !fit.OK {
		m.spinInstead(t, ep, w)
		return
	}
	m.goToSleep(t, ep, w, fit.State, ready, ready+predStall)
}

// predictStall estimates the barrier stall ahead of thread t (§3.2): the
// PC-indexed BIT prediction added to the thread's local previous release
// timestamp gives the predicted wake-up time; subtracting the current local
// time gives the stall.
func (m *Machine) predictStall(t int, ep *episode, now sim.Cycles) (sim.Cycles, bool) {
	if m.opts.BSTDirect {
		// Ablation strawman: predict the stall directly per (PC, thread).
		stall, ok := m.bst.Predict(ep.pc, t)
		if !ok || stall <= 0 {
			return 0, false
		}
		return stall, true
	}
	if !m.table.Enabled(ep.pc, t) {
		return 0, false // cut-off disabled prediction here (§3.3.3)
	}
	bit, ok := m.table.Predict(ep.pc)
	if !ok {
		return 0, false // warm-up: first instance spins (§3.2.1)
	}
	predictedWake := m.brts[t] + bit
	stall := predictedWake - now
	if stall <= 0 {
		return 0, false
	}
	return stall, true
}

// spinInstead registers w as a conventional spinner.
func (m *Machine) spinInstead(t int, ep *episode, w *waiter) {
	w.kind = waitSpin
	res := m.proto.Read(t, ep.flagAddr, w.readyAt)
	m.cpus[t].ChargeSpin(res.Latency)
	w.readyAt += res.Latency
	m.stats.Spins++
}

// flushEstimate approximates the flush latency the sleep() call uses when
// sizing gated states: dirty lines stream over the node bus.
func (m *Machine) flushEstimate(t int) sim.Cycles {
	lines := m.proto.DirtyLines(t)
	return sim.Cycles(lines)*m.arch.Coherence.Bus + m.detectRT
}

// goToSleep puts thread t's CPU into state st: flush if the state gates the
// cache, arm the wake-up machinery, and transition in.
func (m *Machine) goToSleep(t int, ep *episode, w *waiter, st power.SleepState, ready, predictedWake sim.Cycles) {
	w.kind = waitSleep
	w.state = st
	w.predictedWake = predictedWake

	if st.Gated() && !m.opts.NoFlush {
		lines, flushLat := m.proto.FlushForSleep(t, ready)
		m.cpus[t].ChargeCompute(flushLat)
		ready += flushLat
		m.stats.FlushLines += lines
		w.gated = true
	}

	// The controller reads in the flag (§3.3.1): if it were already
	// flipped, sleep is aborted. Release cannot have happened while this
	// thread was still deciding unless the flush window overlapped it.
	res := m.proto.Read(t, ep.flagAddr, ready)
	m.cpus[t].ChargeCompute(res.Latency)
	ready += res.Latency
	if ep.released && ready >= ep.releaseAt {
		if w.gated {
			w.gated = false
		}
		w.wokeReady = ready
		m.depart(t, ep, w, ready)
		return
	}

	if w.gated {
		m.proto.SetGated(t, true)
	}
	m.cpus[t].ChargeTransition(st, st.Transition)
	w.sleepStart = ready + st.Transition
	m.stats.Sleeps[st.Name]++

	// Arm the wake-up machinery, subject to the fault plan: a dropped
	// invalidation silences the external channel, a failed timer the
	// internal one. Whichever channels survive behave exactly as §3.3
	// describes — which is the point: hybrid wake-up still has a bounded
	// path when either single channel is lost.
	externalLive, internalLive := false, false
	if m.opts.Wakeup == WakeupHybrid || m.opts.Wakeup == WakeupExternal {
		if m.opts.Faults.DropWakeupAt(ep.phase, t) {
			m.stats.DroppedWakeups++
		} else {
			externalLive = true
			w.cancelMonitor = m.proto.Monitor(t, ep.flagAddr, func(at sim.Cycles) {
				// Monitor callbacks run inside the releasing Write; hop onto
				// the event queue at the delivery time.
				w.cancelMonitor = nil
				m.engine.At(at, func() { m.externalWake(t, ep, w, at) })
			})
		}
	}
	// Fixed policies (unconditional, spin-then-sleep) have no prediction
	// to program a timer with: external wake-up only.
	if predictedWake != sim.MaxCycles &&
		(m.opts.Wakeup == WakeupHybrid || m.opts.Wakeup == WakeupInternal) {
		if m.opts.Faults.TimerFailsAt(ep.phase, t) {
			m.stats.TimerFailures++
		} else {
			internalLive = true
			wake := predictedWake - st.Transition
			if d := m.opts.Faults.TimerDriftAt(ep.phase, t); d > 0 {
				wake += d
				m.stats.DriftedTimers++
			}
			if wake < w.sleepStart {
				wake = w.sleepStart
			}
			w.timer = m.engine.At(wake, func() { m.internalWake(t, ep, w, wake) })
		}
	}
	if !externalLive && !internalLive {
		// Every wake-up channel is gone: without intervention this sleeper
		// never departs — the literal "unbounded" case of §3.3. An OS
		// watchdog revives it after the recovery timeout; the timeout is
		// chosen to dwarf any barrier interval, so the damage is huge but
		// finite and measurable.
		at := w.sleepStart + m.opts.Faults.RecoveryTimeout()
		w.timer = m.engine.At(at, func() {
			if w.departed || w.woken {
				return
			}
			m.stats.Recoveries++
			m.internalWake(t, ep, w, at)
		})
	}
}

// internalWake fires when the programmed timer expires (§3.3.2): the CPU
// transitions out; if the barrier has not been released yet this was an
// early wake-up and the thread residual-spins, otherwise it was late.
func (m *Machine) internalWake(t int, ep *episode, w *waiter, now sim.Cycles) {
	if w.departed || w.woken {
		return
	}
	w.woken = true
	w.timer = sim.Handle{}
	if w.cancelMonitor != nil {
		w.cancelMonitor()
		w.cancelMonitor = nil
	}
	m.chargeSleepUntil(t, w, now)
	m.cpus[t].ChargeTransition(w.state, w.state.Transition)
	up := now + w.state.Transition
	if w.gated {
		m.proto.SetGated(t, false)
		w.gated = false
	}
	w.wokeReady = up

	if ep.released {
		// Late wake-up: the release happened while asleep; verify the flag
		// and go (the overprediction penalty, bounded only by the cut-off
		// under internal-only wake-up).
		m.stats.LateWakes++
		res := m.proto.Read(t, ep.flagAddr, up)
		m.cpus[t].ChargeSpin(res.Latency)
		m.depart(t, ep, w, up+res.Latency)
		return
	}
	// Early wake-up: residual spin until the release (§2, Figure 1(b)).
	m.stats.EarlyWakes++
	w.kind = waitResidualSpin
	res := m.proto.Read(t, ep.flagAddr, up)
	m.cpus[t].ChargeSpin(res.Latency)
	w.residualFrom = up + res.Latency
}

// externalWake fires when the invalidation of the barrier flag reaches a
// dormant CPU (§3.3.1): the exit transition lands on the critical path.
func (m *Machine) externalWake(t int, ep *episode, w *waiter, at sim.Cycles) {
	if w.departed || w.woken {
		return
	}
	w.woken = true
	m.engine.Cancel(w.timer)
	w.timer = sim.Handle{}
	if at < w.sleepStart {
		// The signal arrived during the entry transition: the CPU finishes
		// entering the state and exits immediately (zero residency).
		at = w.sleepStart
	}
	m.chargeSleepUntil(t, w, at)
	m.cpus[t].ChargeTransition(w.state, w.state.Transition)
	up := at + w.state.Transition
	if w.gated {
		m.proto.SetGated(t, false)
		w.gated = false
	}
	w.wokeReady = up
	m.stats.ExternalWakes++

	if !ep.released {
		// False wake-up: some exclusive prefetch invalidated the flag
		// without releasing the barrier (§3.3.1). Exceedingly rare; the
		// thread is left residual-spinning for the rest of the barrier.
		m.stats.FalseWakeups++
		w.kind = waitResidualSpin
		res := m.proto.Read(t, ep.flagAddr, up)
		m.cpus[t].ChargeSpin(res.Latency)
		w.residualFrom = up + res.Latency
		return
	}
	res := m.proto.Read(t, ep.flagAddr, up)
	m.cpus[t].ChargeSpin(res.Latency)
	m.depart(t, ep, w, up+res.Latency)
}

// chargeSleepUntil accounts the sleep residency [sleepStart, until].
func (m *Machine) chargeSleepUntil(t int, w *waiter, until sim.Cycles) {
	if until > w.sleepStart {
		m.cpus[t].ChargeSleep(w.state, until-w.sleepStart)
	} else if until < w.sleepStart {
		// The wake signal arrived during the entry transition; the entry
		// still completes (already charged) and the residency is zero.
		// Shift the exit to after the entry completes.
	}
}

// release handles the last thread's arrival (at time done): measure the
// true BIT, update the predictor, flip the flag — whose invalidations are
// the external wake-up signals — and resolve all waiters.
func (m *Machine) release(t int, ep *episode, done sim.Cycles) {
	ep.lastThread = t
	m.stats.Episodes++

	// The last thread computes BIT_b = now - BRTS_{b-1} (its local
	// timestamp) and updates the shared BIT variable and predictor before
	// flipping the flag (§3.2.1).
	bit := done - m.brts[t]
	ep.bit = bit
	if (len(m.opts.States) > 0 || m.opts.DVFS) && !m.opts.Oracle {
		m.table.Update(ep.pc, bit)
	}

	// Reset count and flip the flag: a real coherent write whose
	// invalidations reach every sharer of the flag line.
	res := m.proto.Write(t, ep.flagAddr, done)
	ep.released = true
	ep.releaseAt = done
	m.cpus[t].ChargeCompute(res.Latency)

	// Map invalidation deliveries per node.
	deliveries := make(map[int]sim.Cycles, len(res.Invalidations))
	for _, d := range res.Invalidations {
		deliveries[d.Node] = d.At
	}

	for _, w := range ep.waiters {
		w := w
		switch w.kind {
		case waitSpin, waitResidualSpin:
			m.resolveSpinner(ep, w, deliveries)
		case waitYield:
			m.resolveYield(ep, w, done)
		case waitOracle:
			m.resolveOracle(ep, w, done)
		case waitSleep:
			// Hybrid/external sleepers were woken by their monitors inside
			// the Write above; internal-only sleepers wake at their timers.
		}
	}

	// The last thread departs once its write completes.
	m.depart(t, ep, nil, done+res.Latency)
}

// resolveSpinner schedules the departure of a spinning thread: it detects
// the flip when the invalidation arrives and re-reads the flag.
func (m *Machine) resolveSpinner(ep *episode, w *waiter, deliveries map[int]sim.Cycles) {
	from := w.readyAt
	if w.kind == waitResidualSpin {
		from = w.residualFrom
	}
	inv, ok := deliveries[w.thread]
	if !ok || inv < from {
		// The spinner's flag copy was displaced (or it started spinning
		// after the release write): it detects the flip on its next read.
		inv = ep.releaseAt
		if from > inv {
			inv = from
		}
	}
	t := w.thread
	m.engine.At(inv, func() {
		if w.departed {
			return
		}
		res := m.proto.Read(t, ep.flagAddr, inv)
		dep := inv + res.Latency
		if dep < from {
			dep = from
		}
		m.cpus[t].ChargeSpin(dep - from)
		m.depart(t, ep, w, dep)
	})
}

// resolveYield settles a §3.4.1 time-sharing waiter: the CPU ran other
// work for the whole wait (Compute), and the thread resumes only after
// the OS reschedules it.
func (m *Machine) resolveYield(ep *episode, w *waiter, release sim.Cycles) {
	t := w.thread
	dep := release + m.opts.YieldReschedule
	m.engine.At(dep, func() {
		if w.departed {
			return
		}
		m.cpus[t].ChargeCompute(dep - w.readyAt)
		m.depart(t, ep, w, dep)
	})
}

// resolveOracle settles an oracle waiter analytically: with perfect BIT
// prediction the thread sleeps exactly when worthwhile and is executing
// again precisely at the release (§5.1's Oracle-Halt and Ideal).
func (m *Machine) resolveOracle(ep *episode, w *waiter, release sim.Cycles) {
	t := w.thread
	stall := release - w.readyAt
	if stall < 0 {
		stall = 0
	}
	fit := m.model.BestFit(stall, 0)
	m.engine.At(release, func() {
		if w.departed {
			return
		}
		res := m.proto.Read(t, ep.flagAddr, release)
		dep := release + res.Latency
		if fit.OK {
			st := fit.State
			m.cpus[t].ChargeTransition(st, st.Transition)
			m.cpus[t].ChargeSleep(st, stall-2*st.Transition)
			m.cpus[t].ChargeTransition(st, st.Transition)
			m.cpus[t].ChargeSpin(res.Latency)
			w.state = st
			w.wokeReady = release
			m.stats.OracleSleeps++
			m.stats.Sleeps[st.Name]++
		} else {
			m.cpus[t].ChargeSpin(dep - w.readyAt)
			m.stats.Spins++
		}
		m.depart(t, ep, w, dep)
	})
}
