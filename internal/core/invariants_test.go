package core

import (
	"testing"
	"testing/quick"

	"thriftybarrier/internal/cpu"
	"thriftybarrier/internal/sim"
)

// Property: across random small programs and every configuration, barrier
// semantics hold (no departure before its release; no arrival at phase k+1
// before the last departure of phase k for the same thread) and the
// energy/time accounting has no holes (per-CPU accounted time covers at
// least 90% of the span).
func TestBarrierSemanticsProperty(t *testing.T) {
	arch := testArch()
	configs := []Options{Baseline(), ThriftyHalt(), Thrifty(), Ideal(), SpinThenHalt(), UnconditionalHalt()}
	f := func(seed uint16, phasesRaw, imbalRaw uint8) bool {
		phases := int(phasesRaw%6) + 2
		imbal := int64(imbalRaw) * 4_000 // 0..1.02M extra instructions
		rng := sim.NewRNG(uint64(seed) + 1)
		prog := UniformProgram(0x100, phases, func(instance, thread int) cpu.Segment {
			insns := int64(80_000) + rng.Split(uint64(instance*64+thread)).Int63n(20_000)
			if thread == instance%8 {
				insns += imbal
			}
			return cpu.Segment{Instructions: insns}
		})
		cfg := configs[int(seed)%len(configs)]
		m := NewMachine(arch, cfg)
		m.SetRecording(true)
		res := m.Run(prog)
		if res.Stats.Episodes != phases {
			return false
		}
		prevDepart := make([]sim.Cycles, arch.Nodes)
		for _, ep := range res.Episodes {
			for th := range ep.Arrive {
				if ep.Arrive[th] < prevDepart[th] {
					return false // arrived before departing the previous phase
				}
				if ep.Depart[th] < ep.ReleaseAt {
					return false // left before the release
				}
				prevDepart[th] = ep.Depart[th]
			}
		}
		total := res.Breakdown.TotalTime()
		upper := sim.Cycles(arch.Nodes) * res.Span
		return total <= upper && float64(total) >= 0.9*float64(upper)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a thrifty run's energy never exceeds ~baseline's on programs
// with any imbalance level (the mechanism may decline to sleep, but must
// not waste more than its decision overhead).
func TestThriftyNeverMuchWorseProperty(t *testing.T) {
	arch := testArch()
	f := func(imbalRaw uint8) bool {
		extra := int64(imbalRaw) * 3_000
		prog := UniformProgram(0x100, 8, imbalancedWork(150_000, extra))
		base := NewMachine(arch, Baseline()).Run(prog)
		thr := NewMachine(arch, Thrifty()).Run(prog)
		n := thr.Breakdown.Normalize(base.Breakdown)
		return n.TotalEnergy() < 1.03 && n.SpanRatio < 1.06
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: tree check-in is semantics-equivalent to flat for any arity.
func TestTreeEquivalenceProperty(t *testing.T) {
	arch := testArch()
	f := func(arityRaw, seed uint8) bool {
		arity := int(arityRaw%7) + 2
		prog := UniformProgram(0x100, 4, func(instance, thread int) cpu.Segment {
			return cpu.Segment{Instructions: int64(100_000 + thread*1_000 + instance*500 + int(seed)*100)}
		})
		opts := Baseline()
		opts.TreeArity = arity
		m := NewMachine(arch, opts)
		m.SetRecording(true)
		res := m.Run(prog)
		if res.Stats.Episodes != 4 {
			return false
		}
		for _, ep := range res.Episodes {
			for th := range ep.Depart {
				if ep.Depart[th] < ep.ReleaseAt {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
