package core

import (
	"fmt"
	"math/bits"

	"thriftybarrier/internal/cpu"
	"thriftybarrier/internal/energy"
	"thriftybarrier/internal/mem/coherence"
	"thriftybarrier/internal/mem/dram"
	"thriftybarrier/internal/mem/noc"
	"thriftybarrier/internal/power"
	"thriftybarrier/internal/predict"
	"thriftybarrier/internal/sim"
)

// ParallelMachine is the CC-NUMA machine partitioned into NoC regions so
// it runs on sim.ParallelEngine: each region owns its CPUs, private
// caches, a directory/memory slice, and the barrier lines homed on its
// nodes. Every interaction that crosses a region boundary — check-in
// requests, flag reads, release invalidations (the wake-up IPIs), and
// predictor queries — travels as an explicit message through the shard
// outboxes, with lookahead equal to the NoC's minimum cross-node latency.
//
// Two deliberate departures from the sequential Machine's analytic
// shortcuts make the partitioning possible; both are visible in results,
// which is why the sequential Machine stays the reference for ≤64-node
// paper figures while this machine owns the scaling study:
//
//   - Barrier count and flag lines are home-resident: every access is a
//     request/reply with the line's home node instead of a migratory
//     cache-to-cache transfer. The flat barrier's lock serialization is
//     preserved exactly — the home grants the count line at
//     lock-free = previous holder's release, with the release itself
//     modeled as reply + check-in cost + release notification — but a
//     sleeping (gated) waiter can never strand ownership of a hot line
//     in a powered-down cache.
//   - Waiter decisions are message-accurate: where the sequential
//     machine's waiters peek at the global episode ("was the flag
//     flipped yet?"), this machine's waiters learn it from the reply to
//     a real flag read, and the BIT predictor for a barrier lives on the
//     flag's home node, queried by message. Results are therefore
//     identical across shard counts by construction: every event's time
//     and payload derives from messages, never from cross-region state.
//
// The machine is single-use: construct, Run once, read the result.
type ParallelMachine struct {
	arch  Arch
	opts  Options
	topo  Topology
	model *power.Model

	regionNodes int
	regionCount int

	net       *noc.Network    // global fabric: barrier + IPI traffic
	place     *dram.Placement // global placement: barrier line homes
	lookahead sim.Cycles
	detectRT  sim.Cycles

	nodes   []*pnode
	regions []*pregion

	prog    Program
	pcs     map[uint64]*pcMeta
	nextPC  uint64
	record  bool
	shards  int
	eng     *sim.Engine
	pe      *sim.ParallelEngine
	shardOf []int
	used    bool
}

// pcMeta is the per-static-barrier layout: line addresses, the flag's
// home node, and the check-in fabric.
type pcMeta struct {
	countAddr uint64
	flagAddr  uint64
	flagHome  int
	shape     pShape
}

// pnode is one CPU's shard-owned state.
type pnode struct {
	id  int
	seq uint32 // per-node event counter; the order-key source
	cpu *cpu.CPU

	brts   sim.Cycles
	finish sim.Cycles

	pendStart sim.Cycles // arrival time at the current barrier
	w         *pwaiter

	forbidden map[uint64]bool // §3.3.3 cut-off: prediction disabled per PC

	// Record capture (SetRecording).
	arriveAt []sim.Cycles
	departAt []sim.Cycles
	waits    []ThreadWait
}

// pregion is one NoC region: the shard-owned simulation slice.
type pregion struct {
	id    int
	proto *coherence.Protocol
	table *predict.Table // BIT entries for PCs whose flag homes here

	counts     map[ckey]*pcount
	flags      map[uint64]*pflag
	lastThread map[int]int // phase -> releaser, for root groups homed here

	stats Stats
}

// ckey identifies one combining counter homed in a region.
type ckey struct {
	pc    uint64
	level int
	group int
}

// pcount is the home-side state of one combining counter: the analytic
// lock-release time and the per-phase check-in tally.
type pcount struct {
	lockFree sim.Cycles
	byPhase  map[int]int
}

// pflag is the home-side state of one barrier flag line.
type pflag struct {
	sharers nodeset
	byPhase map[int]*pflagEp
}

// pflagEp is one dynamic episode as the flag's home sees it.
type pflagEp struct {
	released  bool
	releaseAt sim.Cycles
	bit       sim.Cycles
	oracles   []pReg
	yields    []pReg
}

// pReg is a deferred-resolution registration (oracle or yield waiter).
type pReg struct {
	thread  int
	readyAt sim.Cycles
}

// pwaiter is a thread's in-flight wait, the message-accurate analogue of
// the sequential machine's waiter.
type pwaiter struct {
	phase   int
	pc      uint64
	kind    waitKind
	readyAt sim.Cycles

	state         power.SleepState
	gated         bool
	sleeping      bool
	sleepStart    sim.Cycles
	predictedWake sim.Cycles
	timer         sim.Handle
	timerArmed    bool
	externalLive  bool
	woken         bool
	wokeReady     sim.Cycles

	spinFrom     sim.Cycles // last completed flag read (spin detection point)
	armed        bool       // first spin read completed
	spinThenArm  bool       // arm reply should schedule the spin-then-sleep threshold
	pendingWake  bool       // release delivery raced an in-flight flag read
	resolving    bool       // release-triggered re-read issued
	departed     bool
	converting   bool // spin-then-sleep conversion in progress
}

// flag-read purposes: how the reply is interpreted.
type readPurpose uint8

const (
	readArm          readPurpose = iota // first spin read (registers the sharer)
	readPreSleep                        // controller read before transitioning in
	readVerifyTimer                     // post-internal-wake verification
	readVerifyIPI                       // post-external-wake verification
	readResolve                         // release detected; final re-read
)

// nodeset is a machine-wide node bitset (the flag sharer vector).
type nodeset []uint64

func (s nodeset) add(n int)      { s[n/64] |= 1 << uint(n%64) }
func (s nodeset) clear()         { for i := range s { s[i] = 0 } }
func (s nodeset) forEach(f func(int)) {
	for i, w := range s {
		for v := w; v != 0; v &= v - 1 {
			f(64*i + bits.TrailingZeros64(v))
		}
	}
}

// NewParallelMachine assembles the region-partitioned machine. Unlike
// NewMachine it returns configuration problems as errors, since the CLI
// exposes the extra knobs (shard count, topology, region size).
func NewParallelMachine(arch Arch, opts Options) (*ParallelMachine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.DVFS {
		return nil, fmt.Errorf("core: DVFS is not supported by the sharded machine (frequency planning reads the predictor mid-compute, which has no message-accurate form yet)")
	}
	if opts.BSTDirect {
		return nil, fmt.Errorf("core: the direct-BST ablation predictor is not supported by the sharded machine")
	}
	if arch.Nodes != arch.Coherence.Nodes || arch.Nodes != arch.NoC.Nodes {
		return nil, fmt.Errorf("core: inconsistent node counts %d/%d/%d", arch.Nodes, arch.Coherence.Nodes, arch.NoC.Nodes)
	}
	if arch.Nodes <= 0 || arch.Nodes&(arch.Nodes-1) != 0 {
		return nil, fmt.Errorf("core: node count %d not a power of two", arch.Nodes)
	}
	rn := arch.regionNodes()
	if rn&(rn-1) != 0 || arch.Nodes%rn != 0 {
		return nil, fmt.Errorf("core: region size %d must be a power of two dividing %d nodes", rn, arch.Nodes)
	}
	topo := opts.effectiveTopology()

	var model *power.Model
	if len(opts.States) > 0 {
		model = power.NewModel(power.DefaultUnitEnergies(), opts.States)
	} else {
		model = power.NewModel(power.DefaultUnitEnergies(), power.Table3())
	}
	net := noc.New(arch.NoC)
	place := dram.NewPlacement(arch.Nodes, arch.PageBytes)

	m := &ParallelMachine{
		arch:        arch,
		opts:        opts,
		topo:        topo,
		model:       model,
		regionNodes: rn,
		regionCount: arch.Nodes / rn,
		net:         net,
		place:       place,
		lookahead:   net.MinLatency(arch.Coherence.CtrlBytes),
		detectRT:    net.MaxLatency(arch.Coherence.DataBytes),
		nodes:       make([]*pnode, arch.Nodes),
		regions:     make([]*pregion, arch.Nodes/rn),
		pcs:         make(map[uint64]*pcMeta),
		nextPC:      barrierBase,
	}

	// Each region gets its own protocol instance over rn nodes. Regions
	// are contiguous aligned blocks, so local id = global & (rn-1): the
	// region's private-page placement (node bits in the address) and its
	// hypercube sub-topology both survive the renaming, because the low
	// log2(rn) address/node bits are exactly the in-region coordinates.
	rcfg := arch.Coherence
	rcfg.Nodes = rn
	rnoc := arch.NoC
	rnoc.Nodes = rn
	for r := range m.regions {
		rnet := noc.New(rnoc)
		rplace := dram.NewPlacement(rn, arch.PageBytes)
		m.regions[r] = &pregion{
			id:         r,
			proto:      coherence.New(rcfg, rnet, rplace),
			table:      predict.NewTable(opts.Predictor),
			counts:     make(map[ckey]*pcount),
			flags:      make(map[uint64]*pflag),
			lastThread: make(map[int]int),
		}
		m.regions[r].stats.Sleeps = make(map[string]int)
	}
	for t := range m.nodes {
		m.nodes[t] = &pnode{
			id:        t,
			cpu:       cpu.New(t&(rn-1), arch.CPU, m.regions[t/rn].proto, model, arch.Activity),
			forbidden: make(map[uint64]bool),
		}
	}
	return m, nil
}

// SetRecording enables per-episode records.
func (m *ParallelMachine) SetRecording(on bool) { m.record = on }

// Topology reports the effective check-in topology.
func (m *ParallelMachine) Topology() Topology { return m.topo }

// Lookahead reports the conservative window width (tests).
func (m *ParallelMachine) Lookahead() sim.Cycles { return m.lookahead }

func (m *ParallelMachine) region(node int) *pregion { return m.regions[node/m.regionNodes] }
func (m *ParallelMachine) local(node int) int       { return node & (m.regionNodes - 1) }

// meta returns (allocating on first use) the layout of a static barrier.
// Allocation order is the program phase scan in Run, so it is identical
// for every shard count.
func (m *ParallelMachine) meta(pc uint64) *pcMeta {
	if mt, ok := m.pcs[pc]; ok {
		return mt
	}
	count := m.nextPC
	flag := count + flagOffset
	m.nextPC += barrierStride
	mt := &pcMeta{
		countAddr: count,
		flagAddr:  flag,
		flagHome:  m.place.Home(flag),
		shape:     buildShape(m.topo, m.opts.TreeArity, m.arch.Nodes, m.regionNodes, count, flag, m.place),
	}
	m.pcs[pc] = mt
	return mt
}

// orderKey mints the next simulation-state-derived order key for a node:
// unique machine-wide, identical across shard counts, so the stable
// (when, order) merge executes events in the same sequence everywhere.
func (m *ParallelMachine) orderKey(node int) uint64 {
	nd := m.nodes[node]
	nd.seq++
	return uint64(node)<<32 | uint64(nd.seq)
}

// at schedules fn on node's own shard (a local continuation or timer).
func (m *ParallelMachine) at(node int, when sim.Cycles, fn func()) sim.Handle {
	o := m.orderKey(node)
	if m.eng != nil {
		return m.eng.AtOrdered(when, o, fn)
	}
	return m.pe.Shard(m.shardOf[node]).At(when, o, fn)
}

// send routes a message: fn executes at `when` on to's shard. The order
// key is minted from the sending node, whose shard is running the
// current event.
func (m *ParallelMachine) send(from, to int, when sim.Cycles, fn func()) {
	o := m.orderKey(from)
	if m.eng != nil {
		m.eng.AtOrdered(when, o, fn)
		return
	}
	sf, st := m.shardOf[from], m.shardOf[to]
	if sf == st {
		m.pe.Shard(sf).At(when, o, fn)
		return
	}
	m.pe.Shard(sf).Post(st, when, o, fn)
}

func (m *ParallelMachine) cancel(node int, h sim.Handle) {
	if m.eng != nil {
		m.eng.Cancel(h)
		return
	}
	m.pe.Shard(m.shardOf[node]).Cancel(h)
}

// Run executes prog and returns the result. shards <= 0 selects the
// plain sequential engine (the golden reference); otherwise the machine
// runs on sim.ParallelEngine with min(shards, regions) shards, regions
// mapped whole onto shards. Results are identical either way.
func (m *ParallelMachine) Run(prog Program, shards int) ParallelResult {
	if m.used {
		panic("core: ParallelMachine is single-use")
	}
	m.used = true
	if prog.Phases() == 0 {
		return ParallelResult{}
	}
	m.prog = prog
	// Fix the barrier address map (and with it every home node and DRAM
	// row) by scanning phases in program order, not first-arrival order.
	for k := 0; k < prog.Phases(); k++ {
		m.meta(prog.Phase(k).PC)
	}
	for _, nd := range m.nodes {
		if m.record {
			nd.arriveAt = make([]sim.Cycles, prog.Phases())
			nd.departAt = make([]sim.Cycles, prog.Phases())
			nd.waits = make([]ThreadWait, prog.Phases())
		}
	}

	if shards <= 0 {
		m.shards = 1
		m.eng = sim.NewEngine()
	} else {
		if shards > m.regionCount {
			shards = m.regionCount
		}
		m.shards = shards
		m.pe = sim.NewParallelEngine(shards, m.lookahead)
		m.shardOf = make([]int, m.arch.Nodes)
		for n := range m.shardOf {
			m.shardOf[n] = (n / m.regionNodes) * shards / m.regionCount
		}
	}

	for t := 0; t < m.arch.Nodes; t++ {
		t := t
		m.at(t, 0, func() { m.startPhase(t, 0, 0) })
	}
	if m.eng != nil {
		m.eng.Run()
	} else {
		m.pe.Run()
	}
	return m.collect()
}

// ParallelResult extends Result with the per-CPU vectors the scaling
// study digests and the event count the benches normalize by.
type ParallelResult struct {
	Result
	// PerCPUEnergy is each CPU's total energy in joules; PerCPUSpin its
	// spin-state residency. Both feed the FNV digests that pin
	// bit-identity across shard counts.
	PerCPUEnergy []float64
	PerCPUSpin   []sim.Cycles
	// Events is the number of simulation events executed.
	Events uint64
	// Shards is the shard count actually used (0 collapsed to 1).
	Shards int
}

func (m *ParallelMachine) collect() ParallelResult {
	var span sim.Cycles
	timelines := make([]*sim.Timeline, m.arch.Nodes)
	res := ParallelResult{
		PerCPUEnergy: make([]float64, m.arch.Nodes),
		PerCPUSpin:   make([]sim.Cycles, m.arch.Nodes),
		Shards:       m.shards,
	}
	for t, nd := range m.nodes {
		timelines[t] = nd.cpu.Timeline()
		if nd.finish > span {
			span = nd.finish
		}
		res.PerCPUEnergy[t] = timelines[t].TotalEnergy()
		res.PerCPUSpin[t] = timelines[t].Time(sim.StateSpin)
		res.Events += uint64(nd.seq)
	}

	stats := Stats{Sleeps: make(map[string]int)}
	for _, rg := range m.regions {
		stats.accumulate(&rg.stats)
		hits, misses, _, skipped, _ := rg.table.Stats()
		stats.PredictorHits += hits
		stats.PredictorMisses += misses
		stats.SkippedUpdates += skipped
	}

	res.Result = Result{
		Breakdown: energy.Collect(timelines, span),
		Span:      span,
		Stats:     stats,
	}
	if m.record {
		res.Result.Episodes = m.assembleRecords()
	}
	return res
}

// accumulate merges another region's counters into s.
func (s *Stats) accumulate(o *Stats) {
	s.Episodes += o.Episodes
	s.Spins += o.Spins
	s.Yields += o.Yields
	for k, v := range o.Sleeps {
		s.Sleeps[k] += v
	}
	s.EarlyWakes += o.EarlyWakes
	s.ExternalWakes += o.ExternalWakes
	s.LateWakes += o.LateWakes
	s.Disables += o.Disables
	s.FlushLines += o.FlushLines
	s.OracleSleeps += o.OracleSleeps
	s.FalseWakeups += o.FalseWakeups
	s.DroppedWakeups += o.DroppedWakeups
	s.TimerFailures += o.TimerFailures
	s.DriftedTimers += o.DriftedTimers
	s.Recoveries += o.Recoveries
	s.InjectedPreempts += o.InjectedPreempts
	s.InjectedStalls += o.InjectedStalls
}

// assembleRecords rebuilds the sequential machine's EpisodeRecord shape
// from the per-node capture plus the home-side release state.
func (m *ParallelMachine) assembleRecords() []EpisodeRecord {
	out := make([]EpisodeRecord, 0, m.prog.Phases())
	for k := 0; k < m.prog.Phases(); k++ {
		pc := m.prog.Phase(k).PC
		mt := m.pcs[pc]
		rec := EpisodeRecord{
			Phase:  k,
			PC:     pc,
			Arrive: make([]sim.Cycles, m.arch.Nodes),
			Depart: make([]sim.Cycles, m.arch.Nodes),
			Waits:  make([]ThreadWait, m.arch.Nodes),
		}
		if f := m.region(mt.flagHome).flags[pc]; f != nil {
			if ep := f.byPhase[k]; ep != nil {
				rec.ReleaseAt = ep.releaseAt
				rec.BIT = ep.bit
			}
		}
		root := mt.shape.levels[len(mt.shape.levels)-1].groups[0]
		if last, ok := m.region(root.home).lastThread[k]; ok {
			rec.Waits[last] = ThreadWait{Kind: "release"}
		}
		for t, nd := range m.nodes {
			rec.Arrive[t] = nd.arriveAt[k]
			rec.Depart[t] = nd.departAt[k]
			if nd.waits[k].Kind != "" {
				rec.Waits[t] = nd.waits[k]
			}
		}
		out = append(out, rec)
	}
	return out
}

// ---------------------------------------------------------------------
// Compute and arrival.

func (m *ParallelMachine) startPhase(t, k int, at sim.Cycles) {
	nd := m.nodes[t]
	if k >= m.prog.Phases() {
		nd.finish = at
		return
	}
	spec := m.prog.Phase(k)
	dur := nd.cpu.RunSegment(at, spec.Segment(t))
	if spec.PreemptThread == t && spec.PreemptDelay > 0 {
		nd.cpu.ChargeCompute(spec.PreemptDelay)
		dur += spec.PreemptDelay
	}
	if d, ok := m.opts.Faults.PreemptAt(k, t); ok {
		nd.cpu.ChargeCompute(d)
		dur += d
		m.region(t).stats.InjectedPreempts++
	}
	if d, ok := m.opts.Faults.StallAt(k, t); ok {
		nd.cpu.ChargeCompute(d)
		dur += d
		m.region(t).stats.InjectedStalls++
	}
	arrive := at + dur
	m.at(t, arrive, func() { m.arrive(t, k, arrive) })
}

func (m *ParallelMachine) arrive(t, k int, now sim.Cycles) {
	nd := m.nodes[t]
	nd.pendStart = now
	mt := m.meta(m.prog.Phase(k).PC)
	g := t / mt.shape.levels[0].radix
	m.checkinSend(t, k, 0, g, now, nd.brts)
}

// checkinSend issues the check-in request for (level, group): an L2 miss
// to the counter's home node.
func (m *ParallelMachine) checkinSend(t, k, level, group int, dep sim.Cycles, brts sim.Cycles) {
	mt := m.meta(m.prog.Phase(k).PC)
	g := mt.shape.levels[level].groups[group]
	arr := dep + m.arch.Coherence.L2Hit + m.net.Latency(t, g.home, m.arch.Coherence.CtrlBytes)
	m.send(t, g.home, arr, func() { m.homeCheckin(t, k, level, group, arr, brts) })
}

// homeCheckin serializes one check-in at the counter's home: the home
// grants the line when the previous holder's release notification lands
// (the flat barrier's O(N·RTT) lock convoy, preserved analytically),
// performs the RMW against its DRAM bank, and replies with the grant.
func (m *ParallelMachine) homeCheckin(t, k, level, group int, arr sim.Cycles, brts sim.Cycles) {
	pc := m.prog.Phase(k).PC
	mt := m.meta(pc)
	g := mt.shape.levels[level].groups[group]
	rg := m.region(g.home)
	ch := m.arch.Coherence

	key := ckey{pc: pc, level: level, group: group}
	c := rg.counts[key]
	if c == nil {
		c = &pcount{byPhase: make(map[int]int)}
		rg.counts[key] = c
	}
	start := arr
	if c.lockFree > start {
		start = c.lockFree
	}
	svc := start + ch.DirLookup + rg.proto.Memory(m.local(g.home)).Access(g.line) + ch.Bus
	grant := svc + m.net.Latency(g.home, t, ch.DataBytes)
	done := grant + m.opts.CheckinCost
	// The next check-in may be granted once this holder's release
	// notification returns to the home.
	c.lockFree = done + m.net.Latency(t, g.home, ch.CtrlBytes)

	c.byPhase[k]++
	lastOfGroup := c.byPhase[k] == g.size
	if lastOfGroup {
		delete(c.byPhase, k)
	}
	rootLast := lastOfGroup && level == len(mt.shape.levels)-1
	var bit sim.Cycles
	if rootLast {
		// The completing thread is the releaser; BIT_b = its local
		// check-in completion minus its BRTS_{b-1} (§3.2.1).
		bit = done - brts
		rg.lastThread[k] = t
		rg.stats.Episodes++
	}
	m.send(g.home, t, grant, func() { m.checkinReply(t, k, level, group, grant, lastOfGroup, rootLast, bit, brts) })
}

func (m *ParallelMachine) checkinReply(t, k, level, group int, grant sim.Cycles, lastOfGroup, rootLast bool, bit, brts sim.Cycles) {
	nd := m.nodes[t]
	done := grant + m.opts.CheckinCost
	mt := m.meta(m.prog.Phase(k).PC)
	if lastOfGroup && !rootLast {
		// Climb: the group's last arrival checks into the parent level.
		parent := group / mt.shape.levels[level+1].radix
		m.checkinSend(t, k, level+1, parent, done, brts)
		return
	}
	// Lock wait and the count RMW(s) are Compute ("other stalls such as
	// memory or locks fall into this category", §5.2).
	nd.cpu.ChargeCompute(done - nd.pendStart)
	if m.record {
		nd.arriveAt[k] = done
	}
	if rootLast {
		m.releaseSend(t, k, done, bit)
		return
	}
	m.wait(t, k, done)
}

// ---------------------------------------------------------------------
// Waiting: the sleep()-library decision, message-accurate.

func (m *ParallelMachine) wait(t, k int, ready sim.Cycles) {
	nd := m.nodes[t]
	pc := m.prog.Phase(k).PC
	w := &pwaiter{phase: k, pc: pc, kind: waitSpin, readyAt: ready}
	nd.w = w

	if m.opts.YieldReschedule > 0 {
		w.kind = waitYield
		m.region(t).stats.Yields++
		m.registerSend(t, k, ready, false)
		return
	}
	if len(m.opts.States) == 0 {
		m.spinArm(t, k, w, ready)
		return
	}
	if m.opts.Oracle {
		w.kind = waitOracle
		m.registerSend(t, k, ready, true)
		return
	}
	if m.opts.Unconditional {
		m.goToSleep(t, k, w, m.opts.States[0], ready, sim.MaxCycles)
		return
	}
	if m.opts.SpinThenSleep > 0 {
		w.spinThenArm = true
		m.spinArm(t, k, w, ready)
		return
	}

	// The sleep() library call: charge the decision, then predict. The
	// BIT table lives on the flag's home node, so prediction is a
	// request/reply — its round trip rides on the decision path, which
	// is the honest cost of distributing the predictor.
	nd.cpu.ChargeCompute(m.opts.DecisionCost)
	ready += m.opts.DecisionCost
	w.readyAt = ready
	if nd.forbidden[pc] {
		// Cut-off disabled prediction for this (barrier, thread): spin.
		m.spinArm(t, k, w, ready)
		return
	}
	m.querySend(t, k, w, ready)
}

// querySend asks the flag home for this barrier's BIT prediction.
func (m *ParallelMachine) querySend(t, k int, w *pwaiter, ready sim.Cycles) {
	mt := m.meta(w.pc)
	h := mt.flagHome
	ch := m.arch.Coherence
	arr := ready + ch.L2Hit + m.net.Latency(t, h, ch.CtrlBytes)
	m.send(t, h, arr, func() {
		rg := m.region(h)
		svc := arr + ch.DirLookup
		rr := svc + m.net.Latency(h, t, ch.CtrlBytes)
		ep := m.flagEp(rg, w.pc, k)
		if ep.released {
			released, relAt, bit := true, ep.releaseAt, ep.bit
			m.send(h, t, rr, func() { m.queryReply(t, k, w, ready, rr, 0, false, released, relAt, bit) })
			return
		}
		bit, ok := rg.table.Predict(w.pc)
		m.send(h, t, rr, func() { m.queryReply(t, k, w, ready, rr, bit, ok, false, 0, 0) })
	})
}

func (m *ParallelMachine) queryReply(t, k int, w *pwaiter, sent, rr sim.Cycles, bit sim.Cycles, ok, released bool, relAt, relBit sim.Cycles) {
	if w.departed {
		return
	}
	nd := m.nodes[t]
	// The query round trip is library execution: Compute, like the
	// decision cost it extends.
	nd.cpu.ChargeCompute(rr - sent)
	w.readyAt = rr
	if released {
		// Raced the release while deciding: the reply itself reports the
		// flip, so the thread departs without ever waiting.
		w.wokeReady = rr
		m.depart(t, k, w, rr, relBit)
		return
	}
	if !ok {
		m.spinArm(t, k, w, rr)
		return
	}
	predictedWake := nd.brts + bit
	stall := predictedWake - rr
	if stall <= 0 {
		m.spinArm(t, k, w, rr)
		return
	}
	flushEst := sim.Cycles(0)
	if !m.opts.NoFlush {
		lines := m.region(t).proto.DirtyLines(m.local(t))
		flushEst = sim.Cycles(lines)*m.arch.Coherence.Bus + m.detectRT
	}
	fit := m.model.BestFit(stall, flushEst)
	if !fit.OK {
		m.spinArm(t, k, w, rr)
		return
	}
	m.goToSleep(t, k, w, fit.State, rr, predictedWake)
}

// spinArm registers w as a conventional spinner: a real flag read that
// records the node as a sharer, so the release invalidation reaches it.
func (m *ParallelMachine) spinArm(t, k int, w *pwaiter, at sim.Cycles) {
	w.kind = waitSpin
	m.region(t).stats.Spins++
	m.flagReadSend(t, k, w, readArm, at)
}

// flagReadSend issues a flag-line read to its home. The reply carries
// the home's view at service time: flipped or not, and the release
// metadata when flipped.
func (m *ParallelMachine) flagReadSend(t, k int, w *pwaiter, purpose readPurpose, at sim.Cycles) {
	mt := m.meta(w.pc)
	h := mt.flagHome
	ch := m.arch.Coherence
	arr := at + ch.L2Hit + m.net.Latency(t, h, ch.CtrlBytes)
	m.send(t, h, arr, func() {
		rg := m.region(h)
		ep := m.flagEp(rg, w.pc, k)
		svc := arr + ch.DirLookup + rg.proto.Memory(m.local(h)).Access(mt.flagAddr) + ch.Bus
		rr := svc + m.net.Latency(h, t, ch.DataBytes)
		if !ep.released {
			m.flagFor(rg, w.pc).sharers.add(t)
		}
		released, relAt, bit := ep.released, ep.releaseAt, ep.bit
		m.send(h, t, rr, func() { m.flagReadReply(t, k, w, purpose, at, rr, released, relAt, bit) })
	})
}

func (m *ParallelMachine) flagReadReply(t, k int, w *pwaiter, purpose readPurpose, sent, rr sim.Cycles, flipped bool, relAt, bit sim.Cycles) {
	if w.departed {
		return
	}
	nd := m.nodes[t]
	rg := m.region(t)
	lat := rr - sent

	switch purpose {
	case readArm:
		nd.cpu.ChargeSpin(lat)
		if flipped {
			m.depart(t, k, w, rr, bit)
			return
		}
		w.spinFrom = rr
		w.armed = true
		if w.spinThenArm {
			w.spinThenArm = false
			threshold := rr + m.opts.SpinThenSleep
			m.at(t, threshold, func() { m.spinThenSleepConvert(t, k, w, threshold) })
		}
		if w.pendingWake && !w.resolving {
			// The release delivery beat this reply; re-read to depart.
			w.resolving = true
			m.flagReadSend(t, k, w, readResolve, rr)
		}

	case readPreSleep:
		// The controller's read before transitioning in (§3.3.1) is part
		// of the library call: Compute.
		nd.cpu.ChargeCompute(lat)
		if flipped {
			w.gated = false
			w.wokeReady = rr
			m.depart(t, k, w, rr, bit)
			return
		}
		m.enterSleep(t, k, w, rr)

	case readVerifyTimer:
		nd.cpu.ChargeSpin(lat)
		if flipped {
			rg.stats.LateWakes++
			m.depart(t, k, w, rr, bit)
			return
		}
		rg.stats.EarlyWakes++
		w.kind = waitResidualSpin
		w.spinFrom = rr
		w.armed = true
		if w.pendingWake && !w.resolving {
			w.resolving = true
			m.flagReadSend(t, k, w, readResolve, rr)
		}

	case readVerifyIPI:
		nd.cpu.ChargeSpin(lat)
		if flipped {
			m.depart(t, k, w, rr, bit)
			return
		}
		// False wake-up (§3.3.1): invalidated without a release. The
		// thread residual-spins; the eventual release resolves it.
		rg.stats.FalseWakeups++
		w.kind = waitResidualSpin
		w.spinFrom = rr
		w.armed = true
		if w.pendingWake && !w.resolving {
			w.resolving = true
			m.flagReadSend(t, k, w, readResolve, rr)
		}

	case readResolve:
		from := w.spinFrom
		dep := rr
		if dep < from {
			dep = from
		}
		nd.cpu.ChargeSpin(dep - from)
		if !flipped {
			// Can't happen: a resolve read is only issued after the
			// release's invalidation arrived. Keep spinning defensively.
			w.resolving = false
			w.spinFrom = dep
			return
		}
		m.depart(t, k, w, dep, bit)
	}
}

// spinThenSleepConvert turns a §5.1 spin-then-sleep spinner into an
// externally-woken sleeper once the spin window expires.
func (m *ParallelMachine) spinThenSleepConvert(t, k int, w *pwaiter, threshold sim.Cycles) {
	if w.departed || w.pendingWake || w.resolving {
		// Already released (or release in flight): stay a spinner.
		return
	}
	nd := m.nodes[t]
	nd.cpu.ChargeSpin(threshold - w.spinFrom)
	w.readyAt = threshold
	m.region(t).stats.Spins--
	m.goToSleep(t, k, w, m.opts.States[0], threshold, sim.MaxCycles)
}

// ---------------------------------------------------------------------
// Sleeping.

func (m *ParallelMachine) goToSleep(t, k int, w *pwaiter, st power.SleepState, ready, predictedWake sim.Cycles) {
	nd := m.nodes[t]
	w.kind = waitSleep
	w.state = st
	w.predictedWake = predictedWake

	if st.Gated() && !m.opts.NoFlush {
		lines, flushLat := m.region(t).proto.FlushForSleep(m.local(t), ready)
		nd.cpu.ChargeCompute(flushLat)
		ready += flushLat
		m.region(t).stats.FlushLines += lines
		w.gated = true
	}
	// The controller reads in the flag (§3.3.1); the reply either aborts
	// the sleep (already flipped) or completes the entry.
	m.flagReadSend(t, k, w, readPreSleep, ready)
}

// enterSleep completes the transition after the pre-sleep read came back
// unflipped.
func (m *ParallelMachine) enterSleep(t, k int, w *pwaiter, ready sim.Cycles) {
	nd := m.nodes[t]
	rg := m.region(t)
	st := w.state
	if w.gated {
		rg.proto.SetGated(m.local(t), true)
	}
	nd.cpu.ChargeTransition(st, st.Transition)
	w.sleepStart = ready + st.Transition
	w.sleeping = true
	rg.stats.Sleeps[st.Name]++

	internalLive := false
	if m.opts.Wakeup == WakeupHybrid || m.opts.Wakeup == WakeupExternal {
		if m.opts.Faults.DropWakeupAt(k, t) {
			rg.stats.DroppedWakeups++
		} else {
			w.externalLive = true
		}
	}
	if w.predictedWake != sim.MaxCycles &&
		(m.opts.Wakeup == WakeupHybrid || m.opts.Wakeup == WakeupInternal) {
		if m.opts.Faults.TimerFailsAt(k, t) {
			rg.stats.TimerFailures++
		} else {
			internalLive = true
			wake := w.predictedWake - st.Transition
			if d := m.opts.Faults.TimerDriftAt(k, t); d > 0 {
				wake += d
				rg.stats.DriftedTimers++
			}
			if wake < w.sleepStart {
				wake = w.sleepStart
			}
			w.timer = m.at(t, wake, func() { m.internalWake(t, k, w, wake, false) })
			w.timerArmed = true
		}
	}
	if !w.externalLive && !internalLive {
		// Every wake-up channel is gone (§3.3's "unbounded" case): the
		// OS watchdog revives the sleeper after the recovery timeout.
		at := w.sleepStart + m.opts.Faults.RecoveryTimeout()
		w.timer = m.at(t, at, func() { m.internalWake(t, k, w, at, true) })
		w.timerArmed = true
	}
	if w.pendingWake && w.externalLive {
		// The release invalidation arrived during the entry transition:
		// zero residency, exit immediately (the sequential machine's
		// at < sleepStart clamp).
		m.externalWake(t, k, w, w.sleepStart)
	}
}

func (m *ParallelMachine) internalWake(t, k int, w *pwaiter, now sim.Cycles, recovery bool) {
	if w.departed || w.woken {
		return
	}
	nd := m.nodes[t]
	rg := m.region(t)
	if recovery {
		rg.stats.Recoveries++
	}
	w.woken = true
	w.timerArmed = false
	w.timer = sim.Handle{}
	w.externalLive = false // ignore a late release delivery; the verify read decides
	m.chargeSleepUntil(nd, w, now)
	nd.cpu.ChargeTransition(w.state, w.state.Transition)
	up := now + w.state.Transition
	if w.gated {
		rg.proto.SetGated(m.local(t), false)
		w.gated = false
	}
	w.wokeReady = up
	// Early or late is decided by the verify read's reply: late wake-ups
	// see the flipped flag and depart; early ones residual-spin.
	m.flagReadSend(t, k, w, readVerifyTimer, up)
}

func (m *ParallelMachine) externalWake(t, k int, w *pwaiter, at sim.Cycles) {
	if w.departed || w.woken {
		return
	}
	nd := m.nodes[t]
	rg := m.region(t)
	w.woken = true
	if w.timerArmed {
		m.cancel(t, w.timer)
		w.timerArmed = false
		w.timer = sim.Handle{}
	}
	if at < w.sleepStart {
		at = w.sleepStart
	}
	m.chargeSleepUntil(nd, w, at)
	nd.cpu.ChargeTransition(w.state, w.state.Transition)
	up := at + w.state.Transition
	if w.gated {
		rg.proto.SetGated(m.local(t), false)
		w.gated = false
	}
	w.wokeReady = up
	rg.stats.ExternalWakes++
	m.flagReadSend(t, k, w, readVerifyIPI, up)
}

func (m *ParallelMachine) chargeSleepUntil(nd *pnode, w *pwaiter, until sim.Cycles) {
	if until > w.sleepStart {
		nd.cpu.ChargeSleep(w.state, until-w.sleepStart)
	}
}

// ---------------------------------------------------------------------
// Release and resolution.

// registerSend registers an oracle (oracle=true) or yield waiter with
// the flag home, which resolves it at release time.
func (m *ParallelMachine) registerSend(t, k int, readyAt sim.Cycles, oracle bool) {
	mt := m.meta(m.prog.Phase(k).PC)
	h := mt.flagHome
	ch := m.arch.Coherence
	pc := m.prog.Phase(k).PC
	arr := readyAt + m.net.Latency(t, h, ch.CtrlBytes)
	m.send(t, h, arr, func() {
		rg := m.region(h)
		ep := m.flagEp(rg, pc, k)
		if ep.released {
			// Raced the release: resolve immediately.
			if oracle {
				m.resolveOracleAt(rg, h, pc, k, ep, pReg{thread: t, readyAt: readyAt}, arr)
			} else {
				m.resolveYieldAt(h, k, ep, pReg{thread: t, readyAt: readyAt}, arr)
			}
			return
		}
		if oracle {
			ep.oracles = append(ep.oracles, pReg{thread: t, readyAt: readyAt})
		} else {
			ep.yields = append(ep.yields, pReg{thread: t, readyAt: readyAt})
		}
	})
}

// releaseSend is the last thread's flag write: reset count, flip the
// flag at its home, carrying the measured BIT.
func (m *ParallelMachine) releaseSend(t, k int, done sim.Cycles, bit sim.Cycles) {
	mt := m.meta(m.prog.Phase(k).PC)
	h := mt.flagHome
	ch := m.arch.Coherence
	arr := done + ch.L2Hit + m.net.Latency(t, h, ch.CtrlBytes)
	m.send(t, h, arr, func() { m.homeRelease(t, k, arr, done, bit) })
}

// homeRelease commits the release at the flag home: update the predictor
// (it lives here), write the line, invalidate every sharer — those
// invalidations are the wake-up IPIs — resolve registered oracle/yield
// waiters, and ack the releaser once all invalidation acks are in.
func (m *ParallelMachine) homeRelease(t, k int, arr, sent sim.Cycles, bit sim.Cycles) {
	pc := m.prog.Phase(k).PC
	mt := m.meta(pc)
	h := mt.flagHome
	rg := m.region(h)
	ch := m.arch.Coherence

	if len(m.opts.States) > 0 && !m.opts.Oracle {
		rg.table.Update(pc, bit)
	}
	f := m.flagFor(rg, pc)
	ep := m.flagEp(rg, pc, k)
	R := arr + ch.DirLookup + rg.proto.Memory(m.local(h)).Access(mt.flagAddr) + ch.Bus
	ep.released = true
	ep.releaseAt = R
	ep.bit = bit

	var ackMax sim.Cycles
	f.sharers.forEach(func(s int) {
		if s == t {
			return
		}
		inv := R + m.net.Latency(h, s, ch.CtrlBytes)
		ack := (inv - R) + m.net.Latency(s, t, ch.CtrlBytes)
		if ack > ackMax {
			ackMax = ack
		}
		m.send(h, s, inv, func() { m.delivery(s, k, inv, ep.bit) })
	})
	f.sharers.clear()

	for _, r := range ep.oracles {
		m.resolveOracleAt(rg, h, pc, k, ep, r, R)
	}
	ep.oracles = nil
	for _, r := range ep.yields {
		m.resolveYieldAt(h, k, ep, r, R)
	}
	ep.yields = nil

	// The releaser's write completes when its data reply and the last
	// invalidation ack are both in.
	lat := m.net.Latency(h, t, ch.DataBytes)
	if ackMax > lat {
		lat = ackMax
	}
	ra := R + lat
	m.send(h, t, ra, func() {
		nd := m.nodes[t]
		nd.cpu.ChargeCompute(ra - sent)
		m.depart(t, k, nil, ra, bit)
	})
}

// delivery is the release invalidation (wake-up IPI) landing at node s.
func (m *ParallelMachine) delivery(s, k int, inv sim.Cycles, bit sim.Cycles) {
	nd := m.nodes[s]
	w := nd.w
	if w == nil || w.phase != k || w.departed {
		return
	}
	switch w.kind {
	case waitSpin, waitResidualSpin:
		if !w.armed {
			// The arm read's reply is still in flight; it will trigger
			// the resolve when it lands.
			w.pendingWake = true
			return
		}
		if !w.resolving {
			w.resolving = true
			m.flagReadSend(s, k, w, readResolve, inv)
		}
	case waitSleep:
		if w.woken {
			// The post-wake verify read may already have been serviced
			// before this release committed; note the signal so its
			// reply re-reads instead of stranding a residual spinner.
			w.pendingWake = true
			return
		}
		if !w.sleeping {
			// Pre-sleep read in flight: note the signal; enterSleep
			// handles the zero-residency exit.
			w.pendingWake = true
			return
		}
		if w.externalLive {
			m.externalWake(s, k, w, inv)
		}
		// Internal-only sleeper: the timer (or watchdog) resolves it.
	case waitOracle, waitYield:
		// Resolved via home registration; never flag sharers.
	}
}

// resolveOracleAt settles an oracle waiter analytically at release time
// R, exactly like the sequential machine but with the post-release flag
// fetch priced from the home side.
func (m *ParallelMachine) resolveOracleAt(rg *pregion, h int, pc uint64, k int, ep *pflagEp, r pReg, R sim.Cycles) {
	mt := m.meta(pc)
	ch := m.arch.Coherence
	s := r.thread
	// The woken thread's flag fetch: request to home, serviced, data back.
	fetch := ch.L2Hit + m.net.Latency(s, h, ch.CtrlBytes) + ch.DirLookup +
		rg.proto.Memory(m.local(h)).Access(mt.flagAddr) + ch.Bus + m.net.Latency(h, s, ch.DataBytes)
	stall := R - r.readyAt
	if stall < 0 {
		stall = 0
	}
	bit := ep.bit
	dep := R + fetch
	m.send(h, s, dep, func() { m.oracleResolve(s, k, r.readyAt, R, dep, stall, bit) })
}

func (m *ParallelMachine) oracleResolve(t, k int, readyAt, R, dep, stall sim.Cycles, bit sim.Cycles) {
	nd := m.nodes[t]
	w := nd.w
	if w == nil || w.phase != k || w.departed {
		return
	}
	rg := m.region(t)
	fit := m.model.BestFit(stall, 0)
	if fit.OK {
		st := fit.State
		nd.cpu.ChargeTransition(st, st.Transition)
		nd.cpu.ChargeSleep(st, stall-2*st.Transition)
		nd.cpu.ChargeTransition(st, st.Transition)
		nd.cpu.ChargeSpin(dep - R)
		w.state = st
		w.wokeReady = R
		rg.stats.OracleSleeps++
		rg.stats.Sleeps[st.Name]++
	} else {
		nd.cpu.ChargeSpin(dep - readyAt)
		rg.stats.Spins++
	}
	m.depart(t, k, w, dep, bit)
}

// resolveYieldAt settles a §3.4.1 time-sharing waiter: the thread
// resumes a scheduling delay after the release. The notification is a
// message, so the resume can never undercut the IPI latency.
func (m *ParallelMachine) resolveYieldAt(h, k int, ep *pflagEp, r pReg, R sim.Cycles) {
	s := r.thread
	delay := m.opts.YieldReschedule
	if ipi := m.net.Latency(h, s, m.arch.Coherence.CtrlBytes); ipi > delay {
		delay = ipi
	}
	dep := R + delay
	bit := ep.bit
	m.send(h, s, dep, func() {
		nd := m.nodes[s]
		w := nd.w
		if w == nil || w.phase != k || w.departed {
			return
		}
		nd.cpu.ChargeCompute(dep - r.readyAt)
		m.depart(s, k, w, dep, bit)
	})
}

// ---------------------------------------------------------------------
// Departure.

func (m *ParallelMachine) depart(t, k int, w *pwaiter, dep sim.Cycles, bit sim.Cycles) {
	nd := m.nodes[t]
	if w != nil {
		if w.departed {
			return
		}
		w.departed = true
		if w.timerArmed {
			m.cancel(t, w.timer)
			w.timerArmed = false
			w.timer = sim.Handle{}
		}
	}
	// BRTS_b = BRTS_{b-1} + BIT_b (§3.2.1).
	nd.brts += bit

	if w != nil && w.kind == waitSleep && !m.opts.Oracle && m.opts.Cutoff > 0 && bit > 0 {
		penalty := w.wokeReady - nd.brts
		if float64(penalty) > m.opts.Cutoff*float64(bit) {
			nd.forbidden[w.pc] = true
			m.region(t).stats.Disables++
		}
	}

	if m.record {
		nd.departAt[k] = dep
		if w != nil {
			tw := ThreadWait{Kind: w.kind.label()}
			if w.kind == waitSleep || (w.kind == waitOracle && w.state.Transition > 0) ||
				(w.kind == waitResidualSpin && w.state.Transition > 0) {
				tw.State = w.state.Name
			}
			nd.waits[k] = tw
		}
	}
	nd.w = nil
	m.startPhase(t, k+1, dep)
}

// ---------------------------------------------------------------------
// Home-side lookup helpers.

func (m *ParallelMachine) flagFor(rg *pregion, pc uint64) *pflag {
	f := rg.flags[pc]
	if f == nil {
		f = &pflag{
			sharers: make(nodeset, (m.arch.Nodes+63)/64),
			byPhase: make(map[int]*pflagEp),
		}
		rg.flags[pc] = f
	}
	return f
}

func (m *ParallelMachine) flagEp(rg *pregion, pc uint64, k int) *pflagEp {
	f := m.flagFor(rg, pc)
	ep := f.byPhase[k]
	if ep == nil {
		ep = &pflagEp{}
		f.byPhase[k] = ep
	}
	return ep
}
