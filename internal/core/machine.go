package core

import (
	"fmt"

	"thriftybarrier/internal/cpu"
	"thriftybarrier/internal/energy"
	"thriftybarrier/internal/mem/coherence"
	"thriftybarrier/internal/mem/dram"
	"thriftybarrier/internal/mem/noc"
	"thriftybarrier/internal/power"
	"thriftybarrier/internal/predict"
	"thriftybarrier/internal/sim"
)

// Arch bundles the hardware configuration of the simulated machine.
type Arch struct {
	Nodes     int
	CPU       cpu.Config
	Coherence coherence.Config
	NoC       noc.Config
	PageBytes int
	// Activity is the compute-phase activity mix used for power.
	Activity power.Activity
	// Seed drives all randomness in the run.
	Seed uint64
	// RegionNodes is the NoC region size used by the sharded core machine
	// (ParallelMachine): nodes are partitioned into Nodes/RegionNodes
	// contiguous regions, each with its own directory slice and cache
	// models, mapped whole onto engine shards. Zero means the default of
	// min(Nodes, 8). The sequential Machine ignores it.
	RegionNodes int
}

// Regions returns the region count implied by RegionNodes (resolving the
// zero default).
func (a Arch) Regions() int {
	return a.Nodes / a.regionNodes()
}

func (a Arch) regionNodes() int {
	rn := a.RegionNodes
	if rn == 0 {
		rn = 8
	}
	if rn > a.Nodes {
		rn = a.Nodes
	}
	return rn
}

// DefaultArch reproduces Table 1: a 64-node CC-NUMA machine.
func DefaultArch() Arch {
	return Arch{
		Nodes:     64,
		CPU:       cpu.DefaultConfig(),
		Coherence: coherence.DefaultConfig(),
		NoC:       noc.DefaultConfig(),
		PageBytes: 4096,
		Activity:  power.TypicalCompute(),
		Seed:      1,
	}
}

// WithNodes returns a copy of the architecture scaled to n nodes (n must be
// a power of two ≤ 1024; past 64 nodes the sharded ParallelMachine is the
// intended runner, though the sequential Machine still works as the
// golden reference).
func (a Arch) WithNodes(n int) Arch {
	a.Nodes = n
	a.Coherence.Nodes = n
	a.NoC.Nodes = n
	return a
}

// barrierLine spacing: each static barrier gets a count line and a flag
// line, 64 bytes apart, in a dedicated shared region.
const (
	barrierBase   = uint64(1) << 40
	barrierStride = 8192
	flagOffset    = 4096
)

// waitKind classifies how an early thread is waiting.
type waitKind uint8

const (
	waitSpin waitKind = iota
	waitSleep
	waitResidualSpin // woke early (or falsely); spinning until release
	waitOracle       // resolved analytically at release
	waitYield        // §3.4.1 time-sharing: CPU yielded to other work
)

// waiter is one early-arrived thread's state within an episode.
type waiter struct {
	thread  int
	kind    waitKind
	readyAt sim.Cycles // when waiting began (post check-in, post decision)

	// Sleep bookkeeping.
	state         power.SleepState
	gated         bool
	sleepStart    sim.Cycles
	predictedWake sim.Cycles
	timer         sim.Handle
	cancelMonitor func()
	woken         bool
	wokeReady     sim.Cycles // when the CPU was executing again
	residualFrom  sim.Cycles

	departed bool
}

// episode is one dynamic barrier instance in flight.
type episode struct {
	phase      int
	pc         uint64
	countAddr  uint64
	flagAddr   uint64
	arrived    int
	lockFreeAt sim.Cycles
	// Combining-tree check-in state (TreeArity >= 2): per level, per
	// group, the counter-line serialization point and the check-in count.
	treeLockFree [][]sim.Cycles
	treeCount    [][]int
	released     bool
	releaseAt    sim.Cycles
	bit          sim.Cycles
	waiters      []*waiter
	lastThread   int

	// Per-thread timing for records.
	arriveAt []sim.Cycles
	departAt []sim.Cycles
}

// Stats aggregates run-level mechanism counters.
type Stats struct {
	Episodes        int
	Spins           int            // early threads that spun conventionally
	Yields          int            // early threads that yielded (TimeShare policy)
	Sleeps          map[string]int // sleeps per state name
	EarlyWakes      int            // internal timer fired before release
	ExternalWakes   int            // invalidation-triggered wakes
	LateWakes       int            // woke after release + exit transition
	Disables        int            // cut-off disables issued
	DVFSScaled      int            // phases run below nominal frequency
	DVFSFreqSum     float64
	FlushLines      int // lines written back before gated sleeps
	OracleSleeps    int
	FalseWakeups    int
	PredictorHits   uint64
	PredictorMisses uint64
	SkippedUpdates  uint64

	// Fault-injection counters (zero unless Options.Faults is set).
	DroppedWakeups   int // external wake-up invalidations lost
	TimerFailures    int // armed internal timers that never fired
	DriftedTimers    int // internal timers that fired late
	Recoveries       int // stranded sleepers revived by the OS watchdog
	InjectedPreempts int // fault-plan preemptions
	InjectedStalls   int // fault-plan node stalls
}

// Result is the outcome of one run.
type Result struct {
	Breakdown energy.Breakdown
	Span      sim.Cycles
	Stats     Stats
	Episodes  []EpisodeRecord
}

// EpisodeRecord captures one dynamic barrier instance for analysis
// (Figure 3, the harness tables, and the Chrome-trace exporter).
type EpisodeRecord struct {
	Phase     int
	PC        uint64
	ReleaseAt sim.Cycles
	BIT       sim.Cycles
	Arrive    []sim.Cycles
	Depart    []sim.Cycles
	// Waits describes how each thread waited (empty Kind for the
	// releasing thread).
	Waits []ThreadWait
}

// ThreadWait is one thread's waiting behaviour in one episode.
type ThreadWait struct {
	// Kind is "spin", "sleep", "residual", "oracle", "yield", or
	// "release" for the last-arriving thread.
	Kind string
	// State names the sleep state used, if any.
	State string
}

func (k waitKind) label() string {
	switch k {
	case waitSpin:
		return "spin"
	case waitSleep:
		return "sleep"
	case waitResidualSpin:
		return "residual"
	case waitOracle:
		return "oracle"
	case waitYield:
		return "yield"
	}
	return "?"
}

// Machine is the simulated multiprocessor running one Program under one
// barrier configuration.
type Machine struct {
	arch Arch
	opts Options

	engine *sim.Engine
	proto  *coherence.Protocol
	model  *power.Model
	cpus   []*cpu.CPU
	table  *predict.Table
	bst    *predict.BSTTable
	rng    *sim.RNG

	prog     Program
	episodes map[int]*episode
	brts     []sim.Cycles // per-thread local release timestamps (§3.2.1)
	finish   []sim.Cycles
	pcAddrs  map[uint64][2]uint64
	nextAddr uint64

	record   bool
	records  []EpisodeRecord
	stats    Stats
	detectRT sim.Cycles // fallback flag-detection latency
	tree     *treeShape
}

// treeShape precomputes the combining tree of a TreeArity barrier.
type treeShape struct {
	arity int
	// childCount[level][group] is how many check-ins complete the group.
	childCount [][]int
	// offsets[level] is the cumulative counter-line index of the level.
	offsets []int
	lines   int
}

func newTreeShape(nodes, arity int) *treeShape {
	t := &treeShape{arity: arity}
	width := nodes
	for width > 1 {
		groups := (width + arity - 1) / arity
		counts := make([]int, groups)
		for g := range counts {
			c := width - g*arity
			if c > arity {
				c = arity
			}
			counts[g] = c
		}
		t.childCount = append(t.childCount, counts)
		t.offsets = append(t.offsets, t.lines)
		t.lines += groups
		width = groups
	}
	return t
}

// NewMachine assembles a machine. RecordEpisodes enables per-episode
// arrival/departure capture (needed for Figure 3 and Table 2 analysis).
func NewMachine(arch Arch, opts Options) *Machine {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	if arch.Nodes != arch.Coherence.Nodes || arch.Nodes != arch.NoC.Nodes {
		panic(fmt.Sprintf("core: inconsistent node counts %d/%d/%d", arch.Nodes, arch.Coherence.Nodes, arch.NoC.Nodes))
	}
	if opts.effectiveTopology() == TopologyNoCTree {
		panic("core: the NoC-matched tree is region-defined; use NewParallelMachine")
	}
	net := noc.New(arch.NoC)
	place := dram.NewPlacement(arch.Nodes, arch.PageBytes)
	proto := coherence.New(arch.Coherence, net, place)
	var model *power.Model
	if len(opts.States) > 0 {
		model = power.NewModel(power.DefaultUnitEnergies(), opts.States)
	} else {
		model = power.NewModel(power.DefaultUnitEnergies(), power.Table3())
	}
	m := &Machine{
		arch:     arch,
		opts:     opts,
		engine:   sim.NewEngine(),
		proto:    proto,
		model:    model,
		cpus:     make([]*cpu.CPU, arch.Nodes),
		table:    predict.NewTable(opts.Predictor),
		bst:      predict.NewBSTTable(),
		rng:      sim.NewRNG(arch.Seed),
		episodes: make(map[int]*episode),
		brts:     make([]sim.Cycles, arch.Nodes),
		finish:   make([]sim.Cycles, arch.Nodes),
		pcAddrs:  make(map[uint64][2]uint64),
		nextAddr: barrierBase,
		detectRT: net.MaxLatency(arch.Coherence.DataBytes),
	}
	for i := range m.cpus {
		m.cpus[i] = cpu.New(i, arch.CPU, proto, model, arch.Activity)
	}
	if opts.TreeArity >= 2 {
		m.tree = newTreeShape(arch.Nodes, opts.TreeArity)
		if m.tree.lines*64 > flagOffset {
			panic(fmt.Sprintf("core: tree needs %d counter lines, exceeding the barrier region", m.tree.lines))
		}
	}
	m.stats.Sleeps = make(map[string]int)
	return m
}

// SetRecording enables per-episode records.
func (m *Machine) SetRecording(on bool) { m.record = on }

// Proto exposes the coherence substrate (tests and harness diagnostics).
func (m *Machine) Proto() *coherence.Protocol { return m.proto }

// Model exposes the power model in use.
func (m *Machine) Model() *power.Model { return m.model }

// Predictor exposes the BIT table (tests and ablation diagnostics).
func (m *Machine) Predictor() *predict.Table { return m.table }

// barrierAddrs returns (count line, flag line) for a static barrier,
// allocating them in the shared region on first use.
func (m *Machine) barrierAddrs(pc uint64) (count, flag uint64) {
	if a, ok := m.pcAddrs[pc]; ok {
		return a[0], a[1]
	}
	count = m.nextAddr
	flag = m.nextAddr + flagOffset
	m.nextAddr += barrierStride
	m.pcAddrs[pc] = [2]uint64{count, flag}
	return count, flag
}

// Run executes prog to completion and returns the measured result.
func (m *Machine) Run(prog Program) Result {
	if prog.Phases() == 0 {
		return Result{}
	}
	m.prog = prog
	for t := 0; t < m.arch.Nodes; t++ {
		t := t
		m.engine.At(0, func() { m.startPhase(t, 0, 0) })
	}
	m.engine.Run()

	var span sim.Cycles
	timelines := make([]*sim.Timeline, m.arch.Nodes)
	for t := 0; t < m.arch.Nodes; t++ {
		timelines[t] = m.cpus[t].Timeline()
		if m.finish[t] > span {
			span = m.finish[t]
		}
	}
	hits, misses, _, skipped, _ := m.table.Stats()
	m.stats.PredictorHits = hits
	m.stats.PredictorMisses = misses
	m.stats.SkippedUpdates = skipped
	return Result{
		Breakdown: energy.Collect(timelines, span),
		Span:      span,
		Stats:     m.stats,
		Episodes:  m.records,
	}
}

// startPhase begins phase k for thread t at time at (or records completion).
func (m *Machine) startPhase(t, k int, at sim.Cycles) {
	if k >= m.prog.Phases() {
		m.finish[t] = at
		return
	}
	spec := m.prog.Phase(k)
	var dur sim.Cycles
	if m.opts.DVFS {
		dur = m.runSegmentDVFS(t, k, at, spec)
	} else {
		dur = m.cpus[t].RunSegment(at, spec.Segment(t))
	}
	if spec.PreemptThread == t && spec.PreemptDelay > 0 {
		// The OS preempts this thread mid-phase (§3.4.2); the CPU runs
		// other work, charged as Compute from the application's view.
		m.cpus[t].ChargeCompute(spec.PreemptDelay)
		dur += spec.PreemptDelay
	}
	// Fault-plan scheduling noise: injected preemptions (§3.4.2 storms)
	// and long node stalls both delay this thread's arrival; like the
	// scripted preemption above they are charged as Compute ("other
	// stalls … fall into this category", §5.2).
	if d, ok := m.opts.Faults.PreemptAt(k, t); ok {
		m.cpus[t].ChargeCompute(d)
		dur += d
		m.stats.InjectedPreempts++
	}
	if d, ok := m.opts.Faults.StallAt(k, t); ok {
		m.cpus[t].ChargeCompute(d)
		dur += d
		m.stats.InjectedStalls++
	}
	arrive := at + dur
	m.engine.At(arrive, func() { m.arrive(t, k, arrive) })
}

// runSegmentDVFS picks a frequency from the predicted slack — the
// interval prediction says when the barrier will release; the per-thread
// compute predictor says how much work lies ahead — runs the segment
// scaled, and updates the compute predictor with the f=1-equivalent
// duration.
func (m *Machine) runSegmentDVFS(t, k int, at sim.Cycles, spec PhaseSpec) sim.Cycles {
	f := 1.0
	var budget sim.Cycles
	if predC, okC := m.bst.Predict(spec.PC, t); okC && predC > 0 {
		if bit, okB := m.table.Predict(spec.PC); okB {
			available := float64(m.brts[t]+bit-at) * m.opts.DVFSMargin
			if available > float64(predC) {
				f = float64(predC) / available
				if f < m.opts.DVFSMinFreq {
					f = m.opts.DVFSMinFreq
				}
				budget = predC // ramp to nominal past the predicted work
			}
		}
	}
	dur, baseEquiv := m.cpus[t].RunSegmentDVFS(at, spec.Segment(t), f, budget)
	m.bst.Update(spec.PC, t, baseEquiv)
	if f < 1 {
		m.stats.DVFSScaled++
	}
	m.stats.DVFSFreqSum += f
	return dur
}

// episodeFor returns (creating if needed) the episode of phase k.
func (m *Machine) episodeFor(k int) *episode {
	ep := m.episodes[k]
	if ep == nil {
		spec := m.prog.Phase(k)
		count, flag := m.barrierAddrs(spec.PC)
		ep = &episode{
			phase:     k,
			pc:        spec.PC,
			countAddr: count,
			flagAddr:  flag,
			arriveAt:  make([]sim.Cycles, m.arch.Nodes),
			departAt:  make([]sim.Cycles, m.arch.Nodes),
		}
		if m.tree != nil {
			ep.treeLockFree = make([][]sim.Cycles, len(m.tree.childCount))
			ep.treeCount = make([][]int, len(m.tree.childCount))
			for l, counts := range m.tree.childCount {
				ep.treeLockFree[l] = make([]sim.Cycles, len(counts))
				ep.treeCount[l] = make([]int, len(counts))
			}
		}
		m.episodes[k] = ep
	}
	return ep
}

// arrive handles thread t reaching the barrier of phase k at time now:
// check-in on the count line (serialized by the barrier lock), then either
// wait (early) or release (last).
func (m *Machine) arrive(t, k int, now sim.Cycles) {
	ep := m.episodeFor(k)
	done, last := m.checkIn(ep, t, now)
	// Lock wait and the count RMW(s) are Compute ("other stalls such as
	// memory or locks fall into this category", §5.2).
	m.cpus[t].ChargeCompute(done - now)
	ep.arrived++
	ep.arriveAt[t] = done

	if !last {
		m.wait(t, ep, done)
		return
	}
	m.release(t, ep, done)
}

// checkIn performs the barrier check-in and reports whether this thread
// completed the barrier (the releasing thread). The flat form is Figure 2's
// lock-protected counter; the tree form climbs a combining tree, with each
// group's counter line serializing only that group's check-ins.
func (m *Machine) checkIn(ep *episode, t int, now sim.Cycles) (done sim.Cycles, last bool) {
	if m.tree == nil {
		start := now
		if ep.lockFreeAt > start {
			start = ep.lockFreeAt
		}
		res := m.proto.Write(t, ep.countAddr, start)
		done = start + res.Latency + m.opts.CheckinCost
		ep.lockFreeAt = done
		return done, ep.arrived == m.arch.Nodes-1
	}
	cur := now
	g := t / m.tree.arity
	for level := 0; ; level++ {
		start := cur
		if ep.treeLockFree[level][g] > start {
			start = ep.treeLockFree[level][g]
		}
		addr := ep.countAddr + uint64(m.tree.offsets[level]+g)*64
		res := m.proto.Write(t, addr, start)
		done = start + res.Latency + m.opts.CheckinCost
		ep.treeLockFree[level][g] = done
		ep.treeCount[level][g]++
		if ep.treeCount[level][g] < m.tree.childCount[level][g] {
			return done, false
		}
		if level == len(m.tree.childCount)-1 {
			return done, true
		}
		cur = done
		g /= m.tree.arity
	}
}

// depart completes thread t's participation in ep at time dep: applies the
// §3.2.1 BRTS update, the §3.3.3 cut-off check for sleepers, and starts the
// next phase.
func (m *Machine) depart(t int, ep *episode, w *waiter, dep sim.Cycles) {
	if w != nil {
		if w.departed {
			return
		}
		w.departed = true
		m.engine.Cancel(w.timer)
		w.timer = sim.Handle{}
		if w.cancelMonitor != nil {
			w.cancelMonitor()
			w.cancelMonitor = nil
		}
	}
	// BRTS_b = BRTS_{b-1} + BIT_b, reconstructing the release timestamp
	// without a global clock (§3.2.1).
	m.brts[t] += ep.bit

	if w != nil && w.kind == waitSleep && !m.opts.Oracle && m.opts.Cutoff > 0 && ep.bit > 0 {
		penalty := w.wokeReady - m.brts[t]
		if float64(penalty) > m.opts.Cutoff*float64(ep.bit) {
			m.table.Disable(ep.pc, t)
			m.stats.Disables++
		}
	}
	if m.opts.BSTDirect && w != nil {
		// Direct BST strawman learns the observed stall.
		m.bst.Update(ep.pc, t, ep.releaseAt-w.readyAt)
	}

	ep.departAt[t] = dep
	m.finalizeEpisode(ep)
	m.startPhase(t, ep.phase+1, dep)
}

// finalizeEpisode records and releases an episode once every thread left.
func (m *Machine) finalizeEpisode(ep *episode) {
	for _, d := range ep.departAt {
		if d == 0 {
			return
		}
	}
	if m.record {
		rec := EpisodeRecord{
			Phase:     ep.phase,
			PC:        ep.pc,
			ReleaseAt: ep.releaseAt,
			BIT:       ep.bit,
			Arrive:    append([]sim.Cycles(nil), ep.arriveAt...),
			Depart:    append([]sim.Cycles(nil), ep.departAt...),
			Waits:     make([]ThreadWait, m.arch.Nodes),
		}
		rec.Waits[ep.lastThread] = ThreadWait{Kind: "release"}
		for _, w := range ep.waiters {
			tw := ThreadWait{Kind: w.kind.label()}
			if w.kind == waitSleep || (w.kind == waitOracle && w.state.Transition > 0) ||
				(w.kind == waitResidualSpin && w.state.Transition > 0) {
				tw.State = w.state.Name
			}
			rec.Waits[w.thread] = tw
		}
		m.records = append(m.records, rec)
	}
	delete(m.episodes, ep.phase)
}
