package core

import (
	"testing"

	"thriftybarrier/internal/cpu"
	"thriftybarrier/internal/sim"
)

func TestTreeShape(t *testing.T) {
	s := newTreeShape(64, 8)
	if len(s.childCount) != 2 {
		t.Fatalf("levels = %d, want 2 (64 = 8*8)", len(s.childCount))
	}
	if len(s.childCount[0]) != 8 || len(s.childCount[1]) != 1 {
		t.Fatalf("groups per level = %d,%d", len(s.childCount[0]), len(s.childCount[1]))
	}
	for _, c := range s.childCount[0] {
		if c != 8 {
			t.Fatalf("level-0 group size %d, want 8", c)
		}
	}
	if s.childCount[1][0] != 8 {
		t.Fatalf("root group size %d, want 8", s.childCount[1][0])
	}
	if s.lines != 9 {
		t.Fatalf("counter lines = %d, want 9", s.lines)
	}
}

func TestTreeShapeRagged(t *testing.T) {
	// 8 nodes, arity 3: level 0 groups of 3,3,2; level 1 root of 3.
	s := newTreeShape(8, 3)
	if len(s.childCount) != 2 {
		t.Fatalf("levels = %d", len(s.childCount))
	}
	want0 := []int{3, 3, 2}
	for i, w := range want0 {
		if s.childCount[0][i] != w {
			t.Fatalf("level-0 sizes %v, want %v", s.childCount[0], want0)
		}
	}
	if s.childCount[1][0] != 3 {
		t.Fatalf("root size %d, want 3", s.childCount[1][0])
	}
}

func TestTreeArityValidation(t *testing.T) {
	o := Baseline()
	o.TreeArity = 1
	if o.Validate() == nil {
		t.Error("arity 1 accepted")
	}
	o.TreeArity = -2
	if o.Validate() == nil {
		t.Error("negative arity accepted")
	}
	o.TreeArity = 4
	if err := o.Validate(); err != nil {
		t.Errorf("arity 4 rejected: %v", err)
	}
}

func TestTreeBarrierSemantics(t *testing.T) {
	for _, arity := range []int{2, 4, 8} {
		opts := Baseline()
		opts.TreeArity = arity
		prog := UniformProgram(0x100, 5, imbalancedWork(200_000, 100_000))
		res := runProg(t, testArch(), opts, prog, true)
		if res.Stats.Episodes != 5 {
			t.Fatalf("arity %d: episodes = %d, want 5", arity, res.Stats.Episodes)
		}
		for i, ep := range res.Episodes {
			for th, d := range ep.Depart {
				if d < ep.ReleaseAt {
					t.Fatalf("arity %d ep %d thread %d departed before release", arity, i, th)
				}
			}
		}
	}
}

func TestTreeBarrierReducesSerialization(t *testing.T) {
	// A perfectly balanced program at 64 nodes: all arrivals simultaneous,
	// so the flat barrier's O(N) counter serialization dominates the
	// measured imbalance. The combining tree must cut it sharply.
	if testing.Short() {
		t.Skip("64-node run in -short mode")
	}
	arch := DefaultArch()
	work := func(instance, thread int) cpu.Segment {
		return cpu.Segment{Instructions: 1_000_000}
	}
	prog := UniformProgram(0x100, 6, work)
	flat := runProg(t, arch, Baseline(), prog, false)
	treeOpts := Baseline()
	treeOpts.TreeArity = 8
	tree := runProg(t, arch, treeOpts, prog, false)

	if tree.Span >= flat.Span {
		t.Fatalf("tree span %v not below flat span %v on balanced program", tree.Span, flat.Span)
	}
	flatSpin := flat.Breakdown.Time[sim.StateSpin]
	treeSpin := tree.Breakdown.Time[sim.StateSpin]
	if treeSpin >= flatSpin/2 {
		t.Fatalf("tree spin %v not well below flat spin %v", treeSpin, flatSpin)
	}
}

func TestTreeBarrierWithThrifty(t *testing.T) {
	// The thrifty machinery composes with the tree check-in.
	opts := Thrifty()
	opts.TreeArity = 4
	prog := UniformProgram(0x100, 10, imbalancedWork(100_000, 400_000))
	res := runProg(t, testArch(), opts, prog, false)
	total := 0
	for _, n := range res.Stats.Sleeps {
		total += n
	}
	if total == 0 {
		t.Fatal("tree+thrifty never slept")
	}
	if res.Stats.Episodes != 10 {
		t.Fatalf("episodes = %d", res.Stats.Episodes)
	}
}

func TestTreeDeterminism(t *testing.T) {
	opts := Thrifty()
	opts.TreeArity = 8
	prog := UniformProgram(0x100, 8, imbalancedWork(100_000, 250_000))
	a := runProg(t, testArch(), opts, prog, false)
	b := runProg(t, testArch(), opts, prog, false)
	if a.Span != b.Span {
		t.Fatal("tree runs not deterministic")
	}
}
