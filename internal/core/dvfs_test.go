package core

import (
	"testing"

	"thriftybarrier/internal/cpu"
	"thriftybarrier/internal/sim"
)

func TestDVFSValidation(t *testing.T) {
	if err := DVFSReclaim().Validate(); err != nil {
		t.Fatalf("DVFSReclaim invalid: %v", err)
	}
	bad := DVFSReclaim()
	bad.States = Thrifty().States
	if bad.Validate() == nil {
		t.Error("DVFS + sleep states accepted")
	}
	bad = DVFSReclaim()
	bad.DVFSMinFreq = 0
	if bad.Validate() == nil {
		t.Error("zero min frequency accepted")
	}
	bad = DVFSReclaim()
	bad.DVFSMargin = 1.5
	if bad.Validate() == nil {
		t.Error("margin > 1 accepted")
	}
}

func TestDVFSSavesEnergyOnStableImbalance(t *testing.T) {
	// A stable rotating straggler: non-critical threads can stretch their
	// compute into the slack and cut core energy by ~f^2.
	prog := UniformProgram(0x100, 16, imbalancedWork(400_000, 600_000))
	base := runProg(t, testArch(), Baseline(), prog, false)
	dv := runProg(t, testArch(), DVFSReclaim(), prog, false)
	n := dv.Breakdown.Normalize(base.Breakdown)
	if n.TotalEnergy() >= 0.92 {
		t.Fatalf("DVFS energy = %.3f, want clear savings", n.TotalEnergy())
	}
	if n.SpanRatio > 1.04 {
		t.Fatalf("DVFS slowdown = %.4f", n.SpanRatio)
	}
	if dv.Stats.DVFSScaled == 0 {
		t.Fatal("no phases were frequency-scaled")
	}
	avg := dv.Stats.DVFSFreqSum / float64(16*8)
	if avg >= 0.99 {
		t.Fatalf("average frequency %.3f, scaling ineffective", avg)
	}
}

func TestDVFSWarmupRunsAtNominal(t *testing.T) {
	// With no history the first instances must run at f=1.
	prog := UniformProgram(0x100, 2, imbalancedWork(200_000, 300_000))
	res := runProg(t, testArch(), DVFSReclaim(), prog, false)
	// 2 phases x 8 threads = 16 segments; at most the second phase scales.
	if res.Stats.DVFSScaled > 8 {
		t.Fatalf("scaled %d segments during warm-up", res.Stats.DVFSScaled)
	}
}

func TestDVFSTrailsThriftyOnDeepSlack(t *testing.T) {
	// With huge slack (Volrend-like), DVFS bottoms out at the frequency
	// floor (energy ~f_min^2 on the core) while Thrifty's Sleep3 removes
	// ~98% of the waiting energy: Thrifty must win.
	prog := UniformProgram(0x100, 12, imbalancedWork(300_000, 2_400_000))
	base := runProg(t, testArch(), Baseline(), prog, false)
	dv := runProg(t, testArch(), DVFSReclaim(), prog, false)
	th := runProg(t, testArch(), Thrifty(), prog, false)
	eDV := dv.Breakdown.Normalize(base.Breakdown).TotalEnergy()
	eTH := th.Breakdown.Normalize(base.Breakdown).TotalEnergy()
	if eTH >= eDV {
		t.Fatalf("Thrifty (%.3f) did not beat DVFS (%.3f) on deep slack", eTH, eDV)
	}
}

func TestDVFSRemainingWaitsAreSpun(t *testing.T) {
	prog := UniformProgram(0x100, 8, imbalancedWork(200_000, 400_000))
	res := runProg(t, testArch(), DVFSReclaim(), prog, false)
	if res.Breakdown.Time[sim.StateSleep] != 0 || res.Breakdown.Time[sim.StateTransition] != 0 {
		t.Fatal("DVFS config slept")
	}
	if res.Breakdown.Time[sim.StateSpin] <= 0 {
		t.Fatal("DVFS config never spun the residual wait")
	}
}

func TestDVFSSwingingIntervalsStayBounded(t *testing.T) {
	// The Ocean pathology under DVFS: mispredicted slack slows a thread
	// that then becomes critical. The margin bounds the damage.
	long, short := int64(800_000), int64(60_000)
	prog := UniformProgram(0x100, 16, func(instance, thread int) cpu.Segment {
		insns := short
		if instance%2 == 0 {
			insns = long
		}
		if thread == instance%8 {
			insns += insns / 4
		}
		return cpu.Segment{Instructions: insns}
	})
	base := runProg(t, testArch(), Baseline(), prog, false)
	dv := runProg(t, testArch(), DVFSReclaim(), prog, false)
	n := dv.Breakdown.Normalize(base.Breakdown)
	if n.SpanRatio > 1.30 {
		t.Fatalf("DVFS on swinging intervals slowdown = %.4f, unbounded", n.SpanRatio)
	}
	t.Logf("DVFS on swinging intervals: energy %.3f time %.4f", n.TotalEnergy(), n.SpanRatio)
}
