// Package core implements the thrifty barrier on the simulated CC-NUMA
// machine: the sense-reversal barrier over real cache lines, the
// conditional-sleep decision with multi-state selection (§3.1), the
// no-global-clock timing bookkeeping (§3.2.1), the external, internal and
// hybrid wake-up mechanisms (§3.3), and the overprediction cut-off
// (§3.3.3). It provides the five system configurations of the evaluation:
// Baseline, Thrifty-Halt, Oracle-Halt, Thrifty, and Ideal.
package core

import (
	"fmt"

	"thriftybarrier/internal/fault"
	"thriftybarrier/internal/power"
	"thriftybarrier/internal/predict"
	"thriftybarrier/internal/sim"
)

// WakeupMode selects how dormant CPUs are woken (§3.3).
type WakeupMode int

const (
	// WakeupHybrid combines the internal timer (anticipates the release)
	// with the external invalidation signal (bounds lateness); the first to
	// trigger cancels the other. This is the paper's production design.
	WakeupHybrid WakeupMode = iota
	// WakeupExternal wakes only on the coherence invalidation of the
	// barrier flag: lateness is bounded, but the exit transition always
	// lands on the critical path.
	WakeupExternal
	// WakeupInternal wakes only on the programmed timer: wake-up can
	// anticipate the release, but overprediction lateness is unbounded.
	WakeupInternal
)

func (m WakeupMode) String() string {
	switch m {
	case WakeupHybrid:
		return "hybrid"
	case WakeupExternal:
		return "external"
	case WakeupInternal:
		return "internal"
	default:
		return fmt.Sprintf("WakeupMode(%d)", int(m))
	}
}

// Options selects a barrier configuration.
type Options struct {
	// Name labels the configuration in reports ("Baseline", "Thrifty", …).
	Name string
	// States is the available sleep-state catalogue, shallow to deep. An
	// empty catalogue yields the conventional barrier (pure spinning).
	States []power.SleepState
	// Oracle replaces history-based BIT prediction with perfect knowledge
	// of the upcoming release (the Oracle-Halt and Ideal configurations).
	// Oracle wake-up is perfectly timed, so it never perturbs arrival
	// times and never triggers the cut-off.
	Oracle bool
	// NoFlush removes the dirty-data flush cost and cache gating of deep
	// sleep states (the Ideal configuration).
	NoFlush bool
	// Wakeup selects the wake-up mechanism for the non-oracle sleeper.
	Wakeup WakeupMode
	// Cutoff is the overprediction threshold relative to BIT (§3.3.3):
	// a thread whose post-sleep wake time overshoots the reconstructed
	// release by more than Cutoff×BIT disables prediction for itself on
	// that barrier. The paper found 10% to work well. Zero disables.
	Cutoff float64
	// Predictor configures the BIT table (ignored under Oracle).
	Predictor predict.Config
	// DecisionCost is the time the sleep()/prediction library code costs an
	// early-arriving thread. Kumar et al. (cited in §6) justify that such
	// lightweight control logic has little impact; it is still modeled.
	DecisionCost sim.Cycles
	// CheckinCost is the barrier bookkeeping cost beyond the count-line RMW
	// itself (lock acquire/release instructions).
	CheckinCost sim.Cycles
	// BSTDirect switches prediction to the strawman per-thread direct
	// barrier-stall-time predictor (predictor ablation only).
	BSTDirect bool
	// Unconditional makes every early thread sleep in the shallowest state
	// immediately, with external wake-up only — the paper's "simplest form"
	// (§3.1: execute Halt on every early arrival), which conditional sleep
	// exists to improve on.
	Unconditional bool
	// SpinThenSleep, when > 0, implements the conventional low-power
	// technique §5.1 compares against: spin for this long, then enter the
	// shallowest state with external wake-up only. No prediction is used.
	SpinThenSleep sim.Cycles
	// YieldReschedule, when > 0, models the §3.4.1 time-sharing
	// alternative: an early thread yields its CPU to other work instead of
	// spinning or sleeping; the CPU stays busy (no energy saved from the
	// system's perspective beyond the spin/compute difference), and after
	// the release the thread must wait to be rescheduled — this delay on
	// the critical path is exactly why the paper argues time-sharing "may
	// hurt performance significantly" unless scheduling is carefully
	// planned.
	YieldReschedule sim.Cycles
	// DVFS enables the §1 alternative the paper contrasts with: instead of
	// sleeping AT the barrier, each thread slows its next compute phase so
	// it arrives just in time ("slowing down threads not on the critical
	// path"). The frequency factor is chosen from the predicted barrier
	// interval and a per-(barrier, thread) last-value compute-time
	// predictor; core energy scales ~f^2 while memory stalls are
	// unaffected. Waits that remain are spun. Mutually exclusive with
	// sleep-state policies.
	DVFS bool
	// DVFSMinFreq floors the frequency factor (default 0.5).
	DVFSMinFreq float64
	// DVFSMargin targets arrival at this fraction of the predicted slack
	// window, guarding the positive-feedback drift of pure slack
	// reclamation (default 0.9).
	DVFSMargin float64
	// Faults, when non-nil, injects the §3.3/§3.4 failure modes into the
	// run: lost external wake-up invalidations, internal-timer drift and
	// failure, preemption storms, and node stalls. Decisions are a pure
	// function of (plan seed, phase, thread), so a faulted run is exactly
	// reproducible. A sleeper that loses every wake-up channel is revived
	// by an OS-watchdog recovery after the plan's (large) recovery
	// timeout — the measurable stand-in for "unbounded" lateness.
	Faults *fault.Plan
	// TreeArity, when >= 2, replaces the flat check-in (Figure 2's single
	// lock-protected counter) with a combining tree of that arity: threads
	// check into per-group counter lines, and the last thread of each
	// group climbs. This removes most of the O(N) check-in serialization
	// of the flat barrier — the barrier-algorithm sensitivity the Kumar et
	// al. discussion (§6) motivates. Zero keeps the paper's flat barrier.
	TreeArity int
	// Topology selects the check-in fabric explicitly. TopologyFlat with
	// TreeArity >= 2 still means the fixed-arity combining tree, so
	// existing configurations keep their meaning; TopologyNoCTree selects
	// the NoC-matched multi-level tree (level-0 groups are the machine's
	// NoC regions, upper levels pair region leaders along hypercube
	// dimensions) and is only supported by the sharded ParallelMachine.
	Topology Topology
}

// Validate reports an error for inconsistent options.
func (o Options) Validate() error {
	if len(o.States) > 0 {
		if err := power.Validate(o.States); err != nil {
			return err
		}
	}
	if o.Cutoff < 0 {
		return fmt.Errorf("core: negative cutoff %v", o.Cutoff)
	}
	if o.DecisionCost < 0 || o.CheckinCost < 0 {
		return fmt.Errorf("core: negative cost in %+v", o)
	}
	if err := o.Predictor.Validate(); err != nil {
		return err
	}
	if o.Oracle && o.BSTDirect {
		return fmt.Errorf("core: oracle and direct-BST prediction are mutually exclusive")
	}
	if o.TreeArity == 1 || o.TreeArity < 0 {
		return fmt.Errorf("core: tree arity %d must be 0 (flat) or >= 2", o.TreeArity)
	}
	switch o.Topology {
	case TopologyFlat, TopologyNoCTree:
	case TopologyTree:
		if o.TreeArity < 2 {
			return fmt.Errorf("core: topology %v requires TreeArity >= 2", o.Topology)
		}
	default:
		return fmt.Errorf("core: unknown topology %v", o.Topology)
	}
	if o.Topology == TopologyNoCTree && o.TreeArity != 0 {
		return fmt.Errorf("core: NoC-matched tree derives its radices from the region fan-out; TreeArity must be 0")
	}
	if o.SpinThenSleep < 0 {
		return fmt.Errorf("core: negative spin-then-sleep threshold")
	}
	if (o.Unconditional || o.SpinThenSleep > 0) && len(o.States) == 0 {
		return fmt.Errorf("core: %s policy requires a sleep-state catalogue", o.Name)
	}
	if o.Unconditional && o.SpinThenSleep > 0 {
		return fmt.Errorf("core: unconditional and spin-then-sleep are mutually exclusive")
	}
	if o.Oracle && (o.Unconditional || o.SpinThenSleep > 0) {
		return fmt.Errorf("core: oracle excludes fixed policies")
	}
	if (o.Unconditional || o.SpinThenSleep > 0) && o.Wakeup == WakeupInternal {
		return fmt.Errorf("core: fixed policies have no prediction to program a timer with (internal wake-up impossible)")
	}
	if o.YieldReschedule < 0 {
		return fmt.Errorf("core: negative yield reschedule delay")
	}
	if err := o.Faults.Validate(); err != nil {
		return err
	}
	if o.YieldReschedule > 0 && (o.Unconditional || o.SpinThenSleep > 0 || len(o.States) > 0) {
		return fmt.Errorf("core: yield policy excludes sleep policies")
	}
	if o.DVFS {
		if len(o.States) > 0 || o.Oracle || o.Unconditional || o.SpinThenSleep > 0 || o.YieldReschedule > 0 {
			return fmt.Errorf("core: DVFS excludes sleep/yield policies")
		}
		if o.DVFSMinFreq <= 0 || o.DVFSMinFreq > 1 {
			return fmt.Errorf("core: DVFS min frequency %v outside (0,1]", o.DVFSMinFreq)
		}
		if o.DVFSMargin <= 0 || o.DVFSMargin > 1 {
			return fmt.Errorf("core: DVFS margin %v outside (0,1]", o.DVFSMargin)
		}
	}
	return nil
}

// Thrifty returns the paper's production configuration: all three Table 3
// sleep states, last-value BIT prediction, hybrid wake-up, 10% cut-off.
func Thrifty() Options {
	return Options{
		Name:         "Thrifty",
		States:       power.Table3(),
		Wakeup:       WakeupHybrid,
		Cutoff:       0.10,
		Predictor:    predict.DefaultConfig(),
		DecisionCost: 100 * sim.Nanosecond,
		CheckinCost:  20 * sim.Nanosecond,
	}
}

// ThriftyHalt is Thrifty restricted to the Halt state.
func ThriftyHalt() Options {
	o := Thrifty()
	o.Name = "Thrifty-Halt"
	o.States = power.HaltOnly()
	return o
}

// OracleHalt is Thrifty-Halt with perfect BIT prediction.
func OracleHalt() Options {
	o := ThriftyHalt()
	o.Name = "Oracle-Halt"
	o.Oracle = true
	return o
}

// Ideal is the theoretical bound: perfect prediction, the full catalogue,
// and no flushing overhead for any state.
func Ideal() Options {
	o := Thrifty()
	o.Name = "Ideal"
	o.Oracle = true
	o.NoFlush = true
	return o
}

// UnconditionalHalt sleeps on every early arrival — the §3.1 strawman.
func UnconditionalHalt() Options {
	o := ThriftyHalt()
	o.Name = "Uncond-Halt"
	o.Unconditional = true
	o.Cutoff = 0
	o.DecisionCost = 0
	return o
}

// SpinThenHalt is the conventional adaptive technique of §5.1: spin for a
// fixed window (twice the Halt round trip by default), then halt until the
// coherence invalidation wakes the CPU.
func SpinThenHalt() Options {
	o := ThriftyHalt()
	o.Name = "SpinThenHalt"
	o.SpinThenSleep = 4 * power.HaltOnly()[0].Transition
	o.Cutoff = 0
	o.DecisionCost = 0
	return o
}

// TimeShare models §3.4.1's multiprogrammed alternative: early threads
// yield the CPU to other processes; after the release they wait a
// scheduling delay before resuming. The CPU never idles, so the
// application's energy share shrinks only marginally while its execution
// time stretches.
func TimeShare(reschedule sim.Cycles) Options {
	o := Baseline()
	o.Name = "TimeShare"
	o.YieldReschedule = reschedule
	return o
}

// DVFSReclaim is the slack-reclamation comparator: threads not on the
// critical path run their next phase at reduced frequency to arrive just
// in time, instead of racing to the barrier and sleeping there.
func DVFSReclaim() Options {
	o := Baseline()
	o.Name = "DVFS"
	o.DVFS = true
	o.DVFSMinFreq = 0.5
	o.DVFSMargin = 0.9
	return o
}

// Baseline is the conventional sense-reversal spin barrier.
func Baseline() Options {
	return Options{
		Name:        "Baseline",
		Predictor:   predict.DefaultConfig(),
		CheckinCost: 20 * sim.Nanosecond,
	}
}

// Configurations returns the five systems of the evaluation, in the order
// the paper's figures present them (B, H, O, T, I).
func Configurations() []Options {
	return []Options{Baseline(), ThriftyHalt(), OracleHalt(), Thrifty(), Ideal()}
}
