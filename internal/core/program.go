package core

import (
	"thriftybarrier/internal/cpu"
	"thriftybarrier/internal/sim"
)

// Program is the SPMD application the machine runs: a common sequence of
// dynamic barrier instances, each preceded by per-thread compute work. All
// threads pass every barrier in order (barrier semantics).
type Program interface {
	// Phases is the number of dynamic barrier instances.
	Phases() int
	// Phase describes instance i.
	Phase(i int) PhaseSpec
}

// PhaseSpec is one dynamic barrier instance and the compute leading to it.
type PhaseSpec struct {
	// PC identifies the static barrier in the code (the prediction index,
	// §3.2). Distinct dynamic instances of the same loop share a PC.
	PC uint64
	// Segment generates the compute work thread t performs before arriving.
	Segment func(thread int) cpu.Segment
	// PreemptThread, if >= 0, injects an OS preemption of PreemptDelay into
	// that thread's compute for this instance (§3.4.2 scenarios).
	PreemptThread int
	// PreemptDelay is the injected preemption length.
	PreemptDelay sim.Cycles
}

// SliceProgram is a Program backed by a phase list.
type SliceProgram []PhaseSpec

// Phases implements Program.
func (p SliceProgram) Phases() int { return len(p) }

// Phase implements Program.
func (p SliceProgram) Phase(i int) PhaseSpec { return p[i] }

// UniformProgram builds a simple test program: instances dynamic barrier
// instances of a single static barrier (pc), each preceded by compute whose
// duration per thread is produced by work.
func UniformProgram(pc uint64, instances int, work func(instance, thread int) cpu.Segment) SliceProgram {
	prog := make(SliceProgram, instances)
	for i := range prog {
		i := i
		prog[i] = PhaseSpec{
			PC:            pc,
			Segment:       func(t int) cpu.Segment { return work(i, t) },
			PreemptThread: -1,
		}
	}
	return prog
}
