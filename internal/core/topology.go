package core

import (
	"fmt"

	"thriftybarrier/internal/mem/dram"
)

// Topology selects the barrier's check-in fabric.
type Topology int

const (
	// TopologyFlat is the paper's single lock-protected counter (Figure 2).
	// For backward compatibility, Options.TreeArity >= 2 with TopologyFlat
	// still selects the fixed-arity combining tree.
	TopologyFlat Topology = iota
	// TopologyTree is the fixed-arity combining tree (requires TreeArity).
	TopologyTree
	// TopologyNoCTree is the NoC-matched multi-level combining tree
	// (Bertuletti et al.): level 0 combines within each NoC region at a
	// counter homed on the region's leader node, and each upper level
	// pairs surviving region leaders along one hypercube dimension of the
	// region index, so every combining message crosses exactly one more
	// network dimension than the level below. Only the sharded
	// ParallelMachine supports it.
	TopologyNoCTree
)

func (t Topology) String() string {
	switch t {
	case TopologyFlat:
		return "flat"
	case TopologyTree:
		return "tree"
	case TopologyNoCTree:
		return "noctree"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// ParseTopology maps the CLI spelling to a Topology.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "flat":
		return TopologyFlat, nil
	case "tree":
		return TopologyTree, nil
	case "noctree":
		return TopologyNoCTree, nil
	default:
		return 0, fmt.Errorf("core: unknown topology %q (flat, tree, noctree)", s)
	}
}

// effective resolves the back-compat rule: TreeArity >= 2 under
// TopologyFlat means the fixed-arity tree.
func (o Options) effectiveTopology() Topology {
	if o.Topology == TopologyFlat && o.TreeArity >= 2 {
		return TopologyTree
	}
	return o.Topology
}

// pGroup is one combining counter: size children check in, the last one
// climbs (or releases, at the root). The counter line lives in the home
// node's memory.
type pGroup struct {
	size int
	home int
	line uint64
}

// pLevel is one tier of the fabric. radix is the fan-in used to map a
// member index at this level to its group (member m -> group m/radix).
type pLevel struct {
	radix  int
	groups []pGroup
}

// pShape is the explicit multi-level check-in fabric of the sharded
// machine: every (level, group) has a fixed counter line and home node,
// so check-in traffic is plain home-node messaging. Thread t starts in
// level-0 group t/levels[0].radix; the last arrival of level l group g
// climbs to level l+1 group g/levels[l+1].radix.
type pShape struct {
	levels []pLevel
}

// lineSlots on the count page (the flag line occupies slot 0 of the flag
// page, leaving the rest of that page for overflow counters).
const countPageLines = flagOffset / 64

// buildShape lays out the fabric for one static barrier. Counter lines
// fill the barrier's count page and then the tail of its flag page; a
// machine too large for that address budget panics, mirroring the
// sequential machine's tree-size check.
func buildShape(topo Topology, arity, nodes, regionNodes int, countAddr, flagAddr uint64, place *dram.Placement) pShape {
	radixAt := func(level, members int) int {
		switch topo {
		case TopologyTree:
			return arity
		case TopologyNoCTree:
			if level == 0 {
				return regionNodes
			}
			return 2
		default: // flat: one group swallows everyone
			return members
		}
	}
	lineAt := func(k int) uint64 {
		if k < countPageLines {
			return countAddr + uint64(k)*64
		}
		k -= countPageLines - 1 // slot 0 of the flag page is the flag itself
		if uint64(k)*64 >= barrierStride-flagOffset {
			panic(fmt.Sprintf("core: %v fabric for %d nodes does not fit the barrier's line budget", topo, nodes))
		}
		return flagAddr + uint64(k)*64
	}
	homeAt := func(level, g int) int {
		if topo != TopologyNoCTree {
			return place.Home(countAddr)
		}
		if level == 0 {
			return g * regionNodes
		}
		return (g << uint(level)) * regionNodes
	}

	var sh pShape
	line := 0
	for members, level := nodes, 0; members > 1; level++ {
		radix := radixAt(level, members)
		groups := (members + radix - 1) / radix
		lv := pLevel{radix: radix, groups: make([]pGroup, groups)}
		for g := 0; g < groups; g++ {
			size := radix
			if rest := members - g*radix; rest < size {
				size = rest
			}
			lv.groups[g] = pGroup{size: size, home: homeAt(level, g), line: lineAt(line)}
			line++
		}
		sh.levels = append(sh.levels, lv)
		members = groups
	}
	if len(sh.levels) == 0 {
		// Degenerate single-thread machine: one root group.
		sh.levels = []pLevel{{radix: 1, groups: []pGroup{{size: 1, home: homeAt(0, 0), line: lineAt(0)}}}}
	}
	return sh
}
