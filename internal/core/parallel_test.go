package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"os/exec"
	"sort"
	"strings"
	"testing"

	"thriftybarrier/internal/sim"
)

func parallelArch(nodes, regionNodes int) Arch {
	a := DefaultArch().WithNodes(nodes)
	a.Seed = 7
	a.RegionNodes = regionNodes
	return a
}

// statsLine renders Stats deterministically (sorted Sleeps keys).
func statsLine(s Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ep=%d sp=%d yl=%d ew=%d xw=%d lw=%d dis=%d fl=%d os=%d fw=%d ph=%d pm=%d su=%d dw=%d tf=%d dt=%d rc=%d ip=%d is=%d",
		s.Episodes, s.Spins, s.Yields, s.EarlyWakes, s.ExternalWakes, s.LateWakes,
		s.Disables, s.FlushLines, s.OracleSleeps, s.FalseWakeups,
		s.PredictorHits, s.PredictorMisses, s.SkippedUpdates,
		s.DroppedWakeups, s.TimerFailures, s.DriftedTimers, s.Recoveries,
		s.InjectedPreempts, s.InjectedStalls)
	keys := make([]string, 0, len(s.Sleeps))
	for k := range s.Sleeps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, s.Sleeps[k])
	}
	return b.String()
}

// parallelDigest folds every observable of a ParallelResult — span, event
// count, per-CPU energy and spin residency at full float precision, and
// the merged stats — into one FNV-1a word.
func parallelDigest(r ParallelResult) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "span=%d events=%d\n", r.Span, r.Events)
	for i := range r.PerCPUEnergy {
		fmt.Fprintf(h, "%d %016x %d\n", i, math.Float64bits(r.PerCPUEnergy[i]), r.PerCPUSpin[i])
	}
	fmt.Fprintf(h, "%s\n", statsLine(r.Stats))
	return h.Sum64()
}

func parallelRun(t *testing.T, arch Arch, opts Options, prog Program, shards int) ParallelResult {
	t.Helper()
	m, err := NewParallelMachine(arch, opts)
	if err != nil {
		t.Fatalf("NewParallelMachine: %v", err)
	}
	return m.Run(prog, shards)
}

// The load-bearing property of the whole sharded machine: for any shard
// count, a run is bit-identical to the plain sequential engine (shards
// 0). Every configuration family and every topology must hold it.
func TestParallelBitIdenticalAcrossShards(t *testing.T) {
	arch := parallelArch(64, 8)
	prog := UniformProgram(0x400, 8, imbalancedWork(150_000, 250_000))

	withTopo := func(o Options, topo Topology, arity int) Options {
		o.Topology = topo
		o.TreeArity = arity
		return o
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"baseline-flat", Baseline()},
		{"thrifty-flat", Thrifty()},
		{"thrifty-tree8", withTopo(Thrifty(), TopologyTree, 8)},
		{"thrifty-noctree", withTopo(Thrifty(), TopologyNoCTree, 0)},
		{"baseline-noctree", withTopo(Baseline(), TopologyNoCTree, 0)},
		{"oracle-flat", OracleHalt()},
		{"unconditional-flat", UnconditionalHalt()},
		{"spinthen-flat", SpinThenHalt()},
		{"timeshare-flat", TimeShare(5 * sim.Microsecond)},
		{"internal-wakeup", func() Options {
			o := Thrifty()
			o.Wakeup = WakeupInternal
			return o
		}()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ref := parallelRun(t, arch, tc.opts, prog, 0)
			want := parallelDigest(ref)
			if ref.Span == 0 || ref.Events == 0 {
				t.Fatalf("degenerate reference run: span=%v events=%d", ref.Span, ref.Events)
			}
			for _, shards := range []int{1, 2, 4, 8} {
				got := parallelRun(t, arch, tc.opts, prog, shards)
				if d := parallelDigest(got); d != want {
					t.Errorf("shards=%d digest %016x != reference %016x (span %v vs %v, events %d vs %d)",
						shards, d, want, got.Span, ref.Span, got.Events, ref.Events)
				}
			}
		})
	}
}

// The sharded machine's stats must agree with physical sense: every
// episode accounted, thrifty actually sleeping, and the predictor active.
func TestParallelThriftySleepsAndPredicts(t *testing.T) {
	arch := parallelArch(64, 8)
	prog := UniformProgram(0x410, 10, imbalancedWork(150_000, 400_000))
	r := parallelRun(t, arch, Thrifty(), prog, 4)
	if int(r.Stats.Episodes) != prog.Phases() {
		t.Errorf("episodes = %d, want %d", r.Stats.Episodes, prog.Phases())
	}
	total := 0
	for _, n := range r.Stats.Sleeps {
		total += n
	}
	if total == 0 {
		t.Error("thrifty run recorded no sleeps")
	}
	if r.Stats.PredictorHits+r.Stats.PredictorMisses == 0 {
		t.Error("predictor never consulted")
	}
	base := parallelRun(t, arch, Baseline(), prog, 4)
	if r.Breakdown.TotalEnergy() >= base.Breakdown.TotalEnergy() {
		t.Errorf("thrifty energy %.3g not below baseline %.3g", r.Breakdown.TotalEnergy(), base.Breakdown.TotalEnergy())
	}
}

// Records must carry the same episode skeleton as the sequential
// machine: monotone release times, a releaser per phase, and departures
// at or after the release.
func TestParallelRecords(t *testing.T) {
	arch := parallelArch(64, 8)
	prog := UniformProgram(0x420, 4, imbalancedWork(100_000, 300_000))
	m, err := NewParallelMachine(arch, Thrifty())
	if err != nil {
		t.Fatal(err)
	}
	m.SetRecording(true)
	r := m.Run(prog, 4)
	if len(r.Episodes) != prog.Phases() {
		t.Fatalf("episodes = %d, want %d", len(r.Episodes), prog.Phases())
	}
	for _, ep := range r.Episodes {
		if ep.ReleaseAt == 0 {
			t.Fatalf("phase %d: no release recorded", ep.Phase)
		}
		releasers := 0
		for tid, w := range ep.Waits {
			if w.Kind == "release" {
				releasers++
			}
			if ep.Depart[tid] < ep.ReleaseAt {
				t.Errorf("phase %d thread %d departs %v before release %v", ep.Phase, tid, ep.Depart[tid], ep.ReleaseAt)
			}
		}
		if releasers != 1 {
			t.Errorf("phase %d: %d releasers", ep.Phase, releasers)
		}
	}
}

// White-box: a model whose messaging undercuts the declared lookahead
// must die loudly, not silently reorder. Inflating the machine's
// lookahead far past the NoC minimum forces the first cross-shard
// message inside a window. The violation panics on a shard worker
// goroutine, which kills the process, so the crashing run happens in a
// re-exec'd child.
func TestParallelLookaheadViolationPanics(t *testing.T) {
	if os.Getenv("CORE_LOOKAHEAD_CRASHER") == "1" {
		m, err := NewParallelMachine(parallelArch(64, 8), Baseline())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(3)
		}
		m.lookahead = sim.Cycles(1) << 40
		m.Run(UniformProgram(0x430, 2, imbalancedWork(50_000, 100_000)), 8)
		os.Exit(0) // no panic: the parent will flag it
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestParallelLookaheadViolationPanics$", "-test.v")
	cmd.Env = append(os.Environ(), "CORE_LOOKAHEAD_CRASHER=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("run with inflated lookahead did not crash; output:\n%s", out)
	}
	if !strings.Contains(string(out), "lookahead violation") {
		t.Fatalf("crash without the lookahead-violation panic; output:\n%s", out)
	}
}

func TestNewParallelMachineRejections(t *testing.T) {
	arch := parallelArch(64, 8)
	dvfs := DVFSReclaim()
	if _, err := NewParallelMachine(arch, dvfs); err == nil {
		t.Error("DVFS accepted")
	}
	bst := Thrifty()
	bst.BSTDirect = true
	if _, err := NewParallelMachine(arch, bst); err == nil {
		t.Error("BSTDirect accepted")
	}
	bad := arch
	bad.RegionNodes = 24
	if _, err := NewParallelMachine(bad, Baseline()); err == nil {
		t.Error("non-power-of-two region size accepted")
	}
	noct := Baseline()
	noct.Topology = TopologyNoCTree
	noct.TreeArity = 4
	if err := noct.Validate(); err == nil {
		t.Error("NoCTree with TreeArity accepted by Validate")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewMachine accepted NoCTree without panicking")
		}
	}()
	ok := Baseline()
	ok.Topology = TopologyNoCTree
	NewMachine(arch, ok)
}

// Shard counts beyond the region count clamp instead of fragmenting
// regions across shards.
func TestParallelShardClamp(t *testing.T) {
	arch := parallelArch(16, 8)
	m, err := NewParallelMachine(arch, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run(UniformProgram(0x440, 2, imbalancedWork(50_000, 100_000)), 64)
	if r.Shards != 2 {
		t.Errorf("shards = %d, want clamp to 2 regions", r.Shards)
	}
}
