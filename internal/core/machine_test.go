package core

import (
	"math"
	"testing"

	"thriftybarrier/internal/cpu"
	"thriftybarrier/internal/sim"
)

// testArch is a small 8-node machine for fast tests.
func testArch() Arch {
	a := DefaultArch().WithNodes(8)
	a.Seed = 7
	return a
}

// imbalancedWork builds a program where thread 0 is always the straggler:
// every other thread finishes its compute in base cycles, thread 0 in
// base+extra.
func imbalancedWork(base, extra int64) func(instance, thread int) cpu.Segment {
	return func(instance, thread int) cpu.Segment {
		insns := base
		if thread == 0 {
			insns += extra
		}
		return cpu.Segment{Instructions: insns}
	}
}

func runProg(t *testing.T, arch Arch, opts Options, prog Program, record bool) Result {
	t.Helper()
	m := NewMachine(arch, opts)
	m.SetRecording(record)
	return m.Run(prog)
}

func TestOptionsValidate(t *testing.T) {
	for _, o := range Configurations() {
		if err := o.Validate(); err != nil {
			t.Errorf("%s invalid: %v", o.Name, err)
		}
	}
	bad := Thrifty()
	bad.Cutoff = -1
	if bad.Validate() == nil {
		t.Error("negative cutoff accepted")
	}
	bad = Thrifty()
	bad.Oracle = true
	bad.BSTDirect = true
	if bad.Validate() == nil {
		t.Error("oracle+BST accepted")
	}
}

func TestConfigurationsOrder(t *testing.T) {
	names := []string{"Baseline", "Thrifty-Halt", "Oracle-Halt", "Thrifty", "Ideal"}
	cfgs := Configurations()
	for i, n := range names {
		if cfgs[i].Name != n {
			t.Fatalf("config %d = %s, want %s", i, cfgs[i].Name, n)
		}
	}
}

func TestBaselineBarrierCompletes(t *testing.T) {
	// IPC 2 => base time = insns/2 ns; 200k insns = 100us compute.
	prog := UniformProgram(0x100, 5, imbalancedWork(200_000, 100_000))
	res := runProg(t, testArch(), Baseline(), prog, true)
	if res.Span <= 0 {
		t.Fatal("run did not advance time")
	}
	if res.Stats.Episodes != 5 {
		t.Fatalf("episodes = %d, want 5", res.Stats.Episodes)
	}
	if len(res.Episodes) != 5 {
		t.Fatalf("records = %d, want 5", len(res.Episodes))
	}
	// Barrier semantics: every departure of episode i follows its release,
	// and every arrival of episode i+1 follows every departure of i.
	for i, ep := range res.Episodes {
		for th, d := range ep.Depart {
			if d < ep.ReleaseAt {
				t.Fatalf("ep %d thread %d departed at %d before release %d", i, th, d, ep.ReleaseAt)
			}
		}
		if i > 0 {
			prev := res.Episodes[i-1]
			for th, a := range ep.Arrive {
				for _, d := range prev.Depart {
					_ = d
				}
				if a <= prev.ReleaseAt {
					t.Fatalf("ep %d thread %d arrived at %d before previous release %d", i, th, a, prev.ReleaseAt)
				}
			}
		}
	}
}

func TestBaselineSpinTimeMatchesImbalance(t *testing.T) {
	// Thread 0 lags by 100us per phase; the other 7 threads spin ~100us.
	prog := UniformProgram(0x100, 4, imbalancedWork(100_000, 200_000))
	res := runProg(t, testArch(), Baseline(), prog, false)
	spin := res.Breakdown.Time[sim.StateSpin]
	// 7 threads * 4 phases * ~100us = ~2.8ms of aggregate spin.
	lo, hi := 7*4*80*sim.Microsecond, 7*4*120*sim.Microsecond
	if spin < lo || spin > hi {
		t.Fatalf("aggregate spin = %v, want within [%v,%v]", spin, lo, hi)
	}
	if res.Stats.Sleeps["Sleep1 (Halt)"] != 0 {
		t.Fatal("baseline slept")
	}
}

func TestThriftySleepsAfterWarmup(t *testing.T) {
	prog := UniformProgram(0x100, 10, imbalancedWork(100_000, 400_000)) // ~200us stall
	res := runProg(t, testArch(), Thrifty(), prog, false)
	total := 0
	for _, n := range res.Stats.Sleeps {
		total += n
	}
	if total == 0 {
		t.Fatal("thrifty never slept")
	}
	// Warm-up: the first instance must spin (no history).
	if res.Stats.Spins < 7 {
		t.Fatalf("spins = %d, want >= 7 (warm-up instance)", res.Stats.Spins)
	}
	// With a 200us stall, the deepest state (needs 70us round trip) fits.
	if res.Stats.Sleeps["Sleep3"] == 0 {
		t.Fatalf("deep state never selected: %v", res.Stats.Sleeps)
	}
}

func TestThriftySavesEnergyOnImbalancedProgram(t *testing.T) {
	prog := UniformProgram(0x100, 12, imbalancedWork(100_000, 500_000))
	base := runProg(t, testArch(), Baseline(), prog, false)
	thr := runProg(t, testArch(), Thrifty(), prog, false)
	n := thr.Breakdown.Normalize(base.Breakdown)
	if n.TotalEnergy() >= 0.95 {
		t.Fatalf("thrifty normalized energy = %.3f, want clear savings", n.TotalEnergy())
	}
	// Performance must stay close to baseline.
	if n.SpanRatio > 1.05 {
		t.Fatalf("thrifty slowdown = %.3f, want <= 1.05", n.SpanRatio)
	}
}

func TestThriftyHaltSavesLessThanThrifty(t *testing.T) {
	prog := UniformProgram(0x100, 12, imbalancedWork(100_000, 500_000))
	base := runProg(t, testArch(), Baseline(), prog, false)
	halt := runProg(t, testArch(), ThriftyHalt(), prog, false)
	full := runProg(t, testArch(), Thrifty(), prog, false)
	eHalt := halt.Breakdown.Normalize(base.Breakdown).TotalEnergy()
	eFull := full.Breakdown.Normalize(base.Breakdown).TotalEnergy()
	if eFull >= eHalt {
		t.Fatalf("Thrifty (%.3f) not better than Thrifty-Halt (%.3f)", eFull, eHalt)
	}
}

func TestOracleHaltNeverSlowsDown(t *testing.T) {
	prog := UniformProgram(0x100, 8, imbalancedWork(100_000, 300_000))
	base := runProg(t, testArch(), Baseline(), prog, false)
	oracle := runProg(t, testArch(), OracleHalt(), prog, false)
	n := oracle.Breakdown.Normalize(base.Breakdown)
	// Perfect wake-up: execution time within measurement noise of baseline.
	if math.Abs(n.SpanRatio-1) > 0.005 {
		t.Fatalf("oracle span ratio = %.4f, want ~1", n.SpanRatio)
	}
	if n.TotalEnergy() >= 1 {
		t.Fatalf("oracle saved no energy (%.3f)", n.TotalEnergy())
	}
	if oracle.Stats.OracleSleeps == 0 {
		t.Fatal("oracle never slept")
	}
}

func TestIdealIsLowerBound(t *testing.T) {
	prog := UniformProgram(0x100, 10, imbalancedWork(100_000, 500_000))
	base := runProg(t, testArch(), Baseline(), prog, false)
	var energies []float64
	for _, opts := range Configurations() {
		r := runProg(t, testArch(), opts, prog, false)
		energies = append(energies, r.Breakdown.Normalize(base.Breakdown).TotalEnergy())
	}
	ideal := energies[4]
	for i, e := range energies {
		if ideal > e+1e-9 {
			t.Fatalf("Ideal (%.3f) not <= %s (%.3f)", ideal, Configurations()[i].Name, e)
		}
	}
	if energies[0] < 0.999 {
		t.Fatalf("Baseline not ~1.0: %.3f", energies[0])
	}
}

func TestBalancedProgramNearBaseline(t *testing.T) {
	// No imbalance: stalls are tiny, thrifty must not sleep or slow down.
	prog := UniformProgram(0x100, 8, imbalancedWork(200_000, 0))
	base := runProg(t, testArch(), Baseline(), prog, false)
	thr := runProg(t, testArch(), Thrifty(), prog, false)
	n := thr.Breakdown.Normalize(base.Breakdown)
	if n.SpanRatio > 1.02 {
		t.Fatalf("balanced program slowdown = %.3f", n.SpanRatio)
	}
	if n.TotalEnergy() > 1.02 {
		t.Fatalf("balanced program energy = %.3f", n.TotalEnergy())
	}
}

func TestNonRepeatingBarriersNeverSleep(t *testing.T) {
	// FFT/Cholesky behaviour: every instance has a distinct PC, so the
	// PC-indexed predictor stays cold and Thrifty behaves like Baseline.
	prog := make(SliceProgram, 6)
	for i := range prog {
		i := i
		prog[i] = PhaseSpec{
			PC:            uint64(0x1000 + i*8),
			Segment:       func(th int) cpu.Segment { return imbalancedWork(100_000, 300_000)(i, th) },
			PreemptThread: -1,
		}
	}
	res := runProg(t, testArch(), Thrifty(), prog, false)
	total := 0
	for _, n := range res.Stats.Sleeps {
		total += n
	}
	if total != 0 {
		t.Fatalf("slept %d times with non-repeating PCs", total)
	}
	if res.Stats.PredictorMisses == 0 {
		t.Fatal("predictor was never consulted")
	}
}

func TestBITMeasurementMatchesRecords(t *testing.T) {
	prog := UniformProgram(0x100, 6, imbalancedWork(150_000, 150_000))
	res := runProg(t, testArch(), Baseline(), prog, true)
	var prevRelease sim.Cycles
	for i, ep := range res.Episodes {
		wantBIT := ep.ReleaseAt - prevRelease
		if ep.BIT != wantBIT {
			t.Fatalf("ep %d BIT = %v, want %v (release-to-release)", i, ep.BIT, wantBIT)
		}
		prevRelease = ep.ReleaseAt
	}
}

func TestBRTSReconstructionIsExact(t *testing.T) {
	// The no-global-clock bookkeeping (§3.2.1) must reconstruct release
	// timestamps exactly: the sum of BITs equals the last release time.
	prog := UniformProgram(0x100, 6, imbalancedWork(150_000, 150_000))
	m := NewMachine(testArch(), Thrifty())
	m.SetRecording(true)
	res := m.Run(prog)
	var sum sim.Cycles
	for _, ep := range res.Episodes {
		sum += ep.BIT
	}
	last := res.Episodes[len(res.Episodes)-1]
	if sum != last.ReleaseAt {
		t.Fatalf("sum of BITs = %v, last release = %v", sum, last.ReleaseAt)
	}
	for th := range m.brts {
		if m.brts[th] != last.ReleaseAt {
			t.Fatalf("thread %d BRTS = %v, want %v", th, m.brts[th], last.ReleaseAt)
		}
	}
}

func TestDeterminism(t *testing.T) {
	prog := UniformProgram(0x100, 8, imbalancedWork(100_000, 250_000))
	a := runProg(t, testArch(), Thrifty(), prog, true)
	b := runProg(t, testArch(), Thrifty(), prog, true)
	if a.Span != b.Span {
		t.Fatalf("spans differ: %v vs %v", a.Span, b.Span)
	}
	if math.Abs(a.Breakdown.TotalEnergy()-b.Breakdown.TotalEnergy()) > 1e-12 {
		t.Fatal("energies differ across identical runs")
	}
	for i := range a.Episodes {
		if a.Episodes[i].ReleaseAt != b.Episodes[i].ReleaseAt {
			t.Fatalf("episode %d release differs", i)
		}
	}
}

func TestEnergyTimeConservation(t *testing.T) {
	// Every CPU is in exactly one state from start to its finish; summed
	// state time must be close to nodes x span (within the slack of the
	// final phase where threads finish at slightly different times).
	prog := UniformProgram(0x100, 6, imbalancedWork(100_000, 300_000))
	for _, opts := range Configurations() {
		res := runProg(t, testArch(), opts, prog, false)
		total := res.Breakdown.TotalTime()
		upper := sim.Cycles(8) * res.Span
		if total > upper {
			t.Fatalf("%s: summed state time %v exceeds nodes*span %v", opts.Name, total, upper)
		}
		if float64(total) < 0.90*float64(upper) {
			t.Fatalf("%s: summed state time %v far below nodes*span %v (accounting hole)", opts.Name, total, upper)
		}
	}
}

func TestCutoffDisablesOnSwingingIntervals(t *testing.T) {
	// Ocean pathology: intervals swing so predictions overshoot wildly;
	// with internal-only wake-up lateness is unbounded, and the cut-off
	// must kick in and disable prediction.
	long := int64(600_000) // ~300us compute
	short := int64(40_000) // ~20us compute
	prog := UniformProgram(0x100, 16, func(instance, thread int) cpu.Segment {
		insns := short
		if instance%2 == 0 {
			insns = long
		}
		if thread == 0 {
			insns += insns / 2
		}
		return cpu.Segment{Instructions: insns}
	})
	opts := Thrifty()
	opts.Wakeup = WakeupInternal
	res := runProg(t, testArch(), opts, prog, false)
	if res.Stats.Disables == 0 {
		t.Fatalf("cut-off never triggered: %+v", res.Stats)
	}

	// Without the cut-off the same program must suffer more late wakes.
	noCut := opts
	noCut.Cutoff = 0
	resNo := runProg(t, testArch(), noCut, prog, false)
	if resNo.Stats.LateWakes <= res.Stats.LateWakes {
		t.Fatalf("late wakes with cutoff %d, without %d — cutoff not protective",
			res.Stats.LateWakes, resNo.Stats.LateWakes)
	}
}

func TestExternalWakeupBoundsLateness(t *testing.T) {
	// Same swinging program under hybrid wake-up: lateness is bounded by
	// the exit transition, so the span must not blow up versus baseline.
	long, short := int64(600_000), int64(40_000)
	work := func(instance, thread int) cpu.Segment {
		insns := short
		if instance%2 == 0 {
			insns = long
		}
		if thread == 0 {
			insns += insns / 2
		}
		return cpu.Segment{Instructions: insns}
	}
	prog := UniformProgram(0x100, 16, work)
	base := runProg(t, testArch(), Baseline(), prog, false)
	hybrid := Thrifty()
	hybrid.Cutoff = 0 // isolate the wake-up mechanism
	resH := runProg(t, testArch(), hybrid, prog, false)
	internal := hybrid
	internal.Wakeup = WakeupInternal
	resI := runProg(t, testArch(), internal, prog, false)
	ratioH := float64(resH.Span) / float64(base.Span)
	ratioI := float64(resI.Span) / float64(base.Span)
	if ratioH >= ratioI {
		t.Fatalf("hybrid (%.3f) not faster than internal-only (%.3f) on adversarial program", ratioH, ratioI)
	}
}

func TestPreemptionInflatesOneInterval(t *testing.T) {
	prog := make(SliceProgram, 8)
	work := imbalancedWork(100_000, 100_000)
	for i := range prog {
		i := i
		prog[i] = PhaseSpec{
			PC:            0x100,
			Segment:       func(th int) cpu.Segment { return work(i, th) },
			PreemptThread: -1,
		}
	}
	// Preempt thread 3 in phase 4 for 2ms.
	prog[4].PreemptThread = 3
	prog[4].PreemptDelay = 2 * sim.Millisecond
	res := runProg(t, testArch(), Baseline(), prog, true)
	if res.Episodes[4].BIT < 2*sim.Millisecond {
		t.Fatalf("preempted interval BIT = %v, want >= 2ms", res.Episodes[4].BIT)
	}
	if res.Episodes[5].BIT >= 2*sim.Millisecond {
		t.Fatalf("next interval BIT = %v, should not carry the preemption", res.Episodes[5].BIT)
	}
}

func TestUnderpredictionFilterProtectsTable(t *testing.T) {
	mk := func(filter float64) (normal, poisoned Result) {
		prog := make(SliceProgram, 12)
		work := imbalancedWork(100_000, 200_000)
		for i := range prog {
			i := i
			prog[i] = PhaseSpec{
				PC:            0x100,
				Segment:       func(th int) cpu.Segment { return work(i, th) },
				PreemptThread: -1,
			}
		}
		prog[5].PreemptThread = 3
		prog[5].PreemptDelay = 20 * sim.Millisecond
		opts := Thrifty()
		opts.Predictor.UnderpredictFactor = filter
		m := NewMachine(testArch(), opts)
		res := m.Run(prog)
		return res, res
	}
	resFiltered, _ := mk(4)
	resUnfiltered, _ := mk(0)
	if resFiltered.Stats.SkippedUpdates == 0 {
		t.Fatal("filter never skipped an update")
	}
	// Without the filter the 20ms interval poisons the next prediction:
	// the following instance overpredicts massively. With the filter, the
	// old short interval is reused. Both must complete correctly either
	// way (hybrid wake-up bounds the damage); the filter shows up as
	// skipped updates and fewer disables.
	if resUnfiltered.Stats.SkippedUpdates != 0 {
		t.Fatal("unfiltered run skipped updates")
	}
}

func TestBSTDirectWorksButWorse(t *testing.T) {
	// Direct BST prediction functions, but on a workload where per-thread
	// stall shifts around (rotating straggler), BIT-based prediction sleeps
	// more accurately. Rotate the straggler across threads.
	work := func(instance, thread int) cpu.Segment {
		insns := int64(100_000)
		if thread == instance%8 {
			insns += 400_000
		}
		return cpu.Segment{Instructions: insns}
	}
	prog := UniformProgram(0x100, 16, work)
	bitOpts := Thrifty()
	bstOpts := Thrifty()
	bstOpts.BSTDirect = true
	base := runProg(t, testArch(), Baseline(), prog, false)
	bit := runProg(t, testArch(), bitOpts, prog, false)
	bst := runProg(t, testArch(), bstOpts, prog, false)
	eBIT := bit.Breakdown.Normalize(base.Breakdown).TotalEnergy()
	eBST := bst.Breakdown.Normalize(base.Breakdown).TotalEnergy()
	if eBIT > 1.0 {
		t.Fatalf("BIT-based thrifty saved nothing (%.3f)", eBIT)
	}
	t.Logf("BIT energy %.3f, direct-BST energy %.3f", eBIT, eBST)
}

func TestFlushOverheadAppearsInCompute(t *testing.T) {
	// Dirty working set: deep sleeps flush it, and re-reads after the
	// barrier become compulsory misses — Compute energy/time rises vs
	// Ideal (§5.2).
	work := func(instance, thread int) cpu.Segment {
		refs := make([]cpu.Ref, 64)
		for i := range refs {
			refs[i] = cpu.Ref{Addr: uint64(thread)<<24 | uint64(0x100000+i*64), Write: true}
		}
		insns := int64(100_000)
		if thread == 0 {
			insns += 500_000
		}
		return cpu.Segment{Instructions: insns, Refs: refs, RefScale: 4}
	}
	prog := UniformProgram(0x100, 10, work)
	thr := runProg(t, testArch(), Thrifty(), prog, false)
	ideal := runProg(t, testArch(), Ideal(), prog, false)
	if thr.Stats.FlushLines == 0 {
		t.Fatal("no lines were flushed")
	}
	if ideal.Stats.FlushLines != 0 {
		t.Fatal("Ideal flushed")
	}
	if thr.Breakdown.Time[sim.StateCompute] <= ideal.Breakdown.Time[sim.StateCompute] {
		t.Fatalf("flush overhead not visible in Compute: thrifty %v <= ideal %v",
			thr.Breakdown.Time[sim.StateCompute], ideal.Breakdown.Time[sim.StateCompute])
	}
}

func TestFalseWakeupLeavesThreadSpinningButCorrect(t *testing.T) {
	// Exercise the false wake-up path (§3.3.1): another node performs an
	// exclusive prefetch of the flag line mid-episode. We drive this by
	// having a rogue write to the flag line from inside a segment.
	arch := testArch()
	rogue := uint64(0) // filled after machine creation
	prog := UniformProgram(0x200, 8, func(instance, thread int) cpu.Segment {
		insns := int64(100_000)
		if thread == 0 {
			insns += 400_000
		}
		seg := cpu.Segment{Instructions: insns}
		// After warm-up, thread 0 (the straggler, so the barrier is still
		// held) writes the flag line mid-compute, invalidating sleepers.
		if instance >= 2 && thread == 0 && rogue != 0 {
			seg.Refs = []cpu.Ref{{Addr: rogue, Write: true}}
		}
		return seg
	})
	m := NewMachine(arch, Thrifty())
	_, flag := m.barrierAddrs(0x200)
	rogue = flag
	res := m.Run(prog)
	if res.Stats.FalseWakeups == 0 {
		t.Skip("no false wake-up triggered under this timing; path covered elsewhere")
	}
	if res.Stats.Episodes != 8 {
		t.Fatalf("episodes = %d, want 8 (correctness despite false wake-ups)", res.Stats.Episodes)
	}
}

func TestScalesToFullMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node run in -short mode")
	}
	arch := DefaultArch()
	prog := UniformProgram(0x100, 6, func(instance, thread int) cpu.Segment {
		insns := int64(100_000 + thread*2_000)
		return cpu.Segment{Instructions: insns}
	})
	base := runProg(t, arch, Baseline(), prog, false)
	thr := runProg(t, arch, Thrifty(), prog, false)
	n := thr.Breakdown.Normalize(base.Breakdown)
	if n.SpanRatio > 1.1 {
		t.Fatalf("64-node slowdown %.3f", n.SpanRatio)
	}
	if base.Stats.Episodes != 6 || thr.Stats.Episodes != 6 {
		t.Fatal("episode count wrong at 64 nodes")
	}
}

func TestWakeupModeString(t *testing.T) {
	if WakeupHybrid.String() != "hybrid" || WakeupExternal.String() != "external" || WakeupInternal.String() != "internal" {
		t.Error("WakeupMode.String mismatch")
	}
}

func TestEmptyProgram(t *testing.T) {
	res := runProg(t, testArch(), Thrifty(), SliceProgram{}, false)
	if res.Span != 0 || res.Stats.Episodes != 0 {
		t.Fatal("empty program produced activity")
	}
}
