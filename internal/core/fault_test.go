package core

import (
	"testing"

	"thriftybarrier/internal/fault"
	"thriftybarrier/internal/sim"
)

// faultedThrifty returns the Thrifty configuration with a fault plan
// attached (and optionally a different wake-up mode).
func faultedThrifty(wakeup WakeupMode, plan *fault.Plan) Options {
	o := Thrifty()
	o.Wakeup = wakeup
	o.Faults = plan
	return o
}

// sleepyProg is a workload whose early threads reliably sleep: a long
// predictable imbalance (thread 0 is a 100us straggler on top of 100us of
// compute) over enough instances to warm the predictor.
func sleepyProg() Program {
	return UniformProgram(0x200, 12, imbalancedWork(200_000, 200_000))
}

// A faulted run is a pure function of (arch seed, plan): running it twice
// gives identical spans, energy, and fault counters.
func TestFaultedRunIsDeterministic(t *testing.T) {
	plan := &fault.Plan{Seed: 3, DropWakeup: 0.3, TimerFail: 0.2,
		DriftRate: 0.3, Drift: 50 * sim.Microsecond}
	a := runProg(t, testArch(), faultedThrifty(WakeupHybrid, plan), sleepyProg(), false)
	b := runProg(t, testArch(), faultedThrifty(WakeupHybrid, plan), sleepyProg(), false)
	if a.Span != b.Span {
		t.Errorf("span diverged: %v vs %v", a.Span, b.Span)
	}
	if a.Stats.DroppedWakeups != b.Stats.DroppedWakeups ||
		a.Stats.TimerFailures != b.Stats.TimerFailures ||
		a.Stats.DriftedTimers != b.Stats.DriftedTimers ||
		a.Stats.Recoveries != b.Stats.Recoveries {
		t.Errorf("fault counters diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Breakdown.TotalEnergy() != b.Breakdown.TotalEnergy() {
		t.Errorf("energy diverged: %v vs %v", a.Breakdown.TotalEnergy(), b.Breakdown.TotalEnergy())
	}
}

// The paper's §3.3 argument, run as an experiment: with external-only
// wake-up a dropped invalidation strands the sleeper until the OS recovery
// (huge slowdown); with hybrid wake-up the internal timer bounds the
// damage, so the same drop rate costs almost nothing.
func TestHybridBoundsDroppedWakeups(t *testing.T) {
	prog := sleepyProg()
	arch := testArch()
	clean := runProg(t, arch, faultedThrifty(WakeupHybrid, nil), prog, false)

	plan := &fault.Plan{Seed: 5, DropWakeup: 0.5}
	hybrid := runProg(t, arch, faultedThrifty(WakeupHybrid, plan), prog, false)
	external := runProg(t, arch, faultedThrifty(WakeupExternal, plan), prog, false)

	if hybrid.Stats.DroppedWakeups == 0 || external.Stats.DroppedWakeups == 0 {
		t.Fatalf("plan injected no drops (hybrid %d, external %d)",
			hybrid.Stats.DroppedWakeups, external.Stats.DroppedWakeups)
	}
	if external.Stats.Recoveries == 0 {
		t.Fatal("external-only run with dropped invalidations never needed recovery")
	}
	if hybrid.Stats.Recoveries != 0 {
		t.Errorf("hybrid run needed %d recoveries; the timer should bound every drop",
			hybrid.Stats.Recoveries)
	}

	hybridSlow := float64(hybrid.Span) / float64(clean.Span)
	externalSlow := float64(external.Span) / float64(clean.Span)
	// Hybrid pays at most the overprediction slack per drop; external pays
	// the ~50ms recovery timeout, orders of magnitude above the ~100us BIT.
	if hybridSlow > 1.5 {
		t.Errorf("hybrid slowdown %.2fx under drops; timer should bound it", hybridSlow)
	}
	if externalSlow < 2*hybridSlow {
		t.Errorf("external-only slowdown %.2fx not clearly worse than hybrid %.2fx",
			externalSlow, hybridSlow)
	}
}

// The mirror case: a failed internal timer strands an internal-only
// sleeper, while hybrid's external invalidation still wakes it on time.
func TestHybridBoundsTimerFailures(t *testing.T) {
	prog := sleepyProg()
	arch := testArch()
	plan := &fault.Plan{Seed: 5, TimerFail: 0.5}

	hybrid := runProg(t, arch, faultedThrifty(WakeupHybrid, plan), prog, false)
	internal := runProg(t, arch, faultedThrifty(WakeupInternal, plan), prog, false)

	if hybrid.Stats.TimerFailures == 0 || internal.Stats.TimerFailures == 0 {
		t.Fatalf("plan injected no timer failures (hybrid %d, internal %d)",
			hybrid.Stats.TimerFailures, internal.Stats.TimerFailures)
	}
	if internal.Stats.Recoveries == 0 {
		t.Fatal("internal-only run with failed timers never needed recovery")
	}
	if hybrid.Stats.Recoveries != 0 {
		t.Errorf("hybrid run needed %d recoveries; the invalidation should bound every failure",
			hybrid.Stats.Recoveries)
	}
	if internal.Span <= hybrid.Span {
		t.Errorf("internal-only span %v not worse than hybrid %v under timer failures",
			internal.Span, hybrid.Span)
	}
}

// Every stranded sleeper is eventually revived: the run terminates and
// all episodes complete even when both channels are lost.
func TestRecoveryRescuesStrandedSleepers(t *testing.T) {
	// Drop every invalidation under external-only wake-up: every sleeper
	// is stranded, and only recovery lets the program finish.
	plan := &fault.Plan{Seed: 1, DropWakeup: 1.0, Recovery: 5 * sim.Millisecond}
	res := runProg(t, testArch(), faultedThrifty(WakeupExternal, plan), sleepyProg(), true)
	if res.Stats.Episodes != 12 {
		t.Fatalf("episodes = %d, want 12: a stranded sleeper hung the run", res.Stats.Episodes)
	}
	if res.Stats.Recoveries == 0 {
		t.Fatal("no recoveries despite every invalidation being dropped")
	}
	// Barrier semantics hold even on the recovery path: no departure
	// precedes its release.
	for _, ep := range res.Episodes {
		for th, d := range ep.Depart {
			if d < ep.ReleaseAt {
				t.Fatalf("phase %d thread %d departed at %v before release %v",
					ep.Phase, th, d, ep.ReleaseAt)
			}
		}
	}
}

// Drifted timers fire late but still fire: no recovery needed, bounded
// lateness, counted in the stats.
func TestTimerDriftIsBoundedLateness(t *testing.T) {
	plan := &fault.Plan{Seed: 2, DriftRate: 1.0, Drift: 200 * sim.Microsecond}
	res := runProg(t, testArch(), faultedThrifty(WakeupInternal, plan), sleepyProg(), false)
	if res.Stats.DriftedTimers == 0 {
		t.Fatal("driftrate=1.0 drifted no timers")
	}
	if res.Stats.Recoveries != 0 {
		t.Errorf("drifted (but live) timers forced %d recoveries", res.Stats.Recoveries)
	}
	if res.Stats.Episodes != 12 {
		t.Fatalf("episodes = %d, want 12", res.Stats.Episodes)
	}
}

// A preemption storm delays arrivals but never breaks barrier semantics,
// and the injected counters record it.
func TestPreemptionStormCompletes(t *testing.T) {
	plan := &fault.Plan{Seed: 4, PreemptRate: 0.3, PreemptDelay: sim.Millisecond,
		StallRate: 0.1, StallDelay: 2 * sim.Millisecond}
	res := runProg(t, testArch(), faultedThrifty(WakeupHybrid, plan), sleepyProg(), true)
	if res.Stats.InjectedPreempts == 0 {
		t.Fatal("storm injected no preemptions")
	}
	if res.Stats.InjectedStalls == 0 {
		t.Fatal("storm injected no stalls")
	}
	if res.Stats.Episodes != 12 {
		t.Fatalf("episodes = %d, want 12", res.Stats.Episodes)
	}
	for _, ep := range res.Episodes {
		for th, d := range ep.Depart {
			if d < ep.ReleaseAt {
				t.Fatalf("phase %d thread %d departed at %v before release %v",
					ep.Phase, th, d, ep.ReleaseAt)
			}
		}
	}
}

// An inactive plan must not perturb the run at all: Options.Faults = zero
// plan is byte-for-byte the unfaulted machine.
func TestInactivePlanIsTransparent(t *testing.T) {
	prog := sleepyProg()
	arch := testArch()
	clean := runProg(t, arch, faultedThrifty(WakeupHybrid, nil), prog, false)
	zero := runProg(t, arch, faultedThrifty(WakeupHybrid, &fault.Plan{Seed: 9}), prog, false)
	if clean.Span != zero.Span {
		t.Errorf("zero plan changed the span: %v vs %v", clean.Span, zero.Span)
	}
	if clean.Breakdown.TotalEnergy() != zero.Breakdown.TotalEnergy() {
		t.Errorf("zero plan changed the energy: %v vs %v",
			clean.Breakdown.TotalEnergy(), zero.Breakdown.TotalEnergy())
	}
}

func TestOptionsValidateFaults(t *testing.T) {
	o := Thrifty()
	o.Faults = &fault.Plan{DropWakeup: 2}
	if o.Validate() == nil {
		t.Error("out-of-range fault rate accepted")
	}
	o.Faults = &fault.Plan{DropWakeup: 0.5}
	if err := o.Validate(); err != nil {
		t.Errorf("valid fault plan rejected: %v", err)
	}
}
