package core

import (
	"testing"

	"thriftybarrier/internal/power"
	"thriftybarrier/internal/sim"
)

func TestFixedPolicyValidation(t *testing.T) {
	o := UnconditionalHalt()
	if err := o.Validate(); err != nil {
		t.Fatalf("UnconditionalHalt invalid: %v", err)
	}
	o = SpinThenHalt()
	if err := o.Validate(); err != nil {
		t.Fatalf("SpinThenHalt invalid: %v", err)
	}
	bad := UnconditionalHalt()
	bad.States = nil
	if bad.Validate() == nil {
		t.Error("unconditional without states accepted")
	}
	bad = UnconditionalHalt()
	bad.SpinThenSleep = 100
	if bad.Validate() == nil {
		t.Error("unconditional + spin-then-sleep accepted")
	}
	bad = SpinThenHalt()
	bad.Oracle = true
	if bad.Validate() == nil {
		t.Error("oracle + fixed policy accepted")
	}
	bad = UnconditionalHalt()
	bad.Wakeup = WakeupInternal
	if bad.Validate() == nil {
		t.Error("fixed policy with internal-only wake-up accepted")
	}
	bad = Baseline()
	bad.SpinThenSleep = -1
	if bad.Validate() == nil {
		t.Error("negative spin-then-sleep accepted")
	}
}

func TestUnconditionalHaltSleepsEveryEarlyArrival(t *testing.T) {
	prog := UniformProgram(0x100, 6, imbalancedWork(100_000, 400_000))
	res := runProg(t, testArch(), UnconditionalHalt(), prog, false)
	// 7 early threads x 6 instances, all asleep, no prediction needed.
	if got := res.Stats.Sleeps["Sleep1 (Halt)"]; got != 42 {
		t.Fatalf("halt sleeps = %d, want 42", got)
	}
	if res.Stats.Spins != 0 {
		t.Fatalf("spins = %d, want 0", res.Stats.Spins)
	}
	// Every wake is external: the exit transition is always on the
	// critical path.
	if res.Stats.ExternalWakes != 42 {
		t.Fatalf("external wakes = %d, want 42", res.Stats.ExternalWakes)
	}
}

func TestUnconditionalHurtsShortBarriers(t *testing.T) {
	// Tiny stalls: unconditional halting pays the 20us round trip against
	// a ~2us stall on every instance, while Thrifty-Halt predicts and
	// declines to sleep.
	prog := UniformProgram(0x100, 10, imbalancedWork(200_000, 8_000))
	base := runProg(t, testArch(), Baseline(), prog, false)
	uncond := runProg(t, testArch(), UnconditionalHalt(), prog, false)
	thrifty := runProg(t, testArch(), ThriftyHalt(), prog, false)
	slowU := uncond.Breakdown.Normalize(base.Breakdown).SpanRatio
	slowT := thrifty.Breakdown.Normalize(base.Breakdown).SpanRatio
	if slowU <= slowT+0.005 {
		t.Fatalf("unconditional (%.4f) not clearly slower than thrifty (%.4f) on short barriers", slowU, slowT)
	}
	if slowU < 1.02 {
		t.Fatalf("unconditional slowdown %.4f implausibly small for 2us stalls", slowU)
	}
}

func TestSpinThenHaltConvertsLongWaits(t *testing.T) {
	prog := UniformProgram(0x100, 8, imbalancedWork(100_000, 600_000)) // ~300us stalls
	res := runProg(t, testArch(), SpinThenHalt(), prog, true)
	if got := res.Stats.Sleeps["Sleep1 (Halt)"]; got == 0 {
		t.Fatal("spin-then-halt never slept on long stalls")
	}
	// The fixed spin window burns spin time before every sleep.
	if res.Breakdown.Time[sim.StateSpin] <= 0 {
		t.Fatal("no spin time before halting")
	}
	if res.Stats.Episodes != 8 {
		t.Fatalf("episodes = %d", res.Stats.Episodes)
	}
}

func TestSpinThenHaltStaysSpinningOnShortWaits(t *testing.T) {
	// Stalls shorter than the spin window: never sleeps, behaves like
	// Baseline.
	prog := UniformProgram(0x100, 8, imbalancedWork(200_000, 40_000)) // ~10us stalls
	res := runProg(t, testArch(), SpinThenHalt(), prog, false)
	if got := res.Stats.Sleeps["Sleep1 (Halt)"]; got != 0 {
		t.Fatalf("slept %d times with 10us stalls and a 40us window", got)
	}
}

// The paper's §5.1 claim: conventional techniques (spin-then-halt,
// unconditional halt) find their lower bound at Oracle-Halt, which itself
// trails Thrifty's multi-state savings.
func TestConventionalTechniquesLowerBoundAtOracleHalt(t *testing.T) {
	prog := UniformProgram(0x100, 12, imbalancedWork(100_000, 500_000))
	base := runProg(t, testArch(), Baseline(), prog, false)
	energy := func(o Options) float64 {
		return runProg(t, testArch(), o, prog, false).Breakdown.Normalize(base.Breakdown).TotalEnergy()
	}
	oracleHalt := energy(OracleHalt())
	spinThen := energy(SpinThenHalt())
	uncond := energy(UnconditionalHalt())
	thrifty := energy(Thrifty())
	if spinThen < oracleHalt-1e-9 {
		t.Errorf("spin-then-halt (%.4f) beat Oracle-Halt (%.4f)", spinThen, oracleHalt)
	}
	if uncond < oracleHalt-1e-9 {
		t.Errorf("unconditional halt (%.4f) beat Oracle-Halt (%.4f)", uncond, oracleHalt)
	}
	if thrifty >= oracleHalt {
		t.Errorf("Thrifty (%.4f) did not beat Oracle-Halt (%.4f) with deep states", thrifty, oracleHalt)
	}
}

func TestTimeShareHurtsPerformanceNotEnergy(t *testing.T) {
	// §3.4.1: yielding the CPU saves spinning but the reschedule delay
	// lands on the critical path and compounds across phases.
	prog := UniformProgram(0x100, 10, imbalancedWork(200_000, 200_000))
	base := runProg(t, testArch(), Baseline(), prog, false)
	ts := runProg(t, testArch(), TimeShare(200*sim.Microsecond), prog, false)
	n := ts.Breakdown.Normalize(base.Breakdown)
	if n.SpanRatio < 1.05 {
		t.Fatalf("time-sharing slowdown = %.4f, want the reschedule delay visible", n.SpanRatio)
	}
	if ts.Stats.Yields == 0 {
		t.Fatal("no yields recorded")
	}
	if ts.Breakdown.Time[sim.StateSpin] != 0 {
		t.Fatal("time-sharing threads spun")
	}
	// The CPU ran other work the whole time: from the machine's view no
	// energy is saved (it can even grow with the stretched execution).
	if n.TotalEnergy() < 0.98 {
		t.Fatalf("time-sharing energy = %.4f, should not save machine energy", n.TotalEnergy())
	}
}

func TestTimeShareValidation(t *testing.T) {
	o := TimeShare(100)
	if err := o.Validate(); err != nil {
		t.Fatalf("TimeShare invalid: %v", err)
	}
	bad := TimeShare(100)
	bad.States = power.HaltOnly()
	if bad.Validate() == nil {
		t.Error("yield + sleep states accepted")
	}
	if TimeShare(-1).Validate() == nil {
		t.Error("negative reschedule accepted")
	}
}
