package sim

import "testing"

// The zero Handle refers to nothing: Cancel and When reject it without
// touching the arena.
func TestZeroHandleIsInert(t *testing.T) {
	e := NewEngine()
	var h Handle
	if e.Cancel(h) {
		t.Fatal("Cancel(zero Handle) returned true")
	}
	if _, ok := e.When(h); ok {
		t.Fatal("When(zero Handle) returned ok")
	}
	// Even with live events in slot 0, the zero Handle must not alias them.
	fired := false
	e.At(10, func() { fired = true })
	if e.Cancel(h) {
		t.Fatal("zero Handle cancelled a live event")
	}
	e.Run()
	if !fired {
		t.Fatal("event never fired")
	}
}

// A handle to a fired or cancelled event stays dead even after its arena
// slot is reused by a new event (the ABA case the generation tag exists for).
func TestStaleHandleDoesNotAliasReusedSlot(t *testing.T) {
	e := NewEngine()
	stale := e.At(10, func() {})
	if !e.Cancel(stale) {
		t.Fatal("first Cancel failed")
	}
	// The freed slot is reused immediately by the next At.
	fired := false
	fresh := e.At(20, func() { fired = true })
	if e.Cancel(stale) {
		t.Fatal("stale handle cancelled the slot's new occupant")
	}
	if _, ok := e.When(stale); ok {
		t.Fatal("When accepted a stale handle")
	}
	if when, ok := e.When(fresh); !ok || when != 20 {
		t.Fatalf("When(fresh) = %d, %v; want 20, true", when, ok)
	}
	e.Run()
	if !fired {
		t.Fatal("reused-slot event was lost")
	}

	// Same story when the slot dies by firing rather than cancellation.
	h := e.At(30, func() {})
	e.Run()
	if e.Cancel(h) {
		t.Fatal("handle to a fired event cancelled something")
	}
}

// Slots recycle: a schedule/fire workload far larger than the live event
// count must not grow the arena past its high-water mark.
func TestArenaReusesSlots(t *testing.T) {
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 10_000 {
			e.After(1, tick)
		}
	}
	e.At(0, tick)
	e.Run()
	if len(e.events) > 2 {
		t.Fatalf("arena grew to %d slots for a 1-live-event workload", len(e.events))
	}
	if e.Fired() != 10_000 {
		t.Fatalf("fired = %d, want 10000", e.Fired())
	}
}

// Steady-state scheduling and firing must not allocate: the arena, heap,
// and free-list all recycle. This is the satellite acceptance check for the
// simulator side (0 allocs/op).
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm up to the high-water mark.
	for i := 0; i < 64; i++ {
		e.After(Cycles(i), fn)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		h := e.After(5, fn)
		e.After(3, fn)
		e.Cancel(h)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("schedule/cancel/fire allocated %v allocs/op in steady state", avg)
	}
}
