package sim

import "fmt"

// State labels what a processor is doing during an interval of simulated
// time. The evaluation breaks energy and execution time down by exactly
// these four categories (Figures 5 and 6 of the paper): Compute also
// covers non-barrier stalls (memory, locks), Spin is busy-waiting on the
// barrier flag, Transition covers entering and leaving low-power states,
// and Sleep is residency in a low-power state.
type State uint8

const (
	StateCompute State = iota
	StateSpin
	StateTransition
	StateSleep
	numStates
)

// NumStates is the number of distinct timeline states.
const NumStates = int(numStates)

func (s State) String() string {
	switch s {
	case StateCompute:
		return "Compute"
	case StateSpin:
		return "Spin"
	case StateTransition:
		return "Transition"
	case StateSleep:
		return "Sleep"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Timeline accumulates, per State, the total simulated time and the total
// energy a component spent in that state. Energy is accumulated in
// picojoules to keep integer precision; accessors report joules.
//
// Intervals are recorded after the fact (AddInterval) rather than by
// tracking a "current state", because barrier episodes are resolved
// analytically and produce their per-thread intervals in one shot.
type Timeline struct {
	time   [numStates]Cycles
	energy [numStates]float64 // picojoules
}

// AddInterval charges duration d in state s at the given power (watts).
// Negative durations panic: they always indicate an episode-accounting bug.
func (t *Timeline) AddInterval(s State, d Cycles, watts float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative interval %d in state %s", d, s))
	}
	t.time[s] += d
	// 1 cycle = 1 ns; W * ns = nJ = 1e3 pJ.
	t.energy[s] += watts * float64(d) * 1e3
}

// AddEnergy charges extra energy (joules) to state s without advancing
// time. Used for one-off costs such as flush traffic charged to Compute.
func (t *Timeline) AddEnergy(s State, joules float64) {
	t.energy[s] += joules * 1e12
}

// Time reports total time spent in state s.
func (t *Timeline) Time(s State) Cycles { return t.time[s] }

// Energy reports total energy (joules) spent in state s.
func (t *Timeline) Energy(s State) float64 { return t.energy[s] * 1e-12 }

// TotalTime reports time summed over all states.
func (t *Timeline) TotalTime() Cycles {
	var sum Cycles
	for _, v := range t.time {
		sum += v
	}
	return sum
}

// TotalEnergy reports energy (joules) summed over all states.
func (t *Timeline) TotalEnergy() float64 {
	var sum float64
	for _, v := range t.energy {
		sum += v
	}
	return sum * 1e-12
}

// Add accumulates another timeline into this one (used to aggregate the 64
// per-CPU timelines into the system totals).
func (t *Timeline) Add(o *Timeline) {
	for i := range t.time {
		t.time[i] += o.time[i]
		t.energy[i] += o.energy[i]
	}
}

// Reset zeroes the timeline.
func (t *Timeline) Reset() {
	*t = Timeline{}
}
