package sim

import (
	"fmt"
	"testing"
)

// ringTrace runs the synthetic workload the determinism tests share: tokens
// circulating around a ring of logical ranks, each hop one lookahead ahead
// of the previous one, ranks block-mapped onto shards the way mp block-maps
// nodes. Every fire appends (when, token) to the owning rank's log; the
// per-rank logs are the observable the golden-reference policy promises is
// shard-count-invariant.
//
// Order keys follow the production rule: a per-source-rank counter packed
// under the rank, unique per destination and derived from simulation state
// only.
func ringTrace(ranks, tokens, hops, shards int, lookahead Cycles) ([][]uint64, *ParallelEngine) {
	pe := NewParallelEngine(shards, lookahead)
	owner := make([]int, ranks)
	for r := range owner {
		owner[r] = r * shards / ranks
	}
	logs := make([][]uint64, ranks)
	counter := make([]uint32, ranks) // counter[r] touched only by rank r's events
	order := func(r int) uint64 {
		counter[r]++
		if counter[r] == 0 {
			panic("test: order counter wrapped")
		}
		return uint64(r)<<32 | uint64(counter[r])
	}
	var hop func(token, r, left int) func()
	hop = func(token, r, left int) func() {
		return func() {
			s := pe.Shard(owner[r])
			now := s.Now()
			logs[r] = append(logs[r], uint64(now)<<16|uint64(token))
			if left == 0 {
				return
			}
			next := (r + 1) % ranks
			when := now + lookahead
			o := order(r)
			fn := hop(token, next, left-1)
			if owner[next] == owner[r] {
				s.At(when, o, fn)
			} else {
				s.Post(owner[next], when, o, fn)
			}
		}
	}
	for k := 0; k < tokens; k++ {
		r := k % ranks
		pe.Shard(owner[r]).At(Cycles(k+1), order(r), hop(k, r, hops))
	}
	pe.Run()
	return logs, pe
}

// ringTraceSequential is the same workload run on a plain Engine — the
// pre-parallel golden reference.
func ringTraceSequential(ranks, tokens, hops int, lookahead Cycles) [][]uint64 {
	e := NewEngine()
	logs := make([][]uint64, ranks)
	counter := make([]uint32, ranks)
	order := func(r int) uint64 {
		counter[r]++
		return uint64(r)<<32 | uint64(counter[r])
	}
	var hop func(token, r, left int) func()
	hop = func(token, r, left int) func() {
		return func() {
			now := e.Now()
			logs[r] = append(logs[r], uint64(now)<<16|uint64(token))
			if left == 0 {
				return
			}
			next := (r + 1) % ranks
			e.AtOrdered(now+lookahead, order(r), hop(token, next, left-1))
		}
	}
	for k := 0; k < tokens; k++ {
		r := k % ranks
		e.AtOrdered(Cycles(k+1), order(r), hop(k, r, hops))
	}
	e.Run()
	return logs
}

func diffLogs(t *testing.T, want, got [][]uint64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d ranks, want %d", label, len(got), len(want))
	}
	for r := range want {
		if len(want[r]) != len(got[r]) {
			t.Fatalf("%s: rank %d fired %d events, want %d", label, r, len(got[r]), len(want[r]))
		}
		for i := range want[r] {
			if want[r][i] != got[r][i] {
				t.Fatalf("%s: rank %d event %d = %#x, want %#x",
					label, r, i, got[r][i], want[r][i])
			}
		}
	}
}

// TestParallelMatchesSequentialSingleShard pins the golden-reference
// policy: a one-shard ParallelEngine produces exactly the trace a plain
// sequential Engine produces for the same model.
func TestParallelMatchesSequentialSingleShard(t *testing.T) {
	const ranks, tokens, hops = 8, 8, 40
	const lookahead = Cycles(48)
	want := ringTraceSequential(ranks, tokens, hops, lookahead)
	got, pe := ringTrace(ranks, tokens, hops, 1, lookahead)
	diffLogs(t, want, got, "1 shard vs sequential")
	if wantFired := uint64(tokens * (hops + 1)); pe.Fired() != wantFired {
		t.Fatalf("fired %d events, want %d", pe.Fired(), wantFired)
	}
	if pe.Pending() != 0 {
		t.Fatalf("%d events left pending", pe.Pending())
	}
}

// TestParallelDeterminismAcrossShardCounts pins the tentpole contract: the
// per-rank trace is byte-identical at every shard count, so a single-shard
// run is a valid golden reference for any -j.
func TestParallelDeterminismAcrossShardCounts(t *testing.T) {
	const ranks, tokens, hops = 16, 16, 60
	const lookahead = Cycles(48)
	want, _ := ringTrace(ranks, tokens, hops, 1, lookahead)
	for _, shards := range []int{2, 3, 4, 8, 16} {
		got, pe := ringTrace(ranks, tokens, hops, shards, lookahead)
		diffLogs(t, want, got, fmt.Sprintf("%d shards vs 1", shards))
		if pe.Pending() != 0 {
			t.Fatalf("%d shards: %d events left pending", shards, pe.Pending())
		}
		if shards > 1 && pe.Posted() == 0 {
			t.Fatalf("%d shards: no cross-shard messages — workload not exercising the merge path", shards)
		}
	}
}

// TestPostLookaheadViolation pins the conservative invariant's failure
// mode: a cross-shard message timed inside the executing window must panic
// (the model lied about its lookahead), not silently fire out of order.
func TestPostLookaheadViolation(t *testing.T) {
	pe := NewParallelEngine(2, 10)
	s0 := pe.Shard(0)
	s0.At(5, 1, func() {
		s0.Post(1, 6, 2, func() {}) // window is [5,15); 6 < 15 violates
	})
	mustPanic(t, "lookahead violation", func() { pe.Run() })
}

// TestPostOutOfRange pins the destination-shard bounds check.
func TestPostOutOfRange(t *testing.T) {
	pe := NewParallelEngine(2, 10)
	s0 := pe.Shard(0)
	s0.At(5, 1, func() {
		s0.Post(2, 100, 2, func() {})
	})
	mustPanic(t, "out of range", func() { pe.Run() })
}

// TestParallelEngineStop checks Stop halts at a window boundary and leaves
// a consistent cut: no window in flight, later work still queued.
func TestParallelEngineStop(t *testing.T) {
	pe := NewParallelEngine(2, 10)
	var tick func(s *EngineShard, when Cycles, n int) func()
	tick = func(s *EngineShard, when Cycles, n int) func() {
		return func() {
			if n == 3 {
				pe.Stop()
			}
			s.At(when+10, 1, tick(s, when+10, n+1))
		}
	}
	pe.Shard(0).At(0, 1, tick(pe.Shard(0), 0, 1))
	pe.Shard(1).At(0, 1, tick(pe.Shard(1), 0, 1))
	pe.Run()
	if pe.Fired() == 0 || pe.Pending() == 0 {
		t.Fatalf("fired %d, pending %d; want a partial run with queued work", pe.Fired(), pe.Pending())
	}
	// Resuming picks up where the cut left off and drains nothing new wrong:
	// the next Run must start at the stopped window, not re-fire anything.
	before := pe.Fired()
	pe.Shard(0).At(pe.Now()+100, 2, func() { pe.Stop() })
	pe.Run()
	if pe.Fired() <= before {
		t.Fatalf("resume fired nothing")
	}
}

// TestNewParallelEngineValidation pins the constructor guards.
func TestNewParallelEngineValidation(t *testing.T) {
	mustPanic(t, ">= 1 shard", func() { NewParallelEngine(0, 10) })
	mustPanic(t, "positive lookahead", func() { NewParallelEngine(1, 0) })
}

// TestParallelMaxCyclesSentinel covers the overflow clamp: events parked at
// MaxCycles (the "never" sentinel some models use) must still fire rather
// than livelock the window loop, whose exclusive end cannot exceed the
// sentinel.
func TestParallelMaxCyclesSentinel(t *testing.T) {
	pe := NewParallelEngine(2, 10)
	fired := 0
	pe.Shard(0).At(MaxCycles, 1, func() { fired++ })
	pe.Shard(1).At(MaxCycles, 1, func() { fired++ })
	pe.Run()
	if fired != 2 {
		t.Fatalf("fired %d sentinel events, want 2", fired)
	}
}
