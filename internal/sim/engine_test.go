package sim

import (
	"testing"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Cycles
	for _, c := range []Cycles{50, 10, 30, 20, 40} {
		c := c
		e.At(c, func() { got = append(got, c) })
	}
	end := e.Run()
	if end != 50 {
		t.Fatalf("final time = %d, want 50", end)
	}
	want := []Cycles{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", got, want)
		}
	}
}

func TestEngineStableTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-cycle events fired out of scheduling order: %v", got)
		}
	}
}

func TestEngineAfterAndNow(t *testing.T) {
	e := NewEngine()
	var at Cycles = -1
	e.After(25, func() {
		at = e.Now()
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 30 {
		t.Fatalf("nested After landed at %d, want 30", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel of pending event returned false")
	}
	if e.Cancel(ev) {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestEngineCancelMidQueue(t *testing.T) {
	e := NewEngine()
	var got []Cycles
	mk := func(c Cycles) Handle {
		return e.At(c, func() { got = append(got, c) })
	}
	mk(10)
	ev := mk(20)
	mk(30)
	e.Cancel(ev)
	e.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("got %v, want [10 30]", got)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Cycles
	for _, c := range []Cycles{10, 20, 30} {
		c := c
		e.At(c, func() { got = append(got, c) })
	}
	now := e.RunUntil(25)
	if now != 25 {
		t.Fatalf("RunUntil returned %d, want 25", now)
	}
	if len(got) != 2 {
		t.Fatalf("events fired: %v, want exactly the first two", got)
	}
	e.Run()
	if len(got) != 3 {
		t.Fatalf("remaining event did not fire: %v", got)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(Cycles(i*10), func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("fired %d events before Stop took effect, want 2", count)
	}
	if e.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", e.Pending())
	}
}

func TestEngineSelfScheduling(t *testing.T) {
	// A classic ticker: each event schedules the next; verify the clock
	// advances monotonically and deterministically.
	e := NewEngine()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		if ticks < 100 {
			e.After(7, tick)
		}
	}
	e.At(0, tick)
	end := e.Run()
	if ticks != 100 {
		t.Fatalf("ticks = %d, want 100", ticks)
	}
	if end != 99*7 {
		t.Fatalf("end = %d, want %d", end, 99*7)
	}
}

func TestCyclesString(t *testing.T) {
	cases := []struct {
		c    Cycles
		want string
	}{
		{500, "500cy"},
		{1500, "1.500us"},
		{2_500_000, "2.500ms"},
		{3_000_000_000, "3.000s"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int64(tc.c), got, tc.want)
		}
	}
}

func TestCyclesDuration(t *testing.T) {
	if Microsecond.Duration().Microseconds() != 1 {
		t.Fatal("1us cycles != 1us duration at 1GHz")
	}
	if FromDuration(Microsecond.Duration()) != Microsecond {
		t.Fatal("FromDuration does not invert Duration")
	}
}
