package sim

import (
	"strings"
	"testing"
)

// mustPanic runs fn and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("expected string panic, got %T: %v", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	fn()
}

// TestArenaCapacityGuard pins the satellite-1 overflow fix: the arena is
// indexed by int32, and filling it must fail loudly (with the limit in the
// message) instead of wrapping the slot index. The real limit is 2^31-2
// slots, which no test can afford to allocate, so the boundary is driven
// through the package-level override.
func TestArenaCapacityGuard(t *testing.T) {
	old := maxArenaSlots
	maxArenaSlots = 4
	defer func() { maxArenaSlots = old }()

	e := NewEngine()
	fn := func() {}
	for i := 0; i < 4; i++ {
		e.After(Cycles(i+1), fn)
	}
	if got := e.Pending(); got != 4 {
		t.Fatalf("pending = %d, want 4", got)
	}
	mustPanic(t, "event arena full", func() { e.After(10, fn) })
	mustPanic(t, "limit 4 slots", func() { e.After(10, fn) })

	// Freeing a slot makes scheduling possible again: the guard is a
	// capacity check, not a one-way trip.
	e.Step()
	h := e.After(10, fn)
	if _, ok := e.When(h); !ok {
		t.Fatalf("schedule after free-list refill failed")
	}
}

// TestSeqOverflowGuard pins the companion guard: the (when, order, seq)
// total order assumes seq never wraps, so exhausting the 64-bit sequence
// counter must panic rather than silently misorder same-cycle events.
func TestSeqOverflowGuard(t *testing.T) {
	e := NewEngine()
	e.seq = ^uint64(0) // 2^64-1 events from now on a real run
	mustPanic(t, "sequence counter exhausted", func() { e.After(1, func() {}) })
}

// TestGenerationWrapRetiresSlot pins the ABA boundary: after 2^32 recycles
// of one arena slot the generation tag wraps, and a Handle minted a full
// cycle ago would alias the next occupant. The slot must be withdrawn from
// the free-list instead of being reused.
func TestGenerationWrapRetiresSlot(t *testing.T) {
	e := NewEngine()
	fn := func() {}

	// Occupy and free slot 0 once so it is on the free-list, then set its
	// generation to the wrap boundary.
	e.Cancel(e.After(5, fn))
	if len(e.free) != 1 {
		t.Fatalf("free-list = %d slots, want 1", len(e.free))
	}
	e.events[0].gen = ^uint32(0)

	// Reuse the slot at the last valid generation, then cancel: the bump
	// wraps to zero and the slot must retire instead of rejoining the
	// free-list.
	h := e.After(5, fn)
	if !e.Cancel(h) {
		t.Fatalf("cancel of live handle failed")
	}
	if len(e.free) != 0 {
		t.Fatalf("wrapped slot rejoined the free-list")
	}
	if e.retired != 1 {
		t.Fatalf("retired = %d, want 1", e.retired)
	}

	// The stale pre-wrap handle must stay invalid, and new scheduling must
	// allocate a fresh slot rather than resurrecting the retired one.
	if e.Cancel(h) {
		t.Fatalf("stale handle cancelled after generation wrap")
	}
	h2 := e.After(7, fn)
	if slot := int32(h2.ref>>32) - 1; slot == 0 {
		t.Fatalf("retired slot was reused")
	}
	if _, ok := e.When(h2); !ok {
		t.Fatalf("scheduling after retirement failed")
	}
}

// TestAtOrderedTieBreak pins the extended comparator: same-cycle events
// fire by ascending order key, and equal keys fall back to scheduling
// sequence (the historical behaviour for the order-0 sequential API).
func TestAtOrderedTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	log := func(id int) func() { return func() { got = append(got, id) } }
	e.AtOrdered(10, 3, log(3))
	e.AtOrdered(10, 1, log(1))
	e.AtOrdered(10, 2, log(2))
	e.AtOrdered(5, 9, log(0))
	e.AtOrdered(10, 1|1<<32, log(4)) // higher key, same low word
	e.Run()
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}
