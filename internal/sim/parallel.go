package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ParallelEngine is a conservative parallel discrete-event engine: the
// event queue is sharded (one arena Engine per shard, typically one shard
// per NoC region of the modeled machine), and shards execute concurrently
// inside time windows of width equal to the model's lookahead — the
// minimum latency of any cross-shard interaction, which for the modeled
// machines is the one-hop NoC message latency. The invariant that makes
// this safe is the classic conservative-simulation one: an event executing
// at time t can only schedule cross-shard work at t+lookahead or later, so
// no event inside the window [T, T+lookahead) can affect another shard
// within the same window.
//
// The window loop is a sequence of barriers:
//
//  1. T = min pending timestamp across all shards (PeekWhen).
//  2. Every shard concurrently fires its events with when < T+lookahead.
//     Same-shard scheduling (EngineShard.At) is unrestricted; cross-shard
//     messages (EngineShard.Post) are buffered in per-shard outboxes and
//     must satisfy when >= T+lookahead — a violation panics, because it
//     means the model lied about its lookahead.
//  3. Outboxes are drained in shard order, sorted by (when, order), and
//     merged into the destination queues; repeat.
//
// Determinism: every event carries a model-supplied order key, and each
// shard fires in (when, order) order regardless of when a message was
// merged into its queue. As long as the model (a) keys events with
// (when, order) pairs that are unique per destination shard and (b)
// derives the keys from simulation state only (e.g. source-rank counters),
// the complete run — every callback, in order, per shard — is independent
// of the shard count and of host scheduling. A single-shard ParallelEngine
// therefore serves as the sequential golden reference for any shard count,
// and the cross-shard determinism tests assert exactly that.
//
// A ParallelEngine must not be copied, for the same reason an Engine must
// not be.
type ParallelEngine struct {
	shards    []*EngineShard
	lookahead Cycles
	now       Cycles // start of the executing (or last executed) window
	windowEnd Cycles // exclusive upper bound of the executing window
	windows   uint64
	posted    uint64
	stopped   atomic.Bool
	batch     []post // reusable merge buffer
	active    []*EngineShard
}

// EngineShard is one shard of a ParallelEngine: a private event queue plus
// an outbox for cross-shard messages. Methods on an EngineShard are safe
// to call either before Run or from a callback executing on that same
// shard; calling into a foreign shard mid-window is a data race (the tests
// run under -race to enforce the discipline).
type EngineShard struct {
	id     int
	pe     *ParallelEngine
	eng    *Engine
	outbox []post
}

// post is one buffered cross-shard message.
type post struct {
	dst   int
	when  Cycles
	order uint64
	fn    func()
}

// NewParallelEngine builds an engine with the given shard count and
// lookahead (the minimum cross-shard scheduling distance, in cycles). It
// panics on a non-positive shard count or lookahead: a zero lookahead
// would make every window empty and the engine livelock.
func NewParallelEngine(shards int, lookahead Cycles) *ParallelEngine {
	if shards < 1 {
		panic(fmt.Sprintf("sim: parallel engine needs >= 1 shard, got %d", shards))
	}
	if lookahead < 1 {
		panic(fmt.Sprintf("sim: parallel engine needs positive lookahead, got %d", lookahead))
	}
	p := &ParallelEngine{lookahead: lookahead}
	p.shards = make([]*EngineShard, shards)
	for i := range p.shards {
		p.shards[i] = &EngineShard{id: i, pe: p, eng: NewEngine()}
	}
	return p
}

// Shards reports the shard count.
func (p *ParallelEngine) Shards() int { return len(p.shards) }

// Shard returns shard i.
func (p *ParallelEngine) Shard(i int) *EngineShard { return p.shards[i] }

// Lookahead reports the configured lookahead.
func (p *ParallelEngine) Lookahead() Cycles { return p.lookahead }

// Now reports the start of the most recent window — the global lower bound
// on pending work. Individual shards advance independently inside a
// window; use EngineShard.Now for a shard-local clock.
func (p *ParallelEngine) Now() Cycles { return p.now }

// Windows reports how many time windows have executed.
func (p *ParallelEngine) Windows() uint64 { return p.windows }

// Posted reports how many cross-shard messages have been merged.
func (p *ParallelEngine) Posted() uint64 { return p.posted }

// Fired reports the total number of events dispatched across all shards.
func (p *ParallelEngine) Fired() uint64 {
	var sum uint64
	for _, s := range p.shards {
		sum += s.eng.Fired()
	}
	return sum
}

// Pending reports the total number of queued events across all shards.
func (p *ParallelEngine) Pending() int {
	var sum int
	for _, s := range p.shards {
		sum += s.eng.Pending()
	}
	return sum
}

// Stop makes Run return at the next window boundary. Unlike Engine.Stop it
// does not interrupt the window in flight: shards finish their current
// window so that the stop point is a consistent cut of the simulation.
func (p *ParallelEngine) Stop() { p.stopped.Store(true) }

// Run executes windows until every shard's queue (and every outbox) is
// drained or Stop is called, and returns the maximum shard-local time.
func (p *ParallelEngine) Run() Cycles {
	p.stopped.Store(false)
	for !p.stopped.Load() {
		t, ok := p.nextTime()
		if !ok {
			break
		}
		p.now = t
		end := t + p.lookahead
		if end < t { // overflow clamp near MaxCycles
			end = MaxCycles
		}
		p.windowEnd = end
		p.runWindow(end)
		p.windows++
		p.flush()
	}
	var max Cycles
	for _, s := range p.shards {
		if n := s.eng.Now(); n > max {
			max = n
		}
	}
	return max
}

// nextTime is the minimum pending timestamp across shards.
func (p *ParallelEngine) nextTime() (Cycles, bool) {
	var t Cycles
	ok := false
	for _, s := range p.shards {
		if w, k := s.eng.PeekWhen(); k && (!ok || w < t) {
			t, ok = w, true
		}
	}
	return t, ok
}

// runWindow fires, on every shard concurrently, the events with
// timestamps strictly before end. A window with a single active shard
// runs inline: sparse regions of simulated time cost no goroutines, and
// a one-shard engine degenerates to a purely sequential loop.
func (p *ParallelEngine) runWindow(end Cycles) {
	active := p.active[:0]
	for _, s := range p.shards {
		if w, ok := s.eng.PeekWhen(); ok && w < end {
			active = append(active, s)
		}
	}
	if len(active) == 0 {
		// Only reachable when pending events sit exactly at MaxCycles: the
		// overflow clamp cannot push the (exclusive) window end past the
		// sentinel, so fire them inclusively and sequentially instead of
		// spinning forever on an empty window.
		for _, s := range p.shards {
			s.eng.RunUntil(end)
		}
		return
	}
	if len(active) == 1 {
		active[0].eng.runBefore(end)
		p.active = active[:0]
		return
	}
	var wg sync.WaitGroup
	for _, s := range active {
		wg.Add(1)
		go func(s *EngineShard) {
			defer wg.Done()
			s.eng.runBefore(end)
		}(s)
	}
	wg.Wait()
	p.active = active[:0]
}

// flush merges every outbox into the destination queues. Outboxes are
// concatenated in shard order and stably sorted by (when, order), so the
// destination-queue insertion order — and with it the seq tie-break that
// backstops duplicate keys — is deterministic for a given shard count.
func (p *ParallelEngine) flush() {
	batch := p.batch[:0]
	for _, s := range p.shards {
		batch = append(batch, s.outbox...)
		for i := range s.outbox {
			s.outbox[i].fn = nil // don't pin closures in the spare capacity
		}
		s.outbox = s.outbox[:0]
	}
	if len(batch) > 1 {
		sort.SliceStable(batch, func(i, j int) bool {
			if batch[i].when != batch[j].when {
				return batch[i].when < batch[j].when
			}
			return batch[i].order < batch[j].order
		})
	}
	for _, m := range batch {
		p.shards[m.dst].eng.AtOrdered(m.when, m.order, m.fn)
	}
	p.posted += uint64(len(batch))
	for i := range batch {
		batch[i].fn = nil
	}
	p.batch = batch[:0]
}

// ID reports the shard's index.
func (s *EngineShard) ID() int { return s.id }

// Now reports the shard-local clock: the timestamp of the last event fired
// on this shard.
func (s *EngineShard) Now() Cycles { return s.eng.Now() }

// Fired reports the number of events dispatched on this shard.
func (s *EngineShard) Fired() uint64 { return s.eng.Fired() }

// At schedules fn at when on this shard with the given order key. It is
// the shard-local analogue of Engine.AtOrdered (same past-scheduling and
// capacity panics) and may only be called before Run or from a callback
// executing on this shard.
func (s *EngineShard) At(when Cycles, order uint64, fn func()) Handle {
	return s.eng.AtOrdered(when, order, fn)
}

// Cancel removes a pending event scheduled on this shard. Like At, it may
// only be called before Run or from a callback executing on this shard.
func (s *EngineShard) Cancel(h Handle) bool { return s.eng.Cancel(h) }

// Post schedules fn at when on shard dst. The message is buffered and
// merged at the end of the current window; when must lie at or beyond the
// window end (the lookahead guarantee), and a violation panics — it means
// an event tried to affect another shard within the same window, which the
// conservative synchronization cannot order.
//
// Posting to the shard itself is allowed (the message simply takes the
// merge path); models normally use At for shard-local work instead, which
// also permits delays below the lookahead.
func (s *EngineShard) Post(dst int, when Cycles, order uint64, fn func()) {
	p := s.pe
	if dst < 0 || dst >= len(p.shards) {
		panic(fmt.Sprintf("sim: post to shard %d out of range [0,%d)", dst, len(p.shards)))
	}
	if when < p.windowEnd {
		panic(fmt.Sprintf(
			"sim: lookahead violation: cross-shard event at %d inside the executing window ending at %d (lookahead %d)",
			when, p.windowEnd, p.lookahead))
	}
	s.outbox = append(s.outbox, post{dst: dst, when: when, order: order, fn: fn})
}
