package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events fire in (time, sequence) order;
// sequence is assigned at scheduling time, so two events scheduled for the
// same cycle fire in the order they were scheduled. This makes runs
// bit-reproducible, which the tests and the calibration harness rely on.
type Event struct {
	when  Cycles
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped or canceled
}

// When reports the cycle at which the event is (or was) scheduled to fire.
func (e *Event) When() Cycles { return e.when }

// eventQueue is a min-heap ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulator. The zero value is not
// ready to use; construct one with NewEngine.
type Engine struct {
	now     Cycles
	seq     uint64
	queue   eventQueue
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at cycle zero and an empty
// event queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Cycles { return e.now }

// Fired reports the number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute cycle when. Scheduling in the past
// panics: the simulator has no mechanism for retroactive causality, so such
// a call is always a modeling bug.
func (e *Engine) At(when Cycles, fn func()) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %d, before now %d", when, e.now))
	}
	ev := &Event{when: when, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycles, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return e.At(e.now+delay, fn)
}

// Cancel removes a pending event. Canceling an event that already fired or
// was already canceled is a no-op and reports false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	return true
}

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.when
	e.fired++
	ev.fn()
	return true
}

// Run fires events until the queue drains or Stop is called. It returns the
// final simulated time.
func (e *Engine) Run() Cycles {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline, then sets the clock to
// deadline (if it has not already passed it).
func (e *Engine) RunUntil(deadline Cycles) Cycles {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].when <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Stop makes the innermost Run or RunUntil return after the current event's
// callback completes.
func (e *Engine) Stop() { e.stopped = true }
