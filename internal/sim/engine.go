package sim

import "fmt"

// Handle refers to a scheduled event. It is a small value (copyable, unlike
// the old *Event) encoding the event's arena slot and a generation tag: the
// tag makes a stale handle — one whose event already fired or was cancelled,
// and whose slot has since been reused — harmlessly invalid instead of
// aliasing the new occupant (no ABA). The zero Handle refers to nothing;
// cancelling it is a no-op.
type Handle struct {
	ref uint64 // (slot+1)<<32 | generation
}

// valid handles encode slot+1 so the zero Handle never matches slot 0.
func makeHandle(slot int32, gen uint32) Handle {
	return Handle{uint64(slot+1)<<32 | uint64(gen)}
}

// event is one arena slot. Slots are recycled through the free-list; gen
// counts recycles so stale Handles can be rejected in O(1).
type event struct {
	when  Cycles
	order uint64
	seq   uint64
	fn    func()
	gen   uint32
	pos   int32 // index in the heap; -1 once fired or cancelled
}

// Engine is a deterministic discrete-event simulator. Events fire in
// (time, order, sequence) order; the order key is 0 for the sequential API
// (At, After) and sequence is assigned at scheduling time, so two events
// scheduled for the same cycle fire in the order they were scheduled —
// exactly the historical (time, sequence) behaviour. This makes runs
// bit-reproducible, which the tests and the calibration harness rely on.
// Model-supplied order keys (AtOrdered) exist for the parallel engine,
// whose cross-shard determinism needs a tie-break that does not depend on
// message delivery timing.
//
// The queue is an index-based 4-ary min-heap over a flat event arena with a
// free-list: scheduling and firing are allocation-free in steady state
// (once the arena and heap slices have grown to the high-water mark), where
// the previous container/heap implementation allocated one *Event per
// Schedule and churned an []any through heap.Push/Pop. The 4-ary layout
// halves the tree depth of a binary heap and keeps sift-down children on
// one cache line.
//
// The zero value is not ready to use; construct one with NewEngine. An
// Engine must not be copied: the copy would share the arena and heap
// backing arrays with the original while maintaining divergent length and
// free-list bookkeeping.
type Engine struct {
	now     Cycles
	seq     uint64
	events  []event // arena; Handles and the heap index into it
	free    []int32 // recycled arena slots
	heap    []int32 // 4-ary min-heap of arena slots, ordered by (when, order, seq)
	stopped bool
	fired   uint64
	retired uint64 // slots permanently withdrawn after generation wrap
}

// MaxArenaSlots is the hard capacity of the event arena. Slots are indexed
// by int32 in the heap and in the Handle encoding (slot+1 in the high
// word), so an Engine can hold at most this many simultaneously pending
// events; one more schedule panics loudly instead of wrapping the index
// and silently corrupting the heap.
const MaxArenaSlots = 1<<31 - 2

// maxArenaSlots is MaxArenaSlots, lowered by boundary tests that cannot
// afford to allocate 2^31 real events.
var maxArenaSlots = MaxArenaSlots

// NewEngine returns an engine with the clock at cycle zero and an empty
// event queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Cycles { return e.now }

// Fired reports the number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute cycle when. Scheduling in the past
// panics: the simulator has no mechanism for retroactive causality, so such
// a call is always a modeling bug.
func (e *Engine) At(when Cycles, fn func()) Handle {
	return e.AtOrdered(when, 0, fn)
}

// AtOrdered schedules fn at absolute cycle when with an explicit order
// key: events fire in (when, order, seq) order. The sequential API (At,
// After) passes order 0, so its same-cycle ties still resolve by
// scheduling sequence. The parallel engine's models pass unique order
// keys, making the firing order — and therefore the whole run —
// independent of when a cross-shard message happened to be merged into
// the destination queue.
//
// It panics, with the limit in the message, when the arena is full
// (MaxArenaSlots pending events) or the scheduling sequence counter is
// exhausted: both are unrecoverable capacity overflows that previously
// wrapped silently and corrupted the firing order.
func (e *Engine) AtOrdered(when Cycles, order uint64, fn func()) Handle {
	if when < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %d, before now %d", when, e.now))
	}
	if e.seq == ^uint64(0) {
		panic("sim: event sequence counter exhausted (2^64-1 events scheduled on one Engine)")
	}
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		if len(e.events) >= maxArenaSlots {
			panic(fmt.Sprintf("sim: event arena full (%d pending events; limit %d slots)",
				len(e.heap), maxArenaSlots))
		}
		e.events = append(e.events, event{})
		slot = int32(len(e.events) - 1)
	}
	ev := &e.events[slot]
	ev.when, ev.order, ev.seq, ev.fn = when, order, e.seq, fn
	e.seq++
	ev.pos = int32(len(e.heap))
	e.heap = append(e.heap, slot)
	e.siftUp(len(e.heap) - 1)
	return makeHandle(slot, ev.gen)
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycles, fn func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return e.At(e.now+delay, fn)
}

// When reports the cycle a pending event is scheduled for. It returns
// ok=false for the zero Handle and for events that already fired or were
// cancelled.
func (e *Engine) When(h Handle) (when Cycles, ok bool) {
	ev := e.lookup(h)
	if ev == nil {
		return 0, false
	}
	return ev.when, true
}

// Cancel removes a pending event. Cancelling the zero Handle, or an event
// that already fired or was already cancelled, is a no-op and reports
// false — even if the event's arena slot has been reused since (the
// generation tag distinguishes occupants).
func (e *Engine) Cancel(h Handle) bool {
	ev := e.lookup(h)
	if ev == nil {
		return false
	}
	e.heapRemove(int(ev.pos))
	e.release(ev, int32(h.ref>>32)-1)
	return true
}

// lookup resolves a Handle to its live arena slot, or nil if the handle is
// zero, stale, or out of range.
func (e *Engine) lookup(h Handle) *event {
	slot := int64(h.ref>>32) - 1
	if slot < 0 || slot >= int64(len(e.events)) {
		return nil
	}
	ev := &e.events[slot]
	if ev.gen != uint32(h.ref) || ev.pos < 0 {
		return nil
	}
	return ev
}

// release retires an arena slot: the generation bump invalidates every
// outstanding Handle to it, the callback is dropped (so the arena does not
// pin closures), and the slot rejoins the free-list.
//
// When the 32-bit generation tag wraps (after 2^32 recycles of one slot),
// a Handle minted an entire generation cycle ago would alias the slot's
// next occupant. The slot is withdrawn permanently instead of rejoining
// the free-list: pos stays -1, so every outstanding Handle to it is
// correctly stale. The arena leaks one slot per 2^32 recycles of that
// slot; if that ever exhausts the arena, the capacity guard in AtOrdered
// fails loudly rather than silently misordering events.
func (e *Engine) release(ev *event, slot int32) {
	ev.gen++
	ev.fn = nil
	ev.pos = -1
	if ev.gen == 0 {
		e.retired++
		return
	}
	e.free = append(e.free, slot)
}

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	slot := e.heap[0]
	e.heapRemove(0)
	ev := &e.events[slot]
	e.now = ev.when
	fn := ev.fn
	e.release(ev, slot)
	e.fired++
	fn()
	return true
}

// Run fires events until the queue drains or Stop is called. It returns the
// final simulated time.
func (e *Engine) Run() Cycles {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline, then sets the clock to
// deadline (if it has not already passed it).
func (e *Engine) RunUntil(deadline Cycles) Cycles {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 && e.events[e.heap[0]].when <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Stop makes the innermost Run or RunUntil return after the current event's
// callback completes.
func (e *Engine) Stop() { e.stopped = true }

// PeekWhen reports the timestamp of the earliest pending event. ok is
// false when the queue is empty. The parallel engine uses it to compute
// the global lower time bound across shards.
func (e *Engine) PeekWhen() (when Cycles, ok bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.events[e.heap[0]].when, true
}

// runBefore fires events with timestamps strictly before end. Unlike
// RunUntil it leaves the clock at the last fired event rather than
// advancing it to end: a parallel-engine shard may later receive
// cross-shard events timed inside a later window that starts before end.
func (e *Engine) runBefore(end Cycles) {
	for len(e.heap) > 0 && e.events[e.heap[0]].when < end {
		e.Step()
	}
}

// --- 4-ary heap over e.heap, ordered by (when, order, seq) ---

const heapArity = 4

// less orders two arena slots by (when, order, seq). seq is unique, so the
// order is total and the firing sequence is independent of heap shape —
// the property that keeps every run byte-identical to the old binary
// container/heap implementation. Sequentially scheduled events all carry
// order 0, so for them the comparison reduces to the historical
// (when, seq).
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.events[a], &e.events[b]
	if ea.when != eb.when {
		return ea.when < eb.when
	}
	if ea.order != eb.order {
		return ea.order < eb.order
	}
	return ea.seq < eb.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	slot := h[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !e.less(slot, h[parent]) {
			break
		}
		h[i] = h[parent]
		e.events[h[i]].pos = int32(i)
		i = parent
	}
	h[i] = slot
	e.events[slot].pos = int32(i)
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	slot := h[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(h[c], h[best]) {
				best = c
			}
		}
		if !e.less(h[best], slot) {
			break
		}
		h[i] = h[best]
		e.events[h[i]].pos = int32(i)
		i = best
	}
	h[i] = slot
	e.events[slot].pos = int32(i)
}

// heapRemove deletes the element at heap position i, preserving the heap
// invariant in O(arity · log n).
func (e *Engine) heapRemove(i int) {
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if i == n {
		return
	}
	e.heap[i] = last
	e.events[last].pos = int32(i)
	e.siftDown(i)
	e.siftUp(i)
}
