package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

// Property: for any mix of schedules and cancellations, the engine fires
// exactly the non-canceled events, in nondecreasing time order, with
// same-time events in scheduling order.
func TestEngineScheduleCancelProperty(t *testing.T) {
	f := func(times []uint16, cancelMask []bool) bool {
		e := NewEngine()
		type fired struct {
			when Cycles
			seq  int
		}
		var log []fired
		events := make([]Handle, len(times))
		for i, tm := range times {
			i, tm := i, Cycles(tm)
			events[i] = e.At(tm, func() { log = append(log, fired{tm, i}) })
		}
		canceled := map[int]bool{}
		for i := range cancelMask {
			if i < len(events) && cancelMask[i] {
				e.Cancel(events[i])
				canceled[i] = true
			}
		}
		e.Run()
		// Exactly the non-canceled events fired.
		if len(log) != len(times)-len(canceled) {
			return false
		}
		seen := map[int]bool{}
		for _, f := range log {
			if canceled[f.seq] || seen[f.seq] {
				return false
			}
			seen[f.seq] = true
		}
		// Time order, with scheduling order within ties.
		for i := 1; i < len(log); i++ {
			if log[i].when < log[i-1].when {
				return false
			}
			if log[i].when == log[i-1].when && log[i].seq < log[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil fires exactly the events at or before the deadline,
// and a subsequent Run fires the rest.
func TestEngineRunUntilPartitionProperty(t *testing.T) {
	f := func(times []uint16, deadline uint16) bool {
		e := NewEngine()
		var before, after int
		d := Cycles(deadline)
		for _, tm := range times {
			tm := Cycles(tm)
			if tm <= d {
				e.At(tm, func() { before++ })
			} else {
				e.At(tm, func() { after++ })
			}
		}
		wantBefore := 0
		for _, tm := range times {
			if Cycles(tm) <= d {
				wantBefore++
			}
		}
		e.RunUntil(d)
		if before != wantBefore || after != 0 {
			return false
		}
		e.Run()
		return after == len(times)-wantBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the RNG's Intn outputs over a window cover the range with a
// roughly uniform histogram (chi-square sanity, loose bound).
func TestRNGUniformityProperty(t *testing.T) {
	r := NewRNG(12345)
	const buckets = 16
	const n = 160000
	var hist [buckets]int
	for i := 0; i < n; i++ {
		hist[r.Intn(buckets)]++
	}
	want := n / buckets
	for b, c := range hist {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d count %d far from %d", b, c, want)
		}
	}
}

// Property: sorted event timestamps equal the sorted input timestamps
// (nothing lost, nothing invented).
func TestEngineTimestampConservation(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var got []uint16
		for _, tm := range times {
			tm := tm
			e.At(Cycles(tm), func() { got = append(got, tm) })
		}
		e.Run()
		want := append([]uint16(nil), times...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
