package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimelineAccounting(t *testing.T) {
	var tl Timeline
	tl.AddInterval(StateCompute, 1000, 50) // 1000ns at 50W = 50uJ
	tl.AddInterval(StateSpin, 500, 42.5)
	tl.AddInterval(StateCompute, 200, 50)

	if got := tl.Time(StateCompute); got != 1200 {
		t.Errorf("compute time = %d, want 1200", got)
	}
	if got := tl.Time(StateSpin); got != 500 {
		t.Errorf("spin time = %d, want 500", got)
	}
	wantE := 50*1200e-9 + 42.5*500e-9
	if got := tl.TotalEnergy(); math.Abs(got-wantE) > 1e-15 {
		t.Errorf("total energy = %v, want %v", got, wantE)
	}
	if got := tl.TotalTime(); got != 1700 {
		t.Errorf("total time = %d, want 1700", got)
	}
}

func TestTimelineNegativeIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative interval did not panic")
		}
	}()
	var tl Timeline
	tl.AddInterval(StateSleep, -1, 1)
}

func TestTimelineAddEnergy(t *testing.T) {
	var tl Timeline
	tl.AddEnergy(StateCompute, 1e-6)
	if got := tl.Energy(StateCompute); math.Abs(got-1e-6) > 1e-18 {
		t.Errorf("energy = %v, want 1e-6", got)
	}
	if tl.Time(StateCompute) != 0 {
		t.Error("AddEnergy advanced time")
	}
}

func TestTimelineAdd(t *testing.T) {
	var a, b Timeline
	a.AddInterval(StateCompute, 100, 10)
	b.AddInterval(StateCompute, 200, 10)
	b.AddInterval(StateSleep, 50, 1)
	a.Add(&b)
	if a.Time(StateCompute) != 300 {
		t.Errorf("merged compute time = %d, want 300", a.Time(StateCompute))
	}
	if a.Time(StateSleep) != 50 {
		t.Errorf("merged sleep time = %d, want 50", a.Time(StateSleep))
	}
}

func TestTimelineReset(t *testing.T) {
	var tl Timeline
	tl.AddInterval(StateSpin, 10, 5)
	tl.Reset()
	if tl.TotalTime() != 0 || tl.TotalEnergy() != 0 {
		t.Error("Reset did not zero the timeline")
	}
}

// Property: total time equals the sum of per-state times, and energy is
// additive, for arbitrary interval sequences.
func TestTimelineAdditivityProperty(t *testing.T) {
	f := func(durs []uint16, states []uint8) bool {
		var tl Timeline
		var wantTime Cycles
		n := len(durs)
		if len(states) < n {
			n = len(states)
		}
		for i := 0; i < n; i++ {
			s := State(states[i] % uint8(numStates))
			d := Cycles(durs[i])
			tl.AddInterval(s, d, 1.0)
			wantTime += d
		}
		if tl.TotalTime() != wantTime {
			return false
		}
		var perState Cycles
		for s := State(0); s < numStates; s++ {
			perState += tl.Time(s)
		}
		return perState == wantTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		StateCompute:    "Compute",
		StateSpin:       "Spin",
		StateTransition: "Transition",
		StateSleep:      "Sleep",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("State %d = %q, want %q", s, s.String(), w)
		}
	}
}
