package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	a := parent.Split(1)
	b := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d/100 times", same)
	}
	// Splitting must not advance the parent.
	p1 := NewRNG(7)
	p1.Split(1)
	p2 := NewRNG(7)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(5)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestRNGParetoLowerBound(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2.5, 3.0); v < 3.0 {
			t.Fatalf("Pareto(2.5, 3) = %v below scale", v)
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Errorf("Bool(0.25) hit rate = %v", p)
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	r := NewRNG(23)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}
