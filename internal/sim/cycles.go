// Package sim provides the deterministic discrete-event simulation kernel
// that underlies the CC-NUMA multiprocessor model: a simulated clock in
// processor cycles, a stable-ordered event queue, seeded random-number
// streams, and a per-component state timeline recorder used by the energy
// accounting layer.
//
// The modeled machine runs at 1 GHz (Table 1 of the paper), so one cycle is
// exactly one nanosecond; Cycles doubles as a nanosecond count.
package sim

import (
	"fmt"
	"time"
)

// Cycles counts processor clock cycles at the nominal 1 GHz system
// frequency. All timing in the simulator — including the transition
// latencies of low-power sleep states — is expressed in Cycles.
type Cycles int64

// Frequency is the nominal clock frequency of every processor in the
// modeled system. The paper assumes all processors run at the same nominal
// frequency so that base cycle counts are meaningful system-wide (§3.2.1).
const Frequency = 1_000_000_000 // 1 GHz

// Common conversions at 1 GHz.
const (
	Nanosecond  Cycles = 1
	Microsecond Cycles = 1_000
	Millisecond Cycles = 1_000_000
	Second      Cycles = 1_000_000_000
)

// Duration converts a cycle count to wall-clock time at the nominal
// frequency.
func (c Cycles) Duration() time.Duration {
	return time.Duration(c) * time.Nanosecond
}

// Micros reports the cycle count as (possibly fractional) microseconds.
func (c Cycles) Micros() float64 { return float64(c) / float64(Microsecond) }

// Seconds reports the cycle count as seconds.
func (c Cycles) Seconds() float64 { return float64(c) / float64(Second) }

func (c Cycles) String() string {
	switch {
	case c >= Second:
		return fmt.Sprintf("%.3fs", c.Seconds())
	case c >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(c)/float64(Millisecond))
	case c >= Microsecond:
		return fmt.Sprintf("%.3fus", c.Micros())
	default:
		return fmt.Sprintf("%dcy", int64(c))
	}
}

// FromDuration converts wall-clock time to cycles at the nominal frequency.
func FromDuration(d time.Duration) Cycles { return Cycles(d.Nanoseconds()) }

// MaxCycles is a sentinel "never" timestamp.
const MaxCycles = Cycles(1<<63 - 1)
