package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refQueue reimplement the engine's previous container/heap
// priority queue (binary heap over *Event pointers). The differential test
// below pins the new flat 4-ary heap to this reference on random
// schedule/cancel sequences: both must yield the same (when, seq) firing
// order, which is what keeps simulator runs byte-identical across the
// rewrite.
type refEvent struct {
	when  Cycles
	seq   uint64
	index int
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *refQueue) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

type refEngine struct {
	now   Cycles
	seq   uint64
	queue refQueue
}

func (e *refEngine) at(when Cycles) *refEvent {
	ev := &refEvent{when: when, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

func (e *refEngine) cancel(ev *refEvent) bool {
	if ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	return true
}

func (e *refEngine) step() (uint64, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	ev := heap.Pop(&e.queue).(*refEvent)
	ev.index = -1
	e.now = ev.when
	return ev.seq, true
}

// Differential property: drive the new engine and the container/heap
// reference through identical random schedule / cancel / step sequences and
// require the exact same firing order (identified by schedule sequence
// number) at every step.
func TestEngineMatchesContainerHeapReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		ref := &refEngine{}

		type pair struct {
			h  Handle
			r  *refEvent
			id uint64
		}
		var live []pair
		var gotOrder, wantOrder []uint64

		const ops = 4000
		for op := 0; op < ops; op++ {
			switch r := rng.Intn(10); {
			case r < 5: // schedule
				when := e.Now() + Cycles(rng.Intn(50))
				id := ref.seq
				var h Handle
				if rng.Intn(2) == 0 {
					h = e.At(when, func() { gotOrder = append(gotOrder, id) })
				} else {
					h = e.After(when-e.Now(), func() { gotOrder = append(gotOrder, id) })
				}
				live = append(live, pair{h, ref.at(when), id})
			case r < 7: // cancel a random live (or possibly dead) handle
				if len(live) == 0 {
					continue
				}
				p := live[rng.Intn(len(live))]
				got := e.Cancel(p.h)
				want := ref.cancel(p.r)
				if got != want {
					t.Fatalf("seed %d op %d: Cancel(id=%d) = %v, reference = %v",
						seed, op, p.id, got, want)
				}
			default: // fire the earliest event
				before := len(gotOrder)
				got := e.Step()
				id, want := ref.step()
				if got != want {
					t.Fatalf("seed %d op %d: Step = %v, reference = %v", seed, op, got, want)
				}
				if want {
					wantOrder = append(wantOrder, id)
					if len(gotOrder) != before+1 || gotOrder[len(gotOrder)-1] != id {
						t.Fatalf("seed %d op %d: fired id %v, reference fired %d",
							seed, op, gotOrder[before:], id)
					}
					if e.Now() != ref.now {
						t.Fatalf("seed %d op %d: now = %d, reference now = %d",
							seed, op, e.Now(), ref.now)
					}
				}
			}
		}
		// Drain both queues and compare the tail order too.
		for {
			id, want := ref.step()
			got := e.Step()
			if got != want {
				t.Fatalf("seed %d drain: Step = %v, reference = %v", seed, got, want)
			}
			if !want {
				break
			}
			wantOrder = append(wantOrder, id)
		}
		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("seed %d: fired %d events, reference fired %d",
				seed, len(gotOrder), len(wantOrder))
		}
		for i := range wantOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("seed %d: firing order diverges at %d: got %d, want %d",
					seed, i, gotOrder[i], wantOrder[i])
			}
		}
	}
}
