package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (xorshift64* — Vigna 2016) with the distribution helpers the workload
// generators need. Each consumer gets its own stream so that adding a new
// consumer never perturbs the draws seen by existing ones.
type RNG struct {
	state uint64
	// spare holds a cached second normal variate from Box–Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed odd constant because xorshift has an all-zeros fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Split derives an independent stream from this one, keyed by id, without
// advancing this stream. Two Splits with distinct ids produce distinct
// streams deterministically.
func (r *RNG) Split(id uint64) *RNG {
	// SplitMix64 finalizer over (state ^ id) decorrelates the child stream.
	z := r.state ^ (id+1)*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return &RNG{state: z}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Pareto returns a Pareto(shape alpha, scale xm) variate. Heavy-tailed
// skew of per-thread compute times is what creates barrier imbalance, and
// a Pareto tail matches the "one straggler dominates" behaviour of the
// imbalanced SPLASH-2 applications.
func (r *RNG) Pareto(alpha, xm float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// LogNormal returns a log-normal variate with the given log-space mean and
// standard deviation.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}
