package coherence

import (
	"testing"

	"thriftybarrier/internal/mem/cache"
	"thriftybarrier/internal/mem/dram"
	"thriftybarrier/internal/mem/noc"
	"thriftybarrier/internal/sim"
)

func newProto(t testing.TB) *Protocol {
	t.Helper()
	cfg := DefaultConfig()
	net := noc.New(noc.DefaultConfig())
	place := dram.NewPlacement(cfg.Nodes, 4096)
	return New(cfg, net, place)
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := cfg
	bad.Nodes = 48
	if bad.Validate() == nil {
		t.Error("48 nodes accepted")
	}
	bad = cfg
	bad.L1.LineBytes = 32
	if bad.Validate() == nil {
		t.Error("mismatched line sizes accepted")
	}
}

func TestColdReadGetsExclusive(t *testing.T) {
	p := newProto(t)
	res := p.Read(0, 0x1000, 0)
	if res.Level != 3 {
		t.Fatalf("cold read level = %d, want 3", res.Level)
	}
	if st, ok := p.L1(0).Peek(0x1000); !ok || st != cache.Exclusive {
		t.Fatalf("L1 state after cold read = %v,%v; want E", st, ok)
	}
	if st, ok := p.L2(0).Peek(0x1000); !ok || st != cache.Exclusive {
		t.Fatalf("L2 state after cold read = %v,%v; want E", st, ok)
	}
}

func TestReadHitLatencies(t *testing.T) {
	p := newProto(t)
	p.Read(0, 0x1000, 0)
	res := p.Read(0, 0x1000, 100)
	if res.Level != 1 || res.Latency != p.Config().L1Hit {
		t.Fatalf("L1 hit: level=%d latency=%v", res.Level, res.Latency)
	}
}

func TestSecondReaderSharesAndDowngradesOwner(t *testing.T) {
	p := newProto(t)
	p.Read(0, 0x1000, 0)
	p.Write(0, 0x1000, 10) // node 0 now Modified
	res := p.Read(1, 0x1000, 100)
	if res.Level != 3 {
		t.Fatalf("remote read level = %d, want 3", res.Level)
	}
	st0, _ := p.L2(0).Peek(0x1000)
	st1, _ := p.L2(1).Peek(0x1000)
	if st0 != cache.Shared || st1 != cache.Shared {
		t.Fatalf("states after sharing = %v/%v, want S/S", st0, st1)
	}
	s := p.Stats()
	if s.Forwards != 1 {
		t.Fatalf("forwards = %d, want 1", s.Forwards)
	}
	if s.Writebacks == 0 {
		t.Fatal("dirty owner forward did not write back")
	}
}

func TestWriteOnExclusiveIsSilent(t *testing.T) {
	p := newProto(t)
	p.Read(0, 0x1000, 0)
	before := p.Stats().InvalidationsSent
	res := p.Write(0, 0x1000, 10)
	if res.Latency != p.Config().L1Hit {
		t.Fatalf("E->M upgrade latency = %v, want L1 hit", res.Latency)
	}
	if p.Stats().InvalidationsSent != before {
		t.Fatal("silent upgrade sent invalidations")
	}
	if st, _ := p.L2(0).Peek(0x1000); st != cache.Modified {
		t.Fatalf("L2 state = %v, want M", st)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	p := newProto(t)
	const addr = 0x2000
	for n := 0; n < 8; n++ {
		p.Read(n, addr, sim.Cycles(n*10))
	}
	now := sim.Cycles(1000)
	res := p.Write(3, addr, now)
	if got := len(res.Invalidations); got != 7 {
		t.Fatalf("invalidations = %d, want 7", got)
	}
	for _, d := range res.Invalidations {
		if d.Node == 3 {
			t.Error("writer invalidated itself")
		}
		if d.At <= now {
			t.Errorf("invalidation at %v not after write start %v", d.At, now)
		}
		if st, ok := p.L2(d.Node).Peek(addr); ok && st.Valid() {
			t.Errorf("node %d still holds line after invalidation (%v)", d.Node, st)
		}
	}
	if st, _ := p.L2(3).Peek(addr); st != cache.Modified {
		t.Fatalf("writer state = %v, want M", st)
	}
	// Subsequent read by an invalidated sharer misses.
	if res := p.Read(5, addr, now+10000); res.Level != 3 {
		t.Fatalf("post-invalidation read level = %d, want 3", res.Level)
	}
}

func TestMonitorFiresOnInvalidation(t *testing.T) {
	p := newProto(t)
	const flag = 0x3000
	p.Read(7, flag, 0) // node 7 becomes a sharer
	p.Read(2, flag, 1)
	var firedAt sim.Cycles = -1
	p.Monitor(7, flag, func(at sim.Cycles) { firedAt = at })
	res := p.Write(2, flag, 500)
	if firedAt < 0 {
		t.Fatal("monitor did not fire")
	}
	found := false
	for _, d := range res.Invalidations {
		if d.Node == 7 && d.At == firedAt {
			found = true
		}
	}
	if !found {
		t.Fatalf("monitor fire time %v does not match a delivery %v", firedAt, res.Invalidations)
	}
	if p.Stats().MonitorFires != 1 {
		t.Fatalf("monitor fires = %d, want 1", p.Stats().MonitorFires)
	}
}

func TestMonitorCancel(t *testing.T) {
	p := newProto(t)
	const flag = 0x3000
	p.Read(7, flag, 0)
	p.Read(2, flag, 1)
	fired := false
	cancel := p.Monitor(7, flag, func(sim.Cycles) { fired = true })
	cancel()
	p.Write(2, flag, 500)
	if fired {
		t.Fatal("canceled monitor fired")
	}
}

func TestMonitorIsOneShot(t *testing.T) {
	p := newProto(t)
	const flag = 0x3000
	fires := 0
	p.Read(7, flag, 0)
	p.Read(2, flag, 1)
	p.Monitor(7, flag, func(sim.Cycles) { fires++ })
	p.Write(2, flag, 500)
	// Re-share and invalidate again: monitor must not re-fire.
	p.Read(7, flag, 1000)
	p.Write(2, flag, 1500)
	if fires != 1 {
		t.Fatalf("monitor fired %d times, want 1", fires)
	}
}

func TestDuplicateMonitorPanics(t *testing.T) {
	p := newProto(t)
	p.Monitor(1, 0x40, func(sim.Cycles) {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate monitor did not panic")
		}
	}()
	p.Monitor(1, 0x40, func(sim.Cycles) {})
}

func TestFlushForSleep(t *testing.T) {
	p := newProto(t)
	// Dirty a few lines on node 4.
	for i := 0; i < 10; i++ {
		addr := uint64(0x8000 + i*64)
		p.Read(4, addr, sim.Cycles(i))
		p.Write(4, addr, sim.Cycles(100+i))
	}
	if p.DirtyLines(4) != 10 {
		t.Fatalf("dirty lines = %d, want 10", p.DirtyLines(4))
	}
	lines, lat := p.FlushForSleep(4, 1000)
	if lines != 10 {
		t.Fatalf("flushed %d lines, want 10", lines)
	}
	if lat <= 0 {
		t.Fatal("flush latency not positive")
	}
	if p.DirtyLines(4) != 0 {
		t.Fatal("dirty lines remain after flush")
	}
	p.SetGated(4, true)
	// Another node can now write those lines without forwarding to node 4.
	for i := 0; i < 10; i++ {
		p.Write(5, uint64(0x8000+i*64), sim.Cycles(2000+i))
	}
	p.SetGated(4, false)
	// Flushed lines are compulsory misses for node 4 afterwards.
	if res := p.Read(4, 0x8000, 5000); res.Level != 3 {
		t.Fatalf("post-flush read level = %d, want 3 (compulsory miss)", res.Level)
	}
}

func TestFlushDowngradesCleanExclusive(t *testing.T) {
	p := newProto(t)
	p.Read(4, 0x9000, 0) // Exclusive clean
	lines, _ := p.FlushForSleep(4, 100)
	if lines != 0 {
		t.Fatalf("clean flush wrote back %d lines", lines)
	}
	p.SetGated(4, true)
	// A remote read must be served by memory, not a forward to node 4.
	res := p.Read(5, 0x9000, 200)
	if res.Level != 3 {
		t.Fatalf("remote read level = %d", res.Level)
	}
	if p.Stats().Forwards != 0 {
		t.Fatal("read forwarded to a gated node")
	}
	p.SetGated(4, false)
}

func TestForwardToGatedNodePanics(t *testing.T) {
	p := newProto(t)
	p.Read(4, 0xA000, 0)
	p.Write(4, 0xA000, 10) // dirty on node 4
	p.SetGated(4, true)    // WRONG: no flush first
	defer func() {
		if recover() == nil {
			t.Error("forward to gated node did not panic")
		}
	}()
	p.Read(5, 0xA000, 100)
}

func TestGatedInvalidationAcked(t *testing.T) {
	p := newProto(t)
	const flag = 0xB000
	p.Read(6, flag, 0) // node 6 shares the flag
	p.Read(1, flag, 1)
	p.FlushForSleep(6, 10)
	p.SetGated(6, true)
	p.Write(1, flag, 100) // invalidation to gated node 6: clean data, acked
	if p.Stats().GatedInvalidationAcks == 0 {
		t.Fatal("gated invalidation was not acked by the controller")
	}
	p.SetGated(6, false)
}

func TestRemoteLatencyExceedsLocal(t *testing.T) {
	p := newProto(t)
	place := dram.NewPlacement(64, 4096)
	// Find an address homed at node 0 and one homed far away (node 63).
	var local, remote uint64
	for a := uint64(0); ; a += 4096 {
		if place.Home(a) == 0 && local == 0 {
			local = a + 64 // skip 0 to avoid "unset" ambiguity
		}
		if place.Home(a) == 63 {
			remote = a
			break
		}
	}
	resLocal := p.Read(0, local, 0)
	resRemote := p.Read(0, remote, 0)
	if resRemote.Latency <= resLocal.Latency {
		t.Fatalf("remote fill (%v) not slower than local fill (%v)", resRemote.Latency, resLocal.Latency)
	}
}

// Single-writer invariant: after any interleaving of reads and writes, at
// most one node holds a line in M/E state, and if one does, no other node
// holds it at all.
func TestSingleWriterInvariant(t *testing.T) {
	p := newProto(t)
	rng := sim.NewRNG(99)
	const line = 0xC0C0
	for i := 0; i < 2000; i++ {
		n := rng.Intn(8)
		if rng.Bool(0.3) {
			p.Write(n, line, sim.Cycles(i*10))
		} else {
			p.Read(n, line, sim.Cycles(i*10))
		}
		owners, sharers := 0, 0
		for node := 0; node < 8; node++ {
			if st, ok := p.L2(node).Peek(line); ok {
				switch st {
				case cache.Modified, cache.Exclusive:
					owners++
				case cache.Shared:
					sharers++
				}
			}
		}
		if owners > 1 {
			t.Fatalf("step %d: %d owners", i, owners)
		}
		if owners == 1 && sharers > 0 {
			t.Fatalf("step %d: owner coexists with %d sharers", i, sharers)
		}
	}
}

// Inclusion invariant: every valid L1 line is also valid in L2.
func TestInclusionInvariant(t *testing.T) {
	p := newProto(t)
	rng := sim.NewRNG(123)
	for i := 0; i < 5000; i++ {
		n := rng.Intn(4)
		addr := uint64(rng.Intn(1<<14)) << 6
		if rng.Bool(0.4) {
			p.Write(n, addr, sim.Cycles(i*5))
		} else {
			p.Read(n, addr, sim.Cycles(i*5))
		}
	}
	// Check inclusion by probing every address we might have touched.
	for n := 0; n < 4; n++ {
		for a := uint64(0); a < 1<<20; a += 64 {
			if st, ok := p.L1(n).Peek(a); ok && st.Valid() {
				if st2, ok2 := p.L2(n).Peek(a); !ok2 || !st2.Valid() {
					t.Fatalf("node %d: L1 holds %#x (%v) but L2 does not", n, a, st)
				}
			}
		}
	}
}
