// Package coherence implements a DASH-style directory-based MESI protocol
// over the two-level per-node cache hierarchy, the hypercube network, and
// the interleaved memories (Table 1 / §4.1 of the paper). It is the
// substrate the thrifty barrier leverages for its external wake-up: the
// invalidations sent when the last thread flips the barrier flag are
// delivered per-sharer with real network latencies, and registered monitors
// (the paper's small cache-controller extension, §3.3.1) observe them.
//
// Transactions are resolved analytically — each access computes its
// completion latency and the delivery schedule of any invalidations it
// generated — rather than as per-message events. This keeps 64-CPU runs
// fast while still routing every protocol action through the real
// directory state, cache tags, NoC latency model, and DRAM timing.
package coherence

import (
	"fmt"
	"math/bits"

	"thriftybarrier/internal/mem/cache"
	"thriftybarrier/internal/mem/dram"
	"thriftybarrier/internal/mem/noc"
	"thriftybarrier/internal/sim"
)

// Config describes the per-node hierarchy and controller timings.
type Config struct {
	Nodes int
	L1    cache.Config
	L2    cache.Config
	// L1Hit and L2Hit are minimum round-trip latencies from the processor
	// (Table 1: 2 ns and 12 ns).
	L1Hit sim.Cycles
	L2Hit sim.Cycles
	// DirLookup is the home-directory occupancy per transaction.
	DirLookup sim.Cycles
	// Bus is the node-local memory-bus transfer time for one cache line
	// (Table 1: split-transaction, 16 B wide, 250 MHz => 64 B in 16 ns).
	Bus sim.Cycles
	// CtrlBytes and DataBytes size protocol messages for the NoC model.
	CtrlBytes int
	DataBytes int
}

// DefaultConfig reproduces Table 1 for a 64-node machine.
func DefaultConfig() Config {
	return Config{
		Nodes:     64,
		L1:        cache.Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 2},
		L2:        cache.Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8},
		L1Hit:     2 * sim.Nanosecond,
		L2Hit:     12 * sim.Nanosecond,
		DirLookup: 4 * sim.Nanosecond,
		Bus:       16 * sim.Nanosecond,
		CtrlBytes: 8,
		DataBytes: 72, // 64B line + 8B header
	}
}

// Validate reports an error for impossible configurations.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.Nodes > 1024 || c.Nodes&(c.Nodes-1) != 0 {
		return fmt.Errorf("coherence: node count %d not a power of two in [1,1024]", c.Nodes)
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if c.L1.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("coherence: L1/L2 line sizes differ (%d vs %d)", c.L1.LineBytes, c.L2.LineBytes)
	}
	if c.L1Hit < 0 || c.L2Hit < c.L1Hit || c.DirLookup < 0 || c.Bus < 0 {
		return fmt.Errorf("coherence: inconsistent latencies in %+v", c)
	}
	return nil
}

// sharerSet is a bitvector over the node space. The common ≤64-node case
// stays a single word; larger machines (the sharded core model runs to
// 1024 nodes) grow extra words lazily. forEach visits set bits in
// ascending node order, which keeps invalidation delivery order — and
// therefore the simulation — deterministic.
type sharerSet struct {
	word uint64   // nodes 0..63
	ext  []uint64 // nodes 64..; word i covers 64*(i+1)..64*(i+2)-1
}

func (s *sharerSet) has(n int) bool {
	if n < 64 {
		return s.word&(1<<uint(n)) != 0
	}
	i := n/64 - 1
	return i < len(s.ext) && s.ext[i]&(1<<uint(n%64)) != 0
}

func (s *sharerSet) add(n int) {
	if n < 64 {
		s.word |= 1 << uint(n)
		return
	}
	i := n/64 - 1
	for len(s.ext) <= i {
		s.ext = append(s.ext, 0)
	}
	s.ext[i] |= 1 << uint(n%64)
}

func (s *sharerSet) remove(n int) {
	if n < 64 {
		s.word &^= 1 << uint(n)
		return
	}
	if i := n/64 - 1; i < len(s.ext) {
		s.ext[i] &^= 1 << uint(n%64)
	}
}

func (s *sharerSet) empty() bool {
	if s.word != 0 {
		return false
	}
	for _, w := range s.ext {
		if w != 0 {
			return false
		}
	}
	return true
}

func (s *sharerSet) clear() {
	s.word = 0
	for i := range s.ext {
		s.ext[i] = 0
	}
}

func (s *sharerSet) count() int {
	c := bits.OnesCount64(s.word)
	for _, w := range s.ext {
		c += bits.OnesCount64(w)
	}
	return c
}

func (s *sharerSet) forEach(f func(int)) {
	for v := s.word; v != 0; v &= v - 1 {
		f(bits.TrailingZeros64(v))
	}
	for i, w := range s.ext {
		for v := w; v != 0; v &= v - 1 {
			f(64*(i+1) + bits.TrailingZeros64(v))
		}
	}
}

// dirState is the directory's view of a line.
type dirState uint8

const (
	dirUncached dirState = iota
	dirShared
	dirExclusive // single owner, possibly dirty
)

type dirEntry struct {
	state   dirState
	owner   int
	sharers sharerSet
}

// Delivery is one invalidation (or downgrade) message en route to a sharer,
// with its absolute arrival time. The thrifty barrier's external wake-up
// turns these into wake events.
type Delivery struct {
	Node int
	At   sim.Cycles
}

// AccessResult describes one completed processor access.
type AccessResult struct {
	// Latency is the completion latency seen by the requesting processor.
	Latency sim.Cycles
	// Invalidations lists sharer invalidations generated by this access,
	// with absolute delivery times.
	Invalidations []Delivery
	// Level records where the access was satisfied: 1, 2, or 3 (beyond L2).
	Level int
}

// monitorKey identifies a registered flag monitor.
type monitorKey struct {
	node int
	line uint64
}

// Protocol is the machine-wide coherence engine: all directories, caches,
// and memories, plus the monitor registry used for external wake-up.
type Protocol struct {
	cfg   Config
	net   *noc.Network
	place *dram.Placement
	mems  []*dram.Memory
	l1s   []*cache.Cache
	l2s   []*cache.Cache
	dir   map[uint64]*dirEntry
	gated []bool

	monitors map[monitorKey]func(sim.Cycles)

	stats Stats
}

// Stats aggregates protocol activity.
type Stats struct {
	Reads, Writes         uint64
	L1Hits, L2Hits        uint64
	RemoteFills           uint64
	InvalidationsSent     uint64
	Forwards              uint64
	Writebacks            uint64
	FlushedLines          uint64
	MonitorFires          uint64
	GatedInvalidationAcks uint64
}

// New builds the protocol engine. The network and placement must agree with
// cfg.Nodes.
func New(cfg Config, net *noc.Network, place *dram.Placement) *Protocol {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if net.Config().Nodes != cfg.Nodes || place.Nodes() != cfg.Nodes {
		panic("coherence: network/placement node count mismatch")
	}
	p := &Protocol{
		cfg:      cfg,
		net:      net,
		place:    place,
		mems:     make([]*dram.Memory, cfg.Nodes),
		l1s:      make([]*cache.Cache, cfg.Nodes),
		l2s:      make([]*cache.Cache, cfg.Nodes),
		dir:      make(map[uint64]*dirEntry),
		gated:    make([]bool, cfg.Nodes),
		monitors: make(map[monitorKey]func(sim.Cycles)),
	}
	for i := 0; i < cfg.Nodes; i++ {
		p.mems[i] = dram.New(dram.DefaultConfig())
		p.l1s[i] = cache.New(cfg.L1)
		p.l2s[i] = cache.New(cfg.L2)
	}
	return p
}

// Config returns the protocol configuration.
func (p *Protocol) Config() Config { return p.cfg }

// Stats returns a snapshot of activity counters.
func (p *Protocol) Stats() Stats { return p.stats }

// LineAddr aligns addr to its cache line.
func (p *Protocol) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(p.cfg.L1.LineBytes) - 1)
}

func (p *Protocol) entry(line uint64) *dirEntry {
	e := p.dir[line]
	if e == nil {
		e = &dirEntry{state: dirUncached}
		p.dir[line] = e
	}
	return e
}

// Monitor registers a cache-controller flag monitor on node for the line
// containing addr (§3.3.1): fn is invoked with the absolute delivery time
// of the next invalidation of that line arriving at node. The returned
// cancel function deregisters it (used when the internal timer wins the
// hybrid race). Only one monitor per (node, line) may be active.
func (p *Protocol) Monitor(node int, addr uint64, fn func(at sim.Cycles)) (cancel func()) {
	key := monitorKey{node: node, line: p.LineAddr(addr)}
	if _, dup := p.monitors[key]; dup {
		panic(fmt.Sprintf("coherence: duplicate monitor on node %d line %#x", node, key.line))
	}
	p.monitors[key] = fn
	return func() { delete(p.monitors, key) }
}

// SetGated marks node's caches as unable to respond to protocol requests
// (deep sleep states Sleep2/Sleep3, §3.1). The caller must have flushed the
// node first (FlushForSleep); a forward to a gated node panics, because the
// paper's design guarantees it cannot happen.
func (p *Protocol) SetGated(node int, gated bool) {
	p.gated[node] = gated
}

// Gated reports whether node's caches are gated.
func (p *Protocol) Gated(node int) bool { return p.gated[node] }

// invalidateAt drops the line from node's caches and fires any monitor.
// Returns the delivery record.
func (p *Protocol) invalidateAt(node int, line uint64, at sim.Cycles) Delivery {
	p.l1s[node].Invalidate(line)
	p.l2s[node].Invalidate(line)
	if p.gated[node] {
		// The controller acknowledges invalidations to clean data
		// immediately and defers internal action (§3.1). In the model the
		// internal action is the tag update above; the timing difference is
		// unobservable while the CPU sleeps.
		p.stats.GatedInvalidationAcks++
	}
	if fn, ok := p.monitors[monitorKey{node: node, line: line}]; ok {
		p.stats.MonitorFires++
		delete(p.monitors, monitorKey{node: node, line: line})
		fn(at)
	}
	p.stats.InvalidationsSent++
	return Delivery{Node: node, At: at}
}

// fillLine installs a line in node's L1+L2 with the given state, handling
// inclusive-hierarchy evictions (L2 victim invalidates its L1 copy and, if
// dirty, is written back and its directory entry cleared).
func (p *Protocol) fillLine(node int, line uint64, st cache.LineState) {
	if v, evicted := p.l2s[node].Insert(line, st); evicted {
		p.l1s[node].Invalidate(v.Addr)
		p.evictFromDirectory(node, v.Addr, v.Dirty)
	}
	if v, evicted := p.l1s[node].Insert(line, st); evicted && v.Dirty {
		// L1 victim writes back into L2 (which must hold it — inclusion).
		p.l2s[node].SetState(v.Addr, cache.Modified)
	}
}

// evictFromDirectory updates the directory when node silently drops line
// (replacement). Dirty victims write back to the home memory.
func (p *Protocol) evictFromDirectory(node int, line uint64, dirty bool) {
	e, ok := p.dir[line]
	if !ok {
		return
	}
	switch e.state {
	case dirShared:
		e.sharers.remove(node)
		if e.sharers.empty() {
			delete(p.dir, line)
		}
	case dirExclusive:
		if e.owner == node {
			delete(p.dir, line)
			if dirty {
				p.stats.Writebacks++
				p.mems[p.place.Home(line)].Access(line)
			}
		}
	}
}

// Read performs a processor load at absolute time now and returns its
// latency and any coherence side effects.
func (p *Protocol) Read(node int, addr uint64, now sim.Cycles) AccessResult {
	p.stats.Reads++
	line := p.LineAddr(addr)
	if st, hit := p.l1s[node].Lookup(line); hit && st.Valid() {
		p.stats.L1Hits++
		return AccessResult{Latency: p.cfg.L1Hit, Level: 1}
	}
	if st, hit := p.l2s[node].Lookup(line); hit && st.Valid() {
		p.stats.L2Hits++
		p.l1s[node].Insert(line, st)
		return AccessResult{Latency: p.cfg.L2Hit, Level: 2}
	}
	return p.readMiss(node, line, now)
}

func (p *Protocol) readMiss(node int, line uint64, now sim.Cycles) AccessResult {
	p.stats.RemoteFills++
	home := p.place.Home(line)
	e := p.entry(line)
	// Request travels to the home directory.
	lat := p.cfg.L2Hit + p.net.Latency(node, home, p.cfg.CtrlBytes) + p.cfg.DirLookup

	switch e.state {
	case dirUncached:
		lat += p.mems[home].Access(line) + p.cfg.Bus
		lat += p.net.Latency(home, node, p.cfg.DataBytes)
		e.state = dirExclusive
		e.owner = node
		e.sharers.clear()
		p.fillLine(node, line, cache.Exclusive)

	case dirShared:
		lat += p.mems[home].Access(line) + p.cfg.Bus
		lat += p.net.Latency(home, node, p.cfg.DataBytes)
		e.sharers.add(node)
		p.fillLine(node, line, cache.Shared)

	case dirExclusive:
		owner := e.owner
		if owner == node {
			// Stale directory after a silent L1-only drop cannot happen
			// (inclusion); owner==node with a cache miss means the L2
			// replaced it and evictFromDirectory ran — treat as uncached.
			lat += p.mems[home].Access(line) + p.cfg.Bus
			lat += p.net.Latency(home, node, p.cfg.DataBytes)
			p.fillLine(node, line, cache.Exclusive)
			break
		}
		if p.gated[owner] {
			panic(fmt.Sprintf("coherence: forward to gated node %d for line %#x (flush-before-sleep violated)", owner, line))
		}
		// Forward to owner; owner supplies data to requester and writes
		// back to home (DASH-style sharing writeback).
		p.stats.Forwards++
		lat += p.net.Latency(home, owner, p.cfg.CtrlBytes)
		lat += p.cfg.L2Hit // owner cache readout
		lat += p.net.Latency(owner, node, p.cfg.DataBytes)
		if st, ok := p.l2s[owner].Peek(line); ok && st.Dirty() {
			p.stats.Writebacks++
			p.mems[home].Access(line)
		}
		p.l1s[owner].SetState(line, cache.Shared)
		p.l2s[owner].SetState(line, cache.Shared)
		e.state = dirShared
		e.sharers.clear()
		e.sharers.add(owner)
		e.sharers.add(node)
		p.fillLine(node, line, cache.Shared)
	}
	_ = now
	return AccessResult{Latency: lat, Level: 3}
}

// Write performs a processor store at absolute time now. Invalidations to
// other sharers are returned with absolute delivery times; monitors on the
// invalidated copies fire inside this call.
func (p *Protocol) Write(node int, addr uint64, now sim.Cycles) AccessResult {
	p.stats.Writes++
	line := p.LineAddr(addr)
	if st, hit := p.l1s[node].Lookup(line); hit {
		switch st {
		case cache.Modified:
			p.stats.L1Hits++
			return AccessResult{Latency: p.cfg.L1Hit, Level: 1}
		case cache.Exclusive:
			p.stats.L1Hits++
			p.l1s[node].SetState(line, cache.Modified)
			p.l2s[node].SetState(line, cache.Modified)
			return AccessResult{Latency: p.cfg.L1Hit, Level: 1}
		case cache.Shared:
			return p.upgrade(node, line, now, p.cfg.L1Hit)
		}
	}
	if st, hit := p.l2s[node].Lookup(line); hit {
		switch st {
		case cache.Modified, cache.Exclusive:
			p.stats.L2Hits++
			p.l2s[node].SetState(line, cache.Modified)
			p.fillLine(node, line, cache.Modified)
			return AccessResult{Latency: p.cfg.L2Hit, Level: 2}
		case cache.Shared:
			return p.upgrade(node, line, now, p.cfg.L2Hit)
		}
	}
	return p.writeMiss(node, line, now)
}

// upgrade handles a store hit on a Shared line: ask home to invalidate the
// other sharers, then take ownership.
func (p *Protocol) upgrade(node int, line uint64, now sim.Cycles, probe sim.Cycles) AccessResult {
	home := p.place.Home(line)
	e := p.entry(line)
	lat := probe + p.net.Latency(node, home, p.cfg.CtrlBytes) + p.cfg.DirLookup
	res := AccessResult{Level: 3}

	var ackMax sim.Cycles
	e.sharers.forEach(func(s int) {
		if s == node {
			return
		}
		invLat := p.net.Latency(home, s, p.cfg.CtrlBytes)
		at := now + lat + invLat
		res.Invalidations = append(res.Invalidations, p.invalidateAt(s, line, at))
		// Ack travels sharer -> requester.
		if total := invLat + p.net.Latency(s, node, p.cfg.CtrlBytes); total > ackMax {
			ackMax = total
		}
	})
	lat += ackMax
	e.state = dirExclusive
	e.owner = node
	e.sharers.clear()
	p.l1s[node].SetState(line, cache.Modified)
	p.l2s[node].SetState(line, cache.Modified)
	p.fillLine(node, line, cache.Modified)
	res.Latency = lat
	return res
}

// writeMiss handles a store with no local copy (read-for-ownership).
func (p *Protocol) writeMiss(node int, line uint64, now sim.Cycles) AccessResult {
	p.stats.RemoteFills++
	home := p.place.Home(line)
	e := p.entry(line)
	lat := p.cfg.L2Hit + p.net.Latency(node, home, p.cfg.CtrlBytes) + p.cfg.DirLookup
	res := AccessResult{Level: 3}

	switch e.state {
	case dirUncached:
		lat += p.mems[home].Access(line) + p.cfg.Bus
		lat += p.net.Latency(home, node, p.cfg.DataBytes)

	case dirShared:
		memLat := p.mems[home].Access(line) + p.cfg.Bus
		var ackMax sim.Cycles
		e.sharers.forEach(func(s int) {
			if s == node {
				return
			}
			invLat := p.net.Latency(home, s, p.cfg.CtrlBytes)
			at := now + lat + invLat
			res.Invalidations = append(res.Invalidations, p.invalidateAt(s, line, at))
			if total := invLat + p.net.Latency(s, node, p.cfg.CtrlBytes); total > ackMax {
				ackMax = total
			}
		})
		dataLat := memLat + p.net.Latency(home, node, p.cfg.DataBytes)
		if ackMax > dataLat {
			lat += ackMax
		} else {
			lat += dataLat
		}

	case dirExclusive:
		owner := e.owner
		if owner != node {
			if p.gated[owner] {
				panic(fmt.Sprintf("coherence: forward to gated node %d for line %#x (flush-before-sleep violated)", owner, line))
			}
			p.stats.Forwards++
			fwd := p.net.Latency(home, owner, p.cfg.CtrlBytes)
			at := now + lat + fwd
			res.Invalidations = append(res.Invalidations, p.invalidateAt(owner, line, at))
			lat += fwd + p.cfg.L2Hit + p.net.Latency(owner, node, p.cfg.DataBytes)
		} else {
			lat += p.mems[home].Access(line) + p.cfg.Bus
			lat += p.net.Latency(home, node, p.cfg.DataBytes)
		}
	}
	e.state = dirExclusive
	e.owner = node
	e.sharers.clear()
	p.fillLine(node, line, cache.Modified)
	res.Latency = lat
	return res
}

// FlushForSleep prepares node's caches for a deep (gated) sleep state:
// every dirty line is written back to its home memory and invalidated, and
// clean-exclusive lines are downgraded to Shared so the directory never
// needs to forward a request to the sleeping cache (§3.1). It returns the
// number of lines written back and the time the flush occupies the
// processor before it can enter the sleep state.
func (p *Protocol) FlushForSleep(node int, now sim.Cycles) (lines int, latency sim.Cycles) {
	dirtyL1 := p.l1s[node].FlushDirty()
	for _, line := range dirtyL1 {
		// L1 dirty lines fold into L2 (inclusion) before the L2 flush; if
		// the L2 copy lost dirtiness tracking, restore it.
		p.l2s[node].SetState(line, cache.Modified)
	}
	dirty := p.l2s[node].FlushDirty()
	var maxNet sim.Cycles
	for _, line := range dirty {
		home := p.place.Home(line)
		p.mems[home].Access(line)
		if l := p.net.Latency(node, home, p.cfg.DataBytes); l > maxNet {
			maxNet = l
		}
		delete(p.dir, line) // back to uncached
		p.stats.Writebacks++
		p.stats.FlushedLines++
	}
	// Downgrade clean-exclusive lines so no forward ever targets this node.
	p.downgradeExclusives(node)
	lines = len(dirty)
	// Writebacks stream over the node bus (one line per Bus slot) and the
	// last one must reach its home before the cache may be gated.
	latency = sim.Cycles(lines)*p.cfg.Bus + maxNet
	_ = now
	return lines, latency
}

// downgradeExclusives converts node-owned clean Exclusive directory entries
// to Shared{node}.
func (p *Protocol) downgradeExclusives(node int) {
	for line, e := range p.dir {
		if e.state == dirExclusive && e.owner == node {
			if st, ok := p.l2s[node].Peek(line); ok && st == cache.Exclusive {
				p.l1s[node].SetState(line, cache.Shared)
				p.l2s[node].SetState(line, cache.Shared)
				e.state = dirShared
				e.sharers.clear()
				e.sharers.add(node)
			} else if !ok {
				// Directory thinks node owns it but the cache dropped it
				// (shouldn't happen given evict bookkeeping); clean up.
				delete(p.dir, line)
			}
		}
	}
}

// DirtyLines reports how many dirty lines node currently holds (used by the
// sleep policy to estimate flush cost).
func (p *Protocol) DirtyLines(node int) int {
	return p.l2s[node].DirtyCount()
}

// L1 exposes node's L1 cache for inspection in tests.
func (p *Protocol) L1(node int) *cache.Cache { return p.l1s[node] }

// L2 exposes node's L2 cache for inspection in tests.
func (p *Protocol) L2(node int) *cache.Cache { return p.l2s[node] }

// Memory exposes node's DRAM for inspection in tests.
func (p *Protocol) Memory(node int) *dram.Memory { return p.mems[node] }
