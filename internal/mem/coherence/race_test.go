package coherence

import (
	"sync"
	"testing"

	"thriftybarrier/internal/mem/dram"
	"thriftybarrier/internal/mem/noc"
)

// The sharded core machine partitions the CC-NUMA memory system into one
// Protocol instance per NoC region and drives them from concurrent
// engine shards, with one global noc.Network shared by every shard for
// cross-region latency math. This test reproduces that sharing shape —
// two fully independent region protocols plus a shared global network —
// under concurrent load, so `go test -race` proves the audit result:
// protocol, cache, and DRAM counters are region-local (never shared
// across shards) and the network's traffic statistics are atomic.
func TestRegionProtocolsConcurrent(t *testing.T) {
	const regionNodes = 8
	rcfg := DefaultConfig()
	rcfg.Nodes = regionNodes
	ncfg := noc.DefaultConfig()
	ncfg.Nodes = regionNodes

	global := noc.New(noc.DefaultConfig()) // 64-node fabric shared by both "shards"

	newRegion := func() *Protocol {
		return New(rcfg, noc.New(ncfg), dram.NewPlacement(regionNodes, 4096))
	}
	regions := []*Protocol{newRegion(), newRegion()}

	var wg sync.WaitGroup
	for r, proto := range regions {
		wg.Add(1)
		go func(r int, p *Protocol) {
			defer wg.Done()
			base := uint64(r) << 32
			for i := 0; i < 2000; i++ {
				node := i % regionNodes
				addr := base + uint64(i%64)*64
				if i%3 == 0 {
					p.Write(node, addr, 0)
				} else {
					p.Read(node, addr, 0)
				}
				// The cross-region legs the sharded machine prices on the
				// shared fabric.
				global.Latency(r*regionNodes+node, (1-r)*regionNodes+node, 8)
				if i%101 == 0 {
					p.SetGated(node, true)
					p.FlushForSleep(node, 0)
					p.SetGated(node, false)
				}
			}
		}(r, proto)
	}
	wg.Wait()

	msgs, flits := global.Stats()
	if msgs != 4000 || flits == 0 {
		t.Errorf("global network stats lost updates: messages=%d flits=%d, want 4000 messages", msgs, flits)
	}
	for r, p := range regions {
		s := p.Stats()
		if s.Reads == 0 || s.Writes == 0 {
			t.Errorf("region %d: counters empty: %+v", r, s)
		}
	}
}
