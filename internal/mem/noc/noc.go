// Package noc models the interconnection network of the simulated CC-NUMA
// machine: a hypercube with wormhole routing, pipelined routers, and
// endpoint (un)marshaling, per Table 1 of the paper (64 nodes, 16 ns
// pin-to-pin router latency, 16 ns endpoint marshaling, 16-byte-wide links
// at 250 MHz).
package noc

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"thriftybarrier/internal/sim"
)

// Config describes the network.
type Config struct {
	// Nodes is the machine size; must be a power of two for a hypercube.
	Nodes int
	// PinToPin is the per-hop router latency.
	PinToPin sim.Cycles
	// Endpoint is the (un)marshaling latency paid once at each endpoint.
	Endpoint sim.Cycles
	// FlitBytes is the link width; payload beyond the head flit adds
	// FlitCycle per extra flit (wormhole pipelining).
	FlitBytes int
	// FlitCycle is the time to move one flit across a link at the link
	// clock (250 MHz => 4 ns per flit).
	FlitCycle sim.Cycles
}

// DefaultConfig reproduces Table 1: 64-node hypercube, 16 ns pin-to-pin,
// 16 ns endpoint marshaling, 16-byte links at 250 MHz.
func DefaultConfig() Config {
	return Config{
		Nodes:     64,
		PinToPin:  16 * sim.Nanosecond,
		Endpoint:  16 * sim.Nanosecond,
		FlitBytes: 16,
		FlitCycle: 4 * sim.Nanosecond,
	}
}

// Validate reports an error for impossible configurations.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.Nodes&(c.Nodes-1) != 0 {
		return fmt.Errorf("noc: node count %d is not a positive power of two", c.Nodes)
	}
	if c.PinToPin < 0 || c.Endpoint < 0 || c.FlitCycle < 0 {
		return fmt.Errorf("noc: negative latency in %+v", c)
	}
	if c.FlitBytes <= 0 {
		return fmt.Errorf("noc: non-positive flit width %d", c.FlitBytes)
	}
	return nil
}

// Network computes message latencies over the hypercube. It is stateless
// apart from traffic statistics (the paper's network is modeled
// contention-free: wormhole pipelined latency only). The statistics are
// atomic so that the parallel engine's shards can compute latencies
// concurrently; the latency math itself reads only immutable configuration.
type Network struct {
	cfg Config
	dim int

	messages atomic.Uint64
	flits    atomic.Uint64
}

// New builds a network, panicking on invalid static configuration.
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Network{cfg: cfg, dim: bits.TrailingZeros(uint(cfg.Nodes))}
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Dimension returns the hypercube dimension (log2 nodes).
func (n *Network) Dimension() int { return n.dim }

// Hops returns the hypercube hop count between two nodes: the Hamming
// distance of their addresses (e-cube routing traverses one dimension per
// differing bit).
func (n *Network) Hops(src, dst int) int {
	n.checkNode(src)
	n.checkNode(dst)
	return bits.OnesCount(uint(src ^ dst))
}

// Latency returns the end-to-end latency of a message of payloadBytes from
// src to dst: marshal + hops*pinToPin + serialization of extra flits +
// unmarshal. A node messaging itself pays no network latency.
func (n *Network) Latency(src, dst, payloadBytes int) sim.Cycles {
	if src == dst {
		n.checkNode(src)
		return 0
	}
	hops := n.Hops(src, dst)
	flits := 1
	if payloadBytes > 0 {
		flits = (payloadBytes + n.cfg.FlitBytes - 1) / n.cfg.FlitBytes
	}
	n.messages.Add(1)
	n.flits.Add(uint64(flits))
	lat := 2*n.cfg.Endpoint + sim.Cycles(hops)*n.cfg.PinToPin
	// Wormhole: body flits pipeline behind the head, adding one flit time
	// each at the bottleneck link.
	lat += sim.Cycles(flits-1) * n.cfg.FlitCycle
	return lat
}

// MaxLatency returns the worst-case (antipodal) latency for a message of
// payloadBytes — used for conservative bounds in tests and documentation.
func (n *Network) MaxLatency(payloadBytes int) sim.Cycles {
	return n.Latency(0, n.cfg.Nodes-1, payloadBytes)
}

// MinLatency returns the latency of a one-hop message of payloadBytes —
// the smallest delay any inter-node interaction can have, and therefore the
// lookahead floor of the parallel engine's conservative windows. It does
// not count toward traffic statistics (no message is modeled as sent).
func (n *Network) MinLatency(payloadBytes int) sim.Cycles {
	flits := 1
	if payloadBytes > 0 {
		flits = (payloadBytes + n.cfg.FlitBytes - 1) / n.cfg.FlitBytes
	}
	return 2*n.cfg.Endpoint + n.cfg.PinToPin + sim.Cycles(flits-1)*n.cfg.FlitCycle
}

// Stats reports total messages and flits carried.
func (n *Network) Stats() (messages, flits uint64) { return n.messages.Load(), n.flits.Load() }

func (n *Network) checkNode(id int) {
	if id < 0 || id >= n.cfg.Nodes {
		panic(fmt.Sprintf("noc: node %d out of range [0,%d)", id, n.cfg.Nodes))
	}
}
