package noc

import (
	"testing"
	"testing/quick"

	"thriftybarrier/internal/sim"
)

func TestDefaultConfigIsTable1(t *testing.T) {
	c := DefaultConfig()
	if c.Nodes != 64 {
		t.Errorf("nodes = %d, want 64", c.Nodes)
	}
	if c.PinToPin != 16*sim.Nanosecond || c.Endpoint != 16*sim.Nanosecond {
		t.Errorf("latencies %v/%v, want 16ns/16ns", c.PinToPin, c.Endpoint)
	}
	if c.FlitBytes != 16 {
		t.Errorf("flit width = %d, want 16", c.FlitBytes)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Nodes: 0, FlitBytes: 16},
		{Nodes: 48, FlitBytes: 16},
		{Nodes: 64, FlitBytes: 0},
		{Nodes: 64, FlitBytes: 16, PinToPin: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestDimension(t *testing.T) {
	if d := New(DefaultConfig()).Dimension(); d != 6 {
		t.Fatalf("64-node hypercube dimension = %d, want 6", d)
	}
}

func TestHops(t *testing.T) {
	n := New(DefaultConfig())
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 2},
		{0, 63, 6},
		{21, 42, 6}, // 010101 vs 101010
		{5, 4, 1},
	}
	for _, tc := range cases {
		if got := n.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLatencyLocalIsZero(t *testing.T) {
	n := New(DefaultConfig())
	if l := n.Latency(7, 7, 64); l != 0 {
		t.Fatalf("self-message latency = %v, want 0", l)
	}
}

func TestLatencySingleHopControlMessage(t *testing.T) {
	n := New(DefaultConfig())
	// 1 hop, 1 flit: 16 (marshal) + 16 (hop) + 16 (unmarshal) = 48 ns.
	if l := n.Latency(0, 1, 8); l != 48*sim.Nanosecond {
		t.Fatalf("1-hop control latency = %v, want 48ns", l)
	}
}

func TestLatencyCacheLinePayload(t *testing.T) {
	n := New(DefaultConfig())
	// 64B = 4 flits; 3 extra flits * 4ns = 12ns over the control latency.
	ctrl := n.Latency(0, 1, 8)
	data := n.Latency(0, 1, 64)
	if data-ctrl != 12*sim.Nanosecond {
		t.Fatalf("payload serialization = %v, want 12ns", data-ctrl)
	}
}

func TestMaxLatency(t *testing.T) {
	n := New(DefaultConfig())
	// Antipodal: 6 hops. 32 + 6*16 = 128 ns for a control message.
	if l := n.MaxLatency(8); l != 128*sim.Nanosecond {
		t.Fatalf("max control latency = %v, want 128ns", l)
	}
}

func TestLatencySymmetryProperty(t *testing.T) {
	n := New(DefaultConfig())
	f := func(a, b uint8, payload uint8) bool {
		x, y := int(a%64), int(b%64)
		return n.Latency(x, y, int(payload)) == n.Latency(y, x, int(payload))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyTriangleProperty(t *testing.T) {
	// Hop metric obeys the triangle inequality on a hypercube.
	n := New(DefaultConfig())
	f := func(a, b, c uint8) bool {
		x, y, z := int(a%64), int(b%64), int(c%64)
		return n.Hops(x, z) <= n.Hops(x, y)+n.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeRangePanics(t *testing.T) {
	n := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range node did not panic")
		}
	}()
	n.Hops(0, 64)
}

func TestStats(t *testing.T) {
	n := New(DefaultConfig())
	n.Latency(0, 1, 64)
	n.Latency(0, 2, 8)
	n.Latency(3, 3, 8) // local: not counted
	msgs, flits := n.Stats()
	if msgs != 2 {
		t.Errorf("messages = %d, want 2", msgs)
	}
	if flits != 5 { // 4 + 1
		t.Errorf("flits = %d, want 5", flits)
	}
}
