// Package cache implements the set-associative write-back cache model used
// for both levels of the per-node cache hierarchy (L1 16 kB 2-way, L2 64 kB
// 8-way, 64-byte lines — Table 1 of the paper). Line coherence states are
// kept here so that the directory protocol package can import this one
// without a cycle.
package cache

import "fmt"

// LineState is the MESI state of a cached line, maintained by the directory
// protocol in package coherence.
type LineState uint8

const (
	// Invalid marks an empty or invalidated way.
	Invalid LineState = iota
	// Shared is a clean copy that other caches may also hold.
	Shared
	// Exclusive is a clean copy no other cache holds.
	Exclusive
	// Modified is a dirty copy no other cache holds.
	Modified
)

func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("LineState(%d)", uint8(s))
	}
}

// Dirty reports whether the state requires a writeback on eviction or flush.
func (s LineState) Dirty() bool { return s == Modified }

// Valid reports whether the line holds data.
func (s LineState) Valid() bool { return s != Invalid }

// Config describes a cache's geometry.
type Config struct {
	// SizeBytes is total capacity.
	SizeBytes int
	// LineBytes is the line (block) size.
	LineBytes int
	// Ways is the associativity.
	Ways int
}

// Sets computes the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Validate reports a descriptive error for impossible geometries.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by line*ways %d", c.SizeBytes, c.LineBytes*c.Ways)
	}
	if s := c.Sets(); s&(s-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", s)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	return nil
}

// line is one way of one set.
type line struct {
	tag   uint64
	state LineState
	// lru is a per-set logical timestamp; larger = more recently used.
	lru uint64
}

// Victim describes a line displaced by Insert or Flush.
type Victim struct {
	Addr  uint64 // line-aligned address of the displaced line
	Dirty bool   // true if the displaced line required writeback
}

// Cache is a single-level set-associative write-back cache. It tracks tags
// and coherence states only — the simulator never stores data contents.
// The zero value is unusable; construct with New.
type Cache struct {
	cfg       Config
	sets      [][]line
	setMask   uint64
	lineShift uint
	clock     uint64 // LRU clock

	// Stats.
	hits, misses, evictions, writebacks uint64
}

// New builds a cache from cfg, panicking on invalid geometry (geometries
// are static configuration; an invalid one is a programming error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]line, cfg.Sets())
	backing := make([]line, cfg.Sets()*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(cfg.Sets() - 1),
		lineShift: shift,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	l := addr >> c.lineShift
	return l & c.setMask, l >> 0 // tag keeps full line number; simpler and unambiguous
}

// Lookup probes the cache. On a hit it refreshes LRU and returns the line's
// state; on a miss it returns Invalid.
func (c *Cache) Lookup(addr uint64) (LineState, bool) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.state.Valid() && ln.tag == tag {
			c.clock++
			ln.lru = c.clock
			c.hits++
			return ln.state, true
		}
	}
	c.misses++
	return Invalid, false
}

// Peek probes without updating LRU or statistics.
func (c *Cache) Peek(addr uint64) (LineState, bool) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.state.Valid() && ln.tag == tag {
			return ln.state, true
		}
	}
	return Invalid, false
}

// Insert fills addr's line with the given state, evicting the LRU way if
// the set is full. It returns the victim, if any. Inserting a line that is
// already present just updates its state.
func (c *Cache) Insert(addr uint64, state LineState) (Victim, bool) {
	if state == Invalid {
		panic("cache: Insert with Invalid state")
	}
	set, tag := c.index(addr)
	ways := c.sets[set]
	// Already present: update in place.
	for i := range ways {
		if ways[i].state.Valid() && ways[i].tag == tag {
			c.clock++
			ways[i].state = state
			ways[i].lru = c.clock
			return Victim{}, false
		}
	}
	// Prefer an invalid way.
	victimIdx := -1
	for i := range ways {
		if !ways[i].state.Valid() {
			victimIdx = i
			break
		}
	}
	var victim Victim
	evicted := false
	if victimIdx < 0 {
		// Evict LRU.
		victimIdx = 0
		for i := 1; i < len(ways); i++ {
			if ways[i].lru < ways[victimIdx].lru {
				victimIdx = i
			}
		}
		v := ways[victimIdx]
		victim = Victim{Addr: v.tag << c.lineShift, Dirty: v.state.Dirty()}
		evicted = true
		c.evictions++
		if victim.Dirty {
			c.writebacks++
		}
	}
	c.clock++
	ways[victimIdx] = line{tag: tag, state: state, lru: c.clock}
	return victim, evicted
}

// SetState updates the coherence state of a present line. It reports false
// if the line is absent.
func (c *Cache) SetState(addr uint64, state LineState) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.state.Valid() && ln.tag == tag {
			if state == Invalid {
				ln.state = Invalid
			} else {
				ln.state = state
			}
			return true
		}
	}
	return false
}

// Invalidate drops the line if present, reporting whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (wasDirty, wasPresent bool) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.state.Valid() && ln.tag == tag {
			wasDirty = ln.state.Dirty()
			ln.state = Invalid
			return wasDirty, true
		}
	}
	return false, false
}

// FlushDirty writes back and invalidates every dirty line, returning their
// line addresses. This models the flush a processor performs before
// entering a deep sleep state whose cache cannot respond to protocol
// interventions (§3.1): the data must reach a safe place, and subsequent
// accesses become compulsory misses.
func (c *Cache) FlushDirty() []uint64 {
	var flushed []uint64
	for s := range c.sets {
		for i := range c.sets[s] {
			ln := &c.sets[s][i]
			if ln.state.Dirty() {
				flushed = append(flushed, ln.tag<<c.lineShift)
				ln.state = Invalid
				c.writebacks++
			}
		}
	}
	return flushed
}

// DirtyCount reports how many lines are currently dirty.
func (c *Cache) DirtyCount() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].state.Dirty() {
				n++
			}
		}
	}
	return n
}

// ValidCount reports how many lines are currently valid.
func (c *Cache) ValidCount() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].state.Valid() {
				n++
			}
		}
	}
	return n
}

// Stats reports hit/miss/eviction/writeback counters.
func (c *Cache) Stats() (hits, misses, evictions, writebacks uint64) {
	return c.hits, c.misses, c.evictions, c.writebacks
}

// Clear invalidates everything without writebacks (used between simulated
// program runs).
func (c *Cache) Clear() {
	for s := range c.sets {
		for i := range c.sets[s] {
			c.sets[s][i] = line{}
		}
	}
}
