package cache

import (
	"testing"
	"testing/quick"
)

func l1() *Cache { return New(Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 2}) }
func l2() *Cache { return New(Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8}) }

func TestConfigGeometry(t *testing.T) {
	if s := l1().Config().Sets(); s != 128 {
		t.Errorf("L1 sets = %d, want 128", s)
	}
	if s := l2().Config().Sets(); s != 128 {
		t.Errorf("L2 sets = %d, want 128", s)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 2},
		{SizeBytes: 16 << 10, LineBytes: 0, Ways: 2},
		{SizeBytes: 16 << 10, LineBytes: 64, Ways: 0},
		{SizeBytes: 16<<10 + 64, LineBytes: 64, Ways: 2},
		{SizeBytes: 24 << 10, LineBytes: 64, Ways: 2}, // 192 sets, not pow2
		{SizeBytes: 16 << 10, LineBytes: 48, Ways: 2},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
	}
	good := Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v) = %v", good, err)
	}
}

func TestMissThenHit(t *testing.T) {
	c := l1()
	if _, hit := c.Lookup(0x1000); hit {
		t.Fatal("cold cache reported a hit")
	}
	c.Insert(0x1000, Shared)
	st, hit := c.Lookup(0x1000)
	if !hit || st != Shared {
		t.Fatalf("after insert: state=%v hit=%v", st, hit)
	}
	// Same line, different offset.
	if _, hit := c.Lookup(0x103F); !hit {
		t.Fatal("offset within same line missed")
	}
	if _, hit := c.Lookup(0x1040); hit {
		t.Fatal("adjacent line hit spuriously")
	}
}

func TestLRUEviction(t *testing.T) {
	c := l1() // 2-way, 128 sets, 64B lines: addresses 64*128 apart collide
	stride := uint64(64 * 128)
	a, b, d := uint64(0x0), stride, 2*stride
	c.Insert(a, Shared)
	c.Insert(b, Shared)
	c.Lookup(a) // touch a, making b LRU
	v, evicted := c.Insert(d, Shared)
	if !evicted {
		t.Fatal("third insert into 2-way set did not evict")
	}
	if v.Addr != b {
		t.Fatalf("evicted %#x, want LRU line %#x", v.Addr, b)
	}
	if _, hit := c.Peek(a); !hit {
		t.Fatal("recently used line was evicted")
	}
}

func TestDirtyEvictionReportsWriteback(t *testing.T) {
	c := l1()
	stride := uint64(64 * 128)
	c.Insert(0, Modified)
	c.Insert(stride, Shared)
	v, evicted := c.Insert(2*stride, Shared)
	if !evicted || !v.Dirty {
		t.Fatalf("evicting Modified line: evicted=%v dirty=%v", evicted, v.Dirty)
	}
	_, _, _, wb := c.Stats()
	if wb != 1 {
		t.Fatalf("writebacks = %d, want 1", wb)
	}
}

func TestInsertExistingUpdatesState(t *testing.T) {
	c := l1()
	c.Insert(0x40, Shared)
	if _, evicted := c.Insert(0x40, Modified); evicted {
		t.Fatal("re-insert of present line evicted something")
	}
	st, _ := c.Peek(0x40)
	if st != Modified {
		t.Fatalf("state after upgrade-insert = %v, want M", st)
	}
	if c.ValidCount() != 1 {
		t.Fatalf("valid lines = %d, want 1", c.ValidCount())
	}
}

func TestSetStateAndInvalidate(t *testing.T) {
	c := l1()
	if c.SetState(0x80, Shared) {
		t.Fatal("SetState on absent line reported true")
	}
	c.Insert(0x80, Exclusive)
	if !c.SetState(0x80, Modified) {
		t.Fatal("SetState on present line reported false")
	}
	dirty, present := c.Invalidate(0x80)
	if !present || !dirty {
		t.Fatalf("Invalidate: present=%v dirty=%v, want true,true", present, dirty)
	}
	if _, present = c.Invalidate(0x80); present {
		t.Fatal("second Invalidate found the line")
	}
}

func TestFlushDirty(t *testing.T) {
	c := l2()
	c.Insert(0x000, Modified)
	c.Insert(0x040, Shared)
	c.Insert(0x080, Exclusive)
	c.Insert(0x0C0, Modified)
	flushed := c.FlushDirty()
	if len(flushed) != 2 {
		t.Fatalf("flushed %d lines, want 2", len(flushed))
	}
	if c.DirtyCount() != 0 {
		t.Fatal("dirty lines remain after flush")
	}
	// Dirty lines are invalidated (compulsory miss later); clean survive.
	if _, hit := c.Peek(0x000); hit {
		t.Fatal("flushed dirty line still present")
	}
	if _, hit := c.Peek(0x040); !hit {
		t.Fatal("clean line was dropped by flush")
	}
	if _, hit := c.Peek(0x080); !hit {
		t.Fatal("exclusive clean line was dropped by flush")
	}
}

func TestLineAddr(t *testing.T) {
	c := l1()
	if got := c.LineAddr(0x12345); got != 0x12340 {
		t.Fatalf("LineAddr(0x12345) = %#x, want 0x12340", got)
	}
}

func TestLineStateHelpers(t *testing.T) {
	if !Modified.Dirty() || Shared.Dirty() || Exclusive.Dirty() || Invalid.Dirty() {
		t.Error("Dirty() wrong for some state")
	}
	if Invalid.Valid() || !Shared.Valid() {
		t.Error("Valid() wrong for some state")
	}
	if Modified.String() != "M" || Invalid.String() != "I" {
		t.Error("String() wrong")
	}
}

func TestClear(t *testing.T) {
	c := l1()
	c.Insert(0x40, Modified)
	c.Clear()
	if c.ValidCount() != 0 {
		t.Fatal("Clear left valid lines")
	}
}

// Property: the cache never holds more valid lines than its capacity, and
// Lookup after Insert always hits, under arbitrary insert sequences.
func TestCapacityInvariantProperty(t *testing.T) {
	capacity := (16 << 10) / 64
	f := func(addrs []uint32) bool {
		c := l1()
		for _, a := range addrs {
			addr := uint64(a) << 6
			c.Insert(addr, Shared)
			if _, hit := c.Peek(addr); !hit {
				return false
			}
		}
		return c.ValidCount() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every dirty line inserted is eventually accounted for as either
// still-dirty, written back on eviction, or flushed.
func TestWritebackConservationProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := l1()
		inserted := 0
		for _, a := range addrs {
			addr := uint64(a) << 6
			if st, ok := c.Peek(addr); ok && st == Modified {
				continue // already dirty; not a new dirty insertion
			}
			c.Insert(addr, Modified)
			inserted++
		}
		flushed := len(c.FlushDirty())
		_, _, _, wb := c.Stats()
		// writebacks counts evictions of dirty lines plus flushes.
		return int(wb) == inserted && flushed+int(wb)-flushed <= inserted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
