// Package dram models the per-node interleaved main memory of the
// simulated machine (Table 1: interleaved, 60 ns row miss) together with
// the page-placement policy: shared pages are distributed round-robin
// across nodes, private pages are allocated on the owning node (§4.1).
package dram

import (
	"fmt"

	"thriftybarrier/internal/sim"
)

// Config describes one node's memory.
type Config struct {
	// Banks is the interleave factor within a node.
	Banks int
	// RowBytes is the size of one DRAM row (page) per bank.
	RowBytes int
	// RowHit is the access latency when the row buffer already holds the
	// requested row.
	RowHit sim.Cycles
	// RowMiss is the access latency on a row-buffer miss (Table 1: 60 ns).
	RowMiss sim.Cycles
}

// DefaultConfig reproduces Table 1 with a conventional 4-bank interleave
// and 2 kB rows; the paper specifies only the 60 ns row-miss figure, so the
// row-hit latency is set at half of it, the usual open-page ratio.
func DefaultConfig() Config {
	return Config{
		Banks:    4,
		RowBytes: 2048,
		RowHit:   30 * sim.Nanosecond,
		RowMiss:  60 * sim.Nanosecond,
	}
}

// Validate reports an error for impossible configurations.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("dram: bank count %d not a positive power of two", c.Banks)
	}
	if c.RowBytes <= 0 || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("dram: row size %d not a positive power of two", c.RowBytes)
	}
	if c.RowHit < 0 || c.RowMiss < c.RowHit {
		return fmt.Errorf("dram: inconsistent latencies hit=%v miss=%v", c.RowHit, c.RowMiss)
	}
	return nil
}

// Memory is one node's DRAM: a set of banks with open-row tracking.
type Memory struct {
	cfg     Config
	openRow []uint64 // per bank; ^0 = closed
	hits    uint64
	misses  uint64
}

// New builds a memory, panicking on invalid static configuration.
func New(cfg Config) *Memory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rows := make([]uint64, cfg.Banks)
	for i := range rows {
		rows[i] = ^uint64(0)
	}
	return &Memory{cfg: cfg, openRow: rows}
}

// Access performs one access and returns its latency, updating the open-row
// state of the addressed bank.
func (m *Memory) Access(addr uint64) sim.Cycles {
	row := addr / uint64(m.cfg.RowBytes)
	bank := int(row) & (m.cfg.Banks - 1)
	if m.openRow[bank] == row {
		m.hits++
		return m.cfg.RowHit
	}
	m.openRow[bank] = row
	m.misses++
	return m.cfg.RowMiss
}

// Stats reports row-buffer hits and misses.
func (m *Memory) Stats() (hits, misses uint64) { return m.hits, m.misses }

// Placement maps addresses to home nodes: shared pages round-robin, private
// pages local to their owner. The address space is split by a high bit so
// workloads can generate both kinds without coordination.
type Placement struct {
	nodes     int
	pageBytes int
}

// PrivateBit is set in addresses belonging to a thread's private pages. The
// next bits encode the owning node.
const PrivateBit = uint64(1) << 62

// NewPlacement builds the placement policy for a machine of the given size
// and page size.
func NewPlacement(nodes, pageBytes int) *Placement {
	if nodes <= 0 || nodes&(nodes-1) != 0 {
		panic(fmt.Sprintf("dram: node count %d not a positive power of two", nodes))
	}
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic(fmt.Sprintf("dram: page size %d not a positive power of two", pageBytes))
	}
	return &Placement{nodes: nodes, pageBytes: pageBytes}
}

// PrivateAddr tags addr as belonging to node's private pages.
func (p *Placement) PrivateAddr(node int, addr uint64) uint64 {
	return PrivateBit | uint64(node)<<48 | (addr & ((1 << 48) - 1))
}

// Home returns the node whose memory holds addr: the encoded owner for
// private addresses, round-robin by page number for shared ones.
func (p *Placement) Home(addr uint64) int {
	if addr&PrivateBit != 0 {
		return int(addr>>48) & (p.nodes - 1)
	}
	page := addr / uint64(p.pageBytes)
	return int(page % uint64(p.nodes))
}

// Nodes reports the machine size.
func (p *Placement) Nodes() int { return p.nodes }
