package dram

import (
	"testing"
	"testing/quick"

	"thriftybarrier/internal/sim"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{Banks: 0, RowBytes: 2048, RowMiss: 60},
		{Banks: 3, RowBytes: 2048, RowMiss: 60},
		{Banks: 4, RowBytes: 0, RowMiss: 60},
		{Banks: 4, RowBytes: 2048, RowHit: 70 * sim.Nanosecond, RowMiss: 60 * sim.Nanosecond},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestRowMissThenHit(t *testing.T) {
	m := New(DefaultConfig())
	if l := m.Access(0x1000); l != 60*sim.Nanosecond {
		t.Fatalf("cold access latency = %v, want 60ns", l)
	}
	if l := m.Access(0x1008); l != 30*sim.Nanosecond {
		t.Fatalf("same-row access latency = %v, want 30ns", l)
	}
	hits, misses := m.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 1/1", hits, misses)
	}
}

func TestRowConflictEvictsOpenRow(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	rowStride := uint64(cfg.RowBytes * cfg.Banks) // same bank, next row
	m.Access(0)
	if l := m.Access(rowStride); l != cfg.RowMiss {
		t.Fatalf("row conflict latency = %v, want miss", l)
	}
	if l := m.Access(0); l != cfg.RowMiss {
		t.Fatalf("return to closed row = %v, want miss", l)
	}
}

func TestBankInterleaving(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	// Consecutive rows land in different banks; opening one must not close
	// the other.
	m.Access(0)
	m.Access(uint64(cfg.RowBytes)) // bank 1
	if l := m.Access(8); l != cfg.RowHit {
		t.Fatalf("bank 0 row was closed by bank 1 access: %v", l)
	}
}

func TestPlacementRoundRobin(t *testing.T) {
	p := NewPlacement(64, 4096)
	for page := 0; page < 256; page++ {
		addr := uint64(page * 4096)
		if home := p.Home(addr); home != page%64 {
			t.Fatalf("Home(page %d) = %d, want %d", page, home, page%64)
		}
	}
}

func TestPlacementPrivateLocal(t *testing.T) {
	p := NewPlacement(64, 4096)
	for node := 0; node < 64; node++ {
		addr := p.PrivateAddr(node, 0xDEAD000)
		if home := p.Home(addr); home != node {
			t.Fatalf("private addr of node %d homed at %d", node, home)
		}
	}
}

func TestPrivateAddrPreservesOffsetProperty(t *testing.T) {
	p := NewPlacement(64, 4096)
	f := func(node uint8, off uint32) bool {
		n := int(node % 64)
		a1 := p.PrivateAddr(n, uint64(off))
		a2 := p.PrivateAddr(n, uint64(off)+64)
		// Distinct offsets map to distinct addresses with the same home.
		return a1 != a2 && p.Home(a1) == n && p.Home(a2) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two node count did not panic")
		}
	}()
	NewPlacement(48, 4096)
}
