// Package cpu models the per-node processor of the simulated machine: a
// six-issue out-of-order core (Table 1) abstracted to segment granularity.
// A compute segment carries a dynamic instruction count and a sampled
// memory-reference stream; the core converts it to time as base issue
// cycles plus the memory stalls the real cache/coherence substrate reports,
// discounted by an out-of-order overlap factor. The package also provides
// the charging helpers the barrier layer uses to account spin, transition
// and sleep intervals.
package cpu

import (
	"fmt"

	"thriftybarrier/internal/mem/coherence"
	"thriftybarrier/internal/power"
	"thriftybarrier/internal/sim"
)

// Ref is one sampled memory reference of a compute segment.
type Ref struct {
	Addr  uint64
	Write bool
}

// Segment is one thread's compute work between two barriers.
type Segment struct {
	// Instructions is the dynamic instruction count of the segment.
	Instructions int64
	// Refs is the sampled reference stream driven through the memory
	// hierarchy.
	Refs []Ref
	// RefScale is how many actual references each sampled one stands for;
	// memory stall time is scaled accordingly. Zero means 1.
	RefScale float64
}

// Config holds the core's timing parameters.
type Config struct {
	// IPC is the sustained issue rate in the absence of memory stalls.
	IPC float64
	// Overlap is the fraction of each memory stall hidden by out-of-order
	// execution and MLP, in [0,1).
	Overlap float64
}

// DefaultConfig models the paper's six-issue dynamic core with a typical
// sustained IPC of 2 and moderate latency tolerance.
func DefaultConfig() Config {
	return Config{IPC: 2.0, Overlap: 0.4}
}

// Validate reports an error for impossible configurations.
func (c Config) Validate() error {
	if c.IPC <= 0 {
		return fmt.Errorf("cpu: non-positive IPC %v", c.IPC)
	}
	if c.Overlap < 0 || c.Overlap >= 1 {
		return fmt.Errorf("cpu: overlap %v outside [0,1)", c.Overlap)
	}
	return nil
}

// CPU is one node's processor. It owns the node's state timeline for
// energy accounting; the barrier layer charges barrier-side intervals
// through the Charge* helpers so that all accounting flows through one
// place.
type CPU struct {
	id       int
	cfg      Config
	proto    *coherence.Protocol
	model    *power.Model
	activity power.Activity
	tl       sim.Timeline

	segments uint64
	stall    sim.Cycles
}

// New builds a CPU bound to a node of the coherence substrate.
func New(id int, cfg Config, proto *coherence.Protocol, model *power.Model, activity power.Activity) *CPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &CPU{id: id, cfg: cfg, proto: proto, model: model, activity: activity}
}

// ID returns the node id.
func (c *CPU) ID() int { return c.id }

// Timeline exposes the CPU's accounting timeline.
func (c *CPU) Timeline() *sim.Timeline { return &c.tl }

// Model exposes the power model.
func (c *CPU) Model() *power.Model { return c.model }

// ComputePower is this CPU's active power for its workload mix.
func (c *CPU) ComputePower() float64 { return c.model.ActivePower(c.activity) }

// RunSegment executes seg starting at simulated time now: every sampled
// reference runs through the cache hierarchy and coherence protocol, and
// the resulting duration is charged to Compute. It returns the segment
// duration.
func (c *CPU) RunSegment(now sim.Cycles, seg Segment) sim.Cycles {
	base := sim.Cycles(float64(seg.Instructions) / c.cfg.IPC)
	scale := seg.RefScale
	if scale == 0 {
		scale = 1
	}
	l1 := c.proto.Config().L1Hit
	var stall sim.Cycles
	t := now + base
	for _, r := range seg.Refs {
		var res coherence.AccessResult
		if r.Write {
			res = c.proto.Write(c.id, r.Addr, t)
		} else {
			res = c.proto.Read(c.id, r.Addr, t)
		}
		if res.Latency > l1 {
			extra := float64(res.Latency-l1) * (1 - c.cfg.Overlap) * scale
			stall += sim.Cycles(extra)
		}
		t += res.Latency
	}
	dur := base + stall
	if dur <= 0 {
		dur = 1
	}
	c.tl.AddInterval(sim.StateCompute, dur, c.ComputePower())
	c.segments++
	c.stall += stall
	return dur
}

// ChargeCompute accounts d cycles of non-segment computation (barrier
// bookkeeping, lock waits, flush time — all Compute in the paper's
// breakdown).
func (c *CPU) ChargeCompute(d sim.Cycles) {
	c.tl.AddInterval(sim.StateCompute, d, c.ComputePower())
}

// ChargeSpin accounts d cycles of barrier spinning.
func (c *CPU) ChargeSpin(d sim.Cycles) {
	c.tl.AddInterval(sim.StateSpin, d, c.model.SpinPower())
}

// ChargeTransition accounts d cycles transitioning into or out of state s.
func (c *CPU) ChargeTransition(s power.SleepState, d sim.Cycles) {
	c.tl.AddInterval(sim.StateTransition, d, c.model.TransitionPower(s))
}

// ChargeSleep accounts d cycles of residency in state s.
func (c *CPU) ChargeSleep(s power.SleepState, d sim.Cycles) {
	c.tl.AddInterval(sim.StateSleep, d, c.model.SleepPower(s))
}

// Stats reports how many segments ran and the accumulated memory stall.
func (c *CPU) Stats() (segments uint64, stall sim.Cycles) {
	return c.segments, c.stall
}

// RunSegmentDVFS executes seg with the core clock scaled by factor f in
// (0, 1]: core-bound cycles stretch by 1/f while memory stall time is
// unchanged (DRAM and the network do not slow down), and the core portion
// is charged at power scaled by f^3 (frequency x voltage^2 with voltage
// tracking frequency) — so core energy scales by ~f^2.
//
// budget bounds how much f=1-equivalent core time may run scaled: work
// beyond it runs at nominal frequency — the governor's mid-phase ramp-up
// when the phase turns out longer than the slack prediction assumed
// (without it, one underprediction slows the critical path and compounds).
// budget <= 0 means unlimited.
//
// It returns the scaled duration and the f=1-equivalent duration (for
// slack predictors).
func (c *CPU) RunSegmentDVFS(now sim.Cycles, seg Segment, f float64, budget sim.Cycles) (dur, baseEquiv sim.Cycles) {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("cpu: DVFS factor %v outside (0,1]", f))
	}
	base := sim.Cycles(float64(seg.Instructions) / c.cfg.IPC)
	scale := seg.RefScale
	if scale == 0 {
		scale = 1
	}
	l1 := c.proto.Config().L1Hit
	var stall sim.Cycles
	t := now + base
	for _, r := range seg.Refs {
		var res coherence.AccessResult
		if r.Write {
			res = c.proto.Write(c.id, r.Addr, t)
		} else {
			res = c.proto.Read(c.id, r.Addr, t)
		}
		if res.Latency > l1 {
			extra := float64(res.Latency-l1) * (1 - c.cfg.Overlap) * scale
			stall += sim.Cycles(extra)
		}
		t += res.Latency
	}
	scaledBase := base
	if budget > 0 && budget < base {
		scaledBase = budget
	}
	nominalBase := base - scaledBase
	core := sim.Cycles(float64(scaledBase)/f) + nominalBase
	dur = core + stall
	if dur <= 0 {
		dur = 1
	}
	if scaledBase > 0 {
		c.tl.AddInterval(sim.StateCompute, sim.Cycles(float64(scaledBase)/f), c.ComputePower()*f*f*f)
	}
	if nominalBase+stall > 0 {
		c.tl.AddInterval(sim.StateCompute, nominalBase+stall, c.ComputePower())
	}
	c.segments++
	c.stall += stall
	baseEquiv = base + stall
	if baseEquiv <= 0 {
		baseEquiv = 1
	}
	return dur, baseEquiv
}
