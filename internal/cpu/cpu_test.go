package cpu

import (
	"testing"

	"thriftybarrier/internal/mem/coherence"
	"thriftybarrier/internal/mem/dram"
	"thriftybarrier/internal/mem/noc"
	"thriftybarrier/internal/power"
	"thriftybarrier/internal/sim"
)

func newCPU(t testing.TB, id int) (*CPU, *coherence.Protocol) {
	t.Helper()
	cfg := coherence.DefaultConfig()
	net := noc.New(noc.DefaultConfig())
	place := dram.NewPlacement(cfg.Nodes, 4096)
	proto := coherence.New(cfg, net, place)
	model := power.DefaultModel()
	return New(id, DefaultConfig(), proto, model, power.TypicalCompute()), proto
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{{IPC: 0, Overlap: 0.4}, {IPC: 2, Overlap: 1.0}, {IPC: 2, Overlap: -0.1}}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestRunSegmentBaseTime(t *testing.T) {
	c, _ := newCPU(t, 0)
	// No refs: duration is exactly instructions/IPC.
	dur := c.RunSegment(0, Segment{Instructions: 2000})
	if dur != 1000 {
		t.Fatalf("duration = %d, want 1000 (2000 insns at IPC 2)", dur)
	}
	if c.Timeline().Time(sim.StateCompute) != 1000 {
		t.Fatal("compute time not charged")
	}
}

func TestRunSegmentMissesAddStall(t *testing.T) {
	c, _ := newCPU(t, 0)
	refs := make([]Ref, 16)
	for i := range refs {
		refs[i] = Ref{Addr: uint64(0x10000 + i*64)}
	}
	cold := c.RunSegment(0, Segment{Instructions: 2000, Refs: refs})
	// Second run: same addresses now cached — much faster.
	warm := c.RunSegment(cold, Segment{Instructions: 2000, Refs: refs})
	if cold <= warm {
		t.Fatalf("cold run (%d) not slower than warm run (%d)", cold, warm)
	}
	if warm != 1000 {
		t.Fatalf("warm run = %d, want pure base time 1000 (all L1 hits)", warm)
	}
}

func TestRunSegmentRefScale(t *testing.T) {
	c1, _ := newCPU(t, 0)
	c2, _ := newCPU(t, 0)
	refs := []Ref{{Addr: 0x40000}}
	d1 := c1.RunSegment(0, Segment{Instructions: 100, Refs: refs, RefScale: 1})
	d2 := c2.RunSegment(0, Segment{Instructions: 100, Refs: refs, RefScale: 10})
	if d2 <= d1 {
		t.Fatalf("scaled segment (%d) not slower than unscaled (%d)", d2, d1)
	}
}

func TestRunSegmentWritesDirtyLines(t *testing.T) {
	c, proto := newCPU(t, 3)
	refs := make([]Ref, 8)
	for i := range refs {
		refs[i] = Ref{Addr: uint64(0x20000 + i*64), Write: true}
	}
	c.RunSegment(0, Segment{Instructions: 100, Refs: refs})
	if proto.DirtyLines(3) != 8 {
		t.Fatalf("dirty lines = %d, want 8", proto.DirtyLines(3))
	}
}

func TestChargeHelpersRouteToStates(t *testing.T) {
	c, _ := newCPU(t, 0)
	m := c.Model()
	s1, _ := m.State(power.Sleep1)
	c.ChargeCompute(100)
	c.ChargeSpin(200)
	c.ChargeTransition(s1, 300)
	c.ChargeSleep(s1, 400)
	tl := c.Timeline()
	for _, tc := range []struct {
		st   sim.State
		want sim.Cycles
	}{
		{sim.StateCompute, 100},
		{sim.StateSpin, 200},
		{sim.StateTransition, 300},
		{sim.StateSleep, 400},
	} {
		if got := tl.Time(tc.st); got != tc.want {
			t.Errorf("%s time = %d, want %d", tc.st, got, tc.want)
		}
	}
	// Sleep energy must be far below spin energy per unit time.
	sleepW := tl.Energy(sim.StateSleep) / 400e-9
	spinW := tl.Energy(sim.StateSpin) / 200e-9
	if sleepW >= spinW {
		t.Fatalf("sleep power %v >= spin power %v", sleepW, spinW)
	}
}

func TestMinimumDuration(t *testing.T) {
	c, _ := newCPU(t, 0)
	if dur := c.RunSegment(0, Segment{Instructions: 0}); dur != 1 {
		t.Fatalf("zero-work segment duration = %d, want 1", dur)
	}
}

func TestStats(t *testing.T) {
	c, _ := newCPU(t, 0)
	c.RunSegment(0, Segment{Instructions: 100, Refs: []Ref{{Addr: 0x80000}}})
	segs, stall := c.Stats()
	if segs != 1 {
		t.Errorf("segments = %d, want 1", segs)
	}
	if stall <= 0 {
		t.Errorf("stall = %d, want > 0 (cold miss)", stall)
	}
}

func TestRunSegmentDVFSScaling(t *testing.T) {
	c1, _ := newCPU(t, 0)
	c2, _ := newCPU(t, 0)
	seg := Segment{Instructions: 2000}
	full, base1 := c1.RunSegmentDVFS(0, seg, 1.0, 0)
	half, base2 := c2.RunSegmentDVFS(0, seg, 0.5, 0)
	if full != 1000 || half != 2000 {
		t.Fatalf("durations = %d/%d, want 1000/2000", full, half)
	}
	if base1 != base2 {
		t.Fatalf("base-equivalent durations differ: %d vs %d", base1, base2)
	}
	// Energy at half frequency = f^2 = 25% of full-frequency energy.
	e1 := c1.Timeline().Energy(sim.StateCompute)
	e2 := c2.Timeline().Energy(sim.StateCompute)
	ratio := e2 / e1
	if ratio < 0.24 || ratio > 0.26 {
		t.Fatalf("half-frequency energy ratio = %v, want ~0.25", ratio)
	}
}

func TestRunSegmentDVFSMemoryStallUnscaled(t *testing.T) {
	mk := func(f float64) sim.Cycles {
		c, _ := newCPU(t, 0)
		dur, _ := c.RunSegmentDVFS(0, Segment{Instructions: 2000, Refs: []Ref{{Addr: 0x90000}}}, f, 0)
		return dur
	}
	full := mk(1.0)
	half := mk(0.5)
	// Core portion doubles (1000 -> 2000); the memory stall is identical,
	// so the gap is exactly the base time.
	if half-full != 1000 {
		t.Fatalf("stall scaled with frequency: full=%d half=%d", full, half)
	}
}

func TestRunSegmentDVFSBudgetRampsUp(t *testing.T) {
	// 2000 insns = 1000 base cycles; budget 400 at f=0.5: 400/0.5 + 600 =
	// 1400 cycles instead of 2000.
	c, _ := newCPU(t, 0)
	dur, baseEquiv := c.RunSegmentDVFS(0, Segment{Instructions: 2000}, 0.5, 400)
	if dur != 1400 {
		t.Fatalf("budgeted duration = %d, want 1400", dur)
	}
	if baseEquiv != 1000 {
		t.Fatalf("base equivalent = %d, want 1000", baseEquiv)
	}
}

func TestRunSegmentDVFSBadFactorPanics(t *testing.T) {
	c, _ := newCPU(t, 0)
	defer func() {
		if recover() == nil {
			t.Error("factor 0 did not panic")
		}
	}()
	c.RunSegmentDVFS(0, Segment{Instructions: 10}, 0, 0)
}
