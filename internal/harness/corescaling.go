package harness

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/cpu"
	"thriftybarrier/internal/mem/dram"
	"thriftybarrier/internal/sim"
	"thriftybarrier/internal/stats"
)

// CoreScalingRow is one measurement of the core-machine scaling study:
// the full CC-NUMA machine (caches, directories, DRAM, predictor) at one
// CPU count, one check-in topology, and one waiting policy, run on the
// sharded ParallelMachine. Energy and Time are normalized against the
// same-topology Baseline; PerCPUDigest hashes every CPU's energy and
// spin residency bit for bit, so the byte-identical artifact comparison
// across -j covers per-CPU state, not just aggregates.
type CoreScalingRow struct {
	Nodes        int
	Topology     string
	Variant      string
	Energy       float64
	Time         float64
	Span         sim.Cycles
	Sleeps       int
	EarlyWakes   int
	External     int
	LateWakes    int
	Disables     int
	Events       uint64
	PerCPUDigest string
}

// CoreScalingPoints are the CPU counts of the core-machine scaling
// study: the paper's 64 plus the 128/256 many-core points.
var CoreScalingPoints = []int{64, 128, 256}

// coreScalingRegion is the NoC region size of the study (and the NoC
// tree's level-0 fan-in).
const coreScalingRegion = 8

// coreScalingTreeArity is the fixed-arity tree's radix. Radix 8 keeps
// the 256-CPU fabric inside a barrier's counter-line budget and matches
// the region size, so the tree and NoC-tree differ only in counter
// placement.
const coreScalingTreeArity = 8

// CoreScalingProgram builds the speedup workload of the study: phases of
// region-local compute — each CPU streams over its own private pages and
// a page shared within its NoC region, so compute traffic never crosses
// regions and the barrier is the only global synchronization — with
// per-thread jitter and a rotating straggler (the load imbalance of the
// paper's Table 2 applications). Exported so cmd/thriftysim's
// -core-scaling mode runs exactly the workload the committed artifacts
// were measured on.
func CoreScalingProgram(seed uint64, nodes, phases int) core.Program {
	rng := sim.NewRNG(seed)
	baseAlt := []int64{300_000, 520_000, 360_000}
	regionPlace := dram.NewPlacement(coreScalingRegion, 4096)
	prog := make(core.SliceProgram, phases)
	for i := range prog {
		i := i
		base := baseAlt[i%3]
		straggler := rng.Intn(nodes)
		pr := rng.Split(uint64(i))
		prog[i] = core.PhaseSpec{
			PC:            uint64(0x500 + i%3),
			PreemptThread: -1,
			Segment: func(t int) cpu.Segment {
				r := pr.Split(uint64(t))
				insns := int64(float64(base) * (1 + 0.02*(2*r.Float64()-1)))
				if t == straggler {
					insns += 2 * insns / 5 // Table 2 imbalance: ~40% straggler
				}
				local := t % coreScalingRegion
				refs := make([]cpu.Ref, 0, 12)
				for j := 0; j < 8; j++ {
					refs = append(refs, cpu.Ref{
						Addr:  regionPlace.PrivateAddr(local, uint64(0x10000+j*64+i*4096)),
						Write: j%3 == 0,
					})
				}
				// The region-shared page: each region's protocol instance
				// is separate, so one address is automatically per-region.
				for j := 0; j < 4; j++ {
					refs = append(refs, cpu.Ref{
						Addr:  uint64(0x2000_0000 + j*64),
						Write: local == 0 && j == 0,
					})
				}
				return cpu.Segment{Instructions: insns, Refs: refs, RefScale: 64}
			},
		}
	}
	return prog
}

// coreScalingArch is the machine shape at one CPU count.
func coreScalingArch(seed uint64, nodes int) core.Arch {
	a := core.DefaultArch().WithNodes(nodes)
	a.Seed = seed
	a.RegionNodes = coreScalingRegion
	return a
}

// CoreScalingExperiment sweeps check-in topology × waiting policy at one
// CPU count on the sharded core machine with the given shard count
// (shards <= 0 selects the plain sequential engine). The machine's
// determinism contract makes every row — digest included — independent
// of shards, which the CI determinism job checks by diffing -j 1 against
// -j 8 artifacts.
func CoreScalingExperiment(seed uint64, nodes, shards int) []CoreScalingRow {
	prog := CoreScalingProgram(seed, nodes, 24)
	type fabric struct {
		label string
		topo  core.Topology
		arity int
	}
	fabrics := []fabric{
		{"flat", core.TopologyFlat, 0},
		{fmt.Sprintf("tree r=%d", coreScalingTreeArity), core.TopologyTree, coreScalingTreeArity},
		{"noc tree", core.TopologyNoCTree, 0},
	}
	var rows []CoreScalingRow
	for _, f := range fabrics {
		run := func(opts core.Options) core.ParallelResult {
			opts.Topology = f.topo
			opts.TreeArity = f.arity
			m, err := core.NewParallelMachine(coreScalingArch(seed, nodes), opts)
			if err != nil {
				panic(err) // static sweep configuration; never user input
			}
			return m.Run(prog, shards)
		}
		base := run(core.Baseline())
		for _, opts := range []core.Options{core.Baseline(), core.Thrifty()} {
			res := run(opts)
			n := res.Breakdown.Normalize(base.Breakdown)
			total := 0
			for _, c := range res.Stats.Sleeps {
				total += c
			}
			rows = append(rows, CoreScalingRow{
				Nodes:        nodes,
				Topology:     f.label,
				Variant:      opts.Name,
				Energy:       n.TotalEnergy(),
				Time:         n.SpanRatio,
				Span:         res.Span,
				Sleeps:       total,
				EarlyWakes:   res.Stats.EarlyWakes,
				External:     res.Stats.ExternalWakes,
				LateWakes:    res.Stats.LateWakes,
				Disables:     res.Stats.Disables,
				Events:       res.Events,
				PerCPUDigest: perCPUDigest(res),
			})
		}
	}
	return rows
}

// perCPUDigest folds every CPU's energy and spin residency into one
// hash, in CPU order, bit for bit.
func perCPUDigest(res core.ParallelResult) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, e := range res.PerCPUEnergy {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(e))
		h.Write(buf[:])
	}
	for _, s := range res.PerCPUSpin {
		binary.LittleEndian.PutUint64(buf[:], uint64(s))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// RenderCoreScaling formats one CPU count's core-machine scaling rows.
func RenderCoreScaling(nodes int, rows []CoreScalingRow) string {
	t := stats.NewTable(
		fmt.Sprintf("Core scaling: CC-NUMA machine at %d CPUs (sharded engine)", nodes),
		"Topology", "Variant", "Energy", "Time", "Span", "Sleeps", "Early", "External", "Late", "Disables", "Events", "PerCPU")
	for _, r := range rows {
		t.AddRowStrings(r.Topology, r.Variant,
			fmt.Sprintf("%.3f", r.Energy), fmt.Sprintf("%.4f", r.Time), r.Span.String(),
			fmt.Sprint(r.Sleeps), fmt.Sprint(r.EarlyWakes), fmt.Sprint(r.External),
			fmt.Sprint(r.LateWakes), fmt.Sprint(r.Disables), fmt.Sprint(r.Events), r.PerCPUDigest)
	}
	return t.String()
}
