// Package microbench defines the repo's performance-trajectory
// microbenchmarks once, so `go test -bench` (interactive runs) and
// `cmd/thriftybench -bench-json` (the recorded BENCH_*.json baselines)
// measure exactly the same code.
//
// The suite has three parts: the public goroutine barrier's arrival path
// (lock-free flat word and combining tree, against a mutex-serialized
// baseline equivalent to the pre-rewrite implementation), the wake-up
// fabric (the sharded timing wheel's many-barrier arm/cancel sweep up to
// a million resident barriers, with tail-lateness quantiles), and the
// simulator's event engine (schedule/fire steady state, which must stay
// allocation-free).
package microbench

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/harness"
	"thriftybarrier/internal/sim"
	"thriftybarrier/thrifty"
)

// Spec names one benchmark for the JSON trajectory.
type Spec struct {
	Name  string
	Bench func(*testing.B)
}

// Result is one benchmark's measurement, shaped for BENCH_*.json.
type Result struct {
	Name        string             `json:"name"`
	N           int                `json:"n"`
	NsPerOp     float64            `json:"ns_op"`
	AllocsPerOp int64              `json:"allocs_op"`
	BytesPerOp  int64              `json:"bytes_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run executes each spec under the testing harness's iteration controller
// and returns the measurements. A non-nil progress callback observes each
// result as it lands (the suites take tens of seconds end to end).
func Run(specs []Spec, progress func(Result)) []Result {
	out := make([]Result, 0, len(specs))
	for _, s := range specs {
		r := testing.Benchmark(s.Bench)
		res := Result{
			Name:        s.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = r.Extra
		}
		if progress != nil {
			progress(res)
		}
		out = append(out, res)
	}
	return out
}

// RuntimeSpecs is the goroutine-barrier half of the suite: the simulated
// contended-arrival acceptance pair (cycles/round under a modeled 64-CPU
// coherence protocol), then full-round rendezvous costs for the lock-free
// flat word and the combining tree against a mutex-arrival baseline with
// the pre-rewrite shape.
func RuntimeSpecs() []Spec {
	return []Spec{
		{"BarrierArrival/mutex-flat-64", SimulatedArrival(64, 0)},
		{"BarrierArrival/tree-radix4-64", SimulatedArrival(64, 4)},
		{"BarrierArrival/tree-radix8-64", SimulatedArrival(64, 8)},
		{"BarrierRendezvous/mutex-baseline-8", MutexBaseline(8)},
		{"BarrierRendezvous/lockfree-flat-8", Flat(8)},
		{"BarrierRendezvous/mutex-baseline-64", MutexBaseline(64)},
		{"BarrierRendezvous/lockfree-flat-64", Flat(64)},
		{"BarrierRendezvous/tree-radix8-64", Tree(64, 8)},
		{"BarrierRendezvous/tree-radix8-256", Tree(256, 8)},
		{"Predict/warm", PredictWarm()},
		{"Predict/update", PredictUpdate()},
	}
}

// SizeLabel renders a count for a benchmark name: exact thousands
// compress to "1k"/"100k", exact millions to "1M", anything else is the
// plain decimal — so labels stay correct for every n, unlike a
// hand-rolled digit-pair itoa.
func SizeLabel(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return strconv.Itoa(n/1_000_000) + "M"
	case n >= 1_000 && n%1_000 == 0:
		return strconv.Itoa(n/1_000) + "k"
	default:
		return strconv.Itoa(n)
	}
}

// WheelSpecs is the wake-up fabric third of the suite (BENCH_wheel.json):
// the many-barrier arm/cancel sweep, wheel versus the per-waiter
// runtime-timer baseline it replaced, carried up to the million-barrier
// regime. Past 10k resident the baseline drops out — a million live
// time.Timer values is not a viable comparison point, which is the
// regime the wheel exists for. Every entry also records p99/p999
// internal wake-up delivery lateness.
func WheelSpecs() []Spec {
	var specs []Spec
	for _, n := range []int{100, 1000, 10000} {
		specs = append(specs,
			Spec{"ManyBarriers/wheel-" + strconv.Itoa(n) + "x16", WheelManyBarriers(n, 16)},
			Spec{"ManyBarriers/timer-" + strconv.Itoa(n) + "x16", TimerManyBarriers(n, 16)},
		)
	}
	for _, n := range []int{100_000, 1_000_000} {
		specs = append(specs,
			Spec{"ManyBarriers/wheel-" + strconv.Itoa(n) + "x16", WheelManyBarriers(n, 16)})
	}
	return specs
}

// SimSpecs is the event-engine half of the suite.
func SimSpecs() []Spec {
	return []Spec{
		{"EngineScheduleFire/empty", EngineScheduleFire(0)},
		{"EngineScheduleFire/pending-1k", EngineScheduleFire(1024)},
		{"EngineScheduleCancelFire", EngineScheduleCancelFire()},
		{"ParallelEngine/shards-1", ParallelEngineEvents(1)},
		{"ParallelEngine/shards-4", ParallelEngineEvents(4)},
		{"ParallelEngine/shards-8", ParallelEngineEvents(8)},
		{"ParallelCore/seq", ParallelCoreEvents(0)},
		{"ParallelCore/shards-1", ParallelCoreEvents(1)},
		{"ParallelCore/shards-4", ParallelCoreEvents(4)},
		{"ParallelCore/shards-8", ParallelCoreEvents(8)},
	}
}

// SimulatedArrival measures one warm barrier round-trip on the simulated
// nodes-CPU machine (arity 0 = the paper's flat lock-protected counter),
// reporting the modeled contended-arrival cost as cycles/round and its
// inverse throughput as rounds/Mcycle.
func SimulatedArrival(nodes, arity int) func(*testing.B) {
	return func(b *testing.B) {
		var cyc sim.Cycles
		for i := 0; i < b.N; i++ {
			cyc = harness.BarrierRoundLatency(nodes, arity, 1)
		}
		b.ReportMetric(float64(cyc), "cycles/round")
		b.ReportMetric(1e6/float64(cyc), "rounds/Mcycle")
	}
}

// barrierRounds drives parties goroutines through b.N rendezvous each;
// ns/op is therefore the per-party cost of one barrier crossing.
func barrierRounds(b *testing.B, parties int, wait func()) {
	b.ReportAllocs()
	var wg sync.WaitGroup
	rounds := b.N
	b.ResetTimer()
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				wait()
			}
		}()
	}
	wg.Wait()
}

// Flat benchmarks the lock-free central-counter arrival.
func Flat(parties int) func(*testing.B) {
	return func(b *testing.B) {
		bar := thrifty.New(parties, thrifty.Options{})
		barrierRounds(b, parties, func() { bar.WaitSite(1) })
	}
}

// Tree benchmarks the combining-tree arrival.
func Tree(parties, radix int) func(*testing.B) {
	return func(b *testing.B) {
		bar := thrifty.New(parties, thrifty.Options{TreeRadix: radix})
		barrierRounds(b, parties, func() { bar.WaitSite(1) })
	}
}

// MutexBaseline benchmarks a barrier whose arrival is serialized through a
// mutex critical section — the shape of the pre-rewrite thrifty.Barrier:
// every arrival locks, counts, and the last one swaps the round and
// broadcasts; early arrivers spin briefly on the round flag, then park on
// its channel (the warm-up spin-then-park policy).
func MutexBaseline(parties int) func(*testing.B) {
	return func(b *testing.B) {
		bar := newMutexBarrier(parties)
		barrierRounds(b, parties, bar.wait)
	}
}

type mutexRound struct {
	ch   chan struct{}
	done atomic.Bool
}

type mutexBarrier struct {
	mu      sync.Mutex
	parties int
	count   int
	cur     *mutexRound
}

func newMutexBarrier(parties int) *mutexBarrier {
	return &mutexBarrier{parties: parties, cur: &mutexRound{ch: make(chan struct{})}}
}

func (b *mutexBarrier) wait() {
	b.mu.Lock()
	b.count++
	if b.count == b.parties {
		b.count = 0
		old := b.cur
		b.cur = &mutexRound{ch: make(chan struct{})}
		old.done.Store(true)
		b.mu.Unlock()
		close(old.ch)
		return
	}
	rd := b.cur
	b.mu.Unlock()
	// Bounded spin on the release flag, then park — the pre-rewrite
	// warm-up policy (only the arrival itself held the mutex).
	for i := 0; i < 4096; i++ {
		if rd.done.Load() {
			return
		}
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
	<-rd.ch
}

// EngineScheduleFire benchmarks one schedule + one fire against a queue
// holding `pending` other events — the simulator's steady-state op. It
// must report 0 allocs/op.
func EngineScheduleFire(pending int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine()
		fn := func() {}
		for i := 0; i < pending; i++ {
			e.After(sim.Cycles(1_000_000+i), fn)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.After(10, fn)
			e.Step()
		}
	}
}

// ParallelEngineEvents drives the conservative parallel engine through a
// 64-rank token-ring workload — every event hops to the next rank exactly
// one lookahead ahead, ranks block-mapped onto shards, so consecutive hops
// cross shard boundaries and every window carries cross-shard merges. The
// headline metric is ns/event; shards-1 measures the sequential golden
// reference's window overhead against the raw engine numbers above.
func ParallelEngineEvents(shards int) func(*testing.B) {
	return func(b *testing.B) {
		const (
			ranks     = 64
			tokens    = 64
			hops      = 256
			lookahead = sim.Cycles(48)
		)
		for i := 0; i < b.N; i++ {
			pe := sim.NewParallelEngine(shards, lookahead)
			owner := make([]int, ranks)
			for r := range owner {
				owner[r] = r * shards / ranks
			}
			counter := make([]uint32, ranks)
			order := func(r int) uint64 {
				counter[r]++
				return uint64(r)<<32 | uint64(counter[r])
			}
			var hop func(r, left int) func()
			hop = func(r, left int) func() {
				return func() {
					if left == 0 {
						return
					}
					s := pe.Shard(owner[r])
					next := (r + 1) % ranks
					when := s.Now() + lookahead
					o := order(r)
					fn := hop(next, left-1)
					if owner[next] == owner[r] {
						s.At(when, o, fn)
					} else {
						s.Post(owner[next], when, o, fn)
					}
				}
			}
			for k := 0; k < tokens; k++ {
				r := k % ranks
				pe.Shard(owner[r]).At(sim.Cycles(k+1), order(r), hop(r, hops))
			}
			pe.Run()
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*tokens*(hops+1)), "ns/event")
	}
}

// ParallelCoreEvents drives the full sharded CC-NUMA core machine —
// caches, directories, predictor, sleep transitions — through a short
// Thrifty run at 64 CPUs (8-CPU NoC regions, the core-scaling study's
// workload) and reports ns/event over the machine's own event count.
// shards 0 is the plain sequential engine, the golden reference;
// shards-1 isolates the parallel engine's window overhead on identical
// physics; shards-4/8 measure the conservative-window throughput the
// 256-CPU study leans on.
func ParallelCoreEvents(shards int) func(*testing.B) {
	return func(b *testing.B) {
		arch := core.DefaultArch().WithNodes(64)
		arch.RegionNodes = 8
		prog := harness.CoreScalingProgram(1, 64, 6)
		var events uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := core.NewParallelMachine(arch, core.Thrifty())
			if err != nil {
				b.Fatal(err)
			}
			events += m.Run(prog, shards).Events
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	}
}

// EngineScheduleCancelFire exercises the Cancel path: schedule two, cancel
// one by handle, fire the other.
func EngineScheduleCancelFire() func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine()
		fn := func() {}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h := e.After(20, fn)
			e.After(10, fn)
			e.Cancel(h)
			e.Step()
		}
	}
}
