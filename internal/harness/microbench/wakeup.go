package microbench

import (
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"thriftybarrier/internal/predict"
	"thriftybarrier/internal/sim"
	"thriftybarrier/internal/wheel"
)

// This file is the wake-up half of the suite: the §3.2 predictor table's
// hot pair (its cost sits on every arrival), and the many-barrier
// internal wake-up regime — the timing wheel against the per-waiter
// time.Timer shape it replaced. The timer baselines below are the ONLY
// sanctioned raw-timer wake paths in wheel-adjacent code; the waketimer
// analyzer flags any other.

// PredictWarm measures Table.Predict on a warm entry — the per-arrival
// lookup cost of the §3.2 PC-indexed table.
func PredictWarm() func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		t := predict.NewTable(predict.DefaultConfig())
		for pc := uint64(0); pc < 64; pc++ {
			t.Update(pc*8, sim.Cycles(1000+pc))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := t.Predict(uint64(i%64) * 8); !ok {
				b.Fatal("warm entry missed")
			}
		}
	}
}

// PredictUpdate measures Table.Update on the production last-value
// policy — the per-release cost of feeding the predictor.
func PredictUpdate() func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		t := predict.NewTable(predict.DefaultConfig())
		for pc := uint64(0); pc < 64; pc++ {
			t.Update(pc*8, sim.Cycles(1000+pc))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Update(uint64(i%64)*8, sim.Cycles(1000+i%64))
		}
	}
}

// WheelManyBarriers measures the internal wake-up arm/cancel pair on the
// timing wheel in the many-barrier regime: `barriers` other concurrent
// barrier groups hold pending wake-ups resident in the wheel while
// parties-1 waiters of one group arm at the predicted release and are
// cancelled by the external wake-up (the steady-state outcome of the
// §3.3.2 race). ns/op is the whole per-round batch; the ns/armcancel
// metric is the per-waiter pair the acceptance criteria quote. The p99
// wake metric probes real end-to-end internal wake-up delivery lateness
// through the ticker.
func WheelManyBarriers(barriers, parties int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		w := wheel.New(wheel.Config{})
		defer w.Stop()
		// Resident load: one pending internal wake-up per other barrier
		// group, far enough out never to fire during the measurement.
		resCh := make(chan struct{}, 1)
		for i := 0; i < barriers; i++ {
			w.Arm(time.Hour+time.Duration(i)*time.Millisecond, resCh)
		}
		waiters := parties - 1
		chs := make([]chan struct{}, waiters)
		hs := make([]wheel.Handle, waiters)
		// Deadlines spread over the timed-park band (§3.3.2's predicted
		// release minus margin), precomputed so the timed loop measures
		// the engine, not the input generation.
		ds := make([]time.Duration, waiters)
		for j := range chs {
			chs[j] = make(chan struct{}, 1)
			ds[j] = time.Duration(1+j%5) * time.Millisecond
		}
		armCancel := func() {
			for j := 0; j < waiters; j++ {
				hs[j] = w.Arm(ds[j], chs[j])
			}
			for j := 0; j < waiters; j++ {
				if !w.Cancel(hs[j]) {
					<-chs[j] // fire won the race: consume the token
				}
			}
		}
		armCancel() // warm the node arena so the timed loop is steady-state
		// Collect setup garbage (this and prior runs' arenas) now: on a
		// single-P box a background mark worker would otherwise steal a
		// quarter of the CPU mid-measurement.
		runtime.GC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			armCancel()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*waiters), "ns/armcancel")
		p99, p999 := probeWakeTail(func(d time.Duration, ch chan struct{}) {
			w.Arm(d, ch)
		})
		b.ReportMetric(p99, "p99-wake-us")
		b.ReportMetric(p999, "p999-wake-us")
	}
}

// TimerManyBarriers is the per-waiter runtime-timer baseline — the exact
// pre-wheel shape of thrifty.timedPark: a sync.Pool of time.Timer values,
// Get+Reset on park, Stop+non-blocking-drain+Put on external wake-up,
// with `barriers` other groups' timers resident in the runtime's timer
// heaps. Every Reset and Stop is a sift in a heap of `barriers` entries
// plus the pool round trip — the cost profile the wheel exists to
// flatten (and the drain-then-Put is the protocol with the reuse race
// that TestTimedParkWakeRaceExternalVsTimerFire pins; see thrifty/wake.go).
func TimerManyBarriers(barriers, parties int) func(*testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		resident := make([]*time.Timer, barriers)
		for i := range resident {
			//lint:ignore waketimer intentional baseline: the per-waiter runtime-timer shape the wheel replaced
			resident[i] = time.NewTimer(time.Hour + time.Duration(i)*time.Millisecond)
		}
		defer func() {
			for _, t := range resident {
				t.Stop()
			}
		}()
		waiters := parties - 1
		var pool sync.Pool
		timers := make([]*time.Timer, waiters)
		ds := make([]time.Duration, waiters)
		for j := range ds {
			ds[j] = time.Duration(1+j%5) * time.Millisecond
		}
		park := func(j int) {
			t, _ := pool.Get().(*time.Timer)
			if t == nil {
				//lint:ignore waketimer intentional baseline: the per-waiter runtime-timer shape the wheel replaced
				t = time.NewTimer(ds[j])
			} else {
				t.Reset(ds[j])
			}
			timers[j] = t
		}
		unpark := func(j int) {
			t := timers[j]
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
			pool.Put(t)
		}
		for j := 0; j < waiters; j++ { // warm the pool like the wheel warms its arena
			park(j)
		}
		for j := 0; j < waiters; j++ {
			unpark(j)
		}
		runtime.GC() // same pre-measurement collection as the wheel variant
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < waiters; j++ {
				park(j)
			}
			for j := 0; j < waiters; j++ {
				unpark(j)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*waiters), "ns/armcancel")
		// time.AfterFunc needs no waketimer directive: the analyzer
		// sanctions it (stall-watchdog escape hatch).
		p99, p999 := probeWakeTail(func(d time.Duration, ch chan struct{}) {
			time.AfterFunc(d, func() {
				select {
				case ch <- struct{}{}:
				default:
				}
			})
		})
		b.ReportMetric(p99, "p99-wake-us")
		b.ReportMetric(p999, "p999-wake-us")
	}
}

// probeWakeTail arms a burst of short wake-ups and reports the p99 and
// p999 delivery lateness in microseconds: how far past the requested
// deadline the token actually arrived. For the wheel this bounds
// quantization (one tick) plus ticker latency; the residual spin absorbs
// it (§2). 1024 samples, so the p999 quantile rests on an order
// statistic rather than the single worst outlier.
func probeWakeTail(arm func(time.Duration, chan struct{})) (p99, p999 float64) {
	const samples = 1024
	lat := make([]float64, samples)
	var wg sync.WaitGroup
	for i := 0; i < samples; i++ {
		wg.Add(1)
		d := time.Duration(2+i%3) * time.Millisecond
		ch := make(chan struct{}, 1)
		target := time.Now().Add(d)
		arm(d, ch)
		go func(i int) {
			defer wg.Done()
			<-ch
			lat[i] = float64(time.Since(target).Microseconds())
		}(i)
	}
	wg.Wait()
	sort.Float64s(lat)
	return lat[samples*99/100], lat[samples*999/1000]
}
