package harness

import (
	"fmt"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/cpu"
	"thriftybarrier/internal/locks"
	"thriftybarrier/internal/mp"
	"thriftybarrier/internal/power"
	"thriftybarrier/internal/sim"
	"thriftybarrier/internal/stats"
	"thriftybarrier/internal/workload"
)

// SensitivityRow is one point of a parameter sweep.
type SensitivityRow struct {
	Param  string
	Energy float64 // Thrifty normalized energy vs that point's Baseline
	Time   float64 // Thrifty span ratio
	Halt   float64 // Thrifty-Halt normalized energy
}

// SensitivityNodes sweeps the machine size: the savings depend on the
// imbalance, not the scale, so they should hold from 8 to 64 nodes while
// the flat barrier's check-in serialization grows with N.
func SensitivityNodes(seed uint64) []SensitivityRow {
	var rows []SensitivityRow
	spec := workload.FMM()
	for _, n := range []int{8, 16, 32, 64} {
		arch := core.DefaultArch().WithNodes(n)
		prog := spec.Build(n, seed)
		base := core.NewMachine(arch, core.Baseline()).Run(prog)
		thr := core.NewMachine(arch, core.Thrifty()).Run(prog)
		hlt := core.NewMachine(arch, core.ThriftyHalt()).Run(prog)
		nt := thr.Breakdown.Normalize(base.Breakdown)
		nh := hlt.Breakdown.Normalize(base.Breakdown)
		rows = append(rows, SensitivityRow{
			Param:  fmt.Sprintf("%d nodes", n),
			Energy: nt.TotalEnergy(), Time: nt.SpanRatio, Halt: nh.TotalEnergy(),
		})
	}
	return rows
}

// SensitivityTransition scales every sleep state's transition latency: the
// design's benefit must degrade gracefully as transitions approach the
// barrier stall times (the "slower hardware" what-if).
func SensitivityTransition(seed uint64) []SensitivityRow {
	var rows []SensitivityRow
	spec := workload.FMM()
	arch := core.DefaultArch()
	prog := spec.Build(arch.Nodes, seed)
	base := core.NewMachine(arch, core.Baseline()).Run(prog)
	for _, scale := range []float64{0.5, 1, 2, 4, 8} {
		states := power.Table3()
		for i := range states {
			states[i].Transition = sim.Cycles(float64(states[i].Transition) * scale)
		}
		opts := core.Thrifty()
		opts.States = states
		thr := core.NewMachine(arch, opts).Run(prog)
		n := thr.Breakdown.Normalize(base.Breakdown)
		rows = append(rows, SensitivityRow{
			Param:  fmt.Sprintf("%.1fx latency", scale),
			Energy: n.TotalEnergy(), Time: n.SpanRatio,
		})
	}
	return rows
}

// AblationTopology compares the paper's flat lock-protected counter with
// combining trees on a balanced program (where the flat barrier's O(N)
// check-in serialization dominates) and on Ocean.
func AblationTopology(arch core.Arch, seed uint64) []AblationRow {
	var rows []AblationRow
	balanced := core.UniformProgram(0x900, 10, func(instance, thread int) cpu.Segment {
		return cpu.Segment{Instructions: 1_000_000}
	})
	cases := []struct {
		name string
		prog core.Program
	}{
		{"balanced", balanced},
		{"Ocean", workload.Ocean().Build(arch.Nodes, seed)},
	}
	for _, c := range cases {
		base := core.NewMachine(arch, core.Baseline()).Run(c.prog)
		for _, arity := range []int{0, 4, 8} {
			opts := core.Thrifty()
			opts.TreeArity = arity
			name := "flat (paper)"
			if arity > 0 {
				name = fmt.Sprintf("tree-%d", arity)
			}
			res := core.NewMachine(arch, opts).Run(c.prog)
			n := res.Breakdown.Normalize(base.Breakdown)
			rows = append(rows, AblationRow{
				App: c.name, Variant: name,
				Energy: n.TotalEnergy(), Time: n.SpanRatio, Stats: res.Stats,
			})
		}
	}
	return rows
}

// AblationConfidence compares the paper's permanent cut-off with the
// confidence-estimator alternative it sketches as future work, on Ocean
// (where barriers destabilize and later re-stabilize).
func AblationConfidence(arch core.Arch, seed uint64) []AblationRow {
	spec := workload.Ocean()
	prog := spec.Build(arch.Nodes, seed)
	base := core.NewMachine(arch, core.Baseline()).Run(prog)
	var rows []AblationRow
	add := func(name string, opts core.Options) {
		res := core.NewMachine(arch, opts).Run(prog)
		n := res.Breakdown.Normalize(base.Breakdown)
		rows = append(rows, AblationRow{
			App: spec.Name, Variant: name,
			Energy: n.TotalEnergy(), Time: n.SpanRatio, Stats: res.Stats,
		})
	}
	add("cutoff (paper)", core.Thrifty())
	conf := core.Thrifty()
	conf.Cutoff = 0
	conf.Predictor.Confidence = true
	add("confidence 2-bit", conf)
	both := core.Thrifty()
	both.Predictor.Confidence = true
	add("cutoff+confidence", both)
	none := core.Thrifty()
	none.Cutoff = 0
	add("neither", none)
	return rows
}

// LockRow is one lock-experiment measurement.
type LockRow struct {
	Variant string
	Energy  float64
	Time    float64
	Idle    sim.Cycles
	Stats   locks.Stats
}

// LockExperiment runs the thrifty-lock extension under saturation and
// moderate contention.
func LockExperiment(seed uint64) (saturated, moderate []LockRow) {
	run := func(cfg locks.Config) []LockRow {
		base := locks.NewMachine(cfg, locks.SpinLock()).Run()
		var rows []LockRow
		for _, opts := range []locks.Options{locks.SpinLock(), locks.ThriftyLock(), locks.NaiveLock(), locks.OracleLock()} {
			res := locks.NewMachine(cfg, opts).Run()
			n := res.Breakdown.Normalize(base.Breakdown)
			rows = append(rows, LockRow{
				Variant: opts.Name,
				Energy:  n.TotalEnergy(), Time: n.SpanRatio,
				Idle: res.Stats.LockIdle, Stats: res.Stats,
			})
		}
		return rows
	}
	sat := locks.DefaultConfig()
	sat.Seed = seed
	sat.Threads = 24
	sat.MeanThink = 20 * sim.Microsecond
	sat.MeanHold = 30 * sim.Microsecond
	mod := locks.DefaultConfig()
	mod.Seed = seed
	mod.Threads = 12
	mod.MeanThink = 300 * sim.Microsecond
	mod.MeanHold = 20 * sim.Microsecond
	return run(sat), run(mod)
}

// MPRow is one message-passing-experiment measurement.
type MPRow struct {
	Variant string
	Energy  float64
	Time    float64
	Stats   mp.Stats
}

// MPExperiment runs the message-passing extension on an FMM-like phase
// program over the 64-node cluster.
func MPExperiment(seed uint64) []MPRow {
	cfg := mp.DefaultConfig()
	rng := sim.NewRNG(seed)
	prog := make(mp.Program, 48)
	for i := range prog {
		i := i
		baseAlt := []sim.Cycles{900 * sim.Microsecond, 1800 * sim.Microsecond, 950 * sim.Microsecond}
		base := baseAlt[i%3]
		straggler := rng.Intn(cfg.Nodes)
		pr := rng.Split(uint64(i))
		prog[i] = mp.Phase{
			PC: uint64(0x100 + i%3),
			Work: func(rank int) sim.Cycles {
				r := pr.Split(uint64(rank))
				d := float64(base) * (1 + 0.05*(2*r.Float64()-1))
				if rank == straggler {
					d *= 1.20
				}
				return sim.Cycles(d)
			},
		}
	}
	var rows []MPRow
	for _, alg := range []mp.Algorithm{mp.TreeBarrier, mp.DisseminationBarrier} {
		c := cfg
		c.Algorithm = alg
		base := mp.MustNewMachine(c, mp.Baseline()).Run(prog)
		for _, opts := range []mp.Options{mp.Baseline(), mp.Thrifty(), mp.Oracle()} {
			res := mp.MustNewMachine(c, opts).Run(prog)
			n := res.Breakdown.Normalize(base.Breakdown)
			rows = append(rows, MPRow{
				Variant: opts.Name + " (" + alg.String() + ")",
				Energy:  n.TotalEnergy(), Time: n.SpanRatio, Stats: res.Stats,
			})
		}
	}
	return rows
}

// RenderSensitivity formats a sweep.
func RenderSensitivity(title string, rows []SensitivityRow) string {
	t := stats.NewTable(title, "Point", "Thrifty energy", "Thrifty time", "Halt energy")
	for _, r := range rows {
		halt := "-"
		if r.Halt > 0 {
			halt = fmt.Sprintf("%.3f", r.Halt)
		}
		t.AddRowStrings(r.Param, fmt.Sprintf("%.3f", r.Energy), fmt.Sprintf("%.4f", r.Time), halt)
	}
	return t.String()
}

// RenderLocks formats the lock-extension results.
func RenderLocks(saturated, moderate []LockRow) string {
	render := func(title string, rows []LockRow) string {
		t := stats.NewTable(title, "Variant", "Energy", "Time", "LockIdle", "Sleeps", "PreWakes", "ReSleeps", "Disables")
		for _, r := range rows {
			total := 0
			for _, n := range r.Stats.Sleeps {
				total += n
			}
			t.AddRowStrings(r.Variant, fmt.Sprintf("%.3f", r.Energy), fmt.Sprintf("%.4f", r.Time),
				r.Idle.String(), fmt.Sprint(total), fmt.Sprint(r.Stats.PreWakes),
				fmt.Sprint(r.Stats.ReSleeps), fmt.Sprint(r.Stats.Disables))
		}
		return t.String()
	}
	return render("Extension: thrifty MCS lock, saturated (24 threads)", saturated) + "\n" +
		render("Extension: thrifty MCS lock, moderate contention (12 threads)", moderate)
}

// RenderMP formats the message-passing-extension results.
func RenderMP(rows []MPRow) string {
	t := stats.NewTable("Extension: thrifty barrier on a 64-node message-passing cluster",
		"Variant", "Energy", "Time", "Sleeps", "Early", "External", "Late", "Disables")
	for _, r := range rows {
		total := 0
		for _, n := range r.Stats.Sleeps {
			total += n
		}
		t.AddRowStrings(r.Variant, fmt.Sprintf("%.3f", r.Energy), fmt.Sprintf("%.4f", r.Time),
			fmt.Sprint(total), fmt.Sprint(r.Stats.EarlyWakes), fmt.Sprint(r.Stats.ExternalWakes),
			fmt.Sprint(r.Stats.LateWakes), fmt.Sprint(r.Stats.Disables))
	}
	return t.String()
}

// LockContentionSweep sweeps the contention level (think/hold ratio) of
// the thrifty MCS lock, showing where the savings appear and what they
// cost.
func LockContentionSweep(seed uint64) []SensitivityRow {
	var rows []SensitivityRow
	for _, think := range []sim.Cycles{400, 200, 100, 50, 20} {
		cfg := locks.DefaultConfig()
		cfg.Seed = seed
		cfg.Threads = 16
		cfg.MeanThink = think * sim.Microsecond
		cfg.MeanHold = 25 * sim.Microsecond
		base := locks.NewMachine(cfg, locks.SpinLock()).Run()
		thr := locks.NewMachine(cfg, locks.ThriftyLock()).Run()
		n := thr.Breakdown.Normalize(base.Breakdown)
		rows = append(rows, SensitivityRow{
			Param:  fmt.Sprintf("think %dus", int64(think)),
			Energy: n.TotalEnergy(), Time: n.SpanRatio,
		})
	}
	return rows
}

// BarrierLatencyRow is one point of the barrier-latency microbenchmark.
type BarrierLatencyRow struct {
	Nodes int
	Flat  sim.Cycles
	Tree4 sim.Cycles
	Tree8 sim.Cycles
}

// BarrierRoundLatency measures one warm barrier round-trip — all threads
// arrive simultaneously; how long until the last departure — on a
// simulated nodes-CPU machine with the given check-in arity (0 = the flat
// lock-protected counter of Figure 2). Coherence contention on the
// check-in line(s) is fully modeled, so this is the contended arrival
// cost a real multiprocessor would see.
func BarrierRoundLatency(nodes, arity int, seed uint64) sim.Cycles {
	arch := core.DefaultArch().WithNodes(nodes)
	opts := core.Baseline()
	opts.TreeArity = arity
	prog := core.UniformProgram(0x1, 3, func(instance, thread int) cpu.Segment {
		return cpu.Segment{Instructions: 2000} // ~1us: simultaneous arrivals
	})
	m := core.NewMachine(arch, opts)
	m.SetRecording(true)
	res := m.Run(prog)
	// Use the last episode (warm caches): release-to-last-departure
	// plus arrival serialization = span of the episode beyond compute.
	ep := res.Episodes[len(res.Episodes)-1]
	first := ep.Arrive[0]
	for _, a := range ep.Arrive {
		if a < first {
			first = a
		}
	}
	last := ep.Depart[0]
	for _, d := range ep.Depart {
		if d > last {
			last = d
		}
	}
	return last - first
}

// BarrierLatency measures the pure barrier round-trip for the flat
// (Figure 2) check-in versus combining trees, across machine sizes. This
// quantifies the O(N) counter serialization the topology ablation exploits
// (cf. Kumar et al., discussed in §6).
func BarrierLatency(seed uint64) []BarrierLatencyRow {
	var rows []BarrierLatencyRow
	for _, n := range []int{8, 16, 32, 64} {
		rows = append(rows, BarrierLatencyRow{
			Nodes: n,
			Flat:  BarrierRoundLatency(n, 0, seed),
			Tree4: BarrierRoundLatency(n, 4, seed),
			Tree8: BarrierRoundLatency(n, 8, seed),
		})
	}
	return rows
}

// RenderBarrierLatency formats the microbenchmark.
func RenderBarrierLatency(rows []BarrierLatencyRow) string {
	t := stats.NewTable("Barrier latency microbenchmark (simultaneous arrivals, first arrival to last departure)",
		"Nodes", "Flat (paper)", "Tree-4", "Tree-8")
	for _, r := range rows {
		t.AddRowStrings(fmt.Sprint(r.Nodes), r.Flat.String(), r.Tree4.String(), r.Tree8.String())
	}
	return t.String()
}
