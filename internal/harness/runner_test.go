package harness

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/workload"
)

// TestParallelMatchesSequential is the determinism contract of the
// tentpole: fanning the matrix across a pool must leave every rendered
// artifact byte-identical to the sequential run.
func TestParallelMatchesSequential(t *testing.T) {
	arch := core.DefaultArch().WithNodes(8)
	specs := workload.All()[:3]
	configs := core.Configurations()

	seqR := &Runner{Jobs: 1}
	parR := &Runner{Jobs: 8}
	seq := seqR.RunMatrix(arch, 1, specs, configs)
	par := parR.RunMatrix(arch, 1, specs, configs)

	for _, render := range []func([]AppRun) string{
		func(a []AppRun) string { return RenderFigure(a, true) },
		func(a []AppRun) string { return RenderFigure(a, false) },
		func(a []AppRun) string { return RenderFigureCSV(a, true) },
		func(a []AppRun) string { return RenderSummary(Summarize(a)) },
	} {
		if s, p := render(seq), render(par); s != p {
			t.Fatalf("parallel run diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", s, p)
		}
	}
}

// TestDoPanicIsolation: a panicking job is reported via Err and its
// siblings complete normally.
func TestDoPanicIsolation(t *testing.T) {
	r := &Runner{Jobs: 4}
	results := r.Do([]Job{
		{Name: "ok1", Run: func() (string, any) { return "one", 1 }},
		{Name: "boom", Run: func() (string, any) { panic("injected failure") }},
		{Name: "ok2", Run: func() (string, any) { return "two", 2 }},
	})
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if results[0].Err != "" || results[0].Text != "one" {
		t.Errorf("ok1 = %+v, want clean result", results[0])
	}
	if !strings.Contains(results[1].Err, "injected failure") {
		t.Errorf("boom.Err = %q, want the panic message", results[1].Err)
	}
	if results[2].Err != "" || results[2].Text != "two" {
		t.Errorf("ok2 = %+v, want clean result", results[2])
	}
}

// TestDoTimeout: a wedged job is abandoned with a diagnostic while its
// siblings complete.
func TestDoTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // unwedge the abandoned goroutine at test end
	r := &Runner{Jobs: 4, Timeout: 50 * time.Millisecond}
	results := r.Do([]Job{
		{Name: "hang", Run: func() (string, any) { <-release; return "", nil }},
		{Name: "ok", Run: func() (string, any) { return "fine", nil }},
	})
	if !strings.Contains(results[0].Err, "timed out") {
		t.Errorf("hang.Err = %q, want a timeout diagnostic", results[0].Err)
	}
	if results[1].Err != "" || results[1].Text != "fine" {
		t.Errorf("ok = %+v, want clean result", results[1])
	}
}

// TestDoOverlapsJobs: with pool width w, w sleeping jobs overlap — the
// wall-clock proof the pool actually runs jobs concurrently (valid even
// on a single-core host: sleeps need no CPU).
func TestDoOverlapsJobs(t *testing.T) {
	const naps = 4
	const nap = 100 * time.Millisecond
	job := Job{Name: "nap", Run: func() (string, any) { time.Sleep(nap); return "", nil }}
	jobs := []Job{job, job, job, job}

	start := time.Now()
	(&Runner{Jobs: naps}).Do(jobs)
	wide := time.Since(start)

	if wide >= naps*nap/2 {
		t.Errorf("width-%d pool took %v over %d×%v sleeps; want at least 2x overlap", naps, wide, naps, nap)
	}
}

// TestDoBoundsConcurrency: a width-1 pool never runs two jobs at once.
func TestDoBoundsConcurrency(t *testing.T) {
	var live, maxLive atomic.Int32
	job := Job{Name: "n", Run: func() (string, any) {
		if l := live.Add(1); l > maxLive.Load() {
			maxLive.Store(l)
		}
		time.Sleep(5 * time.Millisecond)
		live.Add(-1)
		return "", nil
	}}
	(&Runner{Jobs: 1}).Do([]Job{job, job, job})
	if maxLive.Load() != 1 {
		t.Errorf("width-1 pool reached %d concurrent jobs, want 1", maxLive.Load())
	}
}

// TestRunMatrixBaselineFailure: a failed Baseline poisons that app's
// normalization (every sibling carries Err) without touching other apps.
func TestRunMatrixBaselineFailure(t *testing.T) {
	arch := core.DefaultArch().WithNodes(4)
	specs := workload.All()[:1]
	// Cutoff < 0 fails Options.Validate, so NewMachine panics inside the
	// cell; the runner must recover it into ConfigRun.Err.
	bad := core.Baseline()
	bad.Cutoff = -1
	configs := []core.Options{bad, core.Thrifty()}

	apps := (&Runner{Jobs: 2}).RunMatrix(arch, 1, specs, configs)
	runs := apps[0].Runs
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	if !strings.Contains(runs[0].Err, "panic") {
		t.Errorf("baseline.Err = %q, want recovered panic", runs[0].Err)
	}
	if runs[1].Err != "baseline run failed; normalization unavailable" {
		t.Errorf("sibling.Err = %q, want the poisoned-normalization marker", runs[1].Err)
	}

	// The renderers must degrade, not crash, on the poisoned app.
	fig := RenderFigure(apps, true)
	if !strings.Contains(fig, "FAILED") {
		t.Errorf("RenderFigure output lacks FAILED marker:\n%s", fig)
	}
	if sums := Summarize(apps); len(sums) != 2 {
		t.Errorf("Summarize returned %d summaries, want 2 (skipping failed runs, not configs)", len(sums))
	}
}

// TestManifestRecords: the manifest accumulates per-run walls and carries
// the invocation parameters.
func TestManifestRecords(t *testing.T) {
	r := &Runner{Jobs: 3, Timeout: time.Second}
	m := NewManifest(7, 16, r)
	if m.Seed != 7 || m.Nodes != 16 || m.Jobs != 3 || m.Timeout != "1s" {
		t.Fatalf("manifest header = %+v", m)
	}
	m.Record("a", 10*time.Millisecond, "")
	m.Record("b", 15*time.Millisecond, "timed out")
	if len(m.Runs) != 2 || m.Runs[1].Err != "timed out" {
		t.Fatalf("runs = %+v", m.Runs)
	}
	if m.TotalWallMS != 25 {
		t.Errorf("TotalWallMS = %v, want 25", m.TotalWallMS)
	}
}

// TestMarshalArtifactStable: the JSON twin of a matrix result must not
// depend on host timing (Wall is excluded from ConfigRun).
func TestMarshalArtifactStable(t *testing.T) {
	run := ConfigRun{Config: core.Baseline(), Wall: 123 * time.Millisecond}
	b, err := MarshalArtifact([]ConfigRun{run})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "Wall") {
		t.Errorf("artifact JSON leaks host wall-clock:\n%s", b)
	}
	if b[len(b)-1] != '\n' {
		t.Errorf("artifact JSON must end with a newline")
	}
}
