package harness

import (
	"strings"
	"testing"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/workload"
)

func TestSensitivityNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-size sweep in -short mode")
	}
	rows := SensitivityNodes(1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Energy >= 1 {
			t.Errorf("%s: thrifty energy %.3f >= 1", r.Param, r.Energy)
		}
		if r.Time > 1.05 {
			t.Errorf("%s: thrifty slowdown %.4f", r.Param, r.Time)
		}
	}
}

func TestSensitivityTransition(t *testing.T) {
	if testing.Short() {
		t.Skip("latency sweep in -short mode")
	}
	rows := SensitivityTransition(1)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	// Savings must degrade monotonically-ish as transitions slow: the 8x
	// point must save less than the 0.5x point.
	if rows[len(rows)-1].Energy <= rows[0].Energy {
		t.Errorf("8x-latency energy %.3f not worse than 0.5x %.3f",
			rows[len(rows)-1].Energy, rows[0].Energy)
	}
	// Even at 8x, performance stays bounded (hybrid wake-up + cut-off).
	for _, r := range rows {
		if r.Time > 1.10 {
			t.Errorf("%s: slowdown %.4f exceeds 10%%", r.Param, r.Time)
		}
	}
}

func TestAblationTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("topology ablation in -short mode")
	}
	rows := AblationTopology(core.DefaultArch(), 1)
	var flatBalanced, tree8Balanced AblationRow
	for _, r := range rows {
		if r.App == "balanced" {
			switch r.Variant {
			case "flat (paper)":
				flatBalanced = r
			case "tree-8":
				tree8Balanced = r
			}
		}
	}
	// On a balanced program the tree removes the check-in serialization:
	// clearly faster than flat.
	if tree8Balanced.Time >= flatBalanced.Time {
		t.Errorf("tree-8 (%.4f) not faster than flat (%.4f) on balanced program",
			tree8Balanced.Time, flatBalanced.Time)
	}
}

func TestAblationConfidence(t *testing.T) {
	if testing.Short() {
		t.Skip("confidence ablation in -short mode")
	}
	rows := AblationConfidence(core.DefaultArch(), 1)
	byVariant := map[string]AblationRow{}
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	// Both protections bound Ocean's damage versus neither.
	none := byVariant["neither"]
	for _, v := range []string{"cutoff (paper)", "confidence 2-bit", "cutoff+confidence"} {
		if byVariant[v].Time >= none.Time {
			t.Errorf("%s time %.4f not below unprotected %.4f", v, byVariant[v].Time, none.Time)
		}
	}
}

func TestLockExperiment(t *testing.T) {
	sat, mod := LockExperiment(1)
	if len(sat) != 4 || len(mod) != 4 {
		t.Fatalf("rows = %d/%d, want 4/4", len(sat), len(mod))
	}
	// Thrifty lock saves deeply under saturation...
	if sat[1].Variant != "Thrifty-MCS" || sat[1].Energy > 0.5 {
		t.Errorf("saturated thrifty lock energy = %.3f (%s)", sat[1].Energy, sat[1].Variant)
	}
	// ...and the naive port loses more time than the refined design.
	if sat[2].Time <= sat[1].Time {
		t.Errorf("naive lock (%.4f) not slower than thrifty (%.4f)", sat[2].Time, sat[1].Time)
	}
	// At moderate contention the cost vanishes.
	if mod[1].Time > 1.02 {
		t.Errorf("moderate-contention thrifty lock slowdown = %.4f", mod[1].Time)
	}
	out := RenderLocks(sat, mod)
	if !strings.Contains(out, "Thrifty-MCS") {
		t.Error("lock render missing variant")
	}
}

func TestMPExperiment(t *testing.T) {
	rows := MPExperiment(1)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 variants x 2 algorithms)", len(rows))
	}
	byVariant := map[string]MPRow{}
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	for _, alg := range []string{"tree", "dissemination"} {
		thr := byVariant["MP-Thrifty ("+alg+")"]
		if thr.Energy >= 0.97 {
			t.Errorf("MP-Thrifty (%s) energy = %.3f, want savings", alg, thr.Energy)
		}
		if thr.Time > 1.03 {
			t.Errorf("MP-Thrifty (%s) slowdown = %.4f", alg, thr.Time)
		}
		ora := byVariant["MP-Oracle ("+alg+")"]
		if ora.Energy > thr.Energy+1e-9 {
			t.Errorf("oracle (%s) %.3f above thrifty %.3f", alg, ora.Energy, thr.Energy)
		}
	}
	out := RenderMP(rows)
	if !strings.Contains(out, "MP-Thrifty (tree)") {
		t.Error("MP render missing variant")
	}
}

func TestRenderSensitivity(t *testing.T) {
	rows := []SensitivityRow{{Param: "8 nodes", Energy: 0.9, Time: 1.01, Halt: 0.95}}
	out := RenderSensitivity("Sweep", rows)
	if !strings.Contains(out, "8 nodes") {
		t.Error("sensitivity render missing row")
	}
}

func TestAblationConventional(t *testing.T) {
	if testing.Short() {
		t.Skip("conventional ablation in -short mode")
	}
	rows := AblationConventional(core.DefaultArch(), 1)
	get := func(app, variant string) AblationRow {
		for _, r := range rows {
			if r.App == app && r.Variant == variant {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", app, variant)
		return AblationRow{}
	}
	// §5.1: conventional techniques lower-bound at Oracle-Halt; Thrifty's
	// multiple states beat the whole Halt family on FMM.
	oh := get("FMM", "Oracle-Halt").Energy
	if get("FMM", "Uncond-Halt").Energy < oh-1e-9 {
		t.Error("unconditional halt beat Oracle-Halt on FMM")
	}
	if get("FMM", "SpinThenHalt").Energy < oh-1e-9 {
		t.Error("spin-then-halt beat Oracle-Halt on FMM")
	}
	if get("FMM", "Thrifty").Energy >= oh {
		t.Error("Thrifty did not beat Oracle-Halt on FMM")
	}
	// Unconditional halting hurts Ocean's short swinging barriers more
	// than any conditional policy.
	if get("Ocean", "Uncond-Halt").Time <= get("Ocean", "Thrifty-Halt").Time {
		t.Error("unconditional halt not slower than Thrifty-Halt on Ocean")
	}
}

func TestMarkdownReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	report := MarkdownReport(core.DefaultArch().WithNodes(16), 1)
	for _, want := range []string{
		"# Thrifty Barrier", "## Table 2", "## Figures 5 and 6",
		"Ablations", "Sensitivity", "Extensions", "## Verdict",
		"Thrifty-MCS", "MP-Thrifty",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(report) < 5000 {
		t.Errorf("report implausibly short: %d bytes", len(report))
	}
}

func TestLockContentionSweep(t *testing.T) {
	rows := LockContentionSweep(1)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	// Savings grow with contention: the heaviest-contention point saves
	// more than the lightest.
	if rows[len(rows)-1].Energy >= rows[0].Energy {
		t.Errorf("heavy contention (%.3f) not better than light (%.3f)",
			rows[len(rows)-1].Energy, rows[0].Energy)
	}
}

func TestBarrierLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("latency microbenchmark in -short mode")
	}
	rows := BarrierLatency(1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Flat <= 0 || r.Tree4 <= 0 || r.Tree8 <= 0 {
			t.Fatalf("non-positive latency: %+v", r)
		}
	}
	last := rows[len(rows)-1]
	// At 64 nodes the flat counter's serialization dominates: trees win.
	if last.Tree8 >= last.Flat {
		t.Errorf("tree-8 latency %v not below flat %v at 64 nodes", last.Tree8, last.Flat)
	}
	// Flat latency grows superlinearly relative to the tree as N doubles.
	if rows[0].Flat >= last.Flat {
		t.Errorf("flat latency did not grow with N: %v -> %v", rows[0].Flat, last.Flat)
	}
	out := RenderBarrierLatency(rows)
	if !strings.Contains(out, "Tree-8") {
		t.Error("latency render incomplete")
	}
}

// TestSeedStability pins that the shape conclusions hold across seeds, not
// just the calibration seed.
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed matrix in -short mode")
	}
	arch := core.DefaultArch()
	for _, seed := range []uint64{2, 3} {
		apps := []AppRun{
			RunApp(arch, workload.Volrend(), seed, core.Configurations()),
			RunApp(arch, workload.FMM(), seed, core.Configurations()),
			RunApp(arch, workload.Ocean(), seed, core.Configurations()),
		}
		for _, app := range apps {
			th, _ := app.Run("Thrifty")
			switch app.Spec.Name {
			case "Volrend":
				if e := th.Norm.TotalEnergy(); e > 0.72 {
					t.Errorf("seed %d: Volrend Thrifty energy %.3f, want deep savings", seed, e)
				}
			case "FMM":
				if e := th.Norm.TotalEnergy(); e > 0.96 {
					t.Errorf("seed %d: FMM Thrifty energy %.3f, want savings", seed, e)
				}
			case "Ocean":
				if th.Norm.SpanRatio > 1.05 {
					t.Errorf("seed %d: Ocean Thrifty slowdown %.4f, cut-off not containing", seed, th.Norm.SpanRatio)
				}
			}
			if th.Norm.SpanRatio > 1.05 {
				t.Errorf("seed %d: %s slowdown %.4f", seed, app.Spec.Name, th.Norm.SpanRatio)
			}
		}
	}
}

func TestAblationDVFS(t *testing.T) {
	if testing.Short() {
		t.Skip("DVFS ablation in -short mode")
	}
	rows := AblationDVFS(core.DefaultArch(), 1)
	get := func(app, variant string) AblationRow {
		for _, r := range rows {
			if r.App == app && r.Variant == variant {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", app, variant)
		return AblationRow{}
	}
	// §1's critique, quantified: with rotating criticality, slack
	// reclamation slows the (unpredictable) critical thread badly, while
	// the thrifty barrier stays within a couple of percent.
	dv := get("Volrend", "DVFS")
	th := get("Volrend", "Thrifty")
	if dv.Time < 1.10 {
		t.Errorf("DVFS on rotating-straggler Volrend slowdown = %.3f, expected the critical-path penalty", dv.Time)
	}
	if th.Time > 1.03 {
		t.Errorf("Thrifty Volrend slowdown = %.3f", th.Time)
	}
	// On deep slack Thrifty dominates even by energy-delay product; on
	// moderate slack DVFS can win raw EDP by sacrificing the
	// iso-performance goal the paper sets — report, don't assert.
	if h, d := get("Volrend", "Thrifty"), get("Volrend", "DVFS"); h.Energy*h.Time >= d.Energy*d.Time {
		t.Errorf("Volrend: Thrifty EDP %.3f not below DVFS EDP %.3f",
			h.Energy*h.Time, d.Energy*d.Time)
	}
	fm, fd := get("FMM", "Thrifty"), get("FMM", "DVFS")
	t.Logf("FMM EDP: Thrifty %.3f (time %.3f) vs DVFS %.3f (time %.3f)",
		fm.Energy*fm.Time, fm.Time, fd.Energy*fd.Time, fd.Time)
	// DVFS always violates the paper's iso-performance criterion here.
	if fd.Time < 1.10 {
		t.Errorf("FMM DVFS slowdown %.3f unexpectedly small", fd.Time)
	}
}

func TestAblationStraggler(t *testing.T) {
	if testing.Short() {
		t.Skip("straggler ablation in -short mode")
	}
	rows := AblationStraggler(core.DefaultArch(), 1)
	get := func(app, variant string) AblationRow {
		for _, r := range rows {
			if r.App == app && r.Variant == variant {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", app, variant)
		return AblationRow{}
	}
	// With a pinned straggler both predictors work; with rotation the
	// direct-BST strawman mispredicts more (late wakes / worse energy or
	// time) while BIT is unaffected — §3.2's argument.
	bitRot := get("rotating straggler", "BIT (paper)")
	bstRot := get("rotating straggler", "direct-BST")
	sleeps := func(r AblationRow) int {
		total := 0
		for _, n := range r.Stats.Sleeps {
			total += n
		}
		return total
	}
	// The discriminator is wake timing, not sleep counts: under rotation
	// the thread-independent BIT anticipates the release almost perfectly
	// (external wakes ~0), while the thread-indexed strawman's stale
	// per-thread stalls land a large fraction of wakes on the external
	// path (exit transition on the critical path) — §3.2's argument.
	if frac := float64(bitRot.Stats.ExternalWakes+bitRot.Stats.LateWakes) / float64(sleeps(bitRot)); frac > 0.05 {
		t.Errorf("rotating straggler: BIT external/late fraction %.3f, want near-perfect anticipation", frac)
	}
	if bstRot.Stats.ExternalWakes < 10*bitRot.Stats.ExternalWakes {
		t.Errorf("rotating straggler: direct-BST external wakes %d not far above BIT's %d",
			bstRot.Stats.ExternalWakes, bitRot.Stats.ExternalWakes)
	}
	if bstRot.Energy < bitRot.Energy {
		t.Errorf("rotating straggler: direct-BST energy %.3f below BIT %.3f", bstRot.Energy, bitRot.Energy)
	}
}

func TestAblationFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("faults ablation in -short mode")
	}
	arch := core.DefaultArch().WithNodes(8)
	rows := AblationFaults(arch, 1)
	byVariant := map[string]AblationRow{}
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	// The §3.3 robustness claim: under dropped invalidations the hybrid
	// timer bounds the damage, while external-only sleepers are stranded
	// until the OS recovery — orders of magnitude slower.
	hybrid := byVariant["hybrid, drop=20%"]
	external := byVariant["external, drop=20%"]
	if hybrid.Stats.DroppedWakeups == 0 || external.Stats.DroppedWakeups == 0 {
		t.Fatal("drop=20% rows injected no drops")
	}
	if hybrid.Stats.Recoveries != 0 {
		t.Errorf("hybrid needed %d recoveries under drops", hybrid.Stats.Recoveries)
	}
	if external.Stats.Recoveries == 0 {
		t.Error("external-only survived dropped invalidations without recovery")
	}
	if hybrid.Time > 1.10 {
		t.Errorf("hybrid slowdown %.4f under drop=20%%; the timer should bound it", hybrid.Time)
	}
	if external.Time < 2*hybrid.Time {
		t.Errorf("external-only time %.4f not clearly worse than hybrid %.4f",
			external.Time, hybrid.Time)
	}
	// Without the cut-off, damaged (barrier, thread) pairs keep paying
	// the recovery timeout on every instance.
	noCut := byVariant["external, drop=20%, cutoff=off"]
	if noCut.Time < external.Time {
		t.Errorf("cutoff=off time %.4f below cutoff=on %.4f; cut-off should self-heal repeated damage",
			noCut.Time, external.Time)
	}
	// The mirror case: failed timers strand internal-only sleepers; the
	// hybrid invalidation bounds them.
	hybridTF := byVariant["hybrid, timerfail=50%"]
	internalTF := byVariant["internal, timerfail=50%"]
	if hybridTF.Stats.Recoveries != 0 {
		t.Errorf("hybrid needed %d recoveries under timer failures", hybridTF.Stats.Recoveries)
	}
	if internalTF.Stats.Recoveries == 0 {
		t.Error("internal-only survived failed timers without recovery")
	}
	if internalTF.Time < 2*hybridTF.Time {
		t.Errorf("internal-only time %.4f not clearly worse than hybrid %.4f",
			internalTF.Time, hybridTF.Time)
	}
}
