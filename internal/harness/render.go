package harness

import (
	"fmt"
	"strings"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/power"
	"thriftybarrier/internal/sim"
	"thriftybarrier/internal/stats"
)

// RenderTable1 formats the simulated architecture parameters (Table 1).
func RenderTable1(arch core.Arch) string {
	t := stats.NewTable("Table 1: Architecture modeled in the simulations", "Component", "Parameter")
	t.AddRowStrings("Processor", fmt.Sprintf("1GHz, %v-issue dynamic (timing IPC %.1f, overlap %.0f%%)", 6, arch.CPU.IPC, arch.CPU.Overlap*100))
	t.AddRowStrings("L1 Cache", fmt.Sprintf("%dkB, %dB lines, %d-way, %v RT",
		arch.Coherence.L1.SizeBytes>>10, arch.Coherence.L1.LineBytes, arch.Coherence.L1.Ways, arch.Coherence.L1Hit))
	t.AddRowStrings("L2 Cache", fmt.Sprintf("%dkB, %dB lines, %d-way, %v RT",
		arch.Coherence.L2.SizeBytes>>10, arch.Coherence.L2.LineBytes, arch.Coherence.L2.Ways, arch.Coherence.L2Hit))
	t.AddRowStrings("Memory Bus", fmt.Sprintf("split trans., 16B wide, %v per line", arch.Coherence.Bus))
	t.AddRowStrings("Main Memory", "interleaved, 60ns row miss")
	t.AddRowStrings("Network", fmt.Sprintf("hypercube, wormhole; pin-to-pin %v, endpoint %v",
		arch.NoC.PinToPin, arch.NoC.Endpoint))
	t.AddRowStrings("Coherence", "DASH-style directory MESI, release consistency")
	t.AddRowStrings("System size", fmt.Sprintf("%d nodes", arch.Nodes))
	return t.String()
}

// RenderTable2 formats the measured-vs-paper barrier imbalance table.
func RenderTable2(rows []Table2Row) string {
	t := stats.NewTable("Table 2: SPLASH-2 applications, Baseline barrier imbalance",
		"Application", "Problem Size", "Paper", "Measured")
	for _, r := range rows {
		t.AddRowStrings(r.App, r.ProblemSize, stats.Pct(r.Paper), stats.Pct(r.Measured))
	}
	return t.String()
}

// RenderTable3 formats the sleep-state catalogue with the powers the model
// derives from it.
func RenderTable3(model *power.Model) string {
	t := stats.NewTable("Table 3: Low-power sleep states",
		"State", "P. Savings", "Tr. Latency", "Snoop?", "V. Reduction?", "Residual Power")
	for _, s := range model.States() {
		snoop, vr := "No", "No"
		if s.Snoops {
			snoop = "Yes"
		}
		if s.VoltageReduced {
			vr = "Yes"
		}
		t.AddRowStrings(s.Name, stats.Pct(s.Savings), s.Transition.String(), snoop, vr,
			fmt.Sprintf("%.1fW", model.SleepPower(s)))
	}
	footer := fmt.Sprintf("TDPmax (microbenchmarked) = %.1fW, compute = %.1fW, spin = %.1fW (%.0f%% of compute)",
		model.TDPMax(), model.ComputePower(), model.SpinPower(),
		100*model.SpinPower()/model.ComputePower())
	return t.String() + footer + "\n"
}

// RenderFigure3 formats the BIT/BST variability figure as a bar list plus
// the stability statistics.
func RenderFigure3(d Figure3Data) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: BIT and BST variability for FMM's three main-loop barriers\n")
	fmt.Fprintf(&sb, "(observer thread %d; values normalized to the mean BIT of the bars shown)\n\n", d.Observer)
	fmt.Fprintf(&sb, "%-6s %-9s %8s %9s %8s  %s\n", "iter", "barrier", "BIT", "Compute", "BST", "0        1        2")
	for _, p := range d.Points {
		bar := stats.StackedBar([]float64{p.Compute / 2.5, p.BST / 2.5}, []rune{'C', 'S'}, 40)
		fmt.Fprintf(&sb, "%-6d %-9s %8.3f %9.3f %8.3f  |%s|\n", p.Iteration, p.Barrier, p.BIT, p.Compute, p.BST, bar)
	}
	sb.WriteByte('\n')
	t := stats.NewTable("BIT vs BST stability (coefficient of variation across all instances)",
		"Barrier", "BIT CoV", "BST CoV", "BST/BIT CoV ratio")
	for i, l := range d.BarrierLabels {
		ratio := 0.0
		if d.BITCoefVar[i] > 0 {
			ratio = d.BSTCoefVar[i] / d.BITCoefVar[i]
		}
		t.AddRowStrings(l, fmt.Sprintf("%.4f", d.BITCoefVar[i]), fmt.Sprintf("%.4f", d.BSTCoefVar[i]),
			fmt.Sprintf("%.1fx", ratio))
	}
	sb.WriteString(t.String())
	return sb.String()
}

// RenderFigure renders Figure 5 (energy) or Figure 6 (execution time) from
// a full run, as grouped normalized stacked bars.
func RenderFigure(apps []AppRun, energyFigure bool) string {
	var sb strings.Builder
	if energyFigure {
		sb.WriteString("Figure 5: Normalized energy consumption (Baseline = 100%)\n")
	} else {
		sb.WriteString("Figure 6: Normalized execution time (Baseline = 100%)\n")
	}
	sb.WriteString("segments: C=Compute S=Spin T=Transition Z=Sleep\n\n")
	for _, app := range apps {
		fmt.Fprintf(&sb, "%s (imbalance %s)\n", app.Spec.Name, stats.Pct(app.Measured))
		for _, run := range app.Runs {
			if !run.OK() {
				fmt.Fprintf(&sb, "  %-13s FAILED: %s\n", run.Config.Name, run.Err)
				continue
			}
			var fr [sim.NumStates]float64
			var total float64
			if energyFigure {
				fr = run.Norm.Energy
				total = run.Norm.TotalEnergy()
			} else {
				fr = run.Norm.Time
				total = run.Norm.TotalTime()
			}
			bar := stats.StackedBar(
				[]float64{fr[sim.StateCompute], fr[sim.StateSpin], fr[sim.StateTransition], fr[sim.StateSleep]},
				[]rune{'C', 'S', 'T', 'Z'}, 50)
			fmt.Fprintf(&sb, "  %-13s %6.1f%% |%s|\n", run.Config.Name, total*100, bar)
		}
	}
	return sb.String()
}

// RenderFigureCSV emits the figure as CSV for external plotting.
func RenderFigureCSV(apps []AppRun, energyFigure bool) string {
	name := "energy"
	if !energyFigure {
		name = "time"
	}
	t := stats.NewTable("", "app", "config", "total_"+name,
		"compute", "spin", "transition", "sleep", "span_ratio")
	for _, app := range apps {
		for _, run := range app.Runs {
			if !run.OK() {
				continue
			}
			var fr [sim.NumStates]float64
			var total float64
			if energyFigure {
				fr = run.Norm.Energy
				total = run.Norm.TotalEnergy()
			} else {
				fr = run.Norm.Time
				total = run.Norm.TotalTime()
			}
			t.AddRowStrings(app.Spec.Name, run.Config.Name,
				fmt.Sprintf("%.4f", total),
				fmt.Sprintf("%.4f", fr[sim.StateCompute]),
				fmt.Sprintf("%.4f", fr[sim.StateSpin]),
				fmt.Sprintf("%.4f", fr[sim.StateTransition]),
				fmt.Sprintf("%.4f", fr[sim.StateSleep]),
				fmt.Sprintf("%.4f", run.Norm.SpanRatio))
		}
	}
	return t.CSV()
}

// RenderSummary formats the §5.1 headline numbers.
func RenderSummary(sums []Summary) string {
	t := stats.NewTable("Headline numbers (paper §5.1: Thrifty ~17% energy savings, ~2% slowdown on target apps)",
		"Config", "Target-app savings", "Target-app slowdown", "Worst slowdown", "All-apps savings", "EDP")
	for _, s := range sums {
		edp := "-"
		if s.AvgEDP > 0 {
			edp = fmt.Sprintf("%.3f", s.AvgEDP)
		}
		t.AddRowStrings(s.Config, stats.Pct(s.AvgEnergySavings), stats.Pct(s.AvgSlowdown),
			stats.Pct(s.WorstSlowdown)+" ("+s.WorstSlowdownApp+")", stats.Pct(s.AllAppsAvgSavings), edp)
	}
	return t.String()
}

// RenderFaults formats the fault-injection ablation: degradation vs fault
// rate, with the fault counters that explain each row's slowdown.
func RenderFaults(rows []AblationRow) string {
	t := stats.NewTable("Fault injection: degradation vs fault rate (§3.3 wake-up robustness)",
		"App", "Variant", "Energy", "Time", "Dropped", "TimerFail", "Recovered", "LateWakes", "Disables")
	for _, r := range rows {
		t.AddRowStrings(r.App, r.Variant,
			fmt.Sprintf("%.3f", r.Energy), fmt.Sprintf("%.4f", r.Time),
			fmt.Sprint(r.Stats.DroppedWakeups), fmt.Sprint(r.Stats.TimerFailures),
			fmt.Sprint(r.Stats.Recoveries), fmt.Sprint(r.Stats.LateWakes),
			fmt.Sprint(r.Stats.Disables))
	}
	return t.String() +
		"Recovered counts sleepers stranded by a fault (no live wake-up channel)\n" +
		"and revived only by the 50ms OS watchdog — each one costs ~3 orders of\n" +
		"magnitude more than a barrier interval. Hybrid wake-up never needs it.\n"
}

// RenderAblation formats an ablation result set.
func RenderAblation(title string, rows []AblationRow) string {
	t := stats.NewTable(title, "App", "Variant", "Energy", "Time", "Sleeps", "ExtWakes", "LateWakes", "Disables")
	for _, r := range rows {
		total := 0
		for _, n := range r.Stats.Sleeps {
			total += n
		}
		t.AddRowStrings(r.App, r.Variant,
			fmt.Sprintf("%.3f", r.Energy), fmt.Sprintf("%.4f", r.Time),
			fmt.Sprint(total), fmt.Sprint(r.Stats.ExternalWakes),
			fmt.Sprint(r.Stats.LateWakes), fmt.Sprint(r.Stats.Disables))
	}
	return t.String()
}
