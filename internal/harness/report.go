package harness

import (
	"fmt"
	"strings"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/power"
)

// MarkdownReport runs the complete evaluation — tables, figures,
// ablations, sensitivity sweeps and extensions — and renders a
// self-contained Markdown report with paper-vs-measured commentary. It is
// the machine-generated companion to the hand-written EXPERIMENTS.md.
func MarkdownReport(arch core.Arch, seed uint64) string {
	var sb strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&sb, format+"\n", args...) }
	codeBlock := func(s string) {
		sb.WriteString("```\n")
		sb.WriteString(s)
		if !strings.HasSuffix(s, "\n") {
			sb.WriteByte('\n')
		}
		sb.WriteString("```\n\n")
	}

	w("# Thrifty Barrier — generated reproduction report")
	w("")
	w("Machine: %d nodes, seed %d. Regenerate with `thriftybench -markdown <file>`.", arch.Nodes, seed)
	w("")

	w("## Table 1 — architecture")
	w("")
	codeBlock(RenderTable1(arch))

	w("## Table 3 — sleep states and calibrated powers")
	w("")
	codeBlock(RenderTable3(power.DefaultModel()))

	w("## Table 2 — Baseline barrier imbalance")
	w("")
	t2 := Table2(arch, seed)
	w("| Application | Paper | Measured |")
	w("|---|---|---|")
	for _, r := range t2 {
		w("| %s | %.2f%% | %.2f%% |", r.App, r.Paper*100, r.Measured*100)
	}
	w("")

	w("## Figure 3 — BIT vs BST variability (FMM)")
	w("")
	observer := 11
	if observer >= arch.Nodes {
		observer = arch.Nodes - 1
	}
	fig3 := Figure3(arch, seed, observer, 4, 4)
	codeBlock(RenderFigure3(fig3))

	w("## Figures 5 and 6 — normalized energy and execution time")
	w("")
	apps := RunAll(arch, seed)
	w("| App | Config | Energy | Time |")
	w("|---|---|---|---|")
	for _, app := range apps {
		for _, run := range app.Runs {
			w("| %s | %s | %.1f%% | %.2f%% |", app.Spec.Name, run.Config.Name,
				run.Norm.TotalEnergy()*100, run.Norm.SpanRatio*100)
		}
	}
	w("")
	codeBlock(RenderSummary(Summarize(apps)))

	w("## Ablations")
	w("")
	codeBlock(RenderAblation("A: overprediction cut-off (Ocean)", AblationCutoff(arch, seed)))
	codeBlock(RenderAblation("B: wake-up mechanisms", AblationWakeup(arch, seed)))
	codeBlock(RenderAblation("C: predictor policies", AblationPredictor(arch, seed)))
	codeBlock(RenderAblation("D: preemption filter", AblationPreempt(arch, seed)))
	codeBlock(RenderAblation("E: conventional techniques", AblationConventional(arch, seed)))
	codeBlock(RenderAblation("F: check-in topology", AblationTopology(arch, seed)))
	codeBlock(RenderAblation("G: confidence estimator", AblationConfidence(arch, seed)))

	w("## Sensitivity")
	w("")
	codeBlock(RenderSensitivity("Machine size (FMM)", SensitivityNodes(seed)))
	codeBlock(RenderSensitivity("Transition-latency scaling (FMM)", SensitivityTransition(seed)))

	w("## Extensions (paper §7 future work)")
	w("")
	sat, mod := LockExperiment(seed)
	codeBlock(RenderLocks(sat, mod))
	codeBlock(RenderMP(MPExperiment(seed)))

	w("## Verdict")
	w("")
	sums := Summarize(apps)
	var th, hl Summary
	for _, s := range sums {
		switch s.Config {
		case "Thrifty":
			th = s
		case "Thrifty-Halt":
			hl = s
		}
	}
	w("- Thrifty target-app savings: **%.1f%%** (paper ~17%%); Thrifty-Halt **%.1f%%** (paper <=11%%).",
		th.AvgEnergySavings*100, hl.AvgEnergySavings*100)
	w("- Thrifty target-app slowdown: **%.1f%%** average, **%.1f%%** worst (%s) (paper ~2%%).",
		th.AvgSlowdown*100, th.WorstSlowdown*100, th.WorstSlowdownApp)
	bitStab := 0.0
	for i := range fig3.BarrierLabels {
		bitStab += fig3.BSTCoefVar[i] / fig3.BITCoefVar[i]
	}
	bitStab /= float64(len(fig3.BarrierLabels))
	w("- BIT is **%.1fx** more stable than BST on FMM's main-loop barriers.", bitStab)
	w("")
	return sb.String()
}
