package harness

import (
	"fmt"
	"strings"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/power"
)

// MarkdownReport runs the complete evaluation — tables, figures,
// ablations, sensitivity sweeps and extensions — and renders a
// self-contained Markdown report with paper-vs-measured commentary. It is
// the machine-generated companion to the hand-written EXPERIMENTS.md and
// the sequential form of Runner.MarkdownReport.
func MarkdownReport(arch core.Arch, seed uint64) string {
	return (&Runner{Jobs: 1}).MarkdownReport(arch, seed)
}

// MarkdownReport is MarkdownReport fanned across the runner's worker pool:
// the matrix cells and the ablation/sensitivity/extension blocks are all
// independent, so only the rendering is serialized. A block that fails is
// reported inline instead of aborting the report.
func (r *Runner) MarkdownReport(arch core.Arch, seed uint64) string {
	var sb strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&sb, format+"\n", args...) }
	codeBlock := func(s string) {
		sb.WriteString("```\n")
		sb.WriteString(s)
		if !strings.HasSuffix(s, "\n") {
			sb.WriteByte('\n')
		}
		sb.WriteString("```\n\n")
	}

	// Phase 1: the full matrix, fanned across the pool.
	apps := r.RunAll(arch, seed)

	// Phase 2: every remaining simulation block, also fanned.
	observer := 11
	if observer >= arch.Nodes {
		observer = arch.Nodes - 1
	}
	blocks := r.Do([]Job{
		{Name: "table2", Run: func() (string, any) { return "", Table2(arch, seed) }},
		{Name: "fig3", Run: func() (string, any) { return "", Figure3(arch, seed, observer, 4, 4) }},
		{Name: "ablation A", Run: func() (string, any) {
			return RenderAblation("A: overprediction cut-off (Ocean)", AblationCutoff(arch, seed)), nil
		}},
		{Name: "ablation B", Run: func() (string, any) {
			return RenderAblation("B: wake-up mechanisms", AblationWakeup(arch, seed)), nil
		}},
		{Name: "ablation C", Run: func() (string, any) {
			return RenderAblation("C: predictor policies", AblationPredictor(arch, seed)), nil
		}},
		{Name: "ablation D", Run: func() (string, any) {
			return RenderAblation("D: preemption filter", AblationPreempt(arch, seed)), nil
		}},
		{Name: "ablation E", Run: func() (string, any) {
			return RenderAblation("E: conventional techniques", AblationConventional(arch, seed)), nil
		}},
		{Name: "ablation F", Run: func() (string, any) {
			return RenderAblation("F: check-in topology", AblationTopology(arch, seed)), nil
		}},
		{Name: "ablation G", Run: func() (string, any) {
			return RenderAblation("G: confidence estimator", AblationConfidence(arch, seed)), nil
		}},
		{Name: "sensitivity nodes", Run: func() (string, any) {
			return RenderSensitivity("Machine size (FMM)", SensitivityNodes(seed)), nil
		}},
		{Name: "sensitivity transition", Run: func() (string, any) {
			return RenderSensitivity("Transition-latency scaling (FMM)", SensitivityTransition(seed)), nil
		}},
		{Name: "extension locks", Run: func() (string, any) {
			sat, mod := LockExperiment(seed)
			return RenderLocks(sat, mod), nil
		}},
		{Name: "extension mp", Run: func() (string, any) {
			return RenderMP(MPExperiment(seed)), nil
		}},
	})
	blockText := func(i int) string {
		if blocks[i].Err != "" {
			return fmt.Sprintf("(block %q failed: %s)\n", blocks[i].Name, blocks[i].Err)
		}
		return blocks[i].Text
	}

	w("# Thrifty Barrier — generated reproduction report")
	w("")
	w("Machine: %d nodes, seed %d. Regenerate with `thriftybench -markdown <file>`.", arch.Nodes, seed)
	w("")

	w("## Table 1 — architecture")
	w("")
	codeBlock(RenderTable1(arch))

	w("## Table 3 — sleep states and calibrated powers")
	w("")
	codeBlock(RenderTable3(power.DefaultModel()))

	w("## Table 2 — Baseline barrier imbalance")
	w("")
	if blocks[0].Err != "" {
		w("%s", blockText(0))
	} else {
		t2 := blocks[0].Data.([]Table2Row)
		w("| Application | Paper | Measured |")
		w("|---|---|---|")
		for _, row := range t2 {
			w("| %s | %.2f%% | %.2f%% |", row.App, row.Paper*100, row.Measured*100)
		}
	}
	w("")

	w("## Figure 3 — BIT vs BST variability (FMM)")
	w("")
	var fig3 Figure3Data
	if blocks[1].Err != "" {
		w("%s", blockText(1))
	} else {
		fig3 = blocks[1].Data.(Figure3Data)
		codeBlock(RenderFigure3(fig3))
	}

	w("## Figures 5 and 6 — normalized energy and execution time")
	w("")
	w("| App | Config | Energy | Time |")
	w("|---|---|---|---|")
	for _, app := range apps {
		for _, run := range app.Runs {
			if !run.OK() {
				w("| %s | %s | FAILED | %s |", app.Spec.Name, run.Config.Name, run.Err)
				continue
			}
			w("| %s | %s | %.1f%% | %.2f%% |", app.Spec.Name, run.Config.Name,
				run.Norm.TotalEnergy()*100, run.Norm.SpanRatio*100)
		}
	}
	w("")
	codeBlock(RenderSummary(Summarize(apps)))

	w("## Ablations")
	w("")
	for i := 2; i <= 8; i++ {
		codeBlock(blockText(i))
	}

	w("## Sensitivity")
	w("")
	codeBlock(blockText(9))
	codeBlock(blockText(10))

	w("## Extensions (paper §7 future work)")
	w("")
	codeBlock(blockText(11))
	codeBlock(blockText(12))

	w("## Verdict")
	w("")
	sums := Summarize(apps)
	var th, hl Summary
	for _, s := range sums {
		switch s.Config {
		case "Thrifty":
			th = s
		case "Thrifty-Halt":
			hl = s
		}
	}
	w("- Thrifty target-app savings: **%.1f%%** (paper ~17%%); Thrifty-Halt **%.1f%%** (paper <=11%%).",
		th.AvgEnergySavings*100, hl.AvgEnergySavings*100)
	w("- Thrifty target-app slowdown: **%.1f%%** average, **%.1f%%** worst (%s) (paper ~2%%).",
		th.AvgSlowdown*100, th.WorstSlowdown*100, th.WorstSlowdownApp)
	if len(fig3.BarrierLabels) > 0 {
		bitStab := 0.0
		for i := range fig3.BarrierLabels {
			bitStab += fig3.BSTCoefVar[i] / fig3.BITCoefVar[i]
		}
		bitStab /= float64(len(fig3.BarrierLabels))
		w("- BIT is **%.1fx** more stable than BST on FMM's main-loop barriers.", bitStab)
	}
	w("")
	return sb.String()
}
