package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/workload"
)

// Runner executes experiment jobs across a bounded worker pool with
// per-job panic recovery and a per-job timeout — the scaling and
// fault-isolation layer under cmd/thriftybench. Every simulation in the
// (application × configuration) matrix is deterministic and independent
// (workload builds are pure functions of the seed, machines share no
// state), so fanning them out changes wall-clock only: results are
// byte-identical to a sequential run regardless of scheduling.
//
// The zero value is a valid sequential-equivalent runner sized to the
// machine; a nil *Runner behaves the same.
type Runner struct {
	// Jobs is the worker-pool width. Zero or negative selects
	// runtime.NumCPU().
	Jobs int
	// Timeout bounds one job's wall-clock. A job that exceeds it is
	// abandoned and reported as failed with a diagnostic instead of
	// wedging the whole bench; its goroutine keeps running in the
	// background (the simulator has no preemption points), so the process
	// carries the leak until exit. Zero means no limit.
	Timeout time.Duration
	// Progress, when non-nil, receives one line per job lifecycle event
	// (done/failed, with wall-clock). It is called from worker goroutines
	// and must be safe for concurrent use.
	Progress func(format string, args ...any)
}

func (r *Runner) width() int {
	if r == nil || r.Jobs <= 0 {
		return runtime.NumCPU()
	}
	return r.Jobs
}

func (r *Runner) timeout() time.Duration {
	if r == nil {
		return 0
	}
	return r.Timeout
}

func (r *Runner) progress(format string, args ...any) {
	if r != nil && r.Progress != nil {
		r.Progress(format, args...)
	}
}

// Job is one named unit of experiment work: it renders a text artifact
// and/or returns the machine-readable data behind it.
type Job struct {
	Name string
	Run  func() (text string, data any)
}

// JobResult is the outcome of one Job. Err is non-empty if the job
// panicked or timed out; the remaining jobs run regardless.
type JobResult struct {
	Name string
	Text string
	Data any
	Err  string
	// Wall is the wall-clock the job consumed (capped at the timeout for
	// abandoned jobs) — the per-run timing the manifest tracks across PRs.
	Wall time.Duration
}

// Do runs jobs across the worker pool and returns results in input order.
// A job that panics or exceeds the timeout yields a JobResult with Err set
// and does not disturb its siblings.
func (r *Runner) Do(jobs []Job) []JobResult {
	out := make([]JobResult, len(jobs))
	sem := make(chan struct{}, r.width())
	var wg sync.WaitGroup
	for i := range jobs {
		i := i
		sem <- struct{}{} // acquire before spawning: bounds live goroutines
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = r.runOne(jobs[i])
		}()
	}
	wg.Wait()
	return out
}

// runOne executes one job under panic recovery and the timeout.
func (r *Runner) runOne(j Job) JobResult {
	start := time.Now()
	type payload struct {
		text string
		data any
		err  string
	}
	done := make(chan payload, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- payload{err: fmt.Sprintf("panic: %v", p)}
			}
		}()
		text, data := j.Run()
		done <- payload{text: text, data: data}
	}()

	var p payload
	if d := r.timeout(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case p = <-done:
		case <-t.C:
			p = payload{err: fmt.Sprintf("timed out after %v; run abandoned", d)}
		}
	} else {
		p = <-done
	}

	res := JobResult{Name: j.Name, Text: p.text, Data: p.data, Err: p.err, Wall: time.Since(start)}
	if p.err != "" {
		r.progress("FAIL %-28s %8s  %s", j.Name, res.Wall.Round(time.Millisecond), p.err)
	} else {
		r.progress("done %-28s %8s", j.Name, res.Wall.Round(time.Millisecond))
	}
	return res
}

// RunMatrix fans the (application × configuration) matrix across the pool.
// Each cell builds its own program from the run's derived seed (spec.Build
// mixes the global seed with the spec's own stream key, so every cell's
// randomness is independent of execution order) and runs it on a private
// machine. The first configuration must be the Baseline: it anchors each
// application's normalization. A cell that fails is returned with
// ConfigRun.Err set and skipped by the renderers; a failed Baseline
// invalidates the whole app's normalization, so its sibling cells are
// marked failed too.
func (r *Runner) RunMatrix(arch core.Arch, seed uint64, specs []workload.Spec, configs []core.Options) []AppRun {
	jobs := make([]Job, 0, len(specs)*len(configs))
	for _, spec := range specs {
		spec := spec
		for _, opts := range configs {
			opts := opts
			jobs = append(jobs, Job{
				Name: spec.Name + "/" + opts.Name,
				Run: func() (string, any) {
					prog := spec.Build(arch.Nodes, seed)
					return "", core.NewMachine(arch, opts).Run(prog)
				},
			})
		}
	}
	results := r.Do(jobs)

	out := make([]AppRun, 0, len(specs))
	for a, spec := range specs {
		app := AppRun{Spec: spec}
		var base core.Result
		baseOK := false
		for c, opts := range configs {
			jr := results[a*len(configs)+c]
			cr := ConfigRun{Config: opts, Err: jr.Err, Wall: jr.Wall}
			if jr.Err == "" {
				cr.Result = jr.Data.(core.Result)
				if c == 0 {
					base = cr.Result
					baseOK = true
					app.Measured = base.Breakdown.SpinFraction()
				}
				if baseOK {
					cr.Norm = cr.Result.Breakdown.Normalize(base.Breakdown)
				} else {
					cr.Err = "baseline run failed; normalization unavailable"
				}
			}
			app.Runs = append(app.Runs, cr)
		}
		out = append(out, app)
	}
	return out
}

// RunAll executes the full Figure 5/6 matrix — the five configurations
// over the ten Table 2 applications — across the pool.
func (r *Runner) RunAll(arch core.Arch, seed uint64) []AppRun {
	return r.RunMatrix(arch, seed, workload.All(), core.Configurations())
}

// RunApp executes every configuration in configs over one application.
func (r *Runner) RunApp(arch core.Arch, spec workload.Spec, seed uint64, configs []core.Options) AppRun {
	return r.RunMatrix(arch, seed, []workload.Spec{spec}, configs)[0]
}

// Manifest is the machine-readable record of one bench invocation: what
// ran, with which seed and architecture, and how long each run took — the
// BENCH_*.json perf trajectory tracked across PRs.
type Manifest struct {
	Seed      uint64        `json:"seed"`
	Nodes     int           `json:"nodes"`
	Jobs      int           `json:"jobs"`
	Timeout   string        `json:"timeout,omitempty"`
	GoVersion string        `json:"go_version"`
	Runs      []ManifestRun `json:"runs"`
	// TotalWallMS sums the per-run walls (the sequential cost); ElapsedMS
	// is the invocation's actual wall-clock, so TotalWallMS/ElapsedMS
	// approximates the parallel speedup.
	TotalWallMS float64 `json:"total_wall_ms"`
	ElapsedMS   float64 `json:"elapsed_ms,omitempty"`
}

// ManifestRun is one run's entry in the manifest.
type ManifestRun struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	Err    string  `json:"err,omitempty"`
}

// NewManifest starts a manifest for one invocation.
func NewManifest(seed uint64, nodes int, r *Runner) *Manifest {
	m := &Manifest{Seed: seed, Nodes: nodes, Jobs: 0, GoVersion: runtime.Version()}
	if r != nil {
		m.Jobs = r.width()
		if r.Timeout > 0 {
			m.Timeout = r.Timeout.String()
		}
	}
	return m
}

// Record appends one run's timing.
func (m *Manifest) Record(name string, wall time.Duration, errText string) {
	ms := float64(wall.Microseconds()) / 1000
	m.Runs = append(m.Runs, ManifestRun{Name: name, WallMS: ms, Err: errText})
	m.TotalWallMS += ms
}

// RecordApps appends every matrix cell of a RunAll/RunMatrix result.
func (m *Manifest) RecordApps(apps []AppRun) {
	for _, app := range apps {
		for _, run := range app.Runs {
			m.Record(app.Spec.Name+"/"+run.Config.Name, run.Wall, run.Err)
		}
	}
}
