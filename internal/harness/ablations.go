package harness

import (
	"fmt"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/fault"
	"thriftybarrier/internal/predict"
	"thriftybarrier/internal/sim"
	"thriftybarrier/internal/workload"
)

// AblationRow is one configuration variant measured against the app's
// Baseline.
type AblationRow struct {
	App     string
	Variant string
	Energy  float64 // normalized to Baseline
	Time    float64 // span ratio vs Baseline
	Stats   core.Stats
}

// AblationCutoff reproduces the §5.2 narrative on Ocean: the overprediction
// cut-off threshold swept from disabled to aggressive, plus the
// internal-only wake-up variant without a cut-off (unbounded lateness).
// Without the cut-off the paper measures up to ~12% degradation; with the
// 10% threshold losses stay within 3.5%.
func AblationCutoff(arch core.Arch, seed uint64) []AblationRow {
	spec := workload.Ocean()
	prog := spec.Build(arch.Nodes, seed)
	base := core.NewMachine(arch, core.Baseline()).Run(prog)

	var rows []AblationRow
	add := func(variant string, opts core.Options) {
		res := core.NewMachine(arch, opts).Run(prog)
		n := res.Breakdown.Normalize(base.Breakdown)
		rows = append(rows, AblationRow{
			App: spec.Name, Variant: variant,
			Energy: n.TotalEnergy(), Time: n.SpanRatio, Stats: res.Stats,
		})
	}
	for _, cutoff := range []float64{0, 0.05, 0.10, 0.20, 0.50} {
		opts := core.Thrifty()
		opts.Cutoff = cutoff
		name := "cutoff=off"
		if cutoff > 0 {
			name = fmt.Sprintf("cutoff=%.0f%%", cutoff*100)
		}
		add(name, opts)
	}
	internal := core.Thrifty()
	internal.Wakeup = core.WakeupInternal
	internal.Cutoff = 0
	add("internal-only, cutoff=off", internal)
	return rows
}

// AblationWakeup compares the three wake-up mechanisms of §3.3 on a stable
// application (FMM) and the adversarial one (Ocean).
func AblationWakeup(arch core.Arch, seed uint64) []AblationRow {
	var rows []AblationRow
	for _, spec := range []workload.Spec{workload.FMM(), workload.Ocean()} {
		prog := spec.Build(arch.Nodes, seed)
		base := core.NewMachine(arch, core.Baseline()).Run(prog)
		for _, mode := range []core.WakeupMode{core.WakeupHybrid, core.WakeupExternal, core.WakeupInternal} {
			opts := core.Thrifty()
			opts.Wakeup = mode
			res := core.NewMachine(arch, opts).Run(prog)
			n := res.Breakdown.Normalize(base.Breakdown)
			rows = append(rows, AblationRow{
				App: spec.Name, Variant: mode.String(),
				Energy: n.TotalEnergy(), Time: n.SpanRatio, Stats: res.Stats,
			})
		}
	}
	return rows
}

// AblationPredictor compares BIT prediction policies — last-value (the
// paper's choice), moving average, EWMA — and the per-thread direct-BST
// strawman the paper argues against (§3.2), on FMM and Barnes whose
// rotating stragglers make direct BST prediction hard.
func AblationPredictor(arch core.Arch, seed uint64) []AblationRow {
	var rows []AblationRow
	variants := []struct {
		name string
		mut  func(*core.Options)
	}{
		{"last-value (paper)", func(*core.Options) {}},
		{"moving-average-4", func(o *core.Options) {
			o.Predictor = predict.Config{Policy: predict.MovingAverage, Window: 4}
		}},
		{"ewma-0.5", func(o *core.Options) {
			o.Predictor = predict.Config{Policy: predict.EWMA, Alpha: 0.5}
		}},
		{"direct-BST", func(o *core.Options) { o.BSTDirect = true }},
	}
	for _, spec := range []workload.Spec{workload.FMM(), workload.Barnes()} {
		prog := spec.Build(arch.Nodes, seed)
		base := core.NewMachine(arch, core.Baseline()).Run(prog)
		for _, v := range variants {
			opts := core.Thrifty()
			v.mut(&opts)
			res := core.NewMachine(arch, opts).Run(prog)
			n := res.Breakdown.Normalize(base.Breakdown)
			rows = append(rows, AblationRow{
				App: spec.Name, Variant: v.name,
				Energy: n.TotalEnergy(), Time: n.SpanRatio, Stats: res.Stats,
			})
		}
	}
	return rows
}

// AblationConventional compares the thrifty barrier against the
// conventional low-power waiting techniques §5.1 discusses: unconditional
// halt on arrival (§3.1's simplest form) and spin-then-halt. The paper
// argues these "would likely find a lower bound in Oracle-Halt, itself
// inferior to Thrifty".
func AblationConventional(arch core.Arch, seed uint64) []AblationRow {
	var rows []AblationRow
	for _, spec := range []workload.Spec{workload.FMM(), workload.Ocean()} {
		prog := spec.Build(arch.Nodes, seed)
		base := core.NewMachine(arch, core.Baseline()).Run(prog)
		for _, opts := range []core.Options{
			core.TimeShare(200 * sim.Microsecond),
			core.UnconditionalHalt(), core.SpinThenHalt(),
			core.ThriftyHalt(), core.OracleHalt(), core.Thrifty(),
		} {
			res := core.NewMachine(arch, opts).Run(prog)
			n := res.Breakdown.Normalize(base.Breakdown)
			rows = append(rows, AblationRow{
				App: spec.Name, Variant: opts.Name,
				Energy: n.TotalEnergy(), Time: n.SpanRatio, Stats: res.Stats,
			})
		}
	}
	return rows
}

// AblationPreempt reproduces the §3.4.2 scenario: periodic OS preemptions
// inflate some barrier intervals; the underprediction filter keeps the
// inflated values out of the BIT table so the next instance does not
// overpredict massively.
func AblationPreempt(arch core.Arch, seed uint64) []AblationRow {
	spec := workload.Barnes()
	prog := spec.Build(arch.Nodes, seed)
	// Inject a 5 ms preemption into every 7th phase, rotating victims.
	for i := 3; i < len(prog); i += 7 {
		prog[i].PreemptThread = (i * 13) % arch.Nodes
		prog[i].PreemptDelay = 5 * sim.Millisecond
	}
	base := core.NewMachine(arch, core.Baseline()).Run(prog)

	var rows []AblationRow
	for _, factor := range []float64{0, 2, 4, 8} {
		opts := core.Thrifty()
		opts.Predictor.UnderpredictFactor = factor
		res := core.NewMachine(arch, opts).Run(prog)
		n := res.Breakdown.Normalize(base.Breakdown)
		name := "filter=off"
		if factor > 0 {
			name = fmt.Sprintf("filter=%.0fx", factor)
		}
		rows = append(rows, AblationRow{
			App: spec.Name + "+preempt", Variant: name,
			Energy: n.TotalEnergy(), Time: n.SpanRatio, Stats: res.Stats,
		})
	}
	return rows
}

// AblationFaults runs the §3.3 failure narrative as injected faults on
// FMM: dropped external wake-up invalidations at increasing rates under
// hybrid vs external-only wake-up (with and without the §3.3.3 cut-off),
// and failed internal timers under hybrid vs internal-only. The table is
// the robustness claim in numbers: whichever single channel a fault
// silences, hybrid still has a bounded path — drops are bounded by the
// timer, timer failures by the invalidation — while either single-channel
// mechanism strands its sleepers until the (enormous) OS recovery
// timeout. Fault decisions are a pure function of (seed, phase, thread),
// so rows are byte-identical across harness worker widths.
func AblationFaults(arch core.Arch, seed uint64) []AblationRow {
	spec := workload.FMM()
	prog := spec.Build(arch.Nodes, seed)
	base := core.NewMachine(arch, core.Baseline()).Run(prog)

	var rows []AblationRow
	add := func(variant string, opts core.Options) {
		res := core.NewMachine(arch, opts).Run(prog)
		n := res.Breakdown.Normalize(base.Breakdown)
		rows = append(rows, AblationRow{
			App: spec.Name, Variant: variant,
			Energy: n.TotalEnergy(), Time: n.SpanRatio, Stats: res.Stats,
		})
	}
	variant := func(mode core.WakeupMode, plan *fault.Plan) core.Options {
		o := core.Thrifty()
		o.Wakeup = mode
		o.Faults = plan
		return o
	}

	for _, rate := range []float64{0, 0.05, 0.20, 0.50} {
		plan := &fault.Plan{Seed: seed, DropWakeup: rate}
		if rate == 0 {
			plan = nil
		}
		add(fmt.Sprintf("hybrid, drop=%.0f%%", rate*100), variant(core.WakeupHybrid, plan))
		add(fmt.Sprintf("external, drop=%.0f%%", rate*100), variant(core.WakeupExternal, plan))
	}
	// Without the cut-off, a repeatedly-stranded external-only sleeper
	// keeps paying the recovery timeout; with it, prediction is disabled
	// at the damaged (barrier, thread) after the first overshoot and the
	// thread spins instead — the Disables column tells the story.
	noCut := variant(core.WakeupExternal, &fault.Plan{Seed: seed, DropWakeup: 0.20})
	noCut.Cutoff = 0
	add("external, drop=20%, cutoff=off", noCut)

	for _, rate := range []float64{0.20, 0.50} {
		plan := &fault.Plan{Seed: seed, TimerFail: rate}
		add(fmt.Sprintf("hybrid, timerfail=%.0f%%", rate*100), variant(core.WakeupHybrid, plan))
		add(fmt.Sprintf("internal, timerfail=%.0f%%", rate*100), variant(core.WakeupInternal, plan))
	}
	return rows
}

// AblationStraggler contrasts a rotating straggler with a pinned one: with
// a pinned straggler even the direct-BST strawman predicts well (stall is
// stable per thread), while rotation breaks it but leaves BIT untouched —
// the precise reason §3.2 prefers the thread-independent metric.
func AblationStraggler(arch core.Arch, seed uint64) []AblationRow {
	var rows []AblationRow
	for _, rotate := range []bool{false, true} {
		spec := workload.Spec{
			Name:            "synthetic",
			TargetImbalance: 0.17,
			Iterations:      16,
			Seed:            uint64(50),
			Loop: []workload.BarrierSpec{{
				Label: "phase", BaseInstr: 2_000_000, Straggler: 0.25,
				Stragglers: 8, Rotate: rotate, Noise: 0.04,
			}},
		}
		prog := spec.Build(arch.Nodes, seed)
		base := core.NewMachine(arch, core.Baseline()).Run(prog)
		name := "pinned straggler"
		if rotate {
			name = "rotating straggler"
		}
		for _, variant := range []struct {
			label string
			mut   func(*core.Options)
		}{
			{"BIT (paper)", func(*core.Options) {}},
			{"direct-BST", func(o *core.Options) { o.BSTDirect = true }},
		} {
			opts := core.Thrifty()
			variant.mut(&opts)
			res := core.NewMachine(arch, opts).Run(prog)
			n := res.Breakdown.Normalize(base.Breakdown)
			rows = append(rows, AblationRow{
				App: name, Variant: variant.label,
				Energy: n.TotalEnergy(), Time: n.SpanRatio, Stats: res.Stats,
			})
		}
	}
	return rows
}

// AblationDVFS compares sleeping at the barrier (the paper's approach)
// with slack-reclamation DVFS (the §1 alternative: "slowing down threads
// not on the critical path"), on a deep-slack app (Volrend), a moderate
// one (FMM), and the adversarial Ocean.
func AblationDVFS(arch core.Arch, seed uint64) []AblationRow {
	var rows []AblationRow
	for _, spec := range []workload.Spec{workload.Volrend(), workload.FMM(), workload.Ocean()} {
		prog := spec.Build(arch.Nodes, seed)
		base := core.NewMachine(arch, core.Baseline()).Run(prog)
		for _, opts := range []core.Options{core.DVFSReclaim(), core.ThriftyHalt(), core.Thrifty()} {
			res := core.NewMachine(arch, opts).Run(prog)
			n := res.Breakdown.Normalize(base.Breakdown)
			rows = append(rows, AblationRow{
				App: spec.Name, Variant: opts.Name,
				Energy: n.TotalEnergy(), Time: n.SpanRatio, Stats: res.Stats,
			})
		}
	}
	return rows
}
