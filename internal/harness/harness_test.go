package harness

import (
	"strings"
	"testing"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/power"
	"thriftybarrier/internal/workload"
)

// smallArch keeps unit-level harness tests fast; the paper-shape tests use
// the full 64-node machine and are skipped with -short.
func smallArch() core.Arch { return core.DefaultArch().WithNodes(16) }

func TestRunAppNormalizesBaselineToUnity(t *testing.T) {
	app := RunApp(smallArch(), workload.Radix(), 1, core.Configurations())
	if len(app.Runs) != 5 {
		t.Fatalf("runs = %d, want 5", len(app.Runs))
	}
	base := app.Runs[0]
	if base.Config.Name != "Baseline" {
		t.Fatal("first run is not Baseline")
	}
	if e := base.Norm.TotalEnergy(); e < 0.999 || e > 1.001 {
		t.Fatalf("baseline normalized energy = %v", e)
	}
	if app.Measured <= 0 {
		t.Fatal("measured imbalance not positive")
	}
}

func TestSummarize(t *testing.T) {
	apps := []AppRun{RunApp(smallArch(), workload.Volrend(), 1, core.Configurations())}
	sums := Summarize(apps)
	if len(sums) != 5 {
		t.Fatalf("summaries = %d, want 5", len(sums))
	}
	var thrifty, ideal Summary
	for _, s := range sums {
		switch s.Config {
		case "Thrifty":
			thrifty = s
		case "Ideal":
			ideal = s
		}
	}
	if thrifty.AvgEnergySavings <= 0 {
		t.Fatalf("thrifty savings = %v on Volrend", thrifty.AvgEnergySavings)
	}
	if ideal.AvgEnergySavings < thrifty.AvgEnergySavings-1e-9 {
		t.Fatalf("ideal (%v) below thrifty (%v)", ideal.AvgEnergySavings, thrifty.AvgEnergySavings)
	}
	if Summarize(nil) != nil {
		t.Fatal("empty summarize not nil")
	}
}

func TestFigure3ShapeMatchesPaper(t *testing.T) {
	d := Figure3(smallArch(), 1, 5, 4, 4)
	if len(d.Points) != 12 {
		t.Fatalf("points = %d, want 12 (3 barriers x 4 iterations)", len(d.Points))
	}
	// Every bar decomposes into Compute + BST = BIT.
	for _, p := range d.Points {
		if diff := p.BIT - p.Compute - p.BST; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("bar %v does not decompose", p)
		}
		if p.BIT <= 0 {
			t.Fatalf("non-positive normalized BIT %v", p.BIT)
		}
	}
	// The key claim: per-barrier BIT is far more stable than per-thread
	// BST.
	for i, l := range d.BarrierLabels {
		if d.BSTCoefVar[i] <= d.BITCoefVar[i] {
			t.Errorf("barrier %s: BST CoV %.4f not above BIT CoV %.4f",
				l, d.BSTCoefVar[i], d.BITCoefVar[i])
		}
	}
	// Barrier 2 has a visibly longer interval than barriers 1 and 3.
	var b1, b2 float64
	for _, p := range d.Points {
		switch p.Barrier {
		case "1":
			b1 += p.BIT
		case "2":
			b2 += p.BIT
		}
	}
	if b2 <= b1 {
		t.Errorf("barrier 2 mean BIT (%v) not above barrier 1 (%v)", b2/4, b1/4)
	}
}

func TestFigure3BadObserverPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad observer did not panic")
		}
	}()
	Figure3(smallArch(), 1, 99, 4, 4)
}

func TestRenderersProduceOutput(t *testing.T) {
	arch := smallArch()
	if out := RenderTable1(arch); !strings.Contains(out, "hypercube") {
		t.Error("Table 1 render missing network row")
	}
	rows := []Table2Row{{App: "FMM", ProblemSize: "16k", Paper: 0.1656, Measured: 0.16}}
	if out := RenderTable2(rows); !strings.Contains(out, "FMM") {
		t.Error("Table 2 render missing app")
	}
	if out := RenderTable3(power.DefaultModel()); !strings.Contains(out, "Sleep3") {
		t.Error("Table 3 render missing state")
	}
	d := Figure3(arch, 1, 3, 4, 4)
	if out := RenderFigure3(d); !strings.Contains(out, "Figure 3") {
		t.Error("Figure 3 render empty")
	}
	apps := []AppRun{RunApp(arch, workload.Radiosity(), 1, core.Configurations())}
	if out := RenderFigure(apps, true); !strings.Contains(out, "Figure 5") {
		t.Error("Figure 5 render empty")
	}
	if out := RenderFigure(apps, false); !strings.Contains(out, "Figure 6") {
		t.Error("Figure 6 render empty")
	}
	if out := RenderFigureCSV(apps, true); !strings.Contains(out, "Radiosity,Thrifty") {
		t.Error("CSV render missing row")
	}
	if out := RenderSummary(Summarize(apps)); !strings.Contains(out, "Thrifty") {
		t.Error("summary render empty")
	}
	abl := []AblationRow{{App: "Ocean", Variant: "cutoff=off", Energy: 1.07, Time: 1.12}}
	if out := RenderAblation("Ablation A", abl); !strings.Contains(out, "Ocean") {
		t.Error("ablation render empty")
	}
}

// --- Paper-shape integration tests on the full 64-node machine ---

func TestPaperShapeFigures56(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine matrix in -short mode")
	}
	arch := core.DefaultArch()
	apps := RunAll(arch, 1)
	sums := Summarize(apps)
	byName := map[string]Summary{}
	for _, s := range sums {
		byName[s.Config] = s
	}

	// §5.1: Thrifty reduces energy by about 17% on the target apps; we
	// accept the 10–25% band (shape, not absolute).
	th := byName["Thrifty"]
	if th.AvgEnergySavings < 0.10 || th.AvgEnergySavings > 0.25 {
		t.Errorf("Thrifty target-app savings = %v, want ~0.17 (band 0.10-0.25)", th.AvgEnergySavings)
	}
	// §5.1: performance degradation about 2% on average, well bounded.
	if th.AvgSlowdown > 0.04 {
		t.Errorf("Thrifty target-app slowdown = %v, want <= 0.04", th.AvgSlowdown)
	}
	// Thrifty-Halt saves less than Thrifty (multiple states help).
	hl := byName["Thrifty-Halt"]
	if hl.AvgEnergySavings >= th.AvgEnergySavings {
		t.Errorf("Thrifty-Halt savings %v >= Thrifty %v", hl.AvgEnergySavings, th.AvgEnergySavings)
	}
	if hl.AvgEnergySavings < 0.05 || hl.AvgEnergySavings > 0.18 {
		t.Errorf("Thrifty-Halt target-app savings = %v, want ~0.11", hl.AvgEnergySavings)
	}
	// Oracle-Halt "does not fare much better" than Thrifty-Halt on energy.
	oh := byName["Oracle-Halt"]
	if oh.AvgEnergySavings < hl.AvgEnergySavings-0.01 {
		t.Errorf("Oracle-Halt savings %v below Thrifty-Halt %v", oh.AvgEnergySavings, hl.AvgEnergySavings)
	}
	if oh.AvgEnergySavings > hl.AvgEnergySavings+0.05 {
		t.Errorf("Oracle-Halt savings %v too far above Thrifty-Halt %v (paper: not much better)",
			oh.AvgEnergySavings, hl.AvgEnergySavings)
	}
	// Oracle configurations never slow down.
	if oh.WorstSlowdown > 0.005 || byName["Ideal"].WorstSlowdown > 0.005 {
		t.Errorf("oracle configurations slowed down: OH %v, Ideal %v",
			oh.WorstSlowdown, byName["Ideal"].WorstSlowdown)
	}
	// Ideal dominates everything on energy.
	id := byName["Ideal"]
	for _, s := range sums {
		if id.AllAppsAvgSavings < s.AllAppsAvgSavings-1e-9 {
			t.Errorf("Ideal (%v) not the best overall (vs %s %v)", id.AllAppsAvgSavings, s.Config, s.AllAppsAvgSavings)
		}
	}

	perApp := map[string]AppRun{}
	for _, a := range apps {
		perApp[a.Spec.Name] = a
	}
	// Volrend: Thrifty approaches Ideal (§5.2: "matches the savings of
	// Ideal").
	vt, _ := perApp["Volrend"].Run("Thrifty")
	vi, _ := perApp["Volrend"].Run("Ideal")
	if gap := vt.Norm.TotalEnergy() - vi.Norm.TotalEnergy(); gap > 0.06 {
		t.Errorf("Volrend Thrifty-Ideal gap = %v, want small", gap)
	}
	// FFT and Cholesky: Thrifty behaves exactly like Baseline (cold
	// PC-indexed predictor).
	for _, name := range []string{"FFT", "Cholesky"} {
		r, _ := perApp[name].Run("Thrifty")
		if e := r.Norm.TotalEnergy(); e < 0.995 || e > 1.005 {
			t.Errorf("%s Thrifty energy = %v, want ~1.0 (behaves like Baseline)", name, e)
		}
		total := 0
		for _, n := range r.Result.Stats.Sleeps {
			total += n
		}
		if total != 0 {
			t.Errorf("%s Thrifty slept %d times, want 0", name, total)
		}
	}
	// Ocean: Thrifty expends a little more energy and time than Baseline
	// (§5.1), but losses are contained by the cut-off.
	ot, _ := perApp["Ocean"].Run("Thrifty")
	if ot.Norm.TotalEnergy() < 1.0 {
		t.Logf("note: Ocean Thrifty energy %v (paper: slightly above 1)", ot.Norm.TotalEnergy())
	}
	if ot.Norm.SpanRatio > 1.045 {
		t.Errorf("Ocean Thrifty slowdown = %v, want <= 3.5%%-ish with cut-off", ot.Norm.SpanRatio)
	}
	if ot.Result.Stats.Disables == 0 {
		t.Error("Ocean Thrifty never triggered the cut-off")
	}
}

func TestPaperShapeAblationCutoff(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine ablation in -short mode")
	}
	rows := AblationCutoff(core.DefaultArch(), 1)
	byVariant := map[string]AblationRow{}
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	off := byVariant["cutoff=off"]
	on := byVariant["cutoff=10%"]
	// §5.2: ~12% degradation without the cut-off, <= ~3.5% with it.
	if off.Time < 1.06 {
		t.Errorf("Ocean without cut-off slowdown = %v, want >= 6%% (paper ~12%%)", off.Time)
	}
	if on.Time > 1.04 {
		t.Errorf("Ocean with 10%% cut-off slowdown = %v, want <= 4%%", on.Time)
	}
	if on.Stats.Disables == 0 {
		t.Error("cut-off never fired")
	}
	// Internal-only without cut-off is far worse than hybrid without
	// cut-off (§3.3.2's motivation).
	internal := byVariant["internal-only, cutoff=off"]
	if internal.Time <= off.Time {
		t.Errorf("internal-only (%v) not worse than hybrid (%v) without cut-off", internal.Time, off.Time)
	}
}

func TestPaperShapeAblationWakeup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine ablation in -short mode")
	}
	rows := AblationWakeup(core.DefaultArch(), 1)
	get := func(app, variant string) AblationRow {
		for _, r := range rows {
			if r.App == app && r.Variant == variant {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", app, variant)
		return AblationRow{}
	}
	// On the stable app, all three mechanisms stay close to baseline time.
	for _, v := range []string{"hybrid", "external", "internal"} {
		if r := get("FMM", v); r.Time > 1.05 {
			t.Errorf("FMM %s slowdown %v too high", v, r.Time)
		}
	}
	// External-only always pays the exit transition on the critical path:
	// never faster than hybrid.
	if get("FMM", "external").Time+1e-9 < get("FMM", "hybrid").Time {
		t.Error("external-only beat hybrid on FMM")
	}
}

func TestPaperShapeAblationPredictor(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine ablation in -short mode")
	}
	rows := AblationPredictor(core.DefaultArch(), 1)
	for _, r := range rows {
		if r.Variant == "last-value (paper)" && r.Energy > 0.95 {
			t.Errorf("%s last-value saved almost nothing (%v)", r.App, r.Energy)
		}
		if r.Time > 1.06 {
			t.Errorf("%s/%s slowdown %v too high", r.App, r.Variant, r.Time)
		}
	}
}

func TestPaperShapeAblationPreempt(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine ablation in -short mode")
	}
	rows := AblationPreempt(core.DefaultArch(), 1)
	var off, on AblationRow
	for _, r := range rows {
		switch r.Variant {
		case "filter=off":
			off = r
		case "filter=4x":
			on = r
		}
	}
	if on.Stats.SkippedUpdates == 0 {
		t.Error("underprediction filter never skipped an update")
	}
	if off.Stats.SkippedUpdates != 0 {
		t.Error("disabled filter skipped updates")
	}
}
