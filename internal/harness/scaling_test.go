package harness

import (
	"reflect"
	"strings"
	"testing"
)

func TestScalingExperiment(t *testing.T) {
	rows := ScalingExperiment(7, 64, 4)
	if len(rows) != 10 { // 5 collectives × {Baseline, Thrifty}
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Nodes != 64 {
			t.Fatalf("row %+v has wrong node count", r)
		}
		if r.Stats.Episodes != 24 {
			t.Fatalf("%s/%s: %d episodes, want 24", r.Collective, r.Variant, r.Stats.Episodes)
		}
		if r.Round <= 0 {
			t.Fatalf("%s/%s: non-positive round latency", r.Collective, r.Variant)
		}
		if len(r.PerNodeDigest) != 16 {
			t.Fatalf("digest %q not 16 hex chars", r.PerNodeDigest)
		}
		if r.Variant == "MP-Baseline" && (r.Energy != 1 || r.Time != 1) {
			t.Fatalf("baseline row not self-normalized: %+v", r)
		}
	}
}

// TestScalingShardInvariance pins the artifact-level determinism contract:
// the full row set — per-node digests included — is identical at any shard
// count, so thriftybench -j 1 and -j 8 emit byte-identical scaling files.
func TestScalingShardInvariance(t *testing.T) {
	want := ScalingExperiment(7, 64, 1)
	for _, shards := range []int{2, 8} {
		got := ScalingExperiment(7, 64, shards)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shards=%d rows diverged from shards=1", shards)
		}
	}
}

func TestRenderScaling(t *testing.T) {
	rows := ScalingExperiment(7, 64, 4)
	out := RenderScaling(64, rows)
	for _, want := range []string{"64 nodes", "tree r=4", "dissemination", "MP-Thrifty"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
