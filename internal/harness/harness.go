// Package harness runs the paper's experiments end to end and renders
// their tables and figures: Tables 1–3, Figure 3 (BIT/BST variability),
// Figures 5 and 6 (normalized energy and execution time for the five
// system configurations over the ten applications), and the four ablations
// the evaluation section discusses (overprediction cut-off, wake-up
// mechanism, predictor policy, preemption filtering).
package harness

import (
	"fmt"
	"math"
	"time"

	"thriftybarrier/internal/core"
	"thriftybarrier/internal/energy"
	"thriftybarrier/internal/workload"
)

// ConfigRun is one (application, configuration) measurement.
type ConfigRun struct {
	Config core.Options
	Result core.Result
	// Norm is the Figure 5/6 normalization against the app's Baseline.
	Norm energy.Normalized
	// Err is non-empty when the run panicked, timed out, or lost its
	// normalization anchor; such runs carry no measurement and are skipped
	// by the renderers.
	Err string `json:",omitempty"`
	// Wall is the host wall-clock the run consumed. Excluded from artifact
	// JSON (it would break byte-for-byte determinism checks); the manifest
	// carries it instead.
	Wall time.Duration `json:"-"`
}

// OK reports whether the run produced a measurement.
func (c ConfigRun) OK() bool { return c.Err == "" }

// AppRun bundles the five configuration runs of one application.
type AppRun struct {
	Spec     workload.Spec
	Measured float64 // Baseline barrier imbalance (Table 2 check)
	Runs     []ConfigRun
}

// Run finds a configuration's run by name.
func (a AppRun) Run(name string) (ConfigRun, bool) {
	for _, r := range a.Runs {
		if r.Config.Name == name {
			return r, true
		}
	}
	return ConfigRun{}, false
}

// RunApp executes every configuration in configs over one application. The
// first configuration must be the Baseline (it anchors the normalization).
// It is the sequential form of Runner.RunApp.
func RunApp(arch core.Arch, spec workload.Spec, seed uint64, configs []core.Options) AppRun {
	return (&Runner{Jobs: 1}).RunApp(arch, spec, seed, configs)
}

// RunAll executes the full Figure 5/6 matrix: the five configurations over
// the ten Table 2 applications. It is the sequential form of Runner.RunAll.
func RunAll(arch core.Arch, seed uint64) []AppRun {
	return (&Runner{Jobs: 1}).RunAll(arch, seed)
}

// Summary condenses the headline numbers the paper quotes in §5.1: average
// energy savings and performance degradation of a configuration over the
// target applications (imbalance >= 10%).
type Summary struct {
	Config            string
	AvgEnergySavings  float64 // over target apps
	AvgSlowdown       float64 // over target apps
	WorstSlowdown     float64
	WorstSlowdownApp  string
	AllAppsAvgSavings float64
	// AvgEDP is the mean normalized energy-delay product over the target
	// apps (energy x time vs Baseline; < 1 means the savings outweigh the
	// slowdown even by the stricter metric energy papers often report).
	AvgEDP float64
}

// Summarize computes per-configuration headline numbers from a full run.
func Summarize(apps []AppRun) []Summary {
	if len(apps) == 0 {
		return nil
	}
	var out []Summary
	for _, cfg := range apps[0].Runs {
		name := cfg.Config.Name
		var tgtSave, tgtSlow, tgtEDP, allSave, worst float64
		worstApp := ""
		nTgt := 0
		for _, app := range apps {
			r, ok := app.Run(name)
			if !ok || !r.OK() {
				continue
			}
			save := 1 - r.Norm.TotalEnergy()
			slow := r.Norm.SpanRatio - 1
			allSave += save
			if app.Spec.TargetImbalance >= 0.10 {
				tgtSave += save
				tgtSlow += slow
				tgtEDP += r.Norm.TotalEnergy() * r.Norm.SpanRatio
				nTgt++
			}
			if slow > worst {
				worst = slow
				worstApp = app.Spec.Name
			}
		}
		s := Summary{Config: name, WorstSlowdown: worst, WorstSlowdownApp: worstApp}
		if nTgt > 0 {
			s.AvgEnergySavings = tgtSave / float64(nTgt)
			s.AvgSlowdown = tgtSlow / float64(nTgt)
			s.AvgEDP = tgtEDP / float64(nTgt)
		}
		s.AllAppsAvgSavings = allSave / float64(len(apps))
		out = append(out, s)
	}
	return out
}

// Figure3Point is one bar of Figure 3: a dynamic instance of one of FMM's
// three main-loop barriers, as seen by a fixed observer thread, normalized
// to the average BIT over the twelve instances shown.
type Figure3Point struct {
	Barrier   string
	Iteration int
	BIT       float64
	Compute   float64
	BST       float64
}

// Figure3Data is the figure plus the stability statistics the paper's
// argument rests on.
type Figure3Data struct {
	Points   []Figure3Point
	Observer int
	// Per-barrier coefficients of variation across ALL instances (not just
	// the four shown): the quantitative form of "BIT is far more stable
	// than BST".
	BarrierLabels []string
	BITCoefVar    []float64
	BSTCoefVar    []float64
}

// Figure3 reproduces the Figure 3 experiment: run FMM under Baseline on the
// full machine, record every episode, and extract four consecutive
// iterations of its three main-loop barriers for a fixed observer thread.
func Figure3(arch core.Arch, seed uint64, observer, firstIteration, iterations int) Figure3Data {
	validateObserver(arch, observer)
	spec := workload.FMM()
	prog := spec.Build(arch.Nodes, seed)
	m := core.NewMachine(arch, core.Baseline())
	m.SetRecording(true)
	res := m.Run(prog)

	perIter := len(spec.Loop)
	labels := make([]string, perIter)
	for i, b := range spec.Loop {
		labels[i] = b.Label
	}

	// Collect BIT/BST series for every instance, grouped by static barrier.
	bits := make([][]float64, perIter)
	bsts := make([][]float64, perIter)
	for idx, ep := range res.Episodes {
		j := idx % perIter
		bits[j] = append(bits[j], float64(ep.BIT))
		bst := float64(ep.Depart[observer] - ep.Arrive[observer])
		if bst < 0 {
			bst = 0
		}
		bsts[j] = append(bsts[j], bst)
	}

	data := Figure3Data{Observer: observer, BarrierLabels: labels}
	for j := 0; j < perIter; j++ {
		data.BITCoefVar = append(data.BITCoefVar, coefVar(bits[j]))
		data.BSTCoefVar = append(data.BSTCoefVar, coefVar(bsts[j]))
	}

	// The twelve bars: iterations [firstIteration, firstIteration+iterations).
	var avgBIT float64
	n := 0
	for it := firstIteration; it < firstIteration+iterations; it++ {
		for j := 0; j < perIter; j++ {
			avgBIT += bits[j][it]
			n++
		}
	}
	avgBIT /= float64(n)
	for it := firstIteration; it < firstIteration+iterations; it++ {
		for j := 0; j < perIter; j++ {
			bit := bits[j][it] / avgBIT
			bst := bsts[j][it] / avgBIT
			data.Points = append(data.Points, Figure3Point{
				Barrier:   labels[j],
				Iteration: it,
				BIT:       bit,
				Compute:   bit - bst,
				BST:       bst,
			})
		}
	}
	return data
}

func coefVar(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / mean
}

// Table2Row is one row of the Table 2 reproduction.
type Table2Row struct {
	App         string
	ProblemSize string
	Paper       float64
	Measured    float64
}

// Table2 measures Baseline barrier imbalance for every application.
func Table2(arch core.Arch, seed uint64) []Table2Row {
	var out []Table2Row
	for _, spec := range workload.All() {
		res := core.NewMachine(arch, core.Baseline()).Run(spec.Build(arch.Nodes, seed))
		out = append(out, Table2Row{
			App:         spec.Name,
			ProblemSize: spec.ProblemSize,
			Paper:       spec.TargetImbalance,
			Measured:    res.Breakdown.SpinFraction(),
		})
	}
	return out
}

// validateObserver panics early on a bad observer thread id.
func validateObserver(arch core.Arch, observer int) {
	if observer < 0 || observer >= arch.Nodes {
		panic(fmt.Sprintf("harness: observer %d out of range [0,%d)", observer, arch.Nodes))
	}
}
