package harness

import "encoding/json"

// MarshalArtifact renders an artifact's machine-readable twin as indented
// JSON with a trailing newline — the results/*.json counterpart the bench
// writes next to every text table and figure. The row structs the
// experiment functions return (AppRun, AblationRow, SensitivityRow, …)
// marshal as-is; host wall-clock is excluded from them so twins stay
// byte-identical across -j widths (timing lives in the Manifest).
func MarshalArtifact(data any) ([]byte, error) {
	b, err := json.MarshalIndent(data, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
