package harness

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"thriftybarrier/internal/mp"
	"thriftybarrier/internal/sim"
	"thriftybarrier/internal/stats"
)

// ScalingRow is one measurement of the many-core scaling study: a barrier
// collective at one machine size under one waiting policy, run on the
// parallel engine. Energy and Time are normalized against the
// same-collective baseline (so each collective's thrifty savings are read
// off directly); PerNodeDigest hashes every rank's energy and spin time, so
// the byte-identical artifact comparison across -j covers per-node stats,
// not just the aggregates.
type ScalingRow struct {
	Nodes         int
	Collective    string
	Variant       string
	Energy        float64
	Time          float64
	Round         sim.Cycles // mean barrier-round span
	Stats         mp.Stats
	PerNodeDigest string
}

// ScalingPoints are the machine sizes of the scaling study: the paper's 64
// plus the 256/1024 points of the Bertuletti et al. many-core regime.
var ScalingPoints = []int{64, 256, 1024}

// ScalingProgram builds the phase program of the scaling study: jittered
// compute with a rotating straggler, three static barrier PCs — the same
// shape as the 64-node MP experiment, shortened to keep 1024-node runs
// affordable. Exported so cmd/thriftysim's -scaling mode runs exactly the
// workload the committed scaling artifacts were measured on.
func ScalingProgram(seed uint64, nodes, phases int) mp.Program {
	rng := sim.NewRNG(seed)
	baseAlt := []sim.Cycles{300 * sim.Microsecond, 600 * sim.Microsecond, 320 * sim.Microsecond}
	prog := make(mp.Program, phases)
	for i := range prog {
		base := baseAlt[i%3]
		straggler := rng.Intn(nodes)
		pr := rng.Split(uint64(i))
		prog[i] = mp.Phase{
			PC: uint64(0x200 + i%3),
			Work: func(rank int) sim.Cycles {
				r := pr.Split(uint64(rank))
				d := float64(base) * (1 + 0.05*(2*r.Float64()-1))
				if rank == straggler {
					d *= 1.20
				}
				return sim.Cycles(d)
			},
		}
	}
	return prog
}

// ScalingExperiment sweeps the barrier collectives — combining trees of
// radix 2/4/8/16 and dissemination — at one machine size on the parallel
// engine with the given shard count. RunParallel's determinism contract
// makes the rows (digest included) independent of shards, which the CI
// determinism job checks by diffing -j 1 against -j 8 artifacts.
func ScalingExperiment(seed uint64, nodes, shards int) []ScalingRow {
	cfg := mp.DefaultConfig()
	cfg.Nodes = nodes
	cfg.NoC.Nodes = nodes
	prog := ScalingProgram(seed, nodes, 24)
	type collective struct {
		label  string
		alg    mp.Algorithm
		fanout int
	}
	cols := []collective{
		{"tree r=2", mp.TreeBarrier, 2},
		{"tree r=4", mp.TreeBarrier, 4},
		{"tree r=8", mp.TreeBarrier, 8},
		{"tree r=16", mp.TreeBarrier, 16},
		{"dissemination", mp.DisseminationBarrier, cfg.Fanout},
	}
	var rows []ScalingRow
	for _, c := range cols {
		cc := cfg
		cc.Algorithm = c.alg
		cc.Fanout = c.fanout
		base := mp.MustNewMachine(cc, mp.Baseline()).RunParallel(prog, shards)
		for _, opts := range []mp.Options{mp.Baseline(), mp.Thrifty()} {
			res := mp.MustNewMachine(cc, opts).RunParallel(prog, shards)
			n := res.Breakdown.Normalize(base.Breakdown)
			rows = append(rows, ScalingRow{
				Nodes:         nodes,
				Collective:    c.label,
				Variant:       opts.Name,
				Energy:        n.TotalEnergy(),
				Time:          n.SpanRatio,
				Round:         res.MeanRoundLatency(),
				Stats:         res.Stats,
				PerNodeDigest: perNodeDigest(res),
			})
		}
	}
	return rows
}

// perNodeDigest folds every rank's energy and spin time into one hash, in
// rank order, bit for bit.
func perNodeDigest(res mp.ParallelResult) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, e := range res.PerNodeEnergy {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(e))
		h.Write(buf[:])
	}
	for _, s := range res.PerNodeSpin {
		binary.LittleEndian.PutUint64(buf[:], uint64(s))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// RenderScaling formats one machine size's scaling rows.
func RenderScaling(nodes int, rows []ScalingRow) string {
	t := stats.NewTable(
		fmt.Sprintf("Scaling: barrier collectives at %d nodes (parallel engine)", nodes),
		"Collective", "Variant", "Energy", "Time", "Round", "Sleeps", "Early", "External", "Late", "Disables", "PerNode")
	for _, r := range rows {
		total := 0
		for _, n := range r.Stats.Sleeps {
			total += n
		}
		t.AddRowStrings(r.Collective, r.Variant,
			fmt.Sprintf("%.3f", r.Energy), fmt.Sprintf("%.4f", r.Time), r.Round.String(),
			fmt.Sprint(total), fmt.Sprint(r.Stats.EarlyWakes), fmt.Sprint(r.Stats.ExternalWakes),
			fmt.Sprint(r.Stats.LateWakes), fmt.Sprint(r.Stats.Disables), r.PerNodeDigest)
	}
	return t.String()
}
