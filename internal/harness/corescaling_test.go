package harness

import (
	"math"
	"testing"
)

// The experiment's rows — per-CPU digests included — must be invariant
// to the shard count: the same property the CI determinism job checks on
// the committed artifacts, pinned here at the 64-CPU point.
func TestCoreScalingShardInvariant(t *testing.T) {
	ref := CoreScalingExperiment(1, 64, 0)
	if len(ref) != 6 {
		t.Fatalf("got %d rows, want 6 (3 topologies x 2 variants)", len(ref))
	}
	for _, shards := range []int{1, 8} {
		got := CoreScalingExperiment(1, 64, shards)
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("shards=%d row %d diverged:\n got %+v\nwant %+v", shards, i, got[i], ref[i])
			}
		}
	}
}

// The study must reproduce the paper's headline at scale: Thrifty saves
// energy on every topology while staying inside a small slowdown
// envelope.
func TestCoreScalingThriftyEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("256-CPU sweep")
	}
	rows := CoreScalingExperiment(1, 256, 8)
	for _, r := range rows {
		switch r.Variant {
		case "Baseline":
			if math.Abs(r.Energy-1) > 1e-9 || math.Abs(r.Time-1) > 1e-9 {
				t.Errorf("%s baseline not self-normalized: energy %.3f time %.3f", r.Topology, r.Energy, r.Time)
			}
		case "Thrifty":
			if r.Energy >= 1 {
				t.Errorf("%s: thrifty energy %.3f not below baseline", r.Topology, r.Energy)
			}
			if r.Time > 1.02 {
				t.Errorf("%s: thrifty slowdown %.4f exceeds the 2%% envelope", r.Topology, r.Time)
			}
			if r.Sleeps == 0 {
				t.Errorf("%s: thrifty never slept", r.Topology)
			}
		}
	}
}
