package remote

import (
	"context"
	"net"
	"sync"
)

// PipeListener is an in-memory net.Listener over net.Pipe pairs: the
// deterministic test transport. Dial hands one end to the caller and
// queues the other for Accept, so a whole server + clients topology runs
// in one process with no sockets — which is how the chaos suite runs the
// protocol under -race in CI with no real network.
type PipeListener struct {
	ch chan net.Conn

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// NewPipeListener builds an open in-memory listener.
func NewPipeListener() *PipeListener {
	return &PipeListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

// Dial connects to the listener, blocking until the server Accepts (the
// pipe has no backlog) or ctx is cancelled.
func (l *PipeListener) Dial(ctx context.Context) (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}

// Accept waits for the next Dial.
func (l *PipeListener) Accept() (net.Conn, error) {
	select {
	case conn := <-l.ch:
		return conn, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close unblocks Accept and all future Dials.
func (l *PipeListener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.done)
	}
	return nil
}

// Addr reports a synthetic address.
func (l *PipeListener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe://in-memory" }
