package remote

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestFrameRoundTrips(t *testing.T) {
	reg := Register{ClientID: "c1", Barrier: "phase", Parties: 4, Nonce: 9, Epoch: 3, Gen: 1}
	if got, err := DecodeRegister(reg.Encode()); err != nil || got != reg {
		t.Fatalf("register: %+v, %v", got, err)
	}
	dir := Directive{Barrier: "phase", Epoch: 3, Gen: 1, Nonce: 9, Tier: TierTimedPark,
		Shed: 1, PredictedStallNanos: 12345, PollNanos: 200, ParkNanos: 11000}
	if got, err := DecodeDirective(dir.Encode()); err != nil || got != dir {
		t.Fatalf("directive: %+v, %v", got, err)
	}
	hb := Heartbeat{ClientID: "c1", Seq: 77}
	if got, err := DecodeHeartbeat(hb.Encode()); err != nil || got != hb {
		t.Fatalf("heartbeat: %+v, %v", got, err)
	}
	rel := Release{Barrier: "phase", Epoch: 3, Gen: 1, Broken: true, Arrived: 2,
		Reason: "lease lost: client \"c2\" went silent"}
	if got, err := DecodeRelease(rel.Encode()); err != nil || got != rel {
		t.Fatalf("release: %+v, %v", got, err)
	}
	adv := Advisory{Barrier: "phase", Epoch: 3, Gen: 1, Arrived: 2, Parties: 4}
	if got, err := DecodeAdvisory(adv.Encode()); err != nil || got != adv {
		t.Fatalf("advisory: %+v, %v", got, err)
	}
	cn := Cancel{ClientID: "c1", Barrier: "phase", Nonce: 9, Epoch: 3, Gen: 1, Reason: "ctx"}
	if got, err := DecodeCancel(cn.Encode()); err != nil || got != cn {
		t.Fatalf("cancel: %+v, %v", got, err)
	}
	ef := ErrorFrame{Code: ErrCodeParties, Barrier: "phase", Msg: "width 4 != 2"}
	if got, err := DecodeError(ef.Encode()); err != nil || got != ef {
		t.Fatalf("error: %+v, %v", got, err)
	}
	rows := []BarrierStatus{
		{Name: "a", Epoch: 2, Gen: 0, Arrived: 1, Parties: 4},
		{Name: "b", Epoch: 9, Gen: 3, Arrived: 0, Parties: 2, Broken: true},
	}
	if got, err := DecodeStatus(EncodeStatus(rows)); err != nil || !reflect.DeepEqual(got, rows) {
		t.Fatalf("status: %+v, %v", got, err)
	}
}

// Encoding is canonical: the same logical frame renders the same bytes
// every time — the foundation of the chaos suite's byte-identity checks.
func TestEncodeIsCanonical(t *testing.T) {
	a := Release{Barrier: "phase", Epoch: 3, Gen: 1, Arrived: 4}
	b := Release{Barrier: "phase", Epoch: 3, Gen: 1, Arrived: 4}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("identical releases encoded differently")
	}
}

// Trailing bytes — two payloads concatenated by duplicate-frame chaos —
// must be rejected, not silently half-parsed.
func TestDecodeRejectsTrailingBytes(t *testing.T) {
	reg := Register{ClientID: "c", Barrier: "b", Parties: 2, Nonce: 1}
	p := append(reg.Encode(), 0xFF)
	if _, err := DecodeRegister(p); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

// The status request carries no fields, so its decoder is pure frame
// validation: the canonical encoding passes, any trailing bytes fail.
func TestDecodeStatusReq(t *testing.T) {
	if err := DecodeStatusReq(EncodeStatusReq()); err != nil {
		t.Fatalf("canonical status request rejected: %v", err)
	}
	p := append(EncodeStatusReq(), 0xFF)
	if err := DecodeStatusReq(p); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

// Truncated payloads — the visible half of a torn frame — must error,
// never panic or return zero-filled frames as valid.
func TestDecodeRejectsTruncation(t *testing.T) {
	full := (&Directive{Barrier: "phase", Epoch: 1, Nonce: 2}).Encode()
	for cut := 1; cut < len(full); cut++ {
		if _, err := DecodeDirective(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadFrameTornAndOversized(t *testing.T) {
	var buf bytes.Buffer
	payload := (&Heartbeat{ClientID: "c", Seq: 1}).Encode()
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Every strict prefix is a torn frame.
	for cut := 0; cut < len(whole); cut++ {
		_, err := ReadFrame(bytes.NewReader(whole[:cut]))
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("empty stream: %v, want io.EOF", err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("torn frame at %d accepted", cut)
		}
	}
	got, err := ReadFrame(bytes.NewReader(whole))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %q, %v", got, err)
	}
	// A hostile length prefix must be bounded.
	big := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(big)); err == nil || !strings.Contains(err.Error(), "MaxFrame") {
		t.Fatalf("oversized prefix: %v", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestWriteFrameIsOneWrite(t *testing.T) {
	w := &countingWriter{}
	if err := WriteFrame(w, []byte{FrameStatusReq}); err != nil {
		t.Fatal(err)
	}
	if w.calls != 1 {
		t.Fatalf("WriteFrame used %d Write calls, want exactly 1 (FaultConn frame granularity)", w.calls)
	}
}

type countingWriter struct{ calls int }

func (w *countingWriter) Write(b []byte) (int, error) { w.calls++; return len(b), nil }

func TestTierName(t *testing.T) {
	for tier, want := range map[byte]string{
		TierSpin: "spin", TierYield: "yield", TierTimedPark: "timed-park",
		TierPark: "park", 99: "tier(99)",
	} {
		if got := TierName(tier); got != want {
			t.Errorf("TierName(%d) = %q, want %q", tier, got, want)
		}
	}
}
