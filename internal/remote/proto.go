// Package remote carries the thrifty barrier across process and network
// boundaries: a framed length-prefixed protocol, a fault-tolerant server
// (cmd/thriftyd) that runs the §3.2 BIT prediction per (client, barrier)
// and answers each registration with a sleep directive — the paper's
// Table 3 tier decision carried over the wire — and the lease, reconnect
// and broken-epoch machinery that makes the §3.3 failure semantics
// survive a real network.
//
// The protocol is designed idempotent end to end, because the transport
// is allowed to drop, delay, duplicate and tear frames
// (internal/fault.FaultConn injects exactly those): registrations carry a
// per-attempt nonce plus a (client ID, epoch, generation) resume token so
// a retransmitted or re-sent register binds to the same arrival instead
// of double-counting;
// directives and release frames are replayed verbatim for a reconnecting
// client; and every frame a server emits for a given epoch is a pure
// function of protocol state, never of wall-clock, so the fault-free
// release frames are byte-identical across runs — the property the chaos
// suite pins.
package remote

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame bounds a frame's payload so a torn or hostile length prefix
// cannot make a reader allocate unboundedly.
const MaxFrame = 64 << 10

// Frame types. The type byte is the first payload byte, after the 4-byte
// big-endian length prefix.
const (
	// FrameRegister (client → server) arrives at a barrier epoch, or —
	// with a non-zero epoch — resumes a previous arrival after a
	// reconnect.
	FrameRegister byte = iota + 1
	// FrameDirective (server → client) answers a registration: the
	// assigned (epoch, generation) resume token and the sleep directive.
	FrameDirective
	// FrameHeartbeat (client → server) renews the client's lease.
	FrameHeartbeat
	// FrameRelease (server → client) ends an epoch: completed, or broken
	// with a reason.
	FrameRelease
	// FrameAdvisory (server → client) is the stall watchdog's push: the
	// epoch has outlived its predicted interval and is still missing
	// arrivals.
	FrameAdvisory
	// FrameCancel (client → server) abandons an in-flight arrival,
	// breaking the epoch for every peer — the wire form of the
	// WaitContext cancellation contract.
	FrameCancel
	// FrameStatusReq (client → server) asks for the barrier table.
	FrameStatusReq
	// FrameStatus (server → client) answers with one BarrierStatus per
	// known barrier, sorted by name.
	FrameStatus
	// FrameError (server → client) reports a protocol-level rejection
	// (e.g. a parties mismatch). It never ends an epoch.
	FrameError
)

// Tier mirrors thrifty.Tier for the wire: how deeply the registered
// client may sleep before its next check — the Table 3 decision, made
// server-side from the predicted stall and shipped to the waiter.
const (
	TierSpin byte = iota
	TierYield
	TierTimedPark
	TierPark
)

// TierName renders a wire tier for logs and status output.
func TierName(t byte) string {
	switch t {
	case TierSpin:
		return "spin"
	case TierYield:
		return "yield"
	case TierTimedPark:
		return "timed-park"
	case TierPark:
		return "park"
	default:
		return fmt.Sprintf("tier(%d)", t)
	}
}

// WriteFrame writes one frame in exactly one Write call — the granularity
// contract internal/fault.FaultConn keys its per-frame verdicts on, and
// the reason a torn frame can only come from a deliberate mid-frame
// close.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("remote: frame of %d bytes exceeds MaxFrame %d", len(payload), MaxFrame)
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one length-prefixed frame. A truncated prefix or body
// (the mid-frame close) surfaces as io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("remote: empty frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("remote: frame of %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	return payload, nil
}

// enc is an appending big-endian field writer.
type enc struct{ b []byte }

func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.BigEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.b = binary.BigEndian.AppendUint64(e.b, uint64(v)) }
func (e *enc) str(s string) { e.u16(uint16(len(s))); e.b = append(e.b, s...) }

// dec is the matching error-latching reader: the first short field poisons
// every later read, so decoders check the error once at the end.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = io.ErrUnexpectedEOF
	}
}

func (d *dec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u16() uint16 {
	if d.err != nil || len(d.b) < 2 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) str() string {
	n := int(d.u16())
	if d.err != nil || len(d.b) < n {
		d.fail()
		return ""
	}
	v := string(d.b[:n])
	d.b = d.b[n:]
	return v
}

// done returns the latched error, also rejecting trailing garbage —
// duplicate-frame chaos must not let two concatenated payloads pass as
// one.
func (d *dec) done(kind string) error {
	if d.err != nil {
		return fmt.Errorf("remote: short %s frame", kind)
	}
	if len(d.b) != 0 {
		return fmt.Errorf("remote: %d trailing bytes after %s frame", len(d.b), kind)
	}
	return nil
}

// Register is a client's arrival at (or resumption of) a barrier epoch.
type Register struct {
	ClientID string
	Barrier  string
	// Parties is the barrier width. The first registrant fixes it; a
	// later mismatch is answered with FrameError.
	Parties uint32
	// Nonce identifies this wait attempt: the client bumps it once per
	// logical Wait call and keeps it fixed across retransmits and
	// reconnects of that call. The server keys its double-count guard on
	// (ClientID, Nonce): a register whose nonce was already counted binds
	// to the existing arrival (epoch still open) or replays the outcome
	// of the epoch it was counted into (epoch ended) — it never counts
	// again. This is what makes registration safe under at-least-once
	// delivery, where the same frame may arrive twice straddling a
	// release.
	Nonce uint64
	// Epoch/Gen form the resume token. A fresh arrival sends Epoch 0 and
	// lets the server assign; a reconnect echoes the token from its
	// directive. Diagnostic alongside Nonce, which alone decides
	// idempotency.
	Epoch uint64
	Gen   uint64
}

// Encode renders the frame payload.
func (f *Register) Encode() []byte {
	e := &enc{b: make([]byte, 0, 1+2+len(f.ClientID)+2+len(f.Barrier)+4+16)}
	e.u8(FrameRegister)
	e.str(f.ClientID)
	e.str(f.Barrier)
	e.u32(f.Parties)
	e.u64(f.Nonce)
	e.u64(f.Epoch)
	e.u64(f.Gen)
	return e.b
}

// DecodeRegister parses a FrameRegister payload (type byte included).
func DecodeRegister(p []byte) (Register, error) {
	d := &dec{b: p[1:]}
	f := Register{
		ClientID: d.str(),
		Barrier:  d.str(),
		Parties:  d.u32(),
		Nonce:    d.u64(),
		Epoch:    d.u64(),
		Gen:      d.u64(),
	}
	return f, d.done("register")
}

// Directive is the server's answer to a registration: the resume token
// plus the sleep decision for this waiter.
type Directive struct {
	Barrier string
	Epoch   uint64
	Gen     uint64
	// Nonce echoes the register's attempt nonce, so a client that retried
	// across attempts can match the directive to the right Wait call.
	Nonce uint64
	// Tier is the wire tier (TierSpin..TierPark).
	Tier byte
	// Shed is non-zero when the server widened this directive under load:
	// the waiter was told to sleep deeper/longer than its prediction
	// alone would say, instead of being rejected.
	Shed byte
	// PredictedStallNanos is the server's stall prediction for this
	// (client, barrier): predicted release minus arrival time. Zero when
	// the site is still warming up.
	PredictedStallNanos int64
	// PollNanos is the re-check cadence for the spin/yield tiers and the
	// residual poll after a timed park.
	PollNanos int64
	// ParkNanos is the timed-park duration: how long the waiter may sleep
	// outright before re-checking (TierTimedPark), or the advisory
	// re-register deadline hint for TierPark.
	ParkNanos int64
}

// Encode renders the frame payload.
func (f *Directive) Encode() []byte {
	e := &enc{b: make([]byte, 0, 1+2+len(f.Barrier)+16+2+24)}
	e.u8(FrameDirective)
	e.str(f.Barrier)
	e.u64(f.Epoch)
	e.u64(f.Gen)
	e.u64(f.Nonce)
	e.u8(f.Tier)
	e.u8(f.Shed)
	e.i64(f.PredictedStallNanos)
	e.i64(f.PollNanos)
	e.i64(f.ParkNanos)
	return e.b
}

// DecodeDirective parses a FrameDirective payload.
func DecodeDirective(p []byte) (Directive, error) {
	d := &dec{b: p[1:]}
	f := Directive{
		Barrier:             d.str(),
		Epoch:               d.u64(),
		Gen:                 d.u64(),
		Nonce:               d.u64(),
		Tier:                d.u8(),
		Shed:                d.u8(),
		PredictedStallNanos: d.i64(),
		PollNanos:           d.i64(),
		ParkNanos:           d.i64(),
	}
	return f, d.done("directive")
}

// Heartbeat renews a client's lease. Seq is diagnostic (it lets a log
// correlate heartbeats across a reconnect); the server's lease logic uses
// only arrival time.
type Heartbeat struct {
	ClientID string
	Seq      uint64
}

// Encode renders the frame payload.
func (f *Heartbeat) Encode() []byte {
	e := &enc{b: make([]byte, 0, 1+2+len(f.ClientID)+8)}
	e.u8(FrameHeartbeat)
	e.str(f.ClientID)
	e.u64(f.Seq)
	return e.b
}

// DecodeHeartbeat parses a FrameHeartbeat payload.
func DecodeHeartbeat(p []byte) (Heartbeat, error) {
	d := &dec{b: p[1:]}
	f := Heartbeat{ClientID: d.str(), Seq: d.u64()}
	return f, d.done("heartbeat")
}

// Release ends an epoch. Completed epochs carry Broken false, Arrived ==
// parties and an empty Reason; broken epochs carry the break reason
// (lease lost, cancelled, reset). No field depends on wall-clock: a
// fault-free run's release frames are byte-identical across runs, seeds
// and worker widths, which the chaos suite pins.
type Release struct {
	Barrier string
	Epoch   uint64
	Gen     uint64
	Broken  bool
	Arrived uint32
	Reason  string
}

// Encode renders the frame payload.
func (f *Release) Encode() []byte {
	e := &enc{b: make([]byte, 0, 1+2+len(f.Barrier)+16+1+4+2+len(f.Reason))}
	e.u8(FrameRelease)
	e.str(f.Barrier)
	e.u64(f.Epoch)
	e.u64(f.Gen)
	if f.Broken {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.u32(f.Arrived)
	e.str(f.Reason)
	return e.b
}

// DecodeRelease parses a FrameRelease payload.
func DecodeRelease(p []byte) (Release, error) {
	d := &dec{b: p[1:]}
	f := Release{Barrier: d.str(), Epoch: d.u64(), Gen: d.u64()}
	f.Broken = d.u8() != 0
	f.Arrived = d.u32()
	f.Reason = d.str()
	return f, d.done("release")
}

// Advisory is the stall watchdog's push to an epoch's waiters: the
// rendezvous has outlived its predicted interval and Parties-Arrived
// participants are still missing. Diagnostic only — it never ends the
// epoch (a deserter may still arrive; the lease is what gives up on it).
type Advisory struct {
	Barrier string
	Epoch   uint64
	Gen     uint64
	Arrived uint32
	Parties uint32
}

// Encode renders the frame payload.
func (f *Advisory) Encode() []byte {
	e := &enc{b: make([]byte, 0, 1+2+len(f.Barrier)+16+8)}
	e.u8(FrameAdvisory)
	e.str(f.Barrier)
	e.u64(f.Epoch)
	e.u64(f.Gen)
	e.u32(f.Arrived)
	e.u32(f.Parties)
	return e.b
}

// DecodeAdvisory parses a FrameAdvisory payload.
func DecodeAdvisory(p []byte) (Advisory, error) {
	d := &dec{b: p[1:]}
	f := Advisory{
		Barrier: d.str(), Epoch: d.u64(), Gen: d.u64(),
		Arrived: d.u32(), Parties: d.u32(),
	}
	return f, d.done("advisory")
}

// Cancel abandons an in-flight arrival: the wire form of a WaitContext
// cancellation. The epoch it names breaks for every peer.
type Cancel struct {
	ClientID string
	Barrier  string
	// Nonce names the wait attempt being abandoned — the same idempotency
	// key the register carried, so a cancel matches even when the client
	// never learned its epoch (its directive was lost in flight).
	Nonce  uint64
	Epoch  uint64
	Gen    uint64
	Reason string
}

// Encode renders the frame payload.
func (f *Cancel) Encode() []byte {
	e := &enc{b: make([]byte, 0, 1+2+len(f.ClientID)+2+len(f.Barrier)+16+2+len(f.Reason))}
	e.u8(FrameCancel)
	e.str(f.ClientID)
	e.str(f.Barrier)
	e.u64(f.Nonce)
	e.u64(f.Epoch)
	e.u64(f.Gen)
	e.str(f.Reason)
	return e.b
}

// DecodeCancel parses a FrameCancel payload.
func DecodeCancel(p []byte) (Cancel, error) {
	d := &dec{b: p[1:]}
	f := Cancel{
		ClientID: d.str(), Barrier: d.str(), Nonce: d.u64(),
		Epoch: d.u64(), Gen: d.u64(), Reason: d.str(),
	}
	return f, d.done("cancel")
}

// BarrierStatus is one barrier's row in a status response: the same
// (generation, arrived, broken) tuple thrifty.Barrier.Snapshot decodes
// from the in-process packed state word, plus the epoch counter the wire
// protocol adds.
type BarrierStatus struct {
	Name    string
	Epoch   uint64
	Gen     uint64
	Arrived uint32
	Parties uint32
	// Broken is true only in the window between a break and its automatic
	// re-arm; the server re-arms immediately, so status normally shows
	// false.
	Broken bool
}

// EncodeStatusReq renders a status request payload.
func EncodeStatusReq() []byte { return []byte{FrameStatusReq} }

// DecodeStatusReq parses a FrameStatusReq payload. The request carries no
// fields, so decoding is pure validation: any trailing bytes mean a torn
// or concatenated frame and the request must be rejected, not served.
func DecodeStatusReq(p []byte) error {
	d := &dec{b: p[1:]}
	return d.done("status request")
}

// EncodeStatus renders a status response payload.
func EncodeStatus(rows []BarrierStatus) []byte {
	e := &enc{b: []byte{FrameStatus}}
	e.u32(uint32(len(rows)))
	for _, r := range rows {
		e.str(r.Name)
		e.u64(r.Epoch)
		e.u64(r.Gen)
		e.u32(r.Arrived)
		e.u32(r.Parties)
		if r.Broken {
			e.u8(1)
		} else {
			e.u8(0)
		}
	}
	return e.b
}

// DecodeStatus parses a FrameStatus payload.
func DecodeStatus(p []byte) ([]BarrierStatus, error) {
	d := &dec{b: p[1:]}
	n := d.u32()
	if d.err == nil && int(n) > MaxFrame/8 {
		return nil, fmt.Errorf("remote: status frame claims %d rows", n)
	}
	rows := make([]BarrierStatus, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		r := BarrierStatus{
			Name: d.str(), Epoch: d.u64(), Gen: d.u64(),
			Arrived: d.u32(), Parties: d.u32(),
		}
		r.Broken = d.u8() != 0
		rows = append(rows, r)
	}
	return rows, d.done("status")
}

// Error codes for FrameError.
const (
	// ErrCodeParties: the register's Parties disagrees with the barrier's
	// established width.
	ErrCodeParties byte = iota + 1
	// ErrCodeBadFrame: the server could not decode a frame from this
	// connection.
	ErrCodeBadFrame
)

// ErrorFrame is a protocol-level rejection. It never breaks an epoch.
// Barrier names the registration being rejected when the error is
// barrier-scoped (a parties mismatch), empty otherwise.
type ErrorFrame struct {
	Code    byte
	Barrier string
	Msg     string
}

// Encode renders the frame payload.
func (f *ErrorFrame) Encode() []byte {
	e := &enc{b: make([]byte, 0, 2+2+len(f.Barrier)+2+len(f.Msg))}
	e.u8(FrameError)
	e.u8(f.Code)
	e.str(f.Barrier)
	e.str(f.Msg)
	return e.b
}

// DecodeError parses a FrameError payload.
func DecodeError(p []byte) (ErrorFrame, error) {
	d := &dec{b: p[1:]}
	f := ErrorFrame{Code: d.u8(), Barrier: d.str(), Msg: d.str()}
	return f, d.done("error")
}
