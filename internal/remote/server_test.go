package remote_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"thriftybarrier/internal/remote"
	"thriftybarrier/thrifty"
	"thriftybarrier/thrifty/client"
)

// startServer serves opts on a fresh in-memory listener and registers
// cleanup.
func startServer(t *testing.T, opts remote.Options) (*remote.Server, *remote.PipeListener) {
	t.Helper()
	srv := remote.NewServer(opts)
	l := remote.NewPipeListener()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	t.Cleanup(func() {
		srv.Close()
		l.Close()
		<-done
	})
	return srv, l
}

func newClient(t *testing.T, l *remote.PipeListener, id string, opts client.Options) *client.Client {
	t.Helper()
	opts.Dial = l.Dial
	opts.ClientID = id
	if opts.Lease == 0 {
		opts.Lease = 500 * time.Millisecond
	}
	c, err := client.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// The happy path: N clients rendezvous repeatedly; every Wait returns
// nil, the epoch counter advances once per round, and nothing breaks.
func TestRemoteBarrierReleases(t *testing.T) {
	srv, l := startServer(t, remote.Options{Lease: time.Second})
	const parties, rounds = 4, 5
	clients := make([]*client.Client, parties)
	for i := range clients {
		clients[i] = newClient(t, l, fmt.Sprintf("c%d", i), client.Options{})
	}
	var wg sync.WaitGroup
	errs := make([][]error, parties)
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				errs[i] = append(errs[i], clients[i].Wait(context.Background(), "phase", parties))
			}
		}(i)
	}
	wg.Wait()
	for i, es := range errs {
		for r, err := range es {
			if err != nil {
				t.Fatalf("client %d round %d: %v", i, r, err)
			}
		}
	}
	st := srv.Stats()
	if st.Releases != rounds {
		t.Fatalf("releases = %d, want %d", st.Releases, rounds)
	}
	if st.Breaks != 0 {
		t.Fatalf("breaks = %d, want 0", st.Breaks)
	}
	if st.Registrations != parties*rounds {
		t.Fatalf("registrations = %d, want %d (double-counting?)", st.Registrations, parties*rounds)
	}
	rows, err := clients[0].Status(context.Background())
	if err != nil || len(rows) != 1 {
		t.Fatalf("status: %v, %v", rows, err)
	}
	if rows[0].Name != "phase" || rows[0].Epoch != rounds+1 || rows[0].Arrived != 0 {
		t.Fatalf("status row: %+v", rows[0])
	}
}

// A client that goes silent past the lease breaks the epoch for its
// peers within roughly one lease interval — the liveness contract.
func TestLeaseLossBreaksEpochForPeers(t *testing.T) {
	const lease = 150 * time.Millisecond
	srv, l := startServer(t, remote.Options{Lease: lease})

	// Parties is 3: the deserter and the survivor arrive, the third seat
	// stays empty, so the epoch is still open when the deserter's lease
	// runs out.
	// The deserter registers raw — no heartbeats — then goes silent.
	conn, err := l.Dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	reg := remote.Register{ClientID: "deserter", Barrier: "phase", Parties: 3, Nonce: 1}
	if err := remote.WriteFrame(conn, reg.Encode()); err != nil {
		t.Fatal(err)
	}
	go func() { // keep draining so server sends never block
		for {
			if _, err := remote.ReadFrame(conn); err != nil {
				return
			}
		}
	}()

	// The survivor waits through the client library.
	c := newClient(t, l, "survivor", client.Options{Lease: lease, HeartbeatEvery: lease / 4})
	start := time.Now()
	err = c.Wait(context.Background(), "phase", 3)
	elapsed := time.Since(start)
	if !errors.Is(err, thrifty.ErrBroken) {
		t.Fatalf("survivor got %v, want ErrBroken", err)
	}
	// One lease to detect plus scheduling slack.
	if elapsed > 4*lease {
		t.Fatalf("break took %v, want within ~one lease (%v)", elapsed, lease)
	}
	st := srv.Stats()
	if st.LeaseBreaks == 0 || st.Breaks == 0 {
		t.Fatalf("stats %+v: expected a lease break", st)
	}

	// The barrier must be usable again: the next epoch completes with a
	// full complement of live clients.
	c2 := newClient(t, l, "fresh2", client.Options{Lease: lease, HeartbeatEvery: lease / 4})
	c3 := newClient(t, l, "fresh3", client.Options{Lease: lease, HeartbeatEvery: lease / 4})
	var wg sync.WaitGroup
	var e1, e2, e3 error
	wg.Add(3)
	go func() { defer wg.Done(); e1 = c.Wait(context.Background(), "phase", 3) }()
	go func() { defer wg.Done(); e2 = c2.Wait(context.Background(), "phase", 3) }()
	go func() { defer wg.Done(); e3 = c3.Wait(context.Background(), "phase", 3) }()
	wg.Wait()
	if e1 != nil || e2 != nil || e3 != nil {
		t.Fatalf("post-break epoch: %v, %v, %v", e1, e2, e3)
	}
}

// A cancelled Wait (the WaitContext contract over the wire) breaks the
// epoch for the peer and returns ctx.Err() to the canceller.
func TestCancelBreaksEpoch(t *testing.T) {
	srv, l := startServer(t, remote.Options{Lease: time.Second})
	a := newClient(t, l, "a", client.Options{})
	b := newClient(t, l, "b", client.Options{})

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = a.Wait(ctx, "phase", 3) }()
	go func() { defer wg.Done(); errB = b.Wait(context.Background(), "phase", 3) }()
	time.Sleep(50 * time.Millisecond) // let both register
	cancel()
	wg.Wait()
	if !errors.Is(errA, context.Canceled) {
		t.Fatalf("canceller got %v, want context.Canceled", errA)
	}
	if !errors.Is(errB, thrifty.ErrBroken) {
		t.Fatalf("peer got %v, want ErrBroken", errB)
	}
	if st := srv.Stats(); st.CancelBreaks != 1 {
		t.Fatalf("cancel breaks = %d, want 1", st.CancelBreaks)
	}
}

// WaitTimeout surfaces a missed hard deadline as ErrBroken.
func TestWaitTimeoutSurfacesErrBroken(t *testing.T) {
	_, l := startServer(t, remote.Options{Lease: time.Second})
	c := newClient(t, l, "solo", client.Options{})
	err := c.WaitTimeout("phase", 2, 100*time.Millisecond)
	if !errors.Is(err, thrifty.ErrBroken) {
		t.Fatalf("got %v, want ErrBroken", err)
	}
}

// A client whose connection dies mid-epoch reconnects and resumes the
// same arrival: exactly one registration is counted, and the epoch
// completes.
func TestReconnectResumesArrival(t *testing.T) {
	srv, l := startServer(t, remote.Options{Lease: time.Second})

	var mu sync.Mutex
	var conns []net.Conn
	dial := func(ctx context.Context) (net.Conn, error) {
		conn, err := l.Dial(ctx)
		if err == nil {
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
		}
		return conn, err
	}
	a, err := client.New(client.Options{
		Dial: dial, ClientID: "a",
		Lease: time.Second, HeartbeatEvery: 100 * time.Millisecond,
		RetryBase: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b := newClient(t, l, "b", client.Options{})

	var wg sync.WaitGroup
	var errA error
	wg.Add(1)
	go func() { defer wg.Done(); errA = a.Wait(context.Background(), "phase", 2) }()

	// Wait until a's registration landed, then kill its connection.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Registrations == 0 {
		if time.Now().After(deadline) {
			t.Fatal("a never registered")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	conns[0].Close()
	mu.Unlock()
	time.Sleep(20 * time.Millisecond) // let the client notice and redial

	var errB error
	wg.Add(1)
	go func() { defer wg.Done(); errB = b.Wait(context.Background(), "phase", 2) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("waits: %v, %v", errA, errB)
	}
	st := srv.Stats()
	if st.Registrations != 2 {
		t.Fatalf("registrations = %d, want 2 — the reconnect double-counted", st.Registrations)
	}
	if st.Releases != 1 || st.Breaks != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// Parties disagreement is a permanent, barrier-scoped error — not a
// break, not a retry loop.
func TestPartiesMismatchFailsFast(t *testing.T) {
	srv, l := startServer(t, remote.Options{Lease: time.Second})
	a := newClient(t, l, "a", client.Options{})
	b := newClient(t, l, "b", client.Options{})
	var wg sync.WaitGroup
	var errA error
	wg.Add(1)
	go func() { defer wg.Done(); errA = a.Wait(context.Background(), "phase", 2) }()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Registrations == 0 {
		if time.Now().After(deadline) {
			t.Fatal("a never registered")
		}
		time.Sleep(time.Millisecond)
	}
	errB := b.Wait(context.Background(), "phase", 3)
	if errB == nil || errors.Is(errB, thrifty.ErrBroken) {
		t.Fatalf("mismatched parties: %v, want a plain error", errB)
	}
	// a's epoch is untouched; finish it.
	c := newClient(t, l, "c", client.Options{})
	if err := c.Wait(context.Background(), "phase", 2); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if errA != nil {
		t.Fatal(errA)
	}
}

// Once the predictor warms up, directives carry predictions and pick
// deeper tiers for long stalls; and under an open-epoch overload the
// server sheds by widening, never by rejecting.
func TestDirectiveTiersAndShedding(t *testing.T) {
	srv, l := startServer(t, remote.Options{Lease: 5 * time.Second, MaxEpochs: 1})
	_ = srv

	register := func(conn net.Conn, id, barrier string, nonce uint64) remote.Directive {
		t.Helper()
		reg := remote.Register{ClientID: id, Barrier: barrier, Parties: 2, Nonce: nonce}
		if err := remote.WriteFrame(conn, reg.Encode()); err != nil {
			t.Fatal(err)
		}
		for {
			p, err := remote.ReadFrame(conn)
			if err != nil {
				t.Fatal(err)
			}
			if p[0] == remote.FrameDirective {
				d, err := remote.DecodeDirective(p)
				if err != nil {
					t.Fatal(err)
				}
				return d
			}
		}
	}

	dial := func() net.Conn {
		conn, err := l.Dial(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		return conn
	}

	// Epoch 1 on barrier "x" stays open: one arrival of two.
	cx := dial()
	dx := register(cx, "cx", "x", 1)
	if dx.Shed != 0 {
		t.Fatalf("first epoch shed: %+v", dx)
	}
	// Opening barrier "y" pushes open epochs past MaxEpochs=1: its
	// directive must be widened, with the tier floored at timed park.
	cy := dial()
	dy := register(cy, "cy", "y", 1)
	if dy.Shed == 0 {
		t.Fatalf("overloaded directive not shed: %+v", dy)
	}
	if dy.Tier < remote.TierTimedPark {
		t.Fatalf("shed directive tier %s, want >= timed-park", remote.TierName(dy.Tier))
	}
	if srv.Stats().Shed == 0 {
		t.Fatal("shed counter did not move")
	}
}

// The stall watchdog reports an epoch that outlives its deadline — to
// OnStall server-side and as an advisory frame to connected waiters —
// without breaking it.
func TestStallWatchdogAdvises(t *testing.T) {
	stalled := make(chan remote.StallEvent, 1)
	srv, l := startServer(t, remote.Options{
		Lease:      5 * time.Second,
		StallFloor: 80 * time.Millisecond,
		OnStall: func(ev remote.StallEvent) {
			select {
			case stalled <- ev:
			default:
			}
		},
	})
	advised := make(chan remote.Advisory, 1)
	c := newClient(t, l, "a", client.Options{
		Lease: 5 * time.Second,
		OnAdvisory: func(a remote.Advisory) {
			select {
			case advised <- a:
			default:
			}
		},
	})
	go c.Wait(context.Background(), "phase", 2) // second party never comes

	select {
	case ev := <-stalled:
		if ev.Barrier != "phase" || ev.Arrived != 1 || ev.Parties != 2 {
			t.Fatalf("stall event %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnStall never fired")
	}
	select {
	case adv := <-advised:
		if adv.Barrier != "phase" || adv.Arrived != 1 {
			t.Fatalf("advisory %+v", adv)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("advisory never reached the client")
	}
	if st := srv.Stats(); st.Stalls != 1 || st.Breaks != 0 {
		t.Fatalf("stats %+v: watchdog must advise, not break", st)
	}
	// Unblock the stalled epoch so cleanup is orderly.
	b := newClient(t, l, "b", client.Options{Lease: 5 * time.Second})
	if err := b.Wait(context.Background(), "phase", 2); err != nil {
		t.Fatal(err)
	}
}
