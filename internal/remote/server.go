package remote

import (
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thriftybarrier/internal/predict"
	"thriftybarrier/internal/registry"
	"thriftybarrier/internal/sim"
)

// Options configures a Server. The zero value of each field selects the
// default.
type Options struct {
	// Lease is how long a client may go silent (no register, heartbeat,
	// cancel or status frame) before its in-flight arrivals are declared
	// dead and their epochs broken for every peer — the wire form of the
	// WaitContext cancellation contract. A reconnecting client that
	// re-registers within the lease resumes its arrival; one that misses
	// it finds a broken release waiting. Default 5s.
	Lease time.Duration

	// The remote tier table: the largest predicted stall each wait tier
	// covers, scaled up from the in-process thresholds because a remote
	// waiter's exit latency includes a network round trip. Defaults:
	// spin <= 1ms, yield <= 10ms, timed park <= 250ms, park beyond.
	SpinThreshold, YieldThreshold, TimedParkThreshold time.Duration
	// ParkMargin is how long before the predicted release a timed-parked
	// client should wake to residual-poll. Default 5ms.
	ParkMargin time.Duration
	// MinPoll/MaxPoll clamp the re-check cadence shipped in directives.
	// Defaults 200µs and 20ms.
	MinPoll, MaxPoll time.Duration

	// Predict configures the per-barrier prediction table (§3.2 BIT
	// machinery: entry 0 is the barrier interval, one entry per client is
	// that client's arrival-to-release stall). Default last-value.
	Predict predict.Config

	// MaxEpochs is the open-epoch watermark for graceful degradation:
	// when more epochs are in flight server-wide, new directives are
	// widened (predicted stalls multiplied by ShedFactor, tier floored at
	// timed park) instead of registrations being rejected — the server
	// sheds wake-up load, never correctness. 0 disables shedding.
	MaxEpochs int
	// ShedFactor is the widening multiplier. Default 4.
	ShedFactor float64

	// FanoutRadix shards the release broadcast: arrivals are grouped into
	// leaves of this width (registration order) and each leaf's frames
	// are written by one goroutine — the wire form of the sharded
	// leaf-broadcast release. Default 8.
	FanoutRadix int

	// StallMultiple × the predicted barrier interval (floored at
	// StallFloor) is the per-epoch stall watchdog deadline. An epoch
	// still open past it fires OnStall and pushes an advisory frame to
	// every connected waiter. Diagnostic only: the lease, not the
	// watchdog, is what gives up on a deserter. Defaults 8 and 2s.
	StallMultiple float64
	StallFloor    time.Duration
	// OnStall, when non-nil, receives watchdog reports. It runs on the
	// watchdog timer's goroutine and must not call back into the server.
	OnStall func(StallEvent)

	// HistoryDepth is how many ended epochs per barrier stay replayable
	// for reconnecting clients. Default 64.
	HistoryDepth int

	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
	// Logf, when non-nil, receives diagnostic logs.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Lease == 0 {
		o.Lease = 5 * time.Second
	}
	if o.SpinThreshold == 0 {
		o.SpinThreshold = time.Millisecond
	}
	if o.YieldThreshold == 0 {
		o.YieldThreshold = 10 * time.Millisecond
	}
	if o.TimedParkThreshold == 0 {
		o.TimedParkThreshold = 250 * time.Millisecond
	}
	if o.ParkMargin == 0 {
		o.ParkMargin = 5 * time.Millisecond
	}
	if o.MinPoll == 0 {
		o.MinPoll = 200 * time.Microsecond
	}
	if o.MaxPoll == 0 {
		o.MaxPoll = 20 * time.Millisecond
	}
	if o.Predict == (predict.Config{}) {
		o.Predict = predict.DefaultConfig()
	}
	if o.ShedFactor == 0 {
		o.ShedFactor = 4
	}
	if o.FanoutRadix == 0 {
		o.FanoutRadix = 8
	}
	if o.StallMultiple == 0 {
		o.StallMultiple = 8
	}
	if o.StallFloor == 0 {
		o.StallFloor = 2 * time.Second
	}
	if o.HistoryDepth == 0 {
		o.HistoryDepth = 64
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// StallEvent is the watchdog's report of an epoch that outlived its
// predicted interval — the server-side OnStall mirror of
// thrifty.StallInfo.
type StallEvent struct {
	Barrier      string
	Epoch, Gen   uint64
	Arrived      int
	Parties      int
	Waited       time.Duration
	PredictedBIT time.Duration
}

// Stats is a snapshot of server activity.
type Stats struct {
	Registrations    uint64 // fresh arrivals counted
	DupRegistrations uint64 // idempotent re-registers bound to an existing arrival
	Replays          uint64 // ended epochs replayed from history
	Releases         uint64 // epochs completed
	Breaks           uint64 // epochs broken (all causes)
	LeaseBreaks      uint64 // … by lease expiry
	CancelBreaks     uint64 // … by client cancellation
	Stalls           uint64 // watchdog firings
	Shed             uint64 // directives widened under load
	BadFrames        uint64 // undecodable frames received
	OpenEpochs       int64  // epochs currently holding waiters
	Barriers         int    // distinct barrier names seen
}

// registryShards sizes the barrier registry's write sharding: lookups
// are lock-free regardless, so this only bounds creation contention.
const registryShards = 16

// Server is the thriftyd core: a registry of named barriers — lock-free
// lookup on every frame, one mutex per barrier instead of a map-wide
// shard lock — each running per-(client, barrier) BIT prediction and
// answering arrivals with sleep directives, with lease-based failure
// detection and broken-epoch fan-out. Safe for concurrent use; serve it
// on any number of listeners.
type Server struct {
	opts     Options
	barriers *registry.Registry[*barrierState]

	clientMu sync.Mutex
	clients  map[string]time.Time // clientID → last frame seen

	connMu    sync.Mutex
	sessions  map[*session]struct{}
	listeners map[net.Listener]struct{}

	closed    atomic.Bool
	done      chan struct{}
	wg        sync.WaitGroup
	leaseOnce sync.Once

	openEpochs atomic.Int64

	registrations, dupRegistrations, replays atomic.Uint64
	releases, breaks, leaseBreaks            atomic.Uint64
	cancelBreaks, stalls, shed, badFrames    atomic.Uint64
}

// NewServer builds a server. It panics on an invalid predictor config
// (mirroring predict.NewTable).
func NewServer(opts Options) *Server {
	opts.fill()
	return &Server{
		opts:      opts,
		barriers:  registry.New[*barrierState](registryShards),
		clients:   make(map[string]time.Time),
		sessions:  make(map[*session]struct{}),
		listeners: make(map[net.Listener]struct{}),
		done:      make(chan struct{}),
	}
}

// nonceRec remembers which epoch a client's wait attempt (nonce) was
// counted into, so a retransmitted or re-sent register — fresh connection
// or duplicated frame — binds to that same arrival instead of
// double-counting into whatever epoch is open by then.
type nonceRec struct {
	nonce uint64
	epoch uint64
}

type barrierState struct {
	// mu guards everything below. Per-barrier rather than per-map-shard:
	// two barriers never contend, and the registry lookup that finds the
	// state takes no lock at all.
	mu sync.Mutex

	name    string
	parties uint32
	epoch   uint64 // current open epoch (1-based)
	gen     uint64 // bumped by every break

	arrivals []*arrival // registration order = fan-out order
	byClient map[string]*arrival
	nonces   map[string]nonceRec

	table       *predict.Table
	lastRelease time.Time // zero = discard the next interval (cold / post-break)
	openedAt    time.Time
	watchdog    *time.Timer
	stalled     bool

	history      map[uint64][]byte // ended epoch → release payload, replayable
	historyOrder []uint64
}

type arrival struct {
	clientID  string
	sess      *session // current binding; nil while disconnected
	directive []byte   // replayed verbatim on duplicate/reconnect register
	arrivedAt time.Time
}

// send is a deferred frame write: handlers compute under the barrier lock
// and transmit after releasing it (fan-out may block on slow peers).
type send struct {
	sess    *session
	payload []byte
}

// pcClient maps a client ID to its predictor table key. Key 0 is
// reserved for the barrier-interval entry.
func pcClient(clientID string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(clientID))
	if v := h.Sum64(); v != 0 {
		return v
	}
	return 1
}

// Serve accepts connections on l until the server is closed or the
// listener fails. Multiple Serve calls on different listeners are fine.
func (s *Server) Serve(l net.Listener) error {
	s.leaseOnce.Do(func() {
		s.wg.Add(1)
		go s.leaseLoop()
	})
	s.connMu.Lock()
	if s.closed.Load() {
		s.connMu.Unlock()
		l.Close()
		return net.ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.connMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close shuts the server down: listeners and connections close, the
// lease checker stops, and every in-flight goroutine is joined.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.done)
	s.connMu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	for sess := range s.sessions {
		sess.conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return nil
}

// touch renews clientID's lease.
func (s *Server) touch(clientID string) {
	if clientID == "" {
		return
	}
	s.clientMu.Lock()
	s.clients[clientID] = s.opts.Now()
	s.clientMu.Unlock()
}

// session is one connection's server-side state.
type session struct {
	srv  *Server
	conn net.Conn

	wmu sync.Mutex // frame writes (one Write per frame)

	mu   sync.Mutex
	regs map[string]string // barrier → clientID bound through this conn
}

// send writes one frame, bounded by a lease-wide write deadline so a
// wedged peer cannot stall the server. Errors close the connection; the
// client's reconnect path owns recovery.
func (t *session) send(payload []byte) {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	t.conn.SetWriteDeadline(t.srv.opts.Now().Add(t.srv.opts.Lease))
	if err := WriteFrame(t.conn, payload); err != nil {
		t.conn.Close()
	}
}

func (t *session) track(barrier, clientID string) {
	t.mu.Lock()
	if t.regs == nil {
		t.regs = make(map[string]string)
	}
	t.regs[barrier] = clientID
	t.mu.Unlock()
}

// serveConn is the per-connection reader loop.
func (s *Server) serveConn(conn net.Conn) {
	sess := &session{srv: s, conn: conn}
	s.connMu.Lock()
	if s.closed.Load() {
		s.connMu.Unlock()
		conn.Close()
		return
	}
	s.sessions[sess] = struct{}{}
	s.connMu.Unlock()

	defer func() {
		conn.Close()
		s.connMu.Lock()
		delete(s.sessions, sess)
		s.connMu.Unlock()
		s.unbind(sess)
	}()

	for {
		payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch payload[0] {
		case FrameRegister:
			f, err := DecodeRegister(payload)
			if err != nil {
				s.badFrame(sess, err)
				continue
			}
			s.handleRegister(sess, f)
		case FrameHeartbeat:
			f, err := DecodeHeartbeat(payload)
			if err != nil {
				s.badFrame(sess, err)
				continue
			}
			s.touch(f.ClientID)
		case FrameCancel:
			f, err := DecodeCancel(payload)
			if err != nil {
				s.badFrame(sess, err)
				continue
			}
			s.handleCancel(sess, f)
		case FrameStatusReq:
			if err := DecodeStatusReq(payload); err != nil {
				s.badFrame(sess, err)
				continue
			}
			sess.send(EncodeStatus(s.Snapshot()))
		default:
			s.badFrame(sess, fmt.Errorf("remote: unknown frame type %d", payload[0]))
		}
	}
}

func (s *Server) badFrame(sess *session, err error) {
	s.badFrames.Add(1)
	s.opts.Logf("thriftyd: bad frame from %v: %v", sess.conn.RemoteAddr(), err)
	ef := ErrorFrame{Code: ErrCodeBadFrame, Msg: err.Error()}
	sess.send(ef.Encode())
}

// unbind detaches a dead connection from every arrival it carried. The
// arrivals themselves survive — only the lease gives up on a client — so
// a reconnect within the lease resumes them.
func (s *Server) unbind(sess *session) {
	sess.mu.Lock()
	regs := make(map[string]string, len(sess.regs))
	for b, c := range sess.regs {
		regs[b] = c
	}
	sess.mu.Unlock()
	for barrier, clientID := range regs {
		if bs, _, ok := s.barriers.Get(barrier); ok {
			bs.mu.Lock()
			if a := bs.byClient[clientID]; a != nil && a.sess == sess {
				a.sess = nil
			}
			bs.mu.Unlock()
		}
	}
}

// handleRegister is the arrival path: a lock-free registry resolve (or a
// per-shard-serialized create on first sight of the name), then all
// state decisions under the barrier's own lock. The directive is also
// sent under it (through the session's own write lock) so every
// connection observes its directive before the epoch's release frame,
// and the release fan-out itself runs after unlock.
func (s *Server) handleRegister(sess *session, f Register) {
	if f.ClientID == "" || f.Barrier == "" || f.Parties == 0 {
		ef := ErrorFrame{Code: ErrCodeBadFrame, Barrier: f.Barrier,
			Msg: "remote: register needs client, barrier and parties"}
		sess.send(ef.Encode())
		return
	}
	s.touch(f.ClientID)
	now := s.opts.Now()

	bs, _, _ := s.barriers.GetOrCreate(f.Barrier, func() *barrierState {
		return &barrierState{
			name:     f.Barrier,
			parties:  f.Parties,
			epoch:    1,
			byClient: make(map[string]*arrival),
			nonces:   make(map[string]nonceRec),
			table:    predict.NewTable(s.opts.Predict),
			history:  make(map[uint64][]byte),
		}
	})
	bs.mu.Lock()
	if bs.parties != f.Parties {
		bs.mu.Unlock()
		ef := ErrorFrame{Code: ErrCodeParties, Barrier: f.Barrier, Msg: fmt.Sprintf(
			"remote: barrier %q has %d parties, register asked for %d",
			f.Barrier, bs.parties, f.Parties)}
		sess.send(ef.Encode())
		return
	}

	// Idempotency: has this wait attempt (client, nonce) been counted
	// already? Bind to the existing arrival, or replay the outcome of the
	// epoch it was counted into — never count it twice.
	if rec, ok := bs.nonces[f.ClientID]; ok && rec.nonce == f.Nonce {
		if rec.epoch == bs.epoch {
			a := bs.byClient[f.ClientID]
			a.sess = sess
			payload := a.directive
			bs.mu.Unlock()
			s.dupRegistrations.Add(1)
			sess.track(f.Barrier, f.ClientID)
			sess.send(payload)
			return
		}
		if payload, ok := bs.history[rec.epoch]; ok {
			bs.mu.Unlock()
			s.replays.Add(1)
			sess.send(payload)
			return
		}
		// Evicted from history: the epoch ended long ago; all we still
		// know is that this attempt cannot complete now.
		rel := Release{Barrier: f.Barrier, Epoch: rec.epoch, Gen: f.Gen,
			Broken: true, Reason: "epoch evicted from replay history"}
		bs.mu.Unlock()
		s.replays.Add(1)
		sess.send(rel.Encode())
		return
	}

	// Fresh arrival at the open epoch.
	a := &arrival{clientID: f.ClientID, sess: sess, arrivedAt: now}
	if len(bs.arrivals) == 0 {
		bs.openedAt = now
		s.openEpochs.Add(1)
		s.armWatchdog(bs)
	}
	bs.arrivals = append(bs.arrivals, a)
	bs.byClient[f.ClientID] = a
	bs.nonces[f.ClientID] = nonceRec{nonce: f.Nonce, epoch: bs.epoch}
	s.registrations.Add(1)

	dir := s.directiveFor(bs, f.ClientID, f.Nonce, now)
	a.directive = dir.Encode()

	var fanout []send
	if uint32(len(bs.arrivals)) == bs.parties {
		fanout = s.releaseLocked(bs, now)
	}
	payload := a.directive
	bs.mu.Unlock()

	sess.track(f.Barrier, f.ClientID)
	sess.send(payload)
	if fanout != nil {
		s.fanOut(fanout)
	}
}

// directiveFor runs the §3.2→Table 3 pipeline for one waiter: predict
// the stall (barrier BIT anchored at the last release, falling back to
// the client's own last stall), widen it under load, and pick the
// deepest tier whose exit cost the stall covers. Caller holds the barrier
// lock.
func (s *Server) directiveFor(bs *barrierState, clientID string, nonce uint64, now time.Time) Directive {
	o := &s.opts
	var stall time.Duration
	havePred := false
	if bitC, ok := bs.table.Predict(0); ok && !bs.lastRelease.IsZero() {
		if d := bs.lastRelease.Add(bitC.Duration()).Sub(now); d > 0 {
			stall, havePred = d, true
		}
	}
	if !havePred {
		if stC, ok := bs.table.Predict(pcClient(clientID)); ok && stC > 0 {
			stall, havePred = stC.Duration(), true
		}
	}

	shed := o.MaxEpochs > 0 && s.openEpochs.Load() > int64(o.MaxEpochs)
	if shed {
		s.shed.Add(1)
		if havePred {
			stall = time.Duration(float64(stall) * o.ShedFactor)
		}
	}

	var tier byte
	switch {
	case !havePred:
		// Warm-up: no prediction yet. The in-process barrier spins here,
		// but telling a remote CPU to spin on an unknown stall wastes the
		// exact energy the service exists to save — yield-poll instead.
		tier = TierYield
	case stall <= o.SpinThreshold:
		tier = TierSpin
	case stall <= o.YieldThreshold:
		tier = TierYield
	case stall <= o.TimedParkThreshold:
		tier = TierTimedPark
	default:
		tier = TierPark
	}
	if shed && tier < TierTimedPark {
		tier = TierTimedPark
	}

	poll := o.MaxPoll / 4
	if havePred {
		poll = stall / 8
	}
	if poll < o.MinPoll {
		poll = o.MinPoll
	}
	if poll > o.MaxPoll {
		poll = o.MaxPoll
	}
	park := stall - o.ParkMargin
	if park < 0 {
		park = 0
	}

	d := Directive{
		Barrier:   bs.name,
		Epoch:     bs.epoch,
		Gen:       bs.gen,
		Nonce:     nonce,
		Tier:      tier,
		PollNanos: int64(poll),
		ParkNanos: int64(park),
	}
	if shed {
		d.Shed = 1
	}
	if havePred {
		d.PredictedStallNanos = int64(stall)
	}
	return d
}

// releaseLocked completes the open epoch: build the release frame once
// (pure protocol state, so it is byte-identical for every waiter and
// every run), feed the predictor — the barrier-interval entry with the
// release-to-release time, each client's entry with its arrival-to-
// release stall — and re-arm the next epoch. Caller holds the barrier
// lock; the returned sends are the fan-out, performed after unlock.
func (s *Server) releaseLocked(bs *barrierState, now time.Time) []send {
	rel := Release{Barrier: bs.name, Epoch: bs.epoch, Gen: bs.gen,
		Arrived: uint32(len(bs.arrivals))}
	payload := rel.Encode()
	s.recordHistory(bs, payload)

	if !bs.lastRelease.IsZero() {
		bs.table.Update(0, sim.FromDuration(now.Sub(bs.lastRelease)))
	}
	for _, a := range bs.arrivals {
		bs.table.Update(pcClient(a.clientID), sim.FromDuration(now.Sub(a.arrivedAt)))
	}
	bs.lastRelease = now

	sends := make([]send, 0, len(bs.arrivals))
	for _, a := range bs.arrivals {
		if a.sess != nil {
			sends = append(sends, send{sess: a.sess, payload: payload})
		}
	}
	s.releases.Add(1)
	s.closeEpochLocked(bs)
	return sends
}

// breakEpochLocked ends the open epoch broken — lease lost, cancelled,
// or reset — waking every connected waiter with the broken release frame
// and immediately re-arming the next epoch under a bumped generation
// (the server-side Reset). The interval spanning the break is discarded,
// exactly like the in-process barrier discards intervals spanning a
// Reset. Caller holds the barrier lock.
func (s *Server) breakEpochLocked(bs *barrierState, reason string) []send {
	if len(bs.arrivals) == 0 {
		return nil
	}
	rel := Release{Barrier: bs.name, Epoch: bs.epoch, Gen: bs.gen,
		Broken: true, Arrived: uint32(len(bs.arrivals)), Reason: reason}
	payload := rel.Encode()
	s.recordHistory(bs, payload)

	sends := make([]send, 0, len(bs.arrivals))
	for _, a := range bs.arrivals {
		if a.sess != nil {
			sends = append(sends, send{sess: a.sess, payload: payload})
		}
	}
	s.breaks.Add(1)
	bs.gen++
	bs.lastRelease = time.Time{}
	s.closeEpochLocked(bs)
	return sends
}

// closeEpochLocked is the shared epoch teardown: advance the epoch
// counter, clear the arrival table, and stop the watchdog.
func (s *Server) closeEpochLocked(bs *barrierState) {
	bs.epoch++
	bs.arrivals = nil
	bs.byClient = make(map[string]*arrival)
	bs.openedAt = time.Time{}
	bs.stalled = false
	if bs.watchdog != nil {
		bs.watchdog.Stop()
		bs.watchdog = nil
	}
	s.openEpochs.Add(-1)
}

func (s *Server) recordHistory(bs *barrierState, payload []byte) {
	bs.history[bs.epoch] = payload
	bs.historyOrder = append(bs.historyOrder, bs.epoch)
	for len(bs.historyOrder) > s.opts.HistoryDepth {
		delete(bs.history, bs.historyOrder[0])
		bs.historyOrder = bs.historyOrder[1:]
	}
}

// fanOut transmits the release frames leaf by leaf: arrivals grouped in
// registration order into leaves of FanoutRadix, one writer goroutine
// per leaf — the sharded leaf-broadcast discipline carried to the wire.
func (s *Server) fanOut(sends []send) {
	radix := s.opts.FanoutRadix
	for start := 0; start < len(sends); start += radix {
		leaf := sends[start:min(start+radix, len(sends))]
		s.wg.Add(1)
		go func(leaf []send) {
			defer s.wg.Done()
			for _, snd := range leaf {
				snd.sess.send(snd.payload)
			}
		}(leaf)
	}
}

// handleCancel breaks the epoch a waiter abandons, mirroring the
// in-process rule that a cancelled WaitContext breaks the generation for
// every peer. The cancel is matched by the attempt nonce — the client
// may never have learned its epoch — and a cancel for an already-ended
// epoch replays that epoch's outcome instead, so duplicated cancel
// frames are as harmless as duplicated registers.
func (s *Server) handleCancel(sess *session, f Cancel) {
	s.touch(f.ClientID)
	bs, _, found := s.barriers.Get(f.Barrier)
	if !found {
		return
	}
	bs.mu.Lock()
	rec, ok := bs.nonces[f.ClientID]
	if !ok || rec.nonce != f.Nonce {
		bs.mu.Unlock()
		return
	}
	if rec.epoch == bs.epoch && bs.byClient[f.ClientID] != nil {
		reason := fmt.Sprintf("cancelled by %q", f.ClientID)
		if f.Reason != "" {
			reason = fmt.Sprintf("cancelled by %q: %s", f.ClientID, f.Reason)
		}
		sends := s.breakEpochLocked(bs, reason)
		bs.mu.Unlock()
		s.cancelBreaks.Add(1)
		s.fanOut(sends)
		return
	}
	payload, ok := bs.history[rec.epoch]
	bs.mu.Unlock()
	if ok {
		s.replays.Add(1)
		sess.send(payload)
	}
}

// armWatchdog schedules the stall check for a newly opened epoch:
// StallMultiple × the predicted barrier interval, floored at StallFloor.
// Caller holds the barrier lock.
func (s *Server) armWatchdog(bs *barrierState) {
	d := s.opts.StallFloor
	var bit time.Duration
	if bitC, ok := bs.table.Predict(0); ok {
		bit = bitC.Duration()
		if m := time.Duration(s.opts.StallMultiple * float64(bit)); m > d {
			d = m
		}
	}
	name, epoch, gen := bs.name, bs.epoch, bs.gen
	// A detached runtime timer on purpose (the same escape hatch as the
	// in-process watchdog): it must fire even when everything else is
	// wedged.
	bs.watchdog = time.AfterFunc(d, func() {
		s.stallCheck(name, epoch, gen, bit)
	})
}

// stallCheck fires when an epoch outlives its watchdog deadline: if it
// is still open it is reported through OnStall and every connected
// waiter gets an advisory frame. It never breaks the epoch.
func (s *Server) stallCheck(name string, epoch, gen uint64, bit time.Duration) {
	bs, _, found := s.barriers.Get(name)
	if !found {
		return
	}
	bs.mu.Lock()
	if bs.epoch != epoch || bs.gen != gen || len(bs.arrivals) == 0 || bs.stalled {
		bs.mu.Unlock()
		return
	}
	bs.stalled = true
	adv := Advisory{Barrier: name, Epoch: epoch, Gen: gen,
		Arrived: uint32(len(bs.arrivals)), Parties: bs.parties}
	payload := adv.Encode()
	sends := make([]send, 0, len(bs.arrivals))
	for _, a := range bs.arrivals {
		if a.sess != nil {
			sends = append(sends, send{sess: a.sess, payload: payload})
		}
	}
	ev := StallEvent{
		Barrier: name, Epoch: epoch, Gen: gen,
		Arrived: len(bs.arrivals), Parties: int(bs.parties),
		Waited: s.opts.Now().Sub(bs.openedAt), PredictedBIT: bit,
	}
	bs.mu.Unlock()
	s.stalls.Add(1)
	if s.opts.OnStall != nil {
		s.opts.OnStall(ev)
	}
	s.fanOut(sends)
}

// leaseLoop is the failure detector: it scans for clients that have gone
// silent past the lease and breaks every epoch holding one of their
// arrivals — a crashed or partitioned client must not wedge its peers
// for longer than one lease interval.
func (s *Server) leaseLoop() {
	defer s.wg.Done()
	period := s.opts.Lease / 8
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.checkLeases()
		}
	}
}

func (s *Server) checkLeases() {
	now := s.opts.Now()
	expired := make(map[string]bool)
	s.clientMu.Lock()
	for id, seen := range s.clients {
		if now.Sub(seen) > s.opts.Lease {
			expired[id] = true
			delete(s.clients, id)
		}
	}
	s.clientMu.Unlock()
	if len(expired) == 0 {
		return
	}
	var sends []send
	s.barriers.Range(func(_ string, _ uint64, bs *barrierState) bool {
		bs.mu.Lock()
		for _, a := range bs.arrivals {
			if expired[a.clientID] {
				s.leaseBreaks.Add(1)
				s.opts.Logf("thriftyd: lease lost: client %q at barrier %q epoch %d",
					a.clientID, bs.name, bs.epoch)
				sends = append(sends, s.breakEpochLocked(bs,
					fmt.Sprintf("lease lost: client %q went silent", a.clientID))...)
				break
			}
		}
		bs.mu.Unlock()
		return true
	})
	s.fanOut(sends)
}

// Snapshot reports every known barrier, sorted by name — the remote
// mirror of thrifty.Barrier.Snapshot, one row per barrier.
func (s *Server) Snapshot() []BarrierStatus {
	var rows []BarrierStatus
	s.barriers.Range(func(_ string, _ uint64, bs *barrierState) bool {
		bs.mu.Lock()
		rows = append(rows, BarrierStatus{
			Name:    bs.name,
			Epoch:   bs.epoch,
			Gen:     bs.gen,
			Arrived: uint32(len(bs.arrivals)),
			Parties: bs.parties,
		})
		bs.mu.Unlock()
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// ReleaseHistory returns copies of the recorded release frames of a
// barrier's ended epochs, in epoch order — the replay buffer, exposed
// for diagnostics and for the chaos suite's byte-identity checks.
func (s *Server) ReleaseHistory(barrier string) [][]byte {
	bs, _, found := s.barriers.Get(barrier)
	if !found {
		return nil
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	out := make([][]byte, 0, len(bs.historyOrder))
	for _, epoch := range bs.historyOrder {
		p := bs.history[epoch]
		out = append(out, append([]byte(nil), p...))
	}
	return out
}

// Stats returns a snapshot of server activity counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Registrations:    s.registrations.Load(),
		DupRegistrations: s.dupRegistrations.Load(),
		Replays:          s.replays.Load(),
		Releases:         s.releases.Load(),
		Breaks:           s.breaks.Load(),
		LeaseBreaks:      s.leaseBreaks.Load(),
		CancelBreaks:     s.cancelBreaks.Load(),
		Stalls:           s.stalls.Load(),
		Shed:             s.shed.Load(),
		BadFrames:        s.badFrames.Load(),
		OpenEpochs:       s.openEpochs.Load(),
	}
	st.Barriers = s.barriers.Len()
	return st
}
