package predict

import (
	"testing"
	"testing/quick"
	"unsafe"

	"thriftybarrier/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Policy: MovingAverage, Window: 0},
		{Policy: EWMA, Alpha: 0},
		{Policy: EWMA, Alpha: 1.5},
		{Policy: Policy(99)},
		{Policy: LastValue, UnderpredictFactor: 0.5},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestColdMissThenLastValue(t *testing.T) {
	tab := NewTable(DefaultConfig())
	if _, ok := tab.Predict(0x100); ok {
		t.Fatal("cold table predicted")
	}
	tab.Update(0x100, 5000)
	got, ok := tab.Predict(0x100)
	if !ok || got != 5000 {
		t.Fatalf("Predict = %v,%v; want 5000,true", got, ok)
	}
	tab.Update(0x100, 7000)
	if got, _ := tab.Predict(0x100); got != 7000 {
		t.Fatalf("last-value after second update = %v, want 7000", got)
	}
}

func TestEntriesAreIndependentPerPC(t *testing.T) {
	tab := NewTable(DefaultConfig())
	tab.Update(0x100, 1000)
	tab.Update(0x200, 2000)
	if v, _ := tab.Predict(0x100); v != 1000 {
		t.Errorf("PC 0x100 = %v, want 1000", v)
	}
	if v, _ := tab.Predict(0x200); v != 2000 {
		t.Errorf("PC 0x200 = %v, want 2000", v)
	}
	if tab.Entries() != 2 {
		t.Errorf("entries = %d, want 2", tab.Entries())
	}
}

func TestMovingAverage(t *testing.T) {
	tab := NewTable(Config{Policy: MovingAverage, Window: 3})
	tab.Update(1, 100)
	if v, _ := tab.Predict(1); v != 100 {
		t.Fatalf("avg of one = %v", v)
	}
	tab.Update(1, 200)
	tab.Update(1, 300)
	if v, _ := tab.Predict(1); v != 200 {
		t.Fatalf("avg of 100,200,300 = %v, want 200", v)
	}
	tab.Update(1, 600) // window now 200,300,600
	if v, _ := tab.Predict(1); v != 366 {
		t.Fatalf("rolling avg = %v, want 366", v)
	}
}

func TestEWMA(t *testing.T) {
	tab := NewTable(Config{Policy: EWMA, Alpha: 0.5})
	tab.Update(1, 1000)
	tab.Update(1, 2000)
	if v, _ := tab.Predict(1); v != 1500 {
		t.Fatalf("ewma = %v, want 1500", v)
	}
}

func TestUnderpredictionFilter(t *testing.T) {
	tab := NewTable(Config{Policy: LastValue, UnderpredictFactor: 3})
	tab.Update(1, 1000)
	// A context-switch-inflated interval (> 3x) must be rejected.
	if tab.Update(1, 10000) {
		t.Fatal("inflated interval was applied")
	}
	if v, _ := tab.Predict(1); v != 1000 {
		t.Fatalf("prediction after filtered update = %v, want 1000", v)
	}
	// A plausible increase passes.
	if !tab.Update(1, 2500) {
		t.Fatal("plausible interval was rejected")
	}
	_, _, updates, skipped, _ := tab.Stats()
	if updates != 2 || skipped != 1 {
		t.Fatalf("updates/skipped = %d/%d, want 2/1", updates, skipped)
	}
	// First observation is never filtered.
	tab2 := NewTable(Config{Policy: LastValue, UnderpredictFactor: 3})
	if !tab2.Update(9, 1_000_000) {
		t.Fatal("first observation was filtered")
	}
}

func TestDisableBits(t *testing.T) {
	tab := NewTable(DefaultConfig())
	tab.Update(1, 100)
	if !tab.Enabled(1, 7) {
		t.Fatal("fresh entry disabled")
	}
	tab.Disable(1, 7)
	if tab.Enabled(1, 7) {
		t.Fatal("Disable had no effect")
	}
	if !tab.Enabled(1, 8) {
		t.Fatal("Disable leaked to another thread")
	}
	if !tab.Enabled(2, 7) {
		t.Fatal("Disable leaked to another barrier")
	}
	// Prediction itself is still served (other threads use it).
	if _, ok := tab.Predict(1); !ok {
		t.Fatal("prediction vanished after disable")
	}
	// Idempotent.
	tab.Disable(1, 7)
	_, _, _, _, disables := tab.Stats()
	if disables != 1 {
		t.Fatalf("disables = %d, want 1", disables)
	}
}

func TestDisableOnUnknownPCIsEnabledByDefault(t *testing.T) {
	tab := NewTable(DefaultConfig())
	if !tab.Enabled(0xDEAD, 3) {
		t.Fatal("unknown PC not enabled by default")
	}
}

func TestThreadRangePanics(t *testing.T) {
	tab := NewTable(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("negative thread did not panic")
		}
	}()
	tab.Disable(1, -1)
}

// TestDisableBeyondWord64 pins the bitset growth: the cut-off must work for
// thread indices past the first 64-bit word (the former hard limit), which
// the 256/1024-node scaling runs exercise for real.
func TestDisableBeyondWord64(t *testing.T) {
	tab := NewTable(DefaultConfig())
	for _, th := range []int{63, 64, 100, 1023} {
		if !tab.Enabled(1, th) {
			t.Fatalf("thread %d disabled before any cut-off", th)
		}
		tab.Disable(1, th)
		if tab.Enabled(1, th) {
			t.Fatalf("Disable(%d) had no effect", th)
		}
	}
	if !tab.Enabled(1, 65) {
		t.Fatal("Disable leaked to a neighboring thread across the word boundary")
	}
	if !tab.Enabled(1, 2048) {
		t.Fatal("thread beyond the grown bitset should default to enabled")
	}
	_, _, _, _, disables := tab.Stats()
	if disables != 4 {
		t.Fatalf("disables = %d, want 4", disables)
	}
}

func TestNegativeIntervalPanics(t *testing.T) {
	tab := NewTable(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("negative interval did not panic")
		}
	}()
	tab.Update(1, -5)
}

func TestBSTTablePerThread(t *testing.T) {
	tab := NewBSTTable()
	tab.Update(0x100, 0, 111)
	tab.Update(0x100, 1, 222)
	if v, ok := tab.Predict(0x100, 0); !ok || v != 111 {
		t.Fatalf("thread 0 = %v,%v", v, ok)
	}
	if v, ok := tab.Predict(0x100, 1); !ok || v != 222 {
		t.Fatalf("thread 1 = %v,%v", v, ok)
	}
	if _, ok := tab.Predict(0x100, 2); ok {
		t.Fatal("unseen thread predicted")
	}
}

// Property: for last-value, Predict always returns the most recent applied
// Update, regardless of the sequence.
func TestLastValueProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		tab := NewTable(DefaultConfig())
		var last sim.Cycles = -1
		for _, v := range vals {
			tab.Update(42, sim.Cycles(v))
			last = sim.Cycles(v)
		}
		got, ok := tab.Predict(42)
		if last < 0 {
			return !ok
		}
		return ok && got == last
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: moving average prediction is always within [min, max] of the
// observations.
func TestMovingAverageBoundsProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		tab := NewTable(Config{Policy: MovingAverage, Window: 4})
		lo, hi := sim.MaxCycles, sim.Cycles(0)
		for _, v := range vals {
			c := sim.Cycles(v)
			tab.Update(7, c)
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		got, ok := tab.Predict(7)
		return ok && got >= lo-1 && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if LastValue.String() != "last-value" || MovingAverage.String() != "moving-average" || EWMA.String() != "ewma" {
		t.Error("Policy.String mismatch")
	}
}

// The entry struct must stay a whole number of cache lines (the heap then
// places it in an aligned size class), so two table rows never share a
// line: a hot barrier's Update must not invalidate an unrelated barrier's
// Predict. Growing the struct is fine — shrinking it below the next
// 64-byte boundary or breaking the multiple silently reintroduces false
// sharing between rows.
func TestEntryCacheLinePadding(t *testing.T) {
	if sz := unsafe.Sizeof(entry{}); sz%64 != 0 {
		t.Fatalf("entry is %d bytes, want a multiple of the 64-byte cache line", sz)
	}
}
