// Package predict implements the barrier-interval-time predictors of §3.2:
// a PC-indexed table whose entries carry the prediction state of one static
// barrier plus the per-thread disable bits set by the overprediction
// cut-off (§3.3.3) and the underprediction update filter that protects the
// table from context-switch-inflated intervals (§3.4.2).
//
// The paper's production design is last-value prediction; moving-average
// and exponentially-weighted variants are provided for the predictor
// ablation, as is a per-thread direct-BST table (the strawman the paper
// argues against).
package predict

import (
	"fmt"

	"thriftybarrier/internal/sim"
)

// Policy selects how an entry turns its history into a prediction.
type Policy int

const (
	// LastValue predicts the previous interval verbatim (the paper's
	// choice: "simple last-value prediction of PC-indexed barrier interval
	// time was very accurate").
	LastValue Policy = iota
	// MovingAverage predicts the mean of the last K intervals.
	MovingAverage
	// EWMA predicts an exponentially weighted moving average.
	EWMA
)

func (p Policy) String() string {
	switch p {
	case LastValue:
		return "last-value"
	case MovingAverage:
		return "moving-average"
	case EWMA:
		return "ewma"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes a Table.
type Config struct {
	Policy Policy
	// Window is the moving-average depth (MovingAverage only).
	Window int
	// Alpha is the EWMA weight of the newest observation (EWMA only).
	Alpha float64
	// UnderpredictFactor, when > 1, skips the table update if the observed
	// interval exceeds the current prediction by more than this factor —
	// the §3.4.2 guard against context-switch/IO-inflated intervals. The
	// next prediction then reuses the older, shorter interval, exactly as
	// the paper prescribes. Zero disables the filter.
	UnderpredictFactor float64
	// Confidence enables a 2-bit saturating confidence estimator per entry
	// — the "more sophisticated predictors and/or confidence estimators"
	// the paper leaves as future work (§3.3.3). Predictions are served
	// only while confidence is high; unlike the cut-off, an entry that
	// stabilizes again re-earns its confidence instead of staying disabled.
	Confidence bool
	// ConfidenceTolerance is the relative error |actual-predicted|/predicted
	// under which an update counts as confirming (default 0.25).
	ConfidenceTolerance float64
}

// DefaultConfig is the paper's production predictor: last-value, no update
// filter (dedicated machine).
func DefaultConfig() Config { return Config{Policy: LastValue} }

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	switch c.Policy {
	case LastValue:
	case MovingAverage:
		if c.Window <= 0 {
			return fmt.Errorf("predict: moving average needs positive window, got %d", c.Window)
		}
	case EWMA:
		if c.Alpha <= 0 || c.Alpha > 1 {
			return fmt.Errorf("predict: EWMA alpha %v outside (0,1]", c.Alpha)
		}
	default:
		return fmt.Errorf("predict: unknown policy %d", int(c.Policy))
	}
	if c.UnderpredictFactor != 0 && c.UnderpredictFactor <= 1 {
		return fmt.Errorf("predict: underpredict factor %v must be > 1 (or 0 to disable)", c.UnderpredictFactor)
	}
	if c.ConfidenceTolerance < 0 {
		return fmt.Errorf("predict: negative confidence tolerance %v", c.ConfidenceTolerance)
	}
	return nil
}

// confidence thresholds for the 2-bit estimator.
const (
	confMax   = 3
	confServe = 2
)

// entry is the prediction state of one static barrier, padded up to the
// 128-byte allocation size class (a whole number of cache lines). The
// paper's table is indexed by PC precisely because distinct static
// barriers update independently; without the padding, two entries landing
// in the heap's 96-byte size class can straddle one cache line, so a hot
// barrier's Update invalidates an unrelated barrier's Predict — false
// sharing between table rows. The sizeof test in predict_test.go pins the
// multiple-of-64 invariant.
type entry struct {
	valid    bool
	last     sim.Cycles
	window   []sim.Cycles // MovingAverage ring
	widx     int
	wcount   int
	ewma     float64
	conf     uint8
	disabled []uint64 // per-thread disable bitset, grown on demand
	_        [32]byte
}

// Table is a PC-indexed predictor table.
type Table struct {
	cfg     Config
	entries map[uint64]*entry

	// Stats.
	hits, misses, updates, skippedUpdates, disables uint64
}

// NewTable builds a predictor table, panicking on invalid configuration.
func NewTable(cfg Config) *Table {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Table{cfg: cfg, entries: make(map[uint64]*entry)}
}

// Config returns the table's configuration.
func (t *Table) Config() Config { return t.cfg }

// raw computes the entry's current prediction without touching statistics
// or the confidence gate.
func (t *Table) raw(e *entry) sim.Cycles {
	switch t.cfg.Policy {
	case LastValue:
		return e.last
	case MovingAverage:
		n := e.wcount
		if n > len(e.window) {
			n = len(e.window)
		}
		var sum sim.Cycles
		for i := 0; i < n; i++ {
			sum += e.window[i]
		}
		return sum / sim.Cycles(n)
	case EWMA:
		return sim.Cycles(e.ewma)
	}
	return 0
}

func (t *Table) entryFor(pc uint64) *entry {
	e := t.entries[pc]
	if e == nil {
		e = &entry{}
		if t.cfg.Policy == MovingAverage {
			e.window = make([]sim.Cycles, t.cfg.Window)
		}
		t.entries[pc] = e
	}
	return e
}

// Predict returns the predicted barrier interval time for the static
// barrier at pc. ok is false when no history exists yet — the caller falls
// back to conventional spinning (the first instance of every barrier is
// handled as warm-up, §3.2.1).
func (t *Table) Predict(pc uint64) (bit sim.Cycles, ok bool) {
	e := t.entries[pc]
	if e == nil || !e.valid {
		t.misses++
		return 0, false
	}
	if t.cfg.Confidence && e.conf < confServe {
		t.misses++
		return 0, false
	}
	t.hits++
	switch t.cfg.Policy {
	case LastValue:
		return e.last, true
	case MovingAverage:
		n := e.wcount
		if n > len(e.window) {
			n = len(e.window)
		}
		var sum sim.Cycles
		for i := 0; i < n; i++ {
			sum += e.window[i]
		}
		return sum / sim.Cycles(n), true
	case EWMA:
		return sim.Cycles(e.ewma), true
	}
	return 0, false
}

// Update records the measured interval for pc. The underprediction filter,
// when configured, skips updates for inordinately inflated intervals so
// that one preempted barrier instance does not poison future predictions.
// It reports whether the update was applied.
func (t *Table) Update(pc uint64, actual sim.Cycles) bool {
	if actual < 0 {
		panic(fmt.Sprintf("predict: negative interval %d", actual))
	}
	e := t.entryFor(pc)
	if t.cfg.UnderpredictFactor > 0 && e.valid {
		if pred := t.raw(e); float64(actual) > t.cfg.UnderpredictFactor*float64(pred) {
			t.skippedUpdates++
			return false
		}
	}
	if t.cfg.Confidence && e.valid {
		pred := t.raw(e)
		err := actual - pred
		if err < 0 {
			err = -err
		}
		tol := t.cfg.ConfidenceTolerance
		if tol == 0 {
			tol = 0.25
		}
		if float64(err) <= tol*float64(pred) {
			if e.conf < confMax {
				e.conf++
			}
		} else if e.conf > 0 {
			e.conf--
		}
	}
	t.updates++
	e.valid = true
	e.last = actual
	switch t.cfg.Policy {
	case MovingAverage:
		e.window[e.widx] = actual
		e.widx = (e.widx + 1) % len(e.window)
		e.wcount++
	case EWMA:
		if e.wcount == 0 {
			e.ewma = float64(actual)
		} else {
			e.ewma = t.cfg.Alpha*float64(actual) + (1-t.cfg.Alpha)*e.ewma
		}
		e.wcount++
	}
	return true
}

// Disable sets the overprediction cut-off bit for thread on pc's entry:
// future Enabled checks for that (thread, barrier) pair report false, and
// the thread falls back to spinning there (§3.3.3). The bitset grows on
// demand, so thread counts are unbounded (the 1024-node scaling study needs
// well past the former 64-bit word).
func (t *Table) Disable(pc uint64, thread int) {
	if thread < 0 {
		panic(fmt.Sprintf("predict: negative thread %d", thread))
	}
	e := t.entryFor(pc)
	w, bit := thread/64, uint64(1)<<uint(thread%64)
	for len(e.disabled) <= w {
		e.disabled = append(e.disabled, 0)
	}
	if e.disabled[w]&bit == 0 {
		e.disabled[w] |= bit
		t.disables++
	}
}

// Enabled reports whether prediction is still allowed for thread at pc.
func (t *Table) Enabled(pc uint64, thread int) bool {
	if thread < 0 {
		panic(fmt.Sprintf("predict: negative thread %d", thread))
	}
	e := t.entries[pc]
	if e == nil {
		return true
	}
	w := thread / 64
	if w >= len(e.disabled) {
		return true
	}
	return e.disabled[w]&(uint64(1)<<uint(thread%64)) == 0
}

// Stats reports table activity: prediction hits and cold misses, applied
// and filter-skipped updates, and cut-off disables.
func (t *Table) Stats() (hits, misses, updates, skipped, disables uint64) {
	return t.hits, t.misses, t.updates, t.skippedUpdates, t.disables
}

// Entries reports the number of distinct static barriers seen.
func (t *Table) Entries() int { return len(t.entries) }

// BSTTable is the strawman direct barrier-stall-time predictor used by the
// predictor ablation: it is keyed by (pc, thread), because stall time is
// thread-dependent (§3.2), which is exactly why the paper rejects it in
// favor of the thread-independent BIT.
type BSTTable struct {
	inner *Table
}

// NewBSTTable builds a per-thread last-value BST predictor.
func NewBSTTable() *BSTTable {
	return &BSTTable{inner: NewTable(Config{Policy: LastValue})}
}

func bstKey(pc uint64, thread int) uint64 {
	// Thread folded into low bits; PCs are word-aligned so no collisions.
	return pc*64 + uint64(thread)
}

// Predict returns the predicted stall for (pc, thread).
func (t *BSTTable) Predict(pc uint64, thread int) (sim.Cycles, bool) {
	return t.inner.Predict(bstKey(pc, thread))
}

// Update records the observed stall for (pc, thread).
func (t *BSTTable) Update(pc uint64, thread int, actual sim.Cycles) {
	t.inner.Update(bstKey(pc, thread), actual)
}
