package predict

import "testing"

func confTable() *Table {
	return NewTable(Config{Policy: LastValue, Confidence: true, ConfidenceTolerance: 0.25})
}

func TestConfidenceGatesUntilStable(t *testing.T) {
	tab := confTable()
	tab.Update(1, 1000)
	if _, ok := tab.Predict(1); ok {
		t.Fatal("prediction served with zero confidence")
	}
	tab.Update(1, 1050) // within 25%: conf 1
	if _, ok := tab.Predict(1); ok {
		t.Fatal("prediction served with confidence 1")
	}
	tab.Update(1, 1010) // conf 2
	if v, ok := tab.Predict(1); !ok || v != 1010 {
		t.Fatalf("stable entry not served: %v,%v", v, ok)
	}
}

func TestConfidenceDropsOnSwing(t *testing.T) {
	tab := confTable()
	for i := 0; i < 4; i++ {
		tab.Update(1, 1000)
	}
	if _, ok := tab.Predict(1); !ok {
		t.Fatal("stable entry not served")
	}
	// Two wild swings drop confidence below the serve threshold.
	tab.Update(1, 100)
	tab.Update(1, 5000)
	if _, ok := tab.Predict(1); ok {
		t.Fatal("swinging entry still served")
	}
	// Stability re-earns confidence (unlike the permanent cut-off bit).
	tab.Update(1, 5000)
	tab.Update(1, 5000)
	tab.Update(1, 5000)
	if v, ok := tab.Predict(1); !ok || v != 5000 {
		t.Fatalf("re-stabilized entry not served: %v,%v", v, ok)
	}
}

func TestConfidenceSaturates(t *testing.T) {
	tab := confTable()
	for i := 0; i < 20; i++ {
		tab.Update(1, 1000)
	}
	// Saturation at confMax: a single miss must not immediately gate.
	tab.Update(1, 9000)
	if _, ok := tab.Predict(1); !ok {
		t.Fatal("single swing gated a long-stable entry")
	}
}

func TestConfidenceDisabledByDefault(t *testing.T) {
	tab := NewTable(DefaultConfig())
	tab.Update(1, 1000)
	if _, ok := tab.Predict(1); !ok {
		t.Fatal("default table gated by confidence")
	}
}

func TestConfidenceToleranceValidation(t *testing.T) {
	if (Config{Policy: LastValue, ConfidenceTolerance: -1}).Validate() == nil {
		t.Error("negative tolerance accepted")
	}
}
