// Package stats renders the experiment results as aligned text tables and
// CSV — the formats the harness uses to regenerate every table and figure
// of the paper as terminal/report output.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table with an optional title.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowStrings appends a pre-formatted row.
func (t *Table) AddRowStrings(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			sb.WriteString(cell)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (quoting cells that
// contain commas or quotes).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// JSON renders the table as a machine-readable object with its title,
// column headers and string rows — the generic twin for tables whose rows
// have no richer struct form.
func (t *Table) JSON() ([]byte, error) {
	obj := struct {
		Title   string     `json:"title,omitempty"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{Title: t.Title, Columns: t.Columns, Rows: t.Rows}
	if obj.Rows == nil {
		obj.Rows = [][]string{}
	}
	b, err := json.MarshalIndent(obj, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// Bar renders a horizontal ASCII bar of the given fraction with the given
// width — used for the stacked-bar figures in terminal output.
func Bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// StackedBar renders segments (fractions of the bar's full scale) using one
// rune per segment kind, e.g. Compute/Spin/Transition/Sleep.
func StackedBar(fracs []float64, runes []rune, width int) string {
	var sb strings.Builder
	used := 0
	for i, f := range fracs {
		if f < 0 {
			f = 0
		}
		n := int(f*float64(width) + 0.5)
		if used+n > width {
			n = width - used
		}
		r := '#'
		if i < len(runes) {
			r = runes[i]
		}
		sb.WriteString(strings.Repeat(string(r), n))
		used += n
	}
	if used < width {
		sb.WriteString(strings.Repeat(" ", width-used))
	}
	return sb.String()
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// CoefVar returns the coefficient of variation (stddev/mean) of xs — the
// BIT-stability metric used in the Figure 3 analysis.
func CoefVar(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / m
}
