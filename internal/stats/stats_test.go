package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "A", "Bee", "C")
	tab.AddRow("x", 1.5, 42)
	tab.AddRowStrings("longer-cell", "y", "z")
	out := tab.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "=====") {
		t.Error("missing title/underline")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d, want 6", len(lines))
	}
	// lines: title, underline, header, separator, row1, row2.
	if !strings.HasPrefix(lines[4], "x ") {
		t.Errorf("row misaligned: %q", lines[4])
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRowStrings("with,comma", `with"quote`)
	csv := tab.CSV()
	want := "a,b\n\"with,comma\",\"with\"\"quote\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestPct(t *testing.T) {
	if Pct(0.1234) != "12.34%" {
		t.Errorf("Pct = %q", Pct(0.1234))
	}
}

func TestBar(t *testing.T) {
	if b := Bar(0.5, 10); b != "#####....." {
		t.Errorf("Bar(0.5,10) = %q", b)
	}
	if b := Bar(-1, 4); b != "...." {
		t.Errorf("Bar(-1) = %q", b)
	}
	if b := Bar(2, 4); b != "####" {
		t.Errorf("Bar(2) = %q", b)
	}
}

func TestStackedBar(t *testing.T) {
	b := StackedBar([]float64{0.25, 0.25}, []rune{'C', 'S'}, 8)
	if b != "CCSS    " {
		t.Errorf("StackedBar = %q", b)
	}
	// Overflow is clipped to the width.
	b = StackedBar([]float64{0.9, 0.9}, []rune{'C', 'S'}, 10)
	if len(b) != 10 {
		t.Errorf("overflowed bar length %d", len(b))
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	lo, hi := MinMax(xs)
	if lo != 1 || hi != 4 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if lo, hi := MinMax(nil); lo != 0 || hi != 0 {
		t.Error("MinMax(nil) != 0,0")
	}
}

func TestCoefVar(t *testing.T) {
	if CoefVar([]float64{5, 5, 5, 5}) != 0 {
		t.Error("constant series CoV != 0")
	}
	cv := CoefVar([]float64{1, 3})
	if math.Abs(cv-0.5) > 1e-12 {
		t.Errorf("CoefVar(1,3) = %v, want 0.5", cv)
	}
	if CoefVar([]float64{1}) != 0 {
		t.Error("single-element CoV != 0")
	}
	if CoefVar([]float64{0, 0}) != 0 {
		t.Error("zero-mean CoV != 0")
	}
}

func TestTableJSON(t *testing.T) {
	tab := NewTable("T", "a", "b")
	tab.AddRowStrings("1", "x,y")
	b, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("twin is not valid JSON: %v\n%s", err, b)
	}
	if got.Title != "T" || len(got.Columns) != 2 || len(got.Rows) != 1 || got.Rows[0][1] != "x,y" {
		t.Errorf("round-trip mismatch: %+v", got)
	}
	if b[len(b)-1] != '\n' {
		t.Error("twin must end with a newline")
	}

	// An empty table still yields rows: [] (not null) for consumers.
	b, err = NewTable("", "only").JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"rows": []`) {
		t.Errorf("empty table rows should marshal as [], got:\n%s", b)
	}
}
