package wheel

import (
	"testing"
	"time"
)

// armOnShard arms an entry due at the given tick and retries (cancelling
// misses) until the round-robin spread lands it on shard si. The manual
// wheel's clock is frozen at tick 0, so w.at(tick) selects the due tick
// deterministically; only the shard pick is rotating.
func armOnShard(t *testing.T, w *Wheel, si int, tick uint64, ch chan struct{}) Handle {
	t.Helper()
	for i := 0; i < 64; i++ {
		h := w.Arm(w.at(tick), ch)
		if h == (Handle{}) {
			t.Fatalf("arm at tick %d fired immediately", tick)
		}
		if hs, _, _ := h.unpack(); hs == si {
			return h
		}
		if !w.Cancel(h) {
			t.Fatalf("cancel of fresh entry at tick %d failed", tick)
		}
	}
	t.Fatalf("round-robin never landed on shard %d", si)
	return Handle{}
}

// TestStealRepublishesNextDeadline is the minArm-after-steal regression
// test (tick-exact, alongside the horizon-boundary suite): after a
// sibling steals an overdue shard's service pass, the victim's next
// service deadline must be re-published through its minArm mailbox and a
// kick — CAS-min, never a swap — so the victim's ticker, whose timer
// still targets the pre-steal plan, retargets instead of sleeping past
// it, and a concurrently kicked earlier deadline survives the republish.
func TestStealRepublishesNextDeadline(t *testing.T) {
	w := testWheel(t, Config{Slots0: 8, Slots1: 4, Shards: 2, StealLag: 2})
	v := &w.shards[1]

	ch1 := make(chan struct{}, 1)
	ch2 := make(chan struct{}, 1)
	armOnShard(t, w, 1, 4, ch1)  // overdue once now reaches 6
	armOnShard(t, w, 1, 20, ch2) // level-1 resident: next service at boundary 8

	// The victim's ticker published a plan for tick 4 and went to sleep.
	// Pre-load its mailbox with a kicked-but-unabsorbed deadline of 5 —
	// lower than anything the steal will republish — to pin that the
	// steal lowers the mailbox with CAS-min rather than swapping it away.
	v.nextWake.Store(4)
	v.minArm.Store(5)
	for len(v.kick) > 0 { // drain arm-time kicks; the steal must re-kick
		<-v.kick
	}

	var sc []firing
	if w.stealFrom(1, 5, &sc) {
		t.Fatalf("stole at now=5: plan 4 is only 1 tick overdue, lag is 2")
	}
	if !w.stealFrom(1, 6, &sc) {
		t.Fatalf("no steal at now=6 with plan 4 two ticks overdue")
	}
	if !drained(ch1) {
		t.Fatalf("stolen pass did not deliver the overdue entry")
	}
	if drained(ch2) {
		t.Fatalf("stolen pass fired the future entry (due 20) early")
	}
	// The entry due at 20 sits in level 1, so the shard's next service
	// tick is the revolution boundary at 8 (where the cascade runs).
	if got := v.nextWake.Load(); got != 8 {
		t.Fatalf("post-steal published plan = %d, want 8", got)
	}
	// CAS-min: the pre-existing mailbox value 5 beats the post-steal
	// service deadline 8 and must survive the republish. (A swap here is
	// exactly the skipped-deadline bug: it would consume a concurrent
	// arm's kicked deadline that the dedup channel no longer covers.)
	if got := v.minArm.Load(); got != 5 {
		t.Fatalf("post-steal mailbox = %d, want 5 (CAS-min must not overwrite)", got)
	}
	if len(v.kick) != 1 {
		t.Fatalf("steal did not kick the victim ticker")
	}
	if got := w.Stats().Steals; got != 1 {
		t.Fatalf("Steals = %d, want 1", got)
	}

	// Tick-exactness of the surviving deadline: the victim catches up to
	// tick 19 (cascading 20 down at boundary 16) without firing it, then
	// fires it exactly at 20.
	if nd := w.serviceShard(v, 19, &sc); nd != 20 {
		t.Fatalf("victim next-due after catch-up = %d, want 20", nd)
	}
	if drained(ch2) {
		t.Fatalf("entry due at 20 fired at 19")
	}
	w.serviceShard(v, 20, &sc)
	if !drained(ch2) {
		t.Fatalf("entry due at 20 did not fire at 20 after the steal")
	}
}

// TestStealSeesUnabsorbedMailbox pins the eligibility half of the fix:
// a victim parked idle (published plan idleWake, no timer) whose only
// deadline sits in the kicked-but-unabsorbed minArm mailbox must still
// be stealable — the published plan alone must not hide overdue work.
func TestStealSeesUnabsorbedMailbox(t *testing.T) {
	w := testWheel(t, Config{Slots0: 8, Slots1: 4, Shards: 2, StealLag: 2})
	v := &w.shards[1]

	// The ticker planned "idle", then an arm landed: the plan stays
	// idleWake, the deadline travels only through the mailbox (plus a
	// queued kick the starved victim never processed).
	v.nextWake.Store(idleWake)
	ch := make(chan struct{}, 1)
	armOnShard(t, w, 1, 3, ch)
	if got := v.minArm.Load(); got != 3 {
		t.Fatalf("arm against an idle plan left mailbox = %d, want 3", got)
	}

	var sc []firing
	if !w.stealFrom(1, 6, &sc) {
		t.Fatalf("no steal of idle-planned shard with mailbox deadline 3 at now=6")
	}
	if !drained(ch) {
		t.Fatalf("stolen pass did not deliver the mailbox-only entry")
	}
	if got := v.nextWake.Load(); got != idleWake {
		t.Fatalf("post-steal plan on empty shard = %d, want idleWake", got)
	}
	// The stale mailbox value stays (only the owner ticker may swap it);
	// it is self-healing — the queued kick makes the victim run one
	// cheap early pass and fold it — and deliberately so: clearing it
	// here could race a concurrent arm into an unbounded sleep.
	if got := v.minArm.Load(); got != 3 {
		t.Fatalf("steal swapped the victim mailbox (got %d, want stale 3)", got)
	}
}

// TestStealIgnoresLiveRecompute: a shard whose plan reads 0 is being
// recomputed right now (by its own ticker or another thief) — stealing
// it would double-claim, so the sweep must skip it.
func TestStealIgnoresLiveRecompute(t *testing.T) {
	w := testWheel(t, Config{Slots0: 8, Slots1: 4, Shards: 2, StealLag: 2})
	ch := make(chan struct{}, 1)
	armOnShard(t, w, 1, 2, ch)
	w.shards[1].nextWake.Store(0)
	var sc []firing
	if w.stealFrom(1, 10, &sc) {
		t.Fatalf("stole a shard mid-recompute (plan 0)")
	}
	if drained(ch) {
		t.Fatalf("skipped steal still fired the entry")
	}
}

// TestTickerStealEndToEnd drives live tickers with a multi-shard wheel
// under churn — the end-to-end (goroutine) counterpart of the
// deterministic steal tests above. Every armed wake-up must be delivered
// even when shard tickers contend for the scheduler.
func TestTickerStealEndToEnd(t *testing.T) {
	w := New(Config{Tick: time.Millisecond, Shards: 2, StealLag: 1})
	defer w.Stop()
	done := make(chan struct{}, 64)
	const n = 32
	for i := 0; i < n; i++ {
		w.Arm(time.Duration(1+i%4)*time.Millisecond, done)
	}
	timeout := time.After(10 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case <-timeout:
			t.Fatalf("only %d/%d wake-ups delivered", i, n)
		}
	}
	if got := w.Stats().Armed; got != 0 {
		t.Fatalf("%d entries still armed after all fires", got)
	}
}
