package wheel

import (
	"testing"
)

// TestHorizonBoundaryCascade pins the overflow-bucket rescue at the exact
// revolution and horizon boundaries, tick by tick. With Slots0=8, Slots1=4
// a revolution is 8 ticks and the two-level horizon is 32; the boundary
// arithmetic in advance() (overflow re-sort first, then the level-1
// cascade, then slot 0) is exactly what this schedule exercises:
//
//   - due 8: fires on a revolution boundary (slot 0 of the next revolution)
//   - due 31: level-1 at arm, cascades at the tick-24 boundary, fires on
//     the last tick before the horizon
//   - due 32: overflow at arm (rev = 4 >= Slots1); the tick-32 horizon
//     re-sort must land it in slot 0 and fire it the same tick — the
//     ordering bug this test exists to catch is firing slot 0 before the
//     overflow rescue, which would delay it a full revolution
//   - due 33: overflow at arm, re-sorted at 32 into level 0, fires at 33
//   - due 40: the full bounce — overflow at arm, level-1 after the tick-32
//     re-sort, level-0 after the tick-40 cascade, fires at 40
//   - due 64: survives one horizon re-sort still in overflow (rev = 4 at
//     ref 32), lands in slot 0 at the second, fires at 64
//
// The wheel must fire each entry exactly at its due tick: never early
// (the Arm contract), and never a revolution late (a mis-ordered rescue).
func TestHorizonBoundaryCascade(t *testing.T) {
	w := testWheel(t, Config{Slots0: 8, Slots1: 4, Shards: 1})

	dues := []uint64{8, 31, 32, 33, 40, 64}
	byCh := map[chan<- struct{}]uint64{}
	for _, due := range dues {
		ch := make(chan struct{}, 1)
		if h := w.Arm(w.at(due), ch); h == (Handle{}) {
			t.Fatalf("due %d: future arm fired immediately", due)
		}
		byCh[ch] = due
	}

	firedAt := map[uint64]uint64{} // due tick -> actual fire tick
	for now := uint64(1); now <= 70; now++ {
		fires, _ := w.advanceTo(now)
		for _, f := range fires {
			due, ok := byCh[f.ch]
			if !ok {
				t.Fatalf("tick %d: fire on unknown channel", now)
			}
			if prev, dup := firedAt[due]; dup {
				t.Fatalf("tick %d: entry due %d fired twice (first at %d)", now, due, prev)
			}
			firedAt[due] = now
		}
	}

	for _, due := range dues {
		got, ok := firedAt[due]
		if !ok {
			t.Fatalf("entry due %d never fired (lost in a cascade)", due)
		}
		if got != due {
			t.Fatalf("entry due %d fired at tick %d", due, got)
		}
	}
	if got := w.Stats().Armed; got != 0 {
		t.Fatalf("%d entries still armed after the sweep", got)
	}
}

// TestHorizonBoundarySingleStep repeats the horizon rescue with one giant
// catch-up advance instead of tick-by-tick stepping: a ticker that slept
// through several boundaries must replay them in order, still firing every
// entry at its recorded due tick.
func TestHorizonBoundarySingleStep(t *testing.T) {
	w := testWheel(t, Config{Slots0: 8, Slots1: 4, Shards: 1})

	dues := []uint64{8, 31, 32, 33, 40, 64}
	byCh := map[chan<- struct{}]uint64{}
	for _, due := range dues {
		ch := make(chan struct{}, 1)
		w.Arm(w.at(due), ch)
		byCh[ch] = due
	}

	fires, _ := w.advanceTo(70)
	if len(fires) != len(dues) {
		t.Fatalf("catch-up fired %d entries, want %d", len(fires), len(dues))
	}
	var last uint64
	for i, f := range fires {
		due := byCh[f.ch]
		if f.due != due {
			t.Fatalf("fire %d: recorded due %d, armed for %d", i, f.due, due)
		}
		if f.due < last {
			t.Fatalf("fire %d: out of order (due %d after %d)", i, f.due, last)
		}
		last = f.due
	}
}
