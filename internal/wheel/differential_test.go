package wheel

import (
	"math/rand"
	"sort"
	"testing"
)

// diffEntry is one model entry for the differential tests below.
type diffEntry struct {
	id      int
	due     uint64
	h       Handle
	ch      chan struct{}
	isClose bool // armed through ArmClose (broadcast entry)
	fired   bool
	cancel  bool
}

// TestDifferentialAgainstSortedModel drives a single-shard wheel with a
// seeded random schedule of arms and cancels and checks every outcome
// against a naive model: a slice of (due, seq) pairs sorted on demand.
// The wheel must agree with the model on (a) which entries fire, (b) the
// exact tick each fires at, (c) tick-by-tick fire order, and (d) the
// result of every Cancel. Small slot counts force constant cascading and
// overflow rescue, so the hierarchy bookkeeping — not just the level-0
// happy path — is what gets compared.
func TestDifferentialAgainstSortedModel(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		rng := rand.New(rand.NewSource(seed))
		w := testWheel(t, Config{Slots0: 8, Slots1: 4, Shards: 1})
		runDifferential(t, w, rng, seed, false)
	}
}

// TestDifferentialBatchedCloseFiring reruns the model comparison with
// the batched/coalesced firing path in the mix: a random half of the
// entries are broadcast-close (ArmClose) wake-ups, which an advance pass
// collects under the same single lock acquisition and closes outside the
// lock. The model is unchanged — a close entry fires at exactly its tick
// like any other — plus two kind-specific checks folded into the run: a
// fired close entry's channel is actually closed (receivable arbitrarily
// often), and a cancelled one's never is.
func TestDifferentialBatchedCloseFiring(t *testing.T) {
	for _, seed := range []int64{3, 11, 99, 2024} {
		rng := rand.New(rand.NewSource(seed))
		w := testWheel(t, Config{Slots0: 8, Slots1: 4, Shards: 1})
		runDifferential(t, w, rng, seed, true)
	}
}

// closed reports whether ch has been closed (close entries carry no
// tokens, so any receive that completes means closed).
func closed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func runDifferential(t *testing.T, w *Wheel, rng *rand.Rand, seed int64, withClose bool) {
	t.Helper()
	var (
		entries []*diffEntry
		byCh    = map[chan<- struct{}]*diffEntry{}
		now     uint64
		nextID  int
	)
	pending := func() []*diffEntry {
		var p []*diffEntry
		for _, e := range entries {
			if !e.fired && !e.cancel {
				p = append(p, e)
			}
		}
		return p
	}

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // arm, horizon-stressing spread of durations
			due := now + 1 + uint64(rng.Intn(200))
			ch := make(chan struct{}, 1)
			e := &diffEntry{id: nextID, due: due, ch: ch}
			nextID++
			// The manual wheel's clock is frozen at tick 0, so the
			// duration encodes the absolute due tick directly.
			if withClose && rng.Intn(2) == 0 {
				e.isClose = true
				var got uint64
				e.h, got = w.ArmClose(w.at(due), ch)
				if got != due {
					t.Fatalf("seed %d step %d: ArmClose reported due tick %d, want %d", seed, step, got, due)
				}
			} else {
				e.h = w.Arm(w.at(due), ch)
			}
			if e.h == (Handle{}) {
				t.Fatalf("seed %d step %d: future arm (due %d, now %d) fired immediately", seed, step, due, now)
			}
			entries = append(entries, e)
			byCh[ch] = e
		case op < 7: // cancel a random live entry (or a stale handle)
			if p := pending(); len(p) > 0 {
				e := p[rng.Intn(len(p))]
				if !w.Cancel(e.h) {
					t.Fatalf("seed %d step %d: cancel of pending id %d failed", seed, step, e.id)
				}
				if w.Cancel(e.h) {
					t.Fatalf("seed %d step %d: double cancel of id %d succeeded", seed, step, e.id)
				}
				e.cancel = true
			}
		default: // advance 1..16 ticks and compare fire sets
			target := now + 1 + uint64(rng.Intn(16))
			for now < target {
				now++
				fires, _ := w.advanceTo(now)

				// Model: everything pending with due == now, by id.
				var want []*diffEntry
				for _, e := range pending() {
					if e.due == now {
						want = append(want, e)
					}
				}
				sort.Slice(want, func(i, j int) bool { return want[i].id < want[j].id })

				got := make([]*diffEntry, 0, len(fires))
				for _, f := range fires {
					e := byCh[f.ch]
					if e == nil {
						t.Fatalf("seed %d tick %d: fire on unknown channel", seed, now)
					}
					if f.due != e.due || e.due != now {
						t.Fatalf("seed %d tick %d: id %d fired at wrong tick (due %d, recorded %d)", seed, now, e.id, e.due, f.due)
					}
					if f.closeCh != e.isClose {
						t.Fatalf("seed %d tick %d: id %d fired with wrong kind (closeCh=%v, armed close=%v)", seed, now, e.id, f.closeCh, e.isClose)
					}
					if e.fired || e.cancel {
						t.Fatalf("seed %d tick %d: id %d fired twice or after cancel", seed, now, e.id)
					}
					e.fired = true
					if e.isClose && !closed(e.ch) {
						t.Fatalf("seed %d tick %d: close entry id %d fired but channel not closed", seed, now, e.id)
					}
					got = append(got, e)
				}
				sort.Slice(got, func(i, j int) bool { return got[i].id < got[j].id })

				if len(got) != len(want) {
					t.Fatalf("seed %d tick %d: fired %d entries, model says %d", seed, now, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d tick %d: fire set diverges from model at %d (got id %d, want id %d)", seed, now, i, got[i].id, want[i].id)
					}
				}
			}
		}
	}

	// Drain: after advancing past every deadline, the wheel must be
	// empty and every non-cancelled entry must have fired.
	drained, _ := w.advanceTo(now + 300)
	for _, f := range drained {
		if e := byCh[f.ch]; e != nil {
			e.fired = true
		}
	}
	for _, e := range entries {
		if !e.cancel && e.due <= now+300 && !e.fired {
			t.Fatalf("seed %d: id %d (due %d) never fired", seed, e.id, e.due)
		}
		if e.isClose && e.cancel && closed(e.ch) {
			t.Fatalf("seed %d: cancelled close entry id %d has a closed channel", seed, e.id)
		}
	}
	if got := w.Stats().Armed; got != 0 {
		t.Fatalf("seed %d: %d entries still armed after drain", seed, got)
	}
}
