// Package wheel is the process-wide wake-up engine behind the thrifty
// barrier's internal (timer) wake-up: a sharded, two-level hierarchical
// timing wheel that replaces one runtime timer per parked waiter with one
// timer per mini-wheel shard.
//
// The paper's hybrid wake-up (§3.3.2) pairs a programmable timer in the
// cache controller with the external invalidation from the last arriver;
// the first to trigger cancels the other. The software analogue used to be
// a pooled time.Timer per timed-parked waiter, which is the wrong shape
// for a process hosting thousands of concurrent barrier groups: every
// park and every cancellation goes through the Go runtime's per-P timer
// heaps (O(log n) sift with a P-local lock), and the heap is oblivious to
// the fact that almost every barrier timer is cancelled (the external
// wake-up usually wins). The wheel exploits exactly that bias:
//
//   - Arm is an O(1) bucket append under a shard lock, returning a
//     generation-tagged Handle.
//   - Cancel is an O(1) unlink — the common case, paid by the release
//     broadcast path, never touches a heap or the runtime.
//   - One ticker goroutine per shard (per-P mini-wheels: the default
//     shard count tracks GOMAXPROCS) sleeps until its shard's earliest
//     occupied slot rather than polling every tick, and an awake ticker
//     steals service of a sibling shard whose deadline has gone overdue —
//     lateness from one descheduled ticker never piles up behind one
//     runtime timer.
//
// The tick is deliberately coarse — DefaultTick matches the barrier's
// default ParkMargin, the anticipation gap before the predicted release —
// because the consumer residual-spins after the internal wake-up anyway
// (§2's residual spin): quantization error within one tick is absorbed by
// the spin, and a late internal wake-up is harmless because the external
// wake-up still bounds the wait. Firing rounds the deadline UP to the
// next tick boundary, so the wheel never wakes a waiter before its
// requested duration has elapsed.
//
// Layout: each shard is an independent mini-wheel (its own lock, node
// arena, slot lists, cursors, ticker and timer), so concurrent arms and
// cancels from many barriers spread across shards instead of serializing.
// A shard has Slots0 level-0 buckets of one tick each (one "revolution" =
// Slots0×Tick), Slots1 level-1 buckets of one revolution each, and an
// overflow bucket beyond the two-level horizon. Entries cascade toward
// level 0 as their revolution arrives; all bucket surgery happens under
// the shard lock, and nodes live in a per-shard arena recycled through a
// free list, so the arm/cancel steady state allocates nothing. An advance
// pass collects every due entry for the serviced ticks under one lock
// acquisition and delivers the batch — channel sends and broadcast closes
// — after the lock is released.
package wheel

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTick is the default slot granularity. It matches the barrier's
// default ParkMargin (the §3.3.2 anticipation before the predicted
// release): an internal wake-up quantized up by at most one tick still
// lands inside the residual-spin window, so prediction accounting —
// early/late wake counters and the §3.3.3 cut-off — is unaffected by the
// coarse clock. The value is a power of two nanoseconds (~65.5µs) so the
// nanoseconds→ticks conversion on the Arm fast path is a shift, not a
// 64-bit division.
const DefaultTick = 65536 * time.Nanosecond

// defaultStealLag is how many ticks past a sibling shard's published
// deadline an awake ticker waits before stealing its service: one tick of
// grace for ordinary scheduling jitter, stolen on the second.
const defaultStealLag = 2

// Config parameterizes a Wheel. The zero value of each field selects the
// default; slot and shard counts are rounded up to powers of two.
type Config struct {
	// Tick is the slot granularity. Default DefaultTick.
	Tick time.Duration
	// Slots0 is the number of level-0 (one-tick) slots. Default 256,
	// giving a 16.4ms revolution at the default tick — sized so the whole
	// default timed-park band (up to TimedParkThreshold = 5ms) lives in
	// level 0 and never cascades.
	Slots0 int
	// Slots1 is the number of level-1 (one-revolution) slots. Default 64,
	// a ~1s two-level horizon at the default tick; rarer deadlines wait in
	// the overflow bucket and are re-sorted once per level-1 revolution.
	Slots1 int
	// Shards is the number of independent mini-wheels, each with its own
	// ticker goroutine. Default: the smallest power of two >= GOMAXPROCS,
	// capped at 16.
	Shards int
	// StealLag is how many ticks overdue a shard's published deadline
	// must be before a sibling ticker steals its service pass. Default 2.
	StealLag int
}

func (c *Config) fill() {
	if c.Tick <= 0 {
		c.Tick = DefaultTick
	}
	if c.Slots0 <= 0 {
		c.Slots0 = 256
	}
	if c.Slots1 <= 0 {
		c.Slots1 = 64
	}
	if c.Shards <= 0 {
		c.Shards = min(runtime.GOMAXPROCS(0), 16)
	}
	if c.StealLag <= 0 {
		c.StealLag = defaultStealLag
	}
	c.Slots0 = ceilPow2(c.Slots0)
	c.Slots1 = ceilPow2(c.Slots1)
	c.Shards = ceilPow2(c.Shards)
}

func ceilPow2(n int) int {
	if n < 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Handle identifies one armed entry. It is a value (copy freely) tagging
// the entry's shard, arena index and generation; a Handle outlives its
// entry safely — Cancel on a fired, cancelled or recycled entry is a
// no-op returning false. The zero Handle is valid input and never
// cancels anything.
type Handle struct{ v uint64 }

const (
	idxBits = 24
	genBits = 32
	maxIdx  = 1<<idxBits - 1
)

func makeHandle(shard, idx int, gen uint32) Handle {
	return Handle{uint64(shard)<<(idxBits+genBits) | uint64(idx)<<genBits | uint64(gen)}
}

func (h Handle) unpack() (shard, idx int, gen uint32) {
	return int(h.v >> (idxBits + genBits)), int(h.v >> genBits & maxIdx), uint32(h.v)
}

// node is one armed (or free) entry in a shard's arena. Links are arena
// indices, so the arena can grow by append without invalidating them.
type node struct {
	next, prev int32 // intrusive doubly-linked bucket list; -1 = none
	bucket     int32 // index into shard.head/tail; -1 = free
	gen        uint32
	due        uint64 // absolute due tick
	ch         chan<- struct{}
	closeCh    bool // broadcast entry: fire closes ch instead of sending
}

// spinMutex guards one shard. The critical sections it covers are all
// O(1) and branch-light (a bucket append, an unlink, a bitmap jump), so
// an inlineable CAS lock beats sync.Mutex's fast path by ~2× on the
// arm/cancel hot pair; under contention it yields to the scheduler so a
// preempted holder (single-P case: a ticker mid-pass) can finish.
type spinMutex struct{ v atomic.Uint32 }

func (m *spinMutex) Lock() {
	if m.v.CompareAndSwap(0, 1) {
		return // uncontended fast path, inlined into Arm/Cancel
	}
	m.lockSlow()
}

func (m *spinMutex) lockSlow() {
	for i := 0; !m.v.CompareAndSwap(0, 1); i++ {
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
}

func (m *spinMutex) Unlock() { m.v.Store(0) }

// shard is one independent mini-wheel with its own ticker goroutine.
type shard struct {
	mu spinMutex
	// done is the last tick this shard has processed; every armed entry
	// has due > done.
	done  uint64
	nodes []node
	free  int32 // head of the free list through node.next; -1 = empty
	// head/tail index the per-bucket lists: buckets [0,s0) are level-0
	// slots, [s0,s0+s1) level-1 slots, s0+s1 the overflow bucket.
	head, tail []int32
	// occ is the level-0 occupancy bitmap, one bit per slot, letting the
	// ticker jump over empty stretches instead of visiting every tick.
	occ       []uint64
	l1count   int // entries in level-1 buckets
	ovcount   int // entries in the overflow bucket
	armed     int
	cancelled uint64   // counted under mu: no atomic on the cancel fast path
	_         [64]byte // keep the ticker plan off this shard's lock line

	// nextWake is this shard's ticker's published plan: the tick it
	// intends to sleep until, idleWake when it has nothing to wait for,
	// or 0 while the plan is being recomputed — by the shard's own ticker
	// or by a sibling that claimed the shard for a steal (every Arm kicks
	// during that window, closing the race between a concurrent arm and
	// the plan going stale).
	nextWake atomic.Uint64
	// minArm carries the earliest kicked deadline to the ticker. It is
	// strictly CAS-min on the write side — Arm publishing a new deadline,
	// and a stealer re-publishing the victim's post-steal deadline — and
	// Swap(idleWake) only by the shard's own ticker as it folds the
	// mailbox into its plan. A stealer must never swap: the swap could
	// consume a concurrently armed earlier deadline whose kick token was
	// deduped away, and the victim would sleep past it.
	minArm atomic.Uint64
	kick   chan struct{}
	_      [64]byte // and the plan off the next shard's lock line
}

// firing is one due entry collected by an advance pass, in fire order.
type firing struct {
	ch      chan<- struct{}
	due     uint64
	closeCh bool
}

// Stats is a snapshot of wheel activity.
type Stats struct {
	// Armed is the number of currently armed entries.
	Armed int
	// Fired counts internal wake-ups delivered (including immediate
	// fires of zero/past durations).
	Fired uint64
	// Cancelled counts entries disarmed before firing — the external
	// wake-up winning the §3.3.2 race.
	Cancelled uint64
	// Steals counts service passes run by a sibling ticker on behalf of
	// a lagging shard.
	Steals uint64
}

// Wheel is a sharded hierarchical timing wheel. Create one with New (or
// share the process-wide Default); a Wheel must not be copied.
type Wheel struct {
	noCopy noCopy //nolint:unused // vet copylocks marker

	tick           time.Duration
	tickShift      uint // log2(tick) when tick is a power-of-two ns; 0 = divide
	s0, s1, nshard int
	s0bits         uint
	stealLag       uint64
	epoch          time.Time
	shards         []shard
	rr             atomic.Uint32 // round-robin shard spread for Arm

	stopCh   chan struct{}
	stopOnce sync.Once
	fired    atomic.Uint64
	steals   atomic.Uint64
	scratch  []firing // manual-mode collection buffer (advanceTo-owned)
	manual   bool     // no ticker goroutines; tests drive advanceTo
}

const idleWake = ^uint64(0)

type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// New builds a wheel and starts one ticker goroutine per shard. Stop
// releases them; the process-wide Default wheel is never stopped.
func New(cfg Config) *Wheel {
	w := newWheel(cfg)
	for i := 0; i < w.nshard; i++ {
		go w.runShard(i)
	}
	return w
}

// newManual builds a wheel without tickers: tests advance it
// deterministically through advanceTo.
func newManual(cfg Config) *Wheel {
	w := newWheel(cfg)
	w.manual = true
	return w
}

func newWheel(cfg Config) *Wheel {
	cfg.fill()
	w := &Wheel{
		tick:     cfg.Tick,
		s0:       cfg.Slots0,
		s1:       cfg.Slots1,
		nshard:   cfg.Shards,
		s0bits:   uint(bits.TrailingZeros(uint(cfg.Slots0))),
		stealLag: uint64(cfg.StealLag),
		epoch:    time.Now(),
		shards:   make([]shard, cfg.Shards),
		stopCh:   make(chan struct{}),
	}
	if t := uint64(cfg.Tick); t&(t-1) == 0 {
		w.tickShift = uint(bits.TrailingZeros64(t))
	}
	buckets := cfg.Slots0 + cfg.Slots1 + 1
	for i := range w.shards {
		sh := &w.shards[i]
		sh.free = -1
		sh.head = make([]int32, buckets)
		sh.tail = make([]int32, buckets)
		for b := range sh.head {
			sh.head[b], sh.tail[b] = -1, -1
		}
		sh.occ = make([]uint64, cfg.Slots0/64+1)
		sh.minArm.Store(idleWake)
		sh.kick = make(chan struct{}, 1)
	}
	return w
}

var (
	defaultOnce  sync.Once
	defaultWheel *Wheel
)

// Default returns the process-wide wheel, creating it (and its tickers)
// on first use. All thrifty.Barrier instances in the process share it, so
// the many-barrier regime pays for one ticker per shard, not one timer
// per waiter.
func Default() *Wheel {
	defaultOnce.Do(func() { defaultWheel = New(Config{}) })
	return defaultWheel
}

// Stop terminates the ticker goroutines. Armed entries never fire after
// Stop; it exists for tests and short-lived auxiliary wheels.
func (w *Wheel) Stop() {
	w.stopOnce.Do(func() { close(w.stopCh) })
}

// Stats snapshots the wheel's counters.
func (w *Wheel) Stats() Stats {
	s := Stats{Fired: w.fired.Load(), Steals: w.steals.Load()}
	for i := range w.shards {
		sh := &w.shards[i]
		sh.mu.Lock()
		s.Armed += sh.armed
		s.Cancelled += sh.cancelled
		sh.mu.Unlock()
	}
	return s
}

// toTicks floors a non-negative duration to wheel ticks — a shift for
// power-of-two-ns ticks (the default), a division otherwise.
func (w *Wheel) toTicks(d time.Duration) uint64 {
	if w.tickShift != 0 {
		return uint64(d) >> w.tickShift
	}
	return uint64(d / w.tick)
}

// tickNow converts the wall clock to wheel ticks (monotonic: time.Since
// uses the monotonic reading of epoch).
func (w *Wheel) tickNow() uint64 {
	return w.toTicks(time.Since(w.epoch))
}

// DueTick reports the absolute tick an entry armed now for d would fire
// at — the first tick boundary at or after the requested deadline.
// Callers coalescing wake-ups compare DueTick results: deadlines that
// quantize to the same tick can share one broadcast entry (ArmClose).
func (w *Wheel) DueTick(d time.Duration) uint64 {
	if d < 0 {
		d = 0
	}
	return w.toTicks(time.Since(w.epoch) + d + w.tick - 1)
}

// Arm schedules a wake-up: after at least d, one token is sent to ch
// (non-blocking — ch should be a dedicated channel with capacity 1). It
// is O(1): pick a shard round-robin, take a node from its arena, append
// to the due bucket. A zero or negative d fires immediately and returns
// the zero Handle.
//
// The caller owns the race protocol of §3.3.2: if the external wake-up
// wins, call Cancel; a false return means the fire already claimed the
// entry and its token is (or is about to be) in ch — receive it before
// reusing the channel.
func (w *Wheel) Arm(d time.Duration, ch chan<- struct{}) Handle {
	if d <= 0 {
		w.fireNow(ch)
		return Handle{}
	}
	// Round up from the exact elapsed time: the fire tick is the first
	// boundary at or after the requested deadline, so a wake-up is never
	// early (late by at most one tick plus ticker latency).
	return w.armAt(w.toTicks(time.Since(w.epoch)+d+w.tick-1), ch, false)
}

// ArmClose schedules a broadcast wake-up: after at least d, ch is closed
// — every receiver observes the fire, so any number of waiters whose
// deadlines quantize to the same tick can share one entry (the
// coalescing path; see DueTick). It also returns the entry's absolute
// due tick so the sharing protocol can match joiners against it. Cancel
// on the returned handle disarms the close; a false Cancel means the
// close fired (or is firing), which — unlike a token send — is harmless
// to late receivers, so there is nothing to drain.
func (w *Wheel) ArmClose(d time.Duration, ch chan struct{}) (Handle, uint64) {
	due := w.DueTick(d)
	if d <= 0 {
		w.fired.Add(1)
		close(ch)
		return Handle{}, due
	}
	return w.armAt(due, ch, true), due
}

// armAt files one entry at the absolute tick due (> now when computed by
// the callers above, but re-checked against the shard cursor under the
// lock) and kicks the owning shard's ticker if the new deadline precedes
// its published plan.
func (w *Wheel) armAt(due uint64, ch chan<- struct{}, closeCh bool) Handle {
	si := 0
	if w.nshard > 1 {
		si = int(w.rr.Add(1)) & (w.nshard - 1)
	}
	sh := &w.shards[si]
	sh.mu.Lock()
	if due <= sh.done {
		// The ticker already swept past the due tick (a stale clock read
		// under extreme scheduling delay): deliver immediately rather
		// than waiting a full revolution.
		sh.mu.Unlock()
		if closeCh {
			w.fired.Add(1)
			close(ch)
		} else {
			w.fireNow(ch)
		}
		return Handle{}
	}
	idx := sh.alloc()
	n := &sh.nodes[idx]
	n.due = due
	n.ch = ch
	n.closeCh = closeCh
	if due>>w.s0bits == sh.done>>w.s0bits {
		// Level-0 fast path, manually inlined: the whole default
		// timed-park band lands here (one bitmap OR, one tail append).
		b := int32(due & uint64(w.s0-1))
		sh.occ[b>>6] |= 1 << (uint(b) & 63)
		n.bucket = b
		n.prev = sh.tail[b]
		n.next = -1
		if n.prev >= 0 {
			sh.nodes[n.prev].next = idx
		} else {
			sh.head[b] = idx
		}
		sh.tail[b] = idx
	} else {
		sh.place(w, idx, due, sh.done)
	}
	sh.armed++
	gen := n.gen
	sh.mu.Unlock()

	// Kick the shard's ticker if this deadline precedes its published
	// plan (or the plan is being recomputed — by the ticker itself or by
	// a stealing sibling): publish the deadline through minArm (CAS-min),
	// then nudge through the cap-1 dedup channel. The ticker handles the
	// kick lock-free — it only retargets its timer.
	if nw := sh.nextWake.Load(); nw == 0 || due < nw {
		casMin(&sh.minArm, due)
		sh.kickTicker()
	}
	return makeHandle(si, int(idx), gen)
}

// casMin lowers a to v (CAS loop); it never raises it.
func casMin(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// kickTicker nudges the shard's ticker through the cap-1 dedup channel.
// A pending kick already covers the caller (the ticker reads minArm
// after draining the channel), so the send — and its channel lock — is
// skipped when one is queued.
func (sh *shard) kickTicker() {
	if len(sh.kick) == 0 {
		select {
		case sh.kick <- struct{}{}:
		default:
		}
	}
}

func (w *Wheel) fireNow(ch chan<- struct{}) {
	w.fired.Add(1)
	select {
	case ch <- struct{}{}:
	default:
	}
}

// Cancel disarms h. It returns true if the entry was still pending — no
// token was or will be delivered (no close will happen, for ArmClose
// entries) — and false if the entry already fired (or h is stale or
// zero). O(1): one shard lock, one list unlink.
func (w *Wheel) Cancel(h Handle) bool {
	if h.v == 0 {
		return false
	}
	si, idx, gen := h.unpack()
	if si >= w.nshard {
		return false
	}
	sh := &w.shards[si]
	sh.mu.Lock()
	if idx >= len(sh.nodes) {
		sh.mu.Unlock()
		return false
	}
	n := &sh.nodes[idx]
	if n.gen != gen {
		// Stale: the entry fired, was cancelled, or the node was recycled
		// — every free bumps gen, so a matching gen implies still linked.
		sh.mu.Unlock()
		return false
	}
	// Manually inlined unlink (the compiler won't inline it): splice out
	// of the bucket list, then maintain the level's occupancy accounting.
	b := n.bucket
	if n.prev >= 0 {
		sh.nodes[n.prev].next = n.next
	} else {
		sh.head[b] = n.next
	}
	if n.next >= 0 {
		sh.nodes[n.next].prev = n.prev
	} else {
		sh.tail[b] = n.prev
	}
	switch {
	case int(b) < w.s0:
		if sh.head[b] < 0 {
			sh.occ[b>>6] &^= 1 << (uint(b) & 63)
		}
	case int(b) < w.s0+w.s1:
		sh.l1count--
	default:
		sh.ovcount--
	}
	sh.freeNode(int32(idx))
	sh.armed--
	sh.cancelled++
	sh.mu.Unlock()
	return true
}

// --- shard internals (all under sh.mu) ---

func (sh *shard) alloc() int32 {
	if idx := sh.free; idx >= 0 {
		sh.free = sh.nodes[idx].next
		return idx
	}
	return sh.allocSlow()
}

func (sh *shard) allocSlow() int32 {
	if len(sh.nodes) > maxIdx {
		panic(fmt.Sprintf("wheel: shard arena exhausted (%d armed entries)", len(sh.nodes)))
	}
	sh.nodes = append(sh.nodes, node{gen: 1, bucket: -1})
	return int32(len(sh.nodes) - 1)
}

func (sh *shard) freeNode(idx int32) {
	n := &sh.nodes[idx]
	n.bucket = -1
	n.ch = nil
	// Bump the generation so stale Handles can never cancel the node's
	// next incarnation (skipping 0, which marks a never-armed node).
	n.gen++
	if n.gen == 0 {
		n.gen = 1
	}
	n.next = sh.free
	sh.free = idx
}

// place files idx into the bucket its due tick selects, relative to the
// reference tick ref (sh.done for arms, the boundary tick for cascades):
// level 0 within the current revolution, level 1 within the two-level
// horizon, otherwise overflow.
func (sh *shard) place(w *Wheel, idx int32, due, ref uint64) {
	var b int32
	switch rev := due>>w.s0bits - ref>>w.s0bits; {
	case rev == 0:
		b = int32(due & uint64(w.s0-1))
		sh.occ[b>>6] |= 1 << (uint(b) & 63)
	case rev < uint64(w.s1):
		b = int32(w.s0) + int32(due>>w.s0bits&uint64(w.s1-1))
		sh.l1count++
	default:
		b = int32(w.s0 + w.s1)
		sh.ovcount++
	}
	n := &sh.nodes[idx]
	n.bucket = b
	n.prev = sh.tail[b]
	n.next = -1
	if sh.tail[b] >= 0 {
		sh.nodes[sh.tail[b]].next = idx
	} else {
		sh.head[b] = idx
	}
	sh.tail[b] = idx
}

func (sh *shard) unlink(w *Wheel, idx int32) {
	n := &sh.nodes[idx]
	b := n.bucket
	if n.prev >= 0 {
		sh.nodes[n.prev].next = n.next
	} else {
		sh.head[b] = n.next
	}
	if n.next >= 0 {
		sh.nodes[n.next].prev = n.prev
	} else {
		sh.tail[b] = n.prev
	}
	switch {
	case int(b) < w.s0:
		if sh.head[b] < 0 {
			sh.occ[b>>6] &^= 1 << (uint(b) & 63)
		}
	case int(b) < w.s0+w.s1:
		sh.l1count--
	default:
		sh.ovcount--
	}
}

// nextOcc returns the first occupied level-0 slot >= from, or ok=false.
func (sh *shard) nextOcc(w *Wheel, from int) (int, bool) {
	if from >= w.s0 {
		return 0, false
	}
	word := from >> 6
	if v := sh.occ[word] >> (uint(from) & 63); v != 0 {
		return from + bits.TrailingZeros64(v), true
	}
	for word++; word <= (w.s0-1)>>6; word++ {
		if v := sh.occ[word]; v != 0 {
			return word<<6 + bits.TrailingZeros64(v), true
		}
	}
	return 0, false
}

// fireBucket drains level-0 bucket b into out (FIFO — insertion order,
// which the differential test pins against the sorted-slice model).
func (sh *shard) fireBucket(w *Wheel, b int32, out *[]firing) {
	for idx := sh.head[b]; idx >= 0; {
		n := &sh.nodes[idx]
		next := n.next
		*out = append(*out, firing{n.ch, n.due, n.closeCh})
		sh.freeNode(idx)
		sh.armed--
		idx = next
	}
	sh.head[b], sh.tail[b] = -1, -1
	sh.occ[b>>6] &^= 1 << (uint(b) & 63)
}

// replaceBucket re-files every entry of bucket b (a level-1 slot whose
// revolution has arrived, or the overflow bucket at a horizon boundary)
// relative to the boundary tick ref. FIFO order within the bucket is
// preserved, so entries that re-land in one level-0 slot keep their
// insertion order.
func (sh *shard) replaceBucket(w *Wheel, b int32, ref uint64) {
	idx := sh.head[b]
	sh.head[b], sh.tail[b] = -1, -1
	for idx >= 0 {
		n := &sh.nodes[idx]
		next := n.next
		switch {
		case int(n.bucket) < w.s0+w.s1:
			sh.l1count--
		default:
			sh.ovcount--
		}
		sh.place(w, idx, n.due, ref)
		idx = next
	}
}

// advance processes this shard's ticks through now, collecting due
// entries into out, and reports the shard's next service tick — computed
// under the same lock acquisition, so one service pass takes the shard
// lock exactly once. The loop jumps across empty stretches using the
// occupancy bitmap, so catch-up after a long sleep costs O(occupied
// slots + revolution boundaries), not O(ticks). Because done is
// monotonic and all surgery is under sh.mu, concurrent passes — the
// shard's own ticker racing a stealing sibling — serialize safely: the
// second pass finds nothing left to fire.
func (sh *shard) advance(w *Wheel, now uint64, out *[]firing) (uint64, bool) {
	sh.mu.Lock()
	mask := uint64(w.s0 - 1)
	for sh.done < now {
		t := sh.done + 1
		if t&mask == 0 {
			// Revolution boundary: pull the next level-1 slot down, and
			// re-sort the overflow bucket once per level-1 revolution.
			// Order matters: overflow first (it may feed the level-1
			// slot being cascaded), then the cascade, then slot 0.
			if sh.ovcount > 0 && t&uint64(w.s0*w.s1-1) == 0 {
				sh.replaceBucket(w, int32(w.s0+w.s1), t)
			}
			if sh.l1count > 0 {
				sh.replaceBucket(w, int32(w.s0)+int32(t>>w.s0bits&uint64(w.s1-1)), t)
			}
			if sh.occ[0]&1 != 0 {
				sh.fireBucket(w, 0, out)
			}
			sh.done = t
			continue
		}
		// Jump to the next occupied slot in this revolution, the
		// revolution boundary, or now — whichever comes first.
		slot, ok := sh.nextOcc(w, int(t&mask))
		if !ok {
			sh.done = min(now, t|mask) // t|mask: last tick of the revolution
			continue
		}
		ft := t&^mask + uint64(slot)
		if ft > now {
			sh.done = now
			break
		}
		sh.fireBucket(w, int32(slot), out)
		sh.done = ft
	}
	nd := sh.nextDueLocked(w)
	sh.mu.Unlock()
	return nd, nd != idleWake
}

// nextDueLocked reports the earliest tick at which this shard needs
// service (caller holds sh.mu): the next occupied level-0 slot, the next
// revolution boundary if level 1 is populated, or the next horizon
// boundary if the overflow bucket is.
func (sh *shard) nextDueLocked(w *Wheel) uint64 {
	mask := uint64(w.s0 - 1)
	best := idleWake
	if slot, ok := sh.nextOcc(w, int(sh.done&mask)+1); ok {
		best = sh.done&^mask + uint64(slot)
	}
	if sh.l1count > 0 {
		if b := sh.done&^mask + uint64(w.s0); b < best {
			best = b
		}
	}
	if sh.ovcount > 0 {
		hmask := uint64(w.s0*w.s1 - 1)
		if b := sh.done&^hmask + uint64(w.s0*w.s1); b < best {
			best = b
		}
	}
	return best
}

// serviceShard is one batched service pass: advance the shard to now
// under one lock acquisition, then deliver the whole batch of due
// entries — the k channel sends/closes — outside the lock. Returns the
// shard's next service tick.
func (w *Wheel) serviceShard(sh *shard, now uint64, scratch *[]firing) uint64 {
	*scratch = (*scratch)[:0]
	nd, _ := sh.advance(w, now, scratch)
	w.deliver(*scratch)
	return nd
}

// deliver fires a collected batch: one counter add for the batch, then a
// non-blocking token send (Arm entries) or a broadcast close (ArmClose
// entries) per firing, in collection order.
func (w *Wheel) deliver(batch []firing) {
	if len(batch) == 0 {
		return
	}
	w.fired.Add(uint64(len(batch)))
	for _, f := range batch {
		if f.closeCh {
			close(f.ch)
		} else {
			select {
			case f.ch <- struct{}{}:
			default:
			}
		}
	}
}

// advanceTo advances every shard through now, delivers the collected
// wake-ups (in collection order) and reports the earliest tick needing
// service across all shards. It returns the fire list for the
// deterministic tests; the slice is reused by the next call. Manual-mode
// only (the ticker path services shards independently).
func (w *Wheel) advanceTo(now uint64) ([]firing, uint64) {
	w.scratch = w.scratch[:0]
	next := idleWake
	for i := range w.shards {
		if d, ok := w.shards[i].advance(w, now, &w.scratch); ok && d < next {
			next = d
		}
	}
	w.deliver(w.scratch)
	return w.scratch, next
}

// stealFrom services shard vi on behalf of its ticker if its deadline —
// the published plan or a kicked-but-unabsorbed mailbox entry — is at
// least stealLag ticks overdue. It returns whether a steal ran.
//
// The protocol mirrors the victim ticker's own recompute: claim the plan
// by CASing it to 0 (so concurrent Arms kick unconditionally, exactly as
// they do while the victim recomputes), service the shard, then publish
// the post-steal deadline. The publish must go through the victim's
// minArm mailbox with CAS-min — never a swap — and a kick: the victim's
// own timer still targets the pre-steal plan, and without the mailbox
// re-evaluation an idle-parked victim would sleep past the stolen
// shard's next deadline entirely (the skip the regression test in
// steal_test.go pins).
func (w *Wheel) stealFrom(vi int, now uint64, scratch *[]firing) bool {
	v := &w.shards[vi]
	plan := v.nextWake.Load()
	if plan == 0 {
		return false // victim (or another thief) is mid-recompute: it is live
	}
	due := plan
	if m := v.minArm.Load(); m < due {
		// A kicked deadline the victim has not absorbed yet counts too:
		// an idle plan must not hide an overdue mailbox.
		due = m
	}
	if due == idleWake || due+w.stealLag > now {
		return false
	}
	if !v.nextWake.CompareAndSwap(plan, 0) {
		return false // victim woke up on its own; leave it to it
	}
	w.steals.Add(1)
	nd := w.serviceShard(v, now, scratch)
	// Publish only if the victim has not republished meanwhile (its own
	// recompute is always fresher than ours).
	v.nextWake.CompareAndSwap(0, nd)
	if nd != idleWake {
		casMin(&v.minArm, nd)
		v.kickTicker()
	}
	return true
}

// stealSweep is the work-stealing pass an awake ticker runs after
// servicing its own shard: check every sibling and steal service of any
// that has gone overdue.
func (w *Wheel) stealSweep(self int, now uint64, scratch *[]firing) {
	for off := 1; off < w.nshard; off++ {
		w.stealFrom((self+off)&(w.nshard-1), now, scratch)
	}
}

// runShard is shard si's ticker: one goroutine, one runtime timer per
// shard. It sleeps until the shard's earliest due tick; Arm kicks it
// when a new deadline precedes the published plan. A kick only retargets
// the timer (lock-free: the deadline travels through minArm), so the
// ticker takes the shard lock exclusively at fire time — arms and
// cancels never contend with it in the §3.3.2 steady state where the
// external wake-up cancels the entry before its tick arrives. While
// awake it also runs a steal sweep over the sibling shards, so one
// descheduled ticker cannot strand its shard's deadlines.
func (w *Wheel) runShard(si int) {
	sh := &w.shards[si]
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	var scratch []firing
	for {
		// Publish "recomputing": any Arm that lands between here and the
		// Store below kicks unconditionally, so the plan can never go
		// stale against a concurrent arm.
		sh.nextWake.Store(0)
		now := w.tickNow()
		next := w.serviceShard(sh, now, &scratch)
		// Fold in any arm that kicked during the scan: min keeps the plan
		// a lower bound on the earliest service time, and an early wake-up
		// is only a cheap extra pass.
		if m := sh.minArm.Swap(idleWake); m < next {
			next = m
		}
		sh.nextWake.Store(next)
		if w.nshard > 1 {
			w.stealSweep(si, now, &scratch)
		}
	sleeping:
		for {
			var sleepC <-chan time.Time
			if next != idleWake {
				d := time.Until(w.epoch.Add(time.Duration(next) * w.tick))
				if d < 0 {
					d = 0
				}
				timer.Reset(d)
				sleepC = timer.C
			}
			select {
			case <-sleepC:
				break sleeping
			case <-sh.kick:
				// Retarget only if the kicked deadline beats the plan; a
				// stale kick (entry already folded in above) re-sleeps on
				// the unchanged plan.
				if m := sh.minArm.Swap(idleWake); m < next {
					next = m
					sh.nextWake.Store(next)
				} else if next == idleWake {
					continue
				}
				timer.Stop()
			case <-w.stopCh:
				return
			}
		}
	}
}
