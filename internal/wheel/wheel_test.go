package wheel

import (
	"testing"
	"time"
)

// testWheel builds a manual (no ticker) wheel with a huge tick so the
// wall clock never advances it: tickNow() stays 0 for the whole test and
// arming duration n*tick - tick/2 lands deterministically on due tick n.
// Tests drive time explicitly through advanceTo.
func testWheel(t *testing.T, cfg Config) *Wheel {
	t.Helper()
	if cfg.Tick == 0 {
		cfg.Tick = time.Hour
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	return newManual(cfg)
}

// at converts a due tick to the arming duration that deterministically
// selects it: half a tick early, so clock skew within the test cannot
// push it across a boundary.
func (w *Wheel) at(tick uint64) time.Duration {
	return time.Duration(tick)*w.tick - w.tick/2
}

func drained(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func TestZeroAndNegativeDurationFireImmediately(t *testing.T) {
	w := testWheel(t, Config{})
	for _, d := range []time.Duration{0, -time.Second} {
		ch := make(chan struct{}, 1)
		h := w.Arm(d, ch)
		if h != (Handle{}) {
			t.Fatalf("Arm(%v) returned non-zero handle %+v", d, h)
		}
		if !drained(ch) {
			t.Fatalf("Arm(%v) did not fire immediately", d)
		}
		if w.Cancel(h) {
			t.Fatalf("Cancel(zero handle) returned true")
		}
	}
	if s := w.Stats(); s.Fired != 2 || s.Armed != 0 {
		t.Fatalf("stats after immediate fires: %+v", s)
	}
}

func TestArmInPastFiresImmediately(t *testing.T) {
	w := testWheel(t, Config{})
	// Drive the shard cursor ahead of anything the (frozen) clock can
	// produce, then arm for a tick the wheel already processed.
	w.advanceTo(100)
	ch := make(chan struct{}, 1)
	h := w.Arm(w.at(3), ch) // due tick 3 <= done 100
	if h != (Handle{}) {
		t.Fatalf("past arm returned non-zero handle %+v", h)
	}
	if !drained(ch) {
		t.Fatal("past arm did not fire immediately")
	}
}

func TestFireAtExactTickAndCancelAfterFire(t *testing.T) {
	w := testWheel(t, Config{})
	ch := make(chan struct{}, 1)
	h := w.Arm(w.at(5), ch)
	w.advanceTo(4)
	if drained(ch) {
		t.Fatal("fired before due tick")
	}
	if got := w.Stats().Armed; got != 1 {
		t.Fatalf("Armed = %d, want 1", got)
	}
	w.advanceTo(5)
	if !drained(ch) {
		t.Fatal("did not fire at due tick")
	}
	if w.Cancel(h) {
		t.Fatal("Cancel after fire returned true")
	}
	if s := w.Stats(); s.Armed != 0 || s.Fired != 1 || s.Cancelled != 0 {
		t.Fatalf("stats after fire: %+v", s)
	}
}

func TestCancelPendingSuppressesFire(t *testing.T) {
	w := testWheel(t, Config{})
	ch := make(chan struct{}, 1)
	h := w.Arm(w.at(5), ch)
	if !w.Cancel(h) {
		t.Fatal("Cancel of pending entry returned false")
	}
	if w.Cancel(h) {
		t.Fatal("double Cancel returned true")
	}
	w.advanceTo(10)
	if drained(ch) {
		t.Fatal("cancelled entry fired")
	}
	if s := w.Stats(); s.Armed != 0 || s.Cancelled != 1 || s.Fired != 0 {
		t.Fatalf("stats after cancel: %+v", s)
	}
}

func TestStaleHandleCannotCancelRecycledNode(t *testing.T) {
	w := testWheel(t, Config{})
	ch1 := make(chan struct{}, 1)
	h1 := w.Arm(w.at(5), ch1)
	if !w.Cancel(h1) {
		t.Fatal("first cancel failed")
	}
	// The freed node is recycled for the next arm with a bumped
	// generation; the stale handle must not disarm the new entry.
	ch2 := make(chan struct{}, 1)
	h2 := w.Arm(w.at(7), ch2)
	if w.Cancel(h1) {
		t.Fatal("stale handle cancelled a recycled node")
	}
	if !w.Cancel(h2) {
		t.Fatal("fresh handle failed to cancel")
	}
}

// TestMassCancel models a broken barrier draining every parked waiter:
// all internal wake-ups are disarmed at once and none may fire.
func TestMassCancel(t *testing.T) {
	w := testWheel(t, Config{Shards: 4})
	const n = 1000
	chs := make([]chan struct{}, n)
	hs := make([]Handle, n)
	for i := range chs {
		chs[i] = make(chan struct{}, 1)
		hs[i] = w.Arm(w.at(uint64(2+i%50)), chs[i])
	}
	if got := w.Stats().Armed; got != n {
		t.Fatalf("Armed = %d, want %d", got, n)
	}
	for i, h := range hs {
		if !w.Cancel(h) {
			t.Fatalf("Cancel %d returned false", i)
		}
	}
	w.advanceTo(100)
	for i, ch := range chs {
		if drained(ch) {
			t.Fatalf("cancelled waiter %d fired", i)
		}
	}
	if s := w.Stats(); s.Armed != 0 || s.Cancelled != n || s.Fired != 0 {
		t.Fatalf("stats after mass cancel: %+v", s)
	}
}

// TestHierarchyLevels pins placement and timely firing across all three
// tiers: level 0, level 1 (cascade at a revolution boundary), and the
// overflow bucket (rescued at a horizon boundary).
func TestHierarchyLevels(t *testing.T) {
	w := testWheel(t, Config{Slots0: 8, Slots1: 4}) // horizon = 32 ticks
	cases := []uint64{3, 7, 9, 20, 31, 32, 45, 100, 257}
	chs := make(map[uint64]chan struct{}, len(cases))
	for _, due := range cases {
		ch := make(chan struct{}, 1)
		chs[due] = ch
		if h := w.Arm(w.at(due), ch); h == (Handle{}) {
			t.Fatalf("arm due=%d fired immediately", due)
		}
	}
	for tick := uint64(1); tick <= 300; tick++ {
		w.advanceTo(tick)
		for due, ch := range chs {
			got := drained(ch)
			want := due == tick
			if got != want {
				t.Fatalf("tick %d: waiter due=%d fired=%v", tick, due, got)
			}
		}
	}
	if s := w.Stats(); s.Armed != 0 || s.Fired != uint64(len(cases)) {
		t.Fatalf("stats after sweep: %+v", s)
	}
}

// TestBigJumpFiresEverything: a single large advance (the ticker waking
// late) must still fire every intermediate entry exactly once.
func TestBigJumpFiresEverything(t *testing.T) {
	w := testWheel(t, Config{Slots0: 8, Slots1: 4})
	const n = 200
	chs := make([]chan struct{}, n)
	for i := range chs {
		chs[i] = make(chan struct{}, 1)
		w.Arm(w.at(uint64(1+i)), chs[i])
	}
	w.advanceTo(5000)
	for i, ch := range chs {
		if !drained(ch) {
			t.Fatalf("waiter %d (due %d) missed by big jump", i, 1+i)
		}
	}
	if s := w.Stats(); s.Armed != 0 || s.Fired != n {
		t.Fatalf("stats after jump: %+v", s)
	}
}

// TestIntraTickFIFO pins the order waiters armed for the same tick fire
// in: insertion order (the bucket list is FIFO and cascades preserve it).
func TestIntraTickFIFO(t *testing.T) {
	w := testWheel(t, Config{Slots0: 8, Slots1: 4})
	const n = 16
	chs := make([]chan struct{}, n)
	for i := range chs {
		chs[i] = make(chan struct{}, 1)
		w.Arm(w.at(20), chs[i]) // all in one level-1 bucket, cascaded at 16
	}
	fires, _ := w.advanceTo(20)
	if len(fires) != n {
		t.Fatalf("fired %d, want %d", len(fires), n)
	}
	for i, f := range fires {
		if f.ch != (chan<- struct{})(chs[i]) {
			t.Fatalf("fire %d out of insertion order", i)
		}
		if f.due != 20 {
			t.Fatalf("fire %d recorded due %d, want 20", i, f.due)
		}
	}
}

// TestArmCancelZeroAlloc is the acceptance-criteria check: after warm-up
// (arena growth), the arm/cancel round trip allocates nothing.
func TestArmCancelZeroAlloc(t *testing.T) {
	w := testWheel(t, Config{})
	ch := make(chan struct{}, 1)
	if n := testing.AllocsPerRun(100, func() {
		h := w.Arm(w.at(10), ch)
		if !w.Cancel(h) {
			t.Fatal("cancel failed")
		}
	}); n != 0 {
		t.Fatalf("arm/cancel allocates %.1f per op, want 0", n)
	}
}

func TestConfigRounding(t *testing.T) {
	w := newManual(Config{Slots0: 100, Slots1: 3, Shards: 5, Tick: time.Hour})
	if w.s0 != 128 || w.s1 != 4 || w.nshard != 8 {
		t.Fatalf("config not rounded to powers of two: s0=%d s1=%d shards=%d", w.s0, w.s1, w.nshard)
	}
}

// TestTickerEndToEnd exercises the real ticker goroutine: a wake-up must
// arrive no earlier than the armed duration, and cancellation must win a
// race against a distant deadline.
func TestTickerEndToEnd(t *testing.T) {
	w := New(Config{Tick: time.Millisecond})
	defer w.Stop()

	ch := make(chan struct{}, 1)
	start := time.Now()
	w.Arm(5*time.Millisecond, ch)
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("armed wake-up never fired")
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("woke early: %v < 5ms", elapsed)
	}

	// External wake-up wins: cancel a far deadline, nothing may arrive.
	ch2 := make(chan struct{}, 1)
	h := w.Arm(time.Minute, ch2)
	if !w.Cancel(h) {
		t.Fatal("cancel of distant deadline failed")
	}

	// A short arm after a long one must re-kick the ticker rather than
	// sleep behind the long deadline.
	chLong := make(chan struct{}, 1)
	chShort := make(chan struct{}, 1)
	hLong := w.Arm(time.Hour, chLong)
	w.Arm(2*time.Millisecond, chShort)
	select {
	case <-chShort:
	case <-time.After(5 * time.Second):
		t.Fatal("short arm stuck behind long deadline")
	}
	w.Cancel(hLong)
	if drained(ch2) || drained(chLong) {
		t.Fatal("cancelled entry delivered a token")
	}
}

func TestStopTerminatesTicker(t *testing.T) {
	w := New(Config{Tick: time.Millisecond})
	ch := make(chan struct{}, 1)
	w.Arm(time.Minute, ch)
	w.Stop()
	w.Stop() // idempotent
}
