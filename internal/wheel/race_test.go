package wheel

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentArmCancelAgainstStealingTickers hammers Arm/Cancel (both
// token and broadcast-close entries) from many goroutines against a live
// multi-shard wheel whose tickers run the work-stealing sweep, under the
// race detector. Correctness invariants: a failed Cancel on a token
// entry always yields exactly one receivable token (the §3.3.2 protocol
// — the consume below would block forever otherwise), a failed Cancel on
// a close entry always observes the channel closed, and the fired +
// cancelled counters account for every operation with nothing left
// armed.
func TestConcurrentArmCancelAgainstStealingTickers(t *testing.T) {
	w := New(Config{Tick: time.Millisecond, Shards: 4, StealLag: 1})
	defer w.Stop()

	const (
		workers = 8
		ops     = 300
	)
	var (
		wg    sync.WaitGroup
		total int64 = workers * ops
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tok := make(chan struct{}, 1)
			for i := 0; i < ops; i++ {
				d := time.Duration(1+(g+i)%3) * time.Millisecond
				switch i % 4 {
				case 0, 1: // token entry, cancel races the fire
					h := w.Arm(d, tok)
					if i%8 < 3 {
						time.Sleep(d) // let the fire usually win
					}
					if !w.Cancel(h) {
						<-tok // fire owns the token: consume before reuse
					}
				case 2: // token entry, let it fire
					h := w.Arm(d, tok)
					select {
					case <-tok:
					case <-time.After(5 * time.Second):
						t.Errorf("worker %d op %d: wake-up never delivered", g, i)
						w.Cancel(h)
						return
					}
				default: // broadcast-close entry, cancel races the close
					bch := make(chan struct{})
					h, _ := w.ArmClose(d, bch)
					if i%8 >= 6 {
						time.Sleep(d)
					}
					if !w.Cancel(h) {
						select {
						case <-bch: // closed: every receiver observes it
						case <-time.After(5 * time.Second):
							t.Errorf("worker %d op %d: failed Cancel but channel not closed", g, i)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	s := w.Stats()
	if s.Armed != 0 {
		t.Fatalf("%d entries still armed after all ops resolved", s.Armed)
	}
	if got := int64(s.Fired) + int64(s.Cancelled); got != total {
		t.Fatalf("fired %d + cancelled %d = %d, want %d (every op must resolve exactly once)",
			s.Fired, s.Cancelled, got, total)
	}
}
