package fault

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Transport fault kinds. They live in their own numbering space (salted
// differently from the Plan kinds by the Source base mixing), but keep
// distinct values anyway so a future shared consumer cannot collide.
const (
	kindConnDrop uint64 = iota + 16
	kindConnDelay
	kindConnDup
	kindConnPartition
	kindConnMidClose
)

// ConnPlan describes which transport faults to inject on wrapped
// connections and how often. Like Plan, the zero value (or a nil
// *ConnPlan) injects nothing and every method is nil-safe.
//
// Every decision is a pure function of (Seed, connection key, frame
// index): the i-th Write on a wrapped connection draws the same verdicts
// in every run, regardless of goroutine scheduling — which is what lets a
// chaos test replay the exact failure it found, and what the reconnect
// idempotency property test leans on to compare faulted and fault-free
// histories.
//
// Faults are injected on the WRITE side only: a dropped write is a lost
// frame, a partitioned connection blackholes every subsequent write while
// the writer keeps believing it succeeded, a mid-frame close delivers a
// torn frame to the peer. Read-side faults are always expressible as the
// peer's write-side faults, so one side of the wrapping suffices; wrap
// both endpoints (with distinct keys) to model a symmetric partition.
type ConnPlan struct {
	// Seed decorrelates this plan's decisions from other plans and from
	// the workload.
	Seed uint64

	// Drop is the per-frame probability that a write is silently
	// discarded: the frame is lost in flight, the writer sees success.
	Drop float64

	// Delay is the per-frame probability that a write is held for DelayBy
	// before being transmitted (head-of-line: later frames on the same
	// connection queue behind it, as on a real socket).
	Delay   float64
	DelayBy time.Duration

	// Duplicate is the per-frame probability that a frame is transmitted
	// twice — the retransmission-after-lost-ack shape every idempotent
	// handler must survive.
	Duplicate float64

	// Partition is the per-frame probability that the connection enters a
	// permanent blackhole: this write and every later one is silently
	// discarded. The writer keeps "succeeding", exactly like a host behind
	// a dropped route; only lease expiry can detect it.
	Partition float64

	// MidClose is the per-frame probability that the connection closes
	// after transmitting only a prefix of the frame — the peer's decoder
	// sees a torn frame, the writer sees the close error. Terminal for the
	// connection.
	MidClose float64
}

// Active reports whether the plan injects any transport fault at all.
func (p *ConnPlan) Active() bool {
	return p != nil && (p.Drop > 0 || p.Delay > 0 || p.Duplicate > 0 ||
		p.Partition > 0 || p.MidClose > 0)
}

// Validate reports an error for a malformed plan.
func (p *ConnPlan) Validate() error {
	if p == nil {
		return nil
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"drop", p.Drop}, {"delay", p.Delay}, {"duplicate", p.Duplicate},
		{"partition", p.Partition}, {"midclose", p.MidClose},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: conn %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	if p.Delay > 0 && p.DelayBy <= 0 {
		return fmt.Errorf("fault: conn delay rate set without delayby")
	}
	return nil
}

// Wrap returns conn with the plan's faults injected on its write side,
// keyed by the opaque key (connection identity: client ID, remote
// address, accept index — whatever is stable across the runs being
// compared). An inactive plan returns conn unchanged.
func (p *ConnPlan) Wrap(conn net.Conn, key string) net.Conn {
	if !p.Active() {
		return conn
	}
	return &FaultConn{Conn: conn, plan: p, src: NewSource(p.Seed, key), key: key}
}

// FaultConn injects a ConnPlan's faults into a net.Conn's writes. The
// protocol layers above are expected to issue exactly one Write per frame
// (internal/remote's WriteFrame does), so the write index is the frame
// index and every verdict is frame-granular.
type FaultConn struct {
	net.Conn
	plan *ConnPlan
	src  *Source
	key  string

	mu          sync.Mutex
	idx         uint64
	partitioned bool
	torn        bool // mid-frame close happened: terminal
}

// Key returns the opaque identity the connection's decisions are keyed by.
func (c *FaultConn) Key() string { return c.key }

// Frames returns how many writes have been issued so far (tests).
func (c *FaultConn) Frames() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx
}

// Write applies the plan's per-frame verdicts in a fixed order —
// partition (sticky), mid-frame close, drop, duplicate, delay — and then
// forwards to the wrapped connection. A swallowed write still reports
// full success, as a real lossy network would.
func (c *FaultConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.torn {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	i := c.idx
	c.idx++
	if c.partitioned {
		c.mu.Unlock()
		return len(b), nil
	}
	if c.plan.Partition > 0 && c.src.Roll(kindConnPartition, i) < c.plan.Partition {
		c.partitioned = true
		c.mu.Unlock()
		return len(b), nil
	}
	c.mu.Unlock()

	if c.plan.MidClose > 0 && c.src.Roll(kindConnMidClose, i) < c.plan.MidClose {
		c.mu.Lock()
		c.torn = true
		c.mu.Unlock()
		n, _ := c.Conn.Write(b[:len(b)/2])
		c.Conn.Close()
		return n, fmt.Errorf("fault: conn %q closed mid-frame at frame %d: %w", c.key, i, net.ErrClosed)
	}
	if c.plan.Drop > 0 && c.src.Roll(kindConnDrop, i) < c.plan.Drop {
		return len(b), nil
	}
	if c.plan.Delay > 0 && c.src.Roll(kindConnDelay, i) < c.plan.Delay {
		time.Sleep(c.plan.DelayBy)
	}
	if c.plan.Duplicate > 0 && c.src.Roll(kindConnDup, i) < c.plan.Duplicate {
		if n, err := c.Conn.Write(b); err != nil {
			return n, err
		}
	}
	return c.Conn.Write(b)
}

// FaultListener wraps every accepted connection in a ConnPlan. The i-th
// accepted connection is keyed "<key>/accept<i>", so a test whose clients
// connect in a deterministic order gets deterministic per-connection
// faults; tests with racing dials should wrap the dial side instead,
// keyed by client identity.
type FaultListener struct {
	net.Listener
	plan *ConnPlan
	key  string

	mu sync.Mutex
	n  int
}

// NewFaultListener wraps l. An inactive plan returns l unchanged.
func NewFaultListener(l net.Listener, plan *ConnPlan, key string) net.Listener {
	if !plan.Active() {
		return l
	}
	return &FaultListener{Listener: l, plan: plan, key: key}
}

// Accept accepts from the wrapped listener and applies the plan.
func (l *FaultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.n
	l.n++
	l.mu.Unlock()
	return l.plan.Wrap(conn, fmt.Sprintf("%s/accept%d", l.key, i)), nil
}
