package fault

import "testing"

// A Source's stream must be a pure function of (seed, key, kind, index):
// two sources built the same way agree everywhere, and changing any
// coordinate decorrelates.
func TestSourceIsDeterministic(t *testing.T) {
	a := NewSource(42, "conn/client-3")
	b := NewSource(42, "conn/client-3")
	for kind := uint64(0); kind < 4; kind++ {
		for i := uint64(0); i < 100; i++ {
			if a.Uint64(kind, i) != b.Uint64(kind, i) {
				t.Fatalf("kind %d index %d: sources disagree", kind, i)
			}
			if r := a.Roll(kind, i); r < 0 || r >= 1 {
				t.Fatalf("roll %v outside [0,1)", r)
			}
		}
	}
}

func TestSourceKeySeedAndKindDecorrelate(t *testing.T) {
	base := NewSource(42, "key")
	for name, other := range map[string]*Source{
		"different key":  NewSource(42, "key2"),
		"different seed": NewSource(43, "key"),
	} {
		same := 0
		for i := uint64(0); i < 1000; i++ {
			if base.Uint64(1, i) == other.Uint64(1, i) {
				same++
			}
		}
		if same > 0 {
			t.Errorf("%s: %d/1000 collisions", name, same)
		}
	}
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if base.Uint64(1, i) == base.Uint64(2, i) {
			same++
		}
	}
	if same > 0 {
		t.Errorf("kinds collide: %d/1000", same)
	}
}

// Rolls must be usable as probabilities: the empirical mean of a long
// stream sits near 1/2.
func TestSourceRollIsUniformish(t *testing.T) {
	s := NewSource(7, "uniform")
	var sum float64
	const n = 10000
	for i := uint64(0); i < n; i++ {
		sum += s.Roll(0, i)
	}
	if mean := sum / n; mean < 0.47 || mean > 0.53 {
		t.Fatalf("mean roll %v, want ~0.5", mean)
	}
}

// Plan.roll was refactored onto the shared finalizer when Source was
// introduced. Committed results/ artifacts replay plans' exact decisions,
// so the arithmetic must stay bit-identical forever: pin a handful of
// absolute values observed before the refactor's introduction.
func TestPlanRollPinned(t *testing.T) {
	p := &Plan{Seed: 1, DropWakeup: 0.5}
	got := []float64{
		p.roll(kindDrop, 0, 0),
		p.roll(kindDrop, 3, 7),
		p.roll(kindTimerFail, 1, 2),
	}
	want := []float64{
		0.40788535967831596,
		0.89764036220476073,
		0.482336987808067,
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("roll[%d] = %.17g, want %.17g — Plan.roll arithmetic changed; committed results/ artifacts no longer replay", i, got[i], want[i])
		}
	}
}
