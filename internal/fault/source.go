package fault

import "hash/fnv"

// finalize64 is the SplitMix64 finalizer shared by every decision in this
// package: a full-avalanche bijection, so distinct mixed keys give
// independent-looking variates. Plan.roll and Source.Roll both end here,
// which keeps the two keying schemes (numeric (phase, thread) and opaque
// string) statistically interchangeable.
func finalize64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// unit maps a finalized word to a uniform [0,1) variate using the top 53
// bits (the float64 mantissa width).
func unit(z uint64) float64 {
	return float64(z>>11) / (1 << 53)
}

// Source is a seeded deterministic variate stream keyed by an opaque
// string — the generalization of Plan's (phase, thread) keying for
// consumers whose identity is not a thread ID: network connections keyed
// by address or client ID, retry loops keyed by attempt owner, shards
// keyed by name. Every draw is a pure function of
// (seed, key, kind, index): no mutable state, no draw ordering, so two
// runs that ask the same questions get the same answers regardless of
// goroutine scheduling — the same replayability contract as Plan.
//
// The key is hashed once at construction (FNV-1a); Source values are
// immutable and safe for concurrent use.
type Source struct {
	base uint64
}

// NewSource builds the variate stream for (seed, key).
func NewSource(seed uint64, key string) *Source {
	h := fnv.New64a()
	h.Write([]byte(key))
	// The same golden-ratio / MurmurHash3 constants Plan.roll mixes with,
	// applied to the hashed key so an empty key still decorrelates from
	// the raw seed.
	return &Source{base: seed ^ (h.Sum64()+1)*0x9E3779B97F4A7C15}
}

// Uint64 returns the raw finalized word for (kind, index). Kinds salt the
// stream so one index can answer several independent questions.
func (s *Source) Uint64(kind, index uint64) uint64 {
	z := s.base ^ (kind+1)*0xBF58476D1CE4E5B9
	z ^= (index + 1) * 0x94D049BB133111EB
	return finalize64(z)
}

// Roll returns a uniform [0,1) variate for (kind, index).
func (s *Source) Roll(kind, index uint64) float64 {
	return unit(s.Uint64(kind, index))
}
