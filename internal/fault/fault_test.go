package fault

import (
	"math"
	"strings"
	"testing"

	"thriftybarrier/internal/sim"
)

// Decisions must be pure functions of (seed, kind, phase, thread): identical
// across calls and call orders, independent of any shared state.
func TestDecisionsAreDeterministic(t *testing.T) {
	p := &Plan{Seed: 42, DropWakeup: 0.3, TimerFail: 0.3, DriftRate: 0.3,
		Drift: 100 * sim.Microsecond, PreemptRate: 0.3, PreemptDelay: sim.Millisecond,
		StallRate: 0.3, StallDelay: sim.Millisecond}
	q := &Plan{Seed: 42, DropWakeup: 0.3, TimerFail: 0.3, DriftRate: 0.3,
		Drift: 100 * sim.Microsecond, PreemptRate: 0.3, PreemptDelay: sim.Millisecond,
		StallRate: 0.3, StallDelay: sim.Millisecond}
	for phase := 0; phase < 50; phase++ {
		for thread := 0; thread < 16; thread++ {
			if p.DropWakeupAt(phase, thread) != q.DropWakeupAt(phase, thread) {
				t.Fatalf("drop decision diverged at (%d,%d)", phase, thread)
			}
			if p.TimerFailsAt(phase, thread) != q.TimerFailsAt(phase, thread) {
				t.Fatalf("timerfail decision diverged at (%d,%d)", phase, thread)
			}
			if p.TimerDriftAt(phase, thread) != q.TimerDriftAt(phase, thread) {
				t.Fatalf("drift decision diverged at (%d,%d)", phase, thread)
			}
			d1, ok1 := p.PreemptAt(phase, thread)
			d2, ok2 := q.PreemptAt(phase, thread)
			if d1 != d2 || ok1 != ok2 {
				t.Fatalf("preempt decision diverged at (%d,%d)", phase, thread)
			}
		}
	}
}

// Different fault kinds draw independently: a (phase, thread) pair dropping
// its wake-up says nothing about its timer failing.
func TestKindsAreDecorrelated(t *testing.T) {
	p := &Plan{Seed: 1, DropWakeup: 0.5, TimerFail: 0.5}
	agree := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if p.DropWakeupAt(i, 0) == p.TimerFailsAt(i, 0) {
			agree++
		}
	}
	// Independent fair coins agree ~50% of the time; 40–60% is ~4.5σ slack.
	if agree < n*2/5 || agree > n*3/5 {
		t.Fatalf("drop and timerfail decisions agree %d/%d times; kinds look correlated", agree, n)
	}
}

// Observed fault frequency must track the configured rate.
func TestRateIsHonored(t *testing.T) {
	for _, rate := range []float64{0.05, 0.2, 0.5} {
		p := &Plan{Seed: 9, DropWakeup: rate}
		hits := 0
		const n = 10000
		for i := 0; i < n; i++ {
			if p.DropWakeupAt(i, i%64) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-rate) > 0.03 {
			t.Errorf("rate %.2f: observed %.3f", rate, got)
		}
	}
}

// Different seeds fault different pairs at the same rate.
func TestSeedDecorrelates(t *testing.T) {
	a := &Plan{Seed: 1, DropWakeup: 0.5}
	b := &Plan{Seed: 2, DropWakeup: 0.5}
	same := true
	for i := 0; i < 64 && same; i++ {
		same = a.DropWakeupAt(i, 0) == b.DropWakeupAt(i, 0)
	}
	if same {
		t.Fatal("plans with different seeds made identical decisions")
	}
}

// A nil plan injects nothing and never panics.
func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if p.Active() {
		t.Error("nil plan reports Active")
	}
	if p.DropWakeupAt(0, 0) || p.TimerFailsAt(0, 0) {
		t.Error("nil plan injected a fault")
	}
	if d := p.TimerDriftAt(0, 0); d != 0 {
		t.Errorf("nil plan drifted %v", d)
	}
	if _, ok := p.PreemptAt(0, 0); ok {
		t.Error("nil plan preempted")
	}
	if _, ok := p.StallAt(0, 0); ok {
		t.Error("nil plan stalled")
	}
	if p.RecoveryTimeout() != DefaultRecovery {
		t.Errorf("nil plan recovery = %v, want %v", p.RecoveryTimeout(), DefaultRecovery)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("nil plan failed validation: %v", err)
	}
	if s := p.String(); s != "none" {
		t.Errorf("nil plan String() = %q", s)
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("drop=0.2,timerfail=0.1,drift=200us,driftrate=0.5,preempt=0.01,recovery=100ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if p.DropWakeup != 0.2 || p.TimerFail != 0.1 || p.DriftRate != 0.5 || p.Seed != 7 {
		t.Errorf("parsed plan %+v", p)
	}
	if p.Drift != 200*sim.Microsecond {
		t.Errorf("drift = %v, want 200us", p.Drift)
	}
	if p.Recovery != 100*sim.Millisecond {
		t.Errorf("recovery = %v, want 100ms", p.Recovery)
	}
	if p.PreemptDelay == 0 {
		t.Error("preempt rate set but no default delay applied")
	}

	if p, err := Parse(""); err != nil || p != nil {
		t.Errorf("empty spec: got (%v, %v), want (nil, nil)", p, err)
	}
	if p, err := Parse("none"); err != nil || p != nil {
		t.Errorf("spec none: got (%v, %v), want (nil, nil)", p, err)
	}
	for _, bad := range []string{"drop", "drop=2", "drop=-1", "bogus=0.5", "drift=xyz", "seed=abc"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", bad)
		}
	}
	if _, err := Parse("bogus=1"); err == nil || !strings.Contains(err.Error(), "drop") {
		t.Errorf("unknown-key error should list accepted keys, got %v", err)
	}
}

// String renders in Parse syntax and round-trips to an equivalent plan.
func TestStringRoundTrips(t *testing.T) {
	p, err := Parse("drop=0.2,drift=200us,driftrate=0.5,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("Parse(String()) = %v (spec %q)", err, p.String())
	}
	if *q != *p {
		t.Errorf("round trip changed the plan: %+v vs %+v", p, q)
	}
}

func TestValidate(t *testing.T) {
	bad := []Plan{
		{DropWakeup: 1.5},
		{TimerFail: -0.1},
		{Drift: -1},
		{DriftRate: 0.5},   // rate without duration
		{PreemptRate: 0.5}, // rate without delay
		{StallRate: 0.5},   // rate without delay
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: %+v passed validation", i, p)
		}
	}
	ok := Plan{DropWakeup: 0.5, DriftRate: 0.5, Drift: sim.Microsecond}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}
