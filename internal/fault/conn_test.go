package fault

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// sinkConn records every Write it receives; reads and deadlines are
// inert. It stands in for the healthy half of a pipe.
type sinkConn struct {
	mu     sync.Mutex
	writes [][]byte
	closed bool
}

func (s *sinkConn) Write(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, net.ErrClosed
	}
	s.writes = append(s.writes, append([]byte(nil), b...))
	return len(b), nil
}

func (s *sinkConn) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *sinkConn) delivered() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]byte(nil), s.writes...)
}

func (s *sinkConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (s *sinkConn) LocalAddr() net.Addr              { return nil }
func (s *sinkConn) RemoteAddr() net.Addr             { return nil }
func (s *sinkConn) SetDeadline(time.Time) error      { return nil }
func (s *sinkConn) SetReadDeadline(time.Time) error  { return nil }
func (s *sinkConn) SetWriteDeadline(time.Time) error { return nil }

func frames(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte{byte(i), byte(i >> 8), 0xAA, 0xBB}
	}
	return out
}

// The same (seed, key) must deliver the identical fault pattern in every
// run: replay both the survivor set and the writer-visible results.
func TestFaultConnIsDeterministic(t *testing.T) {
	plan := &ConnPlan{Seed: 9, Drop: 0.3, Duplicate: 0.2}
	run := func() ([][]byte, []error) {
		sink := &sinkConn{}
		fc := plan.Wrap(sink, "client-1")
		var errs []error
		for _, f := range frames(200) {
			_, err := fc.Write(f)
			errs = append(errs, err)
		}
		return sink.delivered(), errs
	}
	d1, e1 := run()
	d2, e2 := run()
	if len(d1) != len(d2) {
		t.Fatalf("delivered %d vs %d frames across identical runs", len(d1), len(d2))
	}
	for i := range d1 {
		if string(d1[i]) != string(d2[i]) {
			t.Fatalf("frame %d differs across identical runs", i)
		}
	}
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) {
			t.Fatalf("write %d error differs across identical runs", i)
		}
	}
	if len(d1) == 200 {
		t.Fatal("drop rate 0.3 delivered every frame — faults not injected")
	}
}

func TestFaultConnKeyDecorrelates(t *testing.T) {
	plan := &ConnPlan{Seed: 9, Drop: 0.5}
	deliveredFor := func(key string) int {
		sink := &sinkConn{}
		fc := plan.Wrap(sink, key)
		for _, f := range frames(400) {
			fc.Write(f)
		}
		return len(sink.delivered())
	}
	a, b := deliveredFor("client-a"), deliveredFor("client-b")
	if a == b {
		// Equal counts alone are possible; compare the actual pattern.
		sinkA, sinkB := &sinkConn{}, &sinkConn{}
		fcA, fcB := plan.Wrap(sinkA, "client-a"), plan.Wrap(sinkB, "client-b")
		for _, f := range frames(400) {
			fcA.Write(f)
			fcB.Write(f)
		}
		da, db := sinkA.delivered(), sinkB.delivered()
		if len(da) == len(db) {
			same := true
			for i := range da {
				if string(da[i]) != string(db[i]) {
					same = false
					break
				}
			}
			if same {
				t.Fatal("two keys drew the identical 400-frame fault pattern")
			}
		}
	}
}

// A duplicated frame arrives exactly twice, back to back.
func TestFaultConnDuplicates(t *testing.T) {
	plan := &ConnPlan{Seed: 3, Duplicate: 1}
	sink := &sinkConn{}
	fc := plan.Wrap(sink, "dup")
	fc.Write([]byte("hello"))
	got := sink.delivered()
	if len(got) != 2 || string(got[0]) != "hello" || string(got[1]) != "hello" {
		t.Fatalf("duplicate=1 delivered %d frames: %q", len(got), got)
	}
}

// A partition is sticky: once entered, every later write is swallowed
// while still reporting success to the writer.
func TestFaultConnPartitionIsSticky(t *testing.T) {
	plan := &ConnPlan{Seed: 3, Partition: 1}
	sink := &sinkConn{}
	fc := plan.Wrap(sink, "part")
	for i := 0; i < 10; i++ {
		n, err := fc.Write([]byte("frame"))
		if err != nil || n != 5 {
			t.Fatalf("write %d: (%d, %v), want silent success", i, n, err)
		}
	}
	if got := sink.delivered(); len(got) != 0 {
		t.Fatalf("partitioned conn delivered %d frames", len(got))
	}
}

// A mid-frame close delivers a strict prefix and then kills the
// connection: the peer sees a torn frame, the writer an error.
func TestFaultConnMidClose(t *testing.T) {
	plan := &ConnPlan{Seed: 3, MidClose: 1}
	sink := &sinkConn{}
	fc := plan.Wrap(sink, "tear")
	payload := []byte("0123456789")
	_, err := fc.Write(payload)
	if err == nil {
		t.Fatal("mid-close write reported success")
	}
	got := sink.delivered()
	if len(got) != 1 || len(got[0]) >= len(payload) {
		t.Fatalf("mid-close delivered %d frames (first %d bytes), want one strict prefix", len(got), len(got[0]))
	}
	if _, err := fc.Write(payload); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write after mid-close: %v, want closed conn", err)
	}
}

func TestFaultConnDelayHolds(t *testing.T) {
	plan := &ConnPlan{Seed: 3, Delay: 1, DelayBy: 20 * time.Millisecond}
	sink := &sinkConn{}
	fc := plan.Wrap(sink, "slow")
	start := time.Now()
	fc.Write([]byte("x"))
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delayed write returned after %v, want >= 20ms", d)
	}
	if got := sink.delivered(); len(got) != 1 {
		t.Fatalf("delayed frame not delivered: %d frames", len(got))
	}
}

func TestConnPlanInactivePassesThrough(t *testing.T) {
	var nilPlan *ConnPlan
	sink := &sinkConn{}
	if got := nilPlan.Wrap(sink, "k"); got != net.Conn(sink) {
		t.Fatal("nil plan should return the conn unchanged")
	}
	if (&ConnPlan{Seed: 1}).Active() {
		t.Fatal("rate-free plan reported active")
	}
	if nilPlan.Active() {
		t.Fatal("nil plan reported active")
	}
}

func TestConnPlanValidate(t *testing.T) {
	if err := (&ConnPlan{Drop: 1.5}).Validate(); err == nil || !strings.Contains(err.Error(), "drop") {
		t.Fatalf("drop=1.5: %v", err)
	}
	if err := (&ConnPlan{Delay: 0.5}).Validate(); err == nil || !strings.Contains(err.Error(), "delayby") {
		t.Fatalf("delay without delayby: %v", err)
	}
	if err := (&ConnPlan{Drop: 0.5, Delay: 0.1, DelayBy: time.Millisecond}).Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	var nilPlan *ConnPlan
	if err := nilPlan.Validate(); err != nil {
		t.Fatalf("nil plan rejected: %v", err)
	}
}

// FaultListener keys each accepted connection by its accept index, so a
// deterministic dial order draws deterministic per-connection faults.
func TestFaultListenerKeysByAcceptOrder(t *testing.T) {
	plan := &ConnPlan{Seed: 5, Drop: 0.5}
	// net.Pipe-backed listener shim.
	inner := &stubListener{conns: make(chan net.Conn, 2)}
	l := NewFaultListener(inner, plan, "lis")
	c1, s1 := net.Pipe()
	c2, s2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	inner.conns <- s1
	inner.conns <- s2
	a1, _ := l.Accept()
	a2, _ := l.Accept()
	f1, ok1 := a1.(*FaultConn)
	f2, ok2 := a2.(*FaultConn)
	if !ok1 || !ok2 {
		t.Fatal("accepted conns not wrapped")
	}
	if f1.Key() != "lis/accept0" || f2.Key() != "lis/accept1" {
		t.Fatalf("keys %q, %q", f1.Key(), f2.Key())
	}
	s1.Close()
	s2.Close()
}

type stubListener struct{ conns chan net.Conn }

func (s *stubListener) Accept() (net.Conn, error) { return <-s.conns, nil }
func (s *stubListener) Close() error              { return nil }
func (s *stubListener) Addr() net.Addr            { return nil }
