// Package fault provides a seeded, deterministic fault-injection plan for
// the simulated machine's wake-up and scheduling paths: lost external
// wake-up invalidations, internal-timer drift and failure, preemption
// storms, and node stalls — the §3.3/§3.4 failure narrative of the paper
// turned into an executable experiment.
//
// Every decision is a pure function of (seed, fault kind, phase, thread):
// no mutable state, no draw ordering. Two runs with the same plan make
// identical decisions regardless of goroutine scheduling or worker-pool
// width, which is what keeps the bench artifacts byte-identical across -j
// and lets a chaos test replay the exact failure it found.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"thriftybarrier/internal/sim"
)

// DefaultRecovery is the OS-watchdog timeout that rescues a sleeper which
// lost every wake-up channel. It stands in for the paper's "unbounded"
// lateness: large enough to dominate any barrier interval, finite so runs
// terminate and the damage is measurable.
const DefaultRecovery = 50 * sim.Millisecond

// Plan describes which faults to inject and how often. The zero value (or
// a nil *Plan) injects nothing; every accessor is nil-safe so the machine
// can consult the plan unconditionally on its hot paths.
type Plan struct {
	// Seed decorrelates the plan's decisions from the workload's own
	// randomness. Two plans with different seeds fault different
	// (phase, thread) pairs at the same rates.
	Seed uint64

	// DropWakeup is the probability that a sleeper's external wake-up is
	// lost: the flag-flip invalidation reaches the node but its monitor
	// never fires (§3.3.1's lost-signal case). Under hybrid wake-up the
	// internal timer bounds the damage; under external-only wake-up the
	// sleeper is stranded until Recovery.
	DropWakeup float64

	// TimerFail is the probability that an armed internal timer never
	// fires (§3.3.2's timer-failure case). Under hybrid wake-up the
	// invalidation bounds the damage; under internal-only wake-up the
	// sleeper is stranded until Recovery.
	TimerFail float64

	// DriftRate is the probability that an internal timer drifts: it
	// fires Drift cycles later than programmed, modeling a slow or
	// miscalibrated countdown clock.
	DriftRate float64
	// Drift is the lateness added to a drifted timer.
	Drift sim.Cycles

	// PreemptRate is the per-(phase, thread) probability of an injected
	// OS preemption of PreemptDelay before reaching the barrier — the
	// §3.4.2 preemption storm.
	PreemptRate float64
	// PreemptDelay is the injected preemption length.
	PreemptDelay sim.Cycles

	// StallRate is the per-(phase, thread) probability of a long node
	// stall of StallDelay (page fault, I/O, NUMA hiccup): rare but large
	// interval inflations that stress the underprediction filter.
	StallRate float64
	// StallDelay is the injected stall length.
	StallDelay sim.Cycles

	// Recovery overrides DefaultRecovery: the timeout after which a
	// sleeper with no live wake-up channel is revived by the OS watchdog.
	Recovery sim.Cycles
}

// Fault kinds salt the hash so the same (phase, thread) pair draws
// independently for each decision.
const (
	kindDrop uint64 = iota + 1
	kindTimerFail
	kindDrift
	kindPreempt
	kindStall
)

// roll returns a uniform [0,1) variate that is a pure function of
// (seed, kind, phase, thread) — the shared SplitMix64 finalizer
// (source.go) over the mixed key. The mixing sequence is pinned: the
// committed ablation artifacts under results/ replay these exact
// decisions, so any change here would silently invalidate them.
func (p *Plan) roll(kind uint64, phase, thread int) float64 {
	z := p.Seed ^ kind*0x9E3779B97F4A7C15
	z ^= (uint64(phase) + 1) * 0xBF58476D1CE4E5B9
	z ^= (uint64(thread) + 1) * 0x94D049BB133111EB
	return unit(finalize64(z))
}

// Active reports whether the plan injects any fault at all.
func (p *Plan) Active() bool {
	return p != nil && (p.DropWakeup > 0 || p.TimerFail > 0 || p.DriftRate > 0 ||
		p.PreemptRate > 0 || p.StallRate > 0)
}

// DropWakeupAt decides whether thread's external wake-up is lost in phase.
func (p *Plan) DropWakeupAt(phase, thread int) bool {
	if p == nil || p.DropWakeup <= 0 {
		return false
	}
	return p.roll(kindDrop, phase, thread) < p.DropWakeup
}

// TimerFailsAt decides whether thread's internal timer fails in phase.
func (p *Plan) TimerFailsAt(phase, thread int) bool {
	if p == nil || p.TimerFail <= 0 {
		return false
	}
	return p.roll(kindTimerFail, phase, thread) < p.TimerFail
}

// TimerDriftAt returns the lateness of thread's internal timer in phase
// (zero when the timer is on time).
func (p *Plan) TimerDriftAt(phase, thread int) sim.Cycles {
	if p == nil || p.DriftRate <= 0 || p.Drift <= 0 {
		return 0
	}
	if p.roll(kindDrift, phase, thread) < p.DriftRate {
		return p.Drift
	}
	return 0
}

// PreemptAt returns the injected preemption delay for thread in phase.
func (p *Plan) PreemptAt(phase, thread int) (sim.Cycles, bool) {
	if p == nil || p.PreemptRate <= 0 || p.PreemptDelay <= 0 {
		return 0, false
	}
	if p.roll(kindPreempt, phase, thread) < p.PreemptRate {
		return p.PreemptDelay, true
	}
	return 0, false
}

// StallAt returns the injected node-stall delay for thread in phase.
func (p *Plan) StallAt(phase, thread int) (sim.Cycles, bool) {
	if p == nil || p.StallRate <= 0 || p.StallDelay <= 0 {
		return 0, false
	}
	if p.roll(kindStall, phase, thread) < p.StallRate {
		return p.StallDelay, true
	}
	return 0, false
}

// RecoveryTimeout returns the stranded-sleeper rescue timeout.
func (p *Plan) RecoveryTimeout() sim.Cycles {
	if p == nil || p.Recovery <= 0 {
		return DefaultRecovery
	}
	return p.Recovery
}

// Validate reports an error for a malformed plan.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"drop", p.DropWakeup}, {"timerfail", p.TimerFail}, {"driftrate", p.DriftRate},
		{"preempt", p.PreemptRate}, {"stall", p.StallRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	for _, d := range []struct {
		name string
		v    sim.Cycles
	}{
		{"drift", p.Drift}, {"preemptdelay", p.PreemptDelay},
		{"stalldelay", p.StallDelay}, {"recovery", p.Recovery},
	} {
		if d.v < 0 {
			return fmt.Errorf("fault: negative %s %v", d.name, d.v)
		}
	}
	if p.DriftRate > 0 && p.Drift == 0 {
		return fmt.Errorf("fault: driftrate set without a drift duration")
	}
	if p.PreemptRate > 0 && p.PreemptDelay == 0 {
		return fmt.Errorf("fault: preempt rate set without preemptdelay")
	}
	if p.StallRate > 0 && p.StallDelay == 0 {
		return fmt.Errorf("fault: stall rate set without stalldelay")
	}
	return nil
}

// String renders the plan in Parse's syntax (keys in fixed order), for
// labels and logs. A nil or inactive plan renders as "none".
func (p *Plan) String() string {
	if !p.Active() {
		return "none"
	}
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("drop", p.DropWakeup)
	add("timerfail", p.TimerFail)
	add("driftrate", p.DriftRate)
	if p.Drift > 0 {
		parts = append(parts, "drift="+p.Drift.Duration().String())
	}
	add("preempt", p.PreemptRate)
	if p.PreemptDelay > 0 {
		parts = append(parts, "preemptdelay="+p.PreemptDelay.Duration().String())
	}
	add("stall", p.StallRate)
	if p.StallDelay > 0 {
		parts = append(parts, "stalldelay="+p.StallDelay.Duration().String())
	}
	if p.Recovery > 0 {
		parts = append(parts, "recovery="+p.Recovery.Duration().String())
	}
	if p.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatUint(p.Seed, 10))
	}
	return strings.Join(parts, ",")
}

// parseKeys maps Parse's spec keys to setters, so the error message for an
// unknown key can list what is accepted.
var parseKeys = map[string]func(*Plan, string) error{
	"drop":         func(p *Plan, v string) error { return parseRate(v, &p.DropWakeup) },
	"timerfail":    func(p *Plan, v string) error { return parseRate(v, &p.TimerFail) },
	"driftrate":    func(p *Plan, v string) error { return parseRate(v, &p.DriftRate) },
	"drift":        func(p *Plan, v string) error { return parseCycles(v, &p.Drift) },
	"preempt":      func(p *Plan, v string) error { return parseRate(v, &p.PreemptRate) },
	"preemptdelay": func(p *Plan, v string) error { return parseCycles(v, &p.PreemptDelay) },
	"stall":        func(p *Plan, v string) error { return parseRate(v, &p.StallRate) },
	"stalldelay":   func(p *Plan, v string) error { return parseCycles(v, &p.StallDelay) },
	"recovery":     func(p *Plan, v string) error { return parseCycles(v, &p.Recovery) },
	"seed": func(p *Plan, v string) error {
		s, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", v)
		}
		p.Seed = s
		return nil
	},
}

// KnownKeys lists Parse's accepted keys, sorted — for usage diagnostics.
func KnownKeys() []string {
	keys := make([]string, 0, len(parseKeys))
	for k := range parseKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Parse builds a plan from a comma-separated key=value spec, e.g.
//
//	drop=0.2,timerfail=0.1,drift=200us,driftrate=0.5,recovery=100ms,seed=7
//
// Rates are fractions in [0,1]; durations use time.ParseDuration syntax
// and convert at the machine's 1 GHz nominal frequency. An empty spec
// returns a nil plan (no faults).
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	p := &Plan{}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("fault: %q is not key=value", kv)
		}
		set, known := parseKeys[strings.TrimSpace(k)]
		if !known {
			return nil, fmt.Errorf("fault: unknown key %q (want %s)", k, strings.Join(KnownKeys(), "|"))
		}
		if err := set(p, strings.TrimSpace(v)); err != nil {
			return nil, fmt.Errorf("fault: %w", err)
		}
	}
	// Delays for enabled fault classes default sensibly so a bare rate
	// ("preempt=0.01") is a usable spec.
	if p.DriftRate > 0 && p.Drift == 0 {
		p.Drift = 200 * sim.Microsecond
	}
	if p.PreemptRate > 0 && p.PreemptDelay == 0 {
		p.PreemptDelay = 5 * sim.Millisecond
	}
	if p.StallRate > 0 && p.StallDelay == 0 {
		p.StallDelay = 20 * sim.Millisecond
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseRate(v string, dst *float64) error {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 || f > 1 {
		return fmt.Errorf("bad rate %q (want a fraction in [0,1])", v)
	}
	*dst = f
	return nil
}

func parseCycles(v string, dst *sim.Cycles) error {
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return fmt.Errorf("bad duration %q", v)
	}
	*dst = sim.FromDuration(d)
	return nil
}
