package power

import (
	"testing"
	"testing/quick"

	"thriftybarrier/internal/sim"
)

func TestTable3MatchesPaper(t *testing.T) {
	states := Table3()
	if len(states) != 3 {
		t.Fatalf("Table 3 has %d states, want 3", len(states))
	}
	want := []struct {
		savings    float64
		transition sim.Cycles
		snoops     bool
		voltage    bool
	}{
		{0.702, 10 * sim.Microsecond, true, false},
		{0.792, 15 * sim.Microsecond, false, false},
		{0.978, 35 * sim.Microsecond, false, true},
	}
	for i, w := range want {
		s := states[i]
		if s.Savings != w.savings || s.Transition != w.transition ||
			s.Snoops != w.snoops || s.VoltageReduced != w.voltage {
			t.Errorf("state %d = %+v, want %+v", i, s, w)
		}
	}
	if err := Validate(states); err != nil {
		t.Fatalf("Table 3 fails validation: %v", err)
	}
}

func TestHaltOnly(t *testing.T) {
	states := HaltOnly()
	if len(states) != 1 || states[0].ID != Sleep1 {
		t.Fatalf("HaltOnly = %+v", states)
	}
}

func TestValidateRejectsDisorder(t *testing.T) {
	states := Table3()
	states[0], states[2] = states[2], states[0]
	if Validate(states) == nil {
		t.Error("reversed catalogue accepted")
	}
	//lint:ignore sleeptable deliberately invalid table exercising Validate
	bad := []SleepState{{Name: "x", Savings: 1.5, Transition: 1}}
	if Validate(bad) == nil {
		t.Error("savings > 1 accepted")
	}
	//lint:ignore sleeptable deliberately invalid table exercising Validate
	bad = []SleepState{{Name: "x", Savings: 0.5, Transition: 0}}
	if Validate(bad) == nil {
		t.Error("zero transition accepted")
	}
}

func TestGated(t *testing.T) {
	states := Table3()
	if states[0].Gated() {
		t.Error("Halt reported as gated")
	}
	if !states[1].Gated() || !states[2].Gated() {
		t.Error("Sleep2/Sleep3 not reported as gated")
	}
}

func TestTDPMaxDominates(t *testing.T) {
	m := DefaultModel()
	if m.TDPMax() <= m.ComputePower() {
		t.Fatalf("TDPmax %.1fW not above compute power %.1fW", m.TDPMax(), m.ComputePower())
	}
	if m.TDPMax() <= m.SpinPower() {
		t.Fatalf("TDPmax %.1fW not above spin power %.1fW", m.TDPMax(), m.SpinPower())
	}
}

func TestSpinPowerRatioMatchesPaper(t *testing.T) {
	// §4.3: spinloop power is about 85% of regular computation. The model
	// derives both from the activity vectors; verify the ratio emerges.
	m := DefaultModel()
	ratio := m.SpinPower() / m.ComputePower()
	if ratio < 0.80 || ratio > 0.90 {
		t.Fatalf("spin/compute power ratio = %.3f, want ~0.85 (paper)", ratio)
	}
}

func TestSleepPowerOrdering(t *testing.T) {
	m := DefaultModel()
	states := m.States()
	prev := m.ComputePower()
	for _, s := range states {
		p := m.SleepPower(s)
		if p >= prev {
			t.Fatalf("sleep power not decreasing with depth: %s = %.2fW (prev %.2fW)", s.Name, p, prev)
		}
		prev = p
	}
	// Sleep3 saves 97.8% of TDPmax.
	s3, _ := m.State(Sleep3)
	if got, want := m.SleepPower(s3), m.TDPMax()*0.022; got < want*0.99 || got > want*1.01 {
		t.Fatalf("Sleep3 power = %.3fW, want %.3fW", got, want)
	}
}

func TestTransitionPowerIsMidpoint(t *testing.T) {
	m := DefaultModel()
	s, _ := m.State(Sleep2)
	want := (m.ComputePower() + m.SleepPower(s)) / 2
	if got := m.TransitionPower(s); got != want {
		t.Fatalf("transition power = %v, want midpoint %v", got, want)
	}
}

func TestBestFitSelectsDeepestThatFits(t *testing.T) {
	m := DefaultModel()
	cases := []struct {
		stall sim.Cycles
		flush sim.Cycles
		want  StateID
		ok    bool
	}{
		{5 * sim.Microsecond, 0, ActiveState, false},              // too short for anything
		{25 * sim.Microsecond, 0, Sleep1, true},                   // fits Halt only (2*10us)
		{40 * sim.Microsecond, 0, Sleep2, true},                   // fits Sleep2 (2*15)
		{100 * sim.Microsecond, 0, Sleep3, true},                  // fits Sleep3 (2*35)
		{70 * sim.Microsecond, 0, Sleep3, true},                   // exactly 2*35
		{70 * sim.Microsecond, sim.Cycles(1), Sleep2, true},       // flush pushes Sleep3 out
		{33 * sim.Microsecond, 2 * sim.Microsecond, Sleep2, true}, // need 30+2

		{31 * sim.Microsecond, 5 * sim.Microsecond, Sleep1, true}, // flush pushes Sleep2 out
	}
	for _, tc := range cases {
		fit := m.BestFit(tc.stall, tc.flush)
		if fit.OK != tc.ok {
			t.Errorf("BestFit(%v,%v).OK = %v, want %v", tc.stall, tc.flush, fit.OK, tc.ok)
			continue
		}
		if fit.OK && fit.State.ID != tc.want {
			t.Errorf("BestFit(%v,%v) = %v, want %v", tc.stall, tc.flush, fit.State.ID, tc.want)
		}
	}
}

func TestBestFitHaltOnlyCatalogue(t *testing.T) {
	m := NewModel(DefaultUnitEnergies(), HaltOnly())
	fit := m.BestFit(sim.Second, 0)
	if !fit.OK || fit.State.ID != Sleep1 {
		t.Fatalf("Halt-only fit = %+v", fit)
	}
}

func TestBreakEvenPositiveAndOrdered(t *testing.T) {
	m := DefaultModel()
	var prev sim.Cycles = -1
	for _, s := range m.States() {
		be := m.BreakEven(s, 0)
		if be <= 0 || be == sim.MaxCycles {
			t.Fatalf("break-even for %s = %v", s.Name, be)
		}
		if be <= prev {
			// Deeper states have higher fixed cost => later break-even.
			t.Fatalf("break-even not increasing with depth: %s = %v (prev %v)", s.Name, be, prev)
		}
		prev = be
	}
	// Sleeping must actually pay off well before typical barrier intervals
	// (hundreds of microseconds to milliseconds).
	if prev > 200*sim.Microsecond {
		t.Fatalf("deepest break-even %v implausibly large", prev)
	}
}

// Property: BestFit never selects a state whose minimum need exceeds the
// stall, and always selects the deepest feasible one.
func TestBestFitProperty(t *testing.T) {
	m := DefaultModel()
	f := func(stallUs, flushUs uint16) bool {
		stall := sim.Cycles(stallUs) * sim.Microsecond
		flush := sim.Cycles(flushUs%50) * sim.Microsecond
		fit := m.BestFit(stall, flush)
		if fit.OK {
			need := 2 * fit.State.Transition
			if fit.State.Gated() {
				need += flush
			}
			if stall < need {
				return false
			}
		}
		// No deeper state should also fit.
		deeperFits := false
		for _, s := range m.States() {
			if fit.OK && s.Transition <= fit.State.Transition {
				continue
			}
			need := 2 * s.Transition
			if s.Gated() {
				need += flush
			}
			if stall >= need {
				deeperFits = true
			}
		}
		return !deeperFits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStateIDString(t *testing.T) {
	if Sleep1.String() != "Sleep1(Halt)" || ActiveState.String() != "Active" {
		t.Error("StateID.String mismatch")
	}
}

func TestModelStateLookup(t *testing.T) {
	m := DefaultModel()
	if _, ok := m.State(Sleep2); !ok {
		t.Error("Sleep2 not found")
	}
	if _, ok := m.State(ActiveState); ok {
		t.Error("ActiveState found in catalogue")
	}
}
