package power

import (
	"fmt"

	"thriftybarrier/internal/sim"
)

// UnitEnergies holds per-event energies (picojoules) for the major
// microarchitectural units of the modeled 1 GHz six-issue processor. The
// values are Wattch-flavored: chosen for plausible relative magnitudes, not
// absolute accuracy — the paper makes the same disclaimer about Wattch and
// therefore works entirely in ratios of a microbenchmarked TDPmax (§4.3).
type UnitEnergies struct {
	Fetch   float64 // per fetched instruction
	Decode  float64 // per decoded instruction
	RegFile float64 // per register file access (2 reads + 1 write folded)
	IntALU  float64 // per integer operation
	FPALU   float64 // per floating-point operation
	LSQ     float64 // per load/store queue operation
	L1      float64 // per L1 access
	L2      float64 // per L2 access
	Clock   float64 // clock tree + static, per cycle (always paid)
}

// DefaultUnitEnergies returns the unit energies used throughout the study.
// The clock-tree/static term dominates, as in Wattch's unconditional
// clocking style: application power is then a high fraction of TDPmax
// (~87% here), which is what makes even the light Halt state (29.8% of
// TDPmax residual) save most of the spin energy — the paper's Figure 5
// depends on exactly this ratio structure.
func DefaultUnitEnergies() UnitEnergies {
	return UnitEnergies{
		Fetch:   770,
		Decode:  580,
		RegFile: 960,
		IntALU:  1150,
		FPALU:   2300,
		LSQ:     770,
		L1:      1540,
		L2:      3100,
		Clock:   60000,
	}
}

// Activity is a per-cycle activity vector for the processor.
type Activity struct {
	IPC    float64 // instructions committed per cycle
	IntOps float64 // integer ops per cycle
	FPOps  float64 // FP ops per cycle
	MemOps float64 // loads+stores per cycle
	L1Acc  float64 // L1 accesses per cycle
	L2Acc  float64 // L2 accesses per cycle
}

// WorstCase is the activity mix of the TDPmax microbenchmark: all six issue
// slots busy every cycle with the most power-hungry sustainable mix
// (Table 1: 6 integer units, 4 FP units, 2 load/store ports).
func WorstCase() Activity {
	return Activity{IPC: 6, IntOps: 2, FPOps: 2, MemOps: 2, L1Acc: 2, L2Acc: 0.2}
}

// TypicalCompute is the average activity of the SPLASH-2-like compute
// phases: healthy ILP with a mixed integer/FP/memory profile.
func TypicalCompute() Activity {
	return Activity{IPC: 3.6, IntOps: 1.8, FPOps: 0.8, MemOps: 1.1, L1Acc: 1.1, L2Acc: 0.07}
}

// SpinActivity is the barrier spin loop: a dependent load-compare-branch
// chain over an L1-resident flag — issue rate bound by the L1 round trip,
// no FP. The paper measures its power at about 85% of regular computation
// (§4.3); with these unit energies the same ratio emerges from the model.
func SpinActivity() Activity {
	return Activity{IPC: 1.3, IntOps: 0.2, FPOps: 0, MemOps: 0.25, L1Acc: 0.25, L2Acc: 0}
}

// CyclePower converts an activity vector into watts at the nominal clock:
// pJ/cycle at 1 GHz is exactly mW, so watts = pJ/cycle * 1e-3... precisely,
// P = E_cycle[J] * f[Hz].
func (u UnitEnergies) CyclePower(a Activity) float64 {
	pj := u.Clock +
		a.IPC*(u.Fetch+u.Decode+u.RegFile) +
		a.IntOps*u.IntALU +
		a.FPOps*u.FPALU +
		a.MemOps*u.LSQ +
		a.L1Acc*u.L1 +
		a.L2Acc*u.L2
	return pj * 1e-12 * float64(sim.Frequency)
}

// Model is the calibrated power model used by the energy accounting layer:
// a TDPmax anchor from the microbenchmark, active/spin powers from the
// activity model, and Table 3 sleep powers derived — as the paper does —
// by applying the published savings ratios to TDPmax.
type Model struct {
	units  UnitEnergies
	tdpMax float64
	states []SleepState
}

// NewModel microbenchmarks TDPmax with the worst-case activity mix and
// builds a model over the given sleep-state catalogue.
func NewModel(units UnitEnergies, states []SleepState) *Model {
	if err := Validate(states); err != nil {
		panic(err)
	}
	return &Model{
		units:  units,
		tdpMax: units.CyclePower(WorstCase()),
		states: states,
	}
}

// DefaultModel builds the model used throughout the evaluation: default
// unit energies and the full Table 3 catalogue.
func DefaultModel() *Model {
	return NewModel(DefaultUnitEnergies(), Table3())
}

// TDPMax reports the microbenchmarked maximum thermal design power.
func (m *Model) TDPMax() float64 { return m.tdpMax }

// States returns the sleep-state catalogue (shallow to deep).
func (m *Model) States() []SleepState { return m.states }

// State looks up a sleep state by ID.
func (m *Model) State(id StateID) (SleepState, bool) {
	for _, s := range m.states {
		if s.ID == id {
			return s, true
		}
	}
	return SleepState{}, false
}

// ActivePower reports power for an arbitrary activity vector.
func (m *Model) ActivePower(a Activity) float64 { return m.units.CyclePower(a) }

// ComputePower is the power of the typical compute mix.
func (m *Model) ComputePower() float64 { return m.units.CyclePower(TypicalCompute()) }

// SpinPower is the power of the barrier spin loop.
func (m *Model) SpinPower() float64 { return m.units.CyclePower(SpinActivity()) }

// SleepPower derives the residency power of a sleep state from its Table 3
// savings ratio: P_sleep = TDPmax * (1 - savings).
func (m *Model) SleepPower(s SleepState) float64 {
	return m.tdpMax * (1 - s.Savings)
}

// TransitionPower is the average power during a transition in or out of s.
// The paper assumes power changes linearly along the transition latency
// (§4.3), so the average is the midpoint between compute and sleep power.
func (m *Model) TransitionPower(s SleepState) float64 {
	return (m.ComputePower() + m.SleepPower(s)) / 2
}

// FitResult is the outcome of the sleep() best-fit scan.
type FitResult struct {
	// State is the selected sleep state; meaningful only if OK.
	State SleepState
	// OK reports whether any state fits the predicted stall.
	OK bool
	// MinStall is the smallest stall that the selected state requires
	// (enter + exit + flush); useful for diagnostics.
	MinStall sim.Cycles
}

// BestFit scans the catalogue for the deepest sleep state usable within the
// predicted stall time (§3.1): the stall must cover entering and leaving
// the state plus, for gated states, the dirty-data flush. flushTime is the
// caller's estimate of the flush latency for gated states (0 for none).
// If no state fits, the thread spins the traditional way.
func (m *Model) BestFit(predictedStall, flushTime sim.Cycles) FitResult {
	var best FitResult
	for _, s := range m.states {
		need := 2 * s.Transition
		if s.Gated() {
			need += flushTime
		}
		if predictedStall >= need {
			best = FitResult{State: s, OK: true, MinStall: need}
		}
	}
	return best
}

// BreakEven reports the stall time beyond which sleeping in s saves energy
// versus spinning, given the flush time: the point where spin energy equals
// transition + sleep energy. Used by tests and the documentation to sanity
// check the catalogue.
func (m *Model) BreakEven(s SleepState, flushTime sim.Cycles) sim.Cycles {
	spinP := m.SpinPower()
	sleepP := m.SleepPower(s)
	transP := m.TransitionPower(s)
	if spinP <= sleepP {
		return sim.MaxCycles
	}
	// spinP*T = transP*2L + computeP*flush + sleepP*(T - 2L - flush)
	// T (spinP - sleepP) = 2L(transP - sleepP) + flush*(computeP - sleepP)
	num := 2*float64(s.Transition)*(transP-sleepP) + float64(flushTime)*(m.ComputePower()-sleepP)
	t := num / (spinP - sleepP)
	if t < 0 {
		return 0
	}
	return sim.Cycles(t)
}

// String summarizes the model for diagnostics and the Table 3 harness.
func (m *Model) String() string {
	return fmt.Sprintf("power.Model{TDPmax=%.1fW compute=%.1fW spin=%.1fW states=%d}",
		m.tdpMax, m.ComputePower(), m.SpinPower(), len(m.states))
}
