// Package power models processor power: an activity-based (Wattch-flavored)
// dynamic power model calibrated against a microbenchmarked maximum thermal
// design power (TDPmax), and the catalogue of ACPI-like low-power sleep
// states from Table 3 of the paper, including the best-fit selection scan
// performed by the sleep() library call (§3.1).
package power

import (
	"fmt"

	"thriftybarrier/internal/sim"
)

// StateID identifies a sleep state. ActiveState means "not asleep".
type StateID int

const (
	// ActiveState is normal execution (no sleep state).
	ActiveState StateID = iota
	// Sleep1 is the light Halt state: caches still snoop.
	Sleep1
	// Sleep2 gates the caches (no snooping) without lowering voltage.
	Sleep2
	// Sleep3 gates the caches and lowers the supply voltage.
	Sleep3
)

func (s StateID) String() string {
	switch s {
	case ActiveState:
		return "Active"
	case Sleep1:
		return "Sleep1(Halt)"
	case Sleep2:
		return "Sleep2"
	case Sleep3:
		return "Sleep3"
	default:
		return fmt.Sprintf("StateID(%d)", int(s))
	}
}

// SleepState describes one low-power state, mirroring a row of Table 3.
type SleepState struct {
	ID StateID
	// Name is the table label.
	Name string
	// Savings is the power saving relative to TDPmax (Table 3: "P. Savings").
	Savings float64
	// Transition is the latency to enter the state, and equally to leave it
	// (Table 3: "Tr. Latency"). The exit transition lies fully on the
	// critical path when external wake-up triggers (§3.3.1).
	Transition sim.Cycles
	// Snoops reports whether the cache still responds to protocol requests
	// while asleep (Table 3: "Snoop?"). States that do not snoop require a
	// dirty-data flush before entry and clean-invalidation buffering by the
	// cache controller (§3.1).
	Snoops bool
	// VoltageReduced reports whether the supply voltage is lowered
	// (Table 3: "V. Reduction?"), which additionally cuts leakage.
	VoltageReduced bool
}

// Gated reports whether entering this state requires flushing dirty data
// (the cache cannot respond to protocol interventions).
func (s SleepState) Gated() bool { return !s.Snoops }

// Table3 returns the three sleep states of the paper's Table 3, inspired by
// the low-power states of the Intel Pentium family: Halt (70.2% savings,
// 10 us), Sleep2 (79.2%, 15 us), Sleep3 (97.8%, 35 us, voltage reduction).
func Table3() []SleepState {
	return []SleepState{
		{ID: Sleep1, Name: "Sleep1 (Halt)", Savings: 0.702, Transition: 10 * sim.Microsecond, Snoops: true},
		{ID: Sleep2, Name: "Sleep2", Savings: 0.792, Transition: 15 * sim.Microsecond, Snoops: false},
		{ID: Sleep3, Name: "Sleep3", Savings: 0.978, Transition: 35 * sim.Microsecond, Snoops: false, VoltageReduced: true},
	}
}

// HaltOnly returns a catalogue containing only the Halt state — the
// Thrifty-Halt and Oracle-Halt configurations of the evaluation.
func HaltOnly() []SleepState { return Table3()[:1] }

// Validate checks a sleep-state catalogue for monotonicity: deeper states
// must save more and take longer to transition, as the best-fit scan
// assumes (§3.1).
func Validate(states []SleepState) error {
	for i, s := range states {
		if s.Savings <= 0 || s.Savings > 1 {
			return fmt.Errorf("power: state %s savings %v out of (0,1]", s.Name, s.Savings)
		}
		if s.Transition <= 0 {
			return fmt.Errorf("power: state %s non-positive transition", s.Name)
		}
		if i > 0 {
			prev := states[i-1]
			if s.Savings < prev.Savings || s.Transition < prev.Transition {
				return fmt.Errorf("power: states not ordered shallow-to-deep at %s", s.Name)
			}
		}
	}
	return nil
}
