// Package load is a small, stdlib-only package loader for the analysis
// driver: the subset of golang.org/x/tools/go/packages that cmd/thriftyvet
// and the analysistest harness need. It resolves "./..."-style patterns
// inside this module, parses each package with comments, and type-checks
// it with full types.Info.
//
// Imports are resolved without a network or module cache:
//
//   - module-local import paths (thriftybarrier/...) are type-checked
//     recursively from source, without test files, and cached;
//   - any other path is first looked up under the configured GOPATH-style
//     source roots (the analysistest testdata/src layout), then handed to
//     go/importer's "source" importer, which type-checks the standard
//     library from GOROOT/src.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path; external test packages get the
	// conventional "_test" suffix.
	Path string
	// Name is the package name from the source files.
	Name string
	// Dir is the directory holding the source files.
	Dir   string
	Files []*ast.File
	Fset  *token.FileSet
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects every type-checking error in the package's own
	// files (errors in dependencies surface as import errors here too).
	TypeErrors []error
}

// Config parameterizes a load session.
type Config struct {
	// ModulePath and ModuleDir anchor module-local import resolution
	// (e.g. "thriftybarrier" -> the repository root).
	ModulePath string
	ModuleDir  string
	// SrcRoots are GOPATH-style roots searched before the standard
	// library for non-module import paths: an import "a/b" resolves to
	// <root>/a/b. Used by analysistest for testdata/src fixtures.
	SrcRoots []string
	// IncludeTests adds in-package _test.go files to each target package
	// and loads external (pkg_test) test packages alongside.
	IncludeTests bool
}

// Loader carries the caches of one load session. A single Loader should
// be reused across packages: the standard-library source importer is by
// far the most expensive part and caches internally.
type Loader struct {
	cfg    Config
	fset   *token.FileSet
	source types.Importer
	// deps caches module-local dependency packages (type-checked without
	// test files). loading guards against import cycles.
	deps    map[string]*types.Package
	loading map[string]bool
}

// NewLoader validates cfg and prepares a session.
func NewLoader(cfg Config) (*Loader, error) {
	if cfg.ModulePath == "" || cfg.ModuleDir == "" {
		return nil, fmt.Errorf("load: ModulePath and ModuleDir are required")
	}
	fset := token.NewFileSet()
	return &Loader{
		cfg:     cfg,
		fset:    fset,
		source:  importer.ForCompiler(fset, "source", nil),
		deps:    map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

// Fset returns the session's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModuleRoot locates the enclosing module: it walks up from dir to the
// first directory containing go.mod and returns that directory and the
// module path declared in it.
func ModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("load: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load resolves the patterns and returns the type-checked packages,
// sorted by import path. Supported patterns: "./..." and "./dir/..."
// walks, "./dir" and "dir" directories relative to the module root, and
// plain import paths resolvable through the module or the source roots.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]string{} // import path -> dir
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.cfg.ModuleDir, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dir, _, err := l.resolve(base)
			if err != nil {
				return nil, err
			}
			if err := l.walk(dir, dirs); err != nil {
				return nil, err
			}
		default:
			dir, path, err := l.resolve(pat)
			if err != nil {
				return nil, err
			}
			dirs[path] = dir
		}
	}
	paths := make([]string, 0, len(dirs))
	for p := range dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var pkgs []*Package
	for _, path := range paths {
		got, err := l.loadDir(path, dirs[path])
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	return pkgs, nil
}

// resolve maps one non-wildcard pattern to (dir, import path).
func (l *Loader) resolve(pat string) (dir, path string, err error) {
	clean := strings.TrimPrefix(pat, "./")
	if clean == "." || clean == "" {
		return l.cfg.ModuleDir, l.cfg.ModulePath, nil
	}
	// A directory inside the module?
	cand := filepath.Join(l.cfg.ModuleDir, filepath.FromSlash(clean))
	if st, err := os.Stat(cand); err == nil && st.IsDir() && !strings.HasPrefix(clean, l.cfg.ModulePath) {
		return cand, l.cfg.ModulePath + "/" + filepath.ToSlash(clean), nil
	}
	// A module-local import path?
	if clean == l.cfg.ModulePath {
		return l.cfg.ModuleDir, clean, nil
	}
	if rest, ok := strings.CutPrefix(clean, l.cfg.ModulePath+"/"); ok {
		return filepath.Join(l.cfg.ModuleDir, filepath.FromSlash(rest)), clean, nil
	}
	// A source-root (testdata) import path?
	for _, root := range l.cfg.SrcRoots {
		cand := filepath.Join(root, filepath.FromSlash(clean))
		if st, err := os.Stat(cand); err == nil && st.IsDir() {
			return cand, clean, nil
		}
	}
	return "", "", fmt.Errorf("load: cannot resolve pattern %q", pat)
}

// walk collects every package directory under root (go-style: testdata,
// vendor, and _/. prefixed directories are skipped).
func (l *Loader) walk(root string, dirs map[string]string) error {
	return filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.cfg.ModuleDir, p)
		if err != nil {
			return err
		}
		path := l.cfg.ModulePath
		if rel != "." {
			path = l.cfg.ModulePath + "/" + filepath.ToSlash(rel)
		}
		dirs[path] = p
		return nil
	})
}

// parseDir parses the buildable .go files of dir into three groups:
// the primary package files, its in-package tests, and external
// (name_test) test files.
func (l *Loader) parseDir(dir string) (primary, tests, xtests []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	ctxt := build.Default
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		ok, err := ctxt.MatchFile(dir, name)
		if err != nil {
			return nil, nil, nil, err
		}
		if ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var primaryName string
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		switch {
		case strings.HasSuffix(name, "_test.go") && strings.HasSuffix(f.Name.Name, "_test"):
			xtests = append(xtests, f)
		case strings.HasSuffix(name, "_test.go"):
			tests = append(tests, f)
		default:
			if primaryName == "" {
				primaryName = f.Name.Name
			} else if f.Name.Name != primaryName {
				return nil, nil, nil, fmt.Errorf("load: %s: conflicting package names %s and %s", dir, primaryName, f.Name.Name)
			}
			primary = append(primary, f)
		}
	}
	return primary, tests, xtests, nil
}

// loadDir type-checks the package(s) in dir for analysis: the primary
// package (with in-package tests when configured) and, when present and
// requested, the external test package.
func (l *Loader) loadDir(path, dir string) ([]*Package, error) {
	primary, tests, xtests, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*Package
	files := primary
	if l.cfg.IncludeTests {
		files = append(append([]*ast.File{}, primary...), tests...)
	}
	if len(files) > 0 {
		pkg, err := l.check(path, dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if l.cfg.IncludeTests && len(xtests) > 0 {
		pkg, err := l.check(path+"_test", dir, xtests)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// check type-checks one file group as an analysis target.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var errs []error
	conf := types.Config{
		Importer: (*depImporter)(l),
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	return &Package{
		Path:       path,
		Name:       files[0].Name.Name,
		Dir:        dir,
		Files:      files,
		Fset:       l.fset,
		Types:      tpkg,
		Info:       info,
		TypeErrors: errs,
	}, nil
}

// depImporter resolves imports for the type checker.
type depImporter Loader

func (imp *depImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(imp)
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	dir, ok := l.depDir(path)
	if !ok {
		return l.source.Import(path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	primary, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(primary) == 0 {
		return nil, fmt.Errorf("load: no buildable Go files in %s", dir)
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, primary, nil)
	if err != nil {
		return nil, fmt.Errorf("load: dependency %s: %w", path, err)
	}
	_ = errs
	l.deps[path] = tpkg
	return tpkg, nil
}

// depDir maps an import path to a source directory, or reports that the
// path is not ours (standard library).
func (l *Loader) depDir(path string) (string, bool) {
	if path == l.cfg.ModulePath {
		return l.cfg.ModuleDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.cfg.ModulePath+"/"); ok {
		return filepath.Join(l.cfg.ModuleDir, filepath.FromSlash(rest)), true
	}
	for _, root := range l.cfg.SrcRoots {
		cand := filepath.Join(root, filepath.FromSlash(path))
		if st, err := os.Stat(cand); err == nil && st.IsDir() {
			return cand, true
		}
	}
	return "", false
}
