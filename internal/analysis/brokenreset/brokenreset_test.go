package brokenreset_test

import (
	"testing"

	"thriftybarrier/internal/analysis/analysistest"
	"thriftybarrier/internal/analysis/brokenreset"
)

func TestBrokenReset(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), brokenreset.Analyzer, "brokenreset")
}
