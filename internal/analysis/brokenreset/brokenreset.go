// Package brokenreset enforces the broken-barrier protocol at call sites:
// the error results of WaitContext, WaitSiteContext and LockContext must
// not be discarded, and a branch that identifies thrifty.ErrBroken must
// either Reset() the barrier or stop using it.
//
// Once a generation breaks, every Wait variant fails fast with ErrBroken
// until Reset re-arms the barrier. Discarding the error — or logging it
// and looping back to Wait — therefore turns one cancellation into a
// permanent, silent livelock: each iteration returns ErrBroken
// immediately and no rendezvous ever completes again. The analyzer flags:
//
//  1. call statements (including go/defer) whose error result is
//     discarded, and assignments of it to blank;
//  2. if/switch branches selecting ErrBroken (via errors.Is or ==) whose
//     body neither calls Reset nor leaves the barrier's use (return,
//     break, goto, panic, os.Exit, log.Fatal*, testing.Fatal*).
package brokenreset

import (
	"go/ast"
	"go/token"
	"go/types"

	"thriftybarrier/internal/analysis"
)

// Analyzer is the brokenreset analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "brokenreset",
	Doc: "flags discarded WaitContext/LockContext errors and ErrBroken " +
		"branches that neither Reset the barrier nor stop using it",
	Run: run,
}

// errMethods maps the error-returning rendezvous methods to their
// receiver type.
var errMethods = map[string]string{
	"WaitContext":     "Barrier",
	"WaitSiteContext": "Barrier",
	"LockContext":     "Mutex",
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// errCall reports whether call is one of the guarded methods, with
	// its display name.
	errCall := func(call *ast.CallExpr) (string, bool) {
		recv, method, ok := analysis.ReceiverOf(info, call)
		if !ok {
			return "", false
		}
		typeName, guarded := errMethods[method]
		if !guarded || !analysis.IsNamed(recv, analysis.ThriftyPkg, typeName) {
			return "", false
		}
		return "(*thrifty." + typeName + ")." + method, true
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := errCall(call); ok {
						pass.Reportf(call.Pos(), "result of %s is discarded: a broken or cancelled rendezvous goes unnoticed (check the error; ErrBroken requires Reset)", name)
					}
				}
			case *ast.GoStmt:
				if name, ok := errCall(n.Call); ok {
					pass.Reportf(n.Call.Pos(), "result of %s is discarded by go statement: a broken or cancelled rendezvous goes unnoticed", name)
				}
			case *ast.DeferStmt:
				if name, ok := errCall(n.Call); ok {
					pass.Reportf(n.Call.Pos(), "result of %s is discarded by defer statement: a broken or cancelled rendezvous goes unnoticed", name)
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || len(n.Lhs) != len(n.Rhs) {
						continue
					}
					name, guarded := errCall(call)
					if !guarded {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						pass.Reportf(call.Pos(), "result of %s is assigned to blank: a broken or cancelled rendezvous goes unnoticed", name)
					}
				}
			case *ast.IfStmt:
				if isErrBrokenTest(info, n.Cond) && !handlesBroken(info, n.Body.List) {
					pass.Reportf(n.Cond.Pos(), "ErrBroken branch neither calls Reset nor stops using the barrier: every later Wait fails fast with ErrBroken (call Reset, or return/propagate the error)")
				}
			case *ast.CaseClause:
				for _, e := range n.List {
					if isErrBrokenTest(info, e) && !handlesBroken(info, n.Body) {
						pass.Reportf(e.Pos(), "ErrBroken case neither calls Reset nor stops using the barrier: every later Wait fails fast with ErrBroken (call Reset, or return/propagate the error)")
					}
				}
			}
			return true
		})
	}
	return nil
}

// isErrBrokenTest recognizes `errors.Is(err, thrifty.ErrBroken)` and
// `err == thrifty.ErrBroken` (either operand order).
func isErrBrokenTest(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if analysis.IsPkgFunc(info, e, "errors", "Is") && len(e.Args) == 2 {
			return isErrBroken(info, e.Args[1])
		}
	case *ast.BinaryExpr:
		if e.Op == token.EQL {
			return isErrBroken(info, e.X) || isErrBroken(info, e.Y)
		}
	case *ast.ParenExpr:
		return isErrBrokenTest(info, e.X)
	}
	return false
}

func isErrBroken(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == analysis.ThriftyPkg && obj.Name() == "ErrBroken"
}

// handlesBroken reports whether the branch body resolves a broken
// barrier: a Reset call, or any statement that abandons the barrier's
// use.
func handlesBroken(info *types.Info, body []ast.Stmt) bool {
	handled := false
	for _, s := range body {
		ast.Inspect(s, func(n ast.Node) bool {
			if handled {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // separate control flow
			case *ast.ReturnStmt:
				handled = true
			case *ast.BranchStmt:
				if n.Tok == token.BREAK || n.Tok == token.GOTO {
					handled = true
				}
			case *ast.CallExpr:
				if analysis.IsMethodCall(info, n, analysis.ThriftyPkg, "Barrier", "Reset") {
					handled = true
					break
				}
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
					handled = true
					break
				}
				if analysis.IsPkgFunc(info, n, "os", "Exit") ||
					analysis.IsPkgFunc(info, n, "log", "Fatal") ||
					analysis.IsPkgFunc(info, n, "log", "Fatalf") ||
					analysis.IsPkgFunc(info, n, "log", "Fatalln") {
					handled = true
					break
				}
				if recv, method, ok := analysis.ReceiverOf(info, n); ok &&
					(method == "Fatal" || method == "Fatalf" || method == "FailNow") &&
					analysis.IsNamed(recv, "testing", "T") {
					handled = true
				}
			}
			return !handled
		})
		if handled {
			return true
		}
	}
	return false
}
