// Package atomicmix exercises the atomicmix analyzer: struct fields
// reached by both sync/atomic operations and plain accesses are flagged
// at every plain site; fields accessed uniformly (all-atomic, all-plain,
// or through the typed atomics) stay clean.
package atomicmix

import "sync/atomic"

// Counter mixes accesses to word: bump goes through sync/atomic, the
// reads and the reset below do not.
type Counter struct {
	word uint64
}

func (c *Counter) bump() {
	atomic.AddUint64(&c.word, 1)
}

func (c *Counter) flaggedRead() uint64 {
	return c.word // want `plain access of field \(atomicmix\.Counter\)\.word, which is updated through sync/atomic`
}

func (c *Counter) flaggedWrite() {
	c.word = 0 // want `plain access of field \(atomicmix\.Counter\)\.word, which is updated through sync/atomic`
}

func (c *Counter) flaggedAliased() *uint64 {
	return &c.word // want `plain access of field \(atomicmix\.Counter\)\.word, which is updated through sync/atomic`
}

// allAtomic is clean: every access of n goes through sync/atomic.
type allAtomic struct {
	n uint64
}

func (a *allAtomic) inc() { atomic.AddUint64(&a.n, 1) }

func (a *allAtomic) load() uint64 { return atomic.LoadUint64(&a.n) }

// allPlain is clean: no atomic access anywhere, so plain reads are just
// ordinary (presumably externally synchronized) field access.
type allPlain struct {
	n uint64
}

func (p *allPlain) touch() uint64 {
	p.n++
	return p.n
}

// typed is clean: atomic.Uint64 cannot be accessed plainly at all, so
// selecting the field as a method receiver is not a mixed access.
type typed struct {
	ctr atomic.Uint64
}

func (t *typed) inc() { t.ctr.Add(1) }

func (t *typed) load() uint64 { return t.ctr.Load() }
