// Golden cases for the sleeptable analyzer: Table 3-shaped sleep-state
// catalogues must be monotone, and every state must fit the cut-off
// window when one is configured alongside.
package sleeptable

import (
	"thriftybarrier/internal/power"
	"thriftybarrier/internal/sim"
)

// simConfig mirrors the shape of a simulator configuration carrying a
// catalogue, a cut-off fraction, and a nominal barrier interval.
type simConfig struct {
	Cutoff float64
	BIT    sim.Cycles
	States []power.SleepState
}

var flaggedNonMonotoneLatency = []power.SleepState{
	{ID: power.Sleep1, Name: "Halt", Savings: 0.70, Transition: 10 * sim.Microsecond, Snoops: true},
	{ID: power.Sleep2, Name: "S2", Savings: 0.79, Transition: 8 * sim.Microsecond}, // want `transition latency .* not strictly greater than previous`
}

var flaggedNonMonotonePower = []power.SleepState{
	{ID: power.Sleep1, Name: "Halt", Savings: 0.70, Transition: 10 * sim.Microsecond, Snoops: true},
	{ID: power.Sleep2, Name: "S2", Savings: 0.60, Transition: 15 * sim.Microsecond}, // want `power saving .* not strictly greater than previous`
}

var flaggedEqualLatency = []power.SleepState{
	{ID: power.Sleep1, Name: "Halt", Savings: 0.70, Transition: 10 * sim.Microsecond, Snoops: true},
	{ID: power.Sleep2, Name: "S2", Savings: 0.79, Transition: 10 * sim.Microsecond}, // want `transition latency .* not strictly greater than previous`
}

var flaggedBadSavings = []power.SleepState{
	{ID: power.Sleep1, Name: "Halt", Savings: 1.5, Transition: 10 * sim.Microsecond}, // want `savings .* outside \(0,1\]`
}

var flaggedZeroTransition = []power.SleepState{
	{ID: power.Sleep1, Name: "Halt", Savings: 0.70, Transition: 0}, // want `non-positive transition latency`
}

// The deepest state's round trip (2×350µs) exceeds 10% of the 1ms
// nominal interval: the §3.3.3 cut-off would disable any site using it.
var flaggedCutoff = simConfig{
	Cutoff: 0.10,
	BIT:    1 * sim.Millisecond,
	States: []power.SleepState{
		{ID: power.Sleep1, Name: "Halt", Savings: 0.70, Transition: 10 * sim.Microsecond, Snoops: true},
		{ID: power.Sleep3, Name: "Deep", Savings: 0.97, Transition: 350 * sim.Microsecond}, // want `round-trip latency 700000 exceeds the cut-off window 100000`
	},
}

// --- clean cases ---

var cleanTable3 = []power.SleepState{
	{ID: power.Sleep1, Name: "Sleep1 (Halt)", Savings: 0.702, Transition: 10 * sim.Microsecond, Snoops: true},
	{ID: power.Sleep2, Name: "Sleep2", Savings: 0.792, Transition: 15 * sim.Microsecond},
	{ID: power.Sleep3, Name: "Sleep3", Savings: 0.978, Transition: 35 * sim.Microsecond, VoltageReduced: true},
}

var cleanWithinCutoff = simConfig{
	Cutoff: 0.10,
	BIT:    1 * sim.Millisecond,
	States: []power.SleepState{
		{ID: power.Sleep1, Name: "Halt", Savings: 0.70, Transition: 10 * sim.Microsecond, Snoops: true},
		{ID: power.Sleep3, Name: "Deep", Savings: 0.97, Transition: 35 * sim.Microsecond},
	},
}

// Non-constant fields are out of scope for the static check.
func cleanDynamic(t sim.Cycles) []power.SleepState {
	return []power.SleepState{
		{ID: power.Sleep1, Name: "Halt", Savings: 0.70, Transition: t},
		{ID: power.Sleep2, Name: "S2", Savings: 0.79, Transition: t / 2},
	}
}
