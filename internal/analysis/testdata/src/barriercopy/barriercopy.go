// Golden cases for the barriercopy analyzer: thrifty.Barrier and
// thrifty.Mutex values must never be copied.
package barriercopy

import (
	"thriftybarrier/thrifty"
)

// wrapped embeds a Barrier by value: copying wrapped copies the barrier.
type wrapped struct {
	b thrifty.Barrier
	n int
}

func flaggedAssignments() {
	b := thrifty.New(4, thrifty.Options{})
	copied := *b // want `assignment copies thrifty\.Barrier by value`
	_ = copied

	var m thrifty.Mutex
	m2 := m // want `assignment copies thrifty\.Mutex by value`
	_ = m2

	var w wrapped
	w2 := w // want `assignment copies thrifty\.Barrier by value`
	_ = w2
}

func flaggedParams(b thrifty.Barrier) { // want `function takes thrifty\.Barrier by value`
	_ = b
}

func flaggedResult() thrifty.Mutex { // want `function returns thrifty\.Mutex by value`
	var m thrifty.Mutex
	return m
}

func flaggedCall() {
	var m thrifty.Mutex
	use(m) // want `call passes thrifty\.Mutex by value`
}

func use(any interface{}) { _ = any }

func flaggedRange() {
	barriers := make([]thrifty.Barrier, 3)
	for _, b := range barriers { // want `range copies thrifty\.Barrier by value`
		_ = b
	}
}

func suppressed() {
	var m thrifty.Mutex
	//lint:ignore barriercopy fixture demonstrating directive suppression
	m3 := m
	_ = m3
}

// --- clean cases: pointers and fresh construction are fine ---

func cleanPointer() *thrifty.Barrier {
	b := thrifty.New(4, thrifty.Options{})
	takePtr(b)
	var m thrifty.Mutex
	takeMutexPtr(&m)
	return b
}

func takePtr(b *thrifty.Barrier)    { b.Wait() }
func takeMutexPtr(m *thrifty.Mutex) { m.Lock(); m.Unlock() }

func cleanConstruction() {
	// A composite literal constructs; it does not copy a live value.
	var m thrifty.Mutex
	_ = &m
	opts := thrifty.Options{Cutoff: 0.1}
	_ = opts // Options holds no lock state: copying it is fine.
	ptrs := make([]*thrifty.Barrier, 2)
	for _, p := range ptrs { // pointers: no copy of the barrier itself
		_ = p
	}
}
