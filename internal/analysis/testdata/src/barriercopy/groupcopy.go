// Golden cases for the thrifty.Group half of barriercopy: a Group is a
// handle to a live sharded registry and must never be copied — two
// copies that diverge resolve the same barrier names to different
// barriers, and a rendezvous split across them never completes.
package barriercopy

import (
	"thriftybarrier/thrifty"
)

// groupHolder embeds a Group by value: copying groupHolder copies it.
type groupHolder struct {
	g    thrifty.Group
	name string
}

func flaggedGroupAssignment() {
	g := thrifty.NewGroup(0)
	copied := *g // want `assignment copies thrifty\.Group by value`
	_ = copied

	var h groupHolder
	h2 := h // want `assignment copies thrifty\.Group by value`
	_ = h2
}

func flaggedGroupParam(g thrifty.Group) { // want `function takes thrifty\.Group by value`
	_ = g
}

func flaggedGroupCall() {
	g := thrifty.NewGroup(0)
	use(*g) // want `call passes thrifty\.Group by value`
}

// --- clean cases: pointer handles resolve against one shared registry ---

func cleanGroupPointer() {
	g := thrifty.NewGroup(0)
	resolveAndWait(g)
}

func resolveAndWait(g *thrifty.Group) {
	b, _, err := g.GetOrCreate("phase", 1, thrifty.Options{})
	if err != nil {
		return
	}
	b.Wait()
}
