// Golden cases for the sim.Engine / sim.Handle half of the barriercopy
// analyzer: the engine (flat event arena + index heap) must never be
// copied by value; the generation-tagged Handle is a value by design and
// copies freely.
package barriercopy

import (
	"thriftybarrier/internal/sim"
)

// machine embeds an Engine by value: copying machine copies the arena.
type machine struct {
	eng  sim.Engine
	name string
}

func flaggedEngineAssignments() {
	e := sim.NewEngine()
	cp := *e // want `assignment copies sim\.Engine by value`
	_ = cp

	var m machine
	m2 := m // want `assignment copies sim\.Engine by value`
	_ = m2
}

func flaggedEngineParam(e sim.Engine) { // want `function takes sim\.Engine by value`
	_ = e
}

func flaggedEngineResult() sim.Engine { // want `function returns sim\.Engine by value`
	var e sim.Engine
	return e
}

func flaggedEngineCall() {
	e := sim.NewEngine()
	use(*e) // want `call passes sim\.Engine by value`
}

func flaggedEngineRange() {
	engines := make([]sim.Engine, 2)
	for _, e := range engines { // want `range copies sim\.Engine by value`
		_ = e
	}
}

// --- clean cases: engine pointers and handle values are fine ---

func cleanEnginePointer() *sim.Engine {
	e := sim.NewEngine()
	drive(e)
	return e
}

func drive(e *sim.Engine) {
	e.After(10, func() {})
	e.Step()
}

func cleanHandleCopies() {
	e := sim.NewEngine()
	h := e.After(5, func() {})
	h2 := h       // a Handle is a value: copying it is the point
	cancel(e, h2) // passing a Handle by value is fine
	hs := []sim.Handle{h, h2}
	for _, hh := range hs { // ranging over Handles copies values, not arenas
		_ = hh
	}
	var zero sim.Handle
	_ = zero // the zero Handle is inert, not a copied engine
}

func cancel(e *sim.Engine, h sim.Handle) bool {
	return e.Cancel(h)
}
