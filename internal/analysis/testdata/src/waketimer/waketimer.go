// Golden cases for the waketimer analyzer: this package imports the
// timing wheel, so it has opted into the wheel's arming discipline and
// raw per-waiter runtime timers are flagged.
package waketimer

import (
	"time"
	tm "time"

	"thriftybarrier/internal/wheel"
)

func flaggedNewTimer(w *wheel.Wheel, ch chan struct{}) {
	t := time.NewTimer(time.Millisecond) // want `time\.NewTimer in wheel-backed code`
	defer t.Stop()
	select {
	case <-t.C:
	case <-ch:
	}
}

func flaggedAfter(w *wheel.Wheel, ch chan struct{}) {
	select {
	case <-time.After(time.Millisecond): // want `time\.After in wheel-backed code`
	case <-ch:
	}
}

func flaggedAliasedImport(w *wheel.Wheel) {
	// The check is on the resolved object, not the selector text.
	t := tm.NewTimer(time.Millisecond) // want `time\.NewTimer in wheel-backed code`
	t.Stop()
}

// --- clean cases ---

func cleanWheelArm(w *wheel.Wheel, ch chan struct{}) {
	h := w.Arm(time.Millisecond, ch)
	if !w.Cancel(h) {
		<-ch
	}
}

func cleanAfterFunc(w *wheel.Wheel, broken func()) {
	// The stall watchdog's escape hatch: a detached runtime timer that
	// still fires when the wheel itself is wedged is sanctioned.
	time.AfterFunc(time.Second, broken)
}

func cleanSuppressed(w *wheel.Wheel) {
	//lint:ignore waketimer measured baseline for the wheel comparison
	t := time.NewTimer(time.Millisecond)
	t.Stop()
}

func cleanNonTimerTime() time.Time {
	// Other time package functions are not the analyzer's business.
	return time.Now().Add(5 * time.Millisecond)
}
