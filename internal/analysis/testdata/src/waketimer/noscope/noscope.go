// Golden cases for the waketimer analyzer's scope rule: this package
// neither lives under thriftybarrier/thrifty nor imports the wheel, so
// it never opted into the arming discipline and raw runtime timers are
// its own business.
package noscope

import "time"

func cleanOutOfScopeNewTimer(ch chan struct{}) {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ch:
	}
}

func cleanOutOfScopeAfter(ch chan struct{}) {
	select {
	case <-time.After(time.Millisecond):
	case <-ch:
	}
}
