// Golden cases for the brokenreset analyzer: WaitContext/LockContext
// errors must be consulted, and ErrBroken branches must Reset or stop.
package brokenreset

import (
	"context"
	"errors"
	"fmt"
	"os"

	"thriftybarrier/thrifty"
)

func flaggedDiscards(b *thrifty.Barrier, m *thrifty.Mutex, ctx context.Context) {
	b.WaitContext(ctx)        // want `result of \(\*thrifty\.Barrier\)\.WaitContext is discarded`
	b.WaitSiteContext(ctx, 1) // want `result of \(\*thrifty\.Barrier\)\.WaitSiteContext is discarded`
	m.LockContext(ctx)        // want `result of \(\*thrifty\.Mutex\)\.LockContext is discarded`
	_ = b.WaitContext(ctx)    // want `result of \(\*thrifty\.Barrier\)\.WaitContext is assigned to blank`
	go b.WaitContext(ctx)     // want `result of \(\*thrifty\.Barrier\)\.WaitContext is discarded by go statement`
	defer m.LockContext(ctx)  // want `result of \(\*thrifty\.Mutex\)\.LockContext is discarded by defer statement`
}

func flaggedSwallowedBroken(b *thrifty.Barrier, ctx context.Context) {
	for {
		err := b.WaitContext(ctx)
		if errors.Is(err, thrifty.ErrBroken) { // want `ErrBroken branch neither calls Reset nor stops using the barrier`
			fmt.Println("broken, retrying") // ...which loops on ErrBroken forever
			continue
		}
		if err != nil {
			return
		}
	}
}

func flaggedSwallowedEquality(b *thrifty.Barrier, ctx context.Context) {
	for i := 0; i < 10; i++ {
		err := b.WaitContext(ctx)
		if err == thrifty.ErrBroken { // want `ErrBroken branch neither calls Reset nor stops using the barrier`
		}
	}
}

func flaggedSwitch(b *thrifty.Barrier, ctx context.Context) {
	for {
		err := b.WaitContext(ctx)
		switch {
		case errors.Is(err, thrifty.ErrBroken): // want `ErrBroken case neither calls Reset nor stops using the barrier`
			fmt.Println("ignoring a broken barrier")
		case err != nil:
			return
		}
	}
}

// --- clean cases ---

func cleanChecked(b *thrifty.Barrier, ctx context.Context) error {
	if err := b.WaitContext(ctx); err != nil {
		return err
	}
	return nil
}

func cleanReset(b *thrifty.Barrier, ctx context.Context) {
	for {
		err := b.WaitContext(ctx)
		if errors.Is(err, thrifty.ErrBroken) {
			b.Reset() // re-arms the barrier: the loop can continue
			continue
		}
		if err != nil {
			return
		}
	}
}

func cleanPropagates(b *thrifty.Barrier, ctx context.Context) error {
	err := b.WaitContext(ctx)
	if errors.Is(err, thrifty.ErrBroken) {
		return fmt.Errorf("rendezvous failed: %w", err)
	}
	return err
}

func cleanExits(b *thrifty.Barrier, ctx context.Context) {
	err := b.WaitContext(ctx)
	switch {
	case errors.Is(err, thrifty.ErrBroken):
		fmt.Fprintln(os.Stderr, "barrier broken; giving up")
		os.Exit(1)
	case err != nil:
		panic(err)
	}
}

func cleanBreaks(b *thrifty.Barrier, ctx context.Context) {
	for {
		err := b.WaitContext(ctx)
		if errors.Is(err, thrifty.ErrBroken) {
			break // stops using the barrier
		}
	}
}
