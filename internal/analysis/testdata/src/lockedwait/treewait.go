// Golden cases for the lockedwait analyzer on tree-topology barriers: a
// combining-tree check-in parks exactly like the flat one, so waiting
// with a lock held is the same deadlock.
package lockedwait

import (
	"sync"

	"thriftybarrier/thrifty"
)

func flaggedTreeWait(mu *sync.Mutex) {
	b := thrifty.New(64, thrifty.Options{TreeRadix: 8})
	mu.Lock()
	b.WaitSite(0x20) // want `\(\*thrifty\.Barrier\)\.WaitSite called while mutex "mu" is held`
	mu.Unlock()
}

func cleanTreeWait(mu *sync.Mutex) {
	b := thrifty.New(64, thrifty.Options{TreeRadix: 8})
	mu.Lock()
	mu.Unlock()
	b.WaitSite(0x20) // lock released before parking: fine
}
