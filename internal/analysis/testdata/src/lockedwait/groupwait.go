// Golden cases for barriers resolved through thrifty.Group: the lookup
// is lock-free, but the barrier it hands back parks like any other —
// waiting on it under a held mutex is the same sleep-holding-a-lock
// deadlock, and the analyzer sees through the registry indirection
// because the receiver type is still *thrifty.Barrier.
package lockedwait

import (
	"sync"

	"thriftybarrier/thrifty"
)

type phaseTable struct {
	mu sync.Mutex
	g  *thrifty.Group
}

func (t *phaseTable) flaggedGroupResolved(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, _, err := t.g.GetOrCreate(name, 4, thrifty.Options{})
	if err != nil {
		return
	}
	b.Wait() // want `\(\*thrifty\.Barrier\)\.Wait called while mutex "t\.mu" is held`
}

func flaggedGroupLookup(g *thrifty.Group, mu *sync.Mutex) {
	mu.Lock()
	if b, _, ok := g.Lookup("phase"); ok {
		b.WaitSite(1) // want `\(\*thrifty\.Barrier\)\.WaitSite called while mutex "mu" is held`
	}
	mu.Unlock()
}

// cleanGroupResolved releases the lock before parking: resolving under
// the lock is fine — only the wait itself must happen outside it.
func (t *phaseTable) cleanGroupResolved(name string) {
	t.mu.Lock()
	b, _, err := t.g.GetOrCreate(name, 4, thrifty.Options{})
	t.mu.Unlock()
	if err != nil {
		return
	}
	b.Wait()
}
