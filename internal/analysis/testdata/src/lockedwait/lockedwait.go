// Golden cases for the lockedwait analyzer: never park at a barrier
// while holding a lock.
package lockedwait

import (
	"context"
	"sync"

	"thriftybarrier/thrifty"
)

func flaggedSyncMutex(b *thrifty.Barrier, mu *sync.Mutex) {
	mu.Lock()
	b.Wait() // want `\(\*thrifty\.Barrier\)\.Wait called while mutex "mu" is held`
	mu.Unlock()
}

func flaggedDeferred(b *thrifty.Barrier, ctx context.Context) error {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()         // held to function end...
	return b.WaitContext(ctx) // want `\(\*thrifty\.Barrier\)\.WaitContext called while mutex "mu" is held`
}

func flaggedRLock(b *thrifty.Barrier, rw *sync.RWMutex) {
	rw.RLock()
	b.WaitSite(1) // want `\(\*thrifty\.Barrier\)\.WaitSite called while mutex "rw" is held`
	rw.RUnlock()
}

func flaggedThriftyMutex(b *thrifty.Barrier, m *thrifty.Mutex) {
	m.Lock()
	b.Wait() // want `\(\*thrifty\.Barrier\)\.Wait called while mutex "m" is held`
	m.Unlock()
}

type server struct {
	mu sync.Mutex
	b  *thrifty.Barrier
}

func (s *server) flaggedField() {
	s.mu.Lock()
	s.b.Wait() // want `\(\*thrifty\.Barrier\)\.Wait called while mutex "s\.mu" is held`
	s.mu.Unlock()
}

// --- clean cases ---

func cleanUnlockFirst(b *thrifty.Barrier, mu *sync.Mutex) {
	mu.Lock()
	// critical section
	mu.Unlock()
	b.Wait()
}

func cleanGoroutine(b *thrifty.Barrier, mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	// The literal runs on another goroutine's stack: it does not hold mu.
	go func() {
		b.Wait()
	}()
}

func cleanBalancedBranch(b *thrifty.Barrier, mu *sync.Mutex, fast bool) {
	if fast {
		mu.Lock()
		mu.Unlock()
	}
	b.Wait()
}
