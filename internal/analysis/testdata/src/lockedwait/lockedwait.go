// Golden cases for the lockedwait analyzer: never park at a barrier
// while holding a lock.
package lockedwait

import (
	"context"
	"sync"

	"thriftybarrier/thrifty"
)

func flaggedSyncMutex(b *thrifty.Barrier, mu *sync.Mutex) {
	mu.Lock()
	b.Wait() // want `\(\*thrifty\.Barrier\)\.Wait called while mutex "mu" is held`
	mu.Unlock()
}

func flaggedDeferred(b *thrifty.Barrier, ctx context.Context) error {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()         // held to function end...
	return b.WaitContext(ctx) // want `\(\*thrifty\.Barrier\)\.WaitContext called while mutex "mu" is held`
}

func flaggedRLock(b *thrifty.Barrier, rw *sync.RWMutex) {
	rw.RLock()
	b.WaitSite(1) // want `\(\*thrifty\.Barrier\)\.WaitSite called while mutex "rw" is held`
	rw.RUnlock()
}

func flaggedThriftyMutex(b *thrifty.Barrier, m *thrifty.Mutex) {
	m.Lock()
	b.Wait() // want `\(\*thrifty\.Barrier\)\.Wait called while mutex "m" is held`
	m.Unlock()
}

type server struct {
	mu sync.Mutex
	b  *thrifty.Barrier
}

func (s *server) flaggedField() {
	s.mu.Lock()
	s.b.Wait() // want `\(\*thrifty\.Barrier\)\.Wait called while mutex "s\.mu" is held`
	s.mu.Unlock()
}

// flaggedBranchRelease unlocks on one path only: after the join the
// lock is still may-held, so the wait is flagged. (The pre-CFG scanner
// missed this: the in-order scan saw the Unlock and cleared the set.)
func flaggedBranchRelease(b *thrifty.Barrier, mu *sync.Mutex, done bool) {
	mu.Lock()
	if done {
		mu.Unlock()
	}
	b.Wait() // want `\(\*thrifty\.Barrier\)\.Wait called while mutex "mu" is held`
}

// flaggedLoopCarried holds the lock across the loop's back edge: the
// wait on iteration n+1 runs under the Lock taken on iteration n. (In
// source order the Wait precedes the Lock, so only a flow over the back
// edge can see it.)
func flaggedLoopCarried(b *thrifty.Barrier, mu *sync.Mutex, again func() bool) {
	for again() {
		b.Wait() // want `\(\*thrifty\.Barrier\)\.Wait called while mutex "mu" is held`
		mu.Lock()
	}
	mu.Unlock()
}

// --- clean cases ---

// cleanGotoSkipsLock never executes the Lock: the goto jumps over it,
// and dead code must not poison the label's join point. (The pre-CFG
// scanner flagged this: the in-order scan saw the Lock regardless.)
func cleanGotoSkipsLock(b *thrifty.Barrier, mu *sync.Mutex) {
	goto wait
	mu.Lock()
wait:
	b.Wait()
}

func cleanUnlockFirst(b *thrifty.Barrier, mu *sync.Mutex) {
	mu.Lock()
	// critical section
	mu.Unlock()
	b.Wait()
}

func cleanGoroutine(b *thrifty.Barrier, mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	// The literal runs on another goroutine's stack: it does not hold mu.
	go func() {
		b.Wait()
	}()
}

func cleanBalancedBranch(b *thrifty.Barrier, mu *sync.Mutex, fast bool) {
	if fast {
		mu.Lock()
		mu.Unlock()
	}
	b.Wait()
}
