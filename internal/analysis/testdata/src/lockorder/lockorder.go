// Golden cases for the lockorder analyzer: calls under a held lock that
// transitively reach a barrier wait, and ABBA lock-order cycles (direct
// and interprocedural). Direct waits under a lock are lockedwait's job
// and must stay silent here.
package lockorder

import (
	"sync"

	"thriftybarrier/thrifty"
)

var mu sync.Mutex

func helper(b *thrifty.Barrier) {
	b.Wait()
}

func flaggedTransitive(b *thrifty.Barrier) {
	mu.Lock()
	helper(b) // want `helper called while mutex "mu" is held reaches a barrier wait \(helper -> \(\*thrifty\.Barrier\)\.Wait\)`
	mu.Unlock()
}

func leafWait(b *thrifty.Barrier) {
	b.WaitSite(2)
}

func mid(b *thrifty.Barrier) {
	leafWait(b)
}

func flaggedChain(b *thrifty.Barrier) {
	mu.Lock()
	defer mu.Unlock()
	mid(b) // want `mid called while mutex "mu" is held reaches a barrier wait \(mid -> leafWait -> \(\*thrifty\.Barrier\)\.WaitSite\)`
}

func flaggedBranchCall(b *thrifty.Barrier, c bool) {
	mu.Lock()
	if c {
		mu.Unlock()
	}
	helper(b) // want `helper called while mutex "mu" is held reaches a barrier wait`
}

func cleanUnlockedCall(b *thrifty.Barrier) {
	mu.Lock()
	mu.Unlock()
	helper(b)
}

func cleanGotoSkipsLock(b *thrifty.Barrier) {
	goto wait
	mu.Lock()
wait:
	helper(b)
}

// cleanDirectWait is lockedwait's finding, not lockorder's: the wait is
// in the same function, no call edge is involved.
func cleanDirectWait(b *thrifty.Barrier) {
	mu.Lock()
	b.Wait()
	mu.Unlock()
}

func cleanNoWaitCallee() {
	mu.Lock()
	plainWork()
	mu.Unlock()
}

func plainWork() {}

// --- ABBA: direct, both orders in one type ---

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) left() {
	p.a.Lock()
	p.b.Lock() // want `acquiring \(lockorder\.pair\)\.b while \(lockorder\.pair\)\.a is held forms a lock-order cycle`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) right() {
	p.b.Lock()
	p.a.Lock() // want `acquiring \(lockorder\.pair\)\.a while \(lockorder\.pair\)\.b is held forms a lock-order cycle`
	p.a.Unlock()
	p.b.Unlock()
}

// consistent always locks c before d: one direction only, no cycle.
type consistent struct {
	c sync.Mutex
	d sync.Mutex
}

func (p *consistent) first() {
	p.c.Lock()
	p.d.Lock()
	p.d.Unlock()
	p.c.Unlock()
}

func (p *consistent) second() {
	p.c.Lock()
	p.d.Lock()
	p.d.Unlock()
	p.c.Unlock()
}

// --- ABBA: interprocedural, the nested acquisition hides in a callee ---

var muX, muY sync.Mutex

func lockYdo() {
	muY.Lock()
	muY.Unlock()
}

func lockXdo() {
	muX.Lock()
	muX.Unlock()
}

func flaggedInterLeft() {
	muX.Lock()
	lockYdo() // want `acquiring lockorder\.muY while lockorder\.muX is held forms a lock-order cycle`
	muX.Unlock()
}

func flaggedInterRight() {
	muY.Lock()
	lockXdo() // want `acquiring lockorder\.muX while lockorder\.muY is held forms a lock-order cycle`
	muY.Unlock()
}
