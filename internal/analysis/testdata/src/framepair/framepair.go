// Golden cases for the framepair analyzer: every Frame* constant needs
// an encoder, a decoder that can fail, a direction marker, and — per
// direction — a dispatch-switch case (inbound) or an encoder call site
// (outbound). FrameGood and FramePush are fully wired and stay clean;
// each other constant breaks exactly one rule.
package framepair

// Frame kinds, one per wiring failure mode.
const (
	// FrameGood (client → server) is fully wired: encoder, decoder,
	// dispatch case.
	FrameGood byte = iota + 1
	// FramePush (server → client) is fully wired: encoder, decoder, and
	// an emission site.
	FramePush
	// FrameNoDec (client → server) has an encoder and a dispatch case but
	// no decoder.
	FrameNoDec // want `frame kind FrameNoDec has no decoder DecodeNoDec`
	// FrameNoEnc (client → server) has a decoder and a dispatch case but
	// no encoder.
	FrameNoEnc // want `frame kind FrameNoEnc has no encoder`
	// FrameUnrouted (client → server) has both codecs but no dispatch
	// case: the server would silently drop it.
	FrameUnrouted // want `inbound frame kind FrameUnrouted is not handled by any dispatch switch`
	// FrameNoDir has both codecs but no direction marker, so its wiring
	// cannot be checked.
	FrameNoDir // want `frame kind FrameNoDir has no direction marker`
	// FrameSilent (server → client) has both codecs but its encoder is
	// never called.
	FrameSilent // want `outbound frame kind FrameSilent is never emitted`
	// FrameBadDec (client → server) has a decoder that cannot report
	// short or trailing bytes.
	FrameBadDec
)

func EncodeGood() []byte     { return []byte{FrameGood} }
func EncodePush() []byte     { return []byte{FramePush} }
func EncodeNoDec() []byte    { return []byte{FrameNoDec} }
func EncodeUnrouted() []byte { return []byte{FrameUnrouted} }
func EncodeNoDir() []byte    { return []byte{FrameNoDir} }
func EncodeSilent() []byte   { return []byte{FrameSilent} }
func EncodeBadDec() []byte   { return []byte{FrameBadDec} }

func DecodeGood(p []byte) (byte, error)     { return p[0], nil }
func DecodePush(p []byte) (byte, error)     { return p[0], nil }
func DecodeNoEnc(p []byte) (byte, error)    { return p[0], nil }
func DecodeUnrouted(p []byte) (byte, error) { return p[0], nil }
func DecodeNoDir(p []byte) (byte, error)    { return p[0], nil }
func DecodeSilent(p []byte) (byte, error)   { return p[0], nil }

func DecodeBadDec(p []byte) byte { return p[0] } // want `decoder DecodeBadDec does not return an error`

// dispatch is the server's frame switch; FrameUnrouted is deliberately
// missing.
func dispatch(p []byte) {
	switch p[0] {
	case FrameGood:
		_, _ = DecodeGood(p)
	case FrameNoDec:
	case FrameNoEnc:
		_, _ = DecodeNoEnc(p)
	case FrameBadDec:
		_ = DecodeBadDec(p)
	}
}

// pushStatus emits FramePush, satisfying the outbound wiring check.
func pushStatus() []byte {
	return EncodePush()
}
