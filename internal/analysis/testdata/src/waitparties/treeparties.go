// Golden cases for the waitparties analyzer on tree-topology barriers:
// Options.TreeRadix changes the arrival structure, not the rendezvous
// arithmetic, so party-count mismatches are flagged exactly as for the
// flat barrier.
package waitparties

import (
	"thriftybarrier/thrifty"
)

func flaggedTreeLoop() {
	b := thrifty.New(8, thrifty.Options{TreeRadix: 2})
	for i := 0; i < 6; i++ {
		go func() {
			b.WaitSite(0x10) // want `loop spawns 6 goroutines calling WaitSite on a barrier constructed with 8 parties`
		}()
	}
}

func cleanTreeLoop() {
	b := thrifty.New(16, thrifty.Options{TreeRadix: 4})
	for i := 0; i < 16; i++ {
		go func() {
			b.Wait()
		}()
	}
}
