// Golden cases for the waitparties analyzer: the number of goroutines
// waiting on a barrier must match its constructed party count.
package waitparties

import (
	"context"

	"thriftybarrier/thrifty"
)

const workers = 8

func flaggedLoopMismatch() {
	b := thrifty.New(workers, thrifty.Options{})
	// Spawns workers-1 goroutines for a workers-party barrier: the last
	// generation never completes.
	for i := 0; i < workers-1; i++ {
		go func() {
			b.Wait() // want `loop spawns 7 goroutines calling Wait on a barrier constructed with 8 parties`
		}()
	}
}

func flaggedLoopTooMany() {
	b := thrifty.New(2, thrifty.Options{})
	for i := 0; i <= 2; i++ { // three goroutines
		go func() {
			_ = b.WaitContext(context.Background()) // want `loop spawns 3 goroutines calling WaitContext on a barrier constructed with 2 parties`
		}()
	}
}

func flaggedRangeInt() {
	b := thrifty.New(4, thrifty.Options{})
	for range 5 {
		go func() {
			b.Wait() // want `loop spawns 5 goroutines calling Wait on a barrier constructed with 4 parties`
		}()
	}
}

func flaggedTooManySites() {
	b := thrifty.New(2, thrifty.Options{}) // want `barrier constructed with 2 parties is awaited from 3 distinct functions`
	go func() { b.Wait() }()
	go func() { b.Wait() }()
	go func() { b.Wait() }()
}

// --- clean cases ---

func cleanMatched() {
	b := thrifty.New(workers, thrifty.Options{})
	for i := 0; i < workers; i++ {
		go func() {
			for it := 0; it < 100; it++ { // inner iteration loop: not a spawn
				b.Wait()
				b.Wait() // several phases per iteration are fine
			}
		}()
	}
}

func cleanOuterRounds() {
	// The outer rounds loop multiplies a matched inner spawn loop; the
	// goroutines belong to the inner loop, whose count is correct.
	b := thrifty.New(4, thrifty.Options{})
	for r := 0; r < 10; r++ {
		for i := 0; i < 4; i++ {
			go func() { b.Wait() }()
		}
	}
}

func cleanDerivedCount(n int) {
	// Non-constant party count: nothing to check statically.
	b := thrifty.New(n, thrifty.Options{})
	for i := 0; i < n; i++ {
		go func() { b.Wait() }()
	}
}
