// Golden CLEAN cases for the waketimer and lockedwait analyzers,
// mirroring the wait/heartbeat/reconnect shapes of the remote client
// library (thrifty/client). The package imports the wheel, so it is in
// waketimer's scope; every pattern here must produce zero findings —
// this fixture is the regression net that keeps the lease-keeping and
// release-polling idioms expressible without raw per-waiter timers or
// parked-holding-a-lock hazards.
package leaselost

import (
	"context"
	"sync"
	"time"

	"thriftybarrier/internal/wheel"
	"thriftybarrier/thrifty"
)

// heartbeatLoop keeps a lease alive the way the client library does: a
// ticker, not a rearmed time.NewTimer. Tickers are one runtime timer for
// the loop's whole lifetime, so they do not reintroduce the per-wake
// heap traffic the wheel exists to avoid.
func heartbeatLoop(send func() error, every time.Duration, done chan struct{}) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if err := send(); err != nil {
				return
			}
		case <-done:
			return
		}
	}
}

// pollRelease waits out a server sleep directive in bounded time.Sleep
// quanta — the client-side analog of the paper's timed park — rather
// than a single time.After the lease watchdog could never interrupt.
func pollRelease(released func() bool, poll time.Duration, done chan struct{}) bool {
	for !released() {
		select {
		case <-done:
			return false
		default:
		}
		time.Sleep(poll)
	}
	return true
}

// reconnectBackoff sleeps between redial attempts; plain time.Sleep on a
// goroutine that holds nothing is exactly what the discipline asks for.
func reconnectBackoff(attempt int, base time.Duration) {
	if attempt > 8 {
		attempt = 8
	}
	time.Sleep(base << uint(attempt))
}

// leaseWatchdog is the sanctioned detached-timer shape: time.AfterFunc
// fires the lease-lost path even when the wheel itself is wedged, and
// waketimer deliberately leaves it alone.
func leaseWatchdog(lease time.Duration, onLost func()) *time.Timer {
	return time.AfterFunc(lease, onLost)
}

// wheelPark arms the internal wake-up through the wheel, the engine this
// package opted into by importing it.
func wheelPark(w *wheel.Wheel, d time.Duration, ch chan struct{}) {
	h := w.Arm(d, ch)
	if !w.Cancel(h) {
		<-ch
	}
}

type session struct {
	mu      sync.Mutex
	epoch   uint64
	barrier *thrifty.Barrier
}

// waitEpoch snapshots connection state under the lock and releases it
// BEFORE parking at the barrier — the unlock-before-wait ordering
// lockedwait enforces, as the client library's Wait path does.
func (s *session) waitEpoch(ctx context.Context) error {
	s.mu.Lock()
	s.epoch++
	b := s.barrier
	s.mu.Unlock()
	return b.WaitContext(ctx)
}

// recordRelease shows the inverse interleaving is fine too: the wait
// completes first, and only then is the lock taken to publish the
// outcome.
func (s *session) recordRelease() {
	s.barrier.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
}
