package cfg

// Lattice is the join-semilattice a dataflow analysis computes over.
// Facts must be treated as immutable by Join (return a fresh value when
// the result differs from both inputs): the engine caches and compares
// them across iterations.
type Lattice[F any] interface {
	// Bottom is the identity of Join: the initial fact of every block
	// except the boundary.
	Bottom() F
	// Join combines facts flowing in over two edges.
	Join(a, b F) F
	// Equal reports fact equality; the fixpoint terminates when no
	// block's output changes under Equal.
	Equal(a, b F) bool
}

// Result holds the per-block fixpoint facts: In is the fact at block
// entry (join over predecessor Outs for a forward analysis), Out the
// fact after the block's transfer function.
type Result[F any] struct {
	In  map[*Block]F
	Out map[*Block]F
}

// Forward computes the forward dataflow fixpoint: boundary is the fact
// entering Graph.Entry, and transfer maps a block's entry fact to its
// exit fact. Iteration is a FIFO worklist seeded in block order; with a
// monotone transfer over a finite-height lattice it terminates at the
// least fixpoint (the same one naive whole-graph iteration reaches,
// which the differential test in dataflow_test.go pins).
func Forward[F any](g *Graph, lat Lattice[F], boundary F, transfer func(*Block, F) F) Result[F] {
	return fixpoint(g, lat, boundary, transfer, g.Entry,
		func(b *Block) []*Block { return b.Preds },
		func(b *Block) []*Block { return b.Succs })
}

// Backward computes the backward fixpoint: boundary enters Graph.Exit
// and facts propagate against the flow edges. Result.In remains "fact at
// block entry in execution order": for a backward analysis it is the
// transferred fact, and Result.Out the join over successors.
func Backward[F any](g *Graph, lat Lattice[F], boundary F, transfer func(*Block, F) F) Result[F] {
	res := fixpoint(g, lat, boundary, transfer, g.Exit,
		func(b *Block) []*Block { return b.Succs },
		func(b *Block) []*Block { return b.Preds })
	// fixpoint's "in" is the joined side and its "out" the transferred
	// side; flip so callers always read In/Out in execution order.
	return Result[F]{In: res.Out, Out: res.In}
}

// fixpoint is the direction-agnostic worklist: "in" of a block joins the
// "out" of its sources (preds forward, succs backward), "out" is the
// transferred "in", and a changed "out" re-queues the block's sinks.
// Dead blocks (Live false) hold Bottom throughout: code that never
// executes must not contribute facts to the join points its stray edges
// reach (a statement after a goto still links to the goto's label).
func fixpoint[F any](g *Graph, lat Lattice[F], boundary F, transfer func(*Block, F) F,
	start *Block, sources, sinks func(*Block) []*Block) Result[F] {

	in := make(map[*Block]F, len(g.Blocks))
	out := make(map[*Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = lat.Bottom()
		out[b] = lat.Bottom()
	}

	queued := make([]bool, len(g.Blocks))
	var list []*Block
	push := func(b *Block) {
		if b.Live && !queued[b.Index] {
			queued[b.Index] = true
			list = append(list, b)
		}
	}
	for _, b := range g.Blocks {
		push(b)
	}

	for len(list) > 0 {
		b := list[0]
		list = list[1:]
		queued[b.Index] = false

		fact := lat.Bottom()
		if b == start {
			fact = boundary
		}
		for _, src := range sources(b) {
			if src.Live {
				fact = lat.Join(fact, out[src])
			}
		}
		in[b] = fact
		next := transfer(b, fact)
		if !lat.Equal(next, out[b]) {
			out[b] = next
			for _, snk := range sinks(b) {
				push(snk)
			}
		}
	}
	return Result[F]{In: in, Out: out}
}
