package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses src as the body of a function and returns its graph.
func buildFunc(t *testing.T, src string) *Graph {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return New(f.Decls[0].(*ast.FuncDecl).Body)
}

// The goldens pin the exact block structure for the shapes the issue
// calls out — defer, goto, labeled break — plus the loop-with-continue
// shape the lockedwait rewrite depends on. A changed builder that still
// produces a correct graph may legitimately change these strings; update
// them only after checking the new edges by hand.
func TestGolden(t *testing.T) {
	tests := []struct {
		name, src, want string
	}{
		{
			name: "defer",
			src: `mu.Lock()
defer mu.Unlock()
work()`,
			want: `
b0 entry: mu.Lock(); defer mu.Unlock(); work() -> b1
b1 exit:
`,
		},
		{
			name: "goto_skips_lock",
			src: `goto wait
mu.Lock()
wait:
b.Wait()`,
			want: `
b0 entry: goto wait -> b2
b1 exit:
b2 label.wait: b.Wait() -> b1
b3 unreachable: mu.Lock() -> b2
`,
		},
		{
			name: "goto_backward",
			src: `retry:
if x() {
	goto retry
}
done()`,
			want: `
b0 entry: -> b2
b1 exit:
b2 label.retry: x() -> b3 b4
b3 if.then: goto retry -> b2
b4 if.done: done() -> b1
`,
		},
		{
			name: "labeled_break",
			src: `outer:
for a() {
	for b() {
		if c() {
			break outer
		}
		break
	}
}
end()`,
			want: `
b0 entry: -> b2
b1 exit:
b2 label.outer: -> b3
b3 for.head: a() -> b4 b5
b4 for.body: -> b6
b5 for.done: end() -> b1
b6 for.head: b() -> b7 b8
b7 for.body: c() -> b9 b10
b8 for.done: -> b3
b9 if.then: break outer -> b5
b10 if.done: break -> b8
`,
		},
		{
			name: "labeled_continue_post",
			src: `loop:
for i := 0; i < n; i++ {
	if skip() {
		continue loop
	}
	body()
}`,
			want: `
b0 entry: -> b2
b1 exit:
b2 label.loop: i := 0 -> b3
b3 for.head: i < n -> b4 b5
b4 for.body: skip() -> b7 b8
b5 for.done: -> b1
b6 for.post: i++ -> b3
b7 if.then: continue loop -> b6
b8 if.done: body() -> b6
`,
		},
		{
			name: "switch_fallthrough",
			src: `switch x {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	c()
}`,
			want: `
b0 entry: x; 1; 2 -> b3 b4 b5
b1 exit:
b2 switch.done: -> b1
b3 switch.case: a(); fallthrough -> b4
b4 switch.case: b() -> b2
b5 switch.case: c() -> b2
`,
		},
		{
			name: "select_no_default",
			src: `select {
case <-ch:
	a()
case v := <-ch2:
	use(v)
}
after()`,
			want: `
b0 entry: -> b3 b4
b1 exit:
b2 select.done: after() -> b1
b3 select.case: <-ch; a() -> b2
b4 select.case: v := <-ch2; use(v) -> b2
`,
		},
		{
			name: "return_and_panic_exit",
			src: `if x() {
	return
}
panic("boom")`,
			want: `
b0 entry: x() -> b2 b3
b1 exit:
b2 if.then: return -> b1
b3 if.done: panic("boom") -> b1
`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := buildFunc(t, tt.src)
			got := strings.TrimSpace(g.String())
			want := strings.TrimSpace(tt.want)
			if got != want {
				t.Errorf("graph mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

func TestDefersCollected(t *testing.T) {
	g := buildFunc(t, `defer a()
if x() {
	defer b()
}
defer c()`)
	if len(g.Defers) != 3 {
		t.Fatalf("got %d defers, want 3", len(g.Defers))
	}
}

func TestReachable(t *testing.T) {
	g := buildFunc(t, `goto wait
mu.Lock()
wait:
b.Wait()`)
	var dead *Block
	for _, blk := range g.Blocks {
		if blk.Kind == "unreachable" {
			dead = blk
		}
	}
	if dead == nil {
		t.Fatal("no unreachable block built for the skipped statement")
	}
	if dead.Live {
		t.Errorf("block %d (statement after goto) reported live", dead.Index)
	}
	if !g.Exit.Live {
		t.Errorf("exit reported dead")
	}
}

// Every block reachable from entry must flow somewhere: no dangling
// blocks without successors except Exit. Checked over a grab bag of
// shapes, including nested and labeled control flow.
func TestNoDanglingBlocks(t *testing.T) {
	srcs := []string{
		`for { if a() { break }; work() }`,
		`for a() { for b() { continue } }`,
		`switch { case a(): x(); case b(): y() }`,
		`l: for { switch v { case 1: break l; case 2: continue } }`,
		`if a() { return }; defer f(); go g()`,
	}
	for _, src := range srcs {
		g := buildFunc(t, src)
		for _, blk := range g.Blocks {
			if blk == g.Exit || !blk.Live {
				continue
			}
			if len(blk.Succs) == 0 {
				t.Errorf("src %q: reachable block b%d %s has no successors\n%s",
					src, blk.Index, blk.Kind, g.String())
			}
		}
	}
}
