// Package cfg builds per-function control-flow graphs from go/ast and
// runs dataflow analyses over them. It is the flow-sensitive substrate of
// the analyzer suite: the syntactic analyzers in internal/analysis walk
// statements in source order, which misses facts that only hold on some
// paths (a lock released in one branch, a wait reached around a loop's
// back edge, code skipped by a goto). A CFG makes those paths explicit,
// and the generic fixpoint engine in dataflow.go propagates analyzer
// facts along them.
//
// The shape follows golang.org/x/tools/go/cfg, rebuilt on the standard
// library only: a Graph of basic Blocks whose Nodes are the statements
// and control-condition expressions executed in order. Compound
// statements never appear as nodes themselves — an if contributes its
// condition, a switch its tag, a range its operand — so walking a
// block's nodes visits each executable subtree exactly once.
//
// Control flow covered: if/else, for (all three clauses), range,
// switch/type switch (with fallthrough), select, labeled statements,
// break/continue (labeled and bare), goto (forward and backward), return
// and calls to the panic builtin (both edges to the synthetic Exit
// block). Deferred calls are collected on Graph.Defers and also appear
// in flow order as DeferStmt nodes, so an analysis can both see where a
// defer is scheduled and model its body running at every exit.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Block is one basic block: a maximal sequence of nodes with a single
// entry at the top and branches only at the bottom.
type Block struct {
	// Index is the block's position in Graph.Blocks, stable across a
	// build; the String form names blocks bN by it.
	Index int
	// Kind describes what created the block ("entry", "if.then",
	// "for.head", "label.retry", ...) for dumps and goldens.
	Kind string
	// Nodes are the statements and control expressions executed in
	// order. Subtrees of distinct nodes never overlap.
	Nodes []ast.Node
	// Succs and Preds are the flow edges. Succs order is deterministic:
	// fallthrough/then edges precede branch/else edges.
	Succs []*Block
	Preds []*Block
	// Live is false for blocks unreachable from Entry (statements after
	// an unconditional return/goto/panic). Dead blocks keep their edges
	// into live code — a goto target is still a join point in the
	// source — but the dataflow engine never propagates facts out of
	// them, and analyses skip them when reporting.
	Live bool
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks holds every block, Entry first; Exit is the single
	// synthetic exit that return, panic and falling off the end reach.
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers collects the function's defer statements in source order;
	// their calls run, in reverse order, on every path into Exit.
	Defers []*ast.DeferStmt
}

// New builds the graph of one function body (from an *ast.FuncDecl.Body
// or *ast.FuncLit.Body). Nested function literals are opaque: they
// contribute a node where the literal appears but their bodies get their
// own graphs.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	b.cur = g.Entry
	b.stmtList(body.List)
	b.jump(g.Exit)
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	var mark func(*Block)
	mark = func(blk *Block) {
		if blk.Live {
			return
		}
		blk.Live = true
		for _, s := range blk.Succs {
			mark(s)
		}
	}
	mark(g.Entry)
	return g
}

// String renders the graph one block per line — "bN kind: node; node ->
// succs" — for goldens and debugging. Node text is the printed source
// with whitespace collapsed.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", blk.Index, blk.Kind)
		for i, n := range blk.Nodes {
			if i > 0 {
				sb.WriteString(";")
			}
			sb.WriteString(" " + nodeText(n))
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func nodeText(n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

// labelInfo tracks one label: the block a goto targets, and — while its
// labeled loop/switch/select is being built — the break/continue
// targets.
type labelInfo struct {
	target    *Block // goto target / fall-in block
	breakB    *Block
	continueB *Block
	resolved  bool // the LabeledStmt itself has been reached
}

type builder struct {
	g   *Graph
	cur *Block // nil while flow is unreachable (after return/goto/panic)
	// breakB/continueB are the innermost bare-break/continue targets.
	breakB    *Block
	continueB *Block
	// fallthroughB is the next case body while building a switch case.
	fallthroughB *Block
	// pendingLabel is set by a LabeledStmt for the loop/switch statement
	// it wraps, which registers its break/continue targets there.
	pendingLabel *labelInfo
	labels       map[string]*labelInfo
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// add appends n to the current block; a nil current block means the node
// is unreachable, and it is parked in a fresh predecessor-less block so
// analyses can still see (and deliberately skip) dead code.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jump ends the current block with an edge to target.
func (b *builder) jump(target *Block) {
	if b.cur != nil {
		link(b.cur, target)
		b.cur = nil
	}
}

// start makes target the current block (the usual join-point pattern:
// jump into it from the branches, then start it).
func (b *builder) start(target *Block) {
	b.cur = target
}

func (b *builder) label(name string) *labelInfo {
	info := b.labels[name]
	if info == nil {
		info = &labelInfo{}
		b.labels[name] = info
	}
	return info
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes a pending label for the construct being built and
// returns it (nil when the construct is unlabeled).
func (b *builder) takeLabel() *labelInfo {
	info := b.pendingLabel
	b.pendingLabel = nil
	return info
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.EmptyStmt:
		// no node
	case *ast.LabeledStmt:
		info := b.label(s.Label.Name)
		if info.target == nil {
			info.target = b.newBlock("label." + s.Label.Name)
		}
		info.resolved = true
		b.jump(info.target)
		b.start(info.target)
		b.pendingLabel = info
		b.stmt(s.Stmt)
		b.pendingLabel = nil
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanic(call) {
			b.jump(b.g.Exit)
		}
	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, GoStmt, ...
		b.add(s)
	}
}

// isPanic matches a call to the predeclared panic builtin syntactically
// (a shadowed panic would be misread; no function in this module shadows
// it, and the cost of a miss is one conservative extra flow edge).
func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.GOTO:
		info := b.label(s.Label.Name)
		if info.target == nil {
			info.target = b.newBlock("label." + s.Label.Name)
		}
		b.add(s)
		b.jump(info.target)
	case token.BREAK:
		target := b.breakB
		if s.Label != nil {
			target = b.label(s.Label.Name).breakB
		}
		b.add(s)
		if target != nil {
			b.jump(target)
		} else {
			b.cur = nil // malformed break: sever flow rather than mislink
		}
	case token.CONTINUE:
		target := b.continueB
		if s.Label != nil {
			target = b.label(s.Label.Name).continueB
		}
		b.add(s)
		if target != nil {
			b.jump(target)
		} else {
			b.cur = nil
		}
	case token.FALLTHROUGH:
		b.add(s)
		if b.fallthroughB != nil {
			b.jump(b.fallthroughB)
		} else {
			b.cur = nil
		}
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	then := b.newBlock("if.then")
	done := b.newBlock("if.done")
	var elseB *Block
	if s.Else != nil {
		elseB = b.newBlock("if.else")
	}
	if b.cur != nil {
		link(b.cur, then)
		if elseB != nil {
			link(b.cur, elseB)
		} else {
			link(b.cur, done)
		}
		b.cur = nil
	}
	b.start(then)
	b.stmtList(s.Body.List)
	b.jump(done)
	if elseB != nil {
		b.start(elseB)
		b.stmt(s.Else)
		b.jump(done)
	}
	b.start(done)
}

// pushLoop installs break/continue targets (and binds them to a pending
// label), returning a restore func.
func (b *builder) pushLoop(breakB, continueB *Block) func() {
	prevBreak, prevCont := b.breakB, b.continueB
	prevFall := b.fallthroughB
	b.breakB, b.continueB = breakB, continueB
	b.fallthroughB = nil // fallthrough does not cross a loop boundary
	if info := b.takeLabel(); info != nil {
		info.breakB, info.continueB = breakB, continueB
	}
	return func() {
		b.breakB, b.continueB = prevBreak, prevCont
		b.fallthroughB = prevFall
	}
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	back := head // continue target
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		back = post
	}
	b.jump(head)
	b.start(head)
	if s.Cond != nil {
		b.add(s.Cond)
		link(head, body)
		link(head, done)
	} else {
		link(head, body) // for {}: done is reached only by break
	}
	b.cur = nil
	restore := b.pushLoop(done, back)
	b.start(body)
	b.stmtList(s.Body.List)
	if post != nil {
		b.jump(post)
		b.start(post)
		b.add(s.Post)
		b.jump(head)
	} else {
		b.jump(head)
	}
	restore()
	b.start(done)
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	b.add(s.X)
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.jump(head)
	link(head, body)
	link(head, done)
	restore := b.pushLoop(done, head)
	b.start(body)
	b.stmtList(s.Body.List)
	b.jump(head)
	restore()
	b.start(done)
}

// caseBodies builds the shared case-dispatch shape: head links to every
// case body (and to done when a non-blocking statement has no default —
// a select without a default never falls through, it waits), each body
// ends at done, fallthrough falls into the next body.
func (b *builder) caseBodies(head, done *Block, kind string, clauses []ast.Stmt) {
	type caseBlock struct {
		body  []ast.Stmt
		block *Block
	}
	var cases []caseBlock
	hasDefault := false
	for _, cl := range clauses {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				head.Nodes = append(head.Nodes, e)
			}
			cases = append(cases, caseBlock{cl.Body, b.newBlock(kind + ".case")})
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			blk := b.newBlock(kind + ".case")
			if cl.Comm != nil {
				blk.Nodes = append(blk.Nodes, cl.Comm)
			}
			cases = append(cases, caseBlock{cl.Body, blk})
		}
	}
	for _, c := range cases {
		link(head, c.block)
	}
	if !hasDefault && kind != "select" {
		link(head, done)
	}
	prevFall := b.fallthroughB
	for i, c := range cases {
		b.fallthroughB = nil
		if i+1 < len(cases) {
			b.fallthroughB = cases[i+1].block
		}
		b.start(c.block)
		b.stmtList(c.body)
		b.jump(done)
	}
	b.fallthroughB = prevFall
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	done := b.newBlock("switch.done")
	prevBreak := b.breakB
	b.breakB = done
	if info := b.takeLabel(); info != nil {
		info.breakB = done
	}
	b.cur = nil
	b.caseBodies(head, done, "switch", s.Body.List)
	b.breakB = prevBreak
	b.start(done)
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	done := b.newBlock("typeswitch.done")
	prevBreak := b.breakB
	b.breakB = done
	if info := b.takeLabel(); info != nil {
		info.breakB = done
	}
	b.cur = nil
	b.caseBodies(head, done, "typeswitch", s.Body.List)
	b.breakB = prevBreak
	b.start(done)
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	done := b.newBlock("select.done")
	prevBreak := b.breakB
	b.breakB = done
	if info := b.takeLabel(); info != nil {
		info.breakB = done
	}
	b.cur = nil
	b.caseBodies(head, done, "select", s.Body.List)
	b.breakB = prevBreak
	b.start(done)
}
