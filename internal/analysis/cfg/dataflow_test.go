package cfg

import (
	"fmt"
	"math/rand"
	"testing"
)

// bitsLattice is a classic gen/kill bit-vector lattice: facts are
// uint64 bit sets, join is union.
type bitsLattice struct{}

func (bitsLattice) Bottom() uint64          { return 0 }
func (bitsLattice) Join(a, b uint64) uint64 { return a | b }
func (bitsLattice) Equal(a, b uint64) bool  { return a == b }

// randomGraph builds a synthetic graph of n blocks with seeded random
// edges: a spine keeping every block reachable, plus extra edges
// (including back edges, so the worklist must actually iterate).
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		g.Blocks = append(g.Blocks, &Block{Index: i, Kind: fmt.Sprintf("b%d", i)})
	}
	g.Entry = g.Blocks[0]
	g.Exit = g.Blocks[n-1]
	link := func(a, b *Block) {
		for _, s := range a.Succs {
			if s == b {
				return
			}
		}
		a.Succs = append(a.Succs, b)
		b.Preds = append(b.Preds, a)
	}
	// Spine: i -> i+1 with occasional skips, so everything is live.
	for i := 0; i+1 < n; i++ {
		link(g.Blocks[i], g.Blocks[i+1])
	}
	extra := rng.Intn(3 * n)
	for i := 0; i < extra; i++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		link(g.Blocks[a], g.Blocks[b]) // may be a back edge or self loop
	}
	for _, b := range g.Blocks {
		b.Live = true
	}
	return g
}

// naiveForward is the reference fixpoint: recompute every block from
// scratch, whole-graph sweeps, until nothing changes. Deliberately
// independent of the worklist implementation under test.
func naiveForward(g *Graph, boundary uint64, transfer func(*Block, uint64) uint64) map[*Block]uint64 {
	in := map[*Block]uint64{}
	out := map[*Block]uint64{}
	for {
		changed := false
		for _, b := range g.Blocks {
			var fact uint64
			if b == g.Entry {
				fact = boundary
			}
			for _, p := range b.Preds {
				fact |= out[p]
			}
			next := transfer(b, fact)
			if in[b] != fact || out[b] != next {
				in[b], out[b] = fact, next
				changed = true
			}
		}
		if !changed {
			return in
		}
	}
}

func naiveBackward(g *Graph, boundary uint64, transfer func(*Block, uint64) uint64) map[*Block]uint64 {
	in := map[*Block]uint64{}
	out := map[*Block]uint64{}
	for {
		changed := false
		for _, b := range g.Blocks {
			var fact uint64
			if b == g.Exit {
				fact = boundary
			}
			for _, s := range b.Succs {
				fact |= in[s]
			}
			next := transfer(b, fact)
			if out[b] != fact || in[b] != next {
				out[b], in[b] = fact, next
				changed = true
			}
		}
		if !changed {
			return in
		}
	}
}

// TestWorklistMatchesNaive is the differential property test: on seeded
// random graphs with random gen/kill transfer functions, the worklist
// fixpoint must agree block-for-block with naive whole-graph iteration,
// forward and backward.
func TestWorklistMatchesNaive(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 2 + rng.Intn(40)
			g := randomGraph(rng, n)

			gen := make([]uint64, n)
			kill := make([]uint64, n)
			for i := range gen {
				gen[i] = rng.Uint64() & 0xffff
				kill[i] = rng.Uint64() & 0xffff
			}
			transfer := func(b *Block, f uint64) uint64 {
				return (f &^ kill[b.Index]) | gen[b.Index]
			}
			boundary := rng.Uint64() & 0xffff

			fwd := Forward[uint64](g, bitsLattice{}, boundary, transfer)
			nf := naiveForward(g, boundary, transfer)
			for _, b := range g.Blocks {
				if fwd.In[b] != nf[b] {
					t.Errorf("forward in-fact mismatch at block %d: worklist %#x, naive %#x",
						b.Index, fwd.In[b], nf[b])
				}
			}

			bwd := Backward[uint64](g, bitsLattice{}, boundary, transfer)
			nb := naiveBackward(g, boundary, transfer)
			for _, b := range g.Blocks {
				if bwd.In[b] != nb[b] {
					t.Errorf("backward fact mismatch at block %d: worklist %#x, naive %#x",
						b.Index, bwd.In[b], nb[b])
				}
			}
		})
	}
}

// TestDeadBlocksHoldBottom pins the liveness contract: facts never flow
// out of a dead block, even when its stray edges reach live code.
func TestDeadBlocksHoldBottom(t *testing.T) {
	// entry(b0) -> b2; dead b1 -> b2; b2 -> exit(b3)
	g := &Graph{}
	for i := 0; i < 4; i++ {
		g.Blocks = append(g.Blocks, &Block{Index: i})
	}
	g.Entry, g.Exit = g.Blocks[0], g.Blocks[3]
	connect := func(a, b int) {
		g.Blocks[a].Succs = append(g.Blocks[a].Succs, g.Blocks[b])
		g.Blocks[b].Preds = append(g.Blocks[b].Preds, g.Blocks[a])
	}
	connect(0, 2)
	connect(1, 2)
	connect(2, 3)
	for _, i := range []int{0, 2, 3} {
		g.Blocks[i].Live = true
	}

	transfer := func(b *Block, f uint64) uint64 {
		if b.Index == 1 {
			return f | 0b100 // the dead block generates a fact...
		}
		return f
	}
	res := Forward[uint64](g, bitsLattice{}, 0b1, transfer)
	if got := res.In[g.Blocks[2]]; got != 0b1 {
		t.Errorf("live block joined a dead predecessor's fact: got %#b, want %#b", got, 0b1)
	}
}
