package analysis_test

import (
	"testing"

	"thriftybarrier/internal/analysis/analysistest"
	"thriftybarrier/internal/analysis/lockedwait"
	"thriftybarrier/internal/analysis/lockorder"
	"thriftybarrier/internal/analysis/waketimer"
)

// The leaselost fixture holds the remote client library's wait,
// heartbeat and reconnect shapes — ticker-driven lease keeping,
// sleep-quanta release polling, detached lease watchdog, unlock-before-
// wait — and must stay CLEAN under both wake-path analyzers. If either
// analyzer grows a rule these idioms trip, the client library (which is
// in waketimer scope via the thriftybarrier/thrifty prefix) breaks with
// it; this test surfaces that before thriftyvet does.
func TestLeaseLostShapesStayClean(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), waketimer.Analyzer, "leaselost")
	analysistest.Run(t, analysistest.TestData(), lockedwait.Analyzer, "leaselost")
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "leaselost")
}
