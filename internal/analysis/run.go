package analysis

import (
	"fmt"
	"go/token"
	"sort"

	"thriftybarrier/internal/analysis/load"
)

// Finding is one diagnostic after suppression filtering, resolved to a
// file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Run applies every analyzer to every package, filters findings through
// the //lint:ignore directives, and returns them sorted by position.
// Packages with type errors are skipped and reported through the returned
// error (analysis of ill-typed code produces unreliable findings).
func Run(pkgs []*load.Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	var broken []string
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			broken = append(broken, fmt.Sprintf("%s: %v", pkg.Path, pkg.TypeErrors[0]))
			continue
		}
		sup := newSuppressor(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				if sup.suppressed(a.Name, d.Pos) {
					return
				}
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	if len(broken) > 0 {
		return findings, fmt.Errorf("type errors in %d package(s), e.g. %s", len(broken), broken[0])
	}
	return findings, nil
}
