package analysis

import (
	"fmt"
	"go/token"
	"sort"

	"thriftybarrier/internal/analysis/load"
)

// Finding is one diagnostic resolved to a file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks a finding silenced by a //lint:ignore directive;
	// Reason carries that directive's justification. Run returns only
	// unsuppressed findings; RunDetailed returns both populations.
	Suppressed bool
	Reason     string
}

// String renders the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Detail is RunDetailed's full accounting of a run: the findings that
// survived suppression, the findings a directive silenced, and every
// directive seen with its use count — the raw material for the -json
// output and the -ignores stale-suppression audit.
type Detail struct {
	Findings   []Finding
	Suppressed []Finding
	Directives []*Directive
}

// Run applies every analyzer to every package, filters findings through
// the //lint:ignore directives, and returns them sorted by position.
// Packages with type errors are skipped and reported through the returned
// error (analysis of ill-typed code produces unreliable findings).
func Run(pkgs []*load.Package, analyzers []*Analyzer) ([]Finding, error) {
	detail, err := RunDetailed(pkgs, analyzers)
	return detail.Findings, err
}

// RunDetailed is Run keeping the whole story: suppressed findings stay
// visible (flagged, with the suppressing directive's reason) and every
// directive is returned with the number of diagnostics it silenced.
func RunDetailed(pkgs []*load.Package, analyzers []*Analyzer) (*Detail, error) {
	detail := &Detail{}
	var broken []string
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			broken = append(broken, fmt.Sprintf("%s: %v", pkg.Path, pkg.TypeErrors[0]))
			continue
		}
		sup := newSuppressor(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				f := Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				}
				if reason, ok := sup.suppressed(a.Name, d.Pos); ok {
					f.Suppressed, f.Reason = true, reason
					detail.Suppressed = append(detail.Suppressed, f)
					return
				}
				detail.Findings = append(detail.Findings, f)
			}
			if err := a.Run(pass); err != nil {
				return detail, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		detail.Directives = append(detail.Directives, sup.directives...)
	}
	sortFindings(detail.Findings)
	sortFindings(detail.Suppressed)
	sort.Slice(detail.Directives, func(i, j int) bool {
		a, b := detail.Directives[i].Pos, detail.Directives[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	if len(broken) > 0 {
		return detail, fmt.Errorf("type errors in %d package(s), e.g. %s", len(broken), broken[0])
	}
	return detail, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
