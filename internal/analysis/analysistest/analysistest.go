// Package analysistest runs an analyzer over golden-file packages under a
// testdata directory and checks its diagnostics against the expectations
// written in the sources — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the stdlib-only
// loader.
//
// Expectations are comments of the form
//
//	b.Wait() // want "regexp"
//	x() // want `regexp with "quotes"` "second regexp"
//
// Every diagnostic on a line must match one unconsumed expectation on
// that line, and every expectation must be matched, or the test fails.
// The driver's //lint:ignore directives are honored, so fixtures can
// exercise suppression too.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"thriftybarrier/internal/analysis"
	"thriftybarrier/internal/analysis/load"
)

// TestData returns the testdata directory shared by the analyzer suite:
// internal/analysis/testdata, located relative to this source file so
// tests can run from any package directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "..", "testdata")
}

// Run loads each package path from dir/src, applies the analyzer, and
// reports mismatches between its diagnostics and the // want
// expectations through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	root, modPath, err := load.ModuleRoot(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader, err := load.NewLoader(load.Config{
		ModulePath:   modPath,
		ModuleDir:    root,
		SrcRoots:     []string{filepath.Join(dir, "src")},
		IncludeTests: false,
	})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgs, err := loader.Load(pkgpaths...)
	if err != nil {
		t.Fatalf("analysistest: load: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("analysistest: %s: type error: %v", pkg.Path, terr)
		}
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: run: %v", err)
	}

	expects := expectations(t, pkgs)
	for _, f := range findings {
		key := lineKey{f.Pos.Filename, f.Pos.Line}
		matched := false
		rest := expects[key][:0]
		for _, exp := range expects[key] {
			if !matched && exp.re.MatchString(f.Message) {
				matched = true
				continue
			}
			rest = append(rest, exp)
		}
		expects[key] = rest
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", f.Pos.Filename, f.Pos.Line, f.Message)
		}
	}
	for key, exps := range expects {
		for _, exp := range exps {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, exp.re.String())
		}
	}
}

type lineKey struct {
	file string
	line int
}

type expectation struct {
	re *regexp.Regexp
}

// expectations parses the // want comments of every file.
func expectations(t *testing.T, pkgs []*load.Package) map[lineKey][]expectation {
	t.Helper()
	out := map[lineKey][]expectation{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					patterns, err := parseWant(strings.TrimPrefix(text, "want "))
					if err != nil {
						t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					}
					key := lineKey{pos.Filename, pos.Line}
					for _, p := range patterns {
						re, err := regexp.Compile(p)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
						}
						out[key] = append(out[key], expectation{re: re})
					}
				}
			}
		}
	}
	return out
}

// parseWant splits a want payload into its quoted or backquoted regexps.
func parseWant(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated regexp in %q", s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[2+end:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
