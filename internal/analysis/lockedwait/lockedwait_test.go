package lockedwait_test

import (
	"testing"

	"thriftybarrier/internal/analysis/analysistest"
	"thriftybarrier/internal/analysis/lockedwait"
)

func TestLockedWait(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockedwait.Analyzer, "lockedwait")
}
